// Socket serving end to end: publish a ticket into rt::registry, stand up
// the rt::net TCP front-end on loopback, and drive it with rt::net::Client —
// blocking round trips, pipelined bursts, a hot swap under a live
// connection, typed failures, and a graceful drain.
//
// Everything a remote caller can do rides four length-prefixed verbs
// (net/protocol.hpp): PREDICT ("model@version" + a row batch), STATS, LIST,
// PING. This example walks the operational surface:
//
//   1. train briefly, publish v1, start net::InferenceServer (port 0 =
//      kernel-assigned; port() reads it back)
//   2. blocking predict + pipelined submit/get on one connection
//   3. publish v2 and observe the typed kFailedPrecondition for a
//      published-but-not-live version; deploy it and watch the SAME
//      connection start receiving v2 answers (hot swap mid-connection)
//   4. expired deadlines, unknown models, and oversized requests come back
//      as typed statuses, not dropped connections
//   5. stop() drains: every admitted request is answered before sockets
//      close
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "net/net.hpp"
#include "registry/registry.hpp"
#include "train/loop.hpp"

namespace {

std::unique_ptr<rt::ResNet> trained_model(std::uint64_t seed, int epochs) {
  rt::Rng rng(seed);
  rt::ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {8, 16};
  cfg.num_classes = 10;
  cfg.name = "net_demo";
  auto model = std::make_unique<rt::ResNet>(cfg, rng);
  const rt::Dataset train =
      rt::generate_dataset(rt::source_task_spec(), 128, seed ^ 0x11);
  rt::TrainLoopConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 32;
  rt::Rng train_rng(seed ^ 0x5EED);
  rt::train_classifier(*model, train, tcfg, train_rng);
  model->set_training(false);
  return model;
}

int argmax_row(const rt::Tensor& logits) {
  int best = 0;
  for (std::int64_t c = 1; c < logits.numel(); ++c) {
    if (logits[c] > logits[best]) best = static_cast<int>(c);
  }
  return best;
}

void expect_status(rt::net::Client& client, const char* label,
                   const std::string& ref, const rt::Tensor& rows,
                   std::uint64_t deadline_us = 0) {
  try {
    client.predict(ref, rows, deadline_us);
    std::printf("  %-34s unexpectedly succeeded\n", label);
  } catch (const rt::net::RpcError& e) {
    std::printf("  %-34s -> %s\n", label, e.what());
  }
}

}  // namespace

int main() {
  // 1. Publish v1 and stand the front-end up on a kernel-assigned port.
  rt::registry::RegistryOptions ropt;
  ropt.cache_root = "";  // demo stays in memory
  rt::registry::Registry reg(ropt);
  auto v1 = trained_model(31, /*epochs=*/1);
  reg.publish("demo", *v1);

  rt::net::NetOptions nopt;  // host 127.0.0.1, port 0
  rt::net::InferenceServer server(reg, nopt);
  std::printf("net_serve: listening on 127.0.0.1:%u\n", server.port());

  rt::net::Client client("127.0.0.1", server.port());
  client.ping();

  const rt::Dataset probe =
      rt::generate_dataset(rt::source_task_spec(), 16, 37);

  // 2. Blocking round trip, then a pipelined burst on the same connection.
  const rt::Tensor one = probe.images.slice_rows(0, 1);
  std::printf("blocking predict(demo@1): class %d (label %d)\n",
              argmax_row(client.predict("demo@1", one)),
              static_cast<int>(probe.labels[0]));

  std::vector<rt::net::Client::Reply> inflight;
  for (std::int64_t r = 0; r < probe.size(); ++r) {
    inflight.push_back(client.submit("demo@1", probe.images.slice_rows(r, 1)));
  }
  int correct = 0;
  for (std::int64_t r = 0; r < probe.size(); ++r) {
    correct += argmax_row(inflight[static_cast<std::size_t>(r)].get()) ==
                       static_cast<int>(probe.labels[r])
                   ? 1
                   : 0;
  }
  std::printf("pipelined burst: %d in flight, %d/%d correct\n",
              static_cast<int>(probe.size()), correct,
              static_cast<int>(probe.size()));

  // 3. Hot swap mid-connection: v2 is published but owns no traffic until
  //    deploy(); the same client sees the typed precondition, then v2.
  auto v2 = trained_model(31, /*epochs=*/3);
  reg.publish("demo", *v2);
  expect_status(client, "predict(demo@2) before deploy", "demo@2", one);
  reg.deploy("demo@2");
  std::printf("deployed demo@2; same connection now serves v2: class %d\n",
              argmax_row(client.predict("demo@2", one)));
  for (const std::string& line : client.list()) {
    std::printf("  catalog: %s\n", line.c_str());
  }

  // 4. Failures are typed statuses on a connection that stays usable.
  expect_status(client, "predict(nosuch)", "nosuch", one);
  expect_status(client, "predict(demo@9)", "demo@9", one);
  // The deadline clock starts at server receipt of the frame header, so a
  // 1us budget cannot survive even streaming the 16-row payload off the
  // socket — the request is answered with kDeadlineExceeded, never queued.
  expect_status(client, "1us deadline, 16-row payload", "demo@2",
                probe.images, /*deadline_us=*/1);
  client.ping();  // still alive after every failure above

  const auto stats = client.stats("demo");
  std::printf("stats(demo): %.0f requests, p50 %.0fus p99 %.0fus\n",
              stats.at("submitted_requests"), stats.at("latency_p50_us"),
              stats.at("latency_p99_us"));

  // 5. Graceful drain: wait until the serving layer has admitted the burst
  //    (the operator-side view the registry exposes), then stop() — every
  //    admitted request is flushed through the writer before sockets close.
  const std::uint64_t admitted_before =
      reg.find_server("demo")->stats().submitted_requests;
  std::vector<rt::net::Client::Reply> draining;
  for (int r = 0; r < 4; ++r) {
    draining.push_back(client.submit("demo@2", one));
  }
  while (reg.find_server("demo")->stats().submitted_requests <
         admitted_before + 4) {
  }
  server.stop();
  int drained = 0;
  for (auto& reply : draining) {
    reply.get();  // zero admitted requests lost: these cannot throw
    ++drained;
  }
  std::printf("drain: %d/4 admitted replies delivered across stop()\n",
              drained);
  std::printf("net_serve: done\n");
  return 0;
}
