// End-to-end edge deployment of a robust ticket:
//   pretrain (adversarial) -> channel OMP ticket -> finetune on the
//   downstream task -> neutralize + shrink dead channels -> int8 PTQ ->
//   report accuracy, bytes, and modeled latency on an MCU-class device.
//
// This is the pipeline the paper's introduction motivates (pretrained
// feature extractors on resource-constrained edge devices), assembled
// entirely from public API calls.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/robust_tickets.hpp"

namespace {

/// Best-of-reps single-thread serving rate of one compiled plan, measured
/// through the same predict path the engine serves with.
double items_per_second(const rt::CompiledTicket& plan, const rt::Tensor& x,
                        int reps) {
  rt::Workspace ws(plan, x.dim(0));
  (void)plan.predict(x, ws);  // warm-up: workspace + thread_local staging
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)plan.predict(x, ws);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::max(best, static_cast<double>(x.dim(0)) / dt.count());
  }
  return best;
}

}  // namespace

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);
  rt::Rng rng(7);

  // 1. Draw a channel-structured robust ticket (50% of channels pruned).
  auto model = lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, 0.5f,
                              rt::Granularity::kChannel);

  // 2. Adapt it to the downstream task.
  const rt::TaskData task = lab.downstream("cifar10", 400, 400);
  rt::FinetuneConfig ft;
  const float acc_ft = rt::finetune_whole_model(*model, task, ft, rng);
  std::printf("\n[1] finetuned channel ticket      : %.2f%%\n",
              100.0f * acc_ft);

  // 3. Compile for deployment: make dead channels exactly removable, then
  //    physically remove them. Accuracy checks run on the serving engine —
  //    the same execution path an edge device would use.
  const rt::ShrinkReport shrink = rt::compile_for_deployment(*model, rng);
  {
    rt::Session session = rt::make_eval_session(*model, task.test);
    const float acc_shrunk = rt::evaluate_accuracy(session, task.test);
    std::printf("[2] shrink: %lld -> %lld params (-%.1f%%), %lld channels "
                "removed, acc %.2f%%\n",
                static_cast<long long>(shrink.params_before),
                static_cast<long long>(shrink.params_after),
                100.0 * shrink.param_reduction(),
                static_cast<long long>(shrink.channels_removed),
                100.0f * acc_shrunk);
  }

  // 4. Quantize to int8 at compile time (per-channel symmetric) and serve
  //    the quantized plan. int8_native defaults on: the conv/GEMM kernels
  //    execute on int8 values with int32 accumulation and fused requantize
  //    epilogues — real quantized execution, not fake-quant floats.
  rt::CompileOptions qopt;
  qopt.int8_weights = true;
  rt::Session int8_session(rt::Engine::compile(*model, qopt));
  const float acc_int8 = rt::evaluate_accuracy(int8_session, task.test);
  const std::int64_t int8_bytes = int8_session.plan().packed_bytes();
  std::printf("[3] int8-native engine: acc %.2f%%, %.1f KiB packed "
              "(eff. %.3f MFLOP / image)\n",
              100.0f * acc_int8,
              static_cast<double>(int8_bytes) / 1024.0,
              2.0 * static_cast<double>(int8_session.plan().effective_macs()) /
                  1e6);

  // 5. MEASURE the quantization speedup: wall-clock the fp32 plan against
  //    the int8-native plan on the same batch through the same predict path.
  {
    const rt::CompiledTicket fp32_plan = rt::Engine::compile(*model);
    const double fp32_ips =
        items_per_second(fp32_plan, task.test.images, /*reps=*/5);
    const double int8_ips =
        items_per_second(int8_session.plan(), task.test.images, /*reps=*/5);
    std::printf("[4] measured single-thread: fp32 %.0f items/s, int8 %.0f "
                "items/s -> %.2fx speedup\n",
                fp32_ips, int8_ips, int8_ips / fp32_ips);
  }

  // 6. Price the result on an MCU-class device (modeled, not measured:
  //    estimate_quantized_cost applies the profile's calibrated int8
  //    throughput on top of the realizable channel-sparsity savings).
  const rt::CostEstimate cost = rt::estimate_quantized_cost(
      *model, rt::kImageSize, rt::kImageSize, rt::edge_mcu_profile(),
      rt::Granularity::kChannel);
  std::printf("[5] edge-mcu estimate: %.2f ms / image, %.1f uJ / image, "
              "%.2fx speedup over dense fp16\n",
              1e3 * cost.latency_seconds, 1e6 * cost.energy_joules,
              cost.realized_speedup);

  std::printf("\nDeployed: %.2f%% accuracy in %.1f KiB.\n", 100.0f * acc_int8,
              static_cast<double>(int8_bytes) / 1024.0);
  return 0;
}
