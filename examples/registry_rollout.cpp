// Registry rollout: publish, serve, A/B-judge, promote, and hot-swap a model
// with zero downtime — the full operational loop above the serving layer.
//
// The paper's transfer story produces a stream of candidate tickets (natural
// vs adversarial pretraining, different sparsities); an operator has to move
// live traffic between them without dropping a request. This example walks
// that lifecycle end to end on one synthetic task:
//
//   1. train briefly, publish v1 into rt::registry, serve "demo@latest"
//   2. keep training, publish v2
//   3. A/B: route a deterministic 25% of traffic to v2, attribute every
//      response to its version with the same routes_to_candidate() rule the
//      server used, and judge the split from per-version ServerStats
//   4. promote v2 (primary + @stable move), then hot-swap back and forth
//      under load — every future completes, nothing is dropped
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"
#include "train/loop.hpp"

namespace {

/// Fraction of single-row probe requests a server answers with the right
/// class, submitted one at a time so each request maps to one route seq.
int correct_rows(rt::serving::Server& server, const rt::Dataset& probe) {
  int correct = 0;
  for (std::int64_t r = 0; r < probe.size(); ++r) {
    const rt::Tensor logits = server.predict(probe.images.slice_rows(r, 1));
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.numel(); ++c) {
      if (logits[c] > logits[best]) best = c;
    }
    correct += best == static_cast<std::int64_t>(probe.labels[r]) ? 1 : 0;
  }
  return correct;
}

void print_version_table(const rt::serving::Server& server) {
  std::printf("  %-10s %-9s %-9s %-9s %-10s %-10s\n", "version", "requests",
              "rows", "batches", "p50_us", "p99_us");
  for (const rt::serving::VersionStats& v : server.version_stats()) {
    std::printf("  %-10s %-9llu %-9llu %-9llu %-10.1f %-10.1f\n",
                v.version.c_str(),
                static_cast<unsigned long long>(v.requests),
                static_cast<unsigned long long>(v.rows),
                static_cast<unsigned long long>(v.batches),
                v.latency.quantile_us(0.50), v.latency.quantile_us(0.99));
  }
}

}  // namespace

int main() {
  // --- 1. train v1, publish, serve --------------------------------------
  rt::Rng init_rng(21);
  rt::ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {8, 16};
  cfg.num_classes = 10;
  cfg.name = "demo";
  rt::ResNet model(cfg, init_rng);

  const rt::Dataset train =
      rt::generate_dataset(rt::source_task_spec(), 192, 23);
  const rt::Dataset probe = rt::generate_dataset(rt::source_task_spec(), 64, 25);
  rt::TrainLoopConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 32;

  rt::registry::Registry reg;
  rt::Rng train_rng(27);
  model.set_training(true);
  rt::train_classifier(model, train, tcfg, train_rng);
  model.set_training(false);
  const int v1 = reg.publish("demo", model);
  std::printf("published demo@%d (fingerprint %016llx)\n", v1,
              static_cast<unsigned long long>(
                  reg.versions("demo").back().fingerprint));

  rt::serving::ServerOptions sopt;
  sopt.shards = 2;
  sopt.max_batch = 16;
  sopt.max_delay_ms = 0.05;
  rt::serving::Server& server = reg.serve("demo@latest", sopt);
  std::printf("serving %s: %d correct / %lld probe rows\n\n",
              server.primary_version().c_str(), correct_rows(server, probe),
              static_cast<long long>(probe.size()));

  // --- 2. keep training, publish v2 -------------------------------------
  model.set_training(true);
  rt::train_classifier(model, train, tcfg, train_rng);
  model.set_training(false);
  const int v2 = reg.publish("demo", model);
  std::printf("published demo@%d after one more epoch\n", v2);

  // --- 3. A/B: deterministic 25%% of traffic to the candidate ------------
  constexpr double kFraction = 0.25;
  constexpr std::uint64_t kSeed = 42;
  reg.start_ab("demo", "demo@2", kFraction, kSeed);

  // The judge recomputes the routing decision per request: sequence numbers
  // are assigned in submit order, and this client is the only submitter, so
  // request i after the A/B start has seq = <requests so far> + i.
  const std::uint64_t seq0 = server.stats().submitted_requests;
  int candidate_requests = 0;
  for (std::int64_t r = 0; r < probe.size(); ++r) {
    const bool to_candidate = rt::serving::routes_to_candidate(
        seq0 + static_cast<std::uint64_t>(r), kSeed, kFraction);
    candidate_requests += to_candidate ? 1 : 0;
    server.predict(probe.images.slice_rows(r, 1));
  }
  std::printf("A/B over %lld requests: %d routed to %s (expected ~%.0f)\n",
              static_cast<long long>(probe.size()), candidate_requests,
              server.candidate_version().c_str(),
              kFraction * static_cast<double>(probe.size()));
  print_version_table(server);

  // --- 4. promote, then hot-swap under load ------------------------------
  const int promoted = reg.promote("demo");
  std::printf("\npromoted demo@%d (@stable -> %d, live -> %d)\n", promoted,
              reg.stable("demo"), reg.live_version("demo"));

  // Zero-downtime rollback and re-deploy: in-flight requests drain on the
  // old fleet while new ones route to the new — every future completes.
  reg.deploy("demo@1");
  const int rollback_correct = correct_rows(server, probe);
  reg.deploy("demo@stable");
  const int restored_correct = correct_rows(server, probe);
  std::printf("hot swap demo@1: %d correct; back to @stable: %d correct\n",
              rollback_correct, restored_correct);

  const rt::serving::ServerStats st = server.stats();
  std::printf("\nlifetime: %llu requests, %llu failed, %llu rejected\n",
              static_cast<unsigned long long>(st.completed_requests),
              static_cast<unsigned long long>(st.failed_requests),
              static_cast<unsigned long long>(st.rejected_requests));
  print_version_table(server);
  return 0;
}
