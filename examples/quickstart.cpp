// Quickstart: the headline result in ~40 lines.
//
// Pretrains MicroResNet18 on the synthetic source task twice (naturally and
// adversarially), draws a 90%-sparse OMP ticket from each, finetunes both on
// a high-domain-gap downstream task, and prints the accuracy comparison.
// Expected outcome: the robust ticket transfers better.
#include <cstdio>

#include "core/robust_tickets.hpp"

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const float sparsity = 0.9f;
  const rt::TaskData task = lab.downstream("cifar10", 400, 400);
  std::printf("downstream task: %s (%d classes, shift %.2f)\n",
              task.spec.name.c_str(), task.spec.num_classes, task.spec.shift);

  rt::FinetuneConfig ft;
  rt::Rng rng(42);

  auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, sparsity);
  const float nat_acc = rt::finetune_whole_model(*natural, task, ft, rng);

  auto robust =
      lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, sparsity);
  const float rob_acc = rt::finetune_whole_model(*robust, task, ft, rng);

  std::printf("\n=== OMP tickets @ sparsity %.0f%% on %s ===\n",
              sparsity * 100.0f, task.spec.name.c_str());
  std::printf("natural ticket accuracy: %.2f%%\n", 100.0f * nat_acc);
  std::printf("robust  ticket accuracy: %.2f%%\n", 100.0f * rob_acc);
  std::printf("robust - natural       : %+.2f points\n",
              100.0f * (rob_acc - nat_acc));
  std::printf("\n\"Robust tickets can transfer better\": %s\n",
              rob_acc > nat_acc ? "confirmed on this run" : "not on this run");
  return 0;
}
