// Edge deployment: pick the best ticket under a hardware budget.
//
// The paper motivates robust tickets with resource-constrained edge
// transfer learning. This example sweeps CHANNEL-structured sparsity (the
// pattern real accelerators exploit), measures parameter/FLOP savings with
// the library's model statistics, and selects the sparsest robust ticket
// that stays within a target accuracy drop — then compares against the
// natural ticket at the same budget.
#include <cstdio>

#include "core/robust_tickets.hpp"

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const rt::TaskData task = lab.downstream("pets", 320, 320);
  rt::FinetuneConfig ft;
  ft.epochs = 6;

  std::printf("Sweeping channel-structured tickets (R18) on '%s'...\n\n",
              task.spec.name.c_str());
  std::printf("%-9s %-12s %-12s %-12s %-10s %-10s\n", "sparsity", "params",
              "eff_MFLOPs", "packed_KiB", "nat_acc", "rob_acc");

  double best_rob = 0.0;
  float best_sparsity = 0.0f;
  for (float sparsity : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f}) {
    rt::Rng rng(11);
    auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural,
                                  sparsity, rt::Granularity::kChannel);
    const float nat = rt::finetune_whole_model(*natural, task, ft, rng);

    rt::Rng rng2(11);
    auto robust = lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial,
                                 sparsity, rt::Granularity::kChannel);
    const rt::ModelStats stats = robust->stats(16, 16);
    const float rob = rt::finetune_whole_model(*robust, task, ft, rng2);

    // What this ticket actually costs to SERVE: compile it and read the
    // plan's packed bytes and nonzero-proportional MAC count.
    const rt::CompiledTicket plan = rt::Engine::compile(*robust);
    std::printf("%-9.2f %-12lld %-12.3f %-12.1f %-10.2f %-10.2f\n", sparsity,
                static_cast<long long>(stats.unmasked_prunable_params),
                2.0 * static_cast<double>(plan.effective_macs()) / 1e6,
                static_cast<double>(plan.packed_bytes()) / 1024.0,
                100.0f * nat, 100.0f * rob);
    if (rob > best_rob * 0.995) {  // prefer sparser models at ~equal accuracy
      best_rob = rob;
      best_sparsity = sparsity;
    }
  }

  std::printf(
      "\nRecommended edge ticket: robust @ channel sparsity %.1f "
      "(accuracy %.2f%%)\n",
      best_sparsity, 100.0 * best_rob);
  std::printf(
      "Channel masks remove whole output channels; Engine::compile packs the\n"
      "surviving rows contiguously (chan-compact), so the saved FLOPs become\n"
      "real serving speedups without sparse-kernel support.\n");
  return 0;
}
