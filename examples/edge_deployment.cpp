// Edge deployment: pick the best ticket under a hardware budget, then serve
// it through the async front-end.
//
// The paper motivates robust tickets with resource-constrained edge
// transfer learning. This example sweeps CHANNEL-structured sparsity (the
// pattern real accelerators exploit), measures parameter/FLOP savings with
// the library's model statistics, and selects the sparsest robust ticket
// that stays within a target accuracy drop — then deploys the winner behind
// serving::Server with a heterogeneous two-shard fleet (full-precision and
// int8 variants of the same ticket), the way an edge gateway would mix a
// fast low-power replica with a full-precision one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/robust_tickets.hpp"

namespace {

/// Best-of-reps single-thread serving rate of one compiled plan.
double items_per_second(const rt::CompiledTicket& plan, const rt::Tensor& x,
                        int reps) {
  rt::Workspace ws(plan, x.dim(0));
  (void)plan.predict(x, ws);  // warm-up
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)plan.predict(x, ws);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::max(best, static_cast<double>(x.dim(0)) / dt.count());
  }
  return best;
}

}  // namespace

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const rt::TaskData task = lab.downstream("pets", 320, 320);
  rt::FinetuneConfig ft;
  ft.epochs = 6;

  std::printf("Sweeping channel-structured tickets (R18) on '%s'...\n\n",
              task.spec.name.c_str());
  std::printf("%-9s %-12s %-12s %-12s %-10s %-10s\n", "sparsity", "params",
              "eff_MFLOPs", "packed_KiB", "nat_acc", "rob_acc");

  double best_rob = 0.0;
  float best_sparsity = 0.0f;
  std::unique_ptr<rt::ResNet> best_ticket;
  for (float sparsity : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f}) {
    rt::Rng rng(11);
    auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural,
                                  sparsity, rt::Granularity::kChannel);
    const float nat = rt::finetune_whole_model(*natural, task, ft, rng);

    rt::Rng rng2(11);
    auto robust = lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial,
                                 sparsity, rt::Granularity::kChannel);
    const rt::ModelStats stats = robust->stats(16, 16);
    const float rob = rt::finetune_whole_model(*robust, task, ft, rng2);

    // What this ticket actually costs to SERVE: compile it and read the
    // plan's packed bytes and nonzero-proportional MAC count.
    const rt::CompiledTicket plan = rt::Engine::compile(*robust);
    std::printf("%-9.2f %-12lld %-12.3f %-12.1f %-10.2f %-10.2f\n", sparsity,
                static_cast<long long>(stats.unmasked_prunable_params),
                2.0 * static_cast<double>(plan.effective_macs()) / 1e6,
                static_cast<double>(plan.packed_bytes()) / 1024.0,
                100.0f * nat, 100.0f * rob);
    if (rob >= best_rob * 0.995) {  // prefer sparser models at ~equal accuracy
      best_rob = rob;
      best_sparsity = sparsity;
      best_ticket = std::move(robust);
    }
  }

  std::printf(
      "\nRecommended edge ticket: robust @ channel sparsity %.1f "
      "(accuracy %.2f%%)\n",
      best_sparsity, 100.0 * best_rob);
  std::printf(
      "Channel masks remove whole output channels; Engine::compile packs the\n"
      "surviving rows contiguously (chan-compact), so the saved FLOPs become\n"
      "real serving speedups without sparse-kernel support.\n\n");

  // Deployment: one ticket, two compiled variants, one async front-end.
  // Shard 0 serves the full-precision plan, shard 1 the int8 plan; the
  // coalescer round-robins micro-batches across them, so half the traffic
  // runs on the cheap encoding — the mixed-precision fleet an edge gateway
  // actually runs.
  rt::CompileOptions fp32_opt;
  fp32_opt.height = task.test.images.dim(2);
  fp32_opt.width = task.test.images.dim(3);
  rt::CompileOptions int8_opt = fp32_opt;
  int8_opt.int8_weights = true;
  auto fp32_plan = std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*best_ticket, fp32_opt));
  auto int8_plan = std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*best_ticket, int8_opt));

  // The int8 shard is not just smaller — it EXECUTES on int8 (int32
  // accumulation, fused requantize). Measure the per-shard serving rate so
  // the fleet mix is priced on wall-clock, not on byte counts.
  const double fp32_ips =
      items_per_second(*fp32_plan, task.test.images, /*reps=*/5);
  const double int8_ips =
      items_per_second(*int8_plan, task.test.images, /*reps=*/5);
  std::printf("Measured single-thread: fp32 %.0f items/s, int8-native %.0f "
              "items/s (%.2fx)\n\n",
              fp32_ips, int8_ips, int8_ips / fp32_ips);

  rt::serving::ServerOptions serve_opt;
  serve_opt.max_batch = 32;
  serve_opt.max_delay_ms = 0.0;
  serve_opt.queue_capacity_rows =
      4 * static_cast<std::int64_t>(task.test.size());
  rt::serving::Server server({fp32_plan, int8_plan}, serve_opt);

  const float served_acc = rt::evaluate_accuracy(server, task.test);
  const rt::serving::ServerStats st = server.stats();
  std::printf("Mixed fp32+int8 fleet behind serving::Server:\n");
  std::printf("  served accuracy       %.2f%%\n", 100.0f * served_acc);
  std::printf("  shard 0 (fp32) KiB    %.1f\n",
              static_cast<double>(server.shard_plan(0).packed_bytes()) /
                  1024.0);
  std::printf("  shard 1 (int8) KiB    %.1f\n",
              static_cast<double>(server.shard_plan(1).packed_bytes()) /
                  1024.0);
  std::printf("  micro-batches         %llu (avg %.1f rows each)\n",
              static_cast<unsigned long long>(st.batches),
              st.batches > 0 ? static_cast<double>(st.batched_rows) /
                                   static_cast<double>(st.batches)
                             : 0.0);
  return 0;
}
