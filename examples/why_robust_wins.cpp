// Why do robust tickets transfer better? A guided tour of the analysis API
// on one large-domain-gap task:
//   * the robustness prior selects a DIFFERENT subnetwork (mask IoU above
//     the random null but far from 1);
//   * robust and natural representations agree early and diverge late (CKA);
//   * robust frozen features separate downstream classes better (Fisher
//     ratio / kNN probe), which is exactly what linear evaluation rewards.
#include <cstdio>

#include "core/robust_tickets.hpp"

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);
  const float sparsity = 0.9f;
  const rt::TaskData task = lab.downstream("cifar10", 320, 320);

  // --- 1. Structural divergence of the tickets ----------------------------
  auto robust =
      lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, sparsity);
  auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, sparsity);
  const rt::MaskOverlap overlap = rt::mask_overlap(
      rt::MaskSet::capture(*robust), rt::MaskSet::capture(*natural));
  std::printf("\n[1] mask overlap robust vs natural @ s=%.2f\n", sparsity);
  std::printf("    IoU %.3f   random-null IoU %.3f   excess %.3f\n",
              overlap.iou, overlap.expected_iou,
              overlap.iou - overlap.expected_iou);

  // --- 2. Where the representations diverge -------------------------------
  const auto cka =
      rt::cka_stage_profile(*robust, *natural, task.test.images);
  std::printf("\n[2] CKA(robust, natural) per stage on %s:\n",
              task.spec.name.c_str());
  for (std::size_t s = 0; s < cka.size(); ++s) {
    std::printf("    %-9s %.3f\n",
                s + 1 == cka.size() ? "features"
                                    : ("stage " + std::to_string(s)).c_str(),
                cka[s]);
  }

  // --- 3. Frozen-feature quality on the downstream task -------------------
  std::printf("\n[3] frozen-feature quality on %s:\n", task.spec.name.c_str());
  for (auto* model : {robust.get(), natural.get()}) {
    const rt::Tensor train_f =
        rt::extract_features(*model, task.train.images);
    const rt::Tensor test_f = rt::extract_features(*model, task.test.images);
    const double fisher =
        rt::fisher_separation(train_f, task.train.labels);
    const double rank = rt::effective_rank(train_f);
    const float knn = rt::knn_probe_accuracy(train_f, task.train.labels,
                                             test_f, task.test.labels, 5);
    std::printf("    %-12s fisher %.3f   eff-rank %5.2f   5-NN acc %.2f%%\n",
                model == robust.get() ? "robust" : "natural", fisher, rank,
                100.0f * knn);
  }

  std::printf("\nInterpretation: the robust prior rewires the ticket (1), "
              "mostly in late stages (2),\nand the rewired features separate "
              "unseen-domain classes better (3) — which is\nwhy linear "
              "evaluation (Fig. 2/9) shows the largest robust-ticket "
              "margins.\n");
  return 0;
}
