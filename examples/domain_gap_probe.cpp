// Domain-gap probe: use FID to decide which ticket to deploy.
//
// Tab. II's practical insight is that the source->target FID predicts
// whether a robust or a natural ticket will transfer better. This example
// packages that recipe: given a new downstream task, measure its FID
// against the source with the built-in probe and recommend a scheme before
// spending any finetuning compute — then verify the recommendation.
#include <cmath>
#include <cstdio>

#include "core/robust_tickets.hpp"

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);
  rt::FidProbe probe;

  // Three hypothetical new tasks with unknown (to the user) domain gaps.
  struct Candidate {
    const char* name;
    float shift;
    std::uint64_t seed;
  };
  const Candidate candidates[] = {
      {"near-domain-app", 0.15f, 901},
      {"mid-domain-app", 0.55f, 902},
      {"far-domain-app", 0.92f, 903},
  };

  // Calibrate a decision threshold from two reference points.
  const double fid_lo = rt::fid_between(
      lab.source().train.images,
      rt::generate_dataset(rt::downstream_task_spec("ref-lo", 10, 0.2f, 881),
                           256, 1)
          .images,
      probe);
  const double fid_hi = rt::fid_between(
      lab.source().train.images,
      rt::generate_dataset(rt::downstream_task_spec("ref-hi", 10, 0.9f, 882),
                           256, 1)
          .images,
      probe);
  // Geometric mean: FID gaps grow multiplicatively with the domain shift,
  // so the decision boundary belongs between the references in log space.
  const double threshold = std::sqrt(fid_lo * fid_hi);
  std::printf("FID calibration: low-shift ref %.3f, high-shift ref %.3f, "
              "threshold %.3f\n\n",
              fid_lo, fid_hi, threshold);

  rt::LinearEvalConfig lin;
  lin.epochs = 40;
  for (const Candidate& c : candidates) {
    const rt::SynthTaskSpec spec =
        rt::downstream_task_spec(c.name, 10, c.shift, c.seed);
    const rt::TaskData task = rt::load_task(spec, 320, 320);
    const double fid =
        rt::fid_between(lab.source().train.images, task.train.images, probe);
    const bool recommend_robust = fid > threshold;
    std::printf("task %-16s  measured FID %.3f -> recommend %s ticket\n",
                c.name, fid, recommend_robust ? "ROBUST" : "NATURAL");

    // Verify the recommendation with an actual linear evaluation.
    rt::Rng rng(77);
    auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, 0.9f);
    const double nat = rt::linear_eval(*natural, task, lin, rng);
    rt::Rng rng2(77);
    auto robust =
        lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, 0.9f);
    const double rob = rt::linear_eval(*robust, task, lin, rng2);
    std::printf("    verification: natural %.2f%%  robust %.2f%%  winner %s\n",
                100.0 * nat, 100.0 * rob,
                rt::winner_label(rob, nat).c_str());
  }
  return 0;
}
