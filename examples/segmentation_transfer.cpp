// Dense prediction beyond classification: transfer a pruned backbone to a
// segmentation task (the Fig. 7 scenario as a runnable application).
//
// Builds an FCN head over a 50%-sparse robust ticket, finetunes on the
// synthetic dense-prediction task, and prints per-class IoU plus a rendered
// ASCII prediction for one test image.
#include <cstdio>

#include "core/robust_tickets.hpp"

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const rt::SegDataset train = rt::generate_segmentation_dataset(256, 0.6f, 7);
  const rt::SegDataset test = rt::generate_segmentation_dataset(96, 0.6f, 8);

  rt::Rng rng(33);
  auto backbone =
      lab.omp_ticket("r50", rt::PretrainScheme::kAdversarial, 0.5f);

  // Keep a handle on the net by building it here instead of the one-call
  // pipeline, so we can render predictions afterwards.
  rt::SegmentationNet net(std::move(backbone), train.num_classes,
                          /*feature_stage=*/2, rng);
  rt::Sgd sgd(net.parameters(), rt::SgdConfig{0.05f, 0.9f, 1e-4f});
  const std::int64_t hw = rt::kImageSize * rt::kImageSize;
  const int n = static_cast<int>(train.size());
  for (int epoch = 0; epoch < 7; ++epoch) {
    double loss_sum = 0.0;
    for (const auto& idx : rt::make_batches(n, 16, rng)) {
      const rt::Tensor x = rt::gather_images(train.images, idx);
      std::vector<int> y;
      for (int i : idx) {
        y.insert(y.end(), train.labels.begin() + i * hw,
                 train.labels.begin() + (i + 1) * hw);
      }
      net.set_training(true);
      net.zero_grad();
      const rt::Tensor logits = net.forward(x);
      const rt::LossResult loss = rt::softmax_cross_entropy_2d(logits, y);
      net.backward(loss.grad_logits);
      sgd.step();
      loss_sum += loss.loss * static_cast<double>(idx.size());
    }
    std::printf("epoch %d  loss %.4f\n", epoch, loss_sum / n);
  }

  const double miou = rt::evaluate_miou(net, test);
  std::printf("\ntest mIoU (robust ticket @ 50%% sparsity): %.4f\n\n", miou);

  // Render ground truth vs prediction for the first test image.
  net.set_training(false);
  const rt::Tensor x0 = rt::gather_images(test.images, {0});
  const rt::Tensor logits = net.forward(x0);
  const char glyphs[] = ".oxH";
  std::printf("ground truth          prediction\n");
  for (int y = 0; y < rt::kImageSize; ++y) {
    for (int x = 0; x < rt::kImageSize; ++x) {
      std::printf("%c", glyphs[test.labels[static_cast<std::size_t>(
                               y * rt::kImageSize + x)]]);
    }
    std::printf("      ");
    for (int x = 0; x < rt::kImageSize; ++x) {
      int best = 0;
      for (int c = 1; c < 4; ++c) {
        if (logits.at(0, c, y, x) > logits.at(0, best, y, x)) best = c;
      }
      std::printf("%c", glyphs[best]);
    }
    std::printf("\n");
  }
  return 0;
}
