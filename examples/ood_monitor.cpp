// OoD monitoring on the edge: robust tickets as more reliable detectors.
//
// Fig. 8 reports that robustness priors can improve large models' OoD
// detection. This example deploys a finetuned ticket with a max-softmax
// -probability monitor: inputs whose confidence falls below a threshold are
// flagged for review. It reports ROC-AUC and the operating point at 95%
// true-positive rate for robust vs natural tickets.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/robust_tickets.hpp"

namespace {

/// False-positive rate of the MSP detector at >= 95% in-distribution recall.
double fpr_at_95_tpr(std::vector<float> in_scores,
                     std::vector<float> out_scores) {
  std::sort(in_scores.begin(), in_scores.end());
  // Threshold keeping 95% of in-distribution above it.
  const std::size_t cut = in_scores.size() / 20;
  const float threshold = in_scores[cut];
  std::size_t fp = 0;
  for (float s : out_scores) {
    if (s >= threshold) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(out_scores.size());
}

}  // namespace

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const rt::TaskData task = lab.downstream("cars", 320, 320);
  const rt::Dataset ood = rt::generate_ood_dataset(320, 515);
  rt::FinetuneConfig ft;
  ft.epochs = 6;

  std::printf("Deploying 70%%-sparse R50 tickets on '%s' with an MSP "
              "out-of-distribution monitor...\n\n",
              task.spec.name.c_str());

  for (const bool robust : {false, true}) {
    const auto scheme = robust ? rt::PretrainScheme::kAdversarial
                               : rt::PretrainScheme::kNatural;
    rt::Rng rng(21);
    auto ticket = lab.omp_ticket("r50", scheme, 0.7f);
    const float acc = rt::finetune_whole_model(*ticket, task, ft, rng);

    // Deployment path: freeze the finetuned ticket into a compiled plan and
    // serve the monitor's probability queries through a Session.
    rt::Session session = rt::make_eval_session(*ticket, task.test);
    const rt::Tensor in_probs = rt::predict_probabilities(session, task.test);
    const rt::Tensor out_probs = rt::predict_probabilities(session, ood);
    const auto in_scores = rt::max_softmax_scores(in_probs);
    const auto out_scores = rt::max_softmax_scores(out_probs);
    const double auc = rt::roc_auc(in_scores, out_scores);
    const double fpr = fpr_at_95_tpr(in_scores, out_scores);

    std::printf("%s ticket:\n", robust ? "robust " : "natural");
    std::printf("  downstream accuracy   %.2f%%\n", 100.0f * acc);
    std::printf("  OoD ROC-AUC           %.4f\n", auc);
    std::printf("  FPR @ 95%% TPR         %.2f%%\n\n", 100.0 * fpr);
  }
  std::printf("Higher AUC / lower FPR means fewer unnecessary escalations\n"
              "when the edge device encounters unfamiliar inputs.\n");
  return 0;
}
