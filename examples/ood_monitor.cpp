// OoD monitoring on the edge: robust tickets as more reliable detectors,
// served to many concurrent clients through the async front-end.
//
// Fig. 8 reports that robustness priors can improve large models' OoD
// detection. This example deploys a finetuned ticket behind serving::Server
// and streams FOUR concurrent clients at it — three camera feeds sending
// in-distribution frames and one feed that has drifted out of distribution.
// Each client submits small async batches; the coalescer packs frames from
// different clients into shared micro-batches, so the fleet cost is paid
// once, not per client. A max-softmax-probability monitor flags frames whose
// confidence falls below a threshold; the example reports ROC-AUC and the
// operating point at 95% true-positive rate for robust vs natural tickets,
// plus the server's coalescing statistics.
#include <algorithm>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/robust_tickets.hpp"

namespace {

/// False-positive rate of the MSP detector at >= 95% in-distribution recall.
double fpr_at_95_tpr(std::vector<float> in_scores,
                     std::vector<float> out_scores) {
  std::sort(in_scores.begin(), in_scores.end());
  // Threshold keeping 95% of in-distribution above it.
  const std::size_t cut = in_scores.size() / 20;
  const float threshold = in_scores[cut];
  std::size_t fp = 0;
  for (float s : out_scores) {
    if (s >= threshold) ++fp;
  }
  return static_cast<double>(fp) / static_cast<double>(out_scores.size());
}

/// One streaming client: slices its dataset into `chunk`-row requests,
/// submits them all asynchronously, then scores every response with the MSP
/// monitor. Returns the max-softmax score per frame, in submission order.
std::vector<float> stream_client(rt::serving::Server& server,
                                 const rt::Dataset& feed, std::int64_t chunk) {
  const std::int64_t n = feed.images.dim(0);
  std::vector<std::future<rt::Tensor>> inflight;
  for (std::int64_t begin = 0; begin < n; begin += chunk) {
    const std::int64_t rows = std::min(chunk, n - begin);
    inflight.push_back(server.submit(feed.images.slice_rows(begin, rows)));
  }
  std::vector<float> scores;
  scores.reserve(static_cast<std::size_t>(n));
  for (std::future<rt::Tensor>& f : inflight) {
    const std::vector<float> s = rt::max_softmax_scores(rt::softmax(f.get()));
    scores.insert(scores.end(), s.begin(), s.end());
  }
  return scores;
}

}  // namespace

int main() {
  rt::RobustTicketLab::Options opt;
  opt.verbose = true;
  rt::RobustTicketLab lab(opt);

  const rt::TaskData task = lab.downstream("cars", 320, 320);
  const rt::Dataset ood = rt::generate_ood_dataset(320, 515);
  rt::FinetuneConfig ft;
  ft.epochs = 6;

  std::printf("Deploying 70%%-sparse R50 tickets on '%s' behind an async\n"
              "serving::Server, streaming 3 in-distribution clients + 1 "
              "drifted client...\n\n",
              task.spec.name.c_str());

  for (const bool robust : {false, true}) {
    const auto scheme = robust ? rt::PretrainScheme::kAdversarial
                               : rt::PretrainScheme::kNatural;
    rt::Rng rng(21);
    auto ticket = lab.omp_ticket("r50", scheme, 0.7f);
    const float acc = rt::finetune_whole_model(*ticket, task, ft, rng);

    // Deployment path: freeze the finetuned ticket and stand up the async
    // front-end. A small max_delay lets frames from different clients
    // coalesce into shared micro-batches.
    rt::CompileOptions copt;
    copt.height = task.test.images.dim(2);
    copt.width = task.test.images.dim(3);
    rt::serving::ServerOptions sopt;
    sopt.max_batch = 32;
    sopt.max_delay_ms = 0.5;
    sopt.queue_capacity_rows =
        8 * static_cast<std::int64_t>(task.test.size() + ood.size());
    rt::serving::Server server(rt::Engine::compile(*ticket, copt), sopt);

    // Three in-distribution feeds stream slices of the test set; the fourth
    // feed has drifted out of distribution. All four run concurrently.
    constexpr std::int64_t kChunk = 8;
    std::vector<float> in_scores;
    std::mutex in_mutex;
    std::vector<float> out_scores;
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&] {
        std::vector<float> scores = stream_client(server, task.test, kChunk);
        std::lock_guard<std::mutex> lock(in_mutex);
        // Every in-distribution feed replays the same frames, and responses
        // are bitwise deterministic, so one feed's scores suffice for the
        // detector metrics.
        if (in_scores.empty()) in_scores = std::move(scores);
      });
    }
    clients.emplace_back(
        [&] { out_scores = stream_client(server, ood, kChunk); });
    for (std::thread& t : clients) t.join();

    const double auc = rt::roc_auc(in_scores, out_scores);
    const double fpr = fpr_at_95_tpr(in_scores, out_scores);
    const rt::serving::ServerStats st = server.stats();

    std::printf("%s ticket:\n", robust ? "robust " : "natural");
    std::printf("  downstream accuracy   %.2f%%\n", 100.0f * acc);
    std::printf("  OoD ROC-AUC           %.4f\n", auc);
    std::printf("  FPR @ 95%% TPR         %.2f%%\n", 100.0 * fpr);
    std::printf("  requests served       %llu (%llu rejected)\n",
                static_cast<unsigned long long>(st.completed_requests),
                static_cast<unsigned long long>(st.rejected_requests));
    std::printf("  micro-batches         %llu (avg %.1f rows from %.1f-row "
                "requests)\n\n",
                static_cast<unsigned long long>(st.batches),
                st.batches > 0 ? static_cast<double>(st.batched_rows) /
                                     static_cast<double>(st.batches)
                               : 0.0,
                st.submitted_requests > 0
                    ? static_cast<double>(st.submitted_rows) /
                          static_cast<double>(st.submitted_requests)
                    : 0.0);
  }
  std::printf("Higher AUC / lower FPR means fewer unnecessary escalations\n"
              "when the edge device encounters unfamiliar inputs; the\n"
              "coalescer's avg-rows-per-batch shows how much hardware the\n"
              "four clients shared.\n");
  return 0;
}
