// Tests for evaluation metrics: ECE, NLL, ROC-AUC, mIoU, FID plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "data/segmentation_data.hpp"
#include "metrics/metrics.hpp"

namespace rt {
namespace {

TEST(Ece, PerfectlyCalibratedIsZero) {
  // Confidence 1.0 and always correct.
  const Tensor probs = Tensor::from_data({2, 2}, {1, 0, 0, 1});
  EXPECT_NEAR(expected_calibration_error(probs, {0, 1}), 0.0, 1e-6);
}

TEST(Ece, OverconfidentWrongIsOne) {
  const Tensor probs = Tensor::from_data({2, 2}, {1, 0, 0, 1});
  // Always wrong with confidence 1 -> ECE = 1.
  EXPECT_NEAR(expected_calibration_error(probs, {1, 0}), 1.0, 1e-6);
}

TEST(Ece, HalfConfidentHalfRight) {
  // Confidence 0.6, accuracy 0.5 -> ECE = 0.1.
  const Tensor probs =
      Tensor::from_data({2, 2}, {0.6f, 0.4f, 0.6f, 0.4f});
  EXPECT_NEAR(expected_calibration_error(probs, {0, 1}), 0.1, 1e-6);
}

TEST(Ece, ValidatesInputs) {
  const Tensor probs = Tensor::from_data({1, 2}, {0.5f, 0.5f});
  EXPECT_THROW(expected_calibration_error(probs, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(expected_calibration_error(probs, {0}, 0),
               std::invalid_argument);
}

TEST(Nll, KnownValue) {
  const Tensor probs = Tensor::from_data({2, 2}, {0.5f, 0.5f, 0.25f, 0.75f});
  const double expected = -(std::log(0.5) + std::log(0.75)) / 2.0;
  EXPECT_NEAR(negative_log_likelihood(probs, {0, 1}), expected, 1e-6);
}

TEST(Nll, ClampsZeroProbability) {
  const Tensor probs = Tensor::from_data({1, 2}, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(negative_log_likelihood(probs, {0})));
}

TEST(RocAuc, PerfectSeparation) {
  EXPECT_NEAR(roc_auc({0.9f, 0.8f}, {0.1f, 0.2f}), 1.0, 1e-9);
  EXPECT_NEAR(roc_auc({0.1f, 0.2f}, {0.9f, 0.8f}), 0.0, 1e-9);
}

TEST(RocAuc, TiesGiveHalfCredit) {
  EXPECT_NEAR(roc_auc({0.5f}, {0.5f}), 0.5, 1e-9);
}

TEST(RocAuc, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<float> pos(2000), neg(2000);
  for (auto& v : pos) v = rng.uniform();
  for (auto& v : neg) v = rng.uniform();
  EXPECT_NEAR(roc_auc(pos, neg), 0.5, 0.03);
}

TEST(RocAuc, KnownPartialOrdering) {
  // pos {3, 1}, neg {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) -> 3/4.
  EXPECT_NEAR(roc_auc({3.0f, 1.0f}, {2.0f, 0.0f}), 0.75, 1e-9);
}

TEST(RocAuc, EmptyThrows) {
  EXPECT_THROW(roc_auc({}, {1.0f}), std::invalid_argument);
  EXPECT_THROW(roc_auc({1.0f}, {}), std::invalid_argument);
}

TEST(MaxSoftmax, ExtractsRowMaxima) {
  const Tensor probs =
      Tensor::from_data({2, 3}, {0.2f, 0.5f, 0.3f, 0.9f, 0.05f, 0.05f});
  const auto scores = max_softmax_scores(probs);
  EXPECT_FLOAT_EQ(scores[0], 0.5f);
  EXPECT_FLOAT_EQ(scores[1], 0.9f);
}

TEST(MeanIou, PerfectPrediction) {
  const std::vector<int> labels = {0, 1, 2, 1};
  EXPECT_NEAR(mean_iou(labels, labels, 3), 1.0, 1e-9);
}

TEST(MeanIou, KnownOverlap) {
  // Class 0: pred {0,1}, truth {0}: IoU 1/2. Class 1: pred {2,3}, truth
  // {1,2,3}: inter {2,3} union {1,2,3} -> 2/3.
  const std::vector<int> pred = {0, 0, 1, 1};
  const std::vector<int> truth = {0, 1, 1, 1};
  EXPECT_NEAR(mean_iou(pred, truth, 2), (0.5 + 2.0 / 3.0) / 2.0, 1e-9);
}

TEST(MeanIou, SkipsAbsentClasses) {
  const std::vector<int> pred = {0, 0};
  const std::vector<int> truth = {0, 0};
  // Classes 1..9 absent everywhere: only class 0 counted.
  EXPECT_NEAR(mean_iou(pred, truth, 10), 1.0, 1e-9);
}

TEST(MeanIou, SizeMismatchThrows) {
  EXPECT_THROW(mean_iou({0}, {0, 1}, 2), std::invalid_argument);
}

TEST(FidProbe, DeterministicAcrossInstances) {
  Rng rng(2);
  const Tensor imgs = Tensor::uniform({4, 3, 16, 16}, rng, 0.0f, 1.0f);
  FidProbe p1, p2;
  const Tensor f1 = p1.features(imgs);
  const Tensor f2 = p2.features(imgs);
  EXPECT_LT(f1.linf_distance(f2), 1e-7f);
  EXPECT_EQ(f1.dim(1), p1.feature_dim());
}

TEST(FidBetween, ZeroForSameImages) {
  Rng rng(3);
  const Tensor imgs = Tensor::uniform({32, 3, 16, 16}, rng, 0.0f, 1.0f);
  FidProbe probe;
  EXPECT_NEAR(fid_between(imgs, imgs, probe), 0.0, 1e-3);
}

TEST(FidBetween, NoisierImagesFartherAway) {
  Rng rng(4);
  const Tensor base = Tensor::uniform({48, 3, 16, 16}, rng, 0.2f, 0.8f);
  Tensor mild = base, heavy = base;
  for (std::int64_t i = 0; i < base.numel(); ++i) {
    mild[i] += rng.normal(0.0f, 0.02f);
    heavy[i] += rng.normal(0.0f, 0.15f);
  }
  mild.clamp_(0, 1);
  heavy.clamp_(0, 1);
  FidProbe probe;
  const double d_mild = fid_between(base, mild, probe);
  const double d_heavy = fid_between(base, heavy, probe);
  EXPECT_GT(d_heavy, d_mild);
}

}  // namespace
}  // namespace rt
