// Tests for the synthetic data generators, task registry, batching, and
// corruption transforms.
#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>
#include <set>

#include "data/segmentation_data.hpp"
#include "data/synth.hpp"
#include "data/tasks.hpp"

namespace rt {
namespace {

TEST(SynthSource, SpecIsStable) {
  const SynthTaskSpec a = source_task_spec();
  const SynthTaskSpec b = source_task_spec();
  EXPECT_EQ(a.num_classes, 10);
  EXPECT_EQ(a.classes.size(), 10u);
  EXPECT_EQ(a.patterns.size(), 10u);
  for (std::size_t c = 0; c < a.patterns.size(); ++c) {
    EXPECT_LT(a.patterns[c].linf_distance(b.patterns[c]), 1e-9f);
    EXPECT_EQ(a.classes[c].archetype, static_cast<int>(c));
  }
}

TEST(SynthSource, PatternsAreSignsOnly) {
  const SynthTaskSpec spec = source_task_spec();
  for (const Tensor& p : spec.patterns) {
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      EXPECT_TRUE(p[i] == 1.0f || p[i] == -1.0f);
    }
  }
}

TEST(GenerateDataset, DeterministicGivenSeeds) {
  const SynthTaskSpec spec = source_task_spec();
  const Dataset a = generate_dataset(spec, 40, 7);
  const Dataset b = generate_dataset(spec, 40, 7);
  EXPECT_LT(a.images.linf_distance(b.images), 1e-9f);
  EXPECT_EQ(a.labels, b.labels);
  const Dataset c = generate_dataset(spec, 40, 8);
  EXPECT_GT(a.images.linf_distance(c.images), 1e-3f);
}

TEST(GenerateDataset, BalancedLabelsInRange) {
  const SynthTaskSpec spec = source_task_spec();
  const Dataset ds = generate_dataset(spec, 100, 3);
  std::vector<int> counts(10, 0);
  for (int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 10);
    ++counts[static_cast<std::size_t>(l)];
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(GenerateDataset, PixelsInUnitRange) {
  const Dataset ds = generate_dataset(source_task_spec(), 64, 5);
  EXPECT_GE(ds.images.min(), 0.0f);
  EXPECT_LE(ds.images.max(), 1.0f);
}

TEST(DownstreamSpec, ShiftZeroMatchesSourceAppearance) {
  const SynthTaskSpec spec = downstream_task_spec("t", 10, 0.0f, 5);
  const SynthTaskSpec src = source_task_spec();
  for (int c = 0; c < 10; ++c) {
    // Same archetype, same hue, same pattern as the source class.
    EXPECT_EQ(spec.classes[static_cast<std::size_t>(c)].archetype, c);
    for (int ch = 0; ch < 3; ++ch) {
      EXPECT_NEAR(spec.classes[static_cast<std::size_t>(c)].color[
                      static_cast<std::size_t>(ch)],
                  src.classes[static_cast<std::size_t>(c)].color[
                      static_cast<std::size_t>(ch)],
                  1e-5f);
    }
    EXPECT_LT(spec.patterns[static_cast<std::size_t>(c)].linf_distance(
                  src.patterns[static_cast<std::size_t>(c)]),
              1e-9f);
  }
  EXPECT_FLOAT_EQ(spec.pattern_corruption, 0.0f);
  for (int ch = 0; ch < 3; ++ch) {
    EXPECT_NEAR(spec.channel_gain[static_cast<std::size_t>(ch)], 1.0f, 1e-6f);
    EXPECT_NEAR(spec.channel_bias[static_cast<std::size_t>(ch)], 0.0f, 1e-6f);
  }
}

TEST(DownstreamSpec, ShiftScalesGapKnobs) {
  const SynthTaskSpec lo = downstream_task_spec("lo", 10, 0.2f, 5);
  const SynthTaskSpec hi = downstream_task_spec("hi", 10, 0.9f, 5);
  EXPECT_LT(lo.pattern_corruption, hi.pattern_corruption);
  EXPECT_LT(lo.noise_sigma, hi.noise_sigma);
  EXPECT_LT(lo.texture_amplitude, hi.texture_amplitude);
  float lo_gain = 0.0f, hi_gain = 0.0f;
  for (int ch = 0; ch < 3; ++ch) {
    lo_gain += std::fabs(lo.channel_gain[static_cast<std::size_t>(ch)] - 1.0f);
    hi_gain += std::fabs(hi.channel_gain[static_cast<std::size_t>(ch)] - 1.0f);
  }
  EXPECT_LT(lo_gain, hi_gain);
}

TEST(DownstreamSpec, RejectsBadShift) {
  EXPECT_THROW(downstream_task_spec("x", 10, -0.1f, 1), std::invalid_argument);
  EXPECT_THROW(downstream_task_spec("x", 10, 1.5f, 1), std::invalid_argument);
}

TEST(DownstreamSpec, UsesSourcePatternOfArchetype) {
  const SynthTaskSpec spec = downstream_task_spec("t", 20, 0.5f, 9);
  const SynthTaskSpec src = source_task_spec();
  // Class 13 cycles to archetype 3.
  EXPECT_EQ(spec.classes[13].archetype, 3);
  EXPECT_LT(spec.patterns[13].linf_distance(src.patterns[3]), 1e-9f);
}

TEST(RenderArchetype, AllArchetypesProduceSupport) {
  Rng rng(3);
  for (int a = 0; a < kNumArchetypes; ++a) {
    float mask[kImageSize * kImageSize];
    render_archetype(a, 7.5f, 7.5f, rng, mask);
    float total = 0.0f;
    for (float v : mask) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      total += v;
    }
    EXPECT_GT(total, 2.0f) << "archetype " << a << " renders almost nothing";
    EXPECT_LT(total, 0.9f * kImageSize * kImageSize)
        << "archetype " << a << " fills the whole image";
  }
}

TEST(RenderArchetype, RejectsUnknownArchetype) {
  Rng rng(1);
  float mask[kImageSize * kImageSize];
  EXPECT_THROW(render_archetype(-1, 8, 8, rng, mask), std::invalid_argument);
  EXPECT_THROW(render_archetype(kNumArchetypes, 8, 8, rng, mask),
               std::invalid_argument);
}

TEST(OodDataset, UsesHeldOutArchetypesAndZeroLabels) {
  const Dataset ood = generate_ood_dataset(30, 11);
  EXPECT_EQ(ood.size(), 30);
  for (int l : ood.labels) EXPECT_EQ(l, 0);
  EXPECT_GE(ood.images.min(), 0.0f);
  EXPECT_LE(ood.images.max(), 1.0f);
}

TEST(TaskRegistry, TwelveTasksOrderedByPaperFid) {
  const auto& suite = vtab_suite();
  ASSERT_EQ(suite.size(), 12u);
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_GT(suite[i - 1].paper_fid, suite[i].paper_fid);
    // Shift knob must follow the paper's FID ordering.
    EXPECT_GE(suite[i - 1].shift, suite[i].shift);
  }
}

TEST(TaskRegistry, LookupByName) {
  EXPECT_EQ(task_entry("cifar10").num_classes, 10);
  EXPECT_EQ(task_entry("cifar100").num_classes, 20);
  EXPECT_THROW(task_entry("imagenet21k"), std::out_of_range);
}

TEST(TaskRegistry, LoadTaskSplitsDiffer) {
  const TaskData t = load_task("dtd", 60, 40);
  EXPECT_EQ(t.train.size(), 60);
  EXPECT_EQ(t.test.size(), 40);
  EXPECT_EQ(t.train.num_classes, t.test.num_classes);
  // Train and test are different draws.
  EXPECT_GT(t.train.images.linf_distance(
                gather_images(t.test.images,
                              std::vector<int>(60, 0))), 0.0f);
}

TEST(Batching, CoversAllIndicesOnce) {
  Rng rng(1);
  const auto batches = make_batches(103, 32, rng);
  std::set<int> seen;
  for (const auto& b : batches) {
    for (int i : b) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 103u);
  EXPECT_EQ(batches.back().size(), 103u % 32u);
}

TEST(Batching, EvalBatchesAreOrdered) {
  const auto batches = make_eval_batches(10, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(batches[2], (std::vector<int>{8, 9}));
}

TEST(Batching, GatherImagesAndLabels) {
  Tensor imgs({3, 1, 2, 2});
  for (std::int64_t i = 0; i < imgs.numel(); ++i) imgs[i] = static_cast<float>(i);
  const Tensor picked = gather_images(imgs, {2, 0});
  EXPECT_EQ(picked.dim(0), 2);
  EXPECT_FLOAT_EQ(picked[0], 8.0f);  // first element of sample 2
  const auto labels = gather_labels({10, 11, 12}, {2, 0});
  EXPECT_EQ(labels, (std::vector<int>{12, 10}));
  EXPECT_THROW(gather_images(imgs, {5}), std::out_of_range);
}

TEST(Corruption, AddsNoiseAndStaysInRange) {
  const Dataset clean = generate_dataset(source_task_spec(), 20, 1);
  const Dataset noisy = corrupt_dataset(clean, 0.1f, false, 5);
  EXPECT_GT(noisy.images.linf_distance(clean.images), 0.01f);
  EXPECT_GE(noisy.images.min(), 0.0f);
  EXPECT_LE(noisy.images.max(), 1.0f);
  EXPECT_EQ(noisy.labels, clean.labels);
}

TEST(Corruption, BlurSmoothsImages) {
  Rng rng(2);
  Tensor x = Tensor::uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  const Tensor blurred = mean_blur3(x);
  // Blur reduces total variation between horizontal neighbours.
  auto tv = [](const Tensor& t) {
    double acc = 0.0;
    for (std::int64_t i = 0; i + 1 < t.numel(); ++i) {
      acc += std::fabs(t[i + 1] - t[i]);
    }
    return acc;
  };
  EXPECT_LT(tv(blurred), tv(x));
}

TEST(Segmentation, LabelsMatchShapesAndRange) {
  const SegDataset ds = generate_segmentation_dataset(12, 0.4f, 3);
  EXPECT_EQ(ds.size(), 12);
  EXPECT_EQ(static_cast<std::int64_t>(ds.labels.size()),
            12LL * kImageSize * kImageSize);
  int foreground = 0;
  for (int l : ds.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, ds.num_classes);
    if (l > 0) ++foreground;
  }
  // Some but not all pixels are foreground.
  EXPECT_GT(foreground, 0);
  EXPECT_LT(foreground, static_cast<int>(ds.labels.size()));
}

TEST(Segmentation, Deterministic) {
  const SegDataset a = generate_segmentation_dataset(6, 0.4f, 9);
  const SegDataset b = generate_segmentation_dataset(6, 0.4f, 9);
  EXPECT_LT(a.images.linf_distance(b.images), 1e-9f);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace rt
