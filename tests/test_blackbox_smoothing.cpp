// Tests for black-box / enhanced attacks and randomized-smoothing
// certification.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/blackbox.hpp"
#include "attack/smoothing.hpp"
#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

class BlackboxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    model_ = make_micro_resnet18(10, rng);
    const Dataset train = generate_dataset(source_task_spec(), 120, 3);
    TrainLoopConfig cfg;
    cfg.epochs = 4;
    Rng trng(2);
    train_classifier(*model_, train, cfg, trng);
    model_->set_training(false);
    const Dataset test = generate_dataset(source_task_spec(), 40, 5);
    x_ = gather_images(test.images, {0, 1, 2, 3, 4, 5});
    y_ = gather_labels(test.labels, {0, 1, 2, 3, 4, 5});
  }

  std::unique_ptr<ResNet> model_;
  Tensor x_;
  std::vector<int> y_;
};

TEST_F(BlackboxTest, SquareAttackRespectsBall) {
  SquareAttackConfig cfg;
  cfg.epsilon = 0.06f;
  cfg.queries = 30;
  Rng rng(7);
  const Tensor adv = square_attack(*model_, x_, y_, cfg, rng);
  EXPECT_LE(adv.linf_distance(x_), cfg.epsilon + 1e-5f);
  EXPECT_GE(adv.min(), 0.0f);
  EXPECT_LE(adv.max(), 1.0f);
}

TEST_F(BlackboxTest, SquareAttackIncreasesLoss) {
  SquareAttackConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.queries = 60;
  Rng rng(8);
  const float clean = softmax_cross_entropy(model_->forward(x_), y_).loss;
  const Tensor adv = square_attack(*model_, x_, y_, cfg, rng);
  const float attacked = softmax_cross_entropy(model_->forward(adv), y_).loss;
  EXPECT_GT(attacked, clean);
}

TEST_F(BlackboxTest, SquareAttackMonotoneInQueries) {
  // More queries can only improve (per-sample best is kept).
  SquareAttackConfig small;
  small.epsilon = 0.08f;
  small.queries = 10;
  SquareAttackConfig big = small;
  big.queries = 80;
  Rng r1(9), r2(9);
  const Tensor adv_small = square_attack(*model_, x_, y_, small, r1);
  const Tensor adv_big = square_attack(*model_, x_, y_, big, r2);
  const float l_small =
      softmax_cross_entropy(model_->forward(adv_small), y_).loss;
  const float l_big = softmax_cross_entropy(model_->forward(adv_big), y_).loss;
  EXPECT_GE(l_big, l_small - 1e-4f);
}

TEST_F(BlackboxTest, MomentumPgdRespectsBallAndIncreasesLoss) {
  MomentumPgdConfig cfg;
  cfg.epsilon = 0.06f;
  cfg.steps = 6;
  Rng rng(10);
  const float clean = softmax_cross_entropy(model_->forward(x_), y_).loss;
  const Tensor adv = momentum_pgd_attack(*model_, x_, y_, cfg, rng);
  EXPECT_LE(adv.linf_distance(x_), cfg.epsilon + 1e-5f);
  const float attacked = softmax_cross_entropy(model_->forward(adv), y_).loss;
  EXPECT_GT(attacked, clean);
}

TEST_F(BlackboxTest, TargetedPgdMovesTowardsTarget) {
  // Target = (label + 1) mod 10 for every sample.
  std::vector<int> targets(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i) targets[i] = (y_[i] + 1) % 10;
  AttackConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.steps = 10;
  cfg.step_size = 0.03f;
  Rng rng(11);
  const float before =
      softmax_cross_entropy(model_->forward(x_), targets).loss;
  const Tensor adv = targeted_pgd_attack(*model_, x_, targets, cfg, rng);
  const float after =
      softmax_cross_entropy(model_->forward(adv), targets).loss;
  EXPECT_LT(after, before) << "targeted attack failed to reduce target loss";
  EXPECT_LE(adv.linf_distance(x_), cfg.epsilon + 1e-5f);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.8413447), 1.0, 1e-4);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(BinomialLowerBound, BasicProperties) {
  // Bound is below the empirical proportion and monotone in successes.
  const double b1 = binomial_lower_bound(90, 100, 0.05f);
  EXPECT_LT(b1, 0.9);
  EXPECT_GT(b1, 0.8);
  EXPECT_GT(binomial_lower_bound(95, 100, 0.05f), b1);
  // More trials at the same rate tighten the bound.
  EXPECT_GT(binomial_lower_bound(900, 1000, 0.05f), b1);
  EXPECT_EQ(binomial_lower_bound(0, 100, 0.05f), 0.0);
  EXPECT_THROW(binomial_lower_bound(5, 0, 0.05f), std::invalid_argument);
  EXPECT_THROW(binomial_lower_bound(11, 10, 0.05f), std::invalid_argument);
}

TEST(Smoothing, PredictMatchesArgmaxOnConfidentModel) {
  // A model trained to high accuracy should keep its predictions under
  // small smoothing noise.
  Rng rng(12);
  auto model = make_micro_resnet18(10, rng);
  const Dataset train = generate_dataset(source_task_spec(), 150, 13);
  TrainLoopConfig cfg;
  cfg.epochs = 6;
  Rng trng(14);
  train_classifier(*model, train, cfg, trng);
  model->set_training(false);

  const Dataset test = generate_dataset(source_task_spec(), 24, 15);
  SmoothingConfig smooth;
  smooth.sigma = 0.05f;
  smooth.samples = 24;
  Rng srng(16);
  const auto smoothed = smoothed_predict(*model, test.images, smooth, srng);
  const Tensor logits = model->forward(test.images);
  const auto plain = argmax_rows(logits);
  int agree = 0;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (plain[i] == smoothed[i]) ++agree;
  }
  EXPECT_GE(agree, static_cast<int>(plain.size()) * 3 / 4);
}

TEST(Smoothing, CertifiedRadiusPositiveOnlyWhenConfident) {
  Rng rng(17);
  auto model = make_micro_resnet18(10, rng);
  const Dataset train = generate_dataset(source_task_spec(), 150, 18);
  TrainLoopConfig cfg;
  cfg.epochs = 6;
  cfg.gaussian_sigma = 0.1f;  // train with noise so certification is possible
  Rng trng(19);
  train_classifier(*model, train, cfg, trng);
  model->set_training(false);

  const Dataset test = generate_dataset(source_task_spec(), 16, 20);
  SmoothingConfig smooth;
  smooth.sigma = 0.1f;
  smooth.samples = 48;
  Rng srng(21);
  const auto certs = smoothed_certify(*model, test.images, smooth, srng);
  int certified = 0;
  for (const auto& cp : certs) {
    if (cp.predicted_class >= 0) {
      EXPECT_GT(cp.radius, 0.0f);
      EXPECT_GT(cp.top_probability_lower_bound, 0.5f);
      ++certified;
    } else {
      EXPECT_EQ(cp.radius, 0.0f);
    }
  }
  // A noise-trained model on its own clean data certifies most inputs.
  EXPECT_GE(certified, 8);
}

}  // namespace
}  // namespace rt
