// Corruption-suite tests: determinism, value range, severity ordering, and
// the suite evaluator.
#include <gtest/gtest.h>

#include <cmath>

#include "data/corruptions.hpp"
#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "models/resnet.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

Tensor test_images() {
  static const Tensor images = [] {
    const Dataset d = generate_dataset(source_task_spec(), 24, 7);
    return d.images;
  }();
  return images;
}

double mean_abs_diff(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return acc / static_cast<double>(a.numel());
}

class CorruptionFamilyTest
    : public ::testing::TestWithParam<CorruptionType> {};

TEST_P(CorruptionFamilyTest, DeterministicInSeed) {
  const Tensor x = test_images();
  const Tensor a = apply_corruption(x, GetParam(), 3, 42);
  const Tensor b = apply_corruption(x, GetParam(), 3, 42);
  EXPECT_EQ(a.linf_distance(b), 0.0f);
}

TEST_P(CorruptionFamilyTest, StaysInUnitRange) {
  const Tensor x = test_images();
  for (int s = 1; s <= kCorruptionSeverities; ++s) {
    const Tensor y = apply_corruption(x, GetParam(), s, 5);
    EXPECT_GE(y.min(), 0.0f) << "severity " << s;
    EXPECT_LE(y.max(), 1.0f) << "severity " << s;
  }
}

TEST_P(CorruptionFamilyTest, ActuallyPerturbsImages) {
  const Tensor x = test_images();
  const Tensor y = apply_corruption(x, GetParam(), 3, 5);
  EXPECT_GT(mean_abs_diff(x, y), 1e-5);
}

TEST_P(CorruptionFamilyTest, SeverityFiveDistortsMoreThanSeverityOne) {
  const Tensor x = test_images();
  const double d1 = mean_abs_diff(x, apply_corruption(x, GetParam(), 1, 5));
  const double d5 = mean_abs_diff(x, apply_corruption(x, GetParam(), 5, 5));
  EXPECT_GT(d5, d1);
}

TEST_P(CorruptionFamilyTest, HasStableName) {
  EXPECT_STRNE(corruption_name(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CorruptionFamilyTest,
    ::testing::ValuesIn(corruption_suite()),
    [](const ::testing::TestParamInfo<CorruptionType>& info) {
      return corruption_name(info.param);
    });

TEST(CorruptionTest, RejectsBadSeverity) {
  const Tensor x = test_images();
  EXPECT_THROW(apply_corruption(x, CorruptionType::kMeanBlur, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(apply_corruption(x, CorruptionType::kMeanBlur, 6, 1),
               std::invalid_argument);
}

TEST(CorruptionTest, SuiteHasSevenDistinctFamilies) {
  const auto& suite = corruption_suite();
  EXPECT_EQ(suite.size(), 7u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i], suite[j]);
    }
  }
}

TEST(CorruptionTest, PixelateSeverityFiveIsBlockConstant) {
  // Severity 5 uses 8x8 blocks on 16x16 images: each channel can hold at
  // most 4 distinct values.
  const Tensor x = test_images();
  const Tensor y =
      apply_corruption(x, CorruptionType::kPixelate, 5, 1);
  ASSERT_EQ(y.dim(2), kImageSize);
  for (std::int64_t ch = 0; ch < 3; ++ch) {
    // Every pixel must equal the value of its block's top-left corner.
    for (std::int64_t r = 0; r < kImageSize; ++r) {
      for (std::int64_t c = 0; c < kImageSize; ++c) {
        EXPECT_FLOAT_EQ(y.at(0, ch, r, c),
                        y.at(0, ch, (r / 8) * 8, (c / 8) * 8));
      }
    }
  }
}

TEST(CorruptionTest, OcclusionPaintsGraySquare) {
  const Tensor x = test_images();
  const Tensor y = apply_corruption(x, CorruptionType::kOcclusion, 3, 9);
  // Severity 3 covers 45% of the side: a 7x7 patch on 16x16. At least that
  // many pixels per image/channel must be exactly 0.5.
  std::int64_t gray = 0;
  for (std::int64_t r = 0; r < kImageSize; ++r) {
    for (std::int64_t c = 0; c < kImageSize; ++c) {
      if (y.at(0, 0, r, c) == 0.5f) ++gray;
    }
  }
  EXPECT_GE(gray, 7 * 7);
}

TEST(CorruptionTest, BrightnessShiftsMeanUp) {
  const Tensor x = test_images();
  const Tensor y = apply_corruption(x, CorruptionType::kBrightness, 2, 1);
  EXPECT_GT(y.mean(), x.mean());
}

TEST(CorruptionTest, ContrastCompressesTowardMean) {
  const Tensor x = test_images();
  const Tensor y = apply_corruption(x, CorruptionType::kContrast, 4, 1);
  // Variance must strictly shrink.
  const float mx = x.mean(), my = y.mean();
  double vx = 0.0, vy = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    vx += (x[i] - mx) * (x[i] - mx);
    vy += (y[i] - my) * (y[i] - my);
  }
  EXPECT_LT(vy, vx * 0.5);
}

TEST(CorruptionTest, DatasetWrapperPreservesLabels) {
  const Dataset clean = generate_dataset(source_task_spec(), 16, 3);
  const Dataset c = corrupt_with(clean, CorruptionType::kContrast, 2, 5);
  EXPECT_EQ(c.labels, clean.labels);
  EXPECT_EQ(c.num_classes, clean.num_classes);
  EXPECT_NE(c.name.find("contrast"), std::string::npos);
}

TEST(CorruptionSuiteEvalTest, ReportShapeAndRanges) {
  // A tiny trained model: corruption should not *increase* accuracy on
  // average, and all cells must be valid accuracies.
  Rng rng(3);
  ResNetConfig cfg;
  cfg.stage_blocks = {1};
  cfg.stage_channels = {6};
  cfg.num_classes = 10;
  ResNet model(cfg, rng);
  TaskData task = load_task("cifar10", 96, 64);
  TrainLoopConfig train_cfg;
  train_cfg.epochs = 3;
  train_classifier(model, task.train, train_cfg, rng);

  const CorruptionReport report =
      evaluate_corruption_suite(model, task.test, 77);
  ASSERT_EQ(report.accuracy.size(), corruption_suite().size());
  for (std::size_t t = 0; t < report.accuracy.size(); ++t) {
    ASSERT_EQ(report.accuracy[t].size(),
              static_cast<std::size_t>(kCorruptionSeverities));
    for (float a : report.accuracy[t]) {
      EXPECT_GE(a, 0.0f);
      EXPECT_LE(a, 1.0f);
    }
    EXPECT_GE(report.family_mean(t), 0.0f);
    EXPECT_LE(report.family_mean(t), 1.0f);
  }
  EXPECT_GE(report.clean_accuracy, 0.0f);
  EXPECT_LE(report.clean_accuracy, 1.0f);
  // mCA equals the mean over all cells.
  double total = 0.0;
  int cells = 0;
  for (const auto& row : report.accuracy) {
    for (float a : row) {
      total += a;
      ++cells;
    }
  }
  EXPECT_NEAR(report.mean_corruption_accuracy, total / cells, 1e-5);
  // Corruption should hurt a trained model (or at worst tie).
  EXPECT_LE(report.mean_corruption_accuracy, report.clean_accuracy + 0.05f);
}

}  // namespace
}  // namespace rt
