// TRADES objective and Free-AT tests: attack validity, gradient plumbing,
// and the robustness ordering on the synthetic brittle-cue task.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "attack/trades.hpp"
#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "train/loop.hpp"
#include "transfer/pretrain.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed, int classes = 10) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = classes;
  return std::make_unique<ResNet>(cfg, rng);
}

TEST(TradesAttackTest, StaysInsideEpsilonBallAndUnitRange) {
  auto model = tiny_model(1);
  const Dataset d = generate_dataset(source_task_spec(), 8, 5);
  AttackConfig cfg;
  cfg.epsilon = 0.05f;
  cfg.step_size = 0.02f;
  cfg.steps = 5;
  Rng rng(3);
  const Tensor adv = trades_attack(*model, d.images, cfg, rng);
  EXPECT_LE(d.images.linf_distance(adv), cfg.epsilon + 1e-5f);
  EXPECT_GE(adv.min(), 0.0f);
  EXPECT_LE(adv.max(), 1.0f);
}

TEST(TradesAttackTest, IncreasesKlFromCleanPrediction) {
  auto model = tiny_model(2);
  const Dataset d = generate_dataset(source_task_spec(), 8, 6);
  AttackConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.step_size = 0.03f;
  cfg.steps = 7;
  Rng rng(4);
  const Tensor adv = trades_attack(*model, d.images, cfg, rng);

  model->set_training(false);
  const Tensor clean_logits = model->forward(d.images);
  const Tensor adv_logits = model->forward(adv);
  const float kl = kl_divergence(clean_logits, adv_logits).loss;
  EXPECT_GT(kl, 1e-4f);  // the attack found a direction that moves p(x')
}

TEST(TradesAttackTest, LeavesParameterGradientsClean) {
  auto model = tiny_model(3);
  const Dataset d = generate_dataset(source_task_spec(), 4, 7);
  AttackConfig cfg;
  Rng rng(5);
  (void)trades_attack(*model, d.images, cfg, rng);
  for (Parameter* p : model->parameters()) {
    EXPECT_FLOAT_EQ(p->grad.sum_sq(), 0.0f) << p->name;
  }
  EXPECT_TRUE(model->training());  // mode restored (models start in train)
}

TEST(TradesStepTest, AccumulatesFiniteGradients) {
  auto model = tiny_model(4);
  const Dataset d = generate_dataset(source_task_spec(), 8, 8);
  TradesConfig cfg;
  cfg.beta = 2.0f;
  cfg.attack.steps = 3;
  Rng rng(6);
  model->zero_grad();
  const TradesStepResult r =
      trades_step(*model, d.images, d.labels, cfg, rng);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_GT(r.loss, 0.0f);
  ASSERT_EQ(r.clean_logits.dim(0), 8);
  float total_grad = 0.0f;
  for (Parameter* p : model->parameters()) {
    const float g = p->grad.sum_sq();
    EXPECT_TRUE(std::isfinite(g)) << p->name;
    total_grad += g;
  }
  EXPECT_GT(total_grad, 0.0f);
}

TEST(TradesStepTest, BetaZeroReducesTowardPlainCeGradients) {
  // With beta == 0 the TRADES step's parameter gradients equal the plain CE
  // gradients on the clean batch (the adversarial branch contributes 0).
  auto model = tiny_model(5);
  const Dataset d = generate_dataset(source_task_spec(), 6, 9);
  TradesConfig cfg;
  cfg.beta = 0.0f;
  cfg.attack.steps = 2;
  Rng rng(7);
  model->zero_grad();
  trades_step(*model, d.images, d.labels, cfg, rng);
  std::vector<Tensor> trades_grads;
  for (Parameter* p : model->parameters()) trades_grads.push_back(p->grad);

  model->zero_grad();
  model->set_training(true);
  const Tensor logits = model->forward(d.images);
  const LossResult ce = softmax_cross_entropy(logits, d.labels);
  model->backward(ce.grad_logits);

  // BN batch statistics differ between the two runs only through the extra
  // adversarial forward in trades_step, which runs in train mode too; the
  // clean branch is recomputed last, so gradients must match closely.
  std::size_t i = 0;
  for (Parameter* p : model->parameters()) {
    EXPECT_LT(p->grad.linf_distance(trades_grads[i]), 2e-4f) << p->name;
    ++i;
  }
}

TEST(FreePerturbationTest, AppliesAndClampsDelta) {
  FreePerturbation free_delta(0.1f);
  Rng rng(8);
  const Tensor x = Tensor::uniform({2, 3, 4, 4}, rng, 0.2f, 0.8f);
  const Tensor first = free_delta.apply(x);
  EXPECT_EQ(first.linf_distance(x), 0.0f);  // delta starts at zero

  Tensor grad = Tensor::ones({2, 3, 4, 4});
  free_delta.update(grad);
  EXPECT_FLOAT_EQ(free_delta.delta().max(), 0.1f);  // one step saturates
  const Tensor second = free_delta.apply(x);
  EXPECT_NEAR(second.linf_distance(x), 0.1f, 1e-6f);

  free_delta.update(grad);  // projection keeps |delta| <= eps
  EXPECT_LE(free_delta.delta().max(), 0.1f + 1e-7f);
}

TEST(FreePerturbationTest, ResetsOnShapeChange) {
  FreePerturbation free_delta(0.2f);
  Rng rng(9);
  const Tensor a = Tensor::uniform({4, 3, 4, 4}, rng, 0.0f, 1.0f);
  free_delta.apply(a);
  free_delta.update(Tensor::ones({4, 3, 4, 4}));
  EXPECT_GT(free_delta.delta().max(), 0.0f);
  const Tensor b = Tensor::uniform({2, 3, 4, 4}, rng, 0.0f, 1.0f);
  free_delta.apply(b);  // smaller final batch: delta must reset cleanly
  EXPECT_FLOAT_EQ(free_delta.delta().max(), 0.0f);
}

TEST(SchemeRegistryTest, FiveDistinctNamedSchemes) {
  const auto& schemes = all_pretrain_schemes();
  ASSERT_EQ(schemes.size(), 5u);
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    for (std::size_t j = i + 1; j < schemes.size(); ++j) {
      EXPECT_STRNE(scheme_name(schemes[i]), scheme_name(schemes[j]));
    }
  }
}

TEST(RobustTrainingIntegrationTest, TradesAndFreeAtTrainToAboveChance) {
  const Dataset train = generate_dataset(source_task_spec(), 120, 11);
  for (PretrainScheme scheme :
       {PretrainScheme::kTrades, PretrainScheme::kFreeAdversarial}) {
    auto model = tiny_model(10);
    PretrainConfig cfg;
    cfg.scheme = scheme;
    // Free-AT divides the epoch budget by free_replays (cost parity), so
    // give it enough outer epochs to leave a real training run.
    cfg.epochs = 9;
    cfg.attack.epsilon = 0.06f;
    cfg.attack.steps = 3;
    cfg.trades_beta = 2.0f;
    cfg.free_replays = 3;
    Rng rng(12);
    const TrainStats stats = pretrain(*model, train, cfg, rng);
    EXPECT_TRUE(std::isfinite(stats.final_loss)) << scheme_name(scheme);
    const float acc = evaluate_accuracy(*model, train);
    EXPECT_GT(acc, 0.15f) << scheme_name(scheme);  // 10 classes, chance 0.1
  }
}

TEST(RobustTrainingIntegrationTest, TradesBeatsNaturalOnAdversarialAccuracy) {
  // The load-bearing ordering: on the brittle-cue synthetic task, a
  // TRADES-trained model must be more robust than a naturally trained one
  // (both evaluated in-sample with the same weak PGD attack).
  const Dataset train = generate_dataset(source_task_spec(), 160, 13);
  AttackConfig eval_attack;
  eval_attack.epsilon = 0.06f;
  eval_attack.step_size = 0.02f;
  eval_attack.steps = 5;

  auto natural = tiny_model(20);
  TrainLoopConfig nat_cfg;
  nat_cfg.epochs = 8;
  Rng rng_a(14);
  train_classifier(*natural, train, nat_cfg, rng_a);

  auto trades = tiny_model(20);  // same init seed
  TrainLoopConfig tr_cfg;
  tr_cfg.epochs = 8;
  tr_cfg.trades_beta = 4.0f;
  tr_cfg.attack.epsilon = 0.08f;
  tr_cfg.attack.step_size = 0.03f;
  tr_cfg.attack.steps = 4;
  Rng rng_b(14);
  train_classifier(*trades, train, tr_cfg, rng_b);

  Rng rng_eval(15);
  const float nat_adv =
      evaluate_adversarial_accuracy(*natural, train, eval_attack, rng_eval);
  const float tr_adv =
      evaluate_adversarial_accuracy(*trades, train, eval_attack, rng_eval);
  EXPECT_GT(tr_adv, nat_adv - 0.02f)
      << "TRADES adv-acc " << tr_adv << " vs natural " << nat_adv;
}

}  // namespace
}  // namespace rt
