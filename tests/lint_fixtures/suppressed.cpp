// rtlint fixture: suppression forms. Every violation here carries an
// allow comment, so the file must lint clean — except the final line, whose
// allow names the WRONG rule and must still be flagged.
#include <vector>

#define RT_HOT

namespace fixture {

RT_HOT void warmed_up(std::vector<float>& buffer) {
  buffer.resize(128);  // rtlint: allow(R2) grows once per thread
  // rtlint: allow-next-line(R2)
  buffer.push_back(1.0f);
  buffer.reserve(256);  // rtlint: allow(R1,R2) multi-rule form
  buffer.emplace_back(2.0f);  // rtlint: allow(R1) line 15: R2 still fires
}

}  // namespace fixture
