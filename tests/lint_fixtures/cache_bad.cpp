// rtlint fixture: a prediction-cache shard whose counters drop
// std::memory_order — linted with classify("src/serving/cache.cpp") so the
// suite pins that the serving cache tree carries FileKind{.ordered_atomics}.
#include <atomic>
#include <cstdint>

namespace fixture {

struct CacheShard {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::int64_t> size{0};
};

void record_hit(CacheShard& shard) {
  shard.hits.fetch_add(1, std::memory_order_relaxed);  // ok
  shard.size.fetch_add(1);  // line 17: R3 (eviction accounting, no order)
}

std::uint64_t reset_misses(CacheShard& shard) {
  shard.misses.store(0);     // line 21: R3 (store defaults to seq_cst)
  return shard.hits.load();  // line 22: R3 (load without order)
}

}  // namespace fixture
