// rtlint fixture: R1 — blocking synchronization in a kernel hot path.
// Linted by tests/test_rtlint.cpp with FileKind{.kernel_hot_path = true};
// never compiled (the tests/ glob is non-recursive).
#include <chrono>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex g_mutex;  // line 10: R1 (std::mutex)

void kernel_body() {
  std::lock_guard<std::mutex> lock(g_mutex);        // line 13: R1 (lock_guard)
  std::this_thread::sleep_for(std::chrono::seconds(1));  // line 14: R1 (sleep)
}

}  // namespace fixture
