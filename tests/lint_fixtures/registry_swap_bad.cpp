// rtlint fixture: a registry-style hot-swap path whose epoch refcounts drop
// std::memory_order — linted with classify("src/registry/...") so the suite
// pins that the registry tree really carries FileKind{.ordered_atomics}.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Epoch {
  std::atomic<std::int64_t> refs{0};
  std::atomic<bool> retired{false};
};

void swap_epoch(Epoch& old_epoch, Epoch& new_epoch) {
  new_epoch.refs.fetch_add(1, std::memory_order_acq_rel);  // ok
  old_epoch.refs.fetch_sub(1);    // line 16: R3 (drain decrement, no order)
  old_epoch.retired.store(true);  // line 17: R3 (store defaults to seq_cst)
}

bool drained(const Epoch& epoch) {
  return epoch.refs.load() == 0;  // line 21: R3 (load without order)
}

}  // namespace fixture
