// rtlint fixture: R3 — atomic operations without an explicit memory order.
// Linted with FileKind{.ordered_atomics = true}.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::int64_t> g_counter{0};

std::int64_t ordered() {
  g_counter.store(1, std::memory_order_release);          // ok
  return g_counter.load(std::memory_order_acquire);       // ok
}

std::int64_t unordered() {
  g_counter.store(2);       // line 16: R3 (store defaults to seq_cst)
  g_counter.fetch_add(1);   // line 17: R3 (fetch_add without order)
  return g_counter.load();  // line 18: R3 (load without order)
}

}  // namespace fixture
