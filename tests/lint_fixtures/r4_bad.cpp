// rtlint fixture: R4 — nondeterminism sources outside common/rng.
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <unordered_map>

namespace fixture {

std::unordered_map<std::string, int> g_table;  // line 10: R4 (unordered)

int roll() {
  std::random_device entropy;        // line 13: R4 (random_device)
  const auto seed = time(nullptr);   // line 14: R4 (time)
  return rand() + static_cast<int>(seed) +  // line 15: R4 (rand)
         static_cast<int>(entropy());
}

}  // namespace fixture
