// rtlint fixture: R5 — header hygiene. This header deliberately lacks
// #pragma once as its first directive, imports a namespace, and reaches
// uphill with a parent-relative include.
#include "../r5_helper.hpp"  // line 4: R5 (uphill include)

using namespace std;  // line 6: R5 (using namespace in a header)

namespace fixture {

inline int five() { return 5; }

}  // namespace fixture
