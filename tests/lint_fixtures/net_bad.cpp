// rtlint fixture: a net connection loop that drops memory orders and
// reaches uphill — linted with classify("src/net/net.cpp") so the suite
// pins that the socket front-end carries FileKind{.ordered_atomics}.
#include <atomic>
#include <cstdint>

#include "../serving/serving.hpp"

namespace fixture {

struct Connection {
  std::atomic<bool> closing{false};
  std::atomic<std::uint64_t> responses{0};
};

void retire(Connection& conn) {
  conn.responses.fetch_add(1);  // line 17: R3 (fetch_add without order)
  conn.closing.store(true);     // line 18: R3 (store defaults to seq_cst)
}

bool draining(const Connection& conn) {
  return conn.closing.load();  // line 22: R3 (load without order)
}

}  // namespace fixture
