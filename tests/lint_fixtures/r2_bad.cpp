// rtlint fixture: R2 — heap allocation inside an RT_HOT function.
// Only the annotated function is checked; cold_path below must stay clean.
#include <functional>
#include <vector>

#define RT_HOT

namespace fixture {

RT_HOT int hot_path(std::vector<int>& values) {
  values.push_back(1);            // line 11: R2 (vector growth)
  auto* scratch = new int[16];    // line 12: R2 (operator new)
  std::function<int()> fn = [] { return 2; };  // line 13: R2 (std::function)
  const int result = scratch[0] + fn();
  delete[] scratch;
  return result;
}

int cold_path(std::vector<int>& values) {
  values.push_back(3);  // unannotated: no finding
  return static_cast<int>(values.size());
}

}  // namespace fixture
