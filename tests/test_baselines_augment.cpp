// Tests for pruning baselines (random / layerwise / SNIP) and the data
// augmentation transforms.
#include <gtest/gtest.h>

#include <cmath>

#include "data/augment.hpp"
#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "prune/baselines.hpp"
#include "prune/omp.hpp"

namespace rt {
namespace {

class BaselinePruneTest : public ::testing::TestWithParam<float> {};

TEST_P(BaselinePruneTest, RandomPruneHitsSparsity) {
  Rng rng(1);
  auto model = make_micro_resnet18(10, rng);
  Rng prng(2);
  random_prune(*model, GetParam(), Granularity::kElement, prng);
  EXPECT_NEAR(model_sparsity(model->prunable_parameters()), GetParam(), 0.01);
}

TEST_P(BaselinePruneTest, LayerwiseHitsSparsityPerLayer) {
  Rng rng(3);
  auto model = make_micro_resnet18(10, rng);
  layerwise_magnitude_prune(*model, GetParam(), Granularity::kElement);
  for (Parameter* p : model->prunable_parameters()) {
    const double layer_sparsity =
        1.0 - static_cast<double>(p->mask.sum()) /
                  static_cast<double>(p->mask.numel());
    EXPECT_NEAR(layer_sparsity, GetParam(), 0.02) << p->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsities, BaselinePruneTest,
                         ::testing::Values(0.3f, 0.5f, 0.8f));

TEST(BaselinePrune, LayerwiseKeepsLargestPerLayer) {
  Rng rng(4);
  auto model = make_micro_resnet18(10, rng);
  std::map<std::string, Tensor> before;
  for (Parameter* p : model->prunable_parameters()) before[p->name] = p->value;
  layerwise_magnitude_prune(*model, 0.5f, Granularity::kElement);
  for (Parameter* p : model->prunable_parameters()) {
    const Tensor& orig = before.at(p->name);
    float max_pruned = 0.0f, min_kept = 1e9f;
    for (std::int64_t i = 0; i < p->mask.numel(); ++i) {
      const float mag = std::fabs(orig[i]);
      if (p->mask[i] == 0.0f) max_pruned = std::max(max_pruned, mag);
      else min_kept = std::min(min_kept, mag);
    }
    EXPECT_LE(max_pruned, min_kept + 1e-6f) << p->name;
  }
}

TEST(BaselinePrune, GlobalAndLayerwiseDiffer) {
  Rng rng(5);
  auto global_model = make_micro_resnet18(10, rng);
  auto layer_model = make_micro_resnet18(10, rng);
  layer_model->load_state(global_model->state_dict());
  OmpConfig cfg;
  cfg.sparsity = 0.8f;
  const MaskSet global = omp_prune(*global_model, cfg);
  const MaskSet layer =
      layerwise_magnitude_prune(*layer_model, 0.8f, Granularity::kElement);
  double diff = 0.0;
  for (const auto& [name, gm] : global.masks()) {
    diff += gm.sub(layer.get(name)).abs_().sum();
  }
  EXPECT_GT(diff, 0.0) << "global pruning should reallocate across layers";
}

TEST(BaselinePrune, SnipHitsGlobalSparsityAndUsesGradients) {
  Rng rng(6);
  auto model = make_micro_resnet18(10, rng);
  auto magnitude_model = make_micro_resnet18(10, rng);
  magnitude_model->load_state(model->state_dict());
  const Dataset data = generate_dataset(source_task_spec(), 64, 7);

  SnipConfig cfg;
  cfg.sparsity = 0.7f;
  cfg.batches = 2;
  Rng prng(8);
  const MaskSet snip = snip_prune(*model, data, cfg, prng);
  EXPECT_NEAR(model_sparsity(model->prunable_parameters()), 0.7, 1e-3);

  // Gradients must be cleared afterwards.
  for (Parameter* p : model->parameters()) {
    EXPECT_FLOAT_EQ(p->grad.sum_sq(), 0.0f) << p->name;
  }

  // SNIP should differ from pure magnitude somewhere.
  OmpConfig omp;
  omp.sparsity = 0.7f;
  const MaskSet magnitude = omp_mask(*magnitude_model, omp);
  double diff = 0.0;
  for (const auto& [name, sm] : snip.masks()) {
    diff += sm.sub(magnitude.get(name)).abs_().sum();
  }
  EXPECT_GT(diff, 0.0);
}

TEST(BaselinePrune, RejectsBadSparsity) {
  Rng rng(9);
  auto model = make_micro_resnet18(10, rng);
  Rng prng(10);
  EXPECT_THROW(random_prune(*model, 1.0f, Granularity::kElement, prng),
               std::invalid_argument);
  EXPECT_THROW(layerwise_magnitude_prune(*model, -0.5f, Granularity::kElement),
               std::invalid_argument);
}

TEST(Augment, FlipIsInvolution) {
  Rng rng(11);
  Tensor imgs = Tensor::uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  const Tensor orig = imgs;
  flip_horizontal(imgs, 0);
  EXPECT_GT(imgs.linf_distance(orig), 1e-4f);
  flip_horizontal(imgs, 0);
  EXPECT_LT(imgs.linf_distance(orig), 1e-9f);
}

TEST(Augment, FlipMirrorsColumns) {
  Tensor imgs({1, 1, 1, 4});
  for (int x = 0; x < 4; ++x) imgs[x] = static_cast<float>(x);
  flip_horizontal(imgs, 0);
  EXPECT_FLOAT_EQ(imgs[0], 3.0f);
  EXPECT_FLOAT_EQ(imgs[3], 0.0f);
}

TEST(Augment, ShiftMovesContentAndZeroPads) {
  Tensor imgs({1, 1, 3, 3});
  imgs.at(0, 0, 1, 1) = 5.0f;
  shift_image(imgs, 0, 1, -1);  // down 1, left 1
  EXPECT_FLOAT_EQ(imgs.at(0, 0, 2, 0), 5.0f);
  EXPECT_FLOAT_EQ(imgs.at(0, 0, 1, 1), 0.0f);
  // Shifted-in border is zero.
  EXPECT_FLOAT_EQ(imgs.at(0, 0, 0, 0), 0.0f);
}

TEST(Augment, BatchAugmentationPreservesShapeAndRange) {
  Rng rng(12);
  const Tensor imgs = Tensor::uniform({6, 3, 16, 16}, rng, 0.0f, 1.0f);
  AugmentConfig cfg;
  cfg.horizontal_flip = true;
  cfg.max_shift = 2;
  Rng arng(13);
  const Tensor aug = augment_batch(imgs, cfg, arng);
  EXPECT_EQ(aug.shape(), imgs.shape());
  EXPECT_GE(aug.min(), 0.0f);
  EXPECT_LE(aug.max(), 1.0f);
  EXPECT_GT(aug.linf_distance(imgs), 1e-4f);
}

TEST(Augment, DisabledConfigIsIdentity) {
  Rng rng(14);
  const Tensor imgs = Tensor::uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.max_shift = 0;
  Rng arng(15);
  EXPECT_FALSE(cfg.enabled());
  EXPECT_LT(augment_batch(imgs, cfg, arng).linf_distance(imgs), 1e-9f);
}

}  // namespace
}  // namespace rt
