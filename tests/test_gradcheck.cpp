// Finite-difference gradient checks for every layer's manual backward pass
// and for full residual networks. These are the load-bearing tests of the
// training substrate: PGD attacks, IMP, and LMP all assume exact gradients.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "models/resnet.hpp"
#include "models/segmentation.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"

namespace rt {
namespace {

/// Scalar objective: L = <forward(x), R> for a fixed random direction R.
/// Returns max relative-ish error between analytic and numerical gradients
/// over the checked values.
class GradCheck {
 public:
  GradCheck(Module& model, Tensor x, std::uint64_t seed)
      : model_(model), x_(std::move(x)) {
    Rng rng(seed);
    const Tensor y = model_.forward(x_);
    direction_ = Tensor::randn(y.shape(), rng);
  }

  double loss() {
    const Tensor y = model_.forward(x_);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y[i]) * direction_[i];
    }
    return acc;
  }

  /// Analytic input gradient via backward().
  Tensor analytic_input_grad() {
    model_.forward(x_);
    model_.zero_grad();
    return model_.backward(direction_);
  }

  /// Checks dL/dx on `count` sampled elements; returns the MEDIAN error
  /// over the smooth sample points (see summarize/check_scalar: ReLU
  /// composites have rare exactly-at-kink units whose subgradient choice
  /// legitimately differs from the symmetric numerical estimate, so the
  /// median — not the max — is the bug detector; outliers are bounded
  /// separately inside summarize()).
  double check_input(int count, float eps = 1e-2f) {
    const Tensor analytic = analytic_input_grad();
    Rng rng(99);
    std::vector<double> errors;
    for (int t = 0; t < count; ++t) {
      const std::int64_t i = rng.next_below(
          static_cast<std::uint32_t>(x_.numel()));
      const double err = check_scalar(&x_[i], analytic[i], eps);
      if (err >= 0.0) errors.push_back(err);
    }
    return summarize(errors, count);
  }

  /// Checks dL/dtheta on `count` sampled elements of every parameter;
  /// same median-based summary as check_input.
  double check_params(int count, float eps = 1e-2f) {
    model_.forward(x_);
    model_.zero_grad();
    model_.backward(direction_);
    // Snapshot analytic gradients (later forwards pollute nothing, but
    // zero_grad would).
    std::vector<Tensor> grads;
    for (Parameter* p : model_.parameters()) grads.push_back(p->grad);

    Rng rng(7);
    std::vector<double> errors;
    int total = 0;
    const auto params = model_.parameters();
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      Parameter* p = params[pi];
      for (int t = 0; t < count; ++t) {
        const std::int64_t i = rng.next_below(
            static_cast<std::uint32_t>(p->value.numel()));
        const double err = check_scalar(&p->value[i], grads[pi][i], eps);
        ++total;
        if (err >= 0.0) errors.push_back(err);
      }
    }
    return summarize(errors, total);
  }

 private:
  /// Asserts outlier bounds and returns the median error. A genuine backward
  /// bug (a missing or wrong gradient path) shifts essentially every sample;
  /// kink artifacts affect only the few samples whose perturbation interval
  /// contains a zero pre-activation.
  double summarize(std::vector<double> errors, int requested) {
    EXPECT_GE(static_cast<int>(errors.size()), requested / 2)
        << "too many kink-straddling samples";
    if (errors.empty()) return 1.0;
    std::sort(errors.begin(), errors.end());
    int outliers = 0;
    for (double e : errors) {
      if (e > 0.02) ++outliers;
    }
    EXPECT_LE(outliers, static_cast<int>(errors.size()) / 4)
        << "errors are not confined to rare kink samples";
    return errors[errors.size() / 2];
  }

  /// Central difference at two scales. ReLU nets are only piecewise smooth:
  /// a sample whose perturbation straddles a kink has an O(1) finite-
  /// difference error regardless of eps (the flip probability, not the flip
  /// magnitude, shrinks with eps). Such points are detected by comparing the
  /// eps and eps/2 estimates and skipped (return -1).
  double check_scalar(float* v, float analytic, float eps) {
    const auto central = [&](float e) {
      const float saved = *v;
      *v = saved + e;
      const double lp = loss();
      *v = saved - e;
      const double lm = loss();
      *v = saved;
      return (lp - lm) / (2.0 * static_cast<double>(e));
    };
    const double d1 = central(eps);
    const double d2 = central(eps / 2.0f);
    if (std::fabs(d1 - d2) > 0.02 * (1.0 + std::fabs(d1) + std::fabs(d2))) {
      return -1.0;  // non-smooth: a ReLU gate flipped inside the interval
    }
    return std::fabs(d2 - analytic) /
           (1.0 + std::fabs(d2) + std::fabs(analytic));
  }

  Module& model_;
  Tensor x_;
  Tensor direction_;
};

constexpr double kTol = 5e-3;

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear lin(6, 4, true, rng, "l");
  GradCheck gc(lin, Tensor::randn({3, 6}, rng), 11);
  EXPECT_LT(gc.check_input(10), kTol);
  EXPECT_LT(gc.check_params(8), kTol);
}

TEST(GradCheck, ReLU) {
  Rng rng(2);
  ReLU relu;
  // Keep values away from the kink at 0.
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  GradCheck gc(relu, x, 12);
  EXPECT_LT(gc.check_input(20), kTol);
}

class ConvGradCheckTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvGradCheckTest, InputAndParams) {
  const auto [kernel, stride, padding] = GetParam();
  Rng rng(3);
  Conv2d conv(3, 5, kernel, stride, padding, true, rng, "c");
  GradCheck gc(conv, Tensor::randn({2, 3, 8, 8}, rng), 13);
  EXPECT_LT(gc.check_input(12), kTol);
  EXPECT_LT(gc.check_params(10), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheckTest,
    ::testing::Values(std::make_tuple(3, 1, 1), std::make_tuple(3, 2, 1),
                      std::make_tuple(1, 1, 0), std::make_tuple(1, 2, 0),
                      std::make_tuple(5, 1, 2)));

TEST(GradCheck, BatchNormTrainMode) {
  Rng rng(4);
  BatchNorm2d bn(3, "bn");
  bn.set_training(true);
  GradCheck gc(bn, Tensor::randn({4, 3, 3, 3}, rng), 14);
  EXPECT_LT(gc.check_input(15), kTol);
  EXPECT_LT(gc.check_params(6), kTol);
}

TEST(GradCheck, BatchNormEvalMode) {
  Rng rng(5);
  BatchNorm2d bn(3, "bn");
  // Give running stats a non-trivial value first.
  bn.set_training(true);
  bn.forward(Tensor::randn({8, 3, 4, 4}, rng, 2.0f));
  bn.set_training(false);
  GradCheck gc(bn, Tensor::randn({2, 3, 4, 4}, rng), 15);
  EXPECT_LT(gc.check_input(15), kTol);
  EXPECT_LT(gc.check_params(6), kTol);
}

TEST(GradCheck, MaxPool) {
  Rng rng(6);
  MaxPool2d pool(2);
  // Perturbations must not flip the argmax: spread values.
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng, 5.0f);
  GradCheck gc(pool, x, 16);
  EXPECT_LT(gc.check_input(12, /*eps=*/1e-3f), kTol);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(7);
  GlobalAvgPool gap;
  GradCheck gc(gap, Tensor::randn({3, 4, 4, 4}, rng), 17);
  EXPECT_LT(gc.check_input(12), kTol);
}

TEST(GradCheck, NearestUpsample) {
  Rng rng(8);
  NearestUpsample up(2);
  GradCheck gc(up, Tensor::randn({2, 3, 4, 4}, rng), 18);
  EXPECT_LT(gc.check_input(12), kTol);
}

TEST(GradCheck, BasicBlockWithProjection) {
  Rng rng(9);
  BasicBlock block(4, 8, 2, rng, "b");
  block.set_training(true);
  GradCheck gc(block, Tensor::randn({2, 4, 8, 8}, rng), 19);
  EXPECT_LT(gc.check_input(10), kTol);
  EXPECT_LT(gc.check_params(6), kTol);
}

TEST(GradCheck, BasicBlockIdentityShortcut) {
  Rng rng(10);
  BasicBlock block(6, 6, 1, rng, "b");
  block.set_training(true);
  GradCheck gc(block, Tensor::randn({2, 6, 6, 6}, rng), 20);
  EXPECT_LT(gc.check_input(10), kTol);
  EXPECT_LT(gc.check_params(6), kTol);
}

TEST(GradCheck, BottleneckBlock) {
  Rng rng(11);
  BottleneckBlock block(4, 4, 2, 2, rng, "b");
  block.set_training(true);
  GradCheck gc(block, Tensor::randn({2, 4, 8, 8}, rng), 21);
  EXPECT_LT(gc.check_input(10), kTol);
  EXPECT_LT(gc.check_params(6), kTol);
}

TEST(GradCheck, TinyResNetEndToEnd) {
  Rng rng(12);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {4, 8};
  cfg.num_classes = 3;
  cfg.name = "tiny";
  ResNet net(cfg, rng);
  net.set_training(true);
  GradCheck gc(net, Tensor::randn({2, 3, 8, 8}, rng), 22);
  EXPECT_LT(gc.check_input(8), kTol);
  EXPECT_LT(gc.check_params(4), kTol);
}

TEST(GradCheck, TinyBottleneckResNetEndToEnd) {
  Rng rng(13);
  ResNetConfig cfg;
  cfg.block = ResNetConfig::BlockType::kBottleneck;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {4, 6};
  cfg.bottleneck_expansion = 2;
  cfg.num_classes = 3;
  cfg.name = "tinyb";
  ResNet net(cfg, rng);
  net.set_training(true);
  GradCheck gc(net, Tensor::randn({2, 3, 8, 8}, rng), 23);
  EXPECT_LT(gc.check_input(8), kTol);
  EXPECT_LT(gc.check_params(4), kTol);
}

TEST(GradCheck, SegmentationNetEndToEnd) {
  Rng rng(14);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {4, 8};
  cfg.num_classes = 3;
  cfg.name = "segb";
  auto backbone = std::make_unique<ResNet>(cfg, rng);
  SegmentationNet seg(std::move(backbone), 4, /*feature_stage=*/1, rng);
  seg.set_training(true);
  GradCheck gc(seg, Tensor::randn({2, 3, 8, 8}, rng), 24);
  EXPECT_LT(gc.check_input(8), kTol);
  EXPECT_LT(gc.check_params(4), kTol);
}

TEST(GradCheck, CrossEntropyMatchesFiniteDifference) {
  Rng rng(15);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels = {1, 4, 0};
  const auto result = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float lp = softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved - eps;
    const float lm = softmax_cross_entropy(logits, labels).loss;
    logits[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(result.grad_logits[i], numeric, 5e-3f) << "logit " << i;
  }
}

TEST(GradCheck, CrossEntropy2dMatchesFiniteDifference) {
  Rng rng(16);
  Tensor logits = Tensor::randn({1, 3, 2, 2}, rng);
  const std::vector<int> labels = {0, 2, -1, 1};
  const auto result = softmax_cross_entropy_2d(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float lp = softmax_cross_entropy_2d(logits, labels).loss;
    logits[i] = saved - eps;
    const float lm = softmax_cross_entropy_2d(logits, labels).loss;
    logits[i] = saved;
    const float numeric = (lp - lm) / (2.0f * eps);
    EXPECT_NEAR(result.grad_logits[i], numeric, 5e-3f) << "logit " << i;
  }
}

}  // namespace
}  // namespace rt
