// Tests for binary tensor/state-dict serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "tensor/serialize.hpp"

namespace rt {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Rng rng(1);
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream buf;
  write_tensor(buf, t);
  const Tensor back = read_tensor(buf);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_LT(back.linf_distance(t), 1e-9f);
}

TEST(Serialize, StateDictRoundTrip) {
  Rng rng(2);
  StateDict state;
  state["a.weight"] = Tensor::randn({4, 4}, rng);
  state["b.bias"] = Tensor::randn({7}, rng);
  std::stringstream buf;
  write_state_dict(buf, state);
  const StateDict back = read_state_dict(buf);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_LT(back.at("a.weight").linf_distance(state.at("a.weight")), 1e-9f);
  EXPECT_LT(back.at("b.bias").linf_distance(state.at("b.bias")), 1e-9f);
}

TEST(Serialize, EmptyStateDict) {
  std::stringstream buf;
  write_state_dict(buf, {});
  EXPECT_TRUE(read_state_dict(buf).empty());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf("NOPE....");
  EXPECT_THROW(read_state_dict(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Rng rng(3);
  StateDict state;
  state["w"] = Tensor::randn({16}, rng);
  std::stringstream buf;
  write_state_dict(buf, state);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_state_dict(cut), std::runtime_error);
}

TEST(Serialize, RejectsCorruptDims) {
  std::stringstream buf;
  // ndim = 9 exceeds the sanity limit.
  const std::uint32_t bad_ndim = 9;
  buf.write(reinterpret_cast<const char*>(&bad_ndim), sizeof(bad_ndim));
  EXPECT_THROW(read_tensor(buf), std::runtime_error);
}

TEST(Serialize, FileRoundTripAndMissingFile) {
  Rng rng(4);
  StateDict state;
  state["x"] = Tensor::randn({2, 2}, rng);
  const std::string path = "/tmp/rt_serialize_test.rtk";
  save_state_dict(path, state);
  const StateDict back = load_state_dict(path);
  EXPECT_LT(back.at("x").linf_distance(state.at("x")), 1e-9f);
  std::filesystem::remove(path);
  EXPECT_THROW(load_state_dict(path), std::runtime_error);
}

}  // namespace
}  // namespace rt
