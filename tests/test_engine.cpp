// Engine-vs-eager parity and Session concurrency tests.
//
// Engine::compile must reproduce eval-mode Module::forward within float
// rounding for every architecture, pretraining objective, sparsity level and
// packed storage format; the sweep trains tiny models briefly so batch-norm
// running statistics (the folded part) are non-trivial. Session must be
// usable from many threads at once and stay bitwise deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "hw/quant.hpp"
#include "models/resnet.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(bool bottleneck, std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = bottleneck ? "tb" : "ta";
  if (bottleneck) {
    cfg.block = ResNetConfig::BlockType::kBottleneck;
    cfg.bottleneck_expansion = 2;
  }
  return std::make_unique<ResNet>(cfg, rng);
}

/// Brief natural or adversarial training so BN running statistics move away
/// from their initialization — the part conv+BN folding must reproduce.
void train_briefly(ResNet& model, bool adversarial, std::uint64_t seed) {
  const Dataset train = generate_dataset(source_task_spec(), 48, seed);
  TrainLoopConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  if (adversarial) {
    cfg.adversarial = true;
    cfg.attack = AttackConfig{0.06f, 0.02f, 2, true};
  }
  Rng rng(seed ^ 0x5EEDULL);
  train_classifier(model, train, cfg, rng);
}

float max_logit_gap(const Tensor& a, const Tensor& b) {
  return a.linf_distance(b);
}

TEST(EngineParity, ArchSchemeSparsityFormatSweep) {
  const Dataset probe = generate_dataset(source_task_spec(), 24, 77);
  const std::vector<std::optional<PackedFormat>> formats{
      std::nullopt, PackedFormat::kDense, PackedFormat::kChannelCompact,
      PackedFormat::kCsr};

  for (const bool bottleneck : {false, true}) {
    for (const bool adversarial : {false, true}) {
      auto model = tiny_model(bottleneck, 11 + (bottleneck ? 1 : 0));
      train_briefly(*model, adversarial, adversarial ? 21 : 22);

      for (const float sparsity : {0.0f, 0.5f, 0.9f}) {
        for (const Granularity granularity :
             {Granularity::kElement, Granularity::kChannel}) {
          if (sparsity == 0.0f && granularity == Granularity::kChannel) {
            continue;  // identical to the element case at zero sparsity
          }
          OmpConfig prune_cfg;
          prune_cfg.sparsity = sparsity;
          prune_cfg.granularity = granularity;
          omp_prune(*model, prune_cfg);

          model->set_training(false);
          const Tensor eager = model->forward(probe.images);

          for (const auto& format : formats) {
            CompileOptions options;
            options.force_format = format;
            const CompiledTicket plan = Engine::compile(*model, options);
            Workspace ws(plan, 8);  // smaller than the probe: chunked path
            const Tensor compiled = plan.predict(probe.images, ws);
            EXPECT_LE(max_logit_gap(eager, compiled), 1e-4f)
                << "bottleneck=" << bottleneck << " adv=" << adversarial
                << " sparsity=" << sparsity << " granularity="
                << granularity_name(granularity) << " format="
                << (format ? packed_format_name(*format) : "auto");
          }
        }
      }
    }
  }
}

TEST(EngineParity, AutoFormatMatchesMaskStructure) {
  auto model = tiny_model(false, 31);
  train_briefly(*model, false, 33);

  // Unstructured 90%: every prunable conv layer should pack as CSR.
  OmpConfig unstructured;
  unstructured.sparsity = 0.9f;
  omp_prune(*model, unstructured);
  const CompiledTicket csr_plan = Engine::compile(*model);
  bool saw_csr = false;
  for (const LayerPlan& l : csr_plan.layers()) {
    if (l.format == PackedFormat::kCsr) saw_csr = true;
  }
  EXPECT_TRUE(saw_csr);
  EXPECT_LT(csr_plan.effective_macs(), csr_plan.dense_macs() / 4);

  // Channel-structured 70%: row-pruned weights should go channel-compact.
  auto chan_model = tiny_model(false, 35);
  train_briefly(*chan_model, false, 36);
  OmpConfig channel;
  channel.sparsity = 0.7f;
  channel.granularity = Granularity::kChannel;
  omp_prune(*chan_model, channel);
  const CompiledTicket compact_plan = Engine::compile(*chan_model);
  bool saw_compact = false;
  for (const LayerPlan& l : compact_plan.layers()) {
    if (l.format == PackedFormat::kChannelCompact) saw_compact = true;
  }
  EXPECT_TRUE(saw_compact);

  // A dense model stays dense and packs to exactly its fp32 footprint.
  auto dense_model = tiny_model(false, 37);
  const CompiledTicket dense_plan = Engine::compile(*dense_model);
  for (const LayerPlan& l : dense_plan.layers()) {
    EXPECT_EQ(l.format, PackedFormat::kDense) << l.name;
    EXPECT_EQ(l.nnz, l.rows * l.cols) << l.name;
  }
}

TEST(EngineParity, Int8MatchesFakeQuantizedEagerModel) {
  auto model = tiny_model(false, 41);
  train_briefly(*model, false, 42);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.5f;
  omp_prune(*model, prune_cfg);

  CompileOptions options;
  options.int8_weights = true;
  // Pin the simulated-PTQ path: this test bounds WEIGHT quantization error
  // against the eager model. Native execution adds activation quantization
  // on top and is guarded separately in test_quant_kernels.cpp.
  options.int8_native = false;
  const CompiledTicket plan = Engine::compile(*model, options);

  // Engine int8 quantizes FOLDED weights, so parity against the eager model
  // holds only approximately; the error must be bounded by the quantization
  // step, far below what plain fp32 folding produces.
  const Dataset probe = generate_dataset(source_task_spec(), 16, 43);
  model->set_training(false);
  const Tensor eager = model->forward(probe.images);
  Workspace ws(plan, 16);
  const Tensor compiled = plan.predict(probe.images, ws);
  EXPECT_LE(eager.linf_distance(compiled), 0.15f);

  // The plan must carry the shippable int8 sidecar and price it as such.
  std::int64_t fp32_bytes = 0;
  for (const LayerPlan& l : plan.layers()) {
    EXPECT_TRUE(l.quantized);
    fp32_bytes += l.rows * l.cols * 4;
  }
  EXPECT_LT(plan.packed_bytes(), fp32_bytes);
}

TEST(EngineSession, ChunksArbitraryBatchSizes) {
  auto model = tiny_model(false, 51);
  train_briefly(*model, false, 52);
  model->set_training(false);
  const Dataset probe = generate_dataset(source_task_spec(), 23, 53);
  const Tensor eager = model->forward(probe.images);

  Session session(Engine::compile(*model), /*max_batch=*/5);
  const Tensor out = session.predict(probe.images);
  EXPECT_EQ(out.dim(0), 23);
  EXPECT_LE(eager.linf_distance(out), 1e-4f);

  const std::vector<int> classes = session.classify(probe.images);
  EXPECT_EQ(classes.size(), 23u);
}

TEST(EngineSession, ConcurrentPredictIsDeterministic) {
  auto model = tiny_model(true, 61);
  train_briefly(*model, false, 62);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.8f;
  omp_prune(*model, prune_cfg);

  Session session(Engine::compile(*model), /*max_batch=*/8);
  const Dataset probe = generate_dataset(source_task_spec(), 16, 63);
  const Tensor reference = session.predict(probe.images);

  constexpr int kThreads = 4;
  constexpr int kRepeats = 3;
  std::vector<Tensor> results(kThreads * kRepeats);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        results[static_cast<std::size_t>(t * kRepeats + r)] =
            session.predict(probe.images);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (const Tensor& out : results) {
    ASSERT_TRUE(out.same_shape(reference));
    // Bitwise equality: serial per-call execution means thread scheduling
    // cannot perturb float accumulation order.
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], reference[i]);
    }
  }
}

TEST(EngineSession, EvalHelpersAgreeWithEagerPath)
{
  auto model = tiny_model(false, 71);
  train_briefly(*model, false, 72);
  const Dataset probe = generate_dataset(source_task_spec(), 40, 73);

  Session session = make_eval_session(*model, probe, 16);
  const float engine_acc = evaluate_accuracy(session, probe);
  const float eager_acc = evaluate_accuracy(*model, probe, 16);
  EXPECT_NEAR(engine_acc, eager_acc, 1e-6f);

  const Tensor engine_probs = predict_probabilities(session, probe);
  const Tensor eager_probs = predict_probabilities(*model, probe, 16);
  EXPECT_LE(engine_probs.linf_distance(eager_probs), 1e-4f);
}

TEST(EngineParity, TinyGeometryKeepsCsrTapsInBounds) {
  // Regression: at a 4x4 compiled geometry the deepest stride-2 conv sees a
  // 1x1 input, where trunc-toward-zero division used to emit a tap reading
  // out of bounds (o1 = 1 instead of 0) and parity silently broke.
  auto model = tiny_model(false, 91);
  train_briefly(*model, false, 92);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.9f;
  omp_prune(*model, prune_cfg);
  model->set_training(false);

  Rng rng(93);
  const Tensor x = Tensor::uniform({6, 3, 4, 4}, rng, 0.0f, 1.0f);
  const Tensor eager = model->forward(x);

  CompileOptions options;
  options.height = 4;
  options.width = 4;
  options.force_format = PackedFormat::kCsr;
  const CompiledTicket plan = Engine::compile(*model, options);
  Workspace ws(plan, 6);
  EXPECT_LE(eager.linf_distance(plan.predict(x, ws)), 1e-4f);
}

TEST(EngineCompile, RejectsMismatchedGeometry) {
  auto model = tiny_model(false, 81);
  Session session(Engine::compile(*model), 8);
  Rng rng(82);
  const Tensor wrong = Tensor::uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  EXPECT_THROW(session.predict(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace rt
