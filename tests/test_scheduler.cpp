// Work-stealing scheduler tests: nested parallel_for correctness under
// contention, TaskGroup exception propagation, bitwise determinism of
// fixed-tree reductions and of the tile-parallel conv kernels under
// arbitrary stealing, and a multi-session engine stress test over one shared
// scheduler.
//
// Every test constructs its own Scheduler so thread counts are explicit and
// independent of RT_THREADS; oversubscription relative to the host's cores
// is intentional — preemption shuffles the steal order, which is exactly the
// nondeterminism the determinism contract must survive.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"
#include "common/scheduler.hpp"
#include "common/threadpool.hpp"
#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "linalg/conv.hpp"
#include "linalg/gemm.hpp"
#include "models/resnet.hpp"
#include "prune/baselines.hpp"

namespace rt {
namespace {

TEST(FunctionRef, InvokesReferencedCallable) {
  int calls = 0;
  auto fn = [&](std::int64_t b, std::int64_t e) {
    calls += static_cast<int>(e - b);
  };
  FunctionRef<void(std::int64_t, std::int64_t)> ref = fn;
  ASSERT_TRUE(static_cast<bool>(ref));
  ref(3, 7);
  EXPECT_EQ(calls, 4);
  EXPECT_FALSE(
      static_cast<bool>(FunctionRef<void(std::int64_t, std::int64_t)>()));
}

TEST(Scheduler, CoversFullRangeOnceAtEveryGrain) {
  Scheduler sched(4);
  for (const std::int64_t grain : {0, 1, 7, 100, 5000}) {
    std::vector<std::atomic<int>> hits(3001);
    sched.parallel_for(
        3001,
        [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)]++;
          }
        },
        grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(Scheduler, DeeplyNestedParallelForUnderContention) {
  // Three levels of nesting across repeated rounds: every (outer, mid,
  // inner) cell must fire exactly once per round even while workers steal
  // subranges from each other. The old flat pool ran the inner levels
  // inline-serial; the scheduler actually decomposes them, so this also
  // exercises task-group completion counting under real interleaving.
  Scheduler sched(4);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::atomic<int>> hits(8 * 8 * 8);
    sched.parallel_for(8, [&](std::int64_t ob, std::int64_t oe) {
      for (std::int64_t o = ob; o < oe; ++o) {
        sched.parallel_for(8, [&, o](std::int64_t mb, std::int64_t me) {
          for (std::int64_t m = mb; m < me; ++m) {
            sched.parallel_for(8, [&, o, m](std::int64_t ib, std::int64_t ie) {
              for (std::int64_t i = ib; i < ie; ++i) {
                hits[static_cast<std::size_t>((o * 8 + m) * 8 + i)]++;
              }
            });
          }
        });
      }
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(Scheduler, ManyExternalThreadsShareOneScheduler) {
  // N external threads each run fork/join regions against the same
  // scheduler concurrently — the multi-session serving shape. Each region
  // must see only its own completion.
  Scheduler sched(3);
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<std::int64_t> local{0};
        sched.parallel_for(97, [&](std::int64_t b, std::int64_t e) {
          local += e - b;
        });
        ASSERT_EQ(local.load(), 97);
        total += local.load();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kThreads) * kRounds * 97);
}

TEST(TaskGroup, SpawnedClosuresAllRunAndWaitBlocks) {
  Scheduler sched(4);
  std::atomic<int> ran{0};
  TaskGroup group(sched);
  auto task = [&] { ran++; };
  for (int i = 0; i < 64; ++i) group.spawn(task);
  group.wait();
  EXPECT_EQ(ran.load(), 64);
  // Reusable after wait().
  group.spawn(task);
  group.wait();
  EXPECT_EQ(ran.load(), 65);
}

TEST(TaskGroup, ServingPriorityOvertakesQueuedBulk) {
  // A 1-lane scheduler has no workers: queued tasks execute only when a
  // waiter helps, which makes the drain order observable and single-
  // threaded. Bulk spawns from this (external) thread land in the injection
  // queue, serving spawns in the urgent queue; the first wait() must drain
  // the urgent queue before any bulk task even though the bulk tasks were
  // submitted first.
  Scheduler sched(1);
  std::vector<int> order;
  TaskGroup bulk(sched);
  TaskGroup serving(sched, TaskPriority::kServing);
  auto bulk_task = [&] { order.push_back(0); };
  auto serving_task = [&] { order.push_back(1); };
  bulk.spawn(bulk_task);
  bulk.spawn(bulk_task);
  serving.spawn(serving_task);
  serving.spawn(serving_task);
  bulk.wait();  // helps: executes everything queued, urgent lane first
  serving.wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 0);
}

TEST(TaskGroup, PropagatesFirstExceptionAndCancelsRest) {
  Scheduler sched(4);
  TaskGroup group(sched);
  std::atomic<int> ran{0};
  auto ok = [&] { ran++; };
  auto boom = [&]() -> void { throw std::runtime_error("task failed"); };
  group.spawn(ok);
  group.spawn(boom);
  for (int i = 0; i < 16; ++i) group.spawn(ok);
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The group is reusable after the failure was consumed.
  group.spawn(ok);
  group.wait();
  EXPECT_GE(ran.load(), 1);
}

TEST(Scheduler, ParallelForPropagatesLeafException) {
  Scheduler sched(4);
  EXPECT_THROW(
      sched.parallel_for(1000,
                         [&](std::int64_t b, std::int64_t) {
                           if (b >= 500) throw std::invalid_argument("leaf");
                         },
                         /*grain=*/10),
      std::invalid_argument);
  // The caller runs the lowest leaves inline; a throw there must also be
  // held until every stolen subtask drained (they point into the caller's
  // frame), then rethrown.
  EXPECT_THROW(
      sched.parallel_for(1000,
                         [&](std::int64_t b, std::int64_t) {
                           if (b < 10) throw std::invalid_argument("root");
                         },
                         /*grain=*/10),
      std::invalid_argument);
  // The scheduler stays usable after a failed region.
  std::atomic<std::int64_t> sum{0};
  sched.parallel_for(100, [&](std::int64_t b, std::int64_t e) {
    sum += e - b;
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(Scheduler, FixedTreeReductionIsBitwiseStableUnderStealing) {
  // The Conv2d::backward reduction pattern: private per-slot partials over
  // a fixed slot partition, folded by a pairwise tree. Slot boundaries and
  // tree shape depend only on (slots, n), so the float bits must be
  // identical run to run no matter how leaves are stolen — with inputs
  // spanning ~12 orders of magnitude so any reassociation would show.
  Scheduler sched(4);
  constexpr std::int64_t kN = 40000;
  std::vector<float> values(kN);
  Rng rng(1234);
  for (auto& v : values) {
    v = rng.normal() * std::pow(10.0f, rng.uniform(-6.0f, 6.0f));
  }
  const std::int64_t slots = sched.num_threads();

  const auto reduce_once = [&] {
    std::vector<float> partial(static_cast<std::size_t>(slots), 0.0f);
    sched.parallel_for(slots, [&](std::int64_t s0, std::int64_t s1) {
      for (std::int64_t s = s0; s < s1; ++s) {
        const std::int64_t begin = s * kN / slots;
        const std::int64_t end = (s + 1) * kN / slots;
        float acc = 0.0f;
        for (std::int64_t i = begin; i < end; ++i) {
          acc += values[static_cast<std::size_t>(i)];
        }
        partial[static_cast<std::size_t>(s)] = acc;
      }
    });
    for (std::int64_t stride = 1; stride < slots; stride *= 2) {
      for (std::int64_t s = 0; s + stride < slots; s += 2 * stride) {
        partial[static_cast<std::size_t>(s)] +=
            partial[static_cast<std::size_t>(s + stride)];
      }
    }
    return partial[0];
  };

  const float reference = reduce_once();
  for (int run = 0; run < 20; ++run) {
    const float result = reduce_once();
    ASSERT_EQ(std::memcmp(&result, &reference, sizeof(float)), 0)
        << "run " << run << ": " << result << " vs " << reference;
  }
}

TEST(Scheduler, GemmBitwiseStableAcrossRuns) {
  // Row-block tasks are stolen in arbitrary order; each C row's accumulation
  // order is internal to its leaf, so repeated runs must agree bit for bit.
  Scheduler sched(4);
  SchedulerScope scope(sched);
  constexpr std::int64_t kN = 160;  // above the parallel threshold
  Rng rng(77);
  const Tensor a = Tensor::randn({kN, kN}, rng);
  const Tensor b = Tensor::randn({kN, kN}, rng);
  Tensor c0({kN, kN}), c1({kN, kN});
  gemm_nn(kN, kN, kN, a.data(), b.data(), c0.data());
  for (int run = 0; run < 5; ++run) {
    gemm_nn(kN, kN, kN, a.data(), b.data(), c1.data());
    ASSERT_EQ(std::memcmp(c0.data(), c1.data(),
                          static_cast<std::size_t>(kN * kN) * sizeof(float)),
              0)
        << "run " << run;
  }
}

TEST(Scheduler, TileParallelConvMatchesSerialBitwise) {
  // parallel_tiles splits the forward/wgrad output-tile loops into
  // stealable subtasks; tiles write disjoint outputs with unchanged
  // per-element accumulation order, so the bits must match the serial path
  // exactly — including with pre-packed weight panels.
  Scheduler sched(4);
  SchedulerScope scope(sched);
  constexpr std::int64_t kCh = 24, kH = 13, kW = 17;
  const ConvGeometry geom{3, 1, 1};
  const std::int64_t ckk = kCh * 9;
  Rng rng(99);
  const Tensor x = Tensor::randn({kCh, kH, kW}, rng);
  const Tensor w = Tensor::randn({kCh, ckk}, rng, 0.05f);
  const Tensor g = Tensor::randn({kCh, kH, kW}, rng);

  ConvKernelOpts serial;
  serial.algo = ConvAlgo::kImplicit;
  ConvKernelOpts tiled = serial;
  tiled.parallel_tiles = true;
  PackedWeights packed;
  packed.pack(w.data(), kCh, ckk, /*forward=*/true, /*dgrad=*/true);
  ConvKernelOpts prepacked = tiled;
  prepacked.packed_weights = &packed;

  Tensor y_ref({kCh, kH, kW}), y_tiled({kCh, kH, kW}), y_pack({kCh, kH, kW});
  conv2d_forward_plane(x.data(), kCh, kH, kW, geom, w.data(), kCh,
                       y_ref.data(), nullptr, false, serial);
  conv2d_forward_plane(x.data(), kCh, kH, kW, geom, w.data(), kCh,
                       y_tiled.data(), nullptr, false, tiled);
  conv2d_forward_plane(x.data(), kCh, kH, kW, geom, w.data(), kCh,
                       y_pack.data(), nullptr, false, prepacked);
  const auto bytes = static_cast<std::size_t>(y_ref.numel()) * sizeof(float);
  EXPECT_EQ(std::memcmp(y_ref.data(), y_tiled.data(), bytes), 0);
  EXPECT_EQ(std::memcmp(y_ref.data(), y_pack.data(), bytes), 0);

  Tensor dw_ref({kCh, ckk}), dw_tiled({kCh, ckk});
  dw_ref.fill_(0.0f);
  dw_tiled.fill_(0.0f);
  conv2d_wgrad_plane(g.data(), x.data(), kCh, kH, kW, geom, kCh,
                     dw_ref.data(), serial);
  conv2d_wgrad_plane(g.data(), x.data(), kCh, kH, kW, geom, kCh,
                     dw_tiled.data(), tiled);
  EXPECT_EQ(std::memcmp(dw_ref.data(), dw_tiled.data(),
                        static_cast<std::size_t>(dw_ref.numel()) *
                            sizeof(float)),
            0);

  Tensor dx_ref({kCh, kH, kW}), dx_pack({kCh, kH, kW});
  dx_ref.fill_(0.0f);
  dx_pack.fill_(0.0f);
  conv2d_dgrad_plane(w.data(), kCh, g.data(), kCh, kH, kW, geom,
                     dx_ref.data(), serial);
  conv2d_dgrad_plane(w.data(), kCh, g.data(), kCh, kH, kW, geom,
                     dx_pack.data(), prepacked);
  EXPECT_EQ(std::memcmp(dx_ref.data(), dx_pack.data(), bytes), 0);
}

TEST(Scheduler, DefaultThreadCountHonorsRtThreadsEnv) {
  const char* saved = std::getenv("RT_THREADS");
  const std::string restore = saved != nullptr ? saved : "";
  setenv("RT_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(Scheduler::default_thread_count(), 3);
  setenv("RT_THREADS", "0", 1);  // non-positive falls back to hardware
  EXPECT_GE(Scheduler::default_thread_count(), 1);
  setenv("RT_THREADS", "junk", 1);
  EXPECT_GE(Scheduler::default_thread_count(), 1);
  if (saved != nullptr) {
    setenv("RT_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("RT_THREADS");
  }
}

TEST(ThreadPool, WrapperStillComposesNestedLoops) {
  // The legacy entry point over the scheduler: nested calls decompose
  // rather than flatten, and results cover the range exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(48 * 32);
  pool.parallel_for(48, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      pool.parallel_for(32, [&, o](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          hits[static_cast<std::size_t>(o * 32 + i)]++;
        }
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(Scheduler, MultiSessionEngineStress) {
  // Several Sessions over one compiled ticket, hammered by external threads
  // while a shared scheduler runs their chunk tasks: every call must return
  // logits bitwise equal to a serial single-workspace reference.
  Rng rng(2026);
  auto model = make_micro_resnet18(10, rng);
  layerwise_magnitude_prune(*model, 0.9f, Granularity::kElement);
  model->set_training(false);
  const Tensor x = Tensor::uniform({24, 3, 16, 16}, rng, 0.0f, 1.0f);

  auto plan = std::make_shared<const CompiledTicket>(Engine::compile(*model));
  Session serial(plan, /*max_batch=*/24);
  const Tensor reference = serial.predict(x);

  Scheduler sched(4);
  SchedulerScope scope(sched);
  SessionOptions options;
  options.max_batch = 8;  // 3 chunk tasks per predict
  options.shared_scheduler = true;
  Session s1(plan, options);
  Session s2(plan, options);

  constexpr int kThreads = 4;
  constexpr int kCalls = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SchedulerScope thread_scope(sched);
      Session& session = (t % 2 == 0) ? s1 : s2;
      for (int c = 0; c < kCalls; ++c) {
        const Tensor logits = session.predict(x);
        if (logits.numel() != reference.numel() ||
            std::memcmp(logits.data(), reference.data(),
                        static_cast<std::size_t>(reference.numel()) *
                            sizeof(float)) != 0) {
          mismatches++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace rt
