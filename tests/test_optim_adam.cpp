// Adam / AdamW optimizer and warmup-schedule tests.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/optim.hpp"

namespace rt {
namespace {

Parameter make_param(std::vector<std::int64_t> shape, float init) {
  Parameter p;
  p.name = "w";
  p.kind = ParamKind::kLinearWeight;
  p.value = Tensor::full(shape, init);
  p.grad = Tensor(shape);
  return p;
}

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  // Minimize 0.5 * ||w - t||^2; gradient is (w - t).
  Parameter p = make_param({4}, 0.0f);
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  AdamConfig cfg;
  cfg.lr = 0.05f;
  Adam adam({&p}, cfg);
  for (int step = 0; step < 400; ++step) {
    for (int i = 0; i < 4; ++i) p.grad[i] = p.value[i] - target[i];
    adam.step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(p.value[i], target[i], 1e-2f) << "coordinate " << i;
  }
}

TEST(AdamTest, FirstStepHasLrMagnitude) {
  // After bias correction, the very first Adam update is lr * g/|g| = lr in
  // magnitude (eps-perturbed), regardless of the gradient scale.
  for (float gscale : {1e-4f, 1.0f, 1e4f}) {
    Parameter p = make_param({1}, 0.0f);
    AdamConfig cfg;
    cfg.lr = 0.01f;
    Adam adam({&p}, cfg);
    p.grad[0] = gscale;
    adam.step();
    EXPECT_NEAR(std::abs(p.value[0]), cfg.lr, cfg.lr * 1e-3f)
        << "gradient scale " << gscale;
    EXPECT_LT(p.value[0], 0.0f);  // moves against the gradient
  }
}

TEST(AdamTest, StepsTakenCounts) {
  Parameter p = make_param({2}, 1.0f);
  Adam adam({&p}, {});
  EXPECT_EQ(adam.steps_taken(), 0);
  p.grad.fill_(1.0f);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 2);
}

TEST(AdamTest, DecoupledDecayShrinksWeightsMultiplicatively) {
  // With zero gradient, AdamW's update is exactly w <- w - lr * wd * w.
  Parameter p = make_param({3}, 2.0f);
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  cfg.decoupled_weight_decay = true;
  Adam adam({&p}, cfg);
  p.grad.fill_(0.0f);
  adam.step();
  const float expected = 2.0f * (1.0f - cfg.lr * cfg.weight_decay);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], expected, 1e-5f);
}

TEST(AdamTest, ClassicDecayFlowsThroughMoments) {
  // Classic (coupled) Adam treats decay as part of the gradient: with zero
  // loss gradient the first update is lr * sign(wd * w) in magnitude, i.e.
  // the adaptive normalization erases the decay *scale*. This distinguishes
  // the two modes behaviourally.
  Parameter p = make_param({1}, 2.0f);
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  cfg.decoupled_weight_decay = false;
  Adam adam({&p}, cfg);
  p.grad[0] = 0.0f;
  adam.step();
  EXPECT_NEAR(p.value[0], 2.0f - cfg.lr, 1e-4f);
}

TEST(AdamTest, UntrainableParameterIsSkipped) {
  Parameter p = make_param({2}, 1.0f);
  p.trainable = false;
  Adam adam({&p}, {});
  p.grad.fill_(5.0f);
  adam.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
  EXPECT_FLOAT_EQ(p.value[1], 1.0f);
}

TEST(AdamTest, ZeroGradClearsGradients) {
  Parameter p = make_param({2}, 1.0f);
  Adam adam({&p}, {});
  p.grad.fill_(3.0f);
  adam.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(p.grad[1], 0.0f);
}

// The ticket invariant must hold for Adam exactly as it does for SGD:
// masked weights stay zero through any sequence of updates, including with
// weight decay and stale moment state.
class AdamMaskInvariantTest : public ::testing::TestWithParam<float> {};

TEST_P(AdamMaskInvariantTest, MaskedWeightsStayZero) {
  Parameter p = make_param({8}, 1.0f);
  Tensor mask = Tensor::ones({8});
  mask[1] = 0.0f;
  mask[5] = 0.0f;
  p.set_mask(mask);
  AdamConfig cfg;
  cfg.lr = GetParam();
  cfg.weight_decay = 0.1f;
  Adam adam({&p}, cfg);
  Rng rng(7);
  for (int step = 0; step < 25; ++step) {
    for (int i = 0; i < 8; ++i) p.grad[i] = rng.normal();
    adam.step();
  }
  EXPECT_FLOAT_EQ(p.value[1], 0.0f);
  EXPECT_FLOAT_EQ(p.value[5], 0.0f);
  // Unmasked coordinates must have moved.
  EXPECT_NE(p.value[0], 1.0f);
}

INSTANTIATE_TEST_SUITE_P(LrSweep, AdamMaskInvariantTest,
                         ::testing::Values(1e-3f, 1e-2f, 1e-1f));

TEST(WarmupLrTest, RampsLinearlyThenDelegates) {
  auto inner = std::make_unique<MultiStepLr>(1.0f, std::vector<int>{10}, 0.1f);
  WarmupLr warm(std::move(inner), 4);
  EXPECT_NEAR(warm.lr_at(0), 0.25f, 1e-6f);
  EXPECT_NEAR(warm.lr_at(1), 0.50f, 1e-6f);
  EXPECT_NEAR(warm.lr_at(3), 1.00f, 1e-6f);
  EXPECT_NEAR(warm.lr_at(4), 1.00f, 1e-6f);   // past warmup: inner value
  EXPECT_NEAR(warm.lr_at(12), 0.10f, 1e-6f);  // inner milestone applied
}

TEST(WarmupLrTest, ZeroWarmupIsIdentity) {
  auto inner = std::make_unique<CosineLr>(0.5f, 20);
  const CosineLr reference(0.5f, 20);
  WarmupLr warm(std::move(inner), 0);
  for (int e : {0, 5, 19}) {
    EXPECT_FLOAT_EQ(warm.lr_at(e), reference.lr_at(e));
  }
}

TEST(WarmupLrTest, WarmupScalesCosineTarget) {
  auto inner = std::make_unique<CosineLr>(1.0f, 100);
  const CosineLr reference(1.0f, 100);
  WarmupLr warm(std::move(inner), 10);
  // During warmup the value is the inner schedule scaled by (e+1)/warmup.
  EXPECT_NEAR(warm.lr_at(4), reference.lr_at(4) * 0.5f, 1e-6f);
}

}  // namespace
}  // namespace rt
