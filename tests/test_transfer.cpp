// Tests for the transfer pipelines: pretraining schemes, whole-model
// finetuning, linear evaluation, the evaluation battery, and segmentation
// transfer. These are integration tests on tiny models/datasets.
#include <gtest/gtest.h>

#include "data/segmentation_data.hpp"
#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "transfer/evaluate.hpp"
#include "transfer/finetune.hpp"
#include "transfer/pretrain.hpp"
#include "transfer/seg_transfer.hpp"

namespace rt {
namespace {

ResNetConfig tiny_config(int classes) {
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {8, 16};
  cfg.num_classes = classes;
  cfg.name = "tiny";
  return cfg;
}

TaskData tiny_task(float shift, int classes = 5, std::uint64_t seed = 31) {
  return load_task(downstream_task_spec("tiny-task", classes, shift, seed), 80,
                   60);
}

TEST(Pretrain, SchemeNames) {
  EXPECT_STREQ(scheme_name(PretrainScheme::kNatural), "natural");
  EXPECT_STREQ(scheme_name(PretrainScheme::kAdversarial), "adversarial");
  EXPECT_STREQ(scheme_name(PretrainScheme::kRandomizedSmoothing),
               "rand-smooth");
}

TEST(Pretrain, NaturalReachesHighSourceAccuracy) {
  Rng rng(1);
  ResNet model(tiny_config(10), rng);
  const TaskData source = load_source_task(250, 100);
  PretrainConfig cfg;
  cfg.epochs = 12;
  Rng prng(2);
  pretrain(model, source.train, cfg, prng);
  EXPECT_GT(evaluate_accuracy(model, source.test), 0.75f);
}

TEST(FinetuneWholeModel, ImprovesOverFrozenRandomHead) {
  Rng rng(3);
  ResNet model(tiny_config(10), rng);
  const TaskData source = load_source_task(200, 60);
  PretrainConfig pcfg;
  pcfg.epochs = 10;
  Rng prng(4);
  pretrain(model, source.train, pcfg, prng);

  const TaskData task = tiny_task(0.6f);
  FinetuneConfig fcfg;
  fcfg.epochs = 8;
  Rng frng(5);
  const float acc = finetune_whole_model(model, task, fcfg, frng);
  EXPECT_GT(acc, 0.45f);
  EXPECT_EQ(model.head().out_features(), 5);
}

TEST(ExtractFeatures, ShapeAndBatchInvariance) {
  Rng rng(6);
  ResNet model(tiny_config(10), rng);
  const Tensor images = Tensor::uniform({10, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor f_all = extract_features(model, images, 64);
  const Tensor f_small = extract_features(model, images, 3);
  ASSERT_EQ(f_all.dim(0), 10);
  ASSERT_EQ(f_all.dim(1), model.feature_dim());
  EXPECT_LT(f_all.linf_distance(f_small), 1e-5f)
      << "features depend on batch size";
}

TEST(LinearEval, TrainsHeadOnlyAndScoresAboveChance) {
  Rng rng(7);
  ResNet model(tiny_config(10), rng);
  const TaskData source = load_source_task(120, 60);
  PretrainConfig pcfg;
  pcfg.epochs = 6;
  Rng prng(8);
  pretrain(model, source.train, pcfg, prng);
  const StateDict before = model.state_dict();

  const TaskData task = tiny_task(0.3f);
  LinearEvalConfig lcfg;
  lcfg.epochs = 20;
  Rng lrng(9);
  const float acc = linear_eval(model, task, lcfg, lrng);
  EXPECT_GT(acc, 1.0f / 5.0f + 0.15f);

  const StateDict after = model.state_dict();
  EXPECT_LT(after.at("tiny.stem.weight")
                .linf_distance(before.at("tiny.stem.weight")),
            1e-9f)
      << "linear eval must not touch the backbone";
}

TEST(EvaluateFull, ProducesSaneMetricRanges) {
  Rng rng(10);
  ResNet model(tiny_config(10), rng);
  const TaskData source = load_source_task(120, 60);
  PretrainConfig pcfg;
  pcfg.epochs = 6;
  Rng prng(11);
  pretrain(model, source.train, pcfg, prng);

  const TaskData task = tiny_task(0.5f);
  FinetuneConfig fcfg;
  fcfg.epochs = 4;
  Rng frng(12);
  finetune_whole_model(model, task, fcfg, frng);

  const Dataset ood = generate_ood_dataset(60, 13);
  EvalConfig ecfg;
  ecfg.attack.steps = 3;
  const EvalReport r = evaluate_full(model, task.test, ood, ecfg);

  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_LE(r.adv_accuracy, r.accuracy + 1e-6);
  EXPECT_GE(r.corrupt_accuracy, 0.0);
  EXPECT_GE(r.ece, 0.0);
  EXPECT_LE(r.ece, 1.0);
  EXPECT_GT(r.nll, 0.0);
  EXPECT_GE(r.ood_auc, 0.0);
  EXPECT_LE(r.ood_auc, 1.0);
}

TEST(SegTransfer, LearnsAboveChanceMiou) {
  Rng rng(14);
  auto backbone = std::make_unique<ResNet>(tiny_config(10), rng);
  const TaskData source = load_source_task(100, 50);
  PretrainConfig pcfg;
  pcfg.epochs = 5;
  Rng prng(15);
  pretrain(*backbone, source.train, pcfg, prng);

  const SegDataset train = generate_segmentation_dataset(80, 0.4f, 16);
  const SegDataset test = generate_segmentation_dataset(40, 0.4f, 17);
  SegTransferConfig scfg;
  scfg.epochs = 5;
  scfg.feature_stage = 1;
  Rng srng(18);
  const double miou =
      segmentation_transfer(std::move(backbone), train, test, scfg, srng);
  // Background-only prediction lands around 0.2; learned models must beat it.
  EXPECT_GT(miou, 0.25);
  EXPECT_LE(miou, 1.0);
}

TEST(SegTransfer, MaskedBackboneKeepsSparsityThroughTraining) {
  Rng rng(19);
  auto backbone = std::make_unique<ResNet>(tiny_config(10), rng);
  // Install a 50% element mask on the first conv.
  Parameter& stem = *backbone->prunable_parameters().front();
  Tensor mask(stem.value.shape());
  for (std::int64_t i = 0; i < mask.numel(); i += 2) mask[i] = 1.0f;
  stem.set_mask(mask);

  SegmentationNet net(std::move(backbone), 4, /*feature_stage=*/1, rng);
  const SegDataset train = generate_segmentation_dataset(24, 0.4f, 20);
  Sgd sgd(net.parameters(), SgdConfig{0.05f, 0.9f, 1e-4f});
  const std::int64_t hw = kImageSize * kImageSize;
  for (int step = 0; step < 6; ++step) {
    std::vector<int> idx = {4 * step % 24, (4 * step + 1) % 24,
                            (4 * step + 2) % 24, (4 * step + 3) % 24};
    const Tensor x = gather_images(train.images, idx);
    std::vector<int> y;
    for (int i : idx) {
      y.insert(y.end(), train.labels.begin() + i * hw,
               train.labels.begin() + (i + 1) * hw);
    }
    net.zero_grad();
    const Tensor logits = net.forward(x);
    const LossResult loss = softmax_cross_entropy_2d(logits, y);
    net.backward(loss.grad_logits);
    sgd.step();
  }

  const Parameter& stem_after = *net.backbone().prunable_parameters().front();
  for (std::int64_t i = 1; i < stem_after.value.numel(); i += 2) {
    ASSERT_EQ(stem_after.value[i], 0.0f) << "mask violated during seg finetune";
  }
}

}  // namespace
}  // namespace rt
