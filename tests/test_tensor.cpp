// Unit tests for the Tensor core: construction, ops, reductions, matmul.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace rt {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2u);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeValidation) {
  EXPECT_THROW(Tensor({0, 3}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
  EXPECT_THROW(Tensor(std::vector<std::int64_t>{}), std::invalid_argument);
}

TEST(Tensor, FullAndOnes) {
  const Tensor f = Tensor::full({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(f[i], 2.5f);
  const Tensor o = Tensor::ones({2, 2});
  EXPECT_FLOAT_EQ(o.sum(), 4.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
  const Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, Indexing4d) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[t.numel() - 1], 7.0f);
  t.at(0, 0, 0, 0) = 3.0f;
  EXPECT_EQ(t[0], 3.0f);
}

TEST(Tensor, ElementwiseInPlace) {
  Tensor a = Tensor::from_data({3}, {1, -2, 3});
  const Tensor b = Tensor::from_data({3}, {2, 2, 2});
  a.add_(b);
  EXPECT_EQ(a[0], 3.0f);
  a.sub_(b);
  EXPECT_EQ(a[1], -2.0f);
  a.mul_(b);
  EXPECT_EQ(a[2], 6.0f);
  a.mul_(0.5f);
  EXPECT_EQ(a[2], 3.0f);
  a.add_(1.0f);
  EXPECT_EQ(a[0], 2.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  const Tensor b({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
  EXPECT_THROW(a.axpy_(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Axpy) {
  Tensor a = Tensor::from_data({2}, {1, 1});
  const Tensor x = Tensor::from_data({2}, {2, 4});
  a.axpy_(0.5f, x);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

TEST(Tensor, ClampSignAbs) {
  Tensor a = Tensor::from_data({4}, {-3, -0.5f, 0, 2});
  Tensor c = a;
  c.clamp_(-1, 1);
  EXPECT_EQ(c[0], -1.0f);
  EXPECT_EQ(c[3], 1.0f);
  Tensor s = a;
  s.sign_();
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[2], 0.0f);
  EXPECT_EQ(s[3], 1.0f);
  Tensor ab = a;
  ab.abs_();
  EXPECT_EQ(ab[0], 3.0f);
}

TEST(Tensor, Reductions) {
  const Tensor a = Tensor::from_data({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(a.sum(), -2.0f);
  EXPECT_FLOAT_EQ(a.mean(), -0.5f);
  EXPECT_FLOAT_EQ(a.min(), -4.0f);
  EXPECT_FLOAT_EQ(a.max(), 3.0f);
  EXPECT_EQ(a.argmax(), 2);
  EXPECT_FLOAT_EQ(a.sum_sq(), 30.0f);
}

TEST(Tensor, LinfDistance) {
  const Tensor a = Tensor::from_data({3}, {0, 1, 2});
  const Tensor b = Tensor::from_data({3}, {0.5f, 0.9f, 2});
  EXPECT_FLOAT_EQ(a.linf_distance(b), 0.5f);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = a.reshape({3, 2});
  EXPECT_EQ(b.at(2, 1), 6.0f);
  EXPECT_THROW(a.reshape({4, 2}), std::invalid_argument);
}

TEST(Matmul, KnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  const Tensor b = Tensor::from_data({2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_NO_THROW(matmul(a, b, false, true));
}

class MatmulTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MatmulTransposeTest, AgreesWithNaiveReference) {
  const auto [ta, tb] = GetParam();
  Rng rng(42);
  const std::int64_t m = 5, k = 7, n = 4;
  const Tensor a = ta ? Tensor::randn({k, m}, rng) : Tensor::randn({m, k}, rng);
  const Tensor b = tb ? Tensor::randn({n, k}, rng) : Tensor::randn({k, n}, rng);
  const Tensor c = matmul(a, b, ta, tb);
  ASSERT_EQ(c.dim(0), m);
  ASSERT_EQ(c.dim(1), n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at(kk, i) : a.at(i, kk);
        const float bv = tb ? b.at(j, kk) : b.at(kk, j);
        acc += av * bv;
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, MatmulTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Matmul, LargeParallelPathMatchesSerial) {
  Rng rng(7);
  // Big enough to trigger the parallel kernel.
  const Tensor a = Tensor::randn({128, 64}, rng);
  const Tensor b = Tensor::randn({64, 96}, rng);
  const Tensor c = matmul(a, b);
  // Spot-check a few entries against the naive sum.
  for (std::int64_t i : {0L, 63L, 127L}) {
    for (std::int64_t j : {0L, 47L, 95L}) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < 64; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3f);
    }
  }
}

}  // namespace
}  // namespace rt
