// serving::Server — coalescing, sharding, admission and determinism tests.
//
// The serving front-end's core contract: however requests are coalesced into
// cross-request micro-batches, split across batches, or routed to shards,
// every response is BITWISE identical to a direct per-request
// Session::predict() on the same plan. The suite also pins admission-control
// backpressure, future exception propagation, heterogeneous-shard routing,
// option validation, and a multi-client stress case (wired into the
// scripts/check.sh --tsan pass).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "prune/omp.hpp"
#include "serving/serving.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "ts";
  return std::make_unique<ResNet>(cfg, rng);
}

/// Briefly trained + 90%-pruned model, so BN folding and the CSR executor
/// are both non-trivial.
std::unique_ptr<ResNet> served_model(std::uint64_t seed) {
  auto model = tiny_model(seed);
  const Dataset train = generate_dataset(source_task_spec(), 48, seed ^ 0x11);
  TrainLoopConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  Rng rng(seed ^ 0x5EEDULL);
  train_classifier(*model, train, cfg, rng);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.9f;
  omp_prune(*model, prune_cfg);
  model->set_training(false);
  return model;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "flat index " << i;
  }
}

TEST(ServingOptions, ValidatedAtConstruction) {
  auto model = tiny_model(7);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));

  serving::ServerOptions bad_shards;
  bad_shards.shards = 0;
  EXPECT_THROW(serving::Server(plan, bad_shards), std::invalid_argument);

  serving::ServerOptions bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(serving::Server(plan, bad_batch), std::invalid_argument);

  serving::ServerOptions bad_delay;
  bad_delay.max_delay_ms = -0.5;
  EXPECT_THROW(serving::Server(plan, bad_delay), std::invalid_argument);

  serving::ServerOptions bad_capacity;
  bad_capacity.queue_capacity_rows = 0;
  EXPECT_THROW(serving::Server(plan, bad_capacity), std::invalid_argument);

  // Heterogeneous fleets must agree on geometry and class count.
  CompileOptions wide;
  wide.height = 32;
  wide.width = 32;
  auto wide_plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model, wide));
  EXPECT_THROW(serving::Server({plan, wide_plan}, serving::ServerOptions{}),
               std::invalid_argument);

  // The Session layer rejects nonpositive batches the same way now.
  EXPECT_THROW(Session(plan, SessionOptions{.max_batch = 0}),
               std::invalid_argument);
}

TEST(ServingParity, CoalescedMatchesSerialBitwise) {
  auto model = served_model(101);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));
  Session reference(plan, /*max_batch=*/8);
  const Dataset probe = generate_dataset(source_task_spec(), 24, 103);

  serving::ServerOptions opt;
  opt.shards = 2;  // identical plans: routing cannot change bits
  opt.max_batch = 8;
  // Hold partial batches open far longer than the burst takes to submit, so
  // the coalescing assertion below cannot flake on a scheduling stall (the
  // sizes sum to exactly 3 full batches, so nothing ever waits out this
  // deadline — the test still completes in milliseconds).
  opt.max_delay_ms = 500.0;
  serving::Server server(plan, opt);

  // Burst of odd-sized requests submitted together: the coalescer packs
  // rows from different requests into shared micro-batches and splits
  // across batch boundaries.
  const std::vector<std::int64_t> sizes{1, 3, 2, 5, 4, 1, 6, 2};
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  std::int64_t begin = 0;
  for (const std::int64_t n : sizes) {
    inputs.push_back(probe.images.slice_rows(begin, n));
    begin += n;
    futures.push_back(server.submit(Tensor(inputs.back())));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Tensor got = futures[i].get();
    expect_bitwise(got, reference.predict(inputs[i]));
  }

  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.completed_requests, sizes.size());
  EXPECT_EQ(st.batched_rows, 24u);
  // Coalescing happened: fewer micro-batches than requests.
  EXPECT_LT(st.batches, sizes.size());
  EXPECT_EQ(st.queued_rows, 0);
}

TEST(ServingParity, RequestLargerThanBatchIsSplitBitwise) {
  auto model = served_model(111);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));
  Session reference(plan, /*max_batch=*/64);
  const Dataset probe = generate_dataset(source_task_spec(), 23, 113);

  serving::ServerOptions opt;
  opt.max_batch = 5;  // 23 rows -> 5 micro-batches
  opt.max_delay_ms = 0.0;
  serving::Server server(plan, opt);

  const Tensor got = server.predict(probe.images);
  expect_bitwise(got, reference.predict(probe.images));
  EXPECT_GE(server.stats().batches, 5u);
}

TEST(ServingParity, HeterogeneousShardsRouteRoundRobin) {
  auto model = served_model(121);
  CompileOptions dense_opt;
  dense_opt.force_format = PackedFormat::kDense;
  CompileOptions csr_opt;
  csr_opt.force_format = PackedFormat::kCsr;
  auto dense_plan = std::make_shared<const CompiledTicket>(
      Engine::compile(*model, dense_opt));
  auto csr_plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model, csr_opt));
  auto auto_plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));

  serving::ServerOptions opt;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.0;  // each request dispatches as exactly one batch
  serving::Server server({dense_plan, csr_plan, auto_plan}, opt);
  EXPECT_EQ(server.shards(), 3);

  Session dense_ref(dense_plan, 8);
  Session csr_ref(csr_plan, 8);
  Session auto_ref(auto_plan, 8);
  Session* refs[3] = {&dense_ref, &csr_ref, &auto_ref};

  // A single sequential client: request i lands on shard i % 3, so each
  // response must be bitwise the assigned format's output — which differ
  // from each other in float rounding, proving routing really alternates.
  const Dataset probe = generate_dataset(source_task_spec(), 18, 123);
  for (int i = 0; i < 6; ++i) {
    const Tensor x = probe.images.slice_rows(i * 3, 3);
    const Tensor got = server.predict(x);
    expect_bitwise(got, refs[i % 3]->predict(x));
  }
  EXPECT_EQ(server.stats().batches, 6u);
}

TEST(ServingAdmission, SaturatedQueueRejectsWithBackpressure) {
  auto model = served_model(131);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));

  serving::ServerOptions opt;
  opt.max_batch = 64;               // never fills from 1-row requests
  opt.max_delay_ms = 1000.0;        // no deadline flush during the test
  opt.queue_capacity_rows = 16;
  const Dataset probe = generate_dataset(source_task_spec(), 1, 133);

  std::vector<std::future<Tensor>> futures;
  {
    serving::Server server(plan, opt);
    for (int i = 0; i < 30; ++i) {
      futures.push_back(server.submit(Tensor(probe.images)));
    }
    // All 30 submitted before any batch could dispatch: exactly the
    // capacity was admitted, the rest bounced.
    const serving::ServerStats st = server.stats();
    EXPECT_EQ(st.submitted_requests, 30u);
    EXPECT_EQ(st.rejected_requests, 14u);
    EXPECT_EQ(st.queued_rows, 16);
    EXPECT_EQ(st.capacity_rows, 16);
  }  // destruction flushes the admitted requests immediately

  int completed = 0, rejected = 0;
  for (std::future<Tensor>& f : futures) {
    try {
      f.get();
      ++completed;
    } catch (const serving::ServerOverloaded&) {
      ++rejected;
    }
  }
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(rejected, 14);
}

TEST(ServingErrors, FutureCarriesInvalidInput) {
  auto model = tiny_model(141);
  serving::Server server(Engine::compile(*model), serving::ServerOptions{});

  Rng rng(142);
  const Tensor wrong_extent = Tensor::uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  EXPECT_THROW(server.submit(wrong_extent).get(), std::invalid_argument);

  const Tensor wrong_rank = Tensor::uniform({2, 3}, rng, 0.0f, 1.0f);
  EXPECT_THROW(server.predict(wrong_rank), std::invalid_argument);

  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.failed_requests, 2u);
  EXPECT_EQ(st.completed_requests, 0u);
}

TEST(ServingStress, ManyClientsStayBitwiseDeterministic) {
  auto model = served_model(151);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));
  Session reference(plan, /*max_batch=*/16);
  const Dataset probe = generate_dataset(source_task_spec(), 16, 153);
  const Tensor expected = reference.predict(probe.images);

  serving::ServerOptions opt;
  opt.shards = 2;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.2;
  serving::Server server(plan, opt);

  constexpr int kClients = 4;
  constexpr int kRepeats = 3;
  std::vector<Tensor> results(kClients * kRepeats);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRepeats; ++r) {
        results[static_cast<std::size_t>(c * kRepeats + r)] =
            server.predict(probe.images);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (const Tensor& got : results) expect_bitwise(got, expected);
  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.completed_requests,
            static_cast<std::uint64_t>(kClients * kRepeats));
  EXPECT_EQ(st.rejected_requests, 0u);
  EXPECT_EQ(st.queued_rows, 0);
}

TEST(ServingLatency, BucketGeometryIsMonotoneAndCovering) {
  // Monotone: a larger latency never lands in a smaller bucket, and the
  // reported upper bound really bounds every nanosecond value the bucket
  // receives (the quantile over-estimate is at most one sub-bucket width).
  int prev = -1;
  for (const std::uint64_t ns :
       {0ull, 1ull, 3ull, 4ull, 5ull, 7ull, 8ull, 100ull, 1000ull, 4095ull,
        4096ull, 1ull << 20, 1ull << 40, ~0ull}) {
    const int bucket = serving::latency_bucket(ns);
    ASSERT_GE(bucket, prev) << "ns=" << ns;
    ASSERT_LT(bucket, serving::kLatencyBuckets);
    ASSERT_GE(serving::latency_bucket_upper_us(bucket) * 1000.0,
              static_cast<double>(ns) * (1.0 - 1e-9))
        << "ns=" << ns << " bucket=" << bucket;
    prev = bucket;
  }
  // Exact low buckets, first split octave, and the relative-resolution bound:
  // each bucket spans at most ~+25% of its lower edge.
  EXPECT_EQ(serving::latency_bucket(3), 3);
  EXPECT_EQ(serving::latency_bucket(4), 4);
  EXPECT_NE(serving::latency_bucket(4), serving::latency_bucket(5));
  // Octave [8, 16) is the first whose 4-way split makes neighbors share.
  EXPECT_EQ(serving::latency_bucket(8), serving::latency_bucket(9));
  EXPECT_NE(serving::latency_bucket(9), serving::latency_bucket(10));
}

TEST(ServingLatency, SnapshotQuantilesOrderAndMerge) {
  serving::LatencySnapshot snap;
  EXPECT_EQ(snap.quantile_us(0.5), 0.0);  // empty: no observations
  // 90 fast observations and 10 slow ones: p50 sits in the fast bucket,
  // p99 in the slow one, and quantiles are monotone in p.
  snap.buckets[static_cast<std::size_t>(serving::latency_bucket(1000))] = 90;
  snap.buckets[static_cast<std::size_t>(serving::latency_bucket(1u << 20))] =
      10;
  snap.count = 100;
  const double p50 = snap.quantile_us(0.5);
  const double p99 = snap.quantile_us(0.99);
  EXPECT_EQ(p50, serving::latency_bucket_upper_us(serving::latency_bucket(1000)));
  EXPECT_EQ(p99,
            serving::latency_bucket_upper_us(serving::latency_bucket(1u << 20)));
  EXPECT_LE(p50, p99);

  serving::LatencySnapshot other = snap;
  other.merge(snap);
  EXPECT_EQ(other.count, 200u);
  EXPECT_EQ(other.quantile_us(0.5), p50);
}

TEST(ServingLatency, ServerRecordsOneObservationPerCompletedRequest) {
  auto model = tiny_model(171);
  serving::ServerOptions opt;
  opt.max_delay_ms = 0.0;
  serving::Server server(Engine::compile(*model), opt);
  const Dataset probe = generate_dataset(source_task_spec(), 2, 173);
  for (int i = 0; i < 5; ++i) server.predict(probe.images);

  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.latency.count, st.completed_requests);
  EXPECT_GT(st.latency.quantile_us(0.5), 0.0);
  EXPECT_GE(st.latency.quantile_us(0.99), st.latency.quantile_us(0.5));

  // The per-version slice carries the same histogram: one version, so the
  // aggregate and the slice agree exactly.
  const std::vector<serving::VersionStats> per_version = server.version_stats();
  ASSERT_EQ(per_version.size(), 1u);
  EXPECT_EQ(per_version[0].version, "v0");
  EXPECT_EQ(per_version[0].latency.count, st.latency.count);
}

TEST(ServingRouting, CandidateDecisionIsPureAndProportional) {
  // Pure: same (seq, seed, fraction) -> same answer, always.
  for (const std::uint64_t seq : {0ull, 1ull, 17ull, 1000ull}) {
    EXPECT_EQ(serving::routes_to_candidate(seq, 42, 0.25),
              serving::routes_to_candidate(seq, 42, 0.25));
  }
  // Degenerate fractions are exact, not probabilistic.
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_FALSE(serving::routes_to_candidate(seq, 7, 0.0));
    EXPECT_TRUE(serving::routes_to_candidate(seq, 7, 1.0));
  }
  // Roughly proportional over a modest window, and seed-sensitive.
  int hits42 = 0, hits43 = 0;
  bool differs = false;
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    const bool a = serving::routes_to_candidate(seq, 42, 0.25);
    const bool b = serving::routes_to_candidate(seq, 43, 0.25);
    hits42 += a ? 1 : 0;
    hits43 += b ? 1 : 0;
    differs = differs || (a != b);
  }
  EXPECT_TRUE(differs);
  EXPECT_GT(hits42, 400 / 8);
  EXPECT_LT(hits42, 400 / 2);
  EXPECT_GT(hits43, 400 / 8);
  EXPECT_LT(hits43, 400 / 2);
}

TEST(ServingFleet, SwapAndCandidateValidateAgainstFrozenGeometry) {
  auto model = tiny_model(181);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model));

  serving::ServerOptions bad_version;
  bad_version.version = "";
  EXPECT_THROW(serving::Server(plan, bad_version), std::invalid_argument);

  serving::Server server(plan, serving::ServerOptions{});
  EXPECT_EQ(server.primary_version(), "v0");
  EXPECT_EQ(server.candidate_version(), "");
  EXPECT_THROW(server.promote_candidate(), std::logic_error);

  // Empty fleet, empty label, geometry mismatch: all rejected up front.
  EXPECT_THROW(server.swap_fleet({"v1", {}}), std::invalid_argument);
  EXPECT_THROW(server.swap_fleet({"", {plan}}), std::invalid_argument);
  CompileOptions wide;
  wide.height = 32;
  wide.width = 32;
  auto wide_plan =
      std::make_shared<const CompiledTicket>(Engine::compile(*model, wide));
  EXPECT_THROW(server.swap_fleet({"v1", {wide_plan}}), std::invalid_argument);
  EXPECT_THROW(server.set_candidate({"v1", {plan}}, /*fraction=*/1.5, 1),
               std::invalid_argument);

  // A valid swap + candidate + promotion sequence, no traffic involved.
  server.swap_fleet({"v1", {plan}});
  EXPECT_EQ(server.primary_version(), "v1");
  server.set_candidate({"v2", {plan, plan}}, 0.5, 9);
  EXPECT_EQ(server.candidate_version(), "v2");
  EXPECT_EQ(server.promote_candidate(), "v2");
  EXPECT_EQ(server.primary_version(), "v2");
  EXPECT_EQ(server.candidate_version(), "");
  EXPECT_EQ(server.shards(), 2);  // the candidate fleet kept its shard count

  server.clear_candidate();  // no candidate: a no-op, not an error
  const Dataset probe = generate_dataset(source_task_spec(), 2, 183);
  Session reference(plan, 2);
  expect_bitwise(server.predict(probe.images), reference.predict(probe.images));
}

TEST(ServingEval, ServerHelpersMatchSessionHelpers) {
  auto model = served_model(161);
  const Dataset probe = generate_dataset(source_task_spec(), 40, 163);

  Session session = make_eval_session(*model, probe, 16);
  serving::Server server = make_eval_server(*model, probe, 16, /*shards=*/2);

  const float session_acc = evaluate_accuracy(session, probe);
  const float server_acc = evaluate_accuracy(server, probe);
  EXPECT_FLOAT_EQ(session_acc, server_acc);

  const Tensor session_probs = predict_probabilities(session, probe);
  const Tensor server_probs = predict_probabilities(server, probe);
  expect_bitwise(server_probs, session_probs);

  // Datasets larger than the admission bound are served in blocking waves:
  // the helpers must keep the Session overloads' any-size contract instead
  // of surfacing ServerOverloaded.
  CompileOptions copt;
  copt.height = probe.images.dim(2);
  copt.width = probe.images.dim(3);
  serving::ServerOptions tight;
  tight.max_batch = 16;
  tight.max_delay_ms = 0.0;
  tight.queue_capacity_rows = 8;  // 4-row waves: 10 for the 40-row probe
  serving::Server tight_server(Engine::compile(*model, copt), tight);
  EXPECT_FLOAT_EQ(evaluate_accuracy(tight_server, probe), session_acc);
  expect_bitwise(predict_probabilities(tight_server, probe), session_probs);
}

}  // namespace
}  // namespace rt
