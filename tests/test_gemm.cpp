// Randomized conformance tests for the blocked/parallel GEMM kernels in
// linalg/gemm.hpp: every transpose variant, accumulate on/off, dense and
// heavily masked operands, shapes small enough to stay serial and large
// enough to cross the blocking and parallel thresholds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"

namespace rt {
namespace {

enum class Variant { kNN, kNT, kTN, kTT };

const char* name(Variant v) {
  switch (v) {
    case Variant::kNN: return "nn";
    case Variant::kNT: return "nt";
    case Variant::kTN: return "tn";
    case Variant::kTT: return "tt";
  }
  return "?";
}

// op(A)(i, kk): A is stored (m, k) untransposed or (k, m) transposed.
float a_at(const std::vector<float>& a, Variant v, std::int64_t m,
           std::int64_t k, std::int64_t i, std::int64_t kk) {
  const bool trans = v == Variant::kTN || v == Variant::kTT;
  return trans ? a[static_cast<std::size_t>(kk * m + i)]
               : a[static_cast<std::size_t>(i * k + kk)];
}

// op(B)(kk, j): B is stored (k, n) untransposed or (n, k) transposed.
float b_at(const std::vector<float>& b, Variant v, std::int64_t n,
           std::int64_t k, std::int64_t kk, std::int64_t j) {
  const bool trans = v == Variant::kNT || v == Variant::kTT;
  return trans ? b[static_cast<std::size_t>(j * k + kk)]
               : b[static_cast<std::size_t>(kk * n + j)];
}

std::vector<float> naive(const std::vector<float>& a,
                         const std::vector<float>& b, Variant v,
                         std::int64_t m, std::int64_t n, std::int64_t k,
                         std::vector<float> c, bool accumulate) {
  if (!accumulate) c.assign(static_cast<std::size_t>(m * n), 0.0f);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a_at(a, v, m, k, i, kk) * b_at(b, v, n, k, kk, j);
      }
      c[static_cast<std::size_t>(i * n + j)] += acc;
    }
  }
  return c;
}

void run_variant(const std::vector<float>& a, const std::vector<float>& b,
                 Variant v, std::int64_t m, std::int64_t n, std::int64_t k,
                 float* c, const GemmOpts& opts) {
  switch (v) {
    case Variant::kNN: gemm_nn(m, n, k, a.data(), b.data(), c, opts); break;
    case Variant::kNT: gemm_nt(m, n, k, a.data(), b.data(), c, opts); break;
    case Variant::kTN: gemm_tn(m, n, k, a.data(), b.data(), c, opts); break;
    case Variant::kTT: gemm_tt(m, n, k, a.data(), b.data(), c, opts); break;
  }
}

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng, float zero_fraction) {
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  for (float& v : out) {
    v = rng.uniform(0.0f, 1.0f) < zero_fraction ? 0.0f
                                                : rng.uniform(-1.0f, 1.0f);
  }
  return out;
}

void check_case(std::int64_t m, std::int64_t n, std::int64_t k,
                float zero_fraction, bool parallel, Rng& rng) {
  for (const Variant v : {Variant::kNN, Variant::kNT, Variant::kTN,
                          Variant::kTT}) {
    const std::vector<float> a = random_matrix(m, k, rng, zero_fraction);
    const std::vector<float> b = random_matrix(k, n, rng, zero_fraction);
    for (const bool accumulate : {false, true}) {
      // Both dispatch families must conform: the packed register-tiled path
      // (default) and the legacy streaming cores (packed=false, the
      // reference baseline the conv kernels benchmark against).
      for (const bool packed : {true, false}) {
        std::vector<float> c = random_matrix(m, n, rng, 0.0f);
        const std::vector<float> want =
            naive(a, b, v, m, n, k, c, accumulate);
        run_variant(a, b, v, m, n, k, c.data(),
                    {.accumulate = accumulate, .parallel = parallel,
                     .packed = packed});
        for (std::int64_t i = 0; i < m * n; ++i) {
          const float w = want[static_cast<std::size_t>(i)];
          ASSERT_NEAR(c[static_cast<std::size_t>(i)], w,
                      1e-4f * std::max(1.0f, std::fabs(w)))
              << "variant=" << name(v) << " m=" << m << " n=" << n
              << " k=" << k << " acc=" << accumulate << " packed=" << packed
              << " zeros=" << zero_fraction << " index=" << i;
        }
      }
    }
  }
}

TEST(Gemm, RandomShapeSweepDense) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 12; ++trial) {
    const auto m = static_cast<std::int64_t>(rng.uniform_int(1, 48));
    const auto n = static_cast<std::int64_t>(rng.uniform_int(1, 48));
    const auto k = static_cast<std::int64_t>(rng.uniform_int(1, 48));
    check_case(m, n, k, 0.0f, /*parallel=*/false, rng);
  }
}

TEST(Gemm, RandomShapeSweepSparse) {
  // >= 50% zeroed operands: the masked-ticket regime the fast paths target.
  Rng rng(0xBADB17);
  for (int trial = 0; trial < 8; ++trial) {
    const auto m = static_cast<std::int64_t>(rng.uniform_int(1, 40));
    const auto n = static_cast<std::int64_t>(rng.uniform_int(1, 40));
    const auto k = static_cast<std::int64_t>(rng.uniform_int(1, 40));
    const float zeros = 0.5f + 0.45f * rng.uniform(0.0f, 1.0f);
    check_case(m, n, k, zeros, /*parallel=*/false, rng);
  }
}

TEST(Gemm, BlockedAndParallelPaths) {
  // Shapes past the k/j panel sizes (128/256) and the parallel FLOP
  // threshold, dense and sparse, so the panel edges and row partitioning of
  // the ThreadPool path are all exercised.
  Rng rng(0x5EED);
  check_case(70, 300, 150, 0.0f, /*parallel=*/true, rng);
  check_case(65, 130, 260, 0.6f, /*parallel=*/true, rng);
  check_case(1, 300, 300, 0.0f, /*parallel=*/true, rng);
  check_case(300, 1, 300, 0.5f, /*parallel=*/true, rng);
}

TEST(Gemm, FullyMaskedBRowsAreSkippedButCorrect) {
  // Channel-pruned weights: whole rows of B zeroed in the nt dot core.
  Rng rng(0xDEAD);
  const std::int64_t m = 9, n = 17, k = 33;
  std::vector<float> a = random_matrix(m, k, rng, 0.0f);
  std::vector<float> b = random_matrix(n, k, rng, 0.0f);
  for (std::int64_t j = 0; j < n; j += 2) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      b[static_cast<std::size_t>(j * k + kk)] = 0.0f;
    }
  }
  std::vector<float> c(static_cast<std::size_t>(m * n), -7.0f);
  gemm_nt(m, n, k, a.data(), b.data(), c.data(), {.accumulate = false});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; j += 2) {
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)], 0.0f);
    }
  }
  // Disabling the scan (activation-operand mode) routes onto the packed
  // register-tiled kernel instead of the skipping dot core; the two must
  // agree numerically (different summation orders, so not bitwise), and
  // fully zero B rows must still produce exact zeros.
  std::vector<float> c2(static_cast<std::size_t>(m * n), -7.0f);
  gemm_nt(m, n, k, a.data(), b.data(), c2.data(),
          {.accumulate = false, .skip_zero_b_rows = false});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float got = c2[static_cast<std::size_t>(i * n + j)];
      const float want = c[static_cast<std::size_t>(i * n + j)];
      if (j % 2 == 0) {
        EXPECT_EQ(got, 0.0f);
      } else {
        EXPECT_NEAR(got, want, 1e-4f * std::max(1.0f, std::fabs(want)));
      }
    }
  }
}

TEST(Gemm, DegenerateKZeroesOrPreservesC) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm_nn(2, 2, 0, nullptr, nullptr, c.data(), {.accumulate = true});
  EXPECT_EQ(c[0], 1.0f);
  gemm_nn(2, 2, 0, nullptr, nullptr, c.data(), {.accumulate = false});
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace rt
