// Detection subsystem tests: box IoU identities, dataset integrity, loss
// gradients, decode/NMS behaviour, the mAP metric on constructed cases, and
// the end-to-end transfer harness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/detection_data.hpp"
#include "data/synth.hpp"
#include "models/detection.hpp"
#include "transfer/det_transfer.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_backbone(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {8, 16};
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

// ---------------------------------------------------------------------------
// Box IoU
// ---------------------------------------------------------------------------

TEST(BoxIouTest, IdentityAndDisjointness) {
  const BoxF a{2, 2, 6, 6};
  EXPECT_DOUBLE_EQ(box_iou(a, a), 1.0);
  const BoxF b{6, 6, 8, 8};  // touching corner: zero intersection
  EXPECT_DOUBLE_EQ(box_iou(a, b), 0.0);
}

TEST(BoxIouTest, KnownOverlap) {
  const BoxF a{0, 0, 4, 4};   // area 16
  const BoxF b{2, 2, 6, 6};   // area 16, intersection 4
  EXPECT_NEAR(box_iou(a, b), 4.0 / 28.0, 1e-9);
}

TEST(BoxIouTest, EmptyBoxHasZeroIou) {
  const BoxF empty{3, 3, 3, 5};
  const BoxF a{0, 0, 8, 8};
  EXPECT_DOUBLE_EQ(box_iou(empty, a), 0.0);
  EXPECT_FLOAT_EQ(empty.area(), 0.0f);
}

TEST(BoxIouTest, SymmetricAndBounded) {
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    const BoxF a{rng.uniform(0, 8), rng.uniform(0, 8),
                 rng.uniform(8, 16), rng.uniform(8, 16)};
    const BoxF b{rng.uniform(0, 8), rng.uniform(0, 8),
                 rng.uniform(8, 16), rng.uniform(8, 16)};
    const double ab = box_iou(a, b);
    EXPECT_DOUBLE_EQ(ab, box_iou(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(DetDatasetTest, GeneratesValidObjects) {
  const DetDataset ds = generate_detection_dataset(32, 0.3f, 5);
  EXPECT_EQ(ds.size(), 32);
  std::int64_t total = 0;
  for (const auto& objs : ds.objects) {
    EXPECT_GE(objs.size(), 0u);
    EXPECT_LE(objs.size(), 3u);
    total += static_cast<std::int64_t>(objs.size());
    for (const DetObject& o : objs) {
      EXPECT_GE(o.cls, 0);
      EXPECT_LT(o.cls, ds.num_classes);
      EXPECT_GT(o.box.area(), 0.0f);
      EXPECT_GE(o.box.x0, 0.0f);
      EXPECT_LE(o.box.x1, static_cast<float>(kImageSize));
      EXPECT_GE(o.box.y0, 0.0f);
      EXPECT_LE(o.box.y1, static_cast<float>(kImageSize));
    }
  }
  EXPECT_GT(total, 32);  // more than one object per image on average
  EXPECT_GE(ds.images.min(), 0.0f);
  EXPECT_LE(ds.images.max(), 1.0f);
}

TEST(DetDatasetTest, DeterministicInSeed) {
  const DetDataset a = generate_detection_dataset(8, 0.2f, 9);
  const DetDataset b = generate_detection_dataset(8, 0.2f, 9);
  EXPECT_EQ(a.images.linf_distance(b.images), 0.0f);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    ASSERT_EQ(a.objects[i].size(), b.objects[i].size());
  }
}

TEST(DetDatasetTest, ObjectsOccupyDistinctStride2Cells) {
  const DetDataset ds = generate_detection_dataset(64, 0.2f, 11);
  for (const auto& objs : ds.objects) {
    for (std::size_t a = 0; a < objs.size(); ++a) {
      for (std::size_t b = a + 1; b < objs.size(); ++b) {
        const int ca_x = static_cast<int>(objs[a].box.cx()) / 2;
        const int ca_y = static_cast<int>(objs[a].box.cy()) / 2;
        const int cb_x = static_cast<int>(objs[b].box.cx()) / 2;
        const int cb_y = static_cast<int>(objs[b].box.cy()) / 2;
        EXPECT_FALSE(ca_x == cb_x && ca_y == cb_y);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

TEST(DetectionLossTest, GradientMatchesFiniteDifference) {
  Rng rng(13);
  Tensor head_map = Tensor::randn({2, 3 + 1 + 4, 4, 4}, rng);
  const DetDataset ds = generate_detection_dataset(2, 0.1f, 17);
  const DetLossResult r = detection_loss(head_map, ds.objects, 3, 4);
  const float eps = 1e-3f;
  Rng pick(19);
  for (int t = 0; t < 40; ++t) {
    const std::int64_t i =
        pick.next_below(static_cast<std::uint32_t>(head_map.numel()));
    const float saved = head_map[i];
    head_map[i] = saved + eps;
    const float up = detection_loss(head_map, ds.objects, 3, 4).loss;
    head_map[i] = saved - eps;
    const float dn = detection_loss(head_map, ds.objects, 3, 4).loss;
    head_map[i] = saved;
    EXPECT_NEAR(r.grad[i], (up - dn) / (2.0f * eps), 5e-3f)
        << "element " << i;
  }
}

TEST(DetectionLossTest, PerfectPredictionHasSmallLossAndDecodesToGt) {
  // Build the head map straight from the assignment targets: huge logit on
  // each cell's target class, exact box parameters on positive cells.
  const DetDataset ds = generate_detection_dataset(4, 0.1f, 23);
  const int stride = 2, hf = 8, wf = 8;
  const DetTargets targets =
      assign_detection_targets(ds.objects, stride, hf, wf);
  Tensor head_map({4, 3 + 1 + 4, hf, wf});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t cell = 0; cell < hf * wf; ++cell) {
      const int cls = targets.cls[static_cast<std::size_t>(i * hf * wf + cell)];
      const std::int64_t base = i * 8 * hf * wf;
      head_map.data()[base + cls * hf * wf + cell] = 12.0f;
      const float* t = targets.box.data() +
                       static_cast<std::size_t>((i * hf * wf + cell) * 4);
      for (int k = 0; k < 4; ++k) {
        head_map.data()[base + (4 + k) * hf * wf + cell] = t[k];
      }
    }
  }
  const DetLossResult r = detection_loss(head_map, ds.objects, 3, stride);
  EXPECT_LT(r.class_loss, 1e-4f);
  EXPECT_LT(r.box_loss, 1e-6f);

  // The decoder + NMS recover every object (duplicates from the centre
  // region collapse onto identical boxes).
  const auto decoded = decode_detections(head_map, 3, stride, 0.5f);
  const double map = detection_map(decoded, ds.objects, 3, 0.5);
  EXPECT_GT(map, 0.99);
}

TEST(DetectionTargetsTest, CentreSamplingCoversMultipleCells) {
  const DetDataset ds = generate_detection_dataset(16, 0.1f, 29);
  const DetTargets targets = assign_detection_targets(ds.objects, 2, 8, 8);
  std::int64_t positives = 0, objects = 0;
  for (int t : targets.cls) positives += t > 0 ? 1 : 0;
  for (const auto& objs : ds.objects) {
    objects += static_cast<std::int64_t>(objs.size());
  }
  ASSERT_GT(objects, 0);
  // Radius 1.5*stride = 3 px covers several stride-2 cells per object.
  EXPECT_GT(positives, objects * 2);
}

// ---------------------------------------------------------------------------
// Decode / NMS / mAP
// ---------------------------------------------------------------------------

TEST(DecodeTest, BackgroundEverywhereYieldsNoDetections) {
  Tensor head_map({1, 8, 4, 4});
  for (std::int64_t px = 0; px < 16; ++px) {
    head_map.data()[px] = 10.0f;  // background channel dominant
  }
  const auto out = decode_detections(head_map, 3, 4, 0.5f);
  EXPECT_TRUE(out[0].empty());
}

TEST(DecodeTest, NmsSuppressesDuplicates) {
  // Two adjacent cells predicting the same class with overlapping boxes:
  // only the higher-scoring one survives.
  Tensor head_map({1, 8, 4, 4});
  for (std::int64_t px = 0; px < 16; ++px) {
    head_map.data()[px] = 6.0f;  // background default
  }
  auto set_cell = [&](std::int64_t cell, float cls_logit, float dx, float dy,
                      float w, float h) {
    head_map.data()[0 * 16 + cell] = 0.0f;
    head_map.data()[1 * 16 + cell] = cls_logit;  // class 0
    head_map.data()[4 * 16 + cell] = dx;
    head_map.data()[5 * 16 + cell] = dy;
    head_map.data()[6 * 16 + cell] = w;
    head_map.data()[7 * 16 + cell] = h;
  };
  set_cell(5, 8.0f, 0.9f, 0.5f, 0.5f, 0.5f);  // centre ~(7.6, 5.9)
  set_cell(6, 7.0f, 0.1f, 0.5f, 0.5f, 0.5f);  // centre ~(8.3, 5.9): overlaps
  const auto out = decode_detections(head_map, 3, 4, 0.5f, 0.45f);
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0][0].cls, 0);
  EXPECT_GT(out[0][0].score, 0.85f);
}

TEST(MapTest, PerfectPredictionsScoreOne) {
  std::vector<std::vector<DetObject>> truth(2);
  truth[0].push_back({BoxF{2, 2, 6, 6}, 0});
  truth[1].push_back({BoxF{8, 8, 14, 14}, 1});
  std::vector<std::vector<Detection>> pred(2);
  pred[0].push_back({BoxF{2, 2, 6, 6}, 0, 0.9f});
  pred[1].push_back({BoxF{8, 8, 14, 14}, 1, 0.8f});
  EXPECT_DOUBLE_EQ(detection_map(pred, truth, 3), 1.0);
}

TEST(MapTest, MissedAndSpuriousDetectionsLowerAp) {
  std::vector<std::vector<DetObject>> truth(2);
  truth[0].push_back({BoxF{2, 2, 6, 6}, 0});
  truth[1].push_back({BoxF{8, 8, 14, 14}, 0});
  std::vector<std::vector<Detection>> pred(2);
  // One correct high-score hit, one spurious higher-score miss elsewhere.
  pred[0].push_back({BoxF{2, 2, 6, 6}, 0, 0.7f});
  pred[1].push_back({BoxF{0, 0, 3, 3}, 0, 0.9f});
  const double map = detection_map(pred, truth, 3);
  EXPECT_GT(map, 0.0);
  EXPECT_LT(map, 1.0);
}

TEST(MapTest, DuplicateDetectionsCountOnce) {
  std::vector<std::vector<DetObject>> truth(1);
  truth[0].push_back({BoxF{2, 2, 6, 6}, 0});
  std::vector<std::vector<Detection>> pred(1);
  pred[0].push_back({BoxF{2, 2, 6, 6}, 0, 0.9f});
  pred[0].push_back({BoxF{2, 2, 6, 6}, 0, 0.8f});  // duplicate: FP
  const double map = detection_map(pred, truth, 3);
  EXPECT_DOUBLE_EQ(map, 1.0);  // envelope AP: recall 1 reached at precision 1
}

TEST(MapTest, WrongClassNeverMatches) {
  std::vector<std::vector<DetObject>> truth(1);
  truth[0].push_back({BoxF{2, 2, 6, 6}, 0});
  std::vector<std::vector<Detection>> pred(1);
  pred[0].push_back({BoxF{2, 2, 6, 6}, 1, 0.9f});
  EXPECT_DOUBLE_EQ(detection_map(pred, truth, 3), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end
// ---------------------------------------------------------------------------

TEST(DetTransferTest, LearnsToDetectOnTinyTask) {
  // Guards against the all-background collapse (mAP == 0) that a
  // mis-weighted class loss produces. The backbone is random-init (the
  // hardest case; the benches transfer *pretrained* backbones), so the bar
  // is "clearly detects", not "detects well": mAP varies with seed around
  // 0.2-0.45 at this budget.
  const DetDataset train = generate_detection_dataset(160, 0.2f, 31);
  const DetDataset test = generate_detection_dataset(64, 0.2f, 32);
  DetTransferConfig cfg;
  cfg.epochs = 24;
  cfg.score_threshold = 0.2f;
  Rng rng(33);
  const double map =
      detection_transfer(tiny_backbone(34), train, test, cfg, rng);
  EXPECT_GT(map, 0.12) << "mAP@0.5 = " << map;
  EXPECT_LE(map, 1.0);
}

TEST(DetTransferTest, MasksSurviveDetectionFinetuning) {
  auto backbone = tiny_backbone(35);
  // Prune the backbone, then make sure detection training preserves it.
  for (Parameter* p : backbone->prunable_parameters()) {
    Tensor mask = Tensor::ones(p->value.shape());
    for (std::int64_t i = 0; i < mask.numel(); i += 3) mask[i] = 0.0f;
    p->set_mask(mask);
  }
  const DetDataset train = generate_detection_dataset(48, 0.2f, 36);
  Rng rng(38);
  DetectionNet net(std::move(backbone), train.num_classes, 1, rng);
  Sgd sgd(net.parameters(), {});
  for (int step = 0; step < 8; ++step) {
    net.set_training(true);
    net.zero_grad();
    const Tensor head_map = net.forward(train.images);
    const DetLossResult loss =
        detection_loss(head_map, train.objects, train.num_classes,
                       net.stride());
    net.backward(loss.grad);
    sgd.step();
  }
  for (Parameter* p : net.backbone().prunable_parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] == 0.0f) {
        ASSERT_FLOAT_EQ(p->value[i], 0.0f) << p->name;
      }
    }
  }
}

}  // namespace
}  // namespace rt
