// Analysis-module tests: CKA invariances, mask overlap statistics, feature
// probes, correlation utilities, and the sharpness probe.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/cka.hpp"
#include "analysis/correlation.hpp"
#include "analysis/features.hpp"
#include "analysis/landscape.hpp"
#include "analysis/mask_stats.hpp"
#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

// ---------------------------------------------------------------------------
// CKA
// ---------------------------------------------------------------------------

TEST(CkaTest, SelfSimilarityIsOne) {
  Rng rng(1);
  const Tensor x = Tensor::randn({32, 6}, rng);
  EXPECT_NEAR(linear_cka(x, x), 1.0, 1e-6);
}

TEST(CkaTest, InvariantToIsotropicScaling) {
  Rng rng(2);
  const Tensor x = Tensor::randn({24, 5}, rng);
  const Tensor y = Tensor::randn({24, 7}, rng);
  const double base = linear_cka(x, y);
  EXPECT_NEAR(linear_cka(x.scaled(3.7f), y), base, 1e-6);
  EXPECT_NEAR(linear_cka(x, y.scaled(0.02f)), base, 1e-6);
}

TEST(CkaTest, InvariantToOrthogonalTransform) {
  Rng rng(3);
  const Tensor x = Tensor::randn({40, 2}, rng);
  const Tensor y = Tensor::randn({40, 3}, rng);
  const double base = linear_cka(x, y);
  // Rotate the 2-D representation by 40 degrees.
  const float a = 40.0f * 3.14159265f / 180.0f;
  Tensor xr({40, 2});
  for (std::int64_t i = 0; i < 40; ++i) {
    xr.at(i, 0) = std::cos(a) * x.at(i, 0) - std::sin(a) * x.at(i, 1);
    xr.at(i, 1) = std::sin(a) * x.at(i, 0) + std::cos(a) * x.at(i, 1);
  }
  EXPECT_NEAR(linear_cka(xr, y), base, 1e-5);
}

TEST(CkaTest, BoundedAndLowForIndependentFeatures) {
  Rng rng(4);
  const Tensor x = Tensor::randn({200, 4}, rng);
  const Tensor y = Tensor::randn({200, 4}, rng);
  const double cka = linear_cka(x, y);
  EXPECT_GE(cka, 0.0);
  EXPECT_LE(cka, 1.0);
  EXPECT_LT(cka, 0.35);  // independent high-n features decorrelate
}

TEST(CkaTest, RejectsMismatchedRows) {
  Rng rng(5);
  EXPECT_THROW(
      linear_cka(Tensor::randn({8, 3}, rng), Tensor::randn({9, 3}, rng)),
      std::invalid_argument);
}

TEST(CkaStageProfileTest, IdenticalModelsScoreOneEverywhere) {
  auto model = tiny_model(6);
  const Dataset d = generate_dataset(source_task_spec(), 16, 7);
  const auto profile = cka_stage_profile(*model, *model, d.images);
  ASSERT_EQ(profile.size(), static_cast<std::size_t>(model->num_stages()) + 1);
  for (double v : profile) EXPECT_NEAR(v, 1.0, 1e-5);
}

TEST(CkaStageProfileTest, DifferentInitsDivergeButStayBounded) {
  auto a = tiny_model(7);
  auto b = tiny_model(8);
  const Dataset d = generate_dataset(source_task_spec(), 24, 9);
  const auto profile = cka_stage_profile(*a, *b, d.images);
  for (double v : profile) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  // At least one stage must differ from perfect similarity.
  bool any_below = false;
  for (double v : profile) any_below = any_below || v < 0.999;
  EXPECT_TRUE(any_below);
}

// ---------------------------------------------------------------------------
// Mask statistics
// ---------------------------------------------------------------------------

TEST(MaskOverlapTest, IdenticalMasksAreFullyOverlapping) {
  auto model = tiny_model(10);
  OmpConfig cfg;
  cfg.sparsity = 0.5f;
  const MaskSet m = omp_prune(*model, cfg);
  const MaskOverlap o = mask_overlap(m, m);
  EXPECT_DOUBLE_EQ(o.iou, 1.0);
  EXPECT_DOUBLE_EQ(o.agreement, 1.0);
  EXPECT_GT(o.positions, 0);
}

TEST(MaskOverlapTest, DisjointMasksHaveZeroIou) {
  MaskSet a, b;
  a.set("w", Tensor::from_data({1, 4}, {1, 1, 0, 0}));
  b.set("w", Tensor::from_data({1, 4}, {0, 0, 1, 1}));
  const MaskOverlap o = mask_overlap(a, b);
  EXPECT_DOUBLE_EQ(o.iou, 0.0);
  EXPECT_DOUBLE_EQ(o.agreement, 0.0);
}

TEST(MaskOverlapTest, RandomMasksMatchExpectedIou) {
  // Two independent random masks at density ~0.5 on a large tensor: the
  // empirical IoU must be close to the analytic null expectation.
  Rng rng(11);
  const std::int64_t n = 20000;
  Tensor ma({1, n}), mb({1, n});
  for (std::int64_t i = 0; i < n; ++i) {
    ma[i] = rng.bernoulli(0.5f) ? 1.0f : 0.0f;
    mb[i] = rng.bernoulli(0.5f) ? 1.0f : 0.0f;
  }
  MaskSet a, b;
  a.set("w", std::move(ma));
  b.set("w", std::move(mb));
  const MaskOverlap o = mask_overlap(a, b);
  EXPECT_NEAR(o.iou, o.expected_iou, 0.02);
}

TEST(MaskOverlapTest, ThrowsWithoutSharedNames) {
  MaskSet a, b;
  a.set("x", Tensor::ones({2, 2}));
  b.set("y", Tensor::ones({2, 2}));
  EXPECT_THROW(mask_overlap(a, b), std::invalid_argument);
}

TEST(MaskOverlapTest, PerLayerKeysMatchSharedNames) {
  auto model_a = tiny_model(12);
  auto model_b = tiny_model(13);
  OmpConfig cfg;
  cfg.sparsity = 0.6f;
  const MaskSet a = omp_prune(*model_a, cfg);
  const MaskSet b = omp_prune(*model_b, cfg);
  const auto by_layer = mask_overlap_by_layer(a, b);
  EXPECT_EQ(by_layer.size(), a.size());
  for (const auto& [name, overlap] : by_layer) {
    EXPECT_TRUE(a.contains(name));
    EXPECT_GE(overlap.iou, 0.0);
    EXPECT_LE(overlap.iou, 1.0);
  }
}

TEST(KeepProfileTest, MatchesGlobalSparsity) {
  auto model = tiny_model(14);
  OmpConfig cfg;
  cfg.sparsity = 0.7f;
  const MaskSet m = omp_prune(*model, cfg);
  const auto profile = keep_profile(m);
  double kept_weighted = 0.0, total = 0.0;
  for (const auto& [name, kept] : profile) {
    EXPECT_GE(kept, 0.0);
    EXPECT_LE(kept, 1.0);
    const double numel = static_cast<double>(m.get(name).numel());
    kept_weighted += kept * numel;
    total += numel;
  }
  EXPECT_NEAR(1.0 - kept_weighted / total, m.sparsity(), 1e-9);
}

// ---------------------------------------------------------------------------
// Feature probes
// ---------------------------------------------------------------------------

Tensor cluster_features(float separation, std::uint64_t seed, int per_class,
                        std::vector<int>* labels) {
  Rng rng(seed);
  Tensor f({2 * per_class, 3});
  labels->clear();
  for (int i = 0; i < 2 * per_class; ++i) {
    const int cls = i < per_class ? 0 : 1;
    labels->push_back(cls);
    for (std::int64_t j = 0; j < 3; ++j) {
      f.at(i, j) = rng.normal() + (cls == 0 ? 0.0f : separation);
    }
  }
  return f;
}

TEST(FisherSeparationTest, GrowsWithClusterDistance) {
  std::vector<int> labels;
  const Tensor near = cluster_features(0.5f, 20, 40, &labels);
  const double f_near = fisher_separation(near, labels);
  const Tensor far = cluster_features(5.0f, 20, 40, &labels);
  const double f_far = fisher_separation(far, labels);
  EXPECT_GT(f_far, f_near * 5.0);
}

TEST(FisherSeparationTest, RequiresTwoClasses) {
  Rng rng(21);
  const Tensor f = Tensor::randn({10, 3}, rng);
  const std::vector<int> labels(10, 0);
  EXPECT_THROW(fisher_separation(f, labels), std::invalid_argument);
}

TEST(EffectiveRankTest, IsotropicNearDimensionRankOneNearOne) {
  Rng rng(22);
  const Tensor iso = Tensor::randn({400, 4}, rng);
  EXPECT_GT(effective_rank(iso), 3.6);
  EXPECT_LE(effective_rank(iso), 4.0 + 1e-6);

  // Rank-1: every row is a multiple of the same direction.
  Tensor rank1({50, 4});
  for (std::int64_t i = 0; i < 50; ++i) {
    const float a = rng.normal();
    for (std::int64_t j = 0; j < 4; ++j) rank1.at(i, j) = a * (1.0f + j);
  }
  EXPECT_NEAR(effective_rank(rank1), 1.0, 0.05);
}

TEST(KnnProbeTest, PerfectOnSeparatedClusters) {
  std::vector<int> train_labels, test_labels;
  const Tensor train = cluster_features(8.0f, 23, 30, &train_labels);
  const Tensor test = cluster_features(8.0f, 24, 10, &test_labels);
  EXPECT_FLOAT_EQ(
      knn_probe_accuracy(train, train_labels, test, test_labels, 5), 1.0f);
}

TEST(KnnProbeTest, ChanceOnUninformativeFeatures) {
  Rng rng(25);
  const Tensor train = Tensor::randn({60, 4}, rng);
  const Tensor test = Tensor::randn({40, 4}, rng);
  std::vector<int> train_labels, test_labels;
  for (int i = 0; i < 60; ++i) train_labels.push_back(i % 2);
  for (int i = 0; i < 40; ++i) test_labels.push_back(i % 2);
  const float acc =
      knn_probe_accuracy(train, train_labels, test, test_labels, 5);
  EXPECT_GT(acc, 0.25f);
  EXPECT_LT(acc, 0.75f);
}

TEST(KnnProbeTest, LargeKClampsToTrainSize) {
  std::vector<int> train_labels, test_labels;
  const Tensor train = cluster_features(8.0f, 26, 5, &train_labels);
  const Tensor test = cluster_features(8.0f, 27, 4, &test_labels);
  // k = 100 > 10 train rows: must not crash; balanced vote degrades info,
  // accuracy is whatever the tie-break yields but the call must be valid.
  const float acc =
      knn_probe_accuracy(train, train_labels, test, test_labels, 100);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
}

// ---------------------------------------------------------------------------
// Correlations
// ---------------------------------------------------------------------------

TEST(CorrelationTest, PearsonKnownValues) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, neg), -1.0, 1e-12);
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, flat), 0.0);
}

TEST(CorrelationTest, SpearmanCapturesMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(std::exp(i));  // monotone but wildly nonlinear
  }
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson_correlation(x, y), 0.95);  // linear corr is weaker
}

TEST(CorrelationTest, RankTransformAveragesTies) {
  const std::vector<double> v{3.0, 1.0, 3.0, 2.0};
  const auto ranks = rank_transform(v);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[3], 2.0);
  EXPECT_DOUBLE_EQ(ranks[0], 3.5);  // the two 3.0s share ranks 3 and 4
  EXPECT_DOUBLE_EQ(ranks[2], 3.5);
}

TEST(CorrelationTest, RejectsDegenerateInput) {
  EXPECT_THROW(pearson_correlation({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(pearson_correlation({1.0, 2.0}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sharpness
// ---------------------------------------------------------------------------

TEST(SharpnessTest, RestoresWeightsExactly) {
  auto model = tiny_model(30);
  const TaskData task = load_task("cifar10", 48, 32);
  std::vector<Tensor> before;
  for (Parameter* p : model->parameters()) before.push_back(p->value);

  SharpnessConfig cfg;
  cfg.directions = 3;
  loss_sharpness(*model, task.test, cfg);

  std::size_t i = 0;
  for (Parameter* p : model->parameters()) {
    EXPECT_EQ(p->value.linf_distance(before[i]), 0.0f) << p->name;
    ++i;
  }
}

TEST(SharpnessTest, ZeroRadiusMeansZeroIncrease) {
  auto model = tiny_model(31);
  const TaskData task = load_task("cifar10", 32, 24);
  SharpnessConfig cfg;
  cfg.rho = 0.0f;
  cfg.directions = 2;
  const SharpnessReport r = loss_sharpness(*model, task.test, cfg);
  EXPECT_NEAR(r.mean_increase, 0.0, 1e-6);
  EXPECT_NEAR(r.max_increase, 0.0, 1e-6);
  EXPECT_GT(r.base_loss, 0.0);
}

TEST(SharpnessTest, PerturbationStaysInsideTicket) {
  // With a mask installed, the probe must not perturb pruned weights: a
  // model whose loss only depends on surviving weights must report the same
  // base loss and mask invariant afterwards.
  auto model = tiny_model(32);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.5f;
  omp_prune(*model, prune_cfg);
  const TaskData task = load_task("cifar10", 32, 24);
  SharpnessConfig cfg;
  cfg.directions = 2;
  loss_sharpness(*model, task.test, cfg);
  for (Parameter* p : model->prunable_parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] == 0.0f) EXPECT_FLOAT_EQ(p->value[i], 0.0f);
    }
  }
}

TEST(SharpnessTest, TrainedModelSitsInABasin) {
  // After training, random perturbations should (on average) increase the
  // loss — the probe must report a positive mean increase.
  auto model = tiny_model(33);
  TaskData task = load_task("cifar10", 96, 48);
  TrainLoopConfig train_cfg;
  train_cfg.epochs = 6;
  Rng rng(34);
  train_classifier(*model, task.train, train_cfg, rng);

  SharpnessConfig cfg;
  cfg.rho = 0.08f;
  cfg.directions = 6;
  const SharpnessReport r = loss_sharpness(*model, task.train, cfg);
  EXPECT_GT(r.mean_increase, 0.0);
  EXPECT_GE(r.max_increase, r.mean_increase);
}

}  // namespace
}  // namespace rt
