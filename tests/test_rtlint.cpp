// tests/test_rtlint.cpp — pins rtlint's rule behavior against the known-bad
// snippets in tests/lint_fixtures/ (RT_LINT_FIXTURE_DIR, injected by CMake).
// Each fixture documents its expected findings inline; these tests assert
// the exact (rule, line) set so a lexer regression that silently stops
// flagging — or starts over-flagging — fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "rtlint.hpp"

namespace {

using rtlint::FileKind;
using rtlint::Finding;
using rtlint::Rule;

std::vector<Finding> lint_fixture(const std::string& name,
                                  const FileKind& kind) {
  const std::string path = std::string(RT_LINT_FIXTURE_DIR) + "/" + name;
  return rtlint::lint_file(path, kind);
}

/// (rule, line) pairs, sorted, for exact-set comparison.
std::vector<std::pair<Rule, int>> keys(const std::vector<Finding>& findings) {
  std::vector<std::pair<Rule, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RtLint, R1FlagsBlockingSyncInKernelHotPaths) {
  const auto findings =
      lint_fixture("r1_bad.cpp", FileKind{.kernel_hot_path = true});
  // Line 13 names two banned constructs (lock_guard and its mutex argument),
  // so it is reported twice — every offending token gets its own finding.
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR1, 10}, {Rule::kR1, 13}, {Rule::kR1, 13}, {Rule::kR1, 14}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, R1IgnoredOutsideKernelHotPaths) {
  EXPECT_TRUE(lint_fixture("r1_bad.cpp", FileKind{}).empty());
}

TEST(RtLint, R2FlagsAllocationOnlyInsideRtHotBodies) {
  const auto findings = lint_fixture("r2_bad.cpp", FileKind{});
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR2, 11}, {Rule::kR2, 12}, {Rule::kR2, 13}};
  EXPECT_EQ(keys(findings), expected);
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("hot_path"), std::string::npos)
        << "finding should name the RT_HOT function: " << f.message;
  }
}

TEST(RtLint, R3FlagsOrderlessAtomicsWhereOrdersAreRequired) {
  const auto findings =
      lint_fixture("r3_bad.cpp", FileKind{.ordered_atomics = true});
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR3, 16}, {Rule::kR3, 17}, {Rule::kR3, 18}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, R3IgnoredOutsideOrderedAtomicsScope) {
  EXPECT_TRUE(lint_fixture("r3_bad.cpp", FileKind{}).empty());
}

TEST(RtLint, R4FlagsNondeterminismSources) {
  const auto findings = lint_fixture("r4_bad.cpp", FileKind{});
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR4, 10}, {Rule::kR4, 13}, {Rule::kR4, 14}, {Rule::kR4, 15}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, R4ExemptInRngSources) {
  EXPECT_TRUE(
      lint_fixture("r4_bad.cpp", FileKind{.rng_exempt = true}).empty());
}

TEST(RtLint, R5FlagsHeaderHygiene) {
  const auto findings = lint_fixture("r5_bad.hpp", FileKind{.header = true});
  // Line 4 carries two violations: the first directive is not #pragma once,
  // and the include itself reaches uphill.
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR5, 4}, {Rule::kR5, 4}, {Rule::kR5, 6}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, SuppressionCommentsSilenceNamedRulesOnly) {
  const auto findings = lint_fixture("suppressed.cpp", FileKind{});
  // Every violation is suppressed except the last, whose allow() names the
  // wrong rule (R1), so its R2 finding must survive.
  const std::vector<std::pair<Rule, int>> expected = {{Rule::kR2, 15}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, RegistrySwapFixturePinsR3InRegistryScope) {
  // The FileKind comes from classify() on a registry path, not a literal
  // FileKind{...}: if src/registry/ ever falls out of the ordered-atomics
  // scope, the expected findings vanish and this test fails.
  const FileKind kind = rtlint::classify("src/registry/registry.cpp");
  EXPECT_TRUE(kind.ordered_atomics);
  const auto findings = lint_fixture("registry_swap_bad.cpp", kind);
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR3, 16}, {Rule::kR3, 17}, {Rule::kR3, 21}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, ServingCacheFixturePinsR3InCacheScope) {
  // classify() on the real prediction-cache path: if src/serving/cache.*
  // ever falls out of the ordered-atomics scope, the expected findings
  // vanish and this test fails.
  const FileKind kind = rtlint::classify("src/serving/cache.cpp");
  EXPECT_TRUE(kind.ordered_atomics);
  const auto findings = lint_fixture("cache_bad.cpp", kind);
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR3, 17}, {Rule::kR3, 21}, {Rule::kR3, 22}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, NetFixturePinsR3AndR5InNetScope) {
  // classify() on the real socket front-end path: if src/net/ ever falls
  // out of the ordered-atomics scope, the R3 findings vanish and this test
  // fails. The fixture also plants an uphill include for the R5 check that
  // applies to every file kind.
  const FileKind kind = rtlint::classify("src/net/net.cpp");
  EXPECT_TRUE(kind.ordered_atomics);
  EXPECT_FALSE(kind.kernel_hot_path);
  const auto findings = lint_fixture("net_bad.cpp", kind);
  const std::vector<std::pair<Rule, int>> expected = {
      {Rule::kR3, 17}, {Rule::kR3, 18}, {Rule::kR3, 22}, {Rule::kR5, 7}};
  EXPECT_EQ(keys(findings), expected);
}

TEST(RtLint, ClassifyMatchesRepoLayout) {
  const FileKind gemm = rtlint::classify("src/linalg/gemm.cpp");
  EXPECT_TRUE(gemm.kernel_hot_path);
  EXPECT_FALSE(gemm.header);
  EXPECT_FALSE(gemm.ordered_atomics);

  const FileKind plan = rtlint::classify("src/engine/plan.cpp");
  EXPECT_TRUE(plan.kernel_hot_path);

  const FileKind engine = rtlint::classify("src/engine/engine.cpp");
  EXPECT_FALSE(engine.kernel_hot_path);

  const FileKind sched = rtlint::classify("src/common/scheduler.cpp");
  EXPECT_TRUE(sched.ordered_atomics);
  EXPECT_FALSE(sched.kernel_hot_path);

  const FileKind serving = rtlint::classify("src/serving/serving.hpp");
  EXPECT_TRUE(serving.ordered_atomics);
  EXPECT_TRUE(serving.header);

  const FileKind net = rtlint::classify("src/net/net.hpp");
  EXPECT_TRUE(net.ordered_atomics);
  EXPECT_TRUE(net.header);
  EXPECT_FALSE(net.kernel_hot_path);

  // The prediction cache rides the src/serving/ prefix: R3 applies to both
  // halves, R4 (no unordered containers) applies as everywhere, and the
  // implementation is not a kernel hot path.
  const FileKind cache_hpp = rtlint::classify("src/serving/cache.hpp");
  EXPECT_TRUE(cache_hpp.ordered_atomics);
  EXPECT_TRUE(cache_hpp.header);
  const FileKind cache_cpp = rtlint::classify("src/serving/cache.cpp");
  EXPECT_TRUE(cache_cpp.ordered_atomics);
  EXPECT_FALSE(cache_cpp.kernel_hot_path);
  EXPECT_FALSE(cache_cpp.rng_exempt);

  const FileKind registry = rtlint::classify("src/registry/registry.hpp");
  EXPECT_TRUE(registry.ordered_atomics);
  EXPECT_TRUE(registry.header);
  EXPECT_FALSE(registry.kernel_hot_path);

  // tools/ is linted (check.sh passes it alongside src/) with no special
  // scopes: R2/R4/R5 apply, R1/R3 do not.
  const FileKind tool = rtlint::classify("tools/rtlint/rtlint.cpp");
  EXPECT_FALSE(tool.kernel_hot_path);
  EXPECT_FALSE(tool.ordered_atomics);
  EXPECT_FALSE(tool.rng_exempt);

  const FileKind rng = rtlint::classify("src/common/rng.cpp");
  EXPECT_TRUE(rng.rng_exempt);
}

TEST(RtLint, FormatFindingIsFileLineRuleMessage) {
  const Finding f{Rule::kR3, "src/serving/serving.cpp", 42, "msg"};
  EXPECT_EQ(rtlint::format_finding(f), "src/serving/serving.cpp:42: [R3] msg");
}

TEST(RtLint, LintFileThrowsOnMissingFile) {
  EXPECT_THROW(rtlint::lint_file("/nonexistent/rtlint-fixture.cpp", FileKind{}),
               std::runtime_error);
}

}  // namespace
