// Hardware/edge-module tests: storage formats, the roofline cost model, the
// channel-shrink compiler (functional equivalence), and int8 PTQ.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "hw/cost_model.hpp"
#include "hw/quant.hpp"
#include "hw/shrink.hpp"
#include "hw/storage.hpp"
#include "nn/loss.hpp"
#include "prune/nm_sparsity.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_basic(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

std::unique_ptr<ResNet> tiny_bottleneck(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.block = ResNetConfig::BlockType::kBottleneck;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.bottleneck_expansion = 2;
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

Parameter masked_param(std::int64_t rows, std::int64_t cols, float density,
                       std::uint64_t seed) {
  Parameter p;
  p.name = "w";
  p.kind = ParamKind::kLinearWeight;
  Rng rng(seed);
  p.value = Tensor::randn({rows, cols}, rng);
  Tensor mask({rows, cols});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.bernoulli(density) ? 1.0f : 0.0f;
  }
  p.set_mask(mask);
  return p;
}

// ---------------------------------------------------------------------------
// Storage formats
// ---------------------------------------------------------------------------

TEST(StorageTest, DenseFormatsHaveExactSizes) {
  Parameter p;
  p.kind = ParamKind::kLinearWeight;
  Rng rng(1);
  p.value = Tensor::randn({8, 16}, rng);  // 128 weights
  EXPECT_EQ(parameter_bytes(p, StorageFormat::kDenseFp32), 128 * 4);
  EXPECT_EQ(parameter_bytes(p, StorageFormat::kDenseFp16), 128 * 2);
  EXPECT_EQ(parameter_bytes(p, StorageFormat::kDenseInt8), 128 + 8 * 4);
}

TEST(StorageTest, BitmaskWinsAtHighSparsityLosesWhenDense) {
  const Parameter dense = masked_param(16, 64, 1.0f, 2);
  EXPECT_GT(parameter_bytes(dense, StorageFormat::kBitmaskFp16),
            parameter_bytes(dense, StorageFormat::kDenseFp16));
  const Parameter sparse = masked_param(16, 64, 0.1f, 3);
  EXPECT_LT(parameter_bytes(sparse, StorageFormat::kBitmaskFp16),
            parameter_bytes(sparse, StorageFormat::kDenseFp16));
}

TEST(StorageTest, CsrBeatsBitmaskOnlyAtExtremeSparsity) {
  // CSR pays 2 bytes of column index per value; the bitmask pays numel/8
  // regardless. Crossover sits near density ~ 1/16.
  const Parameter extreme = masked_param(32, 64, 0.02f, 4);
  EXPECT_LT(parameter_bytes(extreme, StorageFormat::kCsrFp16),
            parameter_bytes(extreme, StorageFormat::kBitmaskFp16));
  const Parameter mild = masked_param(32, 64, 0.3f, 5);
  EXPECT_GT(parameter_bytes(mild, StorageFormat::kCsrFp16),
            parameter_bytes(mild, StorageFormat::kBitmaskFp16));
}

TEST(StorageTest, ChannelCompactPricesKeptRowsOnly) {
  Parameter p;
  p.kind = ParamKind::kConvWeight;
  Rng rng(6);
  p.value = Tensor::randn({8, 36}, rng);
  Tensor mask = Tensor::ones({8, 36});
  for (std::int64_t c = 0; c < 36; ++c) {  // kill rows 0..3
    for (std::int64_t r = 0; r < 4; ++r) mask.at(r, c) = 0.0f;
  }
  p.set_mask(mask);
  EXPECT_EQ(parameter_bytes(p, StorageFormat::kChannelCompactFp16),
            4 * 36 * 2 + 1);
}

TEST(StorageTest, BestFormatIsMinimal) {
  for (float density : {0.05f, 0.3f, 0.9f}) {
    const Parameter p = masked_param(16, 48, density, 7);
    const StorageFormat best = best_format(p);
    for (StorageFormat f : all_storage_formats()) {
      EXPECT_LE(parameter_bytes(p, best), parameter_bytes(p, f))
          << "density " << density << " vs " << storage_format_name(f);
    }
  }
}

TEST(StorageTest, NmBytesPacksSubByteIndices) {
  // 2:4 on 64 weights: 32 kept values. fp16 values = 64B; 2-bit indices
  // packed = 8B.
  Parameter p = masked_param(4, 16, 1.0f, 8);
  p.clear_mask();
  NmConfig unused;  // document intent: mask comes from nm pruning
  (void)unused;
  Tensor mask(p.value.shape());
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 16; c += 4) {
      mask.at(r, c) = 1.0f;
      mask.at(r, c + 1) = 1.0f;
    }
  }
  p.set_mask(mask);
  EXPECT_EQ(nm_parameter_bytes(p, 4), 32 * 2 + 8);
}

TEST(StorageTest, ModelBytesShrinkWithSparsityUnderBitmask) {
  auto dense = tiny_basic(9);
  auto sparse = tiny_basic(9);
  OmpConfig cfg;
  cfg.sparsity = 0.9f;
  omp_prune(*sparse, cfg);
  EXPECT_LT(model_bytes(*sparse, StorageFormat::kBitmaskFp16),
            model_bytes(*dense, StorageFormat::kBitmaskFp16));
  // Dense formats are sparsity-blind.
  EXPECT_EQ(model_bytes(*sparse, StorageFormat::kDenseFp16),
            model_bytes(*dense, StorageFormat::kDenseFp16));
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, DenseModelHasUnitSpeedup) {
  auto model = tiny_basic(10);
  const CostEstimate c = estimate_cost(*model, kImageSize, kImageSize,
                                       mobile_npu_profile(),
                                       Granularity::kElement);
  EXPECT_EQ(c.dense_macs, c.effective_macs);
  EXPECT_GT(c.latency_seconds, 0.0);
  EXPECT_GT(c.energy_joules, 0.0);
}

TEST(CostModelTest, McuIgnoresElementSparsityButRealizesChannel) {
  auto element = tiny_basic(11);
  OmpConfig ecfg;
  ecfg.sparsity = 0.7f;
  omp_prune(*element, ecfg);
  const CostEstimate ce = estimate_cost(*element, kImageSize, kImageSize,
                                        edge_mcu_profile(),
                                        Granularity::kElement);
  EXPECT_EQ(ce.effective_macs, ce.dense_macs);  // no sparse units

  auto channel = tiny_basic(11);
  OmpConfig ccfg;
  ccfg.sparsity = 0.7f;
  ccfg.granularity = Granularity::kChannel;
  omp_prune(*channel, ccfg);
  const CostEstimate cc = estimate_cost(*channel, kImageSize, kImageSize,
                                        edge_mcu_profile(),
                                        Granularity::kChannel);
  EXPECT_LT(cc.effective_macs, cc.dense_macs);
}

TEST(CostModelTest, SpeedupOrderedByGranularityOnNpu) {
  // Same nominal sparsity, increasing granularity: the NPU realizes more of
  // the reduction as structure coarsens (element < row < kernel < channel).
  const HardwareProfile npu = mobile_npu_profile();
  double prev_macs = -1.0;
  for (Granularity g : {Granularity::kChannel, Granularity::kKernel,
                        Granularity::kRow, Granularity::kElement}) {
    auto model = tiny_basic(12);
    OmpConfig cfg;
    cfg.sparsity = 0.6f;
    cfg.granularity = g;
    omp_prune(*model, cfg);
    const CostEstimate c =
        estimate_cost(*model, kImageSize, kImageSize, npu, g);
    if (prev_macs >= 0.0) {
      EXPECT_GE(static_cast<double>(c.effective_macs), prev_macs)
          << granularity_name(g);
    }
    prev_macs = static_cast<double>(c.effective_macs);
  }
}

TEST(CostModelTest, NmCostBeatsDenseOnNpu) {
  auto model = tiny_basic(13);
  nm_prune(*model, {});  // 2:4
  const CostEstimate sparse = estimate_nm_cost(*model, kImageSize, kImageSize,
                                               mobile_npu_profile(), 4);
  EXPECT_LT(sparse.effective_macs, sparse.dense_macs);
  EXPECT_GT(sparse.realized_speedup, 1.0);
}

TEST(CostModelTest, QuantizedCostReflectsNativeInt8Execution) {
  // estimate_quantized_cost prices the engine's int8_native path: when
  // compute-bound, latency drops by exactly the profile's measured
  // int8_compute_speedup; weight bytes shrink versus the fp16 shipping
  // format either way.
  auto model = tiny_basic(15);
  HardwareProfile hw = sparse_cpu_profile();
  ASSERT_GT(hw.int8_compute_speedup, 1.0);
  const CostEstimate fp = estimate_cost(*model, kImageSize, kImageSize, hw,
                                        Granularity::kElement);
  const CostEstimate q8 = estimate_quantized_cost(
      *model, kImageSize, kImageSize, hw, Granularity::kElement);
  EXPECT_EQ(q8.effective_macs, fp.effective_macs);  // same MACs, faster units
  EXPECT_LT(q8.weight_bytes, fp.weight_bytes);
  EXPECT_LT(q8.latency_seconds, fp.latency_seconds);
  if (static_cast<double>(fp.effective_macs) / hw.macs_per_second >
      static_cast<double>(fp.weight_bytes) / hw.bytes_per_second) {
    EXPECT_NEAR(q8.latency_seconds * hw.int8_compute_speedup,
                fp.latency_seconds, 1e-9);
  }

  // A sparse ticket keeps its index metadata: the int8 sidecar saves one
  // byte per kept value, so bytes still shrink but by less than 2x of the
  // fp16 CSR payload.
  auto sparse = tiny_basic(15);
  OmpConfig cfg;
  cfg.sparsity = 0.9f;
  omp_prune(*sparse, cfg);
  const CostEstimate sfp = estimate_cost(*sparse, kImageSize, kImageSize, hw,
                                         Granularity::kElement);
  const CostEstimate sq8 = estimate_quantized_cost(
      *sparse, kImageSize, kImageSize, hw, Granularity::kElement);
  EXPECT_LT(sq8.weight_bytes, sfp.weight_bytes);
  EXPECT_GT(sq8.realized_speedup, sfp.realized_speedup);
}

TEST(CostModelTest, RooflineTakesTheMax) {
  auto model = tiny_basic(14);
  HardwareProfile hw = mobile_npu_profile();
  hw.bytes_per_second = 1.0;  // pathological memory: must dominate latency
  const CostEstimate c =
      estimate_cost(*model, kImageSize, kImageSize, hw, Granularity::kElement);
  EXPECT_NEAR(c.latency_seconds, static_cast<double>(c.weight_bytes), 1e-6);
}

// ---------------------------------------------------------------------------
// Shrink compiler
// ---------------------------------------------------------------------------

class ShrinkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, float>> {};

TEST_P(ShrinkEquivalenceTest, ShrunkModelComputesSameFunction) {
  const auto [bottleneck, sparsity] = GetParam();
  auto model = bottleneck ? tiny_bottleneck(15) : tiny_basic(15);
  OmpConfig cfg;
  cfg.sparsity = sparsity;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  neutralize_dead_internal_channels(*model);

  const Dataset d = generate_dataset(source_task_spec(), 8, 16);
  model->set_training(false);
  const Tensor before = model->forward(d.images);
  const std::int64_t params_before = model->num_parameters();

  Rng rng(17);
  const ShrinkReport report = shrink_internal_channels(*model, rng);
  const Tensor after = model->forward(d.images);

  EXPECT_LT(before.linf_distance(after), 1e-5f);
  EXPECT_EQ(report.params_before, params_before);
  if (sparsity >= 0.5f) {
    EXPECT_GT(report.channels_removed, 0);
    EXPECT_LT(report.params_after, report.params_before);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchAndSparsity, ShrinkEquivalenceTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(0.3f, 0.5f, 0.7f, 0.9f)),
    [](const ::testing::TestParamInfo<std::tuple<bool, float>>& info) {
      return std::string(std::get<0>(info.param) ? "bottleneck" : "basic") +
             "_s" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100.0f));
    });

TEST(ShrinkTest, NeutralizeIsIdempotent) {
  auto model = tiny_basic(18);
  OmpConfig cfg;
  cfg.sparsity = 0.6f;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  EXPECT_GT(neutralize_dead_internal_channels(*model), 0);
  EXPECT_EQ(neutralize_dead_internal_channels(*model), 0);
}

TEST(ShrinkTest, KeepsAtLeastOneChannelUnderExtremePruning) {
  auto model = tiny_basic(19);
  OmpConfig cfg;
  cfg.sparsity = 0.97f;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  Rng rng(20);
  compile_for_deployment(*model, rng);
  const Dataset d = generate_dataset(source_task_spec(), 4, 21);
  model->set_training(false);
  const Tensor logits = model->forward(d.images);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST(ShrinkTest, ShrunkModelStillTrains) {
  auto model = tiny_basic(22);
  OmpConfig cfg;
  cfg.sparsity = 0.6f;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  Rng rng(23);
  compile_for_deployment(*model, rng);

  TaskData task = load_task("cifar10", 48, 24);
  TrainLoopConfig train_cfg;
  train_cfg.epochs = 2;
  const TrainStats stats =
      train_classifier(*model, task.train, train_cfg, rng);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
}

TEST(ShrinkTest, UnprunedModelIsUntouched) {
  auto model = tiny_basic(24);
  Rng rng(25);
  const ShrinkReport report = compile_for_deployment(*model, rng);
  EXPECT_EQ(report.channels_removed, 0);
  EXPECT_EQ(report.channels_neutralized, 0);
  EXPECT_EQ(report.params_before, report.params_after);
}

TEST(ShrinkTest, ReportsParameterReduction) {
  auto model = tiny_basic(26);
  OmpConfig cfg;
  cfg.sparsity = 0.8f;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  Rng rng(27);
  const ShrinkReport report = compile_for_deployment(*model, rng);
  EXPECT_GT(report.param_reduction(), 0.0);
  EXPECT_LT(report.param_reduction(), 1.0);
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

TEST(QuantTest, RoundtripErrorBoundedByHalfScale) {
  Parameter p = masked_param(6, 20, 1.0f, 30);
  p.clear_mask();
  const Tensor before = p.value;
  const auto scales = fake_quantize(p, QuantScheme::kPerChannel, 8);
  ASSERT_EQ(scales.size(), 6u);
  for (std::int64_t r = 0; r < 6; ++r) {
    for (std::int64_t c = 0; c < 20; ++c) {
      EXPECT_LE(std::fabs(before.at(r, c) - p.value.at(r, c)),
                scales[static_cast<std::size_t>(r)] * 0.5f + 1e-7f);
    }
  }
}

TEST(QuantTest, MaskedWeightsStayZero) {
  Parameter p = masked_param(8, 16, 0.5f, 31);
  fake_quantize(p, QuantScheme::kPerChannel, 8);
  for (std::int64_t i = 0; i < p.value.numel(); ++i) {
    if (p.mask[i] == 0.0f) EXPECT_FLOAT_EQ(p.value[i], 0.0f);
  }
}

TEST(QuantTest, PerChannelBeatsPerTensorOnSkewedRows) {
  // Rows with wildly different magnitudes: a single tensor scale wastes
  // resolution on the small rows.
  auto make = [] {
    Parameter p;
    p.kind = ParamKind::kLinearWeight;
    Rng rng(32);
    p.value = Tensor::randn({2, 64}, rng);
    for (std::int64_t c = 0; c < 64; ++c) p.value.at(0, c) *= 100.0f;
    return p;
  };
  Parameter per_tensor = make();
  Parameter per_channel = make();
  const Tensor ref = per_tensor.value;

  fake_quantize(per_tensor, QuantScheme::kPerTensor, 8);
  fake_quantize(per_channel, QuantScheme::kPerChannel, 8);

  double err_tensor = 0.0, err_channel = 0.0;
  for (std::int64_t c = 0; c < 64; ++c) {  // compare on the small row
    err_tensor += std::fabs(ref.at(1, c) - per_tensor.value.at(1, c));
    err_channel += std::fabs(ref.at(1, c) - per_channel.value.at(1, c));
  }
  EXPECT_LT(err_channel, err_tensor);
}

class QuantBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitsTest, MoreBitsMeanLessError) {
  const int bits = GetParam();
  auto model_low = tiny_basic(33);
  auto model_high = tiny_basic(33);
  QuantConfig low;
  low.bits = bits;
  QuantConfig high;
  high.bits = bits + 2;
  const QuantReport r_low = quantize_model(*model_low, low);
  const QuantReport r_high = quantize_model(*model_high, high);
  EXPECT_GT(r_low.mean_abs_error, r_high.mean_abs_error);
  EXPECT_GT(r_low.tensors_quantized, 0);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantBitsTest, ::testing::Values(2, 4, 6));

TEST(QuantTest, AllZeroRowGetsZeroScale) {
  Parameter p;
  p.kind = ParamKind::kLinearWeight;
  p.value = Tensor::zeros({3, 8});
  const auto scales = fake_quantize(p, QuantScheme::kPerChannel, 8);
  for (float s : scales) EXPECT_FLOAT_EQ(s, 0.0f);
  EXPECT_FLOAT_EQ(p.value.sum_sq(), 0.0f);
}

TEST(QuantTest, TrainedAccuracySurvivesInt8) {
  auto model = tiny_basic(34);
  TaskData task = load_task("cifar10", 96, 64);
  TrainLoopConfig train_cfg;
  train_cfg.epochs = 6;
  Rng rng(35);
  train_classifier(*model, task.train, train_cfg, rng);
  const float before = evaluate_accuracy(*model, task.test);

  QuantConfig cfg;  // per-channel int8
  const QuantReport report = quantize_model(*model, cfg);
  const float after = evaluate_accuracy(*model, task.test);
  EXPECT_GE(after, before - 0.08f) << "int8 cost " << before - after;
  EXPECT_LT(report.int_storage_bytes,
            model_bytes(*model, StorageFormat::kDenseFp16));
}

}  // namespace
}  // namespace rt
