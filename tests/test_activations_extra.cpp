// New pointwise activations (LeakyReLU / GELU / SiLU): known values,
// finite-difference gradient checks, and shape preservation.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.hpp"

namespace rt {
namespace {

using ActivationFactory = std::function<std::unique_ptr<Module>()>;

struct ActivationCase {
  const char* name;
  ActivationFactory make;
};

class ActivationTest : public ::testing::TestWithParam<ActivationCase> {};

TEST_P(ActivationTest, PreservesShapeAndIsFinite) {
  auto act = GetParam().make();
  Rng rng(1);
  const Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 2.0f);
  const Tensor y = act->forward(x);
  ASSERT_TRUE(y.same_shape(x));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i]));
  }
}

TEST_P(ActivationTest, FixesZero) {
  auto act = GetParam().make();
  const Tensor x = Tensor::zeros({1, 4});
  const Tensor y = act->forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], 0.0f);
  }
}

TEST_P(ActivationTest, IdentityLikeForLargePositiveInputs) {
  auto act = GetParam().make();
  const Tensor x = Tensor::full({1, 3}, 20.0f);
  const Tensor y = act->forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y[i], 20.0f, 1e-3f);
  }
}

TEST_P(ActivationTest, BackwardMatchesFiniteDifference) {
  auto act = GetParam().make();
  Rng rng(2);
  Tensor x = Tensor::randn({2, 6}, rng, 1.5f);
  const Tensor y = act->forward(x);
  // Scalar objective L = sum(y); dL/dy = 1.
  const Tensor grad = act->backward(Tensor::ones(y.shape()));
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const float up = act->forward(x).sum();
    x[i] = saved - eps;
    const float dn = act->forward(x).sum();
    x[i] = saved;
    act->forward(x);  // restore cache for consistency
    EXPECT_NEAR(grad[i], (up - dn) / (2.0f * eps), 5e-3f)
        << GetParam().name << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pointwise, ActivationTest,
    ::testing::Values(
        ActivationCase{"LeakyReLU",
                       [] { return std::make_unique<LeakyReLU>(0.1f); }},
        ActivationCase{"GELU", [] { return std::make_unique<GELU>(); }},
        ActivationCase{"SiLU", [] { return std::make_unique<SiLU>(); }}),
    [](const ::testing::TestParamInfo<ActivationCase>& info) {
      return info.param.name;
    });

TEST(LeakyReluTest, NegativeSlopeIsExact) {
  LeakyReLU act(0.2f);
  const Tensor x = Tensor::from_data({1, 3}, {-2.0f, 0.0f, 3.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], -0.4f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(GeluTest, MatchesErfDefinitionAtKnownPoints) {
  GELU act;
  const Tensor x = Tensor::from_data({1, 2}, {1.0f, -1.0f});
  const Tensor y = act.forward(x);
  const float phi1 = 0.5f * (1.0f + std::erf(1.0f / std::sqrt(2.0f)));
  EXPECT_NEAR(y[0], phi1, 1e-6f);
  EXPECT_NEAR(y[1], -(1.0f - phi1), 1e-6f);
}

TEST(SiluTest, GlobalMinimumNearMinus1p278) {
  // SiLU's minimum value is about -0.2785 at x ~ -1.2785.
  SiLU act;
  const Tensor x = Tensor::from_data({1, 1}, {-1.2785f});
  const Tensor y = act.forward(x);
  EXPECT_NEAR(y[0], -0.2785f, 1e-3f);
  // Gradient at the minimum is ~0.
  const Tensor g = act.backward(Tensor::ones({1, 1}));
  EXPECT_NEAR(g[0], 0.0f, 1e-3f);
}

}  // namespace
}  // namespace rt
