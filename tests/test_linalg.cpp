// Tests for the symmetric eigensolver, PSD square root, feature statistics,
// the Frechet distance, and the CSR sparse kernels behind the engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "linalg/sparse.hpp"
#include "linalg/stats.hpp"
#include "linalg/sym_eig.hpp"

namespace rt {
namespace {

std::vector<float> sparse_random(std::int64_t n, float density,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = rng.uniform() < density ? rng.normal() : 0.0f;
  }
  return v;
}

TEST(CsrMatrix, RoundTripsExactNonzeros) {
  const std::int64_t rows = 7, cols = 13;
  const std::vector<float> dense = sparse_random(rows * cols, 0.2f, 3);
  const CsrMatrix m = csr_from_dense(rows, cols, dense.data());
  std::int64_t expected_nnz = 0;
  for (float x : dense) expected_nnz += x != 0.0f ? 1 : 0;
  EXPECT_EQ(m.nnz(), expected_nnz);
  // Scatter back and compare.
  std::vector<float> back(static_cast<std::size_t>(rows * cols), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int32_t t = m.row_ptr[static_cast<std::size_t>(r)];
         t < m.row_ptr[static_cast<std::size_t>(r) + 1]; ++t) {
      back[static_cast<std::size_t>(r * cols + m.col_idx[t])] = m.values[t];
    }
  }
  EXPECT_EQ(back, dense);
}

TEST(SpmmCsr, MatchesDenseProduct) {
  const std::int64_t rows = 9, cols = 17, n = 11;
  const std::vector<float> a = sparse_random(rows * cols, 0.15f, 5);
  const std::vector<float> b = sparse_random(cols * n, 1.0f, 6);
  const CsrMatrix m = csr_from_dense(rows, cols, a.data());

  std::vector<float> got(static_cast<std::size_t>(rows * n), 42.0f);
  spmm_csr(m, n, b.data(), got.data());
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (std::int64_t k = 0; k < cols; ++k) {
        ref += a[static_cast<std::size_t>(r * cols + k)] *
               b[static_cast<std::size_t>(k * n + j)];
      }
      EXPECT_NEAR(got[static_cast<std::size_t>(r * n + j)], ref, 1e-4f);
    }
  }

  // Accumulate mode adds onto the existing buffer.
  std::vector<float> acc(static_cast<std::size_t>(rows * n), 1.0f);
  spmm_csr(m, n, b.data(), acc.data(), /*accumulate=*/true);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    EXPECT_NEAR(acc[i], got[i] + 1.0f, 1e-4f);
  }
}

TEST(SpmmCsrRhsT, MatchesDenseProduct) {
  const std::int64_t rows = 6, cols = 10, m_samples = 5;
  const std::vector<float> a = sparse_random(rows * cols, 0.3f, 7);
  const std::vector<float> x = sparse_random(m_samples * cols, 1.0f, 8);
  const CsrMatrix m = csr_from_dense(rows, cols, a.data());

  std::vector<float> got(static_cast<std::size_t>(m_samples * rows));
  spmm_csr_rhs_t(m, m_samples, x.data(), got.data());
  for (std::int64_t i = 0; i < m_samples; ++i) {
    for (std::int64_t r = 0; r < rows; ++r) {
      float ref = 0.0f;
      for (std::int64_t k = 0; k < cols; ++k) {
        ref += x[static_cast<std::size_t>(i * cols + k)] *
               a[static_cast<std::size_t>(r * cols + k)];
      }
      EXPECT_NEAR(got[static_cast<std::size_t>(i * rows + r)], ref, 1e-4f);
    }
  }
}

TEST(SpmmCsr, EmptyRowsProduceZeroRows) {
  std::vector<float> a(4 * 3, 0.0f);
  a[1 * 3 + 2] = 2.0f;  // only row 1 has a nonzero
  const CsrMatrix m = csr_from_dense(4, 3, a.data());
  const std::vector<float> b(3 * 2, 1.0f);
  std::vector<float> c(4 * 2, 99.0f);
  spmm_csr(m, 2, b.data(), c.data());
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[2], 2.0f);
  EXPECT_EQ(c[3], 2.0f);
  EXPECT_EQ(c[6], 0.0f);
}

TEST(SymEig, DiagonalMatrix) {
  Tensor a({3, 3});
  a.at(0, 0) = 3.0f;
  a.at(1, 1) = 1.0f;
  a.at(2, 2) = 2.0f;
  const SymEig eig = sym_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0f, 1e-5f);
}

TEST(SymEig, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Tensor a = Tensor::from_data({2, 2}, {2, 1, 1, 2});
  const SymEig eig = sym_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0f, 1e-5f);
}

TEST(SymEig, ReconstructsMatrix) {
  Rng rng(1);
  const std::int64_t n = 8;
  // Symmetric random matrix.
  Tensor a({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i; j < n; ++j) {
      const float v = rng.normal();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  const SymEig eig = sym_eig(a);
  // A ?= V diag(w) V^T
  Tensor scaled({n, n});
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < n; ++i) {
      scaled.at(i, j) = eig.eigenvectors.at(i, j) * eig.eigenvalues[j];
    }
  }
  const Tensor recon = matmul(scaled, eig.eigenvectors, false, true);
  EXPECT_LT(a.linf_distance(recon), 1e-4f);
}

TEST(SymEig, EigenvectorsOrthonormal) {
  Rng rng(2);
  const std::int64_t n = 6;
  Tensor a({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i; j < n; ++j) {
      const float v = rng.normal();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  const SymEig eig = sym_eig(a);
  const Tensor vtv = matmul(eig.eigenvectors, eig.eigenvectors, true, false);
  EXPECT_LT(vtv.linf_distance(eye(n)), 1e-4f);
}

TEST(SymEig, RejectsNonSquare) {
  EXPECT_THROW(sym_eig(Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(sym_eig(Tensor({4})), std::invalid_argument);
}

class SymSqrtPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SymSqrtPropertyTest, SquareOfSqrtIsOriginal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 5 + GetParam() % 4;
  // Random PSD: A = B B^T.
  const Tensor b = Tensor::randn({n, n}, rng);
  const Tensor a = matmul(b, b, false, true);
  const Tensor r = sym_sqrt(a);
  const Tensor rr = matmul(r, r);
  EXPECT_LT(a.linf_distance(rr), 2e-3f * std::max(1.0f, a.max()));
}

INSTANTIATE_TEST_SUITE_P(RandomPsd, SymSqrtPropertyTest,
                         ::testing::Range(1, 9));

TEST(SymSqrt, IdentityRoot) {
  const Tensor r = sym_sqrt(eye(4));
  EXPECT_LT(r.linf_distance(eye(4)), 1e-5f);
}

TEST(Trace, SumsDiagonal) {
  const Tensor a = Tensor::from_data({2, 2}, {1, 9, 9, 2});
  EXPECT_FLOAT_EQ(trace(a), 3.0f);
  EXPECT_THROW(trace(Tensor({2, 3})), std::invalid_argument);
}

TEST(FeatureStats, MeanAndCovariance) {
  // Two points (0,0) and (2,2): mean (1,1), cov [[2,2],[2,2]] (unbiased).
  const Tensor f = Tensor::from_data({2, 2}, {0, 0, 2, 2});
  const FeatureStats s = feature_stats(f);
  EXPECT_FLOAT_EQ(s.mean[0], 1.0f);
  EXPECT_FLOAT_EQ(s.mean[1], 1.0f);
  EXPECT_FLOAT_EQ(s.covariance.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.covariance.at(0, 1), 2.0f);
}

TEST(FrechetDistance, ZeroForIdenticalStats) {
  Rng rng(3);
  const Tensor f = Tensor::randn({64, 8}, rng);
  const FeatureStats s = feature_stats(f);
  EXPECT_NEAR(frechet_distance(s, s), 0.0, 1e-3);
}

TEST(FrechetDistance, MeanShiftOnly) {
  // Same covariance, means differ by d: FID = |d|^2.
  Rng rng(4);
  const Tensor f = Tensor::randn({500, 4}, rng);
  Tensor g = f;
  for (std::int64_t i = 0; i < g.dim(0); ++i) g.at(i, 0) += 3.0f;
  const double fid = frechet_distance(feature_stats(f), feature_stats(g));
  EXPECT_NEAR(fid, 9.0, 0.1);
}

TEST(FrechetDistance, Symmetric) {
  Rng rng(5);
  const Tensor f = Tensor::randn({200, 6}, rng);
  const Tensor g = Tensor::randn({200, 6}, rng, 2.0f);
  const auto sf = feature_stats(f);
  const auto sg = feature_stats(g);
  EXPECT_NEAR(frechet_distance(sf, sg), frechet_distance(sg, sf), 1e-2);
}

TEST(FrechetDistance, GrowsWithVarianceGap) {
  Rng rng(6);
  const Tensor f = Tensor::randn({400, 4}, rng, 1.0f);
  const Tensor g1 = Tensor::randn({400, 4}, rng, 1.5f);
  const Tensor g2 = Tensor::randn({400, 4}, rng, 3.0f);
  const auto sf = feature_stats(f);
  const double d1 = frechet_distance(sf, feature_stats(g1));
  const double d2 = frechet_distance(sf, feature_stats(g2));
  EXPECT_GT(d2, d1);
}

TEST(FrechetDistance, DimensionMismatchThrows) {
  Rng rng(7);
  const auto a = feature_stats(Tensor::randn({10, 3}, rng));
  const auto b = feature_stats(Tensor::randn({10, 4}, rng));
  EXPECT_THROW(frechet_distance(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace rt
