// Few-shot harness, ticket cloning, and finetuning-variant tests.
#include <gtest/gtest.h>

#include <memory>

#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"
#include "transfer/fewshot.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

TEST(CloneTicketTest, CloneComputesIdenticalOutputs) {
  auto model = tiny_model(1);
  OmpConfig cfg;
  cfg.sparsity = 0.5f;
  omp_prune(*model, cfg);
  auto clone = clone_ticket(*model);

  const Dataset d = generate_dataset(source_task_spec(), 6, 2);
  model->set_training(false);
  clone->set_training(false);
  const Tensor a = model->forward(d.images);
  const Tensor b = clone->forward(d.images);
  EXPECT_EQ(a.linf_distance(b), 0.0f);
}

TEST(CloneTicketTest, CloneCarriesMasks) {
  auto model = tiny_model(2);
  OmpConfig cfg;
  cfg.sparsity = 0.7f;
  omp_prune(*model, cfg);
  auto clone = clone_ticket(*model);
  EXPECT_NEAR(model_sparsity(clone->prunable_parameters()),
              model_sparsity(model->prunable_parameters()), 1e-12);
}

TEST(CloneTicketTest, CloneIsIndependentOfOriginal) {
  auto model = tiny_model(3);
  auto clone = clone_ticket(*model);
  const Tensor original_head = model->head().weight().value;

  TaskData task = load_task("cifar10", 48, 24);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  Rng rng(4);
  train_classifier(*clone, task.train, cfg, rng);

  EXPECT_EQ(model->head().weight().value.linf_distance(original_head), 0.0f);
}

TEST(CloneTicketTest, ClonePreservesResetHeadShape) {
  auto model = tiny_model(5);
  Rng rng(6);
  model->reset_head(4, rng);  // downstream with 4 classes
  auto clone = clone_ticket(*model);
  EXPECT_EQ(clone->head().out_features(), 4);
  EXPECT_EQ(clone->head().weight().value.linf_distance(
                model->head().weight().value),
            0.0f);
}

TEST(FewShotSweepTest, ReturnsOnePointPerBudgetInRange) {
  auto model = tiny_model(7);
  FewShotConfig cfg;
  cfg.train_sizes = {20, 40};
  cfg.test_size = 40;
  cfg.finetune.epochs = 2;
  Rng rng(8);
  const auto points = fewshot_sweep(*model, "cifar10", cfg, rng);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].train_size, 20);
  EXPECT_EQ(points[1].train_size, 40);
  for (const auto& p : points) {
    EXPECT_GE(p.accuracy, 0.0f);
    EXPECT_LE(p.accuracy, 1.0f);
  }
}

TEST(FewShotSweepTest, DeterministicGivenSeed) {
  auto model = tiny_model(9);
  FewShotConfig cfg;
  cfg.train_sizes = {24};
  cfg.test_size = 32;
  cfg.finetune.epochs = 2;
  Rng rng_a(10);
  Rng rng_b(10);
  const auto a = fewshot_sweep(*model, "pets", cfg, rng_a);
  const auto b = fewshot_sweep(*model, "pets", cfg, rng_b);
  EXPECT_FLOAT_EQ(a[0].accuracy, b[0].accuracy);
}

TEST(FewShotSweepTest, LinearModeUsesFrozenBackbone) {
  auto model = tiny_model(11);
  const Tensor trunk_before =
      model->prunable_parameters().front()->value;
  FewShotConfig cfg;
  cfg.train_sizes = {24};
  cfg.test_size = 24;
  cfg.linear = true;
  cfg.linear_eval.epochs = 5;
  Rng rng(12);
  const auto points = fewshot_sweep(*model, "cifar10", cfg, rng);
  EXPECT_EQ(points.size(), 1u);
  // The sweep clones internally; the original backbone must be untouched.
  EXPECT_EQ(
      model->prunable_parameters().front()->value.linf_distance(trunk_before),
      0.0f);
}

TEST(LpFtTest, RunsAndReportsValidAccuracy) {
  auto model = tiny_model(13);
  TaskData task = load_task("cifar10", 64, 48);
  LinearEvalConfig probe;
  probe.epochs = 5;
  FinetuneConfig ft;
  ft.epochs = 3;
  Rng rng(14);
  const float acc = finetune_lp_ft(*model, task, probe, ft, rng);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
  // The head must match the downstream class count afterwards.
  EXPECT_EQ(model->head().out_features(), task.train.num_classes);
}

class PartialFinetuneTest : public ::testing::TestWithParam<int> {};

TEST_P(PartialFinetuneTest, FrozenStagesDoNotMove) {
  const int freeze = GetParam();
  auto model = tiny_model(15);
  // Snapshot the stem conv weight (always inside stage 0's range).
  const Tensor stem_before = model->prunable_parameters().front()->value;

  TaskData task = load_task("cifar10", 48, 32);
  FinetuneConfig cfg;
  cfg.epochs = 2;
  Rng rng(16);
  const float acc = finetune_partial(*model, task, freeze, cfg, rng);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);

  const Tensor& stem_after = model->prunable_parameters().front()->value;
  if (freeze >= 1) {
    EXPECT_EQ(stem_after.linf_distance(stem_before), 0.0f)
        << "frozen stem moved with freeze=" << freeze;
  } else {
    EXPECT_GT(stem_after.linf_distance(stem_before), 0.0f)
        << "whole-model finetune did not update the stem";
  }
}

INSTANTIATE_TEST_SUITE_P(FreezeDepths, PartialFinetuneTest,
                         ::testing::Values(0, 1, 2));

TEST(PartialFinetuneTest, RejectsBadDepth) {
  auto model = tiny_model(17);
  TaskData task = load_task("cifar10", 24, 16);
  FinetuneConfig cfg;
  cfg.epochs = 1;
  Rng rng(18);
  EXPECT_THROW(finetune_partial(*model, task, -1, cfg, rng),
               std::invalid_argument);
  EXPECT_THROW(
      finetune_partial(*model, task, model->num_stages() + 1, cfg, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace rt
