// Tests for the RobustTicketLab orchestration API: caching, ticket
// factories, and the winner-label rule.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/lab.hpp"

namespace rt {
namespace {

/// Small, fast lab options for tests (own cache dir to stay hermetic).
RobustTicketLab::Options test_options(const std::string& tag) {
  RobustTicketLab::Options opt;
  opt.source_train_size = 120;
  opt.source_test_size = 60;
  opt.pretrain_epochs = 3;
  opt.adv_steps = 2;
  opt.seed = 5;
  opt.cache_dir = "/tmp/rticket_test_cache_" + tag;
  return opt;
}

TEST(WinnerLabel, ThresholdRule) {
  EXPECT_EQ(winner_label(0.90, 0.80), "Robust");
  EXPECT_EQ(winner_label(0.80, 0.90), "Natural");
  EXPECT_EQ(winner_label(0.90, 0.895), "Match");
  EXPECT_EQ(winner_label(0.90, 0.88, 0.05), "Match");
}

TEST(Lab, SourceTaskIsSharedAndSized) {
  RobustTicketLab lab(test_options("a"));
  const TaskData& src = lab.source();
  EXPECT_EQ(src.train.size(), 120);
  EXPECT_EQ(src.test.size(), 60);
  EXPECT_EQ(src.train.num_classes, 10);
  // Same object on repeat calls.
  EXPECT_EQ(&lab.source(), &src);
}

TEST(Lab, FreshModelArchitectures) {
  RobustTicketLab lab(test_options("b"));
  EXPECT_EQ(lab.fresh_model("r18")->feature_dim(), 64);
  EXPECT_EQ(lab.fresh_model("r50")->feature_dim(), 160);
  EXPECT_THROW(lab.fresh_model("vgg"), std::invalid_argument);
}

TEST(Lab, PretrainedIsCachedInMemoryAndOnDisk) {
  const auto opt = test_options("c");
  std::filesystem::remove_all(*opt.cache_dir);
  {
    RobustTicketLab lab(opt);
    const StateDict& a = lab.pretrained("r18", PretrainScheme::kNatural);
    const StateDict& b = lab.pretrained("r18", PretrainScheme::kNatural);
    EXPECT_EQ(&a, &b);  // memory cache
    EXPECT_FALSE(a.empty());
  }
  // Second lab instance: served from disk (fast path). Equal content.
  RobustTicketLab lab2(opt);
  auto model = lab2.dense_model("r18", PretrainScheme::kNatural);
  EXPECT_GT(model->num_parameters(), 0);
  bool found_checkpoint = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(*opt.cache_dir)) {
    if (entry.path().extension() == ".rtk") found_checkpoint = true;
  }
  EXPECT_TRUE(found_checkpoint);
  std::filesystem::remove_all(*opt.cache_dir);
}

TEST(Lab, OmpTicketHasRequestedSparsity) {
  RobustTicketLab lab(test_options("d"));
  auto ticket = lab.omp_ticket("r18", PretrainScheme::kNatural, 0.7f);
  EXPECT_NEAR(model_sparsity(ticket->prunable_parameters()), 0.7, 1e-3);
}

TEST(Lab, OmpTicketsFromSameSchemeShareWeights) {
  RobustTicketLab lab(test_options("e"));
  auto dense = lab.dense_model("r18", PretrainScheme::kNatural);
  auto ticket = lab.omp_ticket("r18", PretrainScheme::kNatural, 0.5f);
  // Unpruned weights must equal the dense pretrained weights.
  const auto dense_params = dense->prunable_parameters();
  const auto ticket_params = ticket->prunable_parameters();
  ASSERT_EQ(dense_params.size(), ticket_params.size());
  for (std::size_t i = 0; i < dense_params.size(); ++i) {
    for (std::int64_t j = 0; j < dense_params[i]->value.numel(); ++j) {
      if (ticket_params[i]->mask[j] != 0.0f) {
        EXPECT_FLOAT_EQ(ticket_params[i]->value[j],
                        dense_params[i]->value[j]);
      }
    }
  }
}

TEST(Lab, DifferentSchemesGiveDifferentWeights) {
  RobustTicketLab lab(test_options("f"));
  auto nat = lab.dense_model("r18", PretrainScheme::kNatural);
  auto adv = lab.dense_model("r18", PretrainScheme::kAdversarial);
  EXPECT_GT(nat->state_dict()
                .at("r18.stem.weight")
                .linf_distance(adv->state_dict().at("r18.stem.weight")),
            1e-6f);
}

TEST(Lab, DownstreamTaskGeneration) {
  RobustTicketLab lab(test_options("g"));
  const TaskData t = lab.downstream("flowers", 50, 30);
  EXPECT_EQ(t.train.size(), 50);
  EXPECT_EQ(t.spec.name, "flowers");
  EXPECT_THROW(lab.downstream("nonexistent", 10, 10), std::out_of_range);
}

TEST(Lab, PretrainAttackMatchesOptions) {
  auto opt = test_options("h");
  opt.adv_epsilon = 0.1f;
  opt.adv_steps = 4;
  RobustTicketLab lab(opt);
  EXPECT_FLOAT_EQ(lab.pretrain_attack().epsilon, 0.1f);
  EXPECT_EQ(lab.pretrain_attack().steps, 4);
}

TEST(Lab, ImpTicketReachesTarget) {
  RobustTicketLab lab(test_options("i"));
  ImpConfig cfg;
  cfg.target_sparsity = 0.5f;
  cfg.rate_per_round = 0.3f;
  cfg.epochs_per_round = 1;
  auto ticket = lab.imp_ticket("r18", PretrainScheme::kNatural,
                               lab.source().train, cfg);
  EXPECT_NEAR(model_sparsity(ticket->prunable_parameters()), 0.5, 1e-3);
}

TEST(Lab, LmpTicketTrainsHeadForTask) {
  RobustTicketLab lab(test_options("j"));
  const TaskData task = lab.downstream("dtd", 40, 20);
  LmpConfig cfg;
  cfg.sparsity = 0.4f;
  cfg.epochs = 1;
  auto ticket =
      lab.lmp_ticket("r18", PretrainScheme::kNatural, task.train, cfg);
  EXPECT_EQ(ticket->head().out_features(), task.train.num_classes);
  EXPECT_NEAR(model_sparsity(ticket->prunable_parameters()), 0.4, 0.02);
}

TEST(CheckpointStoreTest, KeyIsCanonicalAndContentAddressed) {
  CheckpointKey a;
  a.add("arch", "r18").add("sparsity", 0.9).add("seed", std::int64_t{7});
  CheckpointKey same;
  same.add("arch", "r18").add("sparsity", 0.9).add("seed", std::int64_t{7});
  EXPECT_EQ(a.str(), "arch=r18;sparsity=0.9;seed=7;");
  EXPECT_EQ(a.hash(), same.hash());
  EXPECT_EQ(a.filename(), same.filename());

  CheckpointKey other;
  other.add("arch", "r18").add("sparsity", 0.91).add("seed", std::int64_t{7});
  EXPECT_NE(a.hash(), other.hash());
  EXPECT_NE(a.filename(), other.filename());
  // Filename: 16 hex digits, readable slug, .rtk suffix.
  EXPECT_EQ(a.filename().find('/'), std::string::npos);
  EXPECT_EQ(a.filename().substr(a.filename().size() - 4), ".rtk");
  EXPECT_EQ(a.filename()[16], '_');
}

TEST(CheckpointStoreTest, RoundTripAndMiss) {
  const std::string root = "/tmp/rticket_test_store_rt";
  std::filesystem::remove_all(root);
  CheckpointStore store(root);
  CheckpointKey key;
  key.add("kind", "unit").add("seed", std::int64_t{3});
  EXPECT_FALSE(store.load(key).has_value());

  StateDict state;
  Rng rng(4);
  state["w"] = Tensor::randn({3, 5}, rng);
  store.store(key, state);
  const auto hit = store.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("w").linf_distance(state.at("w")), 0.0f);

  // Disabled store: loads miss, stores drop, no filesystem activity.
  CheckpointStore disabled{std::string()};
  EXPECT_FALSE(disabled.enabled());
  disabled.store(key, state);
  EXPECT_FALSE(disabled.load(key).has_value());
  std::filesystem::remove_all(root);
}

TEST(CheckpointStoreTest, DatasetFingerprintSeparatesData) {
  RobustTicketLab lab(test_options("k"));
  const Dataset& src = lab.source().train;
  const TaskData other = lab.downstream("dtd", 40, 20);
  EXPECT_EQ(dataset_fingerprint(src), dataset_fingerprint(src));
  EXPECT_NE(dataset_fingerprint(src), dataset_fingerprint(other.train));
}

TEST(Lab, ImpTicketIsServedFromTheStoreWithMasksIntact) {
  auto opt = test_options("l");
  std::filesystem::remove_all(*opt.cache_dir);
  ImpConfig cfg;
  cfg.target_sparsity = 0.5f;
  cfg.rate_per_round = 0.3f;
  cfg.epochs_per_round = 1;

  StateDict first_state;
  {
    RobustTicketLab lab(opt);
    auto first = lab.imp_ticket("r18", PretrainScheme::kNatural,
                                lab.source().train, cfg);
    first_state = first->state_dict();
  }
  // Second lab instance: the retrained ticket must come from disk with
  // identical values and a reconstructed mask at the same sparsity.
  RobustTicketLab lab2(opt);
  auto second = lab2.imp_ticket("r18", PretrainScheme::kNatural,
                                lab2.source().train, cfg);
  EXPECT_NEAR(model_sparsity(second->prunable_parameters()), 0.5, 1e-3);
  for (const auto& [name, tensor] : second->state_dict()) {
    ASSERT_TRUE(first_state.count(name)) << name;
    EXPECT_EQ(tensor.linf_distance(first_state.at(name)), 0.0f) << name;
  }
  for (const Parameter* p : second->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask());
    for (std::int64_t j = 0; j < p->value.numel(); ++j) {
      EXPECT_EQ(p->mask[j] == 0.0f, p->value[j] == 0.0f);
    }
  }
  std::filesystem::remove_all(*opt.cache_dir);
}

}  // namespace
}  // namespace rt
