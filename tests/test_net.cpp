// rt::net — wire-format, socket front-end, and drain tests.
//
// The acceptance contracts pinned here:
//   - end-to-end wire parity: logits served over a loopback socket for
//     "model@version" are BITWISE identical to an in-process
//     Session::predict() on the same compiled plan — including through a
//     registry hot swap performed mid-connection;
//   - robustness: deadlines are honored before dispatch (expired requests
//     are answered with kDeadlineExceeded, never silently dropped),
//     overload/bad-ref/bad-geometry map to typed status frames on a
//     connection that stays usable, and a deterministic Pcg32-driven
//     malformed-input sweep (truncated headers, bad magic, over-limit
//     lengths, garbage bodies, mid-payload disconnects, interleaved
//     garbage) never crashes the server — a fresh connection still serves
//     after every case;
//   - graceful drain: stop() flushes every admitted in-flight request;
//     zero admitted requests are lost across shutdown.
// The suite runs under the scripts/check.sh sanitizer passes (TSan/ASan/
// UBSan), so request and connection counts stay modest.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "net/net.hpp"
#include "net/protocol.hpp"
#include "prune/omp.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "tn";
  return std::make_unique<ResNet>(cfg, rng);
}

/// Briefly trained + 90%-pruned model, so the CSR executor is non-trivial
/// and parity actually exercises the sparse path the bench uses.
std::unique_ptr<ResNet> served_model(std::uint64_t seed) {
  auto model = tiny_model(seed);
  const Dataset train = generate_dataset(source_task_spec(), 48, seed ^ 0x11);
  TrainLoopConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 16;
  Rng rng(seed ^ 0x5EEDULL);
  train_classifier(*model, train, cfg, rng);
  OmpConfig prune_cfg;
  prune_cfg.sparsity = 0.9f;
  omp_prune(*model, prune_cfg);
  model->set_training(false);
  return model;
}

/// Registry backed by memory only: the disk cache has its own tests.
registry::RegistryOptions memory_only() {
  registry::RegistryOptions opt;
  opt.cache_root = "";
  return opt;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "flat index " << i;
  }
}

/// Raw frame-level connection for the malformed-input sweep and the
/// deadline test: sends arbitrary byte sequences (including deliberately
/// broken ones net::Client refuses to produce) and reads response frames.
struct RawConn {
  int fd = -1;

  RawConn(const std::string& host, std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("RawConn: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      throw std::runtime_error("RawConn: cannot connect");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t r =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(r, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<std::size_t>(r);
    }
  }

  /// Half-close the write side so the server's reader sees EOF while this
  /// side can still receive the response frame.
  void close_write() { ::shutdown(fd, SHUT_WR); }

  /// Reads exactly n bytes; returns the count actually read (short on EOF).
  std::size_t read_exact(std::uint8_t* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, buf + got, n - got, 0);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    return got;
  }

  /// Reads one response frame. Returns false on EOF before a full frame.
  bool read_frame(net::FrameHeader* header, std::vector<std::uint8_t>* body) {
    std::uint8_t buf[net::kHeaderBytes];
    if (read_exact(buf, net::kHeaderBytes) < net::kHeaderBytes) return false;
    if (net::decode_header(buf, net::kDefaultMaxBodyBytes, header) !=
        net::HeaderDecode::kOk) {
      return false;
    }
    body->resize(header->body_len);
    return header->body_len == 0 ||
           read_exact(body->data(), header->body_len) == header->body_len;
  }

  /// True when the server closed the connection without sending a frame.
  bool at_eof() {
    std::uint8_t byte = 0;
    return read_exact(&byte, 1) == 0;
  }
};

std::vector<std::uint8_t> make_frame(std::uint8_t kind, std::uint64_t id,
                                     const std::vector<std::uint8_t>& body) {
  net::FrameHeader header;
  header.kind = kind;
  header.request_id = id;
  header.body_len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> frame;
  net::encode_header(header, frame);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

// ---------------------------------------------------------------------------
// Protocol layer (no sockets): encode/decode round-trips and rejections.
// ---------------------------------------------------------------------------

TEST(NetProtocol, HeaderRoundTrip) {
  net::FrameHeader in;
  in.kind = static_cast<std::uint8_t>(net::Verb::kPredict);
  in.request_id = 0x1122334455667788ULL;
  in.body_len = 513;
  std::vector<std::uint8_t> bytes;
  net::encode_header(in, bytes);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes);

  net::FrameHeader out;
  ASSERT_EQ(net::decode_header(bytes.data(), net::kDefaultMaxBodyBytes, &out),
            net::HeaderDecode::kOk);
  EXPECT_EQ(out.magic, net::kMagic);
  EXPECT_EQ(out.version, net::kProtocolVersion);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.body_len, in.body_len);
}

TEST(NetProtocol, HeaderRejectsMalformed) {
  net::FrameHeader header;
  header.body_len = 8;
  std::vector<std::uint8_t> good;
  net::encode_header(header, good);
  net::FrameHeader out;

  auto bytes = good;
  bytes[0] ^= 0xFF;  // magic
  EXPECT_EQ(net::decode_header(bytes.data(), net::kDefaultMaxBodyBytes, &out),
            net::HeaderDecode::kBadMagic);

  bytes = good;
  bytes[4] = 99;  // version
  EXPECT_EQ(net::decode_header(bytes.data(), net::kDefaultMaxBodyBytes, &out),
            net::HeaderDecode::kBadVersion);

  bytes = good;
  bytes[6] = 1;  // reserved must be zero
  EXPECT_EQ(net::decode_header(bytes.data(), net::kDefaultMaxBodyBytes, &out),
            net::HeaderDecode::kBadReserved);

  // A body length over the cap is rejected before any allocation: the
  // decoded header still carries the announced length for diagnostics.
  EXPECT_EQ(net::decode_header(good.data(), /*max_body_bytes=*/4, &out),
            net::HeaderDecode::kOverLimit);
  EXPECT_EQ(out.body_len, 8u);

  EXPECT_STREQ(net::header_decode_name(net::HeaderDecode::kBadMagic),
               "bad magic");
}

TEST(NetProtocol, PredictBodyRoundTripBitwise) {
  Tensor rows({2, 3, 4, 5});
  Pcg32 rng(7);
  for (std::int64_t i = 0; i < rows.numel(); ++i) {
    rows[i] = static_cast<float>(rng.uniform_double()) * 2.0f - 1.0f;
  }
  std::vector<std::uint8_t> body;
  net::encode_predict_body("demo@latest", 2500, rows, body);

  net::PredictRequest out;
  std::string error;
  ASSERT_TRUE(net::decode_predict_body(body.data(), body.size(), &out, &error))
      << error;
  EXPECT_EQ(out.ref, "demo@latest");
  EXPECT_EQ(out.deadline_us, 2500u);
  expect_bitwise(out.rows, rows);
}

TEST(NetProtocol, PredictBodyRejectsInconsistencies) {
  Tensor rows({1, 2, 2, 2});
  for (std::int64_t i = 0; i < rows.numel(); ++i) rows[i] = 1.0f;
  std::vector<std::uint8_t> good;
  net::encode_predict_body("m", 0, rows, good);

  net::PredictRequest out;
  std::string error;

  // Truncation anywhere — inside the ref, the shape, or the payload —
  // must fail, never read out of bounds, and never fabricate a tensor.
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                good.size() - 1, good.size() - 4}) {
    EXPECT_FALSE(net::decode_predict_body(good.data(), len, &out, &error))
        << "length " << len << " decoded";
  }

  // Zero extents are rejected (offset 3 = u16 ref_len + 1-byte ref +
  // u64 deadline puts the first extent at 2 + 1 + 8 = 11).
  auto zero_extent = good;
  for (int i = 0; i < 4; ++i) zero_extent[11 + i] = 0;
  EXPECT_FALSE(
      net::decode_predict_body(zero_extent.data(), zero_extent.size(), &out,
                               &error));

  // Trailing bytes after the announced payload are an inconsistency, not
  // padding.
  auto trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(net::decode_predict_body(trailing.data(), trailing.size(),
                                        &out, &error));
}

TEST(NetProtocol, LogitsBodyRoundTripBitwise) {
  Tensor logits({3, 10});
  Pcg32 rng(9);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform_double()) * 8.0f - 4.0f;
  }
  std::vector<std::uint8_t> body;
  net::encode_logits_body(logits, body);

  Tensor out{std::vector<std::int64_t>{1}};
  std::string error;
  ASSERT_TRUE(net::decode_logits_body(body.data(), body.size(), &out, &error))
      << error;
  expect_bitwise(out, logits);

  EXPECT_FALSE(net::decode_logits_body(body.data(), body.size() - 1, &out,
                                       &error));
}

TEST(NetProtocol, StatsBodyRoundTripAndRejection) {
  std::vector<std::uint8_t> body;
  net::encode_stats_body("m@stable", body);
  std::string ref;
  std::string error;
  ASSERT_TRUE(net::decode_stats_body(body.data(), body.size(), &ref, &error));
  EXPECT_EQ(ref, "m@stable");

  auto trailing = body;
  trailing.push_back(0);
  EXPECT_FALSE(net::decode_stats_body(trailing.data(), trailing.size(), &ref,
                                      &error));
  EXPECT_FALSE(net::decode_stats_body(body.data(), 1, &ref, &error));
}

// ---------------------------------------------------------------------------
// End-to-end wire parity.
// ---------------------------------------------------------------------------

TEST(NetWire, PredictMatchesInProcessBitwise) {
  registry::Registry reg(memory_only());
  auto model = served_model(301);
  reg.publish("m", *model);

  net::InferenceServer server(reg);
  net::Client client("127.0.0.1", server.port());

  // The reference session shares the registry's compiled plan, so any wire
  // difference is a serialization bug, not a compilation difference.
  Session reference(reg.compiled("m@1"), /*max_batch=*/8);
  const Dataset probe = generate_dataset(source_task_spec(), 12, 303);

  // Blocking round-trip.
  expect_bitwise(client.predict("m@1", probe.images),
                 reference.predict(probe.images));

  // Pipelined: several submits in flight at once, replies awaited out of
  // submission order (the client buffers whatever arrives early).
  const std::vector<std::int64_t> sizes{1, 3, 2, 4, 2};
  std::vector<Tensor> inputs;
  std::vector<net::Client::Reply> replies;
  std::int64_t begin = 0;
  for (const std::int64_t n : sizes) {
    inputs.push_back(probe.images.slice_rows(begin, n));
    begin += n;
    replies.push_back(client.submit("m@1", inputs.back()));
  }
  for (std::size_t i = replies.size(); i-- > 0;) {
    expect_bitwise(replies[i].get(), reference.predict(inputs[i]));
  }

  // The writer bumps its response counter after the frame reaches the
  // socket, so the client can observe a reply a beat before the counter;
  // stop() joins the writers, after which the counts are final.
  server.stop();
  const net::NetCounters counters = server.counters();
  EXPECT_GE(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.requests, sizes.size() + 1);
  EXPECT_EQ(counters.responses, sizes.size() + 1);
  EXPECT_EQ(counters.protocol_errors, 0u);
}

TEST(NetWire, HotSwapMidConnectionStaysBitwise) {
  registry::Registry reg(memory_only());
  auto v1 = served_model(311);
  auto v2 = served_model(313);
  reg.publish("m", *v1);

  net::InferenceServer server(reg);
  net::Client client("127.0.0.1", server.port());
  const Dataset probe = generate_dataset(source_task_spec(), 6, 317);

  // First PREDICT creates the serving endpoint with version 1 live.
  Session ref1(reg.compiled("m@1"), 8);
  expect_bitwise(client.predict("m@1", probe.images),
                 ref1.predict(probe.images));

  // Version 2 exists in the catalog but owns no traffic: the wire answers
  // with a typed precondition failure instead of silently routing to v1.
  reg.publish("m", *v2);
  try {
    client.predict("m@2", probe.images);
    FAIL() << "published-but-not-live version was served";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::Status::kFailedPrecondition);
  }

  // Hot swap on the SAME connection: after deploy, the same client must
  // get v2 bits for "m@2" (and for the bare name, which follows @latest).
  reg.deploy("m@2");
  Session ref2(reg.compiled("m@2"), 8);
  expect_bitwise(client.predict("m@2", probe.images),
                 ref2.predict(probe.images));
  expect_bitwise(client.predict("m", probe.images),
                 ref2.predict(probe.images));

  // And the swapped-out version is now the one that is not live.
  try {
    client.predict("m@1", probe.images);
    FAIL() << "swapped-out version was served";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::Status::kFailedPrecondition);
  }
  server.stop();
}

TEST(NetWire, TypedStatusesLeaveConnectionUsable) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(321);
  reg.publish("m", *model);

  net::InferenceServer server(reg);
  net::Client client("127.0.0.1", server.port());
  Tensor row({1, 3, 16, 16});
  for (std::int64_t i = 0; i < row.numel(); ++i) row[i] = 0.25f;

  auto expect_status = [&](const std::string& ref, const Tensor& rows,
                           net::Status want) {
    try {
      client.predict(ref, rows);
      FAIL() << ref << " unexpectedly succeeded";
    } catch (const net::RpcError& e) {
      EXPECT_EQ(e.status(), want) << e.what();
    }
  };

  expect_status("nosuch", row, net::Status::kNotFound);
  expect_status("m@99", row, net::Status::kNotFound);
  expect_status("m@", row, net::Status::kBadRequest);  // malformed reference

  // Wrong geometry passes framing but is rejected by the serving layer via
  // the future — the writer maps it to kBadRequest.
  Tensor wrong({1, 3, 8, 8});
  for (std::int64_t i = 0; i < wrong.numel(); ++i) wrong[i] = 0.25f;
  expect_status("m@1", wrong, net::Status::kBadRequest);

  // Every one of those was a typed response, not a connection kill: the
  // same client still serves a healthy request.
  client.ping();
  EXPECT_EQ(client.predict("m@1", row).dim(1), 10);
  EXPECT_EQ(server.counters().protocol_errors, 0u);
  server.stop();
}

TEST(NetWire, OverloadMapsToTypedStatus) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(331);
  reg.publish("m", *model);

  // The endpoint is created through the wire with capacity 1, so a 2-row
  // request is rejected by admission control deterministically.
  net::NetOptions opt;
  opt.serving.queue_capacity_rows = 1;
  net::InferenceServer server(reg, opt);
  net::Client client("127.0.0.1", server.port());

  Tensor one({1, 3, 16, 16});
  for (std::int64_t i = 0; i < one.numel(); ++i) one[i] = 0.5f;
  EXPECT_EQ(client.predict("m", one).dim(0), 1);

  Tensor two({2, 3, 16, 16});
  for (std::int64_t i = 0; i < two.numel(); ++i) two[i] = 0.5f;
  try {
    client.predict("m", two);
    FAIL() << "2 rows admitted past a 1-row capacity";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::Status::kOverloaded);
  }

  // Admission rejection is per-request: the connection and the fleet both
  // stay healthy.
  EXPECT_EQ(client.predict("m", one).dim(0), 1);
  server.stop();
}

TEST(NetWire, DeadlineExpiredBeforeDispatchIsAnswered) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(341);
  reg.publish("m", *model);
  net::InferenceServer server(reg);

  // The deadline clock starts at header receipt: stream the header, stall
  // (as a slow or stuck peer would), then deliver a body whose 1ms budget
  // is long gone. The request must be answered — kDeadlineExceeded, id
  // echoed — and must never reach the serving queue.
  Tensor row({1, 3, 16, 16});
  for (std::int64_t i = 0; i < row.numel(); ++i) row[i] = 1.0f;
  std::vector<std::uint8_t> body;
  net::encode_predict_body("m", /*deadline_us=*/1000, row, body);
  const auto frame =
      make_frame(static_cast<std::uint8_t>(net::Verb::kPredict), 42, body);

  RawConn conn("127.0.0.1", server.port());
  conn.send_bytes(std::vector<std::uint8_t>(
      frame.begin(), frame.begin() + net::kHeaderBytes));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  conn.send_bytes(std::vector<std::uint8_t>(
      frame.begin() + net::kHeaderBytes, frame.end()));

  net::FrameHeader response;
  std::vector<std::uint8_t> response_body;
  ASSERT_TRUE(conn.read_frame(&response, &response_body));
  EXPECT_EQ(static_cast<net::Status>(response.kind),
            net::Status::kDeadlineExceeded);
  EXPECT_EQ(response.request_id, 42u);

  // Never dispatched: the endpoint (created lazily by PREDICT) does not
  // even exist, because the request expired before route resolution.
  EXPECT_EQ(reg.find_server("m"), nullptr);

  // The connection survives an expired deadline.
  conn.send_bytes(make_frame(static_cast<std::uint8_t>(net::Verb::kPing), 43,
                             {}));
  ASSERT_TRUE(conn.read_frame(&response, &response_body));
  EXPECT_EQ(static_cast<net::Status>(response.kind), net::Status::kOk);
  EXPECT_EQ(response.request_id, 43u);
  server.stop();
}

TEST(NetWire, StatsVerbSnapshotsServingCounters) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(351);
  reg.publish("m", *model);
  reg.publish("cold", *model);

  net::NetOptions opt;
  opt.serving.cache.capacity_rows = 64;  // exercise the cache counters too
  net::InferenceServer server(reg, opt);
  net::Client client("127.0.0.1", server.port());

  Tensor rows({3, 3, 16, 16});
  for (std::int64_t i = 0; i < rows.numel(); ++i) {
    rows[i] = static_cast<float>(i % 7) * 0.1f;
  }
  client.predict("m", rows);
  client.predict("m", rows);  // second pass hits the prediction cache

  const std::map<std::string, double> stats = client.stats("m");
  for (const char* key :
       {"submitted_requests", "submitted_rows", "completed_requests",
        "failed_requests", "rejected_requests", "batches", "batched_rows",
        "queued_rows", "capacity_rows", "cache_hit_rows", "cache_miss_rows",
        "cache_inserted_rows", "cache_evicted_rows", "cache_size_rows",
        "cache_capacity_rows", "latency_count", "latency_p50_us",
        "latency_p99_us"}) {
    EXPECT_EQ(stats.count(key), 1u) << "missing stats key " << key;
  }
  EXPECT_EQ(stats.at("submitted_requests"), 2.0);
  EXPECT_EQ(stats.at("submitted_rows"), 6.0);
  EXPECT_EQ(stats.at("completed_requests"), 2.0);
  EXPECT_EQ(stats.at("queued_rows"), 0.0);
  EXPECT_EQ(stats.at("cache_hit_rows"), 3.0);
  EXPECT_EQ(stats.at("cache_capacity_rows"), 64.0);
  EXPECT_GE(stats.at("latency_count"), 2.0);

  // Typed failures: unknown model vs published-but-never-served model.
  try {
    client.stats("nosuch");
    FAIL() << "stats for unknown model succeeded";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::Status::kNotFound);
  }
  try {
    client.stats("cold");
    FAIL() << "stats for endpoint-less model succeeded";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::Status::kFailedPrecondition);
  }
  server.stop();
}

TEST(NetWire, ListAndPing) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(361);
  reg.publish("alpha", *model);
  reg.publish("beta", *model);
  reg.publish("beta", *model);
  reg.set_stable("beta", 1);

  net::InferenceServer server(reg);
  net::Client client("127.0.0.1", server.port());
  client.ping();

  Tensor row({1, 3, 16, 16});
  for (std::int64_t i = 0; i < row.numel(); ++i) row[i] = 0.1f;
  client.predict("alpha", row);  // alpha@1 goes live

  const std::vector<std::string> lines = client.list();
  ASSERT_EQ(lines.size(), 2u);  // std::map catalog: sorted by name
  EXPECT_EQ(lines[0], "alpha latest=1 stable=0 live=1 candidate=0");
  EXPECT_EQ(lines[1], "beta latest=2 stable=1 live=0 candidate=0");
  server.stop();
}

// ---------------------------------------------------------------------------
// Malformed-input sweep: the mini-fuzzer.
// ---------------------------------------------------------------------------

TEST(NetMalformed, DeterministicSweepSurvivesAndTypesErrors) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(401);
  reg.publish("m", *model);

  net::NetOptions opt;
  opt.max_body_bytes = 1u << 20;
  net::InferenceServer server(reg, opt);
  const std::string host = "127.0.0.1";

  Tensor row({1, 3, 16, 16});
  for (std::int64_t i = 0; i < row.numel(); ++i) row[i] = 0.75f;
  std::vector<std::uint8_t> predict_body;
  net::encode_predict_body("m", 0, row, predict_body);
  const auto valid_predict = make_frame(
      static_cast<std::uint8_t>(net::Verb::kPredict), 7, predict_body);

  // Deterministic Pcg32-driven sweep: every parameter below (truncation
  // points, corrupted byte positions, garbage contents) comes from the
  // seeded generator, so the exact byte sequences replay on every run —
  // including under the ASan/TSan/UBSan passes in scripts/check.sh.
  Pcg32 rng(0x5EEDF00Du);
  std::uint64_t expected_errors = 0;

  for (int round = 0; round < 16; ++round) {
    const int category = round % 8;
    RawConn conn(host, server.port());
    net::FrameHeader response;
    std::vector<std::uint8_t> response_body;

    switch (category) {
      case 0: {  // truncated header: 1..19 bytes, then EOF
        const std::size_t len = 1 + rng.next_below(net::kHeaderBytes - 1);
        conn.send_bytes(std::vector<std::uint8_t>(
            valid_predict.begin(),
            valid_predict.begin() + static_cast<std::ptrdiff_t>(len)));
        conn.close_write();
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        EXPECT_EQ(response.request_id, 0u);  // header never decoded
        ++expected_errors;
        break;
      }
      case 1: {  // corrupted magic byte
        auto frame = valid_predict;
        frame[rng.next_below(4)] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
        conn.send_bytes(frame);
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        // Bad magic: the id bytes are untrustworthy, so the server does
        // not echo them.
        EXPECT_EQ(response.request_id, 0u);
        ++expected_errors;
        break;
      }
      case 2: {  // wrong protocol version; id is echoed
        auto frame = valid_predict;
        frame[4] = static_cast<std::uint8_t>(2 + rng.next_below(250));
        conn.send_bytes(frame);
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        EXPECT_EQ(response.request_id, 7u);
        ++expected_errors;
        break;
      }
      case 3: {  // body length over the configured cap
        net::FrameHeader header;
        header.kind = static_cast<std::uint8_t>(net::Verb::kPredict);
        header.request_id = 7;
        header.body_len = opt.max_body_bytes + 1 + rng.next_below(4096);
        std::vector<std::uint8_t> frame;
        net::encode_header(header, frame);
        conn.send_bytes(frame);
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        EXPECT_EQ(response.request_id, 7u);
        ++expected_errors;
        break;
      }
      case 4: {  // garbage PREDICT body of random length
        std::vector<std::uint8_t> garbage(1 + rng.next_below(48));
        for (auto& byte : garbage) {
          byte = static_cast<std::uint8_t>(rng.next_below(256));
        }
        conn.send_bytes(make_frame(
            static_cast<std::uint8_t>(net::Verb::kPredict), 9, garbage));
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        EXPECT_EQ(response.request_id, 9u);
        ++expected_errors;
        break;
      }
      case 5: {  // unknown verb
        const auto verb = static_cast<std::uint8_t>(5 + rng.next_below(200));
        conn.send_bytes(make_frame(verb, 11, {}));
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        EXPECT_EQ(response.request_id, 11u);
        ++expected_errors;
        break;
      }
      case 6: {  // interleaved: a healthy PING, then garbage
        conn.send_bytes(
            make_frame(static_cast<std::uint8_t>(net::Verb::kPing), 13, {}));
        auto frame = valid_predict;
        frame[rng.next_below(4)] ^= 0x80;
        conn.send_bytes(frame);
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind), net::Status::kOk);
        EXPECT_EQ(response.request_id, 13u);
        ASSERT_TRUE(conn.read_frame(&response, &response_body));
        EXPECT_EQ(static_cast<net::Status>(response.kind),
                  net::Status::kProtocolError);
        ++expected_errors;
        break;
      }
      case 7: {  // mid-payload disconnect: the peer is gone, no reply owed
        const std::size_t cut =
            net::kHeaderBytes + 1 +
            rng.next_below(static_cast<std::uint32_t>(predict_body.size() -
                                                      1));
        conn.send_bytes(std::vector<std::uint8_t>(
            valid_predict.begin(),
            valid_predict.begin() + static_cast<std::ptrdiff_t>(cut)));
        conn.close_write();
        EXPECT_TRUE(conn.at_eof());  // retired silently, no frame, no crash
        break;
      }
    }

    // After every malformed connection the server must still serve a
    // fresh, healthy one — the blast radius is one connection.
    net::Client healthy(host, server.port());
    healthy.ping();
  }

  EXPECT_EQ(server.counters().protocol_errors, expected_errors);

  // End-to-end proof of life: full predict round-trip after the sweep.
  net::Client client(host, server.port());
  Session reference(reg.compiled("m@1"), 8);
  expect_bitwise(client.predict("m@1", row), reference.predict(row));
  server.stop();
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(NetDrain, StopFlushesEveryAdmittedRequest) {
  registry::Registry reg(memory_only());
  auto model = served_model(411);
  reg.publish("m", *model);

  // A long coalescing deadline with a large batch keeps admitted requests
  // in flight (queued behind the delay) when stop() lands: the drain must
  // flush them through the writers, not abandon them.
  net::NetOptions opt;
  opt.serving.max_batch = 64;
  opt.serving.max_delay_ms = 150.0;
  net::InferenceServer server(reg, opt);
  net::Client client("127.0.0.1", server.port());

  Session reference(reg.compiled("m@1"), 8);
  const Dataset probe = generate_dataset(source_task_spec(), 8, 413);

  std::vector<Tensor> inputs;
  std::vector<net::Client::Reply> replies;
  for (std::int64_t i = 0; i < 8; ++i) {
    inputs.push_back(probe.images.slice_rows(i, 1));
    replies.push_back(client.submit("m@1", inputs.back()));
  }

  // Wait until the serving layer has admitted all 8 (they sit in the
  // coalescer, futures unresolved), so stop() races only with execution,
  // not with admission.
  serving::Server* endpoint = nullptr;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    endpoint = reg.find_server("m");
    if (endpoint != nullptr && endpoint->stats().submitted_requests >= 8) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "requests were never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.stop();

  // Zero admitted requests lost: every reply arrives, bitwise correct —
  // the responses were flushed to the socket before the drain closed it.
  for (std::size_t i = 0; i < replies.size(); ++i) {
    expect_bitwise(replies[i].get(), reference.predict(inputs[i]));
  }

  // After the drain the listener is gone: new connections are refused.
  EXPECT_THROW(net::Client("127.0.0.1", server.port()), std::runtime_error);

  const net::NetCounters counters = server.counters();
  EXPECT_EQ(counters.requests, 8u);
  EXPECT_EQ(counters.responses, 8u);
  EXPECT_EQ(counters.connections_open, 0u);

  // stop() is idempotent.
  server.stop();
}

}  // namespace
}  // namespace rt
