// Tests for FGSM / PGD attacks and Gaussian augmentation: constraint
// satisfaction, effectiveness, and mode/grad hygiene.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/attack.hpp"
#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    model_ = make_micro_resnet18(10, rng);
    // Briefly train so gradients point somewhere meaningful.
    const Dataset train = generate_dataset(source_task_spec(), 120, 3);
    TrainLoopConfig cfg;
    cfg.epochs = 4;
    cfg.sgd.lr = 0.05f;
    Rng trng(2);
    train_classifier(*model_, train, cfg, trng);
    test_ = generate_dataset(source_task_spec(), 80, 5);
    x_ = gather_images(test_.images, {0, 1, 2, 3, 4, 5, 6, 7});
    y_ = gather_labels(test_.labels, {0, 1, 2, 3, 4, 5, 6, 7});
  }

  std::unique_ptr<ResNet> model_;
  Dataset test_;
  Tensor x_;
  std::vector<int> y_;
};

TEST_F(AttackTest, PgdStaysInEpsilonBall) {
  AttackConfig cfg;
  cfg.epsilon = 0.05f;
  cfg.steps = 5;
  Rng rng(3);
  const Tensor adv = pgd_attack(*model_, x_, y_, cfg, rng);
  EXPECT_LE(adv.linf_distance(x_), cfg.epsilon + 1e-5f);
  EXPECT_GE(adv.min(), 0.0f);
  EXPECT_LE(adv.max(), 1.0f);
}

TEST_F(AttackTest, FgsmStaysInEpsilonBall) {
  const Tensor adv = fgsm_attack(*model_, x_, y_, 0.03f);
  EXPECT_LE(adv.linf_distance(x_), 0.03f + 1e-5f);
  EXPECT_GE(adv.min(), 0.0f);
  EXPECT_LE(adv.max(), 1.0f);
}

TEST_F(AttackTest, PgdIncreasesLoss) {
  model_->set_training(false);
  const float clean_loss =
      softmax_cross_entropy(model_->forward(x_), y_).loss;
  AttackConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.steps = 7;
  Rng rng(4);
  const Tensor adv = pgd_attack(*model_, x_, y_, cfg, rng);
  const float adv_loss = softmax_cross_entropy(model_->forward(adv), y_).loss;
  EXPECT_GT(adv_loss, clean_loss);
}

TEST_F(AttackTest, PgdStrongerThanFgsmAndRandom) {
  model_->set_training(false);
  Rng rng(5);
  AttackConfig pgd_cfg;
  pgd_cfg.epsilon = 0.08f;
  pgd_cfg.steps = 10;
  const Tensor adv_pgd = pgd_attack(*model_, x_, y_, pgd_cfg, rng);
  const Tensor adv_fgsm = fgsm_attack(*model_, x_, y_, 0.08f);
  const Tensor adv_rand = random_noise_attack(x_, 0.08f, rng);
  const float l_pgd = softmax_cross_entropy(model_->forward(adv_pgd), y_).loss;
  const float l_fgsm =
      softmax_cross_entropy(model_->forward(adv_fgsm), y_).loss;
  const float l_rand =
      softmax_cross_entropy(model_->forward(adv_rand), y_).loss;
  EXPECT_GE(l_pgd, l_fgsm - 1e-3f);
  EXPECT_GT(l_fgsm, l_rand);
}

TEST_F(AttackTest, RestoresModeAndClearsGradients) {
  model_->set_training(true);
  AttackConfig cfg;
  Rng rng(6);
  pgd_attack(*model_, x_, y_, cfg, rng);
  EXPECT_TRUE(model_->training());
  for (Parameter* p : model_->parameters()) {
    EXPECT_FLOAT_EQ(p->grad.sum_sq(), 0.0f) << p->name;
  }
  model_->set_training(false);
  fgsm_attack(*model_, x_, y_, 0.02f);
  EXPECT_FALSE(model_->training());
}

TEST_F(AttackTest, ZeroStepsPgdIsJustProjection) {
  AttackConfig cfg;
  cfg.steps = 0;
  cfg.random_start = false;
  Rng rng(7);
  const Tensor adv = pgd_attack(*model_, x_, y_, cfg, rng);
  EXPECT_LT(adv.linf_distance(x_), 1e-6f);
}

TEST_F(AttackTest, EvaluateAdversarialAccuracyBelowClean) {
  AttackConfig cfg;
  cfg.epsilon = 0.08f;
  cfg.steps = 7;
  Rng rng(8);
  const float clean = evaluate_accuracy(*model_, test_);
  const float adv = evaluate_adversarial_accuracy(*model_, test_, cfg, rng);
  EXPECT_LT(adv, clean);
}

TEST(GaussianAugment, NoiseScalesWithSigma) {
  Rng rng(9);
  const Tensor x = Tensor::uniform({4, 3, 8, 8}, rng, 0.3f, 0.7f);
  Rng r1(10), r2(10);
  const Tensor mild = gaussian_augment(x, 0.01f, r1);
  const Tensor heavy = gaussian_augment(x, 0.2f, r2);
  EXPECT_LT(mild.linf_distance(x), heavy.linf_distance(x));
  EXPECT_GE(heavy.min(), 0.0f);
  EXPECT_LE(heavy.max(), 1.0f);
}

TEST(GaussianAugment, ZeroSigmaIsIdentity) {
  Rng rng(11);
  const Tensor x = Tensor::uniform({2, 3, 4, 4}, rng, 0.0f, 1.0f);
  Rng arng(12);
  EXPECT_LT(gaussian_augment(x, 0.0f, arng).linf_distance(x), 1e-9f);
}

TEST(RandomNoiseAttack, ExactlyEpsilonPerPixelBeforeClamp) {
  Rng rng(13);
  const Tensor x = Tensor::full({1, 1, 4, 4}, 0.5f);
  const Tensor adv = random_noise_attack(x, 0.1f, rng);
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_NEAR(std::fabs(adv[i] - 0.5f), 0.1f, 1e-6f);
  }
}

// Integration: adversarially trained models are measurably more robust than
// naturally trained ones — the premise of robust pretraining.
TEST(AdversarialTraining, ImprovesRobustAccuracy) {
  const Dataset train = generate_dataset(source_task_spec(), 200, 21);
  const Dataset test = generate_dataset(source_task_spec(), 120, 22);

  AttackConfig train_atk;
  train_atk.epsilon = 0.08f;
  train_atk.steps = 3;

  Rng rng_init(23);
  auto natural = make_micro_resnet18(10, rng_init);
  Rng rng_init2(23);
  auto robust = make_micro_resnet18(10, rng_init2);

  TrainLoopConfig nat_cfg;
  nat_cfg.epochs = 6;
  Rng t1(24);
  train_classifier(*natural, train, nat_cfg, t1);

  TrainLoopConfig adv_cfg = nat_cfg;
  adv_cfg.adversarial = true;
  adv_cfg.attack = train_atk;
  Rng t2(24);
  train_classifier(*robust, train, adv_cfg, t2);

  AttackConfig eval_atk;
  eval_atk.epsilon = 0.08f;
  eval_atk.steps = 7;
  Rng e1(25), e2(25);
  const float nat_adv_acc =
      evaluate_adversarial_accuracy(*natural, test, eval_atk, e1);
  const float rob_adv_acc =
      evaluate_adversarial_accuracy(*robust, test, eval_atk, e2);
  EXPECT_GT(rob_adv_acc, nat_adv_acc + 0.1f)
      << "adversarial training failed to confer robustness";
}

}  // namespace
}  // namespace rt
