// Tests for the MicroResNet family, segmentation net, state dicts, and
// model statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "models/resnet.hpp"
#include "models/segmentation.hpp"
#include "tensor/serialize.hpp"

namespace rt {
namespace {

TEST(ResNet, ForwardShapes) {
  Rng rng(1);
  auto r18 = make_micro_resnet18(10, rng);
  const Tensor x = Tensor::uniform({4, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor logits = r18->forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{4, 10}));
  EXPECT_EQ(r18->feature_dim(), 64);
}

TEST(ResNet, BottleneckForwardShapesAndWiderFeatures) {
  Rng rng(1);
  auto r50 = make_micro_resnet50(10, rng);
  const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(r50->forward(x).shape(), (std::vector<std::int64_t>{2, 10}));
  EXPECT_EQ(r50->feature_dim(), 160);
}

TEST(ResNet, R50HasMoreParamsThanR18) {
  Rng rng(1);
  auto r18 = make_micro_resnet18(10, rng);
  auto r50 = make_micro_resnet50(10, rng);
  EXPECT_GT(r50->num_parameters(), r18->num_parameters());
}

TEST(ResNet, TrunkStageShapes) {
  Rng rng(2);
  auto r18 = make_micro_resnet18(10, rng);
  const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(r18->forward_trunk(x, 0).shape(),
            (std::vector<std::int64_t>{2, 8, 16, 16}));
  EXPECT_EQ(r18->forward_trunk(x, 1).shape(),
            (std::vector<std::int64_t>{2, 16, 8, 8}));
  EXPECT_EQ(r18->forward_trunk(x, 3).shape(),
            (std::vector<std::int64_t>{2, 64, 2, 2}));
  EXPECT_THROW(r18->forward_trunk(x, 4), std::out_of_range);
}

TEST(ResNet, BackwardTrunkRequiresMatchingForward) {
  Rng rng(3);
  auto r18 = make_micro_resnet18(10, rng);
  const Tensor x = Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor f = r18->forward_trunk(x, 1);
  EXPECT_THROW(r18->backward_trunk(f, 2), std::logic_error);
  EXPECT_NO_THROW(r18->backward_trunk(Tensor(f.shape()), 1));
}

TEST(ResNet, FeaturesMatchForwardHead) {
  Rng rng(4);
  auto r18 = make_micro_resnet18(7, rng);
  r18->set_training(false);
  const Tensor x = Tensor::uniform({3, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor f = r18->forward_features(x);
  const Tensor logits_direct = r18->head().forward(f);
  const Tensor logits = r18->forward(x);
  EXPECT_LT(logits.linf_distance(logits_direct), 1e-5f);
}

TEST(ResNet, ResetHeadChangesWidthAndKeepsTrunk) {
  Rng rng(5);
  auto r18 = make_micro_resnet18(10, rng);
  const StateDict before = r18->state_dict();
  r18->reset_head(4, rng);
  EXPECT_EQ(r18->head().out_features(), 4);
  const Tensor x = Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  EXPECT_EQ(r18->forward(x).dim(1), 4);
  // Trunk params unchanged.
  const StateDict after = r18->state_dict();
  EXPECT_LT(after.at("r18.stem.weight")
                .linf_distance(before.at("r18.stem.weight")),
            1e-9f);
}

TEST(ResNet, PrunableExcludesHeadBnBias) {
  Rng rng(6);
  auto r18 = make_micro_resnet18(10, rng);
  for (Parameter* p : r18->prunable_parameters()) {
    EXPECT_TRUE(p->kind == ParamKind::kConvWeight ||
                p->kind == ParamKind::kLinearWeight);
    EXPECT_NE(p->name, "r18.head.weight");
  }
  bool head_found = false;
  for (Parameter* p : r18->prunable_parameters(/*include_head=*/true)) {
    if (p->name == "r18.head.weight") head_found = true;
  }
  EXPECT_TRUE(head_found);
}

TEST(ResNet, StatsCountParamsAndFlops) {
  Rng rng(7);
  auto r18 = make_micro_resnet18(10, rng);
  const ModelStats s = r18->stats(16, 16);
  EXPECT_EQ(s.total_params, r18->num_parameters());
  EXPECT_GT(s.prunable_params, 0);
  EXPECT_LE(s.prunable_params, s.total_params);
  EXPECT_EQ(s.unmasked_prunable_params, s.prunable_params);
  EXPECT_GT(s.dense_flops, 0);
  EXPECT_EQ(s.sparse_flops, s.dense_flops);
}

TEST(ResNet, MaskedStatsReduceSparseFlops) {
  Rng rng(8);
  auto r18 = make_micro_resnet18(10, rng);
  for (Parameter* p : r18->prunable_parameters()) {
    Tensor mask(p->value.shape());
    for (std::int64_t i = 0; i < mask.numel(); i += 2) mask[i] = 1.0f;
    p->set_mask(mask);
  }
  const ModelStats s = r18->stats(16, 16);
  EXPECT_LT(s.sparse_flops, s.dense_flops);
  EXPECT_NEAR(static_cast<double>(s.unmasked_prunable_params),
              0.5 * static_cast<double>(s.prunable_params),
              0.01 * static_cast<double>(s.prunable_params));
}

TEST(ResNet, StateDictRoundTripThroughStream) {
  Rng rng(9);
  auto a = make_micro_resnet18(10, rng);
  auto b = make_micro_resnet18(10, rng);
  // Different random init.
  const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  a->set_training(false);
  b->set_training(false);
  EXPECT_GT(a->forward(x).linf_distance(b->forward(x)), 1e-6f);

  std::stringstream buf;
  write_state_dict(buf, a->state_dict());
  b->load_state(read_state_dict(buf));
  EXPECT_LT(a->forward(x).linf_distance(b->forward(x)), 1e-6f);
}

TEST(ResNet, StateDictIncludesBnBuffers) {
  Rng rng(10);
  auto r18 = make_micro_resnet18(10, rng);
  const StateDict state = r18->state_dict();
  EXPECT_TRUE(state.count("r18.stem_bn.running_mean") == 1);
  EXPECT_TRUE(state.count("r18.stem_bn.running_var") == 1);
  EXPECT_TRUE(state.count("r18.stage0.block0.bn1.running_mean") == 1);
}

TEST(ResNet, LoadStateRejectsUnknownAndMisshapen) {
  Rng rng(11);
  auto r18 = make_micro_resnet18(10, rng);
  StateDict bogus;
  bogus["no.such.param"] = Tensor({1});
  EXPECT_THROW(r18->load_state(bogus), std::invalid_argument);
  StateDict misshapen;
  misshapen["r18.stem.weight"] = Tensor({1, 1});
  EXPECT_THROW(r18->load_state(misshapen), std::invalid_argument);
}

TEST(ResNet, UniqueParameterNames) {
  Rng rng(12);
  auto r50 = make_micro_resnet50(10, rng);
  std::set<std::string> names;
  for (Parameter* p : r50->parameters()) {
    EXPECT_TRUE(names.insert(p->name).second) << "duplicate: " << p->name;
  }
  std::vector<Module::NamedTensor> buffers;
  r50->collect_buffers(buffers);
  for (const auto& [name, tensor] : buffers) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
}

TEST(ResNet, EvalModeIsDeterministic) {
  Rng rng(13);
  auto r18 = make_micro_resnet18(10, rng);
  r18->set_training(false);
  const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor y1 = r18->forward(x);
  const Tensor y2 = r18->forward(x);
  EXPECT_LT(y1.linf_distance(y2), 1e-9f);
}

TEST(SegmentationNet, ForwardShapeAndBackward) {
  Rng rng(14);
  auto backbone = make_micro_resnet18(10, rng);
  SegmentationNet seg(std::move(backbone), 4, 2, rng);
  const Tensor x = Tensor::uniform({2, 3, 16, 16}, rng, 0.0f, 1.0f);
  const Tensor logits = seg.forward(x);
  EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{2, 4, 16, 16}));
  const Tensor g = seg.backward(Tensor(logits.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(SegmentationNet, HeadParametersSubset) {
  Rng rng(15);
  auto backbone = make_micro_resnet18(10, rng);
  SegmentationNet seg(std::move(backbone), 4, 2, rng);
  const auto head = seg.head_parameters();
  EXPECT_EQ(head.size(), 2u);  // 1x1 conv weight + bias
  EXPECT_LT(head.size(), seg.parameters().size());
}

TEST(SegmentationNet, RejectsBadStage) {
  Rng rng(16);
  auto backbone = make_micro_resnet18(10, rng);
  EXPECT_THROW(SegmentationNet(std::move(backbone), 4, 9, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rt
