// serving::PredictionCache + eviction policies + registry PlanCache plumbing.
//
// Three layers of contract:
//   1. rt::Pcg32 is the canonical PCG32: the first outputs of the reference
//      (seed 42, stream 54) pin conformance, and a constexpr evaluation pins
//      that traces can be generated at compile time.
//   2. Each eviction policy's eviction ORDER equals a naive reference
//      simulator's on randomized traces (plus handcrafted cases: the LRU-K
//      K-reference scan barrier, ARC ghost-list transitions, CLOCK hand
//      wrap), so the optimized index structures cannot drift from the
//      textbook algorithms.
//   3. Through a live serving::Server, cache-on responses are BITWISE
//      identical to cache-off / direct Session output — including partial
//      hits, duplicate rows inside one request, hot swaps (a swapped-in
//      fleet must never serve a predecessor's logits), and concurrent
//      hit/miss traffic — and ServerStats/CacheStats account every row.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/checkpoint_store.hpp"
#include "engine/engine.hpp"
#include "models/resnet.hpp"
#include "serving/cache.hpp"
#include "serving/serving.hpp"
#include "tensor/tensor.hpp"

namespace rt {
namespace {

using serving::CacheOptions;
using serving::CachePolicy;
using serving::CacheStats;
using serving::EvictionPolicy;
using serving::PredictionCache;

// ---- Pcg32 ------------------------------------------------------------------

TEST(Pcg32, PinsCanonicalReferenceStreamForTwoSeeds) {
  // (42, 54) is the seed/stream pair of the reference pcg32-demo; its first
  // outputs (0xa15c02b7, 0x7b47f409, ...) are published by the PCG project,
  // so this table pins conformance with the canonical generator, not just
  // self-consistency.
  constexpr std::array<std::uint32_t, 16> kWant42_54 = {
      0xa15c02b7u, 0x7b47f409u, 0xba1d3330u, 0x83d2f293u,
      0xbfa4784bu, 0xcbed606eu, 0xbfc6a3adu, 0x812fff6du,
      0xe61f305au, 0xf9384b90u, 0x32db86feu, 0x1dc035f9u,
      0xed786826u, 0x3822441du, 0x2ba113d7u, 0x1c5b818bu,
  };
  // A second, unrelated (seed, stream): Rng's historical default seeds.
  constexpr std::array<std::uint32_t, 16> kWantDefault = {
      0x1bbeb4f2u, 0xe82e89e9u, 0x681cfdebu, 0xe00fa2ecu,
      0xb1e1a434u, 0xbe56068du, 0x2add8c94u, 0x9f1b63f5u,
      0x38bfe349u, 0xe5601e3du, 0x66ad0ba4u, 0x6587fa97u,
      0x58ce0bbfu, 0xa76b235au, 0xca5a9c9bu, 0xe28a991bu,
  };

  // Constexpr proof: the stream is computable in a constant expression, so
  // benchmark traces can be built at compile time on any toolchain.
  constexpr std::uint32_t kFirst = [] {
    Pcg32 g(42, 54);
    return g.next_u32();
  }();
  static_assert(kFirst == 0xa15c02b7u,
                "Pcg32 must reproduce the canonical PCG32 stream");

  Pcg32 a(42, 54);
  for (std::size_t i = 0; i < kWant42_54.size(); ++i) {
    EXPECT_EQ(a.next_u32(), kWant42_54[i]) << "output " << i;
  }
  Pcg32 b(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL);
  for (std::size_t i = 0; i < kWantDefault.size(); ++i) {
    EXPECT_EQ(b.next_u32(), kWantDefault[i]) << "output " << i;
  }
}

TEST(Pcg32, BoundedAndUnitDrawsStayInRange) {
  Pcg32 g(7, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(g.next_below(13), 13u);
    const double u = g.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---- naive reference simulators --------------------------------------------
// Deliberately dumb: linear scans and full histories instead of the library's
// splice lists and rank sets. Agreement on randomized traces means the fast
// structures implement the same textbook policy.

class NaiveLru {
 public:
  explicit NaiveLru(int capacity) : capacity_(capacity) {}

  void on_hit(std::uint64_t key) {
    order_.erase(std::find(order_.begin(), order_.end(), key));
    order_.insert(order_.begin(), key);
  }

  std::vector<std::uint64_t> on_insert(std::uint64_t key) {
    order_.insert(order_.begin(), key);
    if (static_cast<int>(order_.size()) <= capacity_) return {};
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    return {victim};
  }

  std::int64_t tracked() const {
    return static_cast<std::int64_t>(order_.size());
  }

 private:
  int capacity_;
  std::vector<std::uint64_t> order_;  // MRU first
};

class NaiveLruK {
 public:
  NaiveLruK(int capacity, int k) : capacity_(capacity), k_(k) {}

  void on_hit(std::uint64_t key) { hist_[key].push_back(++clock_); }

  std::vector<std::uint64_t> on_insert(std::uint64_t key) {
    hist_[key].push_back(++clock_);
    if (static_cast<int>(hist_.size()) <= capacity_) return {};
    // Victim: smallest (Kth-most-recent access, last access, key); keys
    // with fewer than K accesses rank 0 — below every K-referenced key.
    std::uint64_t victim = 0;
    std::array<std::uint64_t, 3> best{~0ULL, ~0ULL, ~0ULL};
    for (const auto& [k2, hist] : hist_) {
      const std::uint64_t kth =
          static_cast<int>(hist.size()) >= k_ ? hist[hist.size() - k_] : 0;
      const std::array<std::uint64_t, 3> rank{kth, hist.back(), k2};
      if (rank < best) {
        best = rank;
        victim = k2;
      }
    }
    hist_.erase(victim);
    return {victim};
  }

  std::int64_t tracked() const { return static_cast<std::int64_t>(hist_.size()); }

 private:
  int capacity_;
  int k_;
  std::uint64_t clock_ = 0;
  std::map<std::uint64_t, std::vector<std::uint64_t>> hist_;  // full history
};

class NaiveClock {
 public:
  explicit NaiveClock(int capacity) : capacity_(capacity) {}

  void on_hit(std::uint64_t key) {
    for (auto& slot : slots_) {
      if (slot.key == key) slot.ref = true;
    }
  }

  std::vector<std::uint64_t> on_insert(std::uint64_t key) {
    if (static_cast<int>(slots_.size()) < capacity_) {
      slots_.push_back({key, false});
      return {};
    }
    while (slots_[hand_].ref) {
      slots_[hand_].ref = false;
      hand_ = (hand_ + 1) % slots_.size();
    }
    const std::uint64_t victim = slots_[hand_].key;
    slots_[hand_] = {key, false};
    hand_ = (hand_ + 1) % slots_.size();
    return {victim};
  }

  std::int64_t tracked() const {
    return static_cast<std::int64_t>(slots_.size());
  }

 private:
  struct Slot {
    std::uint64_t key;
    bool ref;
  };
  int capacity_;
  std::size_t hand_ = 0;
  std::vector<Slot> slots_;
};

/// Literal transcription of Megiddo & Modha's ARC(c) pseudocode over plain
/// vectors (MRU at the front), including the library's defensive
/// "T2 empty -> take T1" arm of REPLACE.
class NaiveArc {
 public:
  explicit NaiveArc(int c) : c_(c) {}

  void on_hit(std::uint64_t key) {
    remove(t1_, key);
    remove(t2_, key);
    t2_.insert(t2_.begin(), key);
  }

  std::vector<std::uint64_t> on_insert(std::uint64_t key) {
    std::vector<std::uint64_t> evicted;
    if (contains(b1_, key)) {
      p_ = std::min<std::int64_t>(
          c_, p_ + std::max<std::int64_t>(
                       1, static_cast<std::int64_t>(b2_.size()) /
                              static_cast<std::int64_t>(b1_.size())));
      replace(false, evicted);
      remove(b1_, key);
      t2_.insert(t2_.begin(), key);
      return evicted;
    }
    if (contains(b2_, key)) {
      p_ = std::max<std::int64_t>(
          0, p_ - std::max<std::int64_t>(
                      1, static_cast<std::int64_t>(b1_.size()) /
                             static_cast<std::int64_t>(b2_.size())));
      replace(true, evicted);
      remove(b2_, key);
      t2_.insert(t2_.begin(), key);
      return evicted;
    }
    const auto l1 = static_cast<std::int64_t>(t1_.size() + b1_.size());
    const auto total =
        l1 + static_cast<std::int64_t>(t2_.size() + b2_.size());
    if (l1 == c_) {
      if (static_cast<std::int64_t>(t1_.size()) < c_) {
        b1_.pop_back();
        replace(false, evicted);
      } else {
        evicted.push_back(t1_.back());
        t1_.pop_back();
      }
    } else if (total >= c_) {
      if (total == 2 * c_) b2_.pop_back();
      replace(false, evicted);
    }
    t1_.insert(t1_.begin(), key);
    return evicted;
  }

  std::int64_t tracked() const {
    return static_cast<std::int64_t>(t1_.size() + t2_.size());
  }

 private:
  static bool contains(const std::vector<std::uint64_t>& v,
                       std::uint64_t key) {
    return std::find(v.begin(), v.end(), key) != v.end();
  }
  static void remove(std::vector<std::uint64_t>& v, std::uint64_t key) {
    const auto it = std::find(v.begin(), v.end(), key);
    if (it != v.end()) v.erase(it);
  }

  void replace(bool from_b2, std::vector<std::uint64_t>& evicted) {
    const auto t1 = static_cast<std::int64_t>(t1_.size());
    const bool take_t1 =
        t1 >= 1 && (t1 > p_ || (from_b2 && t1 == p_) || t2_.empty());
    std::vector<std::uint64_t>& from = take_t1 ? t1_ : t2_;
    std::vector<std::uint64_t>& ghost = take_t1 ? b1_ : b2_;
    if (from.empty()) return;
    const std::uint64_t victim = from.back();
    from.pop_back();
    ghost.insert(ghost.begin(), victim);
    evicted.push_back(victim);
  }

  std::int64_t c_;
  std::int64_t p_ = 0;
  std::vector<std::uint64_t> t1_, t2_, b1_, b2_;
};

/// Drives the library policy and a naive simulator through one randomized
/// trace and asserts identical eviction sets at every step.
template <typename Naive>
void expect_trace_parity(CachePolicy kind, Naive naive, std::int64_t capacity,
                         int lru_k, std::uint32_t universe,
                         std::uint64_t seed, int refs) {
  auto policy = serving::make_eviction_policy(kind, capacity, lru_k);
  std::set<std::uint64_t> live;
  Pcg32 rng(seed);
  for (int i = 0; i < refs; ++i) {
    // Non-uniform draw: square the uniform so low keys are hot — every
    // policy's interesting behavior needs both reuse and churn.
    const std::uint64_t key =
        (rng.next_below(universe) * (rng.next_below(universe) + 1)) %
        universe;
    if (live.count(key) != 0) {
      policy->on_hit(key);
      naive.on_hit(key);
    } else {
      std::vector<std::uint64_t> got;
      policy->on_insert(key, got);
      std::vector<std::uint64_t> want = naive.on_insert(key);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << serving::cache_policy_name(kind)
                           << ": divergent eviction at reference " << i
                           << " (key " << key << ")";
      live.insert(key);
      for (const std::uint64_t victim : got) live.erase(victim);
    }
    ASSERT_EQ(policy->tracked(), naive.tracked()) << "at reference " << i;
    ASSERT_LE(policy->tracked(), capacity);
  }
}

TEST(EvictionPolicyParity, LruMatchesNaiveOnRandomizedTraces) {
  expect_trace_parity(CachePolicy::kLru, NaiveLru(8), 8, 2, 24, 101, 4000);
  expect_trace_parity(CachePolicy::kLru, NaiveLru(5), 5, 2, 100, 102, 4000);
}

TEST(EvictionPolicyParity, LruKMatchesNaiveOnRandomizedTraces) {
  expect_trace_parity(CachePolicy::kLruK, NaiveLruK(8, 2), 8, 2, 24, 103,
                      4000);
  expect_trace_parity(CachePolicy::kLruK, NaiveLruK(5, 3), 5, 3, 100, 104,
                      4000);
}

TEST(EvictionPolicyParity, ClockMatchesNaiveOnRandomizedTraces) {
  expect_trace_parity(CachePolicy::kClock, NaiveClock(8), 8, 2, 24, 105,
                      4000);
  expect_trace_parity(CachePolicy::kClock, NaiveClock(5), 5, 2, 100, 106,
                      4000);
}

TEST(EvictionPolicyParity, ArcMatchesNaiveOnRandomizedTraces) {
  // The small-universe trace keeps ghosts hot (constant B1/B2 hits and p
  // adaptation); the large-universe one churns keys clean through both
  // ghost lists.
  expect_trace_parity(CachePolicy::kArc, NaiveArc(8), 8, 2, 24, 107, 4000);
  expect_trace_parity(CachePolicy::kArc, NaiveArc(5), 5, 2, 100, 108, 4000);
}

// ---- handcrafted policy semantics ------------------------------------------

TEST(EvictionPolicy, LruKScanBarrierProtectsKReferencedKeys) {
  // Capacity 4, K=2: keys 1..4 get two references each; a sweep of cold
  // singletons may only ever displace other cold keys, never the
  // K-referenced working set — O'Neil's scan barrier.
  auto policy = serving::make_eviction_policy(CachePolicy::kLruK, 4, 2);
  std::vector<std::uint64_t> evicted;
  for (std::uint64_t key = 1; key <= 4; ++key) {
    policy->on_insert(key, evicted);
    policy->on_hit(key);
  }
  ASSERT_TRUE(evicted.empty());
  for (std::uint64_t cold = 100; cold < 140; ++cold) {
    policy->on_insert(cold, evicted);
  }
  ASSERT_EQ(evicted.size(), 40u);  // every insert past capacity evicts one
  for (const std::uint64_t victim : evicted) {
    EXPECT_GE(victim, 100u) << "scan evicted a K-referenced hot key";
  }
}

TEST(EvictionPolicy, LruKBreaksTiesAmongColdKeysByOldestAccess) {
  // Capacity 2, K=2: "a" earns its second reference; "b" and "c" stay cold.
  auto policy = serving::make_eviction_policy(CachePolicy::kLruK, 2, 2);
  std::vector<std::uint64_t> evicted;
  policy->on_insert(1, evicted);  // a
  policy->on_hit(1);
  policy->on_insert(2, evicted);  // b
  ASSERT_TRUE(evicted.empty());
  policy->on_insert(3, evicted);  // c: b is the only other rank-0 key
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{2});
  evicted.clear();
  policy->on_insert(2, evicted);  // b again: c (older last access) goes
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{3});
}

TEST(EvictionPolicy, ClockSecondChanceAndHandWrap) {
  // Capacity 3: a, b, c fill the ring; a's reference bit saves it on the
  // first sweep (the hand clears it and takes b), and the hand then wraps
  // past the end back to slot 0.
  auto policy = serving::make_eviction_policy(CachePolicy::kClock, 3, 2);
  std::vector<std::uint64_t> evicted;
  policy->on_insert(1, evicted);  // slot 0
  policy->on_insert(2, evicted);  // slot 1
  policy->on_insert(3, evicted);  // slot 2
  ASSERT_TRUE(evicted.empty());
  policy->on_hit(1);
  policy->on_insert(4, evicted);  // hand: clears 1's bit, evicts 2 (slot 1)
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{2});
  evicted.clear();
  policy->on_insert(5, evicted);  // hand at slot 2: 3 is cold -> evicted
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{3});
  evicted.clear();
  // Hand wrapped to slot 0; 1's bit was already spent, so it goes next.
  policy->on_insert(6, evicted);
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{1});
}

TEST(EvictionPolicy, ArcGhostHitsAdaptAndPromoteStraightToT2) {
  // c=2 walkthrough of the paper's Case II/III. x is promoted to T2 via a
  // hit; y is demoted to the B1 ghost list; re-demanding y must (a) evict
  // from T2 (p grew toward recency), (b) revive y directly into T2.
  auto policy = serving::make_eviction_policy(CachePolicy::kArc, 2, 2);
  std::vector<std::uint64_t> evicted;
  policy->on_insert(10, evicted);  // x -> T1
  policy->on_hit(10);              // x -> T2
  policy->on_insert(20, evicted);  // y -> T1
  ASSERT_TRUE(evicted.empty());
  policy->on_insert(30, evicted);  // z: REPLACE demotes y (T1 LRU) to B1
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{20});
  evicted.clear();
  policy->on_insert(20, evicted);  // y found in B1: p grows, x (T2) demoted
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{10});
  ASSERT_EQ(policy->tracked(), 2);  // y revived (T2) + z (T1)
  evicted.clear();
  policy->on_hit(20);  // y must be live again — a ghost hit revives values
  policy->on_insert(10, evicted);  // x found in B2: p shrinks, z demoted
  ASSERT_EQ(evicted, std::vector<std::uint64_t>{30});
}

TEST(EvictionPolicy, ArcSurvivesScansThatFlushLru) {
  // Hot set of 4 keys promoted to T2, then a 100-key cold scan: ARC must
  // keep every hot key resident (scans live and die in T1), while LRU by
  // construction loses all of them.
  const std::int64_t kCapacity = 8;
  auto arc = serving::make_eviction_policy(CachePolicy::kArc, kCapacity, 2);
  auto lru = serving::make_eviction_policy(CachePolicy::kLru, kCapacity, 2);
  std::vector<std::uint64_t> arc_evicted, lru_evicted;
  for (std::uint64_t key = 1; key <= 4; ++key) {
    arc->on_insert(key, arc_evicted);
    arc->on_hit(key);  // -> T2
    lru->on_insert(key, lru_evicted);
    lru->on_hit(key);
  }
  for (std::uint64_t cold = 1000; cold < 1100; ++cold) {
    arc->on_insert(cold, arc_evicted);
    lru->on_insert(cold, lru_evicted);
  }
  for (const std::uint64_t victim : arc_evicted) {
    EXPECT_GE(victim, 1000u) << "ARC let a cold scan evict hot key "
                             << victim;
  }
  // The same scan flushes LRU's entire hot set — the contrast the serving
  // bench measures as throughput.
  for (std::uint64_t key = 1; key <= 4; ++key) {
    EXPECT_NE(std::find(lru_evicted.begin(), lru_evicted.end(), key),
              lru_evicted.end());
  }
}

TEST(EvictionPolicy, FactoryValidatesAndNames) {
  EXPECT_THROW(serving::make_eviction_policy(CachePolicy::kLru, 0),
               std::invalid_argument);
  EXPECT_THROW(serving::make_eviction_policy(CachePolicy::kLruK, 4, 1),
               std::invalid_argument);
  EXPECT_STREQ(serving::cache_policy_name(CachePolicy::kLru), "lru");
  EXPECT_STREQ(serving::cache_policy_name(CachePolicy::kLruK), "lru-k");
  EXPECT_STREQ(serving::cache_policy_name(CachePolicy::kClock), "clock");
  EXPECT_STREQ(serving::cache_policy_name(CachePolicy::kArc), "arc");
  EXPECT_STREQ(serving::make_eviction_policy(CachePolicy::kArc, 2)->name(),
               "arc");
}

// ---- cache keys -------------------------------------------------------------

TEST(CacheKey, MixesFingerprintAndEpochTag) {
  const std::vector<float> row_a(48, 0.25f);
  std::vector<float> row_b = row_a;
  row_b[7] = 0.25000012f;  // one ULP-ish nudge: different bytes
  const std::uint64_t fp_a = row_fingerprint(row_a.data(), row_a.size());
  const std::uint64_t fp_b = row_fingerprint(row_b.data(), row_b.size());
  EXPECT_NE(fp_a, fp_b);
  EXPECT_EQ(fp_a, row_fingerprint(row_a.data(), row_a.size()));

  // Same row under different epoch tags must land on different keys — the
  // invalidation mechanism hot swap relies on.
  EXPECT_NE(serving::cache_key(fp_a, 1), serving::cache_key(fp_a, 2));
  EXPECT_NE(serving::cache_key(fp_a, 1), serving::cache_key(fp_b, 1));
  EXPECT_EQ(serving::cache_key(fp_a, 3), serving::cache_key(fp_a, 3));
}

// ---- PredictionCache --------------------------------------------------------

TEST(PredictionCacheUnit, ValidatesConstruction) {
  CacheOptions opt;
  opt.capacity_rows = 0;
  EXPECT_THROW(PredictionCache(opt, 10), std::invalid_argument);
  opt.capacity_rows = 4;
  opt.shards = 0;
  EXPECT_THROW(PredictionCache(opt, 10), std::invalid_argument);
  opt.shards = 1;
  EXPECT_THROW(PredictionCache(opt, 0), std::invalid_argument);
  opt.policy = CachePolicy::kLruK;
  opt.lru_k = 1;
  EXPECT_THROW(PredictionCache(opt, 10), std::invalid_argument);
}

TEST(PredictionCacheUnit, RoundTripsAndFirstInsertWins) {
  CacheOptions opt;
  opt.capacity_rows = 8;
  opt.shards = 2;
  PredictionCache cache(opt, 3);
  EXPECT_EQ(cache.value_floats(), 3);

  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{9.0f, 9.0f, 9.0f};
  std::vector<float> out(3, 0.0f);
  EXPECT_FALSE(cache.lookup(42, out.data()));
  cache.insert(42, a.data());
  ASSERT_TRUE(cache.lookup(42, out.data()));
  EXPECT_EQ(out, a);
  // Racing fills compute identical bits by the determinism contract; the
  // idempotent insert keeps the first (they are interchangeable anyway).
  cache.insert(42, b.data());
  ASSERT_TRUE(cache.lookup(42, out.data()));
  EXPECT_EQ(out, a);

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hit_rows, 2u);
  EXPECT_EQ(st.miss_rows, 1u);
  EXPECT_EQ(st.inserted_rows, 1u);
  EXPECT_EQ(st.size_rows, 1);
  EXPECT_EQ(st.capacity_rows, 8);
}

TEST(PredictionCacheUnit, EnforcesCapacityAcrossShardsAndClampsShardCount) {
  // shards (8) > capacity (3): clamped so every shard owns >= 1 row and the
  // total bound stays exact.
  CacheOptions opt;
  opt.capacity_rows = 3;
  opt.shards = 8;
  opt.policy = CachePolicy::kLru;
  PredictionCache cache(opt, 2);
  const std::vector<float> v{1.0f, 2.0f};
  for (std::uint64_t key = 1; key <= 64; ++key) {
    cache.insert(key, v.data());
  }
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.inserted_rows, 64u);
  EXPECT_LE(st.size_rows, 3);
  EXPECT_GE(st.size_rows, 1);
  EXPECT_EQ(st.inserted_rows - st.evicted_rows,
            static_cast<std::uint64_t>(st.size_rows));
}

// ---- live Server integration ------------------------------------------------

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "tc";
  return std::make_unique<ResNet>(cfg, rng);
}

std::shared_ptr<const CompiledTicket> tiny_plan(std::uint64_t seed) {
  auto model = tiny_model(seed);
  model->set_training(false);
  return std::make_shared<const CompiledTicket>(Engine::compile(*model));
}

/// `n` distinct single rows, deterministic in (seed, index).
std::vector<Tensor> make_rows(int n, std::uint64_t seed) {
  std::vector<Tensor> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Rng rng(seed + static_cast<std::uint64_t>(i));
    rows.push_back(Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f));
  }
  return rows;
}

/// Packs pool rows (by index) into one (n, 3, 16, 16) request.
Tensor pack_rows(const std::vector<Tensor>& pool, const std::vector<int>& idx) {
  const std::int64_t plane = 3 * 16 * 16;
  Tensor out({static_cast<std::int64_t>(idx.size()), 3, 16, 16});
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const Tensor& row = pool[static_cast<std::size_t>(idx[j])];
    std::copy(row.data(), row.data() + plane,
              out.data() + static_cast<std::int64_t>(j) * plane);
  }
  return out;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "flat index " << i;
  }
}

TEST(ServingCache, CacheOnIsBitwiseCacheOffIncludingPartialHits) {
  auto plan = tiny_plan(91);
  Session reference(plan, /*max_batch=*/8);
  const std::vector<Tensor> pool = make_rows(8, 920);

  serving::ServerOptions opt;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.0;
  opt.cache.capacity_rows = 64;
  opt.cache.policy = CachePolicy::kArc;
  serving::Server server(plan, opt);

  const auto roundtrip = [&](const std::vector<int>& idx) {
    const Tensor request = pack_rows(pool, idx);
    expect_bitwise(server.predict(Tensor(request)),
                   reference.predict(request));
  };

  roundtrip({0, 1, 2, 3});  // pass 1: all four rows miss
  roundtrip({0, 1, 2, 3});  // pass 2: all-hit fast path (no batch at all)
  roundtrip({2, 3, 4, 5});  // pass 3: partial — 2 hits, 2 compacted misses
  roundtrip({6, 6, 7});     // pass 4: duplicate rows inside one request
  roundtrip({6, 7});        // pass 5: both hit

  const CacheStats cs = server.cache_stats();
  EXPECT_EQ(cs.hit_rows, 4u + 2u + 2u);
  EXPECT_EQ(cs.miss_rows, 4u + 2u + 3u);
  // Duplicate rows in pass 4 raced to fill one entry; first write won.
  EXPECT_EQ(cs.inserted_rows, 4u + 2u + 2u);
  EXPECT_EQ(cs.evicted_rows, 0u);

  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.cache_hit_rows, cs.hit_rows);
  EXPECT_EQ(st.cache_miss_rows, cs.miss_rows);
  EXPECT_EQ(st.completed_requests, 5u);
  EXPECT_EQ(st.failed_requests, 0u);
  EXPECT_EQ(st.submitted_rows, 4u + 4u + 4u + 3u + 2u);
  // Only miss rows ever reached a micro-batch.
  EXPECT_EQ(st.batched_rows, cs.miss_rows);
}

TEST(ServingCache, HotSwapNeverServesStaleHits) {
  auto plan1 = tiny_plan(101);
  auto plan2 = tiny_plan(102);
  Session ref1(plan1, 4);
  Session ref2(plan2, 4);
  const std::vector<Tensor> pool = make_rows(1, 1030);
  const Tensor& x = pool[0];
  const Tensor want1 = ref1.predict(x);
  const Tensor want2 = ref2.predict(x);
  ASSERT_NE(want1.linf_distance(want2), 0.0f);  // versions must disagree

  serving::ServerOptions opt;
  opt.max_batch = 4;
  opt.max_delay_ms = 0.0;
  opt.cache.capacity_rows = 16;
  serving::Server server(plan1, opt);

  expect_bitwise(server.predict(Tensor(x)), want1);  // miss + fill
  expect_bitwise(server.predict(Tensor(x)), want1);  // hit
  EXPECT_EQ(server.cache_stats().hit_rows, 1u);

  // Hot swap: the cached v1 logits are keyed under v1's epoch tag, so the
  // very first v2 request must miss and return v2 bits — a stale hit here
  // would bitwise-equal want1 and fail loudly.
  server.swap_fleet({"v2", {plan2}});
  expect_bitwise(server.predict(Tensor(x)), want2);
  expect_bitwise(server.predict(Tensor(x)), want2);  // hit under the v2 tag
  EXPECT_EQ(server.cache_stats().hit_rows, 2u);
  EXPECT_EQ(server.cache_stats().miss_rows, 2u);

  // Swapping back installs a THIRD epoch (fresh tag): the old v1 fill must
  // not resurrect.
  server.swap_fleet({"v1-again", {plan1}});
  expect_bitwise(server.predict(Tensor(x)), want1);
  EXPECT_EQ(server.cache_stats().miss_rows, 3u);
}

TEST(ServingCache, ConcurrentHitMissTrafficStaysBitwiseAndAccountsRows) {
  auto plan = tiny_plan(111);
  Session reference(plan, 8);
  constexpr int kPool = 16;
  const std::vector<Tensor> pool = make_rows(kPool, 1120);
  std::vector<Tensor> want;
  want.reserve(kPool);
  for (const Tensor& row : pool) want.push_back(reference.predict(row));

  serving::ServerOptions opt;
  opt.shards = 2;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.05;
  opt.queue_capacity_rows = 1 << 14;
  // Capacity below the working set: constant concurrent hit/miss/evict mix.
  opt.cache.capacity_rows = 8;
  opt.cache.shards = 4;
  opt.cache.policy = CachePolicy::kArc;
  serving::Server server(plan, opt);

  constexpr int kClients = 4;
  constexpr int kRequests = 64;
  std::vector<int> picked(kClients * kRequests);
  std::vector<Tensor> got(kClients * kRequests);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Pcg32 rng(200 + static_cast<std::uint64_t>(c));
      for (int r = 0; r < kRequests; ++r) {
        const int idx = static_cast<int>(rng.next_below(kPool));
        const std::size_t slot = static_cast<std::size_t>(c * kRequests + r);
        picked[slot] = idx;
        got[slot] = server.predict(Tensor(pool[static_cast<std::size_t>(idx)]));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_bitwise(got[i], want[static_cast<std::size_t>(picked[i])]);
  }
  const CacheStats cs = server.cache_stats();
  EXPECT_EQ(cs.hit_rows + cs.miss_rows,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_LE(cs.size_rows, 8);
  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.completed_requests,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(st.failed_requests, 0u);
  EXPECT_EQ(st.rejected_requests, 0u);
}

TEST(ServingCache, ServerValidatesCacheOptions) {
  auto plan = tiny_plan(121);
  serving::ServerOptions negative;
  negative.cache.capacity_rows = -1;
  EXPECT_THROW(serving::Server(plan, negative), std::invalid_argument);

  serving::ServerOptions bad_shards;
  bad_shards.cache.capacity_rows = 4;
  bad_shards.cache.shards = 0;
  EXPECT_THROW(serving::Server(plan, bad_shards), std::invalid_argument);

  serving::ServerOptions bad_k;
  bad_k.cache.capacity_rows = 4;
  bad_k.cache.policy = CachePolicy::kLruK;
  bad_k.cache.lru_k = 1;
  EXPECT_THROW(serving::Server(plan, bad_k), std::invalid_argument);

  // Cache off (capacity 0): stats stay all-zero and nothing is cached.
  serving::Server off(plan, serving::ServerOptions{});
  const std::vector<Tensor> pool = make_rows(1, 1220);
  off.predict(Tensor(pool[0]));
  off.predict(Tensor(pool[0]));
  const CacheStats cs = off.cache_stats();
  EXPECT_EQ(cs.hit_rows, 0u);
  EXPECT_EQ(cs.miss_rows, 0u);
  EXPECT_EQ(cs.capacity_rows, 0);
}

}  // namespace
}  // namespace rt
