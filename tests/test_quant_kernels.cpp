// Accuracy guards for the true-int8 execution layer (linalg/gemm_s8,
// linalg/conv s8 paths, engine int8-native plans):
//
//  - kernel-level parity against exact integer references at awkward extents
//    (the int32 accumulator is exact, so the raw sums must match EXACTLY;
//    the float requant is one expression per output and is compared at float
//    rounding tolerance — FMA contraction may associate it differently),
//  - the three gather strategies (clipped runs, padded plane, index table)
//    and the batched entry point must agree bitwise,
//  - end-to-end: native int8 vs the simulated-PTQ reference within a
//    documented tolerance, bitwise determinism across runs, and <= 1% top-1
//    delta against fp32 serving for the dense and 90%-sparse micro-r18
//    tickets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "linalg/conv.hpp"
#include "linalg/gemm_s8.hpp"
#include "linalg/microkernel_s8.hpp"
#include "models/resnet.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::vector<std::int8_t> random_s8(std::int64_t count, Rng& rng,
                                   float zero_fraction) {
  std::vector<std::int8_t> out(static_cast<std::size_t>(count));
  for (auto& v : out) {
    v = rng.uniform(0.0f, 1.0f) < zero_fraction
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  return out;
}

std::vector<std::uint8_t> random_u8(std::int64_t count, Rng& rng) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(count));
  for (auto& v : out) {
    v = static_cast<std::uint8_t>(128 + rng.uniform_int(-127, 127));
  }
  return out;
}

/// The requant expression the kernels implement, spelled exactly once here.
float requant_ref(std::int32_t acc, std::int32_t corr, float sx, float sw,
                  float bias, bool relu) {
  float y = static_cast<float>(acc - corr) * (sx * sw) + bias;
  if (relu && y < 0.0f) y = 0.0f;
  return y;
}

/// Float comparison for requantized outputs: the kernel may contract the
/// scale multiply and bias add into an FMA, so demand agreement only to a
/// few ULP of the reference magnitude.
void expect_requant_near(float got, float want, const char* what,
                         std::int64_t index) {
  const float tol = 1e-5f * std::max(1.0f, std::fabs(want));
  ASSERT_NEAR(got, want, tol) << what << " index=" << index;
}

TEST(QuantGemm, NnMatchesIntegerReferenceAtAwkwardExtents) {
  Rng rng(7);
  // Extents straddle the 8x16 tile and quad-of-4 k grouping boundaries.
  const struct { std::int64_t m, n, k; float zf; } cases[] = {
      {1, 1, 1, 0.0f},   {3, 5, 2, 0.0f},   {8, 16, 4, 0.0f},
      {9, 17, 5, 0.0f},  {24, 33, 70, 0.0f}, {13, 40, 129, 0.9f},
  };
  for (const auto& c : cases) {
    const auto qa = random_s8(c.m * c.k, rng, c.zf);
    const auto qb = random_u8(c.k * c.n, rng);
    PackedS8 packed;
    packed.pack(qa.data(), c.m, c.k);
    std::vector<float> scales(static_cast<std::size_t>(c.m));
    std::vector<float> bias(static_cast<std::size_t>(c.m));
    for (auto& s : scales) s = rng.uniform(0.001f, 0.02f);
    for (auto& b : bias) b = rng.uniform(-1.0f, 1.0f);
    const float sx = 0.011f;

    S8Epilogue ep;
    ep.scales = scales.data();
    ep.act_scale = sx;
    ep.bias = bias.data();
    ep.relu = true;
    float amax = 0.0f;
    ep.amax = &amax;
    std::vector<std::int32_t> acc(static_cast<std::size_t>(c.m * c.n));
    std::vector<float> got(static_cast<std::size_t>(c.m * c.n));
    gemm_s8_nn(c.m, c.n, c.k, packed, qb.data(), acc.data(), got.data(), ep);

    float ref_amax = 0.0f;
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = 0; j < c.n; ++j) {
        // Exact integer dot product of the SIGNED operands — the u8 offset
        // and its packed correction must cancel perfectly.
        std::int64_t sum = 0;
        for (std::int64_t p = 0; p < c.k; ++p) {
          const int xa = qa[static_cast<std::size_t>(i * c.k + p)];
          const int xb =
              static_cast<int>(qb[static_cast<std::size_t>(p * c.n + j)]) -
              128;
          sum += xa * xb;
        }
        const float want = requant_ref(
            static_cast<std::int32_t>(sum), 0, sx,
            scales[static_cast<std::size_t>(i)],
            bias[static_cast<std::size_t>(i)], true);
        expect_requant_near(got[static_cast<std::size_t>(i * c.n + j)], want,
                            "gemm_s8_nn", i * c.n + j);
        ref_amax = std::max(ref_amax, std::fabs(want));
      }
    }
    EXPECT_NEAR(amax, ref_amax, 1e-5f * std::max(1.0f, ref_amax));
  }
}

TEST(QuantGemm, NtHeadShapeMatchesIntegerReference) {
  Rng rng(11);
  const std::int64_t m = 5, n = 13, k = 70;
  const std::int64_t k4 = round_up4(k);
  const auto qw = random_s8(n * k, rng, 0.0f);
  auto qx = random_u8(m * k4, rng);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = k; p < k4; ++p) {
      qx[static_cast<std::size_t>(i * k4 + p)] = 128;  // quad pad = zero
    }
  }
  std::vector<std::int8_t> slivers(
      static_cast<std::size_t>((n + kNrS8 - 1) / kNrS8 * kNrS8 * k4));
  pack_b_quads_s8_nt(qw.data(), n, k, slivers.data());

  std::vector<float> scales(static_cast<std::size_t>(n));
  std::vector<float> bias(static_cast<std::size_t>(n));
  std::vector<std::int32_t> corr(static_cast<std::size_t>(n));
  for (auto& s : scales) s = rng.uniform(0.001f, 0.02f);
  for (auto& b : bias) b = rng.uniform(-1.0f, 1.0f);
  for (std::int64_t j = 0; j < n; ++j) {
    std::int32_t sum = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      sum += qw[static_cast<std::size_t>(j * k + p)];
    }
    corr[static_cast<std::size_t>(j)] = 128 * sum;
  }
  const float sx = 0.013f;
  S8Epilogue ep;
  ep.scales = scales.data();
  ep.act_scale = sx;
  ep.corr = corr.data();
  ep.bias = bias.data();

  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  std::vector<float> got(static_cast<std::size_t>(m * n));
  gemm_s8_nt(m, n, k, qx.data(), k4, slivers.data(), acc.data(), got.data(),
             ep);

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t sum = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        sum += (static_cast<int>(qx[static_cast<std::size_t>(i * k4 + p)]) -
                128) *
               static_cast<int>(qw[static_cast<std::size_t>(j * k + p)]);
      }
      const float want = requant_ref(static_cast<std::int32_t>(sum), 0, sx,
                                     scales[static_cast<std::size_t>(j)],
                                     bias[static_cast<std::size_t>(j)],
                                     false);
      expect_requant_near(got[static_cast<std::size_t>(i * n + j)], want,
                          "gemm_s8_nt", i * n + j);
    }
  }
}

TEST(QuantHelpers, AxpyMatchesScalarAtAllLengths) {
  Rng rng(13);
  for (std::int64_t n = 0; n <= 67; ++n) {
    const auto x = random_s8(std::max<std::int64_t>(n, 1), rng, 0.2f);
    std::vector<std::int32_t> y(static_cast<std::size_t>(n));
    std::vector<std::int32_t> want(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) {
      y[static_cast<std::size_t>(j)] = want[static_cast<std::size_t>(j)] =
          rng.uniform_int(-1000, 1000);
    }
    const std::int32_t v = rng.uniform_int(-127, 127);
    axpy_s8_s32(x.data(), v, y.data(), n);
    for (std::int64_t j = 0; j < n; ++j) {
      want[static_cast<std::size_t>(j)] +=
          v * static_cast<std::int32_t>(x[static_cast<std::size_t>(j)]);
    }
    ASSERT_EQ(y, want) << "n=" << n;
  }
}

/// Integer im2col reference for the s8 conv: exact signed accumulation,
/// then the shared requant expression.
std::vector<float> conv_s8_reference(const std::vector<std::uint8_t>& xq,
                                     std::int64_t c_in, std::int64_t h,
                                     std::int64_t w, const ConvGeometry& g,
                                     const std::vector<std::int8_t>& qw,
                                     std::int64_t out_ch,
                                     const std::vector<float>& scales,
                                     float sx, const std::vector<float>& bias,
                                     bool relu) {
  const std::int64_t oh = g.out_extent(h), ow = g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  std::vector<float> y(static_cast<std::size_t>(out_ch * oh * ow));
  for (std::int64_t r = 0; r < out_ch; ++r) {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        std::int64_t sum = 0;
        for (std::int64_t p = 0; p < ckk; ++p) {
          const std::int64_t c = p / (g.kernel * g.kernel);
          const std::int64_t ki = (p / g.kernel) % g.kernel;
          const std::int64_t kj = p % g.kernel;
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          const std::int64_t jj = oj * g.stride - g.padding + kj;
          int xb = 0;  // out-of-image taps contribute exact zero
          if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
            xb = static_cast<int>(
                     xq[static_cast<std::size_t>((c * h + ii) * w + jj)]) -
                 128;
          }
          sum += static_cast<int>(qw[static_cast<std::size_t>(r * ckk + p)]) *
                 xb;
        }
        y[static_cast<std::size_t>((r * oh + oi) * ow + oj)] = requant_ref(
            static_cast<std::int32_t>(sum), 0, sx,
            scales[static_cast<std::size_t>(r)],
            bias[static_cast<std::size_t>(r)], relu);
      }
    }
  }
  return y;
}

TEST(QuantConv, PlaneMatchesReferenceAndGatherPathsAgreeBitwise) {
  Rng rng(17);
  const struct { std::int64_t ci, h, w, co; std::int64_t k, s, p; } cases[] = {
      {3, 16, 16, 8, 3, 1, 1},  {8, 16, 16, 16, 3, 2, 1},
      {16, 8, 8, 16, 3, 1, 1},  {64, 2, 2, 64, 3, 1, 1},
      {8, 16, 16, 16, 1, 2, 0}, {5, 7, 9, 11, 3, 1, 1},
      {4, 5, 5, 6, 5, 2, 2},
  };
  for (const auto& c : cases) {
    ConvGeometry g;
    g.kernel = c.k;
    g.stride = c.s;
    g.padding = c.p;
    const std::int64_t ohw = g.out_extent(c.h) * g.out_extent(c.w);
    const std::int64_t ckk = c.ci * c.k * c.k;
    const auto xq = random_u8(c.ci * c.h * c.w, rng);
    const auto qw = random_s8(c.co * ckk, rng, 0.0f);
    PackedS8 packed;
    packed.pack(qw.data(), c.co, ckk);
    std::vector<float> scales(static_cast<std::size_t>(c.co));
    std::vector<float> bias(static_cast<std::size_t>(c.co));
    for (auto& s : scales) s = rng.uniform(0.001f, 0.02f);
    for (auto& b : bias) b = rng.uniform(-0.5f, 0.5f);
    const float sx = 0.009f;
    S8Epilogue ep;
    ep.scales = scales.data();
    ep.act_scale = sx;
    ep.corr = packed.corr();
    ep.bias = bias.data();
    ep.relu = true;

    std::vector<std::int32_t> acc(static_cast<std::size_t>(c.co * ohw));
    std::vector<float> got(static_cast<std::size_t>(c.co * ohw));
    conv2d_forward_plane_s8(xq.data(), c.ci, c.h, c.w, g, packed.panels(),
                            c.co, acc.data(), got.data(), ep);

    const std::vector<float> want = conv_s8_reference(
        xq, c.ci, c.h, c.w, g, qw, c.co, scales, sx, bias, true);
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_requant_near(got[i], want[i], "conv_s8",
                          static_cast<std::int64_t>(i));
    }

    // The index-table gather must reproduce the run-gather EXACTLY — same
    // integer sums, same single float expression per output.
    const std::vector<std::int32_t> table =
        build_s8_gather_index(c.ci, c.h, c.w, g);
    std::vector<float> got_table(static_cast<std::size_t>(c.co * ohw));
    conv2d_forward_plane_s8(xq.data(), c.ci, c.h, c.w, g, packed.panels(),
                            c.co, acc.data(), got_table.data(), ep,
                            table.data());
    ASSERT_EQ(got, got_table) << "table gather diverged";
  }
}

TEST(QuantConv, BatchEntryPointMatchesPerSamplePlaneBitwise) {
  Rng rng(19);
  const std::int64_t n = 5, ci = 6, h = 7, w = 7, co = 11;
  ConvGeometry g;  // 3x3 stride 1 pad 1; ohw = 49, not a multiple of 16
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = ci * 9;
  const std::int64_t x_stride = ci * h * w + 3;  // sample stride with slack
  const std::int64_t y_stride = co * ohw + 5;
  std::vector<std::uint8_t> xq(static_cast<std::size_t>(n * x_stride), 128);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto plane = random_u8(ci * h * w, rng);
    std::copy(plane.begin(), plane.end(),
              xq.begin() + static_cast<std::ptrdiff_t>(i * x_stride));
  }
  const auto qw = random_s8(co * ckk, rng, 0.3f);
  PackedS8 packed;
  packed.pack(qw.data(), co, ckk);
  std::vector<float> scales(static_cast<std::size_t>(co), 0.01f);
  std::vector<float> bias(static_cast<std::size_t>(co), 0.25f);
  S8Epilogue ep;
  ep.scales = scales.data();
  ep.act_scale = 0.012f;
  ep.corr = packed.corr();
  ep.bias = bias.data();
  ep.relu = true;

  std::vector<std::int32_t> acc(static_cast<std::size_t>(co * ohw));
  std::vector<float> want(static_cast<std::size_t>(n * y_stride), -7.0f);
  float amax_plane = 0.0f;
  ep.amax = &amax_plane;
  for (std::int64_t i = 0; i < n; ++i) {
    conv2d_forward_plane_s8(xq.data() + i * x_stride, ci, h, w, g,
                            packed.panels(), co, acc.data(),
                            want.data() + i * y_stride, ep);
  }

  std::vector<float> got(static_cast<std::size_t>(n * y_stride), -7.0f);
  float amax_batch = 0.0f;
  ep.amax = &amax_batch;
  conv2d_forward_batch_s8(xq.data(), n, x_stride, ci, h, w, g,
                          packed.panels(), co, acc.data(), got.data(),
                          y_stride, ep);
  ASSERT_EQ(got, want) << "batched conv diverged from per-sample planes";
  EXPECT_EQ(amax_batch, amax_plane);
}

std::unique_ptr<ResNet> trained_micro_r18(float sparsity, std::uint64_t seed) {
  Rng rng(seed);
  auto model = make_micro_resnet18(10, rng);
  const Dataset train = generate_dataset(source_task_spec(), 96, seed + 1);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  Rng train_rng(seed ^ 0xABCDULL);
  train_classifier(*model, train, cfg, train_rng);
  if (sparsity > 0.0f) {
    OmpConfig prune_cfg;
    prune_cfg.sparsity = sparsity;
    omp_prune(*model, prune_cfg);
  }
  model->set_training(false);
  return model;
}

double top1(const Tensor& logits, const std::vector<int>& labels) {
  const std::int64_t n = logits.dim(0), classes = logits.dim(1);
  std::int64_t hits = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * classes;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

TEST(QuantEndToEnd, NativeTracksSimulatedReferenceAndIsDeterministic) {
  auto model = trained_micro_r18(0.5f, 61);
  const Dataset probe = generate_dataset(source_task_spec(), 32, 62);

  CompileOptions simulated;
  simulated.int8_weights = true;
  simulated.int8_native = false;
  const CompiledTicket sim_plan = Engine::compile(*model, simulated);
  Workspace sim_ws(sim_plan, 32);
  const Tensor sim = sim_plan.predict(probe.images, sim_ws);

  CompileOptions native;
  native.int8_weights = true;
  native.int8_native = true;
  const CompiledTicket nat_plan = Engine::compile(*model, native);
  EXPECT_TRUE(nat_plan.int8_native());
  Workspace nat_ws(nat_plan, 32);
  const Tensor nat = nat_plan.predict(probe.images, nat_ws);

  // Documented tolerance: the simulated reference fake-quantizes WEIGHTS
  // only and runs float activations; native execution additionally
  // quantizes activations to 8 bits per layer (dynamic per-batch scales).
  // Each layer therefore adds up to ~1/254 of its batch activation range on
  // top of the shared weight-quantization error, and the gap compounds
  // through the 18-conv depth (measured ~0.34 on raw logits here). 0.5
  // bounds it with margin while still catching any structural mistake
  // (wrong corr, scale, or gather) — those produce gaps orders of magnitude
  // larger. Prediction-level agreement is guarded by the top-1 test below.
  EXPECT_LE(nat.linf_distance(sim), 0.5f);

  // Bitwise determinism: same plan, same workspace shape, same bits.
  Workspace rerun_ws(nat_plan, 32);
  const Tensor rerun = nat_plan.predict(probe.images, rerun_ws);
  ASSERT_EQ(nat.dim(0), rerun.dim(0));
  const std::int64_t count = nat.dim(0) * nat.dim(1);
  for (std::int64_t i = 0; i < count; ++i) {
    ASSERT_EQ(nat.data()[i], rerun.data()[i]) << "nondeterministic at " << i;
  }
}

TEST(QuantEndToEnd, Top1DeltaWithinOnePercentOnEvalBattery) {
  const Dataset eval = generate_dataset(source_task_spec(), 256, 71);
  for (const float sparsity : {0.0f, 0.9f}) {
    auto model = trained_micro_r18(sparsity, 73);

    const CompiledTicket fp32_plan = Engine::compile(*model);
    Workspace fp32_ws(fp32_plan, 32);
    const double fp32_acc = top1(fp32_plan.predict(eval.images, fp32_ws),
                                 eval.labels);

    CompileOptions options;
    options.int8_weights = true;
    const CompiledTicket int8_plan = Engine::compile(*model, options);
    EXPECT_TRUE(int8_plan.int8_native());
    Workspace int8_ws(int8_plan, 32);
    const double int8_acc = top1(int8_plan.predict(eval.images, int8_ws),
                                 eval.labels);

    // The acceptance bar: quantized serving gives back at most 1% top-1
    // against fp32 serving of the same ticket (dense and 90%-sparse).
    EXPECT_LE(fp32_acc - int8_acc, 0.01 + 1e-9)
        << "sparsity=" << sparsity << " fp32=" << fp32_acc
        << " int8=" << int8_acc;
  }
}

}  // namespace
}  // namespace rt
