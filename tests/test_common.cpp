// Unit tests for common utilities: RNG, thread pool, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/threadpool.hpp"

namespace rt {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
    const float w = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(w, -2.0f);
    EXPECT_LT(w, 3.0f);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(77);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3f) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(11);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u32() == c2.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng(3);
  const auto perm = random_permutation(100, rng);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(ThreadPool, CoversFullRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A worker that re-enters parallel_for on its own pool must run the nested
  // call inline; enqueueing would deadlock once every worker blocks on the
  // shared pending counter. Each (outer, inner) pair must still fire once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  pool.parallel_for(64, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      pool.parallel_for(16, [&, o](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          hits[static_cast<std::size_t>(o * 16 + i)]++;
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySmallInvocations) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(7, [&](std::int64_t b, std::int64_t e) {
      total += e - b;
    });
  }
  EXPECT_EQ(total.load(), 350);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("longer"), 22.0});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("1.5000"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowWidthValidation) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.add_row({std::string("hello, \"world\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(2);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.1416"), std::string::npos);
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  EXPECT_NE(t.to_csv().find("42"), std::string::npos);
}

}  // namespace
}  // namespace rt
