// rt::registry — catalog, compile-cache, hot-swap, and A/B rollout tests.
//
// The acceptance contracts pinned here:
//   - hot swap under load: clients hammering a served model while the
//     registry alternates deploys see ZERO failed futures, and every
//     response is bitwise identical to Session::predict() on one of the two
//     deployed plans; after the drain the swapped-out CompiledTicket is
//     actually destroyed (the compile cache holds weak references).
//   - A/B routing is deterministic: with a fixed seed, the candidate-owned
//     request subset is exactly the one routes_to_candidate() recomputes,
//     and per-version stats reconcile row-for-row.
//   - CheckpointStore::load_or_store single-flights concurrent producers.
// The suite runs under the scripts/check.sh sanitizer passes (TSan/ASan/
// UBSan), so thread and request counts stay modest for the 1-CPU container.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/scheduler.hpp"
#include "core/checkpoint_store.hpp"
#include "data/synth.hpp"
#include "engine/engine.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "tr";
  return std::make_unique<ResNet>(cfg, rng);
}

/// Registry backed by memory only: catalog/compile/serving behavior is
/// independent of the disk cache, which has its own tests below.
registry::RegistryOptions memory_only() {
  registry::RegistryOptions opt;
  opt.cache_root = "";
  return opt;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_TRUE(got.same_shape(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "flat index " << i;
  }
}

TEST(RegistryCatalog, PublishResolveAndAliases) {
  registry::Registry reg(memory_only());
  auto m1 = tiny_model(11);
  auto m2 = tiny_model(12);

  EXPECT_EQ(reg.publish("cifar", *m1), 1);
  EXPECT_EQ(reg.publish("cifar", *m2), 2);
  EXPECT_EQ(reg.latest("cifar"), 2);
  EXPECT_EQ(reg.stable("cifar"), 0);

  // Bare name: @stable when set, @latest otherwise.
  EXPECT_EQ(reg.resolve("cifar"), 2);
  EXPECT_EQ(reg.resolve("cifar@1"), 1);
  EXPECT_EQ(reg.resolve("cifar@latest"), 2);
  reg.set_stable("cifar", 1);
  EXPECT_EQ(reg.resolve("cifar"), 1);
  EXPECT_EQ(reg.resolve("cifar@stable"), 1);

  const std::vector<registry::VersionInfo> versions = reg.versions("cifar");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].version, 1);
  EXPECT_EQ(versions[1].version, 2);
  // Different seeds -> different weights -> different content addresses.
  EXPECT_NE(versions[0].fingerprint, versions[1].fingerprint);
  EXPECT_NE(versions[0].checkpoint_key, versions[1].checkpoint_key);

  const std::vector<std::string> models = reg.models();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0], "cifar");
}

TEST(RegistryCatalog, RejectsBadReferencesAndStates) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(21);
  reg.publish("m", *model);

  EXPECT_THROW(reg.publish("bad@name", *model), std::invalid_argument);
  EXPECT_THROW(registry::parse_model_ref(""), std::invalid_argument);
  EXPECT_THROW(registry::parse_model_ref("m@"), std::invalid_argument);
  EXPECT_THROW(registry::parse_model_ref("m@v2"), std::invalid_argument);
  EXPECT_THROW(reg.resolve("ghost"), std::out_of_range);
  EXPECT_THROW(reg.resolve("m@7"), std::out_of_range);
  EXPECT_THROW(reg.resolve("m@stable"), std::logic_error);  // none set yet
  EXPECT_THROW(reg.set_stable("m", 9), std::out_of_range);

  // Rollout control needs a server first.
  EXPECT_THROW(reg.deploy("m@1"), std::logic_error);
  EXPECT_THROW(reg.start_ab("m", "m@1", 0.5, 1), std::logic_error);
  EXPECT_THROW(reg.promote("m"), std::logic_error);
  EXPECT_EQ(reg.find_server("m"), nullptr);
  EXPECT_EQ(reg.live_version("m"), 0);
}

TEST(RegistryCompileCache, SharesPlansAndDropsThemWhenUnreferenced) {
  // plan_cache_capacity = 0 selects pure weak memoization — this test pins
  // that contract (sharing while referenced, freed when dropped); bounded
  // retention has its own tests below.
  registry::RegistryOptions opt = memory_only();
  opt.plan_cache_capacity = 0;
  registry::Registry reg(opt);
  auto model = tiny_model(31);
  reg.publish("m", *model);

  // Equal (version, options) share one compiled plan instance.
  std::shared_ptr<const CompiledTicket> a = reg.compiled("m@1");
  std::shared_ptr<const CompiledTicket> b = reg.compiled("m@latest");
  EXPECT_EQ(a.get(), b.get());

  // A compile-affecting option lands on a distinct cache line.
  CompileOptions csr;
  csr.force_format = PackedFormat::kCsr;
  std::shared_ptr<const CompiledTicket> c = reg.compiled("m@1", csr);
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(registry::compile_options_fingerprint(CompileOptions{}),
            registry::compile_options_fingerprint(csr));

  // The cache is weak: dropping every strong reference frees the plan, and
  // the next demand rebuilds a fresh one instead of resurrecting a corpse.
  std::weak_ptr<const CompiledTicket> watch = a;
  a.reset();
  b.reset();
  c.reset();
  EXPECT_TRUE(watch.expired());
  std::shared_ptr<const CompiledTicket> rebuilt = reg.compiled("m@1");
  ASSERT_NE(rebuilt, nullptr);
}

TEST(RegistryCompileCache, BoundedRetentionSurvivesRefDropAndEvictsLru) {
  // plan_cache_capacity = 2 (LRU): the registry pins the two most recently
  // demanded tickets, so a swap-out/swap-in cycle — every strong reference
  // dropped in between — re-serves the SAME plan instance instead of
  // recompiling. The third version evicts the least-recently-used line.
  registry::RegistryOptions opt = memory_only();
  opt.plan_cache_capacity = 2;
  opt.plan_cache_policy = serving::CachePolicy::kLru;
  registry::Registry reg(opt);
  auto m1 = tiny_model(81);
  auto m2 = tiny_model(82);
  auto m3 = tiny_model(83);
  reg.publish("m", *m1);
  reg.publish("m", *m2);
  reg.publish("m", *m3);

  std::shared_ptr<const CompiledTicket> p1 = reg.compiled("m@1");
  std::shared_ptr<const CompiledTicket> p2 = reg.compiled("m@2");
  const CompiledTicket* raw1 = p1.get();
  std::weak_ptr<const CompiledTicket> watch1 = p1;
  p1.reset();
  p2.reset();

  // Retention holds both plans alive with zero outside references...
  EXPECT_FALSE(watch1.expired());
  // ...so re-demanding v1 is pointer-identical: the hot-swap-back path
  // skips recompilation entirely.
  std::shared_ptr<const CompiledTicket> again = reg.compiled("m@1");
  EXPECT_EQ(again.get(), raw1);
  again.reset();

  registry::PlanCache::Stats st = reg.plan_cache_stats();
  EXPECT_EQ(st.capacity, 2);
  EXPECT_EQ(st.retained, 2);
  EXPECT_EQ(st.hits, 1u);  // the m@1 re-demand; the first two were misses
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.evictions, 0u);

  // Re-demand v2 (refreshes it to MRU, making v1 the LRU line), then demand
  // a third distinct line: capacity 2 forces the v1 ticket out, and with no
  // strong holders left it is freed outright.
  std::weak_ptr<const CompiledTicket> watch2 = reg.compiled("m@2");
  EXPECT_FALSE(watch2.expired());  // retention hit: still pinned
  std::weak_ptr<const CompiledTicket> watch3 = reg.compiled("m@3");
  st = reg.plan_cache_stats();
  EXPECT_EQ(st.retained, 2);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_TRUE(watch1.expired()) << "v1 should be the evicted LRU line";
  EXPECT_FALSE(watch2.expired());
  EXPECT_FALSE(watch3.expired());
}

TEST(RegistryServe, ServerMatchesDirectSessionBitwise) {
  registry::Registry reg(memory_only());
  auto model = tiny_model(41);
  reg.publish("m", *model);

  serving::ServerOptions opt;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.0;
  serving::Server& server = reg.serve("m@1", opt);
  EXPECT_EQ(&server, reg.find_server("m"));
  EXPECT_EQ(&server, &reg.serve("m@1", opt));  // second call: same endpoint
  EXPECT_EQ(reg.live_version("m"), 1);
  EXPECT_EQ(server.primary_version(), "m@1");

  Session reference(reg.compiled("m@1"), /*max_batch=*/8);
  const Dataset probe = generate_dataset(source_task_spec(), 6, 43);
  expect_bitwise(server.predict(probe.images), reference.predict(probe.images));
}

// Acceptance: N client threads against K registry hot swaps. Zero failed
// futures, zero rejects, every response bitwise one of the two deployed
// versions' Session outputs, and the swapped-out plan's memory is released
// once the drain completes.
TEST(RegistryHotSwap, ClientsSurviveSwapsBitwiseAndOldPlanIsFreed) {
  // Pure weak memoization (no retention): the "old plan is freed at drain"
  // half of the contract below only holds when nothing pins swapped-out
  // tickets.
  registry::RegistryOptions opt0 = memory_only();
  opt0.plan_cache_capacity = 0;
  registry::Registry reg(opt0);
  auto m1 = tiny_model(51);
  auto m2 = tiny_model(52);
  reg.publish("m", *m1);
  reg.publish("m", *m2);

  const Dataset probe = generate_dataset(source_task_spec(), 4, 53);
  Tensor expected1, expected2;
  std::weak_ptr<const CompiledTicket> watch2;
  {
    // Reference outputs come from the SAME shared plan instances the server
    // fleets use (compile-cache hits), so bitwise equality is exact.
    std::shared_ptr<const CompiledTicket> plan2 = reg.compiled("m@2");
    watch2 = plan2;
    Session ref1(reg.compiled("m@1"), 4);
    Session ref2(std::move(plan2), 4);
    expected1 = ref1.predict(probe.images);
    expected2 = ref2.predict(probe.images);
  }
  // The two versions must actually disagree, or "served by exactly one
  // epoch" would be vacuous.
  ASSERT_NE(expected1.linf_distance(expected2), 0.0f);

  serving::ServerOptions opt;
  opt.shards = 2;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.2;
  serving::Server& server = reg.serve("m@1", opt);

  constexpr int kClients = 3;
  constexpr int kRepeats = 16;
  std::vector<Tensor> results(kClients * kRepeats);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRepeats; ++r) {
        // predict() throwing here is exactly the "failed future during a hot
        // swap" bug this test exists to rule out — it fails via std::terminate.
        results[static_cast<std::size_t>(c * kRepeats + r)] =
            server.predict(probe.images);
      }
    });
  }
  // The swapper: K alternating hot swaps while the clients run, ending on
  // version 1 so the m@2 fleet must fully retire.
  for (int swap = 0; swap < 6; ++swap) {
    reg.deploy(swap % 2 == 0 ? "m@2" : "m@1");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(reg.live_version("m"), 1);
  EXPECT_EQ(server.primary_version(), "m@1");

  // Every response is bitwise the output of exactly one deployed epoch —
  // no torn batches, no stale-plan mixing.
  int v1_hits = 0;
  for (const Tensor& got : results) {
    if (got.linf_distance(expected1) == 0.0f) {
      ++v1_hits;
    } else {
      expect_bitwise(got, expected2);
    }
  }
  const serving::ServerStats st = server.stats();
  EXPECT_EQ(st.completed_requests,
            static_cast<std::uint64_t>(kClients * kRepeats));
  EXPECT_EQ(st.failed_requests, 0u);
  EXPECT_EQ(st.rejected_requests, 0u);
  EXPECT_GT(v1_hits, 0);  // the fleet it was born with served traffic

  // Drain-retirement: with the fleet back on m@1 and every in-flight batch
  // retired, nothing holds the m@2 plan — the weak compile cache must have
  // let it die (this is the "old CompiledTicket memory is released" half of
  // the hot-swap contract).
  server.drain();
  EXPECT_TRUE(watch2.expired());
}

// Acceptance: a fraction-f A/B split with a fixed seed routes a
// deterministic, client-recomputable subset to the candidate, per-version
// stats reconcile exactly, and promote() flips primary + @stable.
TEST(RegistryAb, DeterministicSplitReconcilesAndPromotes) {
  registry::Registry reg(memory_only());
  auto m1 = tiny_model(61);
  auto m2 = tiny_model(62);
  reg.publish("m", *m1);
  reg.publish("m", *m2);

  const Dataset probe = generate_dataset(source_task_spec(), 2, 63);
  Session ref1(reg.compiled("m@1"), 2);
  Session ref2(reg.compiled("m@2"), 2);
  const Tensor expected1 = ref1.predict(probe.images);
  const Tensor expected2 = ref2.predict(probe.images);
  ASSERT_NE(expected1.linf_distance(expected2), 0.0f);

  serving::ServerOptions opt;
  opt.max_batch = 8;
  opt.max_delay_ms = 0.0;
  serving::Server& server = reg.serve("m@1", opt);

  constexpr double kFraction = 0.25;
  constexpr std::uint64_t kSeed = 42;
  reg.start_ab("m", "m@2", kFraction, kSeed);
  EXPECT_EQ(reg.candidate_version("m"), 2);
  EXPECT_EQ(server.candidate_version(), "m@2");

  // One sequential client: request i gets sequence number i, so the routing
  // decision is recomputable client-side from (i, seed, fraction) alone.
  constexpr int kRequests = 32;
  int to_candidate = 0;
  for (int i = 0; i < kRequests; ++i) {
    const bool candidate = serving::routes_to_candidate(
        static_cast<std::uint64_t>(i), kSeed, kFraction);
    const Tensor got = server.predict(probe.images);
    expect_bitwise(got, candidate ? expected2 : expected1);
    to_candidate += candidate ? 1 : 0;
  }
  ASSERT_GT(to_candidate, 0);
  ASSERT_LT(to_candidate, kRequests);

  // Per-version attribution reconciles row-for-row with the routing rule.
  const std::vector<serving::VersionStats> per_version = server.version_stats();
  ASSERT_EQ(per_version.size(), 2u);
  const serving::VersionStats& v1 = per_version[0];
  const serving::VersionStats& v2 = per_version[1];
  EXPECT_EQ(v1.version, "m@1");
  EXPECT_EQ(v2.version, "m@2");
  EXPECT_EQ(v2.requests, static_cast<std::uint64_t>(to_candidate));
  EXPECT_EQ(v1.requests, static_cast<std::uint64_t>(kRequests - to_candidate));
  EXPECT_EQ(v2.rows, static_cast<std::uint64_t>(2 * to_candidate));
  EXPECT_EQ(v1.completed_requests + v2.completed_requests,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(v1.failed_requests + v2.failed_requests, 0u);
  EXPECT_EQ(v1.latency.count, v1.completed_requests);
  EXPECT_EQ(v2.latency.count, v2.completed_requests);

  // Promote: candidate becomes primary, @stable moves, the A/B test ends,
  // and all subsequent traffic is served by version 2.
  EXPECT_EQ(reg.promote("m"), 2);
  EXPECT_EQ(reg.live_version("m"), 2);
  EXPECT_EQ(reg.candidate_version("m"), 0);
  EXPECT_EQ(reg.stable("m"), 2);
  EXPECT_EQ(reg.resolve("m@stable"), 2);
  EXPECT_EQ(server.primary_version(), "m@2");
  EXPECT_EQ(server.candidate_version(), "");
  expect_bitwise(server.predict(probe.images), expected2);
}

TEST(RegistryAb, ValidatesCandidateAndStopRestoresPrimaryOnly) {
  registry::Registry reg(memory_only());
  auto m1 = tiny_model(71);
  auto other = tiny_model(72);
  reg.publish("m", *m1);
  reg.publish("m", *m1);
  reg.publish("other", *other);
  reg.serve("m@1");

  // The candidate must be a version of the same model.
  EXPECT_THROW(reg.start_ab("m", "other@1", 0.5, 7), std::invalid_argument);
  EXPECT_THROW(reg.start_ab("m", "m@2", 1.5, 7), std::invalid_argument);
  EXPECT_THROW(reg.start_ab("m", "m@2", -0.1, 7), std::invalid_argument);

  reg.start_ab("m", "m@2", 0.5, 7);
  EXPECT_EQ(reg.candidate_version("m"), 2);
  reg.stop_ab("m");
  EXPECT_EQ(reg.candidate_version("m"), 0);
  EXPECT_EQ(reg.live_version("m"), 1);
  EXPECT_THROW(reg.promote("m"), std::logic_error);  // nothing to promote
}

TEST(RegistryStore, PublishPersistsThroughCheckpointStore) {
  const std::string root = "/tmp/rticket_test_registry_rt";
  std::filesystem::remove_all(root);
  {
    registry::RegistryOptions opt;
    opt.cache_root = root;
    registry::Registry reg(opt);
    auto model = tiny_model(81);
    reg.publish("m", *model);
    EXPECT_TRUE(reg.store().enabled());
  }
  bool found_checkpoint = false;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.path().extension() == ".rtk") found_checkpoint = true;
  }
  EXPECT_TRUE(found_checkpoint);
  std::filesystem::remove_all(root);
}

TEST(CheckpointStoreFlight, ConcurrentLoadOrStoreComputesOnce) {
  const std::string root = "/tmp/rticket_test_flight_rt";
  std::filesystem::remove_all(root);
  CheckpointStore store(root);
  CheckpointKey key;
  key.add("kind", "flight-unit").add("seed", std::int64_t{9});

  // The canonical bytes every racer must agree with, and a counter proving
  // the producer ran exactly once across all of them.
  const auto make_state = [] {
    Rng rng(99);
    StateDict state;
    state.emplace("w", Tensor::randn({4, 3}, rng));
    return state;
  };
  const StateDict canonical = make_state();
  std::atomic<int> computes{0};

  constexpr int kRacers = 4;
  std::atomic<int> mismatches{0};
  auto racer = [&] {
    const StateDict got = store.load_or_store(key, [&] {
      computes.fetch_add(1, std::memory_order_relaxed);
      // Widen the race window so laggards really do hit the in-flight wait
      // path rather than the fast double-checked load.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return make_state();
    });
    const bool consistent =
        got.size() == 1 &&
        got.at("w").linf_distance(canonical.at("w")) == 0.0f;
    if (!consistent) mismatches.fetch_add(1, std::memory_order_relaxed);
  };
  // Spawned through the scheduler on purpose: this is the same TaskGroup
  // machinery a training run races the store from. spawn() references the
  // closure, so one lvalue serves all racers.
  TaskGroup group;
  for (int i = 0; i < kRacers; ++i) group.spawn(racer);
  group.wait();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(mismatches.load(), 0);
  // Warm path afterwards: served from disk, no recompute.
  const StateDict warm = store.load_or_store(key, [&] {
    computes.fetch_add(1, std::memory_order_relaxed);
    return make_state();
  });
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(warm.at("w").linf_distance(canonical.at("w")), 0.0f);

  // Disabled store: no cache to coordinate through, every call produces.
  CheckpointStore disabled{std::string()};
  (void)disabled.load_or_store(key, [&] {
    computes.fetch_add(1, std::memory_order_relaxed);
    return make_state();
  });
  EXPECT_EQ(computes.load(), 2);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace rt
