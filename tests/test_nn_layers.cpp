// Layer-level unit tests: shapes, known values, and behaviours that have a
// closed form. Gradient correctness is covered by test_gradcheck.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/pooling.hpp"

namespace rt {
namespace {

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng, "c");
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8, 16, 16}));
}

TEST(Conv2d, StridedOutputShape) {
  Rng rng(1);
  Conv2d conv(4, 6, 3, 2, 1, false, rng, "c");
  const Tensor x = Tensor::randn({2, 4, 16, 16}, rng);
  EXPECT_EQ(conv.forward(x).shape(), (std::vector<std::int64_t>{2, 6, 8, 8}));
}

TEST(Conv2d, OneByOneConvIsChannelMix) {
  Rng rng(1);
  Conv2d conv(2, 1, 1, 1, 0, false, rng, "c");
  conv.weight().value[0] = 2.0f;  // channel 0 weight
  conv.weight().value[1] = -1.0f; // channel 1 weight
  Tensor x({1, 2, 2, 2});
  x.fill_(1.0f);
  const Tensor y = conv.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, false, rng, "c");
  conv.weight().value.fill_(0.0f);
  conv.weight().value[4] = 1.0f;  // centre tap of the 3x3 kernel
  const Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  const Tensor y = conv.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, BiasIsAdded) {
  Rng rng(1);
  Conv2d conv(1, 2, 3, 1, 1, true, rng, "c");
  conv.weight().value.fill_(0.0f);
  conv.bias()->value[0] = 1.5f;
  conv.bias()->value[1] = -2.0f;
  const Tensor y = conv.forward(Tensor({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 2, 2), -2.0f);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(1);
  Conv2d conv(3, 4, 3, 1, 1, false, rng, "c");
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8})), std::invalid_argument);
}

TEST(Conv2d, FlopsCount) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng, "c");
  // 2 * out * in * k * k * oh * ow = 2*8*3*9*16*16
  EXPECT_EQ(conv.flops_per_sample(16, 16), 2LL * 8 * 3 * 9 * 16 * 16);
}

TEST(Im2col, SimpleExtraction) {
  // 1x1x2x2 input, k=1 s=1 p=0: col is the flattened image.
  const Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  ConvGeometry g{1, 1, 0};
  float col[4];
  im2col(x, 0, g, col);
  EXPECT_FLOAT_EQ(col[0], 1.0f);
  EXPECT_FLOAT_EQ(col[3], 4.0f);
}

TEST(Im2col, ZeroPadding) {
  const Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  ConvGeometry g{3, 1, 1};
  float col[9 * 4];
  im2col(x, 0, g, col);
  // First row of the col matrix corresponds to kernel tap (0,0): for output
  // (0,0) it reads input (-1,-1) -> 0.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Centre tap (1,1) row (index 4) at output (0,0) reads input (0,0) = 1.
  EXPECT_FLOAT_EQ(col[4 * 4 + 0], 1.0f);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c (adjoint property).
  Rng rng(3);
  const Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  ConvGeometry g{3, 2, 1};
  const std::int64_t oh = g.out_extent(5), ow = g.out_extent(5);
  const std::int64_t cols = 2 * 9 * oh * ow;
  std::vector<float> colx(static_cast<std::size_t>(cols));
  im2col(x, 0, g, colx.data());
  std::vector<float> c(static_cast<std::size_t>(cols));
  for (auto& v : c) v = rng.normal();
  Tensor back({1, 2, 5, 5});
  col2im_add(c.data(), 0, g, back);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols; ++i) {
    lhs += static_cast<double>(colx[static_cast<std::size_t>(i)]) *
           c[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * back[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Linear, KnownAffineMap) {
  Rng rng(1);
  Linear lin(2, 2, true, rng, "l");
  lin.weight().value = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  lin.bias()->value = Tensor::from_data({2}, {0.5f, -0.5f});
  const Tensor x = Tensor::from_data({1, 2}, {1, 1});
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);   // 3+4-0.5
}

TEST(Linear, ResetReinitializesAndDropsMask) {
  Rng rng(1);
  Linear lin(4, 2, true, rng, "l");
  lin.weight().set_mask(Tensor::zeros({2, 4}));
  EXPECT_TRUE(lin.weight().has_mask());
  lin.reset(rng);
  EXPECT_FALSE(lin.weight().has_mask());
  EXPECT_GT(lin.weight().value.sum_sq(), 0.0f);
}

TEST(ReLU, ClampsAndGates) {
  ReLU relu;
  const Tensor x = Tensor::from_data({4}, {-1, 0, 2, -3});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor g = relu.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);  // x == 0 gates to 0
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(MaxPool, PicksMaxAndRoutesGradient) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  const Tensor g = pool.backward(Tensor::full({1, 1, 1, 1}, 2.0f));
  EXPECT_FLOAT_EQ(g[1], 2.0f);  // grad to the argmax position only
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(GlobalAvgPool, AveragesAndSpreads) {
  GlobalAvgPool gap;
  const Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  const Tensor g = gap.backward(Tensor::full({1, 1}, 4.0f));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(NearestUpsample, ReplicatesAndSumPools) {
  NearestUpsample up(2);
  const Tensor x = Tensor::from_data({1, 1, 1, 2}, {3, 7});
  const Tensor y = up.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1, 2, 4}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 3), 7.0f);
  const Tensor g = up.backward(Tensor::ones({1, 1, 2, 4}));
  EXPECT_FLOAT_EQ(g[0], 4.0f);  // 2x2 block sums
  EXPECT_FLOAT_EQ(g[1], 4.0f);
}

TEST(BatchNorm, NormalizesBatchInTrainMode) {
  Rng rng(1);
  BatchNorm2d bn(1, "bn");
  bn.set_training(true);
  const Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 3.0f);
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y.mean(), 0.0f, 1e-4f);
  // Per-element variance ~1.
  EXPECT_NEAR(y.sum_sq() / static_cast<float>(y.numel()), 1.0f, 1e-2f);
}

TEST(BatchNorm, RunningStatsConvergeAndDriveEval) {
  Rng rng(2);
  BatchNorm2d bn(1, "bn");
  bn.set_training(true);
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::randn({16, 1, 2, 2}, rng, 2.0f);
    bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 0.0f, 0.15f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.5f);
  bn.set_training(false);
  const Tensor x = Tensor::full({1, 1, 1, 1}, 2.0f);
  const Tensor y = bn.forward(x);
  // y = (2 - mu)/sqrt(var) with gamma=1 beta=0 -> about 1.
  EXPECT_NEAR(y[0], 1.0f, 0.15f);
}

TEST(BatchNorm, AffineParamsScaleOutput) {
  BatchNorm2d bn(1, "bn");
  bn.gamma().value[0] = 2.0f;
  bn.beta().value[0] = 1.0f;
  bn.set_training(false);  // running stats are (0, 1)
  const Tensor x = Tensor::full({1, 1, 1, 1}, 3.0f);
  EXPECT_NEAR(bn.forward(x)[0], 7.0f, 1e-4f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  const Tensor logits = Tensor::randn({5, 7}, rng, 4.0f);
  const Tensor p = softmax(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Softmax, StableAtExtremeLogits) {
  const Tensor logits = Tensor::from_data({1, 2}, {1000.0f, -1000.0f});
  const Tensor p = softmax(logits);
  EXPECT_NEAR(p.at(0, 0), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p.at(0, 1)));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::zeros({3, 4});
  const auto r = softmax_cross_entropy(logits, {0, 1, 2});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  Rng rng(5);
  const Tensor logits = Tensor::randn({4, 6}, rng);
  const auto r = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (std::int64_t i = 0; i < 4; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < 6; ++j) s += r.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0f, 1e-5f);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  const Tensor logits = Tensor::zeros({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
}

TEST(CrossEntropy2d, IgnoresNegativeLabels) {
  const Tensor logits = Tensor::zeros({1, 2, 2, 2});
  std::vector<int> labels = {0, -1, 1, -1};
  const auto r = softmax_cross_entropy_2d(logits, labels);
  EXPECT_NEAR(r.loss, std::log(2.0f), 1e-5f);
  // Ignored pixels get zero gradient.
  EXPECT_FLOAT_EQ(r.grad_logits.at(0, 0, 0, 1), 0.0f);
  EXPECT_FLOAT_EQ(r.grad_logits.at(0, 1, 0, 1), 0.0f);
}

TEST(Accuracy, CountsCorrectRows) {
  const Tensor logits =
      Tensor::from_data({3, 2}, {2, 1,   // pred 0
                                 0, 3,   // pred 1
                                 5, 4}); // pred 0
  EXPECT_FLOAT_EQ(accuracy(logits, {0, 1, 1}), 2.0f / 3.0f);
}

TEST(Sgd, PlainGradientStep) {
  Parameter p;
  p.name = "w";
  p.value = Tensor::from_data({2}, {1.0f, 2.0f});
  p.grad = Tensor::from_data({2}, {0.5f, -0.5f});
  Sgd sgd({&p}, SgdConfig{0.1f, 0.0f, 0.0f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], 2.05f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p;
  p.name = "w";
  p.value = Tensor::from_data({1}, {0.0f});
  p.grad = Tensor::from_data({1}, {1.0f});
  Sgd sgd({&p}, SgdConfig{1.0f, 0.5f, 0.0f});
  sgd.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad.fill_(1.0f);
  sgd.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Parameter p;
  p.name = "w";
  p.value = Tensor::from_data({1}, {10.0f});
  p.grad = Tensor::from_data({1}, {0.0f});
  Sgd sgd({&p}, SgdConfig{0.1f, 0.0f, 0.1f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 10.0f - 0.1f * 1.0f);  // g = wd*w = 1
}

TEST(Sgd, MaskedWeightsStayZero) {
  Parameter p;
  p.name = "w";
  p.value = Tensor::from_data({4}, {1, 2, 3, 4});
  p.grad = Tensor::from_data({4}, {1, 1, 1, 1});
  p.set_mask(Tensor::from_data({4}, {1, 0, 1, 0}));
  Sgd sgd({&p}, SgdConfig{0.5f, 0.9f, 1e-2f});
  for (int i = 0; i < 5; ++i) {
    p.grad.fill_(1.0f);
    sgd.step();
  }
  EXPECT_FLOAT_EQ(p.value[1], 0.0f);
  EXPECT_FLOAT_EQ(p.value[3], 0.0f);
  EXPECT_NE(p.value[0], 0.0f);
}

TEST(Sgd, NonTrainableParamUntouched) {
  Parameter p;
  p.name = "w";
  p.value = Tensor::from_data({1}, {3.0f});
  p.grad = Tensor::from_data({1}, {1.0f});
  p.trainable = false;
  Sgd sgd({&p}, SgdConfig{0.1f, 0.0f, 0.0f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 3.0f);
}

TEST(LrSchedule, MultiStepDecays) {
  MultiStepLr sched(1.0f, {10, 20}, 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(10), 0.1f);
  EXPECT_NEAR(sched.lr_at(25), 0.01f, 1e-6f);
}

TEST(LrSchedule, CosineEndpoints) {
  CosineLr sched(1.0f, 10, 0.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 1.0f);
  EXPECT_NEAR(sched.lr_at(10), 0.0f, 1e-6f);
  EXPECT_NEAR(sched.lr_at(5), 0.5f, 1e-6f);
}

TEST(Sequential, ChainsAndCollectsParams) {
  Rng rng(1);
  Sequential seq;
  seq.emplace<Linear>(4, 3, true, rng, "l1");
  seq.emplace<ReLU>();
  seq.emplace<Linear>(3, 2, true, rng, "l2");
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(seq.parameters().size(), 4u);
  EXPECT_EQ(seq.num_parameters(), 4 * 3 + 3 + 3 * 2 + 2);
  const Tensor g = seq.backward(Tensor::ones({2, 2}));
  EXPECT_EQ(g.shape(), x.shape());
}

}  // namespace
}  // namespace rt
