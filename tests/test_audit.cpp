// tests/test_audit.cpp — RT_AUDIT runtime hooks (common/audit.hpp).
//
// These tests have teeth only in -DRT_AUDIT=ON builds (check.sh --lint runs
// them there); in normal builds every test skips. They pin the dynamic half
// of the RT_HOT contract: after per-thread warm-up, the annotated hot paths
// perform zero heap allocations — measured by the counting global allocator,
// not inferred from code reading. LockOrderGuard's rank discipline is
// exercised on its legal orderings (violations abort by design, which a unit
// test cannot observe without death-test machinery).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/audit.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "linalg/gemm.hpp"
#include "models/resnet.hpp"

namespace rt {
namespace {

#define RT_AUDIT_TEST_GUARD()                                       \
  do {                                                              \
    if (!audit::enabled()) {                                        \
      GTEST_SKIP() << "RT_AUDIT off: alloc counting is a no-op";    \
    }                                                               \
  } while (false)

TEST(AllocGuard, CountsHeapAllocations) {
  RT_AUDIT_TEST_GUARD();
  audit::AllocGuard guard("test");
  EXPECT_EQ(guard.allocations(), 0);
  auto* p = new int(7);
  EXPECT_EQ(guard.allocations(), 1);
  std::vector<double> v(1024);
  EXPECT_EQ(guard.allocations(), 2);
  delete p;  // deallocation is not an allocation
  EXPECT_EQ(guard.allocations(), 2);
}

TEST(AllocGuard, NestedGuardsCountIndependently) {
  RT_AUDIT_TEST_GUARD();
  audit::AllocGuard outer("outer");
  auto before = std::make_unique<int>(1);
  {
    audit::AllocGuard inner("inner");
    EXPECT_EQ(inner.allocations(), 0);
    auto scoped = std::make_unique<int>(2);
    EXPECT_EQ(inner.allocations(), 1);
  }
  EXPECT_GE(outer.allocations(), 2);  // sees both its own and inner's
}

TEST(LockOrderGuard, AscendingRanksAreLegal) {
  // Compiles and runs in all builds (the no-op version must also accept
  // this); under RT_AUDIT a violation would abort the process.
  audit::LockOrderGuard serving(audit::LockRank::kServingQueue);
  {
    audit::LockOrderGuard sched(audit::LockRank::kSchedInject);
    audit::LockOrderGuard group(audit::LockRank::kSchedGroup);
  }
  // Re-acquiring a higher rank after the nested scope unwound is legal.
  audit::LockOrderGuard park(audit::LockRank::kSchedPark);
}

TEST(RtHot, PackedGemmIsAllocationFree) {
  RT_AUDIT_TEST_GUARD();
  const std::int64_t m = 64, n = 96, k = 80;
  Rng rng(101);
  const Tensor a = Tensor::uniform({m, k}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform({k, n}, rng, -1.0f, 1.0f);
  Tensor c({m, n});
  const GemmOpts opts{.accumulate = false, .parallel = false};
  gemm_nn(m, n, k, a.data(), b.data(), c.data(), opts);  // warm-up
  audit::AllocGuard guard("gemm_nn packed");
  gemm_nn(m, n, k, a.data(), b.data(), c.data(), opts);
  EXPECT_EQ(guard.allocations(), 0)
      << "packed_core must run out of its fixed thread_local pack buffers";
}

TEST(RtHot, SessionRunRowsIsAllocationFreeAfterWarmup) {
  RT_AUDIT_TEST_GUARD();
  Rng rng(202);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "audit";
  ResNet model(cfg, rng);
  model.set_training(false);

  CompileOptions options;
  options.height = 8;
  options.width = 8;
  Session session(Engine::compile(model, options), /*max_batch=*/4);

  const Tensor x = Tensor::uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
  Tensor logits({4, 10});
  // Warm-up: grows the thread's DecodeTable to this geometry and touches
  // the pooled workspace; the steady state must then be allocation-free.
  session.run_rows(x.data(), 4, logits.data());
  audit::AllocGuard guard("Session::run_rows");
  session.run_rows(x.data(), 4, logits.data());
  EXPECT_EQ(guard.allocations(), 0)
      << "run_rows steady state must recycle the workspace pool and the "
         "kernels' thread_local scratch";
  // The output still has to be real: the audit build must not have traded
  // correctness for allocation-freedom.
  float linf = 0.0f;
  Tensor again({4, 10});
  session.run_rows(x.data(), 4, again.data());
  linf = logits.linf_distance(again);
  EXPECT_EQ(linf, 0.0f) << "repeat runs must be bitwise deterministic";
}

TEST(RtHot, Int8RunRowsIsAllocationFreeAfterWarmup) {
  RT_AUDIT_TEST_GUARD();
  Rng rng(303);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  cfg.name = "audit8";
  ResNet model(cfg, rng);
  model.set_training(false);

  CompileOptions options;
  options.height = 8;
  options.width = 8;
  options.int8_weights = true;  // int8-native execution (the default path)
  const CompiledTicket plan = Engine::compile(model, options);
  ASSERT_TRUE(plan.int8_native());
  Session session(plan, /*max_batch=*/4);

  const Tensor x = Tensor::uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
  Tensor logits({4, 10});
  // Warm-up: DecodeTable growth plus first touch of the quantized scratch
  // (qin/acc arena slabs, the kernels' thread_local staging buffers).
  session.run_rows(x.data(), 4, logits.data());
  audit::AllocGuard guard("Session::run_rows int8");
  session.run_rows(x.data(), 4, logits.data());
  EXPECT_EQ(guard.allocations(), 0)
      << "int8 run_rows steady state must run out of the arena workspace "
         "and fixed thread_local staging (no per-call gather/acc buffers)";
  Tensor again({4, 10});
  session.run_rows(x.data(), 4, again.data());
  EXPECT_EQ(logits.linf_distance(again), 0.0f)
      << "int8 repeat runs must be bitwise deterministic";
}

}  // namespace
}  // namespace rt
