// Cross-module property suites (TEST_P sweeps) on the library's core
// invariants: tensor algebra laws, RNG statistics, conv geometry, schedule
// monotonicity, and mask/statistics consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "models/resnet.hpp"
#include "nn/conv.hpp"
#include "prune/omp.hpp"
#include "tensor/tensor.hpp"

namespace rt {
namespace {

// ---- Tensor algebra laws over random shapes --------------------------------

class TensorAlgebraTest : public ::testing::TestWithParam<int> {
 protected:
  Tensor random(std::uint64_t salt) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000 + salt);
    const std::int64_t n = 2 + GetParam() % 5;
    const std::int64_t m = 3 + (GetParam() / 2) % 4;
    return Tensor::randn({n, m}, rng);
  }
};

TEST_P(TensorAlgebraTest, AdditionCommutes) {
  const Tensor a = random(1), b = random(2);
  EXPECT_LT(a.add(b).linf_distance(b.add(a)), 1e-6f);
}

TEST_P(TensorAlgebraTest, HadamardDistributesOverAddition) {
  const Tensor a = random(3), b = random(4), c = random(5);
  const Tensor lhs = a.mul(b.add(c));
  const Tensor rhs = a.mul(b).add(a.mul(c));
  EXPECT_LT(lhs.linf_distance(rhs), 1e-5f);
}

TEST_P(TensorAlgebraTest, ScalingIsLinear) {
  const Tensor a = random(6);
  const Tensor lhs = a.scaled(2.5f).add(a.scaled(-1.5f));
  EXPECT_LT(lhs.linf_distance(a), 1e-5f);
}

TEST_P(TensorAlgebraTest, AxpyMatchesScaledAdd) {
  Tensor a = random(7);
  const Tensor x = random(8);
  const Tensor expected = a.add(x.scaled(0.75f));
  a.axpy_(0.75f, x);
  EXPECT_LT(a.linf_distance(expected), 1e-6f);
}

TEST_P(TensorAlgebraTest, SumSqIsL2NormSquared) {
  const Tensor a = random(9);
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  EXPECT_NEAR(a.sum_sq(), acc, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorAlgebraTest, ::testing::Range(0, 8));

// ---- Matmul laws ------------------------------------------------------------

TEST(MatmulLaws, AssociativeWithinTolerance) {
  Rng rng(1);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 6}, rng);
  const Tensor c = Tensor::randn({6, 3}, rng);
  const Tensor lhs = matmul(matmul(a, b), c);
  const Tensor rhs = matmul(a, matmul(b, c));
  EXPECT_LT(lhs.linf_distance(rhs), 1e-4f);
}

TEST(MatmulLaws, TransposeOfProduct) {
  // (AB)^T == B^T A^T: compute both via the transpose flags.
  Rng rng(2);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({5, 3}, rng);
  const Tensor ab = matmul(a, b);                    // (4,3)
  const Tensor btat = matmul(b, a, true, true);      // (3,4)
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(ab.at(i, j), btat.at(j, i), 1e-5f);
    }
  }
}

TEST(MatmulLaws, IdentityIsNeutral) {
  Rng rng(3);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor id({5, 5});
  for (std::int64_t i = 0; i < 5; ++i) id.at(i, i) = 1.0f;
  EXPECT_LT(matmul(a, id).linf_distance(a), 1e-6f);
  EXPECT_LT(matmul(id, a).linf_distance(a), 1e-6f);
}

// ---- Conv geometry ----------------------------------------------------------

class ConvGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvGeometryTest, OutputExtentFormula) {
  const auto [extent, kernel, stride, padding] = GetParam();
  const ConvGeometry g{kernel, stride, padding};
  const std::int64_t out = g.out_extent(extent);
  // Definition check: last tap must fit, next one must not.
  EXPECT_GE((out - 1) * stride + kernel, 1);
  EXPECT_LE((out - 1) * stride - padding + kernel, extent + padding);
  EXPECT_GT(out * stride - padding + kernel, extent + padding);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometryTest,
    ::testing::Combine(::testing::Values(8, 16, 17), ::testing::Values(1, 3, 5),
                       ::testing::Values(1, 2), ::testing::Values(0, 1, 2)));

// ---- RNG statistics ---------------------------------------------------------

TEST(RngStats, UniformIntIsUnbiased) {
  Rng rng(42);
  std::vector<int> counts(8, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  // Chi-square against uniform with 7 dof; 99.9% critical value ~ 24.3.
  const double expected = n / 8.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(RngStats, NormalTailMassReasonable) {
  Rng rng(43);
  int beyond2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.normal()) > 2.0f) ++beyond2;
  }
  // P(|Z|>2) ~ 4.55%.
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.008);
}

// ---- Mask / stats consistency ----------------------------------------------

class OmpGranularityProperty
    : public ::testing::TestWithParam<std::tuple<float, Granularity>> {};

TEST_P(OmpGranularityProperty, MaskSparsityMatchesModelSparsity) {
  const auto [sparsity, granularity] = GetParam();
  Rng rng(9);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig cfg;
  cfg.sparsity = sparsity;
  cfg.granularity = granularity;
  const MaskSet masks = omp_prune(*model, cfg);
  // The MaskSet's own accounting agrees with the model's.
  EXPECT_NEAR(masks.sparsity(),
              model_sparsity(model->prunable_parameters()), 1e-6);
  // Structured tolerance is coarser: whole groups are removed.
  const double tol = granularity == Granularity::kElement ? 1e-3 : 0.05;
  EXPECT_NEAR(masks.sparsity(), sparsity, tol);
  // Sparse FLOPs shrink accordingly.
  const ModelStats stats = model->stats(16, 16);
  EXPECT_LT(stats.sparse_flops, stats.dense_flops);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OmpGranularityProperty,
    ::testing::Combine(::testing::Values(0.3f, 0.6f, 0.9f),
                       ::testing::Values(Granularity::kElement,
                                         Granularity::kRow,
                                         Granularity::kKernel,
                                         Granularity::kChannel)));

// ---- Serialization stability across model mutations -------------------------

TEST(StateDictProperty, ReloadIsIdempotent) {
  Rng rng(10);
  auto model = make_micro_resnet18(10, rng);
  const StateDict s1 = model->state_dict();
  model->load_state(s1);
  const StateDict s2 = model->state_dict();
  ASSERT_EQ(s1.size(), s2.size());
  for (const auto& [name, tensor] : s1) {
    EXPECT_LT(tensor.linf_distance(s2.at(name)), 1e-9f) << name;
  }
}

}  // namespace
}  // namespace rt
