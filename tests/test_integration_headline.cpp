// The paper's headline claim as a seeded regression test: a ticket drawn
// from an adversarially pretrained model transfers better to a
// high-domain-gap downstream task than one drawn from a naturally
// pretrained model. Runs at reduced scale so the whole test stays around a
// minute; the margin threshold is far below what the benches measure, so
// this only fails if the effect disappears entirely.
#include <gtest/gtest.h>

#include "core/robust_tickets.hpp"

namespace rt {
namespace {

class HeadlineEffect : public ::testing::Test {
 protected:
  static RobustTicketLab& lab() {
    static RobustTicketLab instance([] {
      RobustTicketLab::Options opt;
      opt.source_train_size = 400;
      opt.source_test_size = 200;
      opt.pretrain_epochs = 8;
      opt.adv_steps = 3;
      opt.seed = 77;
      // Default cache_dir = the shared content-addressed store: these
      // options all join the checkpoint key, so this suite can never
      // collide with the bench binaries, and repeated runs skip the
      // pretraining entirely.
      return opt;
    }());
    return instance;
  }
};

TEST_F(HeadlineEffect, RobustOmpTicketTransfersBetterUnderLinearEval) {
  const TaskData task = lab().downstream("cifar10", 160, 160);
  LinearEvalConfig lin;
  lin.epochs = 30;

  rt::Rng rng(1);
  auto natural = lab().omp_ticket("r18", PretrainScheme::kNatural, 0.8f);
  const float nat = linear_eval(*natural, task, lin, rng);
  rt::Rng rng2(1);
  auto robust = lab().omp_ticket("r18", PretrainScheme::kAdversarial, 0.8f);
  const float rob = linear_eval(*robust, task, lin, rng2);

  EXPECT_GT(rob, nat + 0.05f)
      << "robust ticket did not transfer better (robust=" << rob
      << ", natural=" << nat << ")";
}

TEST_F(HeadlineEffect, RobustPretrainingSacrificesSourceAccuracy) {
  // The known cost of the robustness prior: lower clean accuracy on the
  // source task (the paper's robust ResNets trail naturally trained ones
  // on ImageNet top-1).
  auto natural = lab().dense_model("r18", PretrainScheme::kNatural);
  auto robust = lab().dense_model("r18", PretrainScheme::kAdversarial);
  const float nat = evaluate_accuracy(*natural, lab().source().test);
  const float rob = evaluate_accuracy(*robust, lab().source().test);
  EXPECT_GE(nat, rob - 0.02f)
      << "natural pretraining should win on the source task";
}

TEST_F(HeadlineEffect, RobustTicketIsMoreAdversariallyRobustDownstream) {
  const TaskData task = lab().downstream("cifar10", 160, 160);
  FinetuneConfig ft;
  ft.epochs = 4;

  rt::Rng rng(2);
  auto natural = lab().omp_ticket("r18", PretrainScheme::kNatural, 0.5f);
  finetune_whole_model(*natural, task, ft, rng);
  rt::Rng rng2(2);
  auto robust = lab().omp_ticket("r18", PretrainScheme::kAdversarial, 0.5f);
  finetune_whole_model(*robust, task, ft, rng2);

  AttackConfig attack = lab().pretrain_attack();
  // One PGD step: at this reduced scale the full eps=0.08 budget saturates
  // with >= 3 steps (both models collapse to exactly 0 adversarial
  // accuracy, and 0 > 0 measures nothing). A single step sits at a
  // non-degenerate operating point where the robust ticket's margin is
  // widest (~0.2 vs ~0.02 on this seed).
  attack.steps = 1;
  rt::Rng e1(3), e2(3);
  const float nat_adv =
      evaluate_adversarial_accuracy(*natural, task.test, attack, e1);
  const float rob_adv =
      evaluate_adversarial_accuracy(*robust, task.test, attack, e2);
  EXPECT_GT(rob_adv, nat_adv)
      << "robustness prior should survive finetuning (Fig. 8 Adv-Acc)";
}

TEST_F(HeadlineEffect, FidOrdersLowAndHighShiftTasks) {
  // The Tab. II instrument: measured FID must separate a near-domain task
  // from a far-domain one.
  FidProbe probe;
  const TaskData near_task = lab().downstream("caltech256", 160, 32);
  const TaskData far_task = lab().downstream("cifar10", 160, 32);
  const double near_fid = fid_between(lab().source().train.images,
                                      near_task.train.images, probe);
  const double far_fid = fid_between(lab().source().train.images,
                                     far_task.train.images, probe);
  EXPECT_GT(far_fid, near_fid);
}

}  // namespace
}  // namespace rt
