// Tests for the pruning extensions: N:M structured sparsity, gradual
// magnitude pruning (GMP), and the GraSP baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "data/synth.hpp"
#include "data/tasks.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "prune/baselines.hpp"
#include "prune/gmp.hpp"
#include "prune/nm_sparsity.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

std::unique_ptr<ResNet> tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = 10;
  return std::make_unique<ResNet>(cfg, rng);
}

// ---------------------------------------------------------------------------
// N:M sparsity
// ---------------------------------------------------------------------------

class NmPatternTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NmPatternTest, MaskSatisfiesNmInvariantOnEveryLayer) {
  const auto [n, m] = GetParam();
  auto model = tiny_model(1);
  NmConfig cfg;
  cfg.n = n;
  cfg.m = m;
  const MaskSet masks = nm_prune(*model, cfg);
  EXPECT_GT(masks.size(), 0u);
  for (const auto& [name, mask] : masks.masks()) {
    EXPECT_TRUE(validate_nm_mask(mask, n, m)) << name;
  }
}

TEST_P(NmPatternTest, AchievesExpectedSparsity) {
  const auto [n, m] = GetParam();
  auto model = tiny_model(2);
  NmConfig cfg;
  cfg.n = n;
  cfg.m = m;
  nm_prune(*model, cfg);
  double expected_kept = 0.0, total = 0.0;
  for (Parameter* p : model->prunable_parameters()) {
    const double numel = static_cast<double>(p->value.numel());
    expected_kept +=
        numel * (1.0 - nm_expected_sparsity(p->value.dim(0), p->value.dim(1),
                                            n, m));
    total += numel;
  }
  const double got = model_sparsity(model->prunable_parameters());
  EXPECT_NEAR(got, 1.0 - expected_kept / total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, NmPatternTest,
    ::testing::Values(std::make_tuple(2, 4), std::make_tuple(1, 4),
                      std::make_tuple(1, 2), std::make_tuple(4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::to_string(std::get<0>(info.param)) + "of" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NmSparsityTest, KeepsLargestMagnitudesPerGroup) {
  Parameter p;
  p.kind = ParamKind::kLinearWeight;
  p.value = Tensor::from_data({1, 8},
                              {0.1f, -0.9f, 0.3f, -0.2f,   // group 1
                               0.05f, 0.8f, -0.7f, 0.01f}); // group 2
  const Tensor mask = nm_mask_for(p, 2, 4);
  // Group 1 keeps |-0.9| and |0.3|; group 2 keeps |0.8| and |-0.7|.
  const std::vector<float> expected{0, 1, 1, 0, 0, 1, 1, 0};
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(mask[i], expected[static_cast<std::size_t>(i)])
        << "index " << i;
  }
}

TEST(NmSparsityTest, PartialTrailingGroupKeepsAtMostN) {
  Parameter p;
  p.kind = ParamKind::kLinearWeight;
  Rng rng(3);
  p.value = Tensor::randn({3, 10}, rng);  // 10 = 2 full groups of 4 + tail 2
  const Tensor mask = nm_mask_for(p, 2, 4);
  EXPECT_TRUE(validate_nm_mask(mask, 2, 4));
  // Tail of length 2 keeps min(2, 2) = 2: row total = 2+2+2 = 6.
  for (std::int64_t r = 0; r < 3; ++r) {
    float kept = 0.0f;
    for (std::int64_t c = 0; c < 10; ++c) kept += mask.at(r, c);
    EXPECT_FLOAT_EQ(kept, 6.0f);
  }
  EXPECT_NEAR(nm_expected_sparsity(3, 10, 2, 4), 1.0 - 6.0 / 10.0, 1e-12);
}

TEST(NmSparsityTest, RejectsDegenerateConfigs) {
  auto model = tiny_model(4);
  EXPECT_THROW(nm_prune(*model, NmConfig{4, 4, false}),
               std::invalid_argument);
  EXPECT_THROW(nm_prune(*model, NmConfig{0, 4, false}),
               std::invalid_argument);
  EXPECT_THROW(nm_prune(*model, NmConfig{1, 1, false}),
               std::invalid_argument);
}

TEST(NmSparsityTest, ValidatorRejectsViolations) {
  Tensor bad = Tensor::ones({1, 4});  // 4 kept in a 2:4 group
  EXPECT_FALSE(validate_nm_mask(bad, 2, 4));
  Tensor nonbinary = Tensor::from_data({1, 4}, {0.5f, 0.0f, 0.0f, 0.0f});
  EXPECT_FALSE(validate_nm_mask(nonbinary, 2, 4));
  Tensor good = Tensor::from_data({1, 4}, {1.0f, 0.0f, 1.0f, 0.0f});
  EXPECT_TRUE(validate_nm_mask(good, 2, 4));
}

TEST(NmSparsityTest, ModelStillRunsAfterPruning) {
  auto model = tiny_model(5);
  nm_prune(*model, {});
  const Dataset d = generate_dataset(source_task_spec(), 4, 9);
  model->set_training(false);
  const Tensor logits = model->forward(d.images);
  EXPECT_EQ(logits.dim(0), 4);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

// ---------------------------------------------------------------------------
// GMP
// ---------------------------------------------------------------------------

TEST(GmpScheduleTest, EndpointsAndMonotonicity) {
  const float target = 0.9f;
  const int epochs = 10;
  EXPECT_FLOAT_EQ(gmp_sparsity_at(target, 0, epochs), 0.0f);
  EXPECT_NEAR(gmp_sparsity_at(target, epochs - 1, epochs), target, 1e-6f);
  float prev = -1.0f;
  for (int e = 0; e < epochs; ++e) {
    const float s = gmp_sparsity_at(target, e, epochs);
    EXPECT_GT(s, prev) << "epoch " << e;
    EXPECT_LE(s, target + 1e-6f);
    prev = s;
  }
}

TEST(GmpScheduleTest, CubicShapeFrontLoadsPruning) {
  // The cubic schedule prunes faster early: the first half of training must
  // reach well past half the target sparsity.
  const float mid = gmp_sparsity_at(0.8f, 5, 11);  // t = 0.5
  EXPECT_GT(mid, 0.8f * 0.5f);
  EXPECT_NEAR(mid, 0.8f * (1.0f - 0.125f), 1e-5f);  // 1 - 0.5^3
}

TEST(GmpTrainPruneTest, ReachesTargetAndKeepsInvariant) {
  auto model = tiny_model(6);
  TaskData task = load_task("cifar10", 96, 32);
  // GMP is a during-finetuning scheme; give the model a short natural
  // training phase first (its intended starting point).
  Rng rng(7);
  TrainLoopConfig warm;
  warm.epochs = 4;
  train_classifier(*model, task.train, warm, rng);

  GmpConfig cfg;
  cfg.final_sparsity = 0.7f;
  cfg.epochs = 4;
  cfg.sgd.lr = 0.05f;
  const MaskSet masks = gmp_train_prune(*model, task.train, cfg, rng);
  EXPECT_NEAR(masks.sparsity(), 0.7, 0.02);
  // Installed masks match the returned set and the invariant holds.
  for (Parameter* p : model->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask());
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] == 0.0f) EXPECT_FLOAT_EQ(p->value[i], 0.0f);
    }
  }
  // The model must still have learned something in-sample.
  EXPECT_GT(evaluate_accuracy(*model, task.train), 0.15f);
}

TEST(GmpTrainPruneTest, MasksAreNestedAcrossSparsityLevels) {
  // Pruned weights stay zero, so a later (sparser) GMP mask must be a
  // subset of any earlier (denser) one. Verify via two runs sharing the
  // schedule prefix.
  auto model = tiny_model(8);
  TaskData task = load_task("cifar10", 64, 32);
  GmpConfig cfg;
  cfg.final_sparsity = 0.5f;
  cfg.epochs = 3;
  Rng rng(9);
  gmp_train_prune(*model, task.train, cfg, rng);
  const MaskSet at_half = MaskSet::capture(*model);

  // Continue pruning the same model to 0.8.
  GmpConfig cfg2 = cfg;
  cfg2.final_sparsity = 0.8f;
  cfg2.epochs = 2;
  Rng rng2(10);
  gmp_train_prune(*model, task.train, cfg2, rng2);
  const MaskSet at_eighty = MaskSet::capture(*model);

  for (const auto& [name, dense_mask] : at_half.masks()) {
    const Tensor& sparse_mask = at_eighty.get(name);
    for (std::int64_t i = 0; i < dense_mask.numel(); ++i) {
      if (sparse_mask[i] == 1.0f) {
        EXPECT_EQ(dense_mask[i], 1.0f) << name << " index " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// GraSP
// ---------------------------------------------------------------------------

TEST(GraspTest, AchievesTargetSparsityAndRestoresWeights) {
  auto model = tiny_model(11);
  std::vector<Tensor> before;
  for (Parameter* p : model->parameters()) before.push_back(p->value);

  TaskData task = load_task("cifar10", 64, 32);
  GraspConfig cfg;
  cfg.sparsity = 0.6f;
  cfg.batches = 2;
  Rng rng(12);
  const MaskSet masks = grasp_prune(*model, task.train, cfg, rng);
  EXPECT_NEAR(masks.sparsity(), 0.6, 0.02);

  // Weights must be exactly restored up to the masking itself: surviving
  // weights equal the originals.
  std::size_t i = 0;
  for (Parameter* p : model->parameters()) {
    if (p->has_mask()) {
      for (std::int64_t k = 0; k < p->value.numel(); ++k) {
        if (p->mask[k] == 1.0f) {
          EXPECT_FLOAT_EQ(p->value[k], before[i][k]) << p->name;
        }
      }
    } else {
      EXPECT_EQ(p->value.linf_distance(before[i]), 0.0f) << p->name;
    }
    ++i;
  }
}

TEST(GraspTest, DiffersFromMagnitudeMask) {
  auto model_a = tiny_model(13);
  auto model_b = tiny_model(13);  // identical weights
  TaskData task = load_task("cifar10", 64, 32);

  GraspConfig gcfg;
  gcfg.sparsity = 0.5f;
  Rng rng(14);
  const MaskSet grasp = grasp_prune(*model_a, task.train, gcfg, rng);

  OmpConfig ocfg;
  ocfg.sparsity = 0.5f;
  const MaskSet magnitude = omp_mask(*model_b, ocfg);

  std::int64_t differing = 0;
  for (const auto& [name, gm] : grasp.masks()) {
    if (!magnitude.contains(name)) continue;
    const Tensor& mm = magnitude.get(name);
    for (std::int64_t k = 0; k < gm.numel(); ++k) {
      if (gm[k] != mm[k]) ++differing;
    }
  }
  EXPECT_GT(differing, 0) << "GraSP degenerated into magnitude pruning";
}

TEST(GraspTest, PrunedModelKeepsGradientFlow) {
  // The scheme's defining property: after pruning, gradients still flow
  // (no layer is completely severed) even at high sparsity.
  auto model = tiny_model(15);
  TaskData task = load_task("cifar10", 64, 32);
  GraspConfig cfg;
  cfg.sparsity = 0.85f;
  Rng rng(16);
  grasp_prune(*model, task.train, cfg, rng);

  const Dataset d = generate_dataset(source_task_spec(), 16, 17);
  model->set_training(true);
  model->zero_grad();
  const Tensor logits = model->forward(d.images);
  const LossResult loss = softmax_cross_entropy(logits, d.labels);
  model->backward(loss.grad_logits);
  float total = 0.0f;
  for (Parameter* p : model->prunable_parameters()) {
    p->mask_grad();
    total += p->grad.sum_sq();
  }
  EXPECT_GT(total, 1e-12f);
}

}  // namespace
}  // namespace rt
