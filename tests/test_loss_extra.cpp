// Label-smoothed cross-entropy and KL-divergence (TRADES) loss tests,
// including finite-difference checks of every returned gradient.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"

namespace rt {
namespace {

Tensor random_logits(std::int64_t n, std::int64_t c, std::uint64_t seed,
                     float scale = 2.0f) {
  Rng rng(seed);
  return Tensor::randn({n, c}, rng, scale);
}

TEST(SmoothedCeTest, ZeroSmoothingMatchesPlainCe) {
  const Tensor logits = random_logits(5, 4, 11);
  const std::vector<int> y{0, 3, 1, 2, 2};
  const LossResult plain = softmax_cross_entropy(logits, y);
  const LossResult smoothed = softmax_cross_entropy_smoothed(logits, y, 0.0f);
  EXPECT_NEAR(plain.loss, smoothed.loss, 1e-6f);
  for (std::int64_t i = 0; i < plain.grad_logits.numel(); ++i) {
    EXPECT_NEAR(plain.grad_logits[i], smoothed.grad_logits[i], 1e-6f);
  }
}

TEST(SmoothedCeTest, KnownTwoClassValue) {
  // Single sample, logits (0, 0): p = (0.5, 0.5). Target with smoothing s is
  // (1-s, s); loss = -(1-s) log .5 - s log .5 = log 2 for every s.
  Tensor logits({1, 2});
  const std::vector<int> y{0};
  for (float s : {0.0f, 0.1f, 0.3f}) {
    const LossResult r = softmax_cross_entropy_smoothed(logits, y, s);
    EXPECT_NEAR(r.loss, std::log(2.0f), 1e-5f) << "smoothing " << s;
  }
}

TEST(SmoothedCeTest, GradSumsToZeroPerRow) {
  // Softmax minus any probability-vector target has zero row sum.
  const Tensor logits = random_logits(6, 5, 17);
  const std::vector<int> y{4, 0, 1, 3, 2, 2};
  const LossResult r = softmax_cross_entropy_smoothed(logits, y, 0.2f);
  for (std::int64_t i = 0; i < 6; ++i) {
    float row = 0.0f;
    for (std::int64_t j = 0; j < 5; ++j) row += r.grad_logits.at(i, j);
    EXPECT_NEAR(row, 0.0f, 1e-6f);
  }
}

TEST(SmoothedCeTest, FiniteDifferenceGradient) {
  Tensor logits = random_logits(3, 4, 23);
  const std::vector<int> y{1, 0, 3};
  const float smoothing = 0.15f;
  const LossResult r = softmax_cross_entropy_smoothed(logits, y, smoothing);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float up = softmax_cross_entropy_smoothed(logits, y, smoothing).loss;
    logits[i] = saved - eps;
    const float dn = softmax_cross_entropy_smoothed(logits, y, smoothing).loss;
    logits[i] = saved;
    const float numeric = (up - dn) / (2.0f * eps);
    EXPECT_NEAR(r.grad_logits[i], numeric, 5e-3f) << "element " << i;
  }
}

TEST(SmoothedCeTest, RejectsBadSmoothing) {
  const Tensor logits = random_logits(2, 3, 5);
  const std::vector<int> y{0, 1};
  EXPECT_THROW(softmax_cross_entropy_smoothed(logits, y, -0.1f),
               std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy_smoothed(logits, y, 1.0f),
               std::invalid_argument);
}

TEST(KlDivergenceTest, IdenticalLogitsGiveZeroLossAndGrads) {
  const Tensor logits = random_logits(4, 6, 31);
  const KlResult r = kl_divergence(logits, logits);
  EXPECT_NEAR(r.loss, 0.0f, 1e-6f);
  for (std::int64_t i = 0; i < r.grad_logits.numel(); ++i) {
    EXPECT_NEAR(r.grad_logits[i], 0.0f, 1e-6f);
    EXPECT_NEAR(r.grad_target[i], 0.0f, 1e-6f);
  }
}

class KlNonNegativityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KlNonNegativityTest, LossIsNonNegative) {
  const std::uint64_t seed = GetParam();
  const Tensor a = random_logits(8, 5, seed);
  const Tensor b = random_logits(8, 5, seed + 1000);
  EXPECT_GE(kl_divergence(a, b).loss, -1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlNonNegativityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KlDivergenceTest, IsAsymmetric) {
  const Tensor a = random_logits(4, 4, 41, 3.0f);
  const Tensor b = random_logits(4, 4, 43, 3.0f);
  const float ab = kl_divergence(a, b).loss;
  const float ba = kl_divergence(b, a).loss;
  EXPECT_GT(std::abs(ab - ba), 1e-4f);
}

TEST(KlDivergenceTest, FiniteDifferenceGradLogits) {
  const Tensor target = random_logits(3, 4, 51);
  Tensor logits = random_logits(3, 4, 53);
  const KlResult r = kl_divergence(target, logits);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float up = kl_divergence(target, logits).loss;
    logits[i] = saved - eps;
    const float dn = kl_divergence(target, logits).loss;
    logits[i] = saved;
    EXPECT_NEAR(r.grad_logits[i], (up - dn) / (2.0f * eps), 5e-3f)
        << "element " << i;
  }
}

TEST(KlDivergenceTest, FiniteDifferenceGradTarget) {
  Tensor target = random_logits(3, 4, 61);
  const Tensor logits = random_logits(3, 4, 63);
  const KlResult r = kl_divergence(target, logits);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < target.numel(); ++i) {
    const float saved = target[i];
    target[i] = saved + eps;
    const float up = kl_divergence(target, logits).loss;
    target[i] = saved - eps;
    const float dn = kl_divergence(target, logits).loss;
    target[i] = saved;
    EXPECT_NEAR(r.grad_target[i], (up - dn) / (2.0f * eps), 5e-3f)
        << "element " << i;
  }
}

TEST(KlDivergenceTest, RejectsMismatchedShapes) {
  const Tensor a = random_logits(2, 3, 5);
  const Tensor b = random_logits(2, 4, 5);
  EXPECT_THROW(kl_divergence(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace rt
