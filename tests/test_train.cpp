// Tests for the generic training/evaluation loops.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

ResNetConfig tiny_config(int classes) {
  ResNetConfig cfg;
  cfg.stage_blocks = {1, 1};
  cfg.stage_channels = {6, 12};
  cfg.num_classes = classes;
  cfg.name = "tiny";
  return cfg;
}

TEST(TrainLoop, ReducesLossAndLearnsTinyTask) {
  Rng rng(1);
  ResNet model(tiny_config(10), rng);
  const Dataset train = generate_dataset(source_task_spec(), 150, 2);

  model.set_training(false);
  const Dataset probe = generate_dataset(source_task_spec(), 60, 3);
  const float acc_before = evaluate_accuracy(model, probe);

  TrainLoopConfig cfg;
  cfg.epochs = 12;
  cfg.sgd.lr = 0.08f;
  cfg.lr_milestones = {8};
  Rng trng(4);
  const TrainStats stats = train_classifier(model, train, cfg, trng);
  EXPECT_LT(stats.final_loss, 1.0f);
  EXPECT_GT(stats.final_train_accuracy, 0.7f);

  const float acc_after = evaluate_accuracy(model, probe);
  EXPECT_GT(acc_after, acc_before + 0.25f);
}

TEST(TrainLoop, LrMilestonesApplied) {
  // Train one epoch at lr and one at lr/10; the parameter movement in the
  // second epoch should be much smaller once the loss plateaus. We test the
  // schedule plumbing directly instead: milestones at epoch 0 mean training
  // runs at base*gamma immediately, which must not diverge.
  Rng rng(5);
  ResNet model(tiny_config(10), rng);
  const Dataset train = generate_dataset(source_task_spec(), 60, 6);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  cfg.sgd.lr = 10.0f;  // absurd base lr...
  cfg.lr_milestones = {0};
  cfg.lr_gamma = 0.001f;  // ...tamed by the milestone at epoch 0
  Rng trng(7);
  const TrainStats stats = train_classifier(model, train, cfg, trng);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
}

TEST(TrainLoop, SubsetTrainingFreezesRest) {
  Rng rng(8);
  ResNet model(tiny_config(10), rng);
  const Dataset train = generate_dataset(source_task_spec(), 60, 9);
  const StateDict before = model.state_dict();

  std::vector<Parameter*> head_only;
  model.head().collect_parameters(head_only);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  Rng trng(10);
  train_classifier(model, head_only, train, cfg, trng);

  const StateDict after = model.state_dict();
  // Trunk untouched (note: BN buffers DO move in train mode; compare a conv).
  EXPECT_LT(after.at("tiny.stem.weight")
                .linf_distance(before.at("tiny.stem.weight")),
            1e-9f);
  // Head moved.
  EXPECT_GT(after.at("tiny.head.weight")
                .linf_distance(before.at("tiny.head.weight")),
            1e-6f);
}

TEST(TrainLoop, GaussianAugmentationPathRuns) {
  Rng rng(11);
  ResNet model(tiny_config(10), rng);
  const Dataset train = generate_dataset(source_task_spec(), 60, 12);
  TrainLoopConfig cfg;
  cfg.epochs = 1;
  cfg.gaussian_sigma = 0.1f;
  Rng trng(13);
  EXPECT_TRUE(std::isfinite(train_classifier(model, train, cfg, trng).final_loss));
}

TEST(TrainLoop, AdversarialObjectiveRuns) {
  Rng rng(14);
  ResNet model(tiny_config(10), rng);
  const Dataset train = generate_dataset(source_task_spec(), 40, 15);
  TrainLoopConfig cfg;
  cfg.epochs = 1;
  cfg.adversarial = true;
  cfg.attack.steps = 2;
  Rng trng(16);
  EXPECT_TRUE(std::isfinite(train_classifier(model, train, cfg, trng).final_loss));
}

TEST(EvaluateAccuracy, RestoresTrainingMode) {
  Rng rng(17);
  ResNet model(tiny_config(10), rng);
  const Dataset test = generate_dataset(source_task_spec(), 20, 18);
  model.set_training(true);
  evaluate_accuracy(model, test);
  EXPECT_TRUE(model.training());
  model.set_training(false);
  evaluate_accuracy(model, test);
  EXPECT_FALSE(model.training());
}

TEST(PredictProbabilities, RowsAreDistributions) {
  Rng rng(19);
  ResNet model(tiny_config(5), rng);
  Dataset data = generate_dataset(source_task_spec(), 30, 20);
  // Relabel into 5 classes to match the head.
  for (auto& l : data.labels) l %= 5;
  data.num_classes = 5;
  const Tensor probs = predict_probabilities(model, data, 8);
  ASSERT_EQ(probs.dim(0), 30);
  ASSERT_EQ(probs.dim(1), 5);
  for (std::int64_t i = 0; i < probs.dim(0); ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < probs.dim(1); ++j) s += probs.at(i, j);
    EXPECT_NEAR(s, 1.0f, 1e-4f);
  }
}

TEST(TrainLoop, DeterministicGivenSeeds) {
  const Dataset train = generate_dataset(source_task_spec(), 60, 21);
  Rng ra(22);
  ResNet a(tiny_config(10), ra);
  Rng rb(22);
  ResNet b(tiny_config(10), rb);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  Rng ta(23), tb(23);
  train_classifier(a, train, cfg, ta);
  train_classifier(b, train, cfg, tb);
  const StateDict sa = a.state_dict();
  const StateDict sb = b.state_dict();
  for (const auto& [name, tensor] : sa) {
    EXPECT_LT(tensor.linf_distance(sb.at(name)), 1e-9f) << name;
  }
}

}  // namespace
}  // namespace rt
