// Integration tests across the extension modules: lab-driven TRADES/Free-AT
// tickets, N:M tickets surviving finetuning, GMP continuation of OMP
// tickets, and the full deploy pipeline (finetune -> shrink -> quantize ->
// cost model) asserting its invariants end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/robust_tickets.hpp"

namespace rt {
namespace {

/// A lab small enough for tests: 160 source images, 4 epochs, using the
/// shared content-addressed store (every option joins the checkpoint key,
/// so the tiny checkpoints coexist with the benchmark ones and repeat runs
/// skip pretraining). Shared across the tests in this file so each
/// pretraining scheme is trained once; all accessors hand out fresh model
/// copies, so sharing is safe.
RobustTicketLab& tiny_lab() {
  static RobustTicketLab lab = [] {
    RobustTicketLab::Options opt;
    opt.source_train_size = 160;
    opt.source_test_size = 80;
    opt.pretrain_epochs = 4;
    return RobustTicketLab(opt);
  }();
  return lab;
}

TEST(LabIntegrationTest, NewSchemesProduceWorkingTickets) {
  RobustTicketLab& lab = tiny_lab();
  const TaskData task = lab.downstream("cifar10", 64, 48);
  for (PretrainScheme scheme :
       {PretrainScheme::kTrades, PretrainScheme::kFreeAdversarial}) {
    auto ticket = lab.omp_ticket("r18", scheme, 0.5f);
    EXPECT_NEAR(model_sparsity(ticket->prunable_parameters()), 0.5, 0.02)
        << scheme_name(scheme);
    Rng rng(1);
    FinetuneConfig ft;
    ft.epochs = 2;
    const float acc = finetune_whole_model(*ticket, task, ft, rng);
    EXPECT_GE(acc, 0.0f);
    EXPECT_LE(acc, 1.0f);
  }
}

TEST(LabIntegrationTest, SchemeIsPartOfTheCacheIdentity) {
  RobustTicketLab& lab = tiny_lab();
  // Different schemes must yield different pretrained weights.
  const StateDict& a = lab.pretrained("r18", PretrainScheme::kTrades);
  const StateDict& b = lab.pretrained("r18", PretrainScheme::kNatural);
  bool any_diff = false;
  for (const auto& [name, tensor] : a) {
    const auto it = b.find(name);
    ASSERT_NE(it, b.end()) << name;
    if (tensor.linf_distance(it->second) > 0.0f) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(NmIntegrationTest, PatternSurvivesFinetuning) {
  RobustTicketLab& lab = tiny_lab();
  auto ticket = lab.dense_model("r18", PretrainScheme::kAdversarial);
  nm_prune(*ticket, {});  // 2:4
  const TaskData task = lab.downstream("pets", 64, 48);
  Rng rng(2);
  FinetuneConfig ft;
  ft.epochs = 3;
  finetune_whole_model(*ticket, task, ft, rng);
  // The optimizer must have preserved the N:M structure exactly.
  for (Parameter* p : ticket->prunable_parameters()) {
    ASSERT_TRUE(p->has_mask()) << p->name;
    EXPECT_TRUE(validate_nm_mask(p->mask, 2, 4)) << p->name;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] == 0.0f) {
        ASSERT_FLOAT_EQ(p->value[i], 0.0f) << p->name;
      }
    }
  }
}

TEST(GmpIntegrationTest, ContinuesAnOmpTicketToHigherSparsity) {
  RobustTicketLab& lab = tiny_lab();
  auto ticket = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.4f);
  const MaskSet before = MaskSet::capture(*ticket);
  const TaskData task = lab.downstream("cifar10", 64, 48);
  GmpConfig cfg;
  cfg.final_sparsity = 0.8f;
  cfg.epochs = 3;
  Rng rng(3);
  const MaskSet after = gmp_train_prune(*ticket, task.train, cfg, rng);
  EXPECT_NEAR(after.sparsity(), 0.8, 0.02);
  // Nesting: everything kept at 0.8 was kept at 0.4.
  for (const auto& [name, dense_mask] : before.masks()) {
    const Tensor& sparse_mask = after.get(name);
    for (std::int64_t i = 0; i < dense_mask.numel(); ++i) {
      if (sparse_mask[i] == 1.0f) {
        ASSERT_EQ(dense_mask[i], 1.0f) << name;
      }
    }
  }
}

TEST(DeployPipelineIntegrationTest, ShrinkThenQuantKeepsInvariants) {
  RobustTicketLab& lab = tiny_lab();
  auto model = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.6f,
                              Granularity::kChannel);
  const TaskData task = lab.downstream("cifar10", 96, 64);
  Rng rng(4);
  FinetuneConfig ft;
  ft.epochs = 3;
  finetune_whole_model(*model, task, ft, rng);

  // Shrink must not change accuracy beyond the neutralize step's effect;
  // verify exact equality of the compiled model with the neutralized one.
  auto reference = clone_ticket(*model);
  neutralize_dead_internal_channels(*reference);
  const ShrinkReport report = compile_for_deployment(*model, rng);
  EXPECT_GT(report.channels_removed, 0);
  reference->set_training(false);
  model->set_training(false);
  const Tensor ref_logits = reference->forward(task.test.images);
  const Tensor out_logits = model->forward(task.test.images);
  EXPECT_LT(ref_logits.linf_distance(out_logits), 1e-4f);

  // Quantize the shrunk model; sparsity of surviving masks and accuracy
  // bounds must hold.
  const float acc_before = evaluate_accuracy(*model, task.test);
  quantize_model(*model, {});
  const float acc_after = evaluate_accuracy(*model, task.test);
  EXPECT_GE(acc_after, acc_before - 0.10f);

  // Cost model consumes the deployed model without complaint.
  const CostEstimate cost = estimate_cost(*model, kImageSize, kImageSize,
                                          edge_mcu_profile(),
                                          Granularity::kChannel);
  EXPECT_GT(cost.realized_speedup, 0.99);
  EXPECT_GT(cost.energy_joules, 0.0);
}

TEST(AnalysisIntegrationTest, RobustVsNaturalMasksDivergeAboveNull) {
  RobustTicketLab& lab = tiny_lab();
  auto robust = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.8f);
  auto natural = lab.omp_ticket("r18", PretrainScheme::kNatural, 0.8f);
  const MaskOverlap o = mask_overlap(MaskSet::capture(*robust),
                                     MaskSet::capture(*natural));
  // Same architecture and data: masks correlate far above the random null...
  EXPECT_GT(o.iou, o.expected_iou);
  // ...but the robustness prior rewires a real fraction of the ticket.
  EXPECT_LT(o.iou, 0.95);
}

TEST(CorruptionIntegrationTest, RobustTicketDegradesMoreGracefully) {
  // The mCA analogue of Fig. 8's Crpt-Acc claim, on the source task where
  // both models are strong: the robust ticket's corrupted-over-clean ratio
  // must not be worse than the natural one's by more than noise.
  RobustTicketLab& lab = tiny_lab();
  float retention[2] = {0.0f, 0.0f};
  const PretrainScheme schemes[2] = {PretrainScheme::kAdversarial,
                                     PretrainScheme::kNatural};
  for (int i = 0; i < 2; ++i) {
    auto model = lab.dense_model("r18", schemes[i]);
    const CorruptionReport r =
        evaluate_corruption_suite(*model, lab.source().test, 55);
    retention[i] = r.clean_accuracy > 0.0f
                       ? r.mean_corruption_accuracy / r.clean_accuracy
                       : 0.0f;
  }
  EXPECT_GT(retention[0], retention[1] - 0.05f)
      << "robust " << retention[0] << " vs natural " << retention[1];
}

}  // namespace
}  // namespace rt
