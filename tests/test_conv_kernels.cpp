// Conformance tests for the fused implicit-GEMM convolution kernels in
// linalg/conv.hpp: forward, input-gradient, and weight-gradient parity
// against the materialized im2col reference across kernel x stride x
// padding x odd-extent geometries, the masked-weight tap path against the
// same oracle, and a finite-difference gradcheck on a masked Conv2d layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/conv.hpp"
#include "nn/conv.hpp"

namespace rt {
namespace {

struct Case {
  std::int64_t c_in, out_ch, h, w;
  ConvGeometry g;
};

std::vector<float> random_vec(std::int64_t count, Rng& rng,
                              float zero_fraction) {
  std::vector<float> out(static_cast<std::size_t>(count));
  for (float& v : out) {
    v = rng.uniform(0.0f, 1.0f) < zero_fraction ? 0.0f
                                                : rng.uniform(-1.0f, 1.0f);
  }
  return out;
}

void expect_near(const std::vector<float>& got, const std::vector<float>& want,
                 const char* what, const Case& c) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], 1e-4f * scale)
        << what << " k=" << c.g.kernel << " s=" << c.g.stride
        << " p=" << c.g.padding << " c_in=" << c.c_in << " out=" << c.out_ch
        << " h=" << c.h << " w=" << c.w << " index=" << i;
  }
}

/// Runs forward/dgrad/wgrad through `algo` and through the im2col reference
/// on the same random problem and demands agreement at <= 1e-4.
void check_case(const Case& c, float weight_zero_fraction, ConvAlgo algo,
                Rng& rng) {
  const std::int64_t oh = c.g.out_extent(c.h);
  const std::int64_t ow = c.g.out_extent(c.w);
  ASSERT_GT(oh, 0);
  ASSERT_GT(ow, 0);
  const std::int64_t ckk = c.c_in * c.g.kernel * c.g.kernel;
  const std::vector<float> x = random_vec(c.c_in * c.h * c.w, rng, 0.0f);
  const std::vector<float> w =
      random_vec(c.out_ch * ckk, rng, weight_zero_fraction);
  const std::vector<float> gout = random_vec(c.out_ch * oh * ow, rng, 0.0f);
  const std::vector<float> bias = random_vec(c.out_ch, rng, 0.0f);

  const ConvKernelOpts test_opts{algo, -1.0f};
  const ConvKernelOpts ref_opts{ConvAlgo::kIm2colReference, -1.0f};

  for (const bool relu : {false, true}) {
    std::vector<float> y(static_cast<std::size_t>(c.out_ch * oh * ow), -3.0f);
    std::vector<float> y_ref = y;
    conv2d_forward_plane(x.data(), c.c_in, c.h, c.w, c.g, w.data(), c.out_ch,
                         y.data(), bias.data(), relu, test_opts);
    conv2d_forward_plane(x.data(), c.c_in, c.h, c.w, c.g, w.data(), c.out_ch,
                         y_ref.data(), bias.data(), relu, ref_opts);
    expect_near(y, y_ref, relu ? "forward+relu" : "forward", c);
  }

  // dgrad accumulates: seed both sides with the same nonzero prior.
  std::vector<float> dx = random_vec(c.c_in * c.h * c.w, rng, 0.0f);
  std::vector<float> dx_ref = dx;
  conv2d_dgrad_plane(w.data(), c.out_ch, gout.data(), c.c_in, c.h, c.w, c.g,
                     dx.data(), test_opts);
  conv2d_dgrad_plane(w.data(), c.out_ch, gout.data(), c.c_in, c.h, c.w, c.g,
                     dx_ref.data(), ref_opts);
  expect_near(dx, dx_ref, "dgrad", c);

  std::vector<float> dw = random_vec(c.out_ch * ckk, rng, 0.0f);
  std::vector<float> dw_ref = dw;
  conv2d_wgrad_plane(gout.data(), x.data(), c.c_in, c.h, c.w, c.g, c.out_ch,
                     dw.data(), test_opts);
  conv2d_wgrad_plane(gout.data(), x.data(), c.c_in, c.h, c.w, c.g, c.out_ch,
                     dw_ref.data(), ref_opts);
  expect_near(dw, dw_ref, "wgrad", c);
}

TEST(ConvKernels, ImplicitMatchesIm2colAcrossGeometries) {
  Rng rng(0xC0DE);
  // kernel x stride x padding sweep at deliberately odd extents, plus
  // channel counts that leave panel tails in every blocking dimension.
  for (const std::int64_t kernel : {1, 3, 7}) {
    for (const std::int64_t stride : {1, 2}) {
      for (const std::int64_t padding : {0, 1, 3}) {
        const Case c{5, 9, 13, 11, ConvGeometry{kernel, stride, padding}};
        if (c.g.out_extent(c.h) <= 0 || c.g.out_extent(c.w) <= 0) continue;
        check_case(c, 0.0f, ConvAlgo::kImplicit, rng);
      }
    }
  }
}

TEST(ConvKernels, ImplicitMatchesAtMicroResNetShapes) {
  Rng rng(0xB16);
  check_case({3, 16, 16, 16, ConvGeometry{3, 1, 1}}, 0.0f,
             ConvAlgo::kImplicit, rng);
  check_case({16, 32, 16, 16, ConvGeometry{3, 2, 1}}, 0.0f,
             ConvAlgo::kImplicit, rng);
  check_case({32, 32, 1, 1, ConvGeometry{1, 1, 0}}, 0.0f, ConvAlgo::kImplicit,
             rng);
  // Wide-plane stem shape: ohw crosses several kNc panels.
  check_case({3, 8, 33, 35, ConvGeometry{3, 1, 1}}, 0.0f, ConvAlgo::kImplicit,
             rng);
}

TEST(ConvKernels, TapPathMatchesReferenceOnMaskedWeights) {
  Rng rng(0x7A9);
  // >= 85% zeroed weights: kAuto must route onto the tap path (verified
  // separately below via exact-zero skipping semantics) and still agree
  // with the reference bit-for-tolerance.
  for (const std::int64_t stride : {1, 2}) {
    const Case c{6, 10, 15, 13, ConvGeometry{3, stride, 1}};
    check_case(c, 0.9f, ConvAlgo::kAuto, rng);
  }
  check_case({4, 12, 9, 9, ConvGeometry{7, 1, 3}}, 0.85f, ConvAlgo::kAuto,
             rng);
}

TEST(ConvKernels, AutoDispatchHonorsPrecomputedZeroFraction) {
  // Passing the batch-level zero fraction must not change results, only the
  // chosen path; both extremes must agree with the reference.
  Rng rng(0x11E);
  const Case c{4, 8, 11, 11, ConvGeometry{3, 1, 1}};
  const std::int64_t ckk = c.c_in * 9;
  const std::vector<float> x = random_vec(c.c_in * c.h * c.w, rng, 0.0f);
  const std::vector<float> w = random_vec(c.out_ch * ckk, rng, 0.5f);
  const std::int64_t out_count = c.out_ch * c.g.out_extent(c.h) *
                                 c.g.out_extent(c.w);
  std::vector<float> y_ref(static_cast<std::size_t>(out_count));
  conv2d_forward_plane(x.data(), c.c_in, c.h, c.w, c.g, w.data(), c.out_ch,
                       y_ref.data(), nullptr, false,
                       {ConvAlgo::kIm2colReference, -1.0f});
  for (const float hint : {0.0f, 1.0f}) {  // force packed resp. tap path
    std::vector<float> y(static_cast<std::size_t>(out_count));
    conv2d_forward_plane(x.data(), c.c_in, c.h, c.w, c.g, w.data(), c.out_ch,
                         y.data(), nullptr, false, {ConvAlgo::kAuto, hint});
    for (std::size_t i = 0; i < y.size(); ++i) {
      const float scale = std::max(1.0f, std::fabs(y_ref[i]));
      ASSERT_NEAR(y[i], y_ref[i], 1e-4f * scale) << "hint=" << hint;
    }
  }
}

TEST(ConvKernels, GradcheckMaskedConv2d) {
  // Finite-difference gradcheck of the full layer (batch 2, stride 2,
  // padding 1) with a 60%-masked weight: the analytic dX and dW from the
  // fused kernels must match central differences of the scalar loss
  // L = sum(y * probe).
  Rng rng(0x6AD);
  const std::int64_t n = 2, c_in = 3, h = 7, w = 5, out_ch = 4;
  Conv2d conv(c_in, out_ch, /*kernel=*/3, /*stride=*/2, /*padding=*/1,
              /*with_bias=*/true, rng, "gc");
  Tensor mask({out_ch, c_in * 9});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.uniform(0.0f, 1.0f) < 0.6f ? 0.0f : 1.0f;
  }
  conv.weight().set_mask(mask);

  Tensor x = Tensor::randn({n, c_in, h, w}, rng);
  const Tensor y0 = conv.forward(x);
  Tensor probe = Tensor::randn({y0.dim(0), y0.dim(1), y0.dim(2), y0.dim(3)},
                               rng);
  conv.zero_grad();
  const Tensor dx = conv.backward(probe);

  const auto loss = [&](const Tensor& in) {
    Tensor y = conv.forward(in);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y[i]) * static_cast<double>(probe[i]);
    }
    return acc;
  };

  const float eps = 1e-2f;
  Rng pick(3);
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t i = pick.uniform_int(
        0, static_cast<int>(x.numel()) - 1);
    Tensor xp = x;
    xp[i] += eps;
    Tensor xm = x;
    xm[i] -= eps;
    const double want = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], want, 1e-2 * std::max(1.0, std::fabs(want)))
        << "dX index " << i;
  }
  // Weight gradient: compare against central differences on unmasked
  // entries (masked entries' grads are zeroed by the optimizer contract,
  // not by backward).
  conv.forward(x);
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t i = pick.uniform_int(
        0, static_cast<int>(conv.weight().value.numel()) - 1);
    if (mask[i] == 0.0f) continue;
    Tensor& wv = conv.weight().value;
    const float orig = wv[i];
    wv[i] = orig + eps;
    const double lp = loss(x);
    wv[i] = orig - eps;
    const double lm = loss(x);
    wv[i] = orig;
    const double want = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(conv.weight().grad[i], want,
                1e-2 * std::max(1.0, std::fabs(want)))
        << "dW index " << i;
  }
}

}  // namespace
}  // namespace rt
