// Tests for masks, granularities, OMP, IMP and LMP — the paper's ticket
// machinery. Includes the ticket invariants: sparsity exactness, structure,
// monotone schedules, and mask preservation through finetuning.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/synth.hpp"
#include "models/resnet.hpp"
#include "prune/imp.hpp"
#include "prune/lmp.hpp"
#include "prune/omp.hpp"
#include "train/loop.hpp"

namespace rt {
namespace {

Parameter make_conv_param(std::int64_t out, std::int64_t in, std::int64_t k) {
  Parameter p;
  p.name = "w";
  p.kind = ParamKind::kConvWeight;
  p.conv_in_channels = in;
  p.conv_kernel = k;
  p.value = Tensor({out, in * k * k});
  p.grad = Tensor({out, in * k * k});
  return p;
}

TEST(Granularity, GroupSizesForConv) {
  const Parameter p = make_conv_param(4, 3, 3);
  EXPECT_EQ(group_size(p, Granularity::kElement), 1);
  EXPECT_EQ(group_size(p, Granularity::kRow), 3);
  EXPECT_EQ(group_size(p, Granularity::kKernel), 9);
  EXPECT_EQ(group_size(p, Granularity::kChannel), 27);
  EXPECT_EQ(group_count(p, Granularity::kChannel), 4);
  EXPECT_EQ(group_count(p, Granularity::kKernel), 12);
}

TEST(Granularity, LinearCollapsesToRows) {
  Parameter p;
  p.name = "w";
  p.kind = ParamKind::kLinearWeight;
  p.value = Tensor({5, 8});
  for (auto g : {Granularity::kRow, Granularity::kKernel,
                 Granularity::kChannel}) {
    EXPECT_EQ(group_size(p, g), 8);
    EXPECT_EQ(group_count(p, g), 5);
  }
}

TEST(Granularity, ScoresAreMeanAbsPerGroup) {
  Parameter p = make_conv_param(1, 1, 2);  // groups of 4 at kernel level
  p.value = Tensor::from_data({1, 4}, {1, -2, 3, -4});
  const auto elem = group_scores(p, Granularity::kElement);
  EXPECT_FLOAT_EQ(elem[1], 2.0f);
  const auto kern = group_scores(p, Granularity::kKernel);
  ASSERT_EQ(kern.size(), 1u);
  EXPECT_FLOAT_EQ(kern[0], 2.5f);
}

TEST(Granularity, MaskFromKeepRespectsGroups) {
  const Parameter p = make_conv_param(2, 1, 3);
  const Tensor mask =
      mask_from_group_keep(p, Granularity::kChannel, {1, 0});
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(mask[i], 1.0f);
  for (std::int64_t i = 9; i < 18; ++i) EXPECT_EQ(mask[i], 0.0f);
}

TEST(MaskSet, ApplyInstallsAndRejectsUnknown) {
  Rng rng(1);
  auto model = make_micro_resnet18(10, rng);
  MaskSet masks;
  masks.set("r18.stem.weight", Tensor::zeros({8, 27}));
  masks.apply(*model);
  bool found = false;
  for (Parameter* p : model->parameters()) {
    if (p->name == "r18.stem.weight") {
      EXPECT_TRUE(p->has_mask());
      EXPECT_FLOAT_EQ(p->value.sum_sq(), 0.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  MaskSet bogus;
  bogus.set("nope", Tensor({1}));
  EXPECT_THROW(bogus.apply(*model), std::invalid_argument);
}

TEST(MaskSet, SaveLoadRoundTrip) {
  MaskSet masks;
  masks.set("a", Tensor::from_data({4}, {1, 0, 1, 0}));
  const std::string path = "/tmp/rt_masks_test.rtk";
  masks.save(path);
  const MaskSet back = MaskSet::load(path);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_LT(back.get("a").linf_distance(masks.get("a")), 1e-9f);
  EXPECT_NEAR(back.sparsity(), 0.5, 1e-9);
  std::filesystem::remove(path);
}

class OmpSparsityTest : public ::testing::TestWithParam<float> {};

TEST_P(OmpSparsityTest, AchievesTargetWithinTolerance) {
  const float target = GetParam();
  Rng rng(2);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig cfg;
  cfg.sparsity = target;
  omp_prune(*model, cfg);
  const double actual = model_sparsity(model->prunable_parameters());
  EXPECT_NEAR(actual, target, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Targets, OmpSparsityTest,
                         ::testing::Values(0.0f, 0.2f, 0.5f, 0.7f, 0.9f,
                                           0.99f));

TEST(Omp, KeepsLargestMagnitudes) {
  Rng rng(3);
  auto model = make_micro_resnet18(10, rng);
  // Record the global magnitude threshold implied by the mask.
  OmpConfig cfg;
  cfg.sparsity = 0.5f;
  // Snapshot weights before pruning zeroes them.
  std::map<std::string, Tensor> before;
  for (Parameter* p : model->prunable_parameters()) before[p->name] = p->value;
  omp_prune(*model, cfg);
  float max_pruned = 0.0f, min_kept = 1e9f;
  for (Parameter* p : model->prunable_parameters()) {
    const Tensor& orig = before.at(p->name);
    for (std::int64_t i = 0; i < p->mask.numel(); ++i) {
      const float mag = std::fabs(orig[i]);
      if (p->mask[i] == 0.0f) max_pruned = std::max(max_pruned, mag);
      else min_kept = std::min(min_kept, mag);
    }
  }
  EXPECT_LE(max_pruned, min_kept + 1e-6f);
}

TEST(Omp, StructuredChannelMasksWholeRows) {
  Rng rng(4);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig cfg;
  cfg.sparsity = 0.5f;
  cfg.granularity = Granularity::kChannel;
  omp_prune(*model, cfg);
  for (Parameter* p : model->prunable_parameters()) {
    if (!p->has_mask() || p->kind != ParamKind::kConvWeight) continue;
    const std::int64_t row = p->value.dim(1);
    for (std::int64_t r = 0; r < p->value.dim(0); ++r) {
      float s = 0.0f;
      for (std::int64_t c = 0; c < row; ++c) s += p->mask[r * row + c];
      EXPECT_TRUE(s == 0.0f || s == static_cast<float>(row))
          << p->name << " row " << r << " partially masked";
    }
  }
}

TEST(Omp, RejectsBadSparsity) {
  Rng rng(5);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig cfg;
  cfg.sparsity = 1.0f;
  EXPECT_THROW(omp_prune(*model, cfg), std::invalid_argument);
  cfg.sparsity = -0.1f;
  EXPECT_THROW(omp_prune(*model, cfg), std::invalid_argument);
}

TEST(Omp, HeadExcludedByDefault) {
  Rng rng(6);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig cfg;
  cfg.sparsity = 0.9f;
  omp_prune(*model, cfg);
  EXPECT_FALSE(model->head().weight().has_mask());
}

TEST(ImpSchedule, MonotoneAndCapped) {
  EXPECT_NEAR(imp_round_sparsity(0.2f, 1, 0.9f), 0.2f, 1e-6f);
  EXPECT_NEAR(imp_round_sparsity(0.2f, 2, 0.9f), 0.36f, 1e-6f);
  float prev = 0.0f;
  for (int r = 1; r < 30; ++r) {
    const float s = imp_round_sparsity(0.2f, r, 0.9f);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, 0.9f);
    prev = s;
  }
  EXPECT_NEAR(prev, 0.9f, 1e-6f);
}

TEST(Imp, TrajectoryReachesTargetAndRewinds) {
  Rng rng(7);
  auto model = make_micro_resnet18(10, rng);
  const StateDict pretrained = model->state_dict();
  const Dataset data = generate_dataset(source_task_spec(), 80, 9);

  ImpConfig cfg;
  cfg.target_sparsity = 0.6f;
  cfg.rate_per_round = 0.3f;
  cfg.epochs_per_round = 1;
  Rng prng(8);
  const auto trajectory = imp_prune_trajectory(*model, data, cfg, prng);

  ASSERT_GE(trajectory.size(), 2u);
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_GT(trajectory[i].sparsity, trajectory[i - 1].sparsity);
  }
  EXPECT_NEAR(trajectory.back().sparsity, 0.6f, 1e-5f);
  EXPECT_NEAR(model_sparsity(model->prunable_parameters()), 0.6, 1e-3);

  // Surviving weights equal the pretrained values (rewind contract).
  for (Parameter* p : model->prunable_parameters()) {
    const Tensor& orig = pretrained.at(p->name);
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] != 0.0f) {
        EXPECT_FLOAT_EQ(p->value[i], orig[i]) << p->name << "[" << i << "]";
      } else {
        EXPECT_FLOAT_EQ(p->value[i], 0.0f);
      }
    }
  }
}

TEST(Imp, MasksAreNested) {
  // A weight pruned in round r must stay pruned in round r+1.
  Rng rng(9);
  auto model = make_micro_resnet18(10, rng);
  const Dataset data = generate_dataset(source_task_spec(), 60, 10);
  ImpConfig cfg;
  cfg.target_sparsity = 0.7f;
  cfg.rate_per_round = 0.35f;
  cfg.epochs_per_round = 1;
  Rng prng(11);
  const auto trajectory = imp_prune_trajectory(*model, data, cfg, prng);
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    for (const auto& [name, later] : trajectory[i].masks.masks()) {
      const Tensor& earlier = trajectory[i - 1].masks.get(name);
      for (std::int64_t j = 0; j < later.numel(); ++j) {
        if (earlier[j] == 0.0f) {
          EXPECT_EQ(later[j], 0.0f) << name << "[" << j << "] resurrected";
        }
      }
    }
  }
}

TEST(Imp, ResetsHeadForDownstreamClassCount) {
  Rng rng(12);
  auto model = make_micro_resnet18(10, rng);
  const SynthTaskSpec spec = downstream_task_spec("t4", 4, 0.5f, 77);
  const Dataset data = generate_dataset(spec, 40, 13);
  ImpConfig cfg;
  cfg.target_sparsity = 0.3f;
  cfg.rate_per_round = 0.3f;
  cfg.epochs_per_round = 1;
  Rng prng(14);
  imp_prune(*model, data, cfg, prng);
  EXPECT_EQ(model->head().out_features(), 4);
}

TEST(Imp, RejectsBadConfig) {
  Rng rng(15);
  auto model = make_micro_resnet18(10, rng);
  const Dataset data = generate_dataset(source_task_spec(), 20, 16);
  ImpConfig cfg;
  cfg.target_sparsity = 1.0f;
  Rng prng(17);
  EXPECT_THROW(imp_prune(*model, data, cfg, prng), std::invalid_argument);
  cfg.target_sparsity = 0.5f;
  cfg.rate_per_round = 0.0f;
  EXPECT_THROW(imp_prune(*model, data, cfg, prng), std::invalid_argument);
}

TEST(Lmp, LearnsMaskAtRequestedSparsityWithFrozenWeights) {
  Rng rng(18);
  auto model = make_micro_resnet18(10, rng);
  const StateDict pretrained = model->state_dict();
  const SynthTaskSpec spec = downstream_task_spec("t6", 6, 0.5f, 88);
  const Dataset data = generate_dataset(spec, 60, 19);

  LmpConfig cfg;
  cfg.sparsity = 0.5f;
  cfg.epochs = 2;
  Rng prng(20);
  const MaskSet masks = lmp_learn(*model, data, cfg, prng);
  EXPECT_GT(masks.size(), 0u);
  EXPECT_NEAR(masks.sparsity(), 0.5, 0.02);

  // Kept weights equal pretrained values: LMP never tunes trunk weights.
  for (Parameter* p : model->prunable_parameters()) {
    const Tensor& orig = pretrained.at(p->name);
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] != 0.0f) {
        EXPECT_FLOAT_EQ(p->value[i], orig[i]) << p->name;
      }
    }
  }
  // Head was retrained for 6 classes.
  EXPECT_EQ(model->head().out_features(), 6);
}

TEST(Lmp, MaskDiffersFromPureMagnitude) {
  // With enough training the learned mask should deviate from the |w|
  // initialization somewhere.
  Rng rng(21);
  auto model = make_micro_resnet18(10, rng);
  auto magnitude_model = make_micro_resnet18(10, rng);
  magnitude_model->load_state(model->state_dict());

  const SynthTaskSpec spec = downstream_task_spec("t5", 5, 0.6f, 99);
  const Dataset data = generate_dataset(spec, 80, 22);
  LmpConfig cfg;
  cfg.sparsity = 0.5f;
  cfg.epochs = 3;
  Rng prng(23);
  const MaskSet learned = lmp_learn(*model, data, cfg, prng);

  OmpConfig omp;
  omp.sparsity = 0.5f;
  const MaskSet magnitude = omp_mask(*magnitude_model, omp);

  double diff = 0.0, total = 0.0;
  for (const auto& [name, lm] : learned.masks()) {
    const Tensor& mm = magnitude.get(name);
    for (std::int64_t i = 0; i < lm.numel(); ++i) {
      diff += std::fabs(lm[i] - mm[i]);
      total += 1.0;
    }
  }
  EXPECT_GT(diff / total, 0.01) << "LMP never moved away from magnitude init";
}

TEST(Lmp, RejectsBadSparsity) {
  Rng rng(24);
  auto model = make_micro_resnet18(10, rng);
  const Dataset data = generate_dataset(source_task_spec(), 20, 25);
  LmpConfig cfg;
  cfg.sparsity = 1.0f;
  Rng prng(26);
  EXPECT_THROW(lmp_learn(*model, data, cfg, prng), std::invalid_argument);
}

// The ticket contract end-to-end: finetuning a masked model never
// resurrects pruned weights.
TEST(TicketInvariant, FinetuningPreservesMask) {
  Rng rng(27);
  auto model = make_micro_resnet18(10, rng);
  OmpConfig omp;
  omp.sparsity = 0.8f;
  const MaskSet masks = omp_prune(*model, omp);

  const SynthTaskSpec spec = downstream_task_spec("t7", 7, 0.7f, 111);
  const Dataset train = generate_dataset(spec, 60, 28);
  TrainLoopConfig cfg;
  cfg.epochs = 2;
  Rng trng(29);
  model->reset_head(7, rng);
  train_classifier(*model, train, cfg, trng);

  for (Parameter* p : model->prunable_parameters()) {
    if (!p->has_mask()) continue;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (p->mask[i] == 0.0f) {
        ASSERT_EQ(p->value[i], 0.0f) << p->name << " resurrected at " << i;
      }
    }
  }
  EXPECT_NEAR(model_sparsity(model->prunable_parameters()), 0.8, 1e-3);
}

}  // namespace
}  // namespace rt
