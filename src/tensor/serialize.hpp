#pragma once
// Binary serialization for tensors and named tensor collections.
//
// Format (little-endian, as written by this process):
//   magic "RTK1" | u64 count | per entry: u32 name_len, name bytes,
//   u32 ndim, i64 dims..., f32 data...
// Used to checkpoint pretrained models so experiments can share them.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace rt {

using StateDict = std::map<std::string, Tensor>;

/// Writes one tensor (no header) to the stream. Throws on I/O error.
void write_tensor(std::ostream& out, const Tensor& t);

/// Reads one tensor written by write_tensor. Throws on malformed input.
Tensor read_tensor(std::istream& in);

/// Writes a named collection with the archive header.
void write_state_dict(std::ostream& out, const StateDict& state);

/// Reads a named collection; validates the magic header.
StateDict read_state_dict(std::istream& in);

/// File-based convenience wrappers. Throw std::runtime_error on failure.
void save_state_dict(const std::string& path, const StateDict& state);
StateDict load_state_dict(const std::string& path);

}  // namespace rt
