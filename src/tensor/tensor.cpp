#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "linalg/gemm.hpp"

namespace rt {

std::int64_t shape_volume(const std::vector<std::int64_t>& shape) {
  if (shape.empty()) throw std::invalid_argument("empty shape");
  std::int64_t v = 1;
  for (std::int64_t d : shape) {
    if (d <= 0) throw std::invalid_argument("non-positive shape extent");
    v *= d;
  }
  return v;
}

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_volume(shape_)), 0.0f);
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::ones(std::vector<std::int64_t> shape) {
  return full(std::move(shape), 1.0f);
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, Rng& rng, float lo,
                       float hi) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> data) {
  if (shape_volume(shape) != static_cast<std::int64_t>(data.size())) {
    throw std::invalid_argument("from_data: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::slice_rows(std::int64_t begin, std::int64_t n) const {
  if (shape_.empty() || begin < 0 || n <= 0 || begin + n > shape_[0]) {
    throw std::out_of_range("Tensor::slice_rows: rows [" +
                            std::to_string(begin) + ", " +
                            std::to_string(begin + n) + ") out of " +
                            shape_str());
  }
  std::vector<std::int64_t> shape = shape_;
  shape[0] = n;
  const std::int64_t plane = numel() / shape_[0];
  Tensor out(std::move(shape));
  std::copy(data() + begin * plane, data() + (begin + n) * plane, out.data());
  return out;
}

std::int64_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim");
  return shape_[i];
}

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ')';
  return out.str();
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}
float Tensor::at(std::int64_t r, std::int64_t c) const {
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}
float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

Tensor& Tensor::fill_(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}
}  // namespace

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
  return *this;
}

Tensor& Tensor::add_(float scalar) {
  for (float& v : data_) v += scalar;
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul_");
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= o[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  check_same_shape(*this, x, "axpy_");
  const float* o = x.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (float& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

Tensor& Tensor::sign_() {
  for (float& v : data_) v = (v > 0.0f) ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  return *this;
}

Tensor& Tensor::abs_() {
  for (float& v : data_) v = std::fabs(v);
  return *this;
}

Tensor Tensor::add(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}
Tensor Tensor::sub(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}
Tensor Tensor::mul(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}
Tensor Tensor::scaled(float scalar) const {
  Tensor out = *this;
  out.mul_(scalar);
  return out;
}

float Tensor::sum() const {
  // Pairwise-ish accumulation in double for numeric stability of reductions
  // over large activation tensors.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  float m = std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Tensor::max() const {
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::max(m, v);
  return m;
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("argmax of empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::sum_sq() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Tensor::linf_distance(const Tensor& other) const {
  check_same_shape(*this, other, "linf_distance");
  float m = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  if (shape_volume(new_shape) != numel()) {
    throw std::invalid_argument("reshape: volume mismatch");
  }
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul: operands must be 2-D");
  }
  const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const std::int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
  if (k != kb) throw std::invalid_argument("matmul: inner dim mismatch");

  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, ad, bd, cd);
  } else if (!trans_a && trans_b) {
    gemm_nt(m, n, k, ad, bd, cd);
  } else if (trans_a && !trans_b) {
    gemm_tn(m, n, k, ad, bd, cd);
  } else {
    gemm_tt(m, n, k, ad, bd, cd);
  }
  return c;
}

}  // namespace rt
