#pragma once
// Dense float32 tensor with value semantics.
//
// The training stack works entirely in NCHW layout for 4-D activation tensors
// and (rows, cols) for 2-D weight matrices. Tensors own their storage
// (std::vector<float>); copies are explicit deep copies, moves are cheap.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rt {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<std::int64_t> shape);

  // ---- Factories -----------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor ones(std::vector<std::int64_t> shape);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng,
                      float stddev = 1.0f);
  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor uniform(std::vector<std::int64_t> shape, Rng& rng, float lo,
                        float hi);
  /// Adopts the given buffer; data.size() must equal the shape's volume.
  static Tensor from_data(std::vector<std::int64_t> shape,
                          std::vector<float> data);

  // ---- Introspection -------------------------------------------------------
  bool empty() const { return data_.empty(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t dim(std::size_t i) const;
  const std::vector<std::int64_t>& shape() const { return shape_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Rows [begin, begin + n) of the leading dimension as their own tensor
  /// (deep copy, trailing layout preserved). The batching idiom: slicing a
  /// (N, C, H, W) dataset into per-request sub-batches.
  Tensor slice_rows(std::int64_t begin, std::int64_t n) const;

  /// 2-D indexed access (row, col). Tensor must be 2-D.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// 4-D indexed access (n, c, h, w). Tensor must be 4-D NCHW.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  // ---- In-place elementwise ops (return *this for chaining) ----------------
  Tensor& fill_(float value);
  Tensor& add_(const Tensor& other);          ///< this += other
  Tensor& add_(float scalar);                 ///< this += scalar
  Tensor& sub_(const Tensor& other);          ///< this -= other
  Tensor& mul_(const Tensor& other);          ///< this *= other (Hadamard)
  Tensor& mul_(float scalar);                 ///< this *= scalar
  Tensor& axpy_(float alpha, const Tensor& x);///< this += alpha * x
  Tensor& clamp_(float lo, float hi);
  Tensor& sign_();                            ///< elementwise sign (0 -> 0)
  Tensor& abs_();

  // ---- Out-of-place elementwise ops ----------------------------------------
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float scalar) const;

  // ---- Reductions -----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the global maximum (first occurrence).
  std::int64_t argmax() const;
  /// Sum of squares of all entries.
  float sum_sq() const;
  /// L-infinity distance to another same-shaped tensor.
  float linf_distance(const Tensor& other) const;

  /// Same data, new shape; volumes must match.
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// C = op(A) * op(B) where op is optional transposition.
/// A is (m, k) after op, B is (k, n) after op; result is (m, n).
/// Thin dispatcher over the blocked, thread-parallel kernels in
/// linalg/gemm.hpp.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Returns volume of a shape vector; throws on non-positive extents.
std::int64_t shape_volume(const std::vector<std::int64_t>& shape);

}  // namespace rt
