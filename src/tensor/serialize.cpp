#include "tensor/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace rt {

namespace {

constexpr char kMagic[4] = {'R', 'T', 'K', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  if (!out) throw std::runtime_error("serialize: write failed");
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("serialize: read failed");
  return v;
}

}  // namespace

void write_tensor(std::ostream& out, const Tensor& t) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
  for (std::size_t i = 0; i < t.ndim(); ++i) {
    write_pod<std::int64_t>(out, t.dim(i));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out) throw std::runtime_error("serialize: tensor data write failed");
}

Tensor read_tensor(std::istream& in) {
  const auto ndim = read_pod<std::uint32_t>(in);
  if (ndim == 0 || ndim > 8) throw std::runtime_error("serialize: bad ndim");
  std::vector<std::int64_t> shape(ndim);
  for (auto& d : shape) {
    d = read_pod<std::int64_t>(in);
    if (d <= 0 || d > (1 << 28)) throw std::runtime_error("serialize: bad dim");
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("serialize: tensor data read failed");
  return t;
}

void write_state_dict(std::ostream& out, const StateDict& state) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, state.size());
  for (const auto& [name, tensor] : state) {
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_tensor(out, tensor);
  }
  if (!out) throw std::runtime_error("serialize: state dict write failed");
}

StateDict read_state_dict(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + 4, kMagic)) {
    throw std::runtime_error("serialize: bad magic");
  }
  const auto count = read_pod<std::uint64_t>(in);
  StateDict state;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto len = read_pod<std::uint32_t>(in);
    if (len > 4096) throw std::runtime_error("serialize: name too long");
    std::string name(len, '\0');
    in.read(name.data(), len);
    if (!in) throw std::runtime_error("serialize: name read failed");
    state.emplace(std::move(name), read_tensor(in));
  }
  return state;
}

void save_state_dict(const std::string& path, const StateDict& state) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_state_dict(f, state);
}

StateDict load_state_dict(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return read_state_dict(f);
}

}  // namespace rt
