#pragma once
// Sparsity masks and structured-granularity grouping.
//
// A ticket is f(.; m ⊙ θ_pre): a binary mask m over the prunable weights of
// a pretrained model. Granularities follow Fig. 3 of the paper:
//   Element  — unstructured, one group per weight;
//   Row      — one row of a conv kernel (k consecutive taps);
//   Kernel   — one k x k kernel slice (an (out_ch, in_ch) pair);
//   Channel  — one whole output channel / linear output neuron.
// For linear weights, Row/Kernel/Channel all collapse to output-neuron rows.

#include <map>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace rt {

enum class Granularity { kElement, kRow, kKernel, kChannel };

const char* granularity_name(Granularity g);

/// Number of pruning groups in the parameter at the given granularity.
std::int64_t group_count(const Parameter& p, Granularity g);
/// Scalar weights per group (uniform within a parameter).
std::int64_t group_size(const Parameter& p, Granularity g);
/// Group index of flat weight element i.
std::int64_t group_of(const Parameter& p, Granularity g, std::int64_t i);

/// Mean |w| per group — the magnitude score used to rank groups. Normalizing
/// by group size keeps scores comparable across layers and granularities.
std::vector<float> group_scores(const Parameter& p, Granularity g);

/// Builds a binary mask keeping exactly the groups with keep[g] != 0.
Tensor mask_from_group_keep(const Parameter& p, Granularity g,
                            const std::vector<char>& keep);

/// A named collection of masks; the serializable form of a ticket.
class MaskSet {
 public:
  /// Installs masks into matching parameters of the model (by name) and
  /// applies them. Parameters without an entry are left dense. Throws if an
  /// entry has no matching parameter.
  void apply(Module& model) const;

  /// Reads the currently installed masks from a model.
  static MaskSet capture(Module& model);

  void set(const std::string& name, Tensor mask);
  bool contains(const std::string& name) const;
  const Tensor& get(const std::string& name) const;
  std::size_t size() const { return masks_.size(); }
  const std::map<std::string, Tensor>& masks() const { return masks_; }

  /// Fraction of scalars zeroed across all masks in the set.
  double sparsity() const;

  /// Serialization via the tensor archive format.
  void save(const std::string& path) const;
  static MaskSet load(const std::string& path);

 private:
  std::map<std::string, Tensor> masks_;
};

/// Overall sparsity over a model's prunable parameters (masked fraction).
double model_sparsity(std::vector<Parameter*> prunable);

}  // namespace rt
