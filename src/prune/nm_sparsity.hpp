#pragma once
// N:M fine-grained structured sparsity (e.g. 2:4).
//
// Modern edge accelerators (NVIDIA Ampere sparse tensor cores and several
// NPU ISAs) execute masks that keep at most N weights in every group of M
// consecutive weights along the input dimension. N:M sits between the
// paper's unstructured (element) tickets and its coarse row/kernel/channel
// tickets: near-unstructured accuracy with real hardware speedup — exactly
// the accuracy-vs-acceleration trade-off Fig. 3 explores. The hw cost model
// (src/hw) prices these masks accordingly.

#include "models/resnet.hpp"
#include "prune/mask.hpp"

namespace rt {

struct NmConfig {
  int n = 2;  ///< weights kept per group
  int m = 4;  ///< group size (consecutive along the row / input dimension)
  bool include_head = false;
};

/// Builds the magnitude-based N:M mask of one parameter: every complete
/// group of `m` consecutive row elements keeps its `n` largest-magnitude
/// entries; a trailing partial group of size L keeps min(n, L).
Tensor nm_mask_for(const Parameter& p, int n, int m);

/// Installs N:M masks on all prunable parameters. Overall sparsity is
/// 1 - n/m (up to partial-group rounding).
MaskSet nm_prune(ResNet& model, const NmConfig& config);

/// Checks the N:M invariant on a (rows x cols) mask: no group of m
/// consecutive elements within a row keeps more than n entries.
bool validate_nm_mask(const Tensor& mask, int n, int m);

/// The exact sparsity an N:M mask achieves on a (rows x cols) parameter,
/// accounting for partial trailing groups.
double nm_expected_sparsity(std::int64_t rows, std::int64_t cols, int n, int m);

}  // namespace rt
