#include "prune/nm_sparsity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rt {

namespace {

void validate_config(int n, int m) {
  if (m < 2 || n < 1 || n >= m) {
    throw std::invalid_argument("N:M sparsity requires 1 <= n < m, m >= 2");
  }
}

std::int64_t row_length(const Parameter& p) {
  if (p.value.ndim() != 2) {
    throw std::invalid_argument("N:M masks need 2-D weight matrices");
  }
  return p.value.dim(1);
}

}  // namespace

Tensor nm_mask_for(const Parameter& p, int n, int m) {
  validate_config(n, m);
  const std::int64_t rows = p.value.dim(0);
  const std::int64_t cols = row_length(p);
  Tensor mask(p.value.shape());
  std::vector<std::int64_t> order;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t g0 = 0; g0 < cols; g0 += m) {
      const std::int64_t len = std::min<std::int64_t>(m, cols - g0);
      const std::int64_t keep = std::min<std::int64_t>(n, len);
      order.resize(static_cast<std::size_t>(len));
      for (std::int64_t i = 0; i < len; ++i) order[static_cast<std::size_t>(i)] = i;
      std::nth_element(
          order.begin(), order.begin() + keep, order.end(),
          [&](std::int64_t a, std::int64_t b) {
            return std::fabs(p.value.at(r, g0 + a)) >
                   std::fabs(p.value.at(r, g0 + b));
          });
      for (std::int64_t i = 0; i < keep; ++i) {
        mask.at(r, g0 + order[static_cast<std::size_t>(i)]) = 1.0f;
      }
    }
  }
  return mask;
}

MaskSet nm_prune(ResNet& model, const NmConfig& config) {
  validate_config(config.n, config.m);
  MaskSet out;
  for (Parameter* p : model.prunable_parameters(config.include_head)) {
    Tensor mask = nm_mask_for(*p, config.n, config.m);
    p->set_mask(mask);
    out.set(p->name, std::move(mask));
  }
  return out;
}

bool validate_nm_mask(const Tensor& mask, int n, int m) {
  validate_config(n, m);
  if (mask.ndim() != 2) return false;
  const std::int64_t rows = mask.dim(0), cols = mask.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t g0 = 0; g0 < cols; g0 += m) {
      const std::int64_t len = std::min<std::int64_t>(m, cols - g0);
      int kept = 0;
      for (std::int64_t i = 0; i < len; ++i) {
        const float v = mask.at(r, g0 + i);
        if (v != 0.0f && v != 1.0f) return false;  // must be binary
        if (v == 1.0f) ++kept;
      }
      if (kept > n) return false;
    }
  }
  return true;
}

double nm_expected_sparsity(std::int64_t rows, std::int64_t cols, int n,
                            int m) {
  validate_config(n, m);
  const std::int64_t full_groups = cols / m;
  const std::int64_t tail = cols % m;
  const std::int64_t kept_per_row =
      full_groups * n + std::min<std::int64_t>(n, tail);
  const double kept = static_cast<double>(rows * kept_per_row);
  return 1.0 - kept / static_cast<double>(rows * cols);
}

}  // namespace rt
