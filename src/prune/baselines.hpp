#pragma once
// Pruning baselines used by the design-choice ablation.
//
// The paper draws tickets with GLOBAL magnitude ranking; these baselines
// justify that choice: random pruning (floor), per-layer uniform magnitude
// pruning (the common alternative), and SNIP-style connection sensitivity
// (gradient-based one-shot scoring).

#include "data/dataset.hpp"
#include "models/resnet.hpp"
#include "prune/mask.hpp"

namespace rt {

/// Uniform random mask at the requested sparsity (per parameter tensor).
MaskSet random_prune(ResNet& model, float sparsity, Granularity granularity,
                     Rng& rng);

/// Magnitude pruning with the ratio enforced per layer instead of globally.
MaskSet layerwise_magnitude_prune(ResNet& model, float sparsity,
                                  Granularity granularity);

struct SnipConfig {
  float sparsity = 0.5f;
  Granularity granularity = Granularity::kElement;
  int batches = 4;       ///< minibatches used to estimate sensitivity
  int batch_size = 32;
};

/// SNIP connection sensitivity: score each weight by |g * w| accumulated
/// over a few minibatches of the given task, then keep the globally
/// highest-scoring fraction. The head is excluded, like the other schemes.
MaskSet snip_prune(ResNet& model, const Dataset& data, const SnipConfig& config,
                   Rng& rng);

struct GraspConfig {
  float sparsity = 0.5f;
  Granularity granularity = Granularity::kElement;
  int batches = 4;        ///< minibatches for the gradient estimates
  int batch_size = 32;
  float fd_scale = 1e-2f; ///< finite-difference step, relative to ||g||
};

/// GraSP (Wang et al. 2020): score each weight by theta * (H g) and REMOVE
/// the highest scores, preserving gradient flow through the pruned network.
/// The Hessian-vector product is a finite difference of gradients at theta
/// and theta + delta * g over the same minibatches. Weights are restored
/// exactly; only masks change.
MaskSet grasp_prune(ResNet& model, const Dataset& data,
                    const GraspConfig& config, Rng& rng);

}  // namespace rt
