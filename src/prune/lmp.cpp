#include "prune/lmp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "nn/loss.hpp"
#include "train/loop.hpp"

namespace rt {

namespace {

/// Keep-vector for the top (1 - sparsity) fraction of groups by score.
std::vector<char> topk_keep(const std::vector<float>& scores, float sparsity) {
  const auto n = static_cast<std::int64_t>(scores.size());
  auto kept = static_cast<std::int64_t>(
      std::round((1.0 - static_cast<double>(sparsity)) * static_cast<double>(n)));
  kept = std::clamp<std::int64_t>(kept, 1, n);
  std::vector<std::int64_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::int64_t>(i);
  std::nth_element(order.begin(), order.begin() + kept, order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return scores[static_cast<std::size_t>(a)] >
                            scores[static_cast<std::size_t>(b)];
                   });
  std::vector<char> keep(scores.size(), 0);
  for (std::int64_t i = 0; i < kept; ++i) {
    keep[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
  }
  return keep;
}

/// Aggregates per-weight scores into per-group means.
std::vector<float> aggregate_scores(const Tensor& s, std::int64_t group_sz) {
  const std::int64_t gc = s.numel() / group_sz;
  std::vector<float> out(static_cast<std::size_t>(gc), 0.0f);
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    out[static_cast<std::size_t>(i / group_sz)] += s[i];
  }
  const float inv = 1.0f / static_cast<float>(group_sz);
  for (float& v : out) v *= inv;
  return out;
}

}  // namespace

MaskSet lmp_learn(ResNet& model, const Dataset& data, const LmpConfig& config,
                  Rng& rng) {
  if (config.sparsity < 0.0f || config.sparsity >= 1.0f) {
    throw std::invalid_argument("lmp: sparsity in [0,1)");
  }
  if (model.head().out_features() != data.num_classes) {
    model.reset_head(data.num_classes, rng);
  }
  auto prunable = model.prunable_parameters();

  // Frozen pretrained weights and learnable scores (init: |w_pre| plus a tiny
  // tie-breaking jitter so equal magnitudes don't alias).
  std::vector<Tensor> theta_pre, scores, velocity;
  theta_pre.reserve(prunable.size());
  for (Parameter* p : prunable) {
    p->clear_mask();
    theta_pre.push_back(p->value);
    Tensor s = p->value;
    s.abs_();
    for (std::int64_t i = 0; i < s.numel(); ++i) {
      s[i] += 1e-4f * rng.uniform();
    }
    scores.push_back(std::move(s));
    velocity.emplace_back(p->value.shape());
  }

  auto install_masks = [&] {
    for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
      Parameter* p = prunable[pi];
      const std::int64_t gs = group_size(*p, config.granularity);
      const auto gscores = aggregate_scores(scores[pi], gs);
      const auto keep = topk_keep(gscores, config.sparsity);
      p->value = theta_pre[pi];
      p->set_mask(mask_from_group_keep(*p, config.granularity, keep));
    }
  };

  // Head optimizer (the only weights that train).
  std::vector<Parameter*> head_params;
  model.head().collect_parameters(head_params);
  Sgd head_opt(head_params, config.head_sgd);

  const int n = static_cast<int>(data.size());
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_acc = 0.0;
    for (const auto& idx : make_batches(n, config.batch_size, rng)) {
      install_masks();
      const Tensor x = gather_images(data.images, idx);
      const std::vector<int> y = gather_labels(data.labels, idx);
      model.set_training(true);
      model.zero_grad();
      const Tensor logits = model.forward(x);
      const LossResult loss = softmax_cross_entropy(logits, y);
      model.backward(loss.grad_logits);
      loss_acc += static_cast<double>(loss.loss) * static_cast<double>(idx.size());

      // Straight-through score update BEFORE any gradient masking:
      // dL/ds = dL/dw_eff * w_pre flows to pruned weights as well.
      for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
        Parameter* p = prunable[pi];
        Tensor& v = velocity[pi];
        Tensor& s = scores[pi];
        const Tensor& w0 = theta_pre[pi];
        for (std::int64_t i = 0; i < s.numel(); ++i) {
          const float g = p->grad[i] * w0[i];
          v[i] = config.score_momentum * v[i] + g;
          s[i] -= config.score_lr * v[i];
        }
      }
      head_opt.step();
      model.zero_grad();
    }
    if (config.verbose) {
      std::printf("  lmp epoch %2d loss %.4f\n", epoch,
                  loss_acc / static_cast<double>(n));
    }
  }

  install_masks();
  return MaskSet::capture(model);
}

}  // namespace rt
