#include "prune/imp.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "prune/omp.hpp"

namespace rt {

float imp_round_sparsity(float rate, int round, float target) {
  const float s =
      1.0f - std::pow(1.0f - rate, static_cast<float>(round));
  return std::min(s, target);
}

std::vector<ImpTrajectoryPoint> imp_prune_trajectory(ResNet& model,
                                                     const Dataset& data,
                                                     const ImpConfig& config,
                                                     Rng& rng) {
  if (config.target_sparsity < 0.0f || config.target_sparsity >= 1.0f) {
    throw std::invalid_argument("imp: target sparsity in [0,1)");
  }
  if (config.rate_per_round <= 0.0f || config.rate_per_round >= 1.0f) {
    throw std::invalid_argument("imp: rate per round in (0,1)");
  }
  if (model.head().out_features() != data.num_classes) {
    model.reset_head(data.num_classes, rng);
  }
  const StateDict pretrained = model.state_dict();

  TrainLoopConfig loop;
  loop.epochs = config.epochs_per_round;
  loop.batch_size = config.batch_size;
  loop.sgd = config.sgd;
  loop.adversarial = config.adversarial;
  loop.attack = config.attack;

  std::vector<ImpTrajectoryPoint> trajectory;
  for (int round = 1;; ++round) {
    const float round_sparsity = imp_round_sparsity(
        config.rate_per_round, round, config.target_sparsity);

    // Train with the current mask (dense on round 1).
    train_classifier(model, data, loop, rng);

    // Prune the smallest-magnitude weights of the trained model. Previously
    // pruned weights are exactly zero, so global magnitude ranking keeps
    // them pruned: sparsity is monotone across rounds.
    OmpConfig omp;
    omp.sparsity = round_sparsity;
    omp.granularity = config.granularity;
    MaskSet masks = omp_prune(model, omp);

    if (config.rewind_to_pretrained) {
      model.load_state(pretrained);
      masks.apply(model);  // re-apply: load_state restored dense values
    }
    if (config.verbose) {
      std::printf("  imp round %d -> sparsity %.4f\n", round,
                  model_sparsity(model.prunable_parameters()));
    }
    trajectory.push_back(
        ImpTrajectoryPoint{round, round_sparsity, std::move(masks)});
    if (round_sparsity >= config.target_sparsity) break;
  }
  if (!config.rewind_to_pretrained) {
    // Leave the ticket contract intact: m ⊙ θ_pre.
    model.load_state(pretrained);
    trajectory.back().masks.apply(model);
  }
  return trajectory;
}

MaskSet imp_prune(ResNet& model, const Dataset& data, const ImpConfig& config,
                  Rng& rng) {
  auto trajectory = imp_prune_trajectory(model, data, config, rng);
  return std::move(trajectory.back().masks);
}

}  // namespace rt
