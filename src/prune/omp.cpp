#include "prune/omp.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace rt {

namespace {

struct GroupRef {
  float score;
  std::int32_t param;   ///< index into the prunable parameter list
  std::int64_t group;   ///< group index within the parameter
  std::int64_t weights; ///< scalars in the group
};

}  // namespace

MaskSet omp_mask(ResNet& model, const OmpConfig& config) {
  if (config.sparsity < 0.0f || config.sparsity >= 1.0f) {
    throw std::invalid_argument("omp: sparsity must be in [0, 1)");
  }
  auto prunable = model.prunable_parameters(config.include_head);

  std::vector<GroupRef> groups;
  std::int64_t total_weights = 0;
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    const Parameter& p = *prunable[pi];
    const auto scores = group_scores(p, config.granularity);
    const std::int64_t gs = group_size(p, config.granularity);
    for (std::size_t gi = 0; gi < scores.size(); ++gi) {
      groups.push_back(GroupRef{scores[gi], static_cast<std::int32_t>(pi),
                                static_cast<std::int64_t>(gi), gs});
    }
    total_weights += p.value.numel();
  }

  // Remove the lowest-scoring groups until the target weight count is gone.
  std::sort(groups.begin(), groups.end(),
            [](const GroupRef& a, const GroupRef& b) { return a.score < b.score; });
  const auto target_removed = static_cast<std::int64_t>(
      static_cast<double>(config.sparsity) * static_cast<double>(total_weights));

  std::vector<std::vector<char>> keep(prunable.size());
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    keep[pi].assign(
        static_cast<std::size_t>(group_count(*prunable[pi], config.granularity)),
        1);
  }
  std::int64_t removed = 0;
  for (const GroupRef& g : groups) {
    if (removed >= target_removed) break;
    keep[static_cast<std::size_t>(g.param)][static_cast<std::size_t>(g.group)] = 0;
    removed += g.weights;
  }

  MaskSet out;
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    out.set(prunable[pi]->name,
            mask_from_group_keep(*prunable[pi], config.granularity, keep[pi]));
  }
  return out;
}

MaskSet omp_prune(ResNet& model, const OmpConfig& config) {
  MaskSet masks = omp_mask(model, config);
  masks.apply(model);
  return masks;
}

}  // namespace rt
