#pragma once
// One-shot magnitude pruning (OMP, scheme ① of the paper).
//
// Prunes the globally smallest-magnitude weights (or weight groups, for
// structured sparsity) of a pretrained model to the target ratio. Robust and
// natural tickets differ only in the pretrained weights the scheme is
// applied to.

#include "models/resnet.hpp"
#include "prune/mask.hpp"

namespace rt {

struct OmpConfig {
  /// Fraction of prunable weights to remove, in [0, 1).
  float sparsity = 0.5f;
  Granularity granularity = Granularity::kElement;
  /// Prune the classifier head too (off by default: the head is replaced per
  /// downstream task).
  bool include_head = false;
};

/// Computes and installs a global magnitude mask over the model's prunable
/// parameters. Returns the mask set (also installed in the model).
MaskSet omp_prune(ResNet& model, const OmpConfig& config);

/// Computes the mask without touching the model.
MaskSet omp_mask(ResNet& model, const OmpConfig& config);

}  // namespace rt
