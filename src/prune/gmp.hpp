#pragma once
// Gradual magnitude pruning (GMP, Zhu & Gupta 2017).
//
// A during-training alternative to the paper's one-shot OMP and iterative
// IMP: sparsity follows the cubic schedule
//   s(e) = s_final * (1 - (1 - e/E)^3)
// while finetuning proceeds, with no weight rewinding. Serves as an ablation
// comparator for the ticket-drawing protocols (rewind vs no-rewind is one of
// the design choices DESIGN.md calls out).

#include "models/resnet.hpp"
#include "prune/mask.hpp"
#include "train/loop.hpp"

namespace rt {

struct GmpConfig {
  float final_sparsity = 0.9f;
  int epochs = 9;
  Granularity granularity = Granularity::kElement;
  SgdConfig sgd{0.02f, 0.9f, 1e-4f};
  int batch_size = 32;
  /// Adversarial inner objective (the A-IMP analogue for GMP).
  bool adversarial = false;
  AttackConfig attack;
  bool verbose = false;
};

/// The cubic schedule value after `epoch` of `total_epochs` (both 0-based /
/// count): 0 at epoch 0, final_sparsity at the last epoch.
float gmp_sparsity_at(float final_sparsity, int epoch, int total_epochs);

/// Finetunes `model` on `data` while progressively pruning to the target
/// sparsity; weights are never rewound. If the head does not match the
/// dataset it is re-initialized first. Returns the final installed masks.
/// Masks are nested across epochs (pruned weights never return).
MaskSet gmp_train_prune(ResNet& model, const Dataset& data,
                        const GmpConfig& config, Rng& rng);

}  // namespace rt
