#pragma once
// Iterative magnitude pruning (IMP) and its adversarial variant A-IMP
// (scheme ② of the paper).
//
// Repeats {train a few epochs, prune the smallest remaining weights, rewind
// the surviving weights to their pretrained values} until the target
// sparsity is reached (Chen et al. transfer-LTH protocol). A-IMP replaces
// the inner training objective with the PGD minimax loss of Eq. 1; run on
// the source task it yields "US" tickets, on the downstream task "DS"
// tickets.

#include "models/resnet.hpp"
#include "prune/mask.hpp"
#include "train/loop.hpp"

namespace rt {

struct ImpConfig {
  float target_sparsity = 0.9f;
  /// Fraction of the REMAINING weights pruned each round (paper: 20%).
  float rate_per_round = 0.2f;
  int epochs_per_round = 3;
  Granularity granularity = Granularity::kElement;

  /// Inner-loop training: adversarial=true gives A-IMP.
  bool adversarial = false;
  AttackConfig attack;
  SgdConfig sgd{0.02f, 0.9f, 1e-4f};
  int batch_size = 32;

  /// Rewind surviving weights to the pretrained values after each round
  /// (LTH protocol). If false, weights keep training across rounds.
  bool rewind_to_pretrained = true;
  bool verbose = false;
};

/// Runs IMP/A-IMP on `model` (which must hold pretrained weights) using
/// `data` for the inner training loop. On return the model holds
/// m ⊙ θ_pre (final mask, rewound weights) and the mask set is returned.
///
/// If the dataset's class count differs from the model head, the head is
/// re-initialized first (the DS case: sparsity patterns are searched with
/// downstream labels).
MaskSet imp_prune(ResNet& model, const Dataset& data, const ImpConfig& config,
                  Rng& rng);

/// Mask snapshot after one IMP round.
struct ImpTrajectoryPoint {
  int round = 0;
  float sparsity = 0.0f;
  MaskSet masks;
};

/// Like imp_prune, but records the mask after every round, so a single
/// iterative run yields tickets at every intermediate sparsity (IMP visits
/// them anyway; re-running per target would waste the shared prefix).
/// On return the model holds the FINAL mask with rewound weights.
std::vector<ImpTrajectoryPoint> imp_prune_trajectory(ResNet& model,
                                                     const Dataset& data,
                                                     const ImpConfig& config,
                                                     Rng& rng);

/// The sparsity reached after `round` rounds at the given per-round rate:
/// 1 - (1 - rate)^round, capped at `target`.
float imp_round_sparsity(float rate, int round, float target);

}  // namespace rt
