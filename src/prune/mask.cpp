#include "prune/mask.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace rt {

const char* granularity_name(Granularity g) {
  switch (g) {
    case Granularity::kElement: return "element";
    case Granularity::kRow: return "row";
    case Granularity::kKernel: return "kernel";
    case Granularity::kChannel: return "channel";
  }
  return "?";
}

std::int64_t group_size(const Parameter& p, Granularity g) {
  if (!p.prunable()) throw std::invalid_argument("group_size: not prunable");
  if (g == Granularity::kElement) return 1;
  if (p.kind == ParamKind::kLinearWeight) {
    return p.value.dim(1);  // whole input row per output neuron
  }
  const std::int64_t k = p.conv_kernel;
  switch (g) {
    case Granularity::kRow: return k;
    case Granularity::kKernel: return k * k;
    case Granularity::kChannel: return p.value.dim(1);  // in_ch * k * k
    default: return 1;
  }
}

std::int64_t group_count(const Parameter& p, Granularity g) {
  return p.value.numel() / group_size(p, g);
}

std::int64_t group_of(const Parameter& p, Granularity g, std::int64_t i) {
  return i / group_size(p, g);
}

std::vector<float> group_scores(const Parameter& p, Granularity g) {
  const std::int64_t gs = group_size(p, g);
  const std::int64_t gc = group_count(p, g);
  std::vector<float> scores(static_cast<std::size_t>(gc), 0.0f);
  const float* w = p.value.data();
  for (std::int64_t i = 0; i < p.value.numel(); ++i) {
    scores[static_cast<std::size_t>(i / gs)] += std::fabs(w[i]);
  }
  const float inv = 1.0f / static_cast<float>(gs);
  for (float& s : scores) s *= inv;
  return scores;
}

Tensor mask_from_group_keep(const Parameter& p, Granularity g,
                            const std::vector<char>& keep) {
  const std::int64_t gs = group_size(p, g);
  if (static_cast<std::int64_t>(keep.size()) != group_count(p, g)) {
    throw std::invalid_argument("mask_from_group_keep: size mismatch");
  }
  Tensor mask(p.value.shape());
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = keep[static_cast<std::size_t>(i / gs)] ? 1.0f : 0.0f;
  }
  return mask;
}

void MaskSet::apply(Module& model) const {
  auto params = model.parameters();
  for (const auto& [name, mask] : masks_) {
    bool found = false;
    for (Parameter* p : params) {
      if (p->name != name) continue;
      p->set_mask(mask);
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument("MaskSet::apply: no parameter named " + name);
    }
  }
}

MaskSet MaskSet::capture(Module& model) {
  MaskSet out;
  for (Parameter* p : model.parameters()) {
    if (p->has_mask()) out.set(p->name, p->mask);
  }
  return out;
}

void MaskSet::set(const std::string& name, Tensor mask) {
  masks_[name] = std::move(mask);
}

bool MaskSet::contains(const std::string& name) const {
  return masks_.count(name) > 0;
}

const Tensor& MaskSet::get(const std::string& name) const {
  auto it = masks_.find(name);
  if (it == masks_.end()) throw std::out_of_range("MaskSet::get: " + name);
  return it->second;
}

double MaskSet::sparsity() const {
  double total = 0.0, kept = 0.0;
  for (const auto& [name, mask] : masks_) {
    total += static_cast<double>(mask.numel());
    kept += static_cast<double>(mask.sum());
  }
  return total > 0.0 ? 1.0 - kept / total : 0.0;
}

void MaskSet::save(const std::string& path) const {
  StateDict state;
  for (const auto& [name, mask] : masks_) state[name] = mask;
  save_state_dict(path, state);
}

MaskSet MaskSet::load(const std::string& path) {
  MaskSet out;
  for (auto& [name, mask] : load_state_dict(path)) {
    out.set(name, std::move(mask));
  }
  return out;
}

double model_sparsity(std::vector<Parameter*> prunable) {
  double total = 0.0, kept = 0.0;
  for (const Parameter* p : prunable) {
    total += static_cast<double>(p->value.numel());
    kept += p->has_mask() ? static_cast<double>(p->mask.sum())
                          : static_cast<double>(p->value.numel());
  }
  return total > 0.0 ? 1.0 - kept / total : 0.0;
}

}  // namespace rt
