#include "prune/gmp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "prune/omp.hpp"

namespace rt {

float gmp_sparsity_at(float final_sparsity, int epoch, int total_epochs) {
  if (total_epochs <= 1) return final_sparsity;
  const float t = std::clamp(
      static_cast<float>(epoch) / static_cast<float>(total_epochs - 1), 0.0f,
      1.0f);
  const float u = 1.0f - t;
  return final_sparsity * (1.0f - u * u * u);
}

MaskSet gmp_train_prune(ResNet& model, const Dataset& data,
                        const GmpConfig& config, Rng& rng) {
  if (config.final_sparsity < 0.0f || config.final_sparsity >= 1.0f) {
    throw std::invalid_argument("gmp: final_sparsity in [0, 1)");
  }
  if (model.head().out_features() != data.num_classes) {
    model.reset_head(data.num_classes, rng);
  }

  TrainLoopConfig epoch_cfg;
  epoch_cfg.epochs = 1;
  epoch_cfg.batch_size = config.batch_size;
  epoch_cfg.sgd = config.sgd;
  epoch_cfg.adversarial = config.adversarial;
  epoch_cfg.attack = config.attack;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Prune first, then train the epoch under the new mask. Already-pruned
    // weights are exactly zero, so global magnitude ranking re-selects them
    // automatically: masks are nested across epochs by construction.
    OmpConfig prune_cfg;
    prune_cfg.sparsity =
        gmp_sparsity_at(config.final_sparsity, epoch, config.epochs);
    prune_cfg.granularity = config.granularity;
    omp_prune(model, prune_cfg);

    // Step decay mirroring the finetuning recipe (1/2 and 3/4 milestones).
    epoch_cfg.sgd.lr = config.sgd.lr;
    if (epoch >= config.epochs / 2) epoch_cfg.sgd.lr *= 0.1f;
    if (epoch >= (3 * config.epochs) / 4) epoch_cfg.sgd.lr *= 0.1f;

    const TrainStats stats = train_classifier(model, data, epoch_cfg, rng);
    if (config.verbose) {
      std::printf("  gmp epoch %2d  sparsity %.3f  loss %.4f  acc %.4f\n",
                  epoch, static_cast<double>(prune_cfg.sparsity),
                  static_cast<double>(stats.final_loss),
                  static_cast<double>(stats.final_train_accuracy));
    }
  }

  // Final prune to hit the exact target, then capture.
  OmpConfig final_cfg;
  final_cfg.sparsity = config.final_sparsity;
  final_cfg.granularity = config.granularity;
  omp_prune(model, final_cfg);
  return MaskSet::capture(model);
}

}  // namespace rt
