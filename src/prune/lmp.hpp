#pragma once
// Learnable mask pruning (LMP, scheme ③ of the paper).
//
// Learns a task-specific binary mask over the FROZEN pretrained weights
// (Eq. 2) with edge-popup-style straight-through estimation [17]: the
// forward pass binarizes per-weight scores to the top-k per layer, and the
// backward pass updates all scores with dL/ds ≈ dL/dw_eff * w_pre. Only the
// scores and the fresh classifier head are optimized; trunk weights stay at
// their pretrained values.

#include "data/dataset.hpp"
#include "models/resnet.hpp"
#include "nn/optim.hpp"
#include "prune/mask.hpp"

namespace rt {

struct LmpConfig {
  /// Fraction of each prunable layer's groups that is masked out.
  float sparsity = 0.5f;
  Granularity granularity = Granularity::kElement;
  int epochs = 12;
  int batch_size = 32;
  float score_lr = 0.1f;
  float score_momentum = 0.9f;
  SgdConfig head_sgd{0.05f, 0.9f, 1e-4f};
  bool verbose = false;
};

/// Learns masks on `data` (a downstream task). On return the model holds
/// m_t ⊙ θ_pre with the learned mask installed; the mask set is returned.
/// The classifier head is re-initialized (and trained) if its width does not
/// match the dataset; its trained weights remain in the model.
MaskSet lmp_learn(ResNet& model, const Dataset& data, const LmpConfig& config,
                  Rng& rng);

}  // namespace rt
