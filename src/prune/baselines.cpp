#include "prune/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/loss.hpp"

namespace rt {

namespace {

void validate_sparsity(float sparsity) {
  if (sparsity < 0.0f || sparsity >= 1.0f) {
    throw std::invalid_argument("baseline prune: sparsity in [0,1)");
  }
}

/// Keeps the `keep_count` highest-scoring groups of one parameter.
std::vector<char> keep_top(const std::vector<float>& scores,
                           std::int64_t keep_count) {
  std::vector<std::int64_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }
  keep_count = std::clamp<std::int64_t>(keep_count, 0,
                                        static_cast<std::int64_t>(scores.size()));
  std::nth_element(order.begin(), order.begin() + keep_count, order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return scores[static_cast<std::size_t>(a)] >
                            scores[static_cast<std::size_t>(b)];
                   });
  std::vector<char> keep(scores.size(), 0);
  for (std::int64_t i = 0; i < keep_count; ++i) {
    keep[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
  }
  return keep;
}

}  // namespace

MaskSet random_prune(ResNet& model, float sparsity, Granularity granularity,
                     Rng& rng) {
  validate_sparsity(sparsity);
  MaskSet out;
  for (Parameter* p : model.prunable_parameters()) {
    const std::int64_t groups = group_count(*p, granularity);
    std::vector<float> scores(static_cast<std::size_t>(groups));
    for (auto& s : scores) s = rng.uniform();
    const auto kept = static_cast<std::int64_t>(
        std::llround((1.0 - static_cast<double>(sparsity)) *
                     static_cast<double>(groups)));
    const auto keep = keep_top(scores, kept);
    Tensor mask = mask_from_group_keep(*p, granularity, keep);
    p->set_mask(mask);
    out.set(p->name, std::move(mask));
  }
  return out;
}

MaskSet layerwise_magnitude_prune(ResNet& model, float sparsity,
                                  Granularity granularity) {
  validate_sparsity(sparsity);
  MaskSet out;
  for (Parameter* p : model.prunable_parameters()) {
    const auto scores = group_scores(*p, granularity);
    const auto kept = static_cast<std::int64_t>(
        std::llround((1.0 - static_cast<double>(sparsity)) *
                     static_cast<double>(scores.size())));
    const auto keep = keep_top(scores, kept);
    Tensor mask = mask_from_group_keep(*p, granularity, keep);
    p->set_mask(mask);
    out.set(p->name, std::move(mask));
  }
  return out;
}

MaskSet snip_prune(ResNet& model, const Dataset& data, const SnipConfig& config,
                   Rng& rng) {
  validate_sparsity(config.sparsity);
  if (model.head().out_features() != data.num_classes) {
    model.reset_head(data.num_classes, rng);
  }
  auto prunable = model.prunable_parameters();

  // Accumulate |grad| over a few minibatches (weights untouched).
  model.zero_grad();
  model.set_training(true);
  const int n = static_cast<int>(data.size());
  const auto batches = make_batches(n, config.batch_size, rng);
  const int used = std::min<int>(config.batches,
                                 static_cast<int>(batches.size()));
  for (int b = 0; b < used; ++b) {
    const Tensor x = gather_images(data.images, batches[static_cast<std::size_t>(b)]);
    const auto y = gather_labels(data.labels, batches[static_cast<std::size_t>(b)]);
    const Tensor logits = model.forward(x);
    const LossResult loss = softmax_cross_entropy(logits, y);
    model.backward(loss.grad_logits);  // grads accumulate across batches
  }

  // Global ranking of group-mean |g * w| sensitivity.
  struct GroupRef {
    float score;
    std::int32_t param;
    std::int64_t group;
    std::int64_t weights;
  };
  std::vector<GroupRef> groups;
  std::int64_t total_weights = 0;
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    Parameter& p = *prunable[pi];
    const std::int64_t gs = group_size(p, config.granularity);
    const std::int64_t gc = group_count(p, config.granularity);
    std::vector<float> scores(static_cast<std::size_t>(gc), 0.0f);
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      scores[static_cast<std::size_t>(i / gs)] +=
          std::fabs(p.grad[i] * p.value[i]);
    }
    for (std::int64_t g = 0; g < gc; ++g) {
      groups.push_back(GroupRef{scores[static_cast<std::size_t>(g)] /
                                    static_cast<float>(gs),
                                static_cast<std::int32_t>(pi), g, gs});
    }
    total_weights += p.value.numel();
  }
  std::sort(groups.begin(), groups.end(),
            [](const GroupRef& a, const GroupRef& b) { return a.score < b.score; });
  const auto target_removed = static_cast<std::int64_t>(
      static_cast<double>(config.sparsity) * static_cast<double>(total_weights));

  std::vector<std::vector<char>> keep(prunable.size());
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    keep[pi].assign(static_cast<std::size_t>(
                        group_count(*prunable[pi], config.granularity)),
                    1);
  }
  std::int64_t removed = 0;
  for (const GroupRef& g : groups) {
    if (removed >= target_removed) break;
    keep[static_cast<std::size_t>(g.param)][static_cast<std::size_t>(g.group)] = 0;
    removed += g.weights;
  }

  model.zero_grad();
  MaskSet out;
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    Tensor mask =
        mask_from_group_keep(*prunable[pi], config.granularity, keep[pi]);
    prunable[pi]->set_mask(mask);
    out.set(prunable[pi]->name, std::move(mask));
  }
  return out;
}

namespace {

/// Accumulates CE gradients over the given fixed batch list (train mode).
void accumulate_gradients(ResNet& model, const Dataset& data,
                          const std::vector<std::vector<int>>& batches,
                          int used) {
  model.zero_grad();
  model.set_training(true);
  for (int b = 0; b < used; ++b) {
    const auto& idx = batches[static_cast<std::size_t>(b)];
    const Tensor x = gather_images(data.images, idx);
    const auto y = gather_labels(data.labels, idx);
    const Tensor logits = model.forward(x);
    const LossResult loss = softmax_cross_entropy(logits, y);
    model.backward(loss.grad_logits);
  }
}

}  // namespace

MaskSet grasp_prune(ResNet& model, const Dataset& data,
                    const GraspConfig& config, Rng& rng) {
  validate_sparsity(config.sparsity);
  if (model.head().out_features() != data.num_classes) {
    model.reset_head(data.num_classes, rng);
  }
  auto prunable = model.prunable_parameters();
  const auto all_params = model.parameters();

  const int n = static_cast<int>(data.size());
  const auto batches = make_batches(n, config.batch_size, rng);
  const int used =
      std::min<int>(config.batches, static_cast<int>(batches.size()));

  // g1 = dL/dtheta at theta (same batches reused for both evaluations so the
  // finite difference sees only the weight perturbation).
  accumulate_gradients(model, data, batches, used);
  std::vector<Tensor> g1, theta0;
  g1.reserve(all_params.size());
  theta0.reserve(all_params.size());
  double g_norm_sq = 0.0;
  for (Parameter* p : all_params) {
    g1.push_back(p->grad);
    theta0.push_back(p->value);  // snapshot for bit-exact restore
    g_norm_sq += static_cast<double>(p->grad.sum_sq());
  }
  const double g_norm = std::sqrt(std::max(g_norm_sq, 1e-20));
  const float delta =
      config.fd_scale / static_cast<float>(g_norm);

  // theta' = theta + delta * g1; g2 = dL/dtheta at theta'.
  for (std::size_t i = 0; i < all_params.size(); ++i) {
    all_params[i]->value.axpy_(delta, g1[i]);
  }
  accumulate_gradients(model, data, batches, used);

  // Restore theta exactly and form Hg = (g2 - g1) / delta on the fly.
  // GraSP score per weight: theta * (Hg); high score => removing the weight
  // *increases* gradient flow, so remove the highest scores.
  struct GroupRef {
    float score;
    std::int32_t param;
    std::int64_t group;
    std::int64_t weights;
  };
  std::vector<GroupRef> groups;
  std::int64_t total_weights = 0;
  std::vector<std::int32_t> prunable_index(all_params.size(), -1);
  for (std::size_t i = 0; i < all_params.size(); ++i) {
    for (std::size_t j = 0; j < prunable.size(); ++j) {
      if (all_params[i] == prunable[j]) {
        prunable_index[i] = static_cast<std::int32_t>(j);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < all_params.size(); ++i) {
    Parameter& p = *all_params[i];
    p.value = theta0[i];  // bit-exact restore from the snapshot
    if (prunable_index[i] < 0) continue;
    const std::int64_t gs = group_size(p, config.granularity);
    const std::int64_t gc = group_count(p, config.granularity);
    std::vector<float> scores(static_cast<std::size_t>(gc), 0.0f);
    for (std::int64_t k = 0; k < p.value.numel(); ++k) {
      const float hg = (p.grad[k] - g1[i][k]) / delta;
      scores[static_cast<std::size_t>(k / gs)] += p.value[k] * hg;
    }
    for (std::int64_t g = 0; g < gc; ++g) {
      groups.push_back(GroupRef{scores[static_cast<std::size_t>(g)] /
                                    static_cast<float>(gs),
                                prunable_index[i], g, gs});
    }
    total_weights += p.value.numel();
  }
  model.zero_grad();

  // Remove the highest theta*(Hg) first.
  std::sort(groups.begin(), groups.end(), [](const GroupRef& a,
                                             const GroupRef& b) {
    return a.score > b.score;
  });
  const auto target_removed = static_cast<std::int64_t>(
      static_cast<double>(config.sparsity) *
      static_cast<double>(total_weights));

  std::vector<std::vector<char>> keep(prunable.size());
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    keep[pi].assign(static_cast<std::size_t>(
                        group_count(*prunable[pi], config.granularity)),
                    1);
  }
  std::int64_t removed = 0;
  for (const GroupRef& g : groups) {
    if (removed >= target_removed) break;
    keep[static_cast<std::size_t>(g.param)][static_cast<std::size_t>(g.group)] =
        0;
    removed += g.weights;
  }

  MaskSet out;
  for (std::size_t pi = 0; pi < prunable.size(); ++pi) {
    Tensor mask =
        mask_from_group_keep(*prunable[pi], config.granularity, keep[pi]);
    prunable[pi]->set_mask(mask);
    out.set(prunable[pi]->name, std::move(mask));
  }
  return out;
}

}  // namespace rt
