#include "analysis/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rt {

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("pearson: matching inputs, n >= 2");
  }
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> rank_transform(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Positions i..j share the value; all get the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y) {
  return pearson_correlation(rank_transform(x), rank_transform(y));
}

}  // namespace rt
