#pragma once
// Mask-set comparison statistics.
//
// "Do robust and natural pretraining select different subnetworks?" is the
// structural half of the paper's why-question: if OMP masks were nearly
// identical, the transfer gap would have to come from the surviving weight
// VALUES; if they diverge, the robustness prior changes the architecture of
// the ticket itself. These statistics quantify that divergence against the
// random-overlap null.

#include <map>
#include <string>

#include "prune/mask.hpp"

namespace rt {

/// Overlap statistics between two binary masks / mask sets.
struct MaskOverlap {
  double iou = 0.0;        ///< |kept_a AND kept_b| / |kept_a OR kept_b|
  double agreement = 0.0;  ///< fraction of positions with equal mask bits
  /// IoU two independent random masks with the same densities would get in
  /// expectation: da*db / (da + db - da*db). The excess iou - expected_iou
  /// measures genuine structural similarity.
  double expected_iou = 0.0;
  std::int64_t positions = 0;
};

/// Overlap over all weights of the shared mask names. Throws if the sets
/// share no names or shapes mismatch.
MaskOverlap mask_overlap(const MaskSet& a, const MaskSet& b);

/// Per-layer overlap, keyed by parameter name (shared names only).
std::map<std::string, MaskOverlap> mask_overlap_by_layer(const MaskSet& a,
                                                         const MaskSet& b);

/// Fraction of weights KEPT per layer (1 - sparsity), keyed by name. Global
/// magnitude pruning produces strongly non-uniform profiles; this exposes
/// where in the network a ticket keeps its capacity.
std::map<std::string, double> keep_profile(const MaskSet& masks);

}  // namespace rt
