#include "analysis/cka.hpp"

#include <cmath>
#include <stdexcept>

namespace rt {

namespace {

/// Column-centers a copy of (n, d) features.
Tensor center_columns(const Tensor& x) {
  const std::int64_t n = x.dim(0), d = x.dim(1);
  Tensor out = x;
  for (std::int64_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (std::int64_t i = 0; i < n; ++i) mean += x.at(i, j);
    const float m = static_cast<float>(mean / static_cast<double>(n));
    for (std::int64_t i = 0; i < n; ++i) out.at(i, j) -= m;
  }
  return out;
}

double frobenius_sq(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return acc;
}

/// Flattens any (N, ...) tensor to (N, rest).
Tensor flatten_rows(const Tensor& x) {
  std::int64_t rest = 1;
  for (std::size_t i = 1; i < x.ndim(); ++i) rest *= x.dim(i);
  return x.reshape({x.dim(0), rest});
}

}  // namespace

double linear_cka(const Tensor& x, const Tensor& y) {
  if (x.ndim() != 2 || y.ndim() != 2 || x.dim(0) != y.dim(0)) {
    throw std::invalid_argument("linear_cka: (n, d) inputs with equal n");
  }
  if (x.dim(0) < 2) {
    throw std::invalid_argument("linear_cka: need at least 2 examples");
  }
  const Tensor xc = center_columns(x);
  const Tensor yc = center_columns(y);
  // Work with the (d1, d2) cross-covariance form: cheaper than the (n, n)
  // Gram form whenever d < n, and algebraically identical for linear CKA.
  const double cross = frobenius_sq(matmul(yc, xc, /*trans_a=*/true));
  const double xx = frobenius_sq(matmul(xc, xc, /*trans_a=*/true));
  const double yy = frobenius_sq(matmul(yc, yc, /*trans_a=*/true));
  const double denom = std::sqrt(xx) * std::sqrt(yy);
  if (denom <= 0.0) return 0.0;  // a constant representation carries nothing
  return cross / denom;
}

std::vector<double> cka_stage_profile(ResNet& a, ResNet& b,
                                      const Tensor& images) {
  if (a.num_stages() != b.num_stages()) {
    throw std::invalid_argument("cka_stage_profile: stage count mismatch");
  }
  const bool a_training = a.training(), b_training = b.training();
  a.set_training(false);
  b.set_training(false);
  std::vector<double> profile;
  profile.reserve(static_cast<std::size_t>(a.num_stages()) + 1);
  for (int s = 0; s < a.num_stages(); ++s) {
    const Tensor fa = flatten_rows(a.forward_trunk(images, s));
    const Tensor fb = flatten_rows(b.forward_trunk(images, s));
    profile.push_back(linear_cka(fa, fb));
  }
  profile.push_back(
      linear_cka(a.forward_features(images), b.forward_features(images)));
  a.set_training(a_training);
  b.set_training(b_training);
  return profile;
}

}  // namespace rt
