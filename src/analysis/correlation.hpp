#pragma once
// Rank and linear correlation, for the FID-vs-winner analysis.
//
// Tab. II of the paper orders downstream tasks by FID against the source and
// observes that robust tickets win exactly on the large-FID half. The
// analysis bench sharpens that qualitative table into a Spearman rank
// correlation between per-task FID and the robust-vs-natural accuracy
// margin.

#include <vector>

namespace rt {

/// Pearson linear correlation; throws if sizes differ or n < 2. Returns 0
/// when either input is constant.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Average ranks (1-based), ties receive the mean of their rank range.
std::vector<double> rank_transform(const std::vector<double>& v);

/// Spearman rank correlation = Pearson of the rank transforms.
double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y);

}  // namespace rt
