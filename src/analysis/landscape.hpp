#pragma once
// Loss-landscape sharpness probe.
//
// Flat minima correlate with generalization and transfer; adversarial
// training is widely reported to flatten the loss surface. The probe
// measures the mean/max cross-entropy increase under random weight
// perturbations of a relative radius rho, staying inside the ticket
// subspace (pruned weights are never perturbed), so robust and natural
// tickets can be compared at matched sparsity.

#include "data/dataset.hpp"
#include "models/resnet.hpp"

namespace rt {

struct SharpnessConfig {
  float rho = 0.05f;     ///< relative perturbation radius per parameter
  int directions = 8;    ///< random directions sampled
  int batch_size = 64;
  std::uint64_t seed = 1234;
};

struct SharpnessReport {
  double base_loss = 0.0;
  double mean_increase = 0.0;  ///< mean over directions of L(θ+δ) - L(θ)
  double max_increase = 0.0;
};

/// Evaluates sharpness of the model's CE loss on `data`. Each direction
/// perturbs every parameter tensor by a Gaussian vector rescaled to
/// rho * ||θ_layer|| (layer-normalized, the standard filter-norm trick) and
/// multiplied by the mask where one is installed. Weights are restored
/// bit-exactly afterwards.
SharpnessReport loss_sharpness(ResNet& model, const Dataset& data,
                               const SharpnessConfig& config);

}  // namespace rt
