#include "analysis/landscape.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"

namespace rt {

namespace {

double dataset_ce_loss(ResNet& model, const Dataset& data, int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  double total = 0.0;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(data.size()), batch_size)) {
    const Tensor x = gather_images(data.images, idx);
    const auto y = gather_labels(data.labels, idx);
    const Tensor logits = model.forward(x);
    const LossResult loss = softmax_cross_entropy(logits, y);
    total += static_cast<double>(loss.loss) *
             static_cast<double>(idx.size());
  }
  model.set_training(was_training);
  return total / static_cast<double>(data.size());
}

}  // namespace

SharpnessReport loss_sharpness(ResNet& model, const Dataset& data,
                               const SharpnessConfig& config) {
  SharpnessReport report;
  report.base_loss = dataset_ce_loss(model, data, config.batch_size);

  auto params = model.parameters();
  std::vector<Tensor> snapshot;
  snapshot.reserve(params.size());
  for (Parameter* p : params) snapshot.push_back(p->value);

  Rng rng(config.seed);
  double sum_increase = 0.0;
  for (int dir = 0; dir < config.directions; ++dir) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      Parameter& p = *params[i];
      if (!p.trainable) continue;
      Tensor delta = Tensor::randn(p.value.shape(), rng);
      if (p.has_mask()) delta.mul_(p.mask);  // stay inside the ticket
      const float dnorm = std::sqrt(delta.sum_sq());
      const float wnorm = std::sqrt(p.value.sum_sq());
      if (dnorm <= 0.0f || wnorm <= 0.0f) continue;
      delta.mul_(config.rho * wnorm / dnorm);
      p.value.add_(delta);
    }
    const double perturbed =
        dataset_ce_loss(model, data, config.batch_size);
    const double increase = perturbed - report.base_loss;
    sum_increase += increase;
    report.max_increase = std::max(report.max_increase, increase);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = snapshot[i];  // bit-exact restore
    }
  }
  report.mean_increase =
      sum_increase / std::max(1, config.directions);
  return report;
}

}  // namespace rt
