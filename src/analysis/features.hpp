#pragma once
// Feature-quality probes for pretrained / ticket representations.
//
// The paper attributes robust tickets' transfer advantage to better feature
// representations ([4], [19]). These probes make "better" measurable without
// any finetuning: class separation (Fisher ratio), dimensional richness
// (effective rank), and non-parametric usability (kNN accuracy) of the
// frozen features on a downstream task.

#include <vector>

#include "tensor/tensor.hpp"

namespace rt {

/// Fisher class-separation ratio of (n, d) features:
///   trace(between-class scatter) / trace(within-class scatter).
/// Higher means classes are further apart relative to their spread; a linear
/// probe (the paper's linear-evaluation protocol) thrives on exactly this.
double fisher_separation(const Tensor& features, const std::vector<int>& labels);

/// Effective rank (Roy & Vetterli 2007): exp(entropy of the normalized
/// covariance eigenvalue distribution). Between 1 (all variance in one
/// direction) and d (isotropic). Empirically (bench_analysis_why), robust
/// features have LOWER effective rank on downstream data: their variance
/// concentrates on the few class-relevant shape directions, while natural
/// features spread variance across many brittle high-frequency directions
/// that carry no downstream signal.
double effective_rank(const Tensor& features);

/// k-nearest-neighbour accuracy of frozen features: each test row is
/// classified by majority vote of its k nearest (L2) train rows; ties break
/// toward the nearer neighbour's class.
float knn_probe_accuracy(const Tensor& train_features,
                         const std::vector<int>& train_labels,
                         const Tensor& test_features,
                         const std::vector<int>& test_labels, int k = 5);

}  // namespace rt
