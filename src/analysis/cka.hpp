#pragma once
// Centered kernel alignment (CKA) between feature representations.
//
// Sec. III-F of the paper asks *why* robust tickets transfer better; linear
// CKA (Kornblith et al. 2019) is the standard tool for comparing what two
// networks learned: it is invariant to orthogonal transforms and isotropic
// scaling of either representation, so differences reflect genuinely
// different features rather than rotations of the same ones. The analysis
// bench uses it to show robust and natural tickets diverge most in late
// stages (where task-specific brittle cues live).

#include <vector>

#include "models/resnet.hpp"

namespace rt {

/// Linear CKA between two representations of the same n examples:
///   CKA(X, Y) = ||Yc^T Xc||_F^2 / (||Xc^T Xc||_F ||Yc^T Yc||_F)
/// with column-centered Xc (n, d1), Yc (n, d2). Returns a value in [0, 1]
/// (1 iff the representations are identical up to rotation/scale).
double linear_cka(const Tensor& x, const Tensor& y);

/// Per-stage CKA between two models on the same image batch: entry s
/// compares the (flattened) feature maps after trunk stage s, and the final
/// entry compares the post-GAP features. Models must share the stage layout.
std::vector<double> cka_stage_profile(ResNet& a, ResNet& b,
                                      const Tensor& images);

}  // namespace rt
