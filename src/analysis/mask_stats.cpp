#include "analysis/mask_stats.hpp"

#include <stdexcept>

namespace rt {

namespace {

struct Counts {
  std::int64_t both = 0;
  std::int64_t either = 0;
  std::int64_t equal = 0;
  std::int64_t kept_a = 0;
  std::int64_t kept_b = 0;
  std::int64_t total = 0;

  void accumulate(const Tensor& ma, const Tensor& mb) {
    for (std::int64_t i = 0; i < ma.numel(); ++i) {
      const bool a = ma[i] != 0.0f;
      const bool b = mb[i] != 0.0f;
      both += (a && b) ? 1 : 0;
      either += (a || b) ? 1 : 0;
      equal += (a == b) ? 1 : 0;
      kept_a += a ? 1 : 0;
      kept_b += b ? 1 : 0;
    }
    total += ma.numel();
  }

  MaskOverlap finish() const {
    MaskOverlap out;
    out.positions = total;
    if (total == 0) return out;
    out.iou = either > 0
                  ? static_cast<double>(both) / static_cast<double>(either)
                  : 1.0;  // both masks empty: identical
    out.agreement = static_cast<double>(equal) / static_cast<double>(total);
    const double da = static_cast<double>(kept_a) / static_cast<double>(total);
    const double db = static_cast<double>(kept_b) / static_cast<double>(total);
    const double denom = da + db - da * db;
    out.expected_iou = denom > 0.0 ? (da * db) / denom : 1.0;
    return out;
  }
};

void check_pair(const std::string& name, const Tensor& ma, const Tensor& mb) {
  if (!ma.same_shape(mb)) {
    throw std::invalid_argument("mask_overlap: shape mismatch at " + name);
  }
}

}  // namespace

MaskOverlap mask_overlap(const MaskSet& a, const MaskSet& b) {
  Counts counts;
  for (const auto& [name, ma] : a.masks()) {
    if (!b.contains(name)) continue;
    const Tensor& mb = b.get(name);
    check_pair(name, ma, mb);
    counts.accumulate(ma, mb);
  }
  if (counts.total == 0) {
    throw std::invalid_argument("mask_overlap: no shared mask names");
  }
  return counts.finish();
}

std::map<std::string, MaskOverlap> mask_overlap_by_layer(const MaskSet& a,
                                                         const MaskSet& b) {
  std::map<std::string, MaskOverlap> out;
  for (const auto& [name, ma] : a.masks()) {
    if (!b.contains(name)) continue;
    const Tensor& mb = b.get(name);
    check_pair(name, ma, mb);
    Counts counts;
    counts.accumulate(ma, mb);
    out.emplace(name, counts.finish());
  }
  if (out.empty()) {
    throw std::invalid_argument("mask_overlap_by_layer: no shared names");
  }
  return out;
}

std::map<std::string, double> keep_profile(const MaskSet& masks) {
  std::map<std::string, double> out;
  for (const auto& [name, mask] : masks.masks()) {
    std::int64_t kept = 0;
    for (std::int64_t i = 0; i < mask.numel(); ++i) {
      kept += mask[i] != 0.0f ? 1 : 0;
    }
    out.emplace(name, static_cast<double>(kept) /
                          static_cast<double>(mask.numel()));
  }
  return out;
}

}  // namespace rt
