#include "analysis/features.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/threadpool.hpp"
#include "linalg/stats.hpp"
#include "linalg/sym_eig.hpp"

namespace rt {

double fisher_separation(const Tensor& features,
                         const std::vector<int>& labels) {
  if (features.ndim() != 2 ||
      static_cast<std::int64_t>(labels.size()) != features.dim(0)) {
    throw std::invalid_argument("fisher_separation: (n, d) + n labels");
  }
  const std::int64_t n = features.dim(0), d = features.dim(1);

  // Per-class means and counts.
  std::map<int, std::vector<double>> sums;
  std::map<int, std::int64_t> counts;
  for (std::int64_t i = 0; i < n; ++i) {
    auto& s = sums[labels[static_cast<std::size_t>(i)]];
    s.resize(static_cast<std::size_t>(d), 0.0);
    for (std::int64_t j = 0; j < d; ++j) s[static_cast<std::size_t>(j)] += features.at(i, j);
    ++counts[labels[static_cast<std::size_t>(i)]];
  }
  if (sums.size() < 2) {
    throw std::invalid_argument("fisher_separation: need >= 2 classes");
  }
  std::vector<double> global(static_cast<std::size_t>(d), 0.0);
  for (const auto& [cls, s] : sums) {
    for (std::int64_t j = 0; j < d; ++j) global[static_cast<std::size_t>(j)] += s[static_cast<std::size_t>(j)];
  }
  for (auto& g : global) g /= static_cast<double>(n);

  // trace(S_B) = sum_c n_c ||mu_c - mu||^2 ; trace(S_W) = sum_i ||x_i - mu_{y_i}||^2.
  double between = 0.0;
  for (const auto& [cls, s] : sums) {
    const double nc = static_cast<double>(counts[cls]);
    for (std::int64_t j = 0; j < d; ++j) {
      const double diff = s[static_cast<std::size_t>(j)] / nc - global[static_cast<std::size_t>(j)];
      between += nc * diff * diff;
    }
  }
  double within = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& s = sums[labels[static_cast<std::size_t>(i)]];
    const double nc =
        static_cast<double>(counts[labels[static_cast<std::size_t>(i)]]);
    for (std::int64_t j = 0; j < d; ++j) {
      const double diff = features.at(i, j) - s[static_cast<std::size_t>(j)] / nc;
      within += diff * diff;
    }
  }
  return between / std::max(within, 1e-12);
}

double effective_rank(const Tensor& features) {
  if (features.ndim() != 2 || features.dim(0) < 2) {
    throw std::invalid_argument("effective_rank: (n >= 2, d) features");
  }
  const FeatureStats stats = feature_stats(features);
  const SymEig eig = sym_eig(stats.covariance);
  double total = 0.0;
  for (std::int64_t i = 0; i < eig.eigenvalues.numel(); ++i) {
    total += std::max(0.0, static_cast<double>(eig.eigenvalues[i]));
  }
  if (total <= 0.0) return 1.0;  // constant features: a single direction
  double entropy = 0.0;
  for (std::int64_t i = 0; i < eig.eigenvalues.numel(); ++i) {
    const double p =
        std::max(0.0, static_cast<double>(eig.eigenvalues[i])) / total;
    if (p > 1e-15) entropy -= p * std::log(p);
  }
  return std::exp(entropy);
}

float knn_probe_accuracy(const Tensor& train_features,
                         const std::vector<int>& train_labels,
                         const Tensor& test_features,
                         const std::vector<int>& test_labels, int k) {
  if (train_features.ndim() != 2 || test_features.ndim() != 2 ||
      train_features.dim(1) != test_features.dim(1)) {
    throw std::invalid_argument("knn: matching (n, d) feature matrices");
  }
  if (k < 1) throw std::invalid_argument("knn: k >= 1");
  const std::int64_t n_train = train_features.dim(0);
  const std::int64_t n_test = test_features.dim(0);
  const std::int64_t d = train_features.dim(1);
  const std::int64_t kk = std::min<std::int64_t>(k, n_train);

  // Test points are independent; each chunk gets its own distance scratch.
  std::atomic<std::int64_t> correct{0};
  parallel_for(n_test, [&](std::int64_t begin, std::int64_t end) {
    std::vector<std::pair<float, int>> dist(static_cast<std::size_t>(n_train));
    std::int64_t local_correct = 0;
    for (std::int64_t t = begin; t < end; ++t) {
      for (std::int64_t i = 0; i < n_train; ++i) {
        float acc = 0.0f;
        for (std::int64_t j = 0; j < d; ++j) {
          const float diff = test_features.at(t, j) - train_features.at(i, j);
          acc += diff * diff;
        }
        dist[static_cast<std::size_t>(i)] = {
            acc, train_labels[static_cast<std::size_t>(i)]};
      }
      std::partial_sort(dist.begin(), dist.begin() + kk, dist.end());
      // Majority vote; ties resolve toward the class of the nearest member.
      std::map<int, int> votes;
      for (std::int64_t i = 0; i < kk; ++i) {
        ++votes[dist[static_cast<std::size_t>(i)].second];
      }
      int best_class = dist[0].second;
      int best_votes = 0;
      for (std::int64_t i = 0; i < kk; ++i) {  // iterate in distance order
        const int cls = dist[static_cast<std::size_t>(i)].second;
        if (votes[cls] > best_votes) {
          best_votes = votes[cls];
          best_class = cls;
        }
      }
      if (best_class == test_labels[static_cast<std::size_t>(t)]) {
        ++local_correct;
      }
    }
    correct += local_correct;
  });
  return static_cast<float>(correct.load()) / static_cast<float>(n_test);
}

}  // namespace rt
