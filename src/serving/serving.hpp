#pragma once
// rt::serving — the async, micro-batching, sharded serving front-end over
// engine Sessions.
//
// engine::Session answers one synchronous predict() per calling thread; a
// multi-tenant deployment instead has many clients issuing small requests
// that should share hardware. serving::Server redesigns that boundary:
//
//   serving::ServerOptions opt;
//   opt.shards = 2;                  // Session replicas (tickets may differ)
//   opt.max_batch = 32;              // micro-batch row target
//   opt.max_delay_ms = 0.2;          // coalescing deadline
//   serving::Server server(Engine::compile(*ticket), opt);
//   std::future<Tensor> logits = server.submit(rows);   // any thread
//   Tensor now = server.predict(rows);                  // blocking wrapper
//
// Request rows from all client threads land in a lock-light MPSC queue (the
// producer critical section links one pointer); a coalescer thread packs them
// into cross-request micro-batches — dispatching when `max_batch` rows have
// accumulated or the oldest pending request has waited `max_delay_ms`,
// whichever comes first — and round-robins the batches across the shard
// Sessions as serving-priority scheduler tasks (TaskPriority::kServing), so
// they overtake queued bulk work such as retraining parallel_for leaves.
// Each batch runs Session::run_rows — exactly the chunk unit a synchronous
// predict() dispatches — and its logits are scattered back to the
// per-request futures.
//
// Epochs, hot swap, and A/B routing: a Server is no longer bound to one
// fixed Session fleet. Each installed fleet is an *epoch* — a refcounted
// bundle of {version label, shard Sessions, per-version stats cell}. Every
// request binds to exactly one epoch at submit() time, and micro-batches are
// packed per epoch (a batch runs on one Session, so rows from different
// epochs never share a batch). swap_fleet() atomically replaces the primary
// epoch: new submissions route to the new fleet while requests already bound
// to the old epoch drain on it — zero failed futures, zero dropped rows —
// and the old epoch (Sessions, and the CompiledTicket if nothing else holds
// it) is destroyed by whoever drops its last reference, typically the final
// batch task of the drain. set_candidate() installs a second epoch that
// receives a configured traffic fraction, decided per request by the pure
// function routes_to_candidate(seq, seed, fraction) over the deterministic
// Rng, so any client can recompute exactly which requests the candidate
// owned; per-version stats (rows, rejects, latency histogram) make the
// transfer/evaluate battery an online judge for promote_candidate().
//
// Determinism contract: a sample's logits depend only on its own input row
// (per-plane conv loops, per-element head GEMM accumulation, elementwise
// epilogues), and every micro-batch executes the same serial chunk executor
// a direct Session::predict() call uses. Batch composition therefore cannot
// perturb float accumulation: responses are BITWISE identical to a
// per-request Session::predict() on the plan of the epoch that served them,
// no matter how requests were coalesced, split, or routed.
//
// Prediction cache: with ServerOptions::cache.capacity_rows > 0, submit()
// first probes a sharded content-addressed cache (serving/cache.hpp) keyed
// by row fingerprint + epoch tag. Hit rows are answered immediately from
// cached logits — bitwise what that epoch's Session would have produced —
// and only miss rows continue into the coalescer (compacted, so batches
// carry no redundant rows); their logits populate the cache on completion.
// Epoch tags are unique per installed fleet generation, so a hot swap can
// never serve a predecessor's logits.
//
// Admission control: at most `queue_capacity_rows` rows may be in flight
// (admitted and not yet served — capacity is held from submit() until the
// row's micro-batch finishes executing). submit() past that bound fails the
// returned future with ServerOverloaded immediately (no silent queue or
// batch-backlog growth) and counts the rejection in ServerStats — the
// backpressure signal a load balancer reads.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/scheduler.hpp"
#include "engine/engine.hpp"
#include "serving/cache.hpp"

namespace rt {
namespace serving {

namespace detail {
struct Request;
struct BatchTask;
struct Epoch;
struct Lane;
struct VersionCell;
}  // namespace detail

/// Latency histogram geometry: quarter-octave log-scale buckets over
/// nanoseconds. Buckets 0..3 are exact (0..3 ns); from 4 ns up, each octave
/// [2^e, 2^(e+1)) splits into 4 equal sub-buckets, so relative resolution is
/// a constant ~19% all the way to the top of the 64-bit range. 252 buckets
/// cover every representable latency; recording is two relaxed fetch_adds
/// and integer bit math — no floating point, no locks, no libm.
inline constexpr int kLatencyBuckets = 252;

/// Bucket index for a latency of `ns` nanoseconds.
int latency_bucket(std::uint64_t ns) noexcept;
/// Inclusive upper bound of `bucket`, in microseconds — the value quantiles
/// report (a conservative over-estimate by at most one sub-bucket width).
double latency_bucket_upper_us(int bucket) noexcept;

/// A point-in-time copy of one latency histogram. Quantiles come from the
/// server itself — no client-side timing or per-request sample vectors.
struct LatencySnapshot {
  std::uint64_t count = 0;
  std::array<std::uint64_t, kLatencyBuckets> buckets{};

  /// The upper bound (microseconds) of the bucket containing the p-quantile
  /// observation (p in [0, 1]; e.g. 0.5 → p50, 0.99 → p99). 0 when empty.
  double quantile_us(double p) const;
  void merge(const LatencySnapshot& other);
};

struct ServerOptions {
  /// Session replicas micro-batches are round-robined across. Shards may
  /// serve different compiled variants of one model (dense / CSR / int8) —
  /// every shard plan must share input geometry and class count.
  int shards = 1;
  /// Micro-batch row target; also each shard Session's max_batch.
  int max_batch = 64;
  /// Coalescing deadline: a partial batch is dispatched once the oldest
  /// pending request has waited this long. 0 dispatches whatever has
  /// arrived as soon as the coalescer sees it (no artificial latency).
  double max_delay_ms = 0.1;
  /// Admission bound on in-flight rows: admitted and not yet served
  /// (queued, being packed, or executing on a shard). Held until a row's
  /// micro-batch finishes, so a producer that submits faster than the
  /// fleet serves is backpressured instead of growing an unbounded batch
  /// backlog.
  std::int64_t queue_capacity_rows = 4096;
  /// Version label of the fleet the server is born with (per-version stats
  /// are reported under it). Must be non-empty.
  std::string version = "v0";
  /// Prediction cache (serving/cache.hpp). Off by default; with
  /// capacity_rows > 0, re-seen rows are answered from cached logits
  /// without touching admission or the coalescer.
  CacheOptions cache;
};

/// Monotonic counters plus the live backpressure signal. Aggregate ratios:
/// mean micro-batch fill is batched_rows / batches, and the coalescing gain
/// over per-request dispatch is (submitted_requests - rejected_requests -
/// failed_requests) / batches — rejected and invalid requests never reach a
/// batch, so they must leave the numerator.
struct ServerStats {
  std::uint64_t submitted_requests = 0;
  std::uint64_t submitted_rows = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t failed_requests = 0;    ///< invalid input or shard failure
  std::uint64_t rejected_requests = 0;  ///< admission control (overload)
  std::uint64_t batches = 0;            ///< micro-batches dispatched
  std::uint64_t batched_rows = 0;       ///< rows across all micro-batches
  std::int64_t queued_rows = 0;         ///< in flight: admitted, not served
  std::int64_t capacity_rows = 0;       ///< the admission bound
  std::uint64_t cache_hit_rows = 0;     ///< rows answered from the cache
  std::uint64_t cache_miss_rows = 0;    ///< rows that fell through to a batch
  /// submit()→completion latency of every successfully completed request,
  /// merged across all versions ever served. p50/p99 via quantile_us.
  LatencySnapshot latency;
};

/// Per-version slice of ServerStats. Cells are keyed by version label and
/// live for the server's lifetime, so counters survive a version being
/// swapped out and keep accumulating if it is swapped back in.
struct VersionStats {
  std::string version;
  std::uint64_t requests = 0;  ///< admitted and enqueued
  std::uint64_t rows = 0;      ///< rows across admitted requests
  std::uint64_t completed_requests = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t rejected_requests = 0;  ///< admission failures after routing
  std::uint64_t batches = 0;
  std::uint64_t batched_rows = 0;
  LatencySnapshot latency;  ///< completed requests only
};

/// One deployable fleet: a version label plus the shard plans backing it.
/// Plans must all match the geometry the Server was constructed with.
struct FleetSpec {
  std::string version;
  std::vector<std::shared_ptr<const CompiledTicket>> shard_plans;
};

/// The A/B routing decision as a pure function: does request number `seq`
/// (assigned in submit order) go to the candidate fleet? Deterministic in
/// (seq, seed, fraction) via one Rng stream per request, so a client holding
/// the seed can recompute the exact candidate-owned subset.
bool routes_to_candidate(std::uint64_t seq, std::uint64_t seed,
                         double fraction);

/// submit() failed admission: the queue is at capacity (or the server is
/// shutting down). Carried by the returned future.
class ServerOverloaded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Async, micro-batching, sharded serving front-end. Thread-safe: any number
/// of threads may submit() concurrently, and the fleet-control calls
/// (swap_fleet / set_candidate / promote_candidate) are safe against
/// concurrent submits. Destruction drains — every admitted request's future
/// is fulfilled before the destructor returns.
class Server {
 public:
  /// Single plan replicated across `options.shards` Sessions.
  explicit Server(CompiledTicket plan, const ServerOptions& options = {});
  explicit Server(std::shared_ptr<const CompiledTicket> plan,
                  const ServerOptions& options = {});
  /// Heterogeneous fleet: one Session per plan (options.shards is ignored —
  /// the shard count is shard_plans.size()). All plans must share input
  /// geometry and class count.
  Server(std::vector<std::shared_ptr<const CompiledTicket>> shard_plans,
         const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues an (n, C, H, W) batch of rows for coalesced execution. The
  /// future yields the (n, num_classes) logits, or throws: ServerOverloaded
  /// on admission failure, std::invalid_argument on geometry mismatch, or
  /// whatever a shard threw executing the batch.
  std::future<Tensor> submit(Tensor rows);
  /// Blocking convenience wrapper: submit + get. Takes the batch by value so
  /// rvalue callers hand their buffer over without a copy.
  Tensor predict(Tensor rows);

  /// Atomically replaces the primary fleet. Submissions that arrive after
  /// the swap route to the new epoch; requests already bound to the old one
  /// drain on it (their futures complete normally, bitwise-true to the old
  /// plan). The old epoch's Sessions — and its CompiledTicket, if nothing
  /// else references it — are destroyed when the last in-flight holder
  /// (lane, request, or batch task) drops its reference. Throws
  /// std::invalid_argument if the fleet's geometry does not match the
  /// server's, its version label is empty, or it has no plans.
  void swap_fleet(FleetSpec fleet);
  /// Installs a candidate fleet receiving `fraction` of traffic, decided
  /// per request by routes_to_candidate(seq, seed, fraction). Replaces any
  /// existing candidate (which then drains like a swapped-out primary).
  void set_candidate(FleetSpec fleet, double fraction, std::uint64_t seed);
  /// Removes the candidate (it drains); all new traffic goes to primary.
  void clear_candidate();
  /// The candidate becomes the primary (keeping its warm Sessions and its
  /// stats cell); the old primary drains. Returns the promoted version
  /// label. Throws std::logic_error if no candidate is installed.
  std::string promote_candidate();

  ServerStats stats() const;
  /// Point-in-time prediction-cache counters; all zeros when the cache is
  /// off (options.cache.capacity_rows == 0).
  CacheStats cache_stats() const;
  /// One entry per version label ever served, in install order.
  std::vector<VersionStats> version_stats() const;
  std::string primary_version() const;
  /// Empty string when no candidate is installed.
  std::string candidate_version() const;

  /// Blocks until every admitted row has been served and every batch task
  /// has fully retired — the point at which swapped-out epochs have lost all
  /// in-flight references. Callers must quiesce their own submitters first;
  /// rows submitted while draining may extend the wait.
  void drain();

  const ServerOptions& options() const { return options_; }
  /// Shard count of the current primary fleet.
  int shards() const;
  /// A primary shard's plan. The reference is valid until that fleet is
  /// swapped out and drained.
  const CompiledTicket& shard_plan(int shard) const;

 private:
  friend struct detail::BatchTask;

  /// Validates a FleetSpec against the frozen geometry and builds its epoch
  /// (Sessions included) outside any lock. The caller attaches the stats
  /// cell and installs it under route_mutex_.
  std::shared_ptr<detail::Epoch> build_epoch(FleetSpec fleet) const;
  /// The stats cell for `version`, created on first use. route_mutex_ held.
  std::shared_ptr<detail::VersionCell> cell_for_locked(
      const std::string& version);
  void coalescer_main();
  /// Packs `take` rows off one epoch lane into a micro-batch and spawns it
  /// on that epoch's round-robin shard at serving priority.
  void spawn_batch(detail::Lane& lane, std::int64_t take);
  /// Drops one completion token; the last token fulfils the future.
  static void finish_span(detail::Request* request, Server& server);

  ServerOptions options_;

  // Frozen request geometry, set by the fleet the server is born with.
  // Every later fleet must match it, which lets submit() validate without
  // touching any plan.
  std::int64_t in_channels_ = 0;
  std::int64_t height_ = 0;
  std::int64_t width_ = 0;
  std::int64_t num_classes_ = 0;

  // Route table: which epoch a new submission binds to. The mutex guards
  // the epoch pointers, the A/B config, the request sequence counter, and
  // the stats-cell list; it is held only for pointer copies and counter
  // bumps — never across packing, execution, or compilation.
  mutable std::mutex route_mutex_;
  std::shared_ptr<detail::Epoch> primary_;
  std::shared_ptr<detail::Epoch> candidate_;
  double ab_fraction_ = 0.0;
  std::uint64_t ab_seed_ = 0;
  std::uint64_t route_seq_ = 0;
  std::vector<std::shared_ptr<detail::VersionCell>> cells_;

  // Prediction cache (null when options_.cache.capacity_rows == 0) and the
  // epoch-tag source: every epoch build_epoch() produces takes a fresh tag,
  // so cached logits are keyed to the exact fleet generation that computed
  // them (mutable: build_epoch is const and the counter is independently
  // atomic).
  std::unique_ptr<PredictionCache> cache_;
  mutable std::atomic<std::uint64_t> epoch_tag_seq_{0};

  // MPSC handoff to the coalescer. Producers hold the mutex only to link a
  // request pointer and read the stop flag.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<detail::Request*> queue_;
  bool stopping_ = false;

  // Admission control + stats (all independently atomic; stats() snapshots).
  std::atomic<std::int64_t> queued_rows_{0};
  std::atomic<std::uint64_t> submitted_requests_{0};
  std::atomic<std::uint64_t> submitted_rows_{0};
  std::atomic<std::uint64_t> completed_requests_{0};
  std::atomic<std::uint64_t> failed_requests_{0};
  std::atomic<std::uint64_t> rejected_requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};

  /// In-flight micro-batch group. Spawns carry serving priority; the
  /// destructor's wait() is the drain barrier.
  Scheduler& sched_;
  TaskGroup inflight_;
  std::thread coalescer_;
};

}  // namespace serving
}  // namespace rt
