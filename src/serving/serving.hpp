#pragma once
// rt::serving — the async, micro-batching, sharded serving front-end over
// engine Sessions.
//
// engine::Session answers one synchronous predict() per calling thread; a
// multi-tenant deployment instead has many clients issuing small requests
// that should share hardware. serving::Server redesigns that boundary:
//
//   serving::ServerOptions opt;
//   opt.shards = 2;                  // Session replicas (tickets may differ)
//   opt.max_batch = 32;              // micro-batch row target
//   opt.max_delay_ms = 0.2;          // coalescing deadline
//   serving::Server server(Engine::compile(*ticket), opt);
//   std::future<Tensor> logits = server.submit(rows);   // any thread
//   Tensor now = server.predict(rows);                  // blocking wrapper
//
// Request rows from all client threads land in a lock-light MPSC queue (the
// producer critical section links one pointer); a coalescer thread packs them
// into cross-request micro-batches — dispatching when `max_batch` rows have
// accumulated or the oldest pending request has waited `max_delay_ms`,
// whichever comes first — and round-robins the batches across the shard
// Sessions as serving-priority scheduler tasks (TaskPriority::kServing), so
// they overtake queued bulk work such as retraining parallel_for leaves.
// Each batch runs Session::run_rows — exactly the chunk unit a synchronous
// predict() dispatches — and its logits are scattered back to the
// per-request futures.
//
// Determinism contract: a sample's logits depend only on its own input row
// (per-plane conv loops, per-element head GEMM accumulation, elementwise
// epilogues), and every micro-batch executes the same serial chunk executor
// a direct Session::predict() call uses. Batch composition therefore cannot
// perturb float accumulation: with identical shard plans, responses are
// BITWISE identical to per-request Session::predict(), no matter how
// requests were coalesced, split, or routed.
//
// Admission control: at most `queue_capacity_rows` rows may be in flight
// (admitted and not yet served — capacity is held from submit() until the
// row's micro-batch finishes executing). submit() past that bound fails the
// returned future with ServerOverloaded immediately (no silent queue or
// batch-backlog growth) and counts the rejection in ServerStats — the
// backpressure signal a load balancer reads.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/scheduler.hpp"
#include "engine/engine.hpp"

namespace rt {
namespace serving {

namespace detail {
struct Request;
struct BatchTask;
}  // namespace detail

struct ServerOptions {
  /// Session replicas micro-batches are round-robined across. Shards may
  /// serve different compiled variants of one model (dense / CSR / int8) —
  /// every shard plan must share input geometry and class count.
  int shards = 1;
  /// Micro-batch row target; also each shard Session's max_batch.
  int max_batch = 64;
  /// Coalescing deadline: a partial batch is dispatched once the oldest
  /// pending request has waited this long. 0 dispatches whatever has
  /// arrived as soon as the coalescer sees it (no artificial latency).
  double max_delay_ms = 0.1;
  /// Admission bound on in-flight rows: admitted and not yet served
  /// (queued, being packed, or executing on a shard). Held until a row's
  /// micro-batch finishes, so a producer that submits faster than the
  /// fleet serves is backpressured instead of growing an unbounded batch
  /// backlog.
  std::int64_t queue_capacity_rows = 4096;
};

/// Monotonic counters plus the live backpressure signal. Aggregate ratios:
/// mean micro-batch fill is batched_rows / batches, and the coalescing gain
/// over per-request dispatch is (submitted_requests - rejected_requests -
/// failed_requests) / batches — rejected and invalid requests never reach a
/// batch, so they must leave the numerator.
struct ServerStats {
  std::uint64_t submitted_requests = 0;
  std::uint64_t submitted_rows = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t failed_requests = 0;    ///< invalid input or shard failure
  std::uint64_t rejected_requests = 0;  ///< admission control (overload)
  std::uint64_t batches = 0;            ///< micro-batches dispatched
  std::uint64_t batched_rows = 0;       ///< rows across all micro-batches
  std::int64_t queued_rows = 0;         ///< in flight: admitted, not served
  std::int64_t capacity_rows = 0;       ///< the admission bound
};

/// submit() failed admission: the queue is at capacity (or the server is
/// shutting down). Carried by the returned future.
class ServerOverloaded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Async, micro-batching, sharded serving front-end. Thread-safe: any number
/// of threads may submit() concurrently. Destruction drains — every admitted
/// request's future is fulfilled before the destructor returns.
class Server {
 public:
  /// Single plan replicated across `options.shards` Sessions.
  explicit Server(CompiledTicket plan, const ServerOptions& options = {});
  explicit Server(std::shared_ptr<const CompiledTicket> plan,
                  const ServerOptions& options = {});
  /// Heterogeneous fleet: one Session per plan (options.shards is ignored —
  /// the shard count is shard_plans.size()). All plans must share input
  /// geometry and class count.
  Server(std::vector<std::shared_ptr<const CompiledTicket>> shard_plans,
         const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues an (n, C, H, W) batch of rows for coalesced execution. The
  /// future yields the (n, num_classes) logits, or throws: ServerOverloaded
  /// on admission failure, std::invalid_argument on geometry mismatch, or
  /// whatever a shard threw executing the batch.
  std::future<Tensor> submit(Tensor rows);
  /// Blocking convenience wrapper: submit + get. Takes the batch by value so
  /// rvalue callers hand their buffer over without a copy.
  Tensor predict(Tensor rows);

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }
  int shards() const { return static_cast<int>(sessions_.size()); }
  const CompiledTicket& shard_plan(int shard) const;

 private:
  friend struct detail::BatchTask;

  void coalescer_main();
  /// Packs `take` rows off the pending spans into one micro-batch and spawns
  /// it on the round-robin shard at serving priority.
  void spawn_batch(std::deque<detail::Request*>& pending,
                   std::int64_t& front_cursor, std::int64_t& pending_rows,
                   std::int64_t take);
  /// Drops one completion token; the last token fulfils the future.
  static void finish_span(detail::Request* request, Server& server);

  ServerOptions options_;
  std::vector<std::shared_ptr<const CompiledTicket>> plans_;
  std::vector<std::unique_ptr<Session>> sessions_;

  // MPSC handoff to the coalescer. Producers hold the mutex only to link a
  // request pointer and read the stop flag.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<detail::Request*> queue_;
  bool stopping_ = false;

  // Admission control + stats (all independently atomic; stats() snapshots).
  std::atomic<std::int64_t> queued_rows_{0};
  std::atomic<std::uint64_t> submitted_requests_{0};
  std::atomic<std::uint64_t> submitted_rows_{0};
  std::atomic<std::uint64_t> completed_requests_{0};
  std::atomic<std::uint64_t> failed_requests_{0};
  std::atomic<std::uint64_t> rejected_requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_rows_{0};

  /// In-flight micro-batch group. Spawns carry serving priority; the
  /// destructor's wait() is the drain barrier.
  Scheduler& sched_;
  TaskGroup inflight_;
  std::thread coalescer_;
};

}  // namespace serving
}  // namespace rt
