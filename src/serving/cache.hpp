#pragma once
// rt::serving — prediction cache with pluggable eviction policies.
//
// Transfer-learning fleets re-see inputs constantly: monitoring probes replay
// fixed rows, eval batteries re-run identical batches, and edge deployments
// stream near-duplicate frames. Every such row today rides the full
// coalesce→shard→kernel path; this layer answers re-seen rows in microseconds
// instead.
//
//   serving::ServerOptions opt;
//   opt.cache.capacity_rows = 4096;          // 0 (default) = cache off
//   opt.cache.policy = serving::CachePolicy::kArc;
//   serving::Server server(plan, opt);       // hits now bypass the coalescer
//
// Key derivation: a row's cache key is core::row_fingerprint (the FNV-1a
// byte hash behind dataset_fingerprint) over its float payload, mixed with
// the serving epoch's tag via cache_key(). Every installed fleet (primary,
// candidate, each hot-swap generation) gets a fresh tag, so a swapped-in
// version can never serve a predecessor's logits — stale entries become
// unreachable the instant the route table moves and are evicted by capacity
// pressure. Within one epoch, cached logits are the bitwise output of that
// epoch's Session::run_rows on the row (the engine is deterministic), so a
// hit is indistinguishable from a fresh execution. The one caveat is the
// 64-bit fingerprint itself: two distinct rows alias only on an FNV-1a
// collision (~2^-64 per pair), which this layer accepts by design rather
// than storing and comparing 3 KiB of row payload per entry.
//
// Eviction is pluggable behind EvictionPolicy — LRU, LRU-K, CLOCK, and ARC
// ship as real implementations (see cache.cpp for the per-policy contracts)
// — and the cache is sharded: keys hash to one of `shards` independently
// locked segments, each with its own policy instance over a slice of the
// capacity, so concurrent hit traffic from many client threads does not
// serialize on one mutex. bench/bench_cache.cpp races the four policies
// under Zipf, uniform, and scan traffic; tests/test_cache.cpp pins each
// policy's eviction order against a naive reference simulator.
//
// The same policy layer backs registry::PlanCache (bounded retention of
// compiled tickets across hot-swap drains), so "which eviction policy" is
// answered once, here, for both row-level and plan-level caching.

#include <cstdint>
#include <memory>
#include <vector>

namespace rt {
namespace serving {

/// The shipped eviction policies.
enum class CachePolicy {
  kLru,    ///< evict the least-recently-used entry
  kLruK,   ///< O'Neil LRU-K: evict by oldest Kth-most-recent access
  kClock,  ///< second-chance clock: reference bits under a sweeping hand
  kArc,    ///< adaptive replacement: recency/frequency lists + ghost history
};

/// Stable lowercase name ("lru", "lru-k", "clock", "arc") for bench labels
/// and logs.
const char* cache_policy_name(CachePolicy policy);

/// One cache segment's eviction brain. The cache layer calls on_hit for a
/// key whose value it holds, and on_insert when it is about to store a new
/// key's value; the policy answers with the keys whose values must be
/// dropped to respect its capacity. Policies may remember evicted keys
/// internally (ARC's ghost lists) — `tracked()` counts only keys whose
/// values are live. Implementations are deliberately NOT thread-safe: the
/// owning shard's mutex serializes access.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// `key` (currently tracked) was referenced.
  virtual void on_hit(std::uint64_t key) = 0;
  /// `key` (not currently tracked) is about to be cached. Appends zero or
  /// more victim keys to `evicted`; after the call `key` is tracked and
  /// tracked() <= capacity holds.
  virtual void on_insert(std::uint64_t key,
                         std::vector<std::uint64_t>& evicted) = 0;
  /// Number of keys whose values are currently live.
  virtual std::int64_t tracked() const = 0;
  virtual const char* name() const = 0;
};

/// Factory for the shipped policies. `capacity` must be >= 1; `lru_k` (the
/// K of LRU-K, ignored by the others) must be >= 2. Throws
/// std::invalid_argument otherwise.
std::unique_ptr<EvictionPolicy> make_eviction_policy(CachePolicy policy,
                                                     std::int64_t capacity,
                                                     int lru_k = 2);

/// Prediction-cache configuration, embedded in ServerOptions.
struct CacheOptions {
  /// Total cached rows across all shards. 0 disables the cache entirely
  /// (the default — caching is opt-in per server).
  std::int64_t capacity_rows = 0;
  /// Eviction policy instantiated per shard. ARC is the default: it matches
  /// LRU on pure recency traffic and degrades gracefully under scans.
  CachePolicy policy = CachePolicy::kArc;
  /// Lock shards. The effective count is clamped to [1, capacity_rows];
  /// capacity divides across shards (remainder to the first shards).
  int shards = 8;
  /// K for CachePolicy::kLruK (>= 2); ignored by the other policies.
  int lru_k = 2;
};

/// Point-in-time cache counters, aggregated across shards.
struct CacheStats {
  std::uint64_t hit_rows = 0;       ///< lookups answered from cache
  std::uint64_t miss_rows = 0;      ///< lookups that fell through
  std::uint64_t inserted_rows = 0;  ///< values stored (post-inference fills)
  std::uint64_t evicted_rows = 0;   ///< values dropped by policy pressure
  std::int64_t size_rows = 0;       ///< values currently held
  std::int64_t capacity_rows = 0;   ///< configured bound (0 = cache off)
};

/// Mixes a row's content fingerprint with its serving epoch's tag into the
/// final cache key (splitmix64 finalizer — invertible, so no entropy lost).
/// Pure function: clients and tests can recompute any row's key.
std::uint64_t cache_key(std::uint64_t row_fingerprint,
                        std::uint64_t epoch_tag) noexcept;

/// Sharded, thread-safe map from cache key to one logits row. Values are
/// fixed-width (`value_floats` floats, the served model's class count).
/// Any number of threads may lookup/insert concurrently; each key maps to
/// exactly one shard, and a shard's mutex covers its map, its policy, and
/// its counters.
class PredictionCache {
 public:
  /// Throws std::invalid_argument unless capacity_rows >= 1, shards >= 1,
  /// lru_k >= 2, and value_floats >= 1.
  PredictionCache(const CacheOptions& options, std::int64_t value_floats);
  ~PredictionCache();

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  /// On hit, copies the cached row into `out` (value_floats floats),
  /// notifies the policy, and returns true. Steady-state allocation-free.
  bool lookup(std::uint64_t key, float* out);
  /// Stores a copy of `value` under `key` and applies policy eviction. A
  /// key that is already present is left untouched (concurrent misses on
  /// one row race to fill it; both computed the same bits, so first wins).
  void insert(std::uint64_t key, const float* value);

  /// Point-in-time counters. Lock-free: counters are relaxed atomics
  /// maintained under each shard's mutex but readable without it, so a
  /// monitoring loop (the net layer's STATS verb) never contends with the
  /// lookup/insert hot path.
  CacheStats stats() const;
  std::int64_t value_floats() const { return value_floats_; }

 private:
  struct Shard;
  Shard& shard_for(std::uint64_t key);

  std::int64_t value_floats_ = 0;
  std::int64_t capacity_rows_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serving
}  // namespace rt
