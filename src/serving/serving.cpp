#include "serving/serving.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/audit.hpp"

namespace rt {
namespace serving {

namespace detail {

/// One admitted request, heap-owned until its last completion token drops.
/// Completion tokens: the coalescer holds one "still packing" token from
/// admission until the request's last row has been placed in a micro-batch,
/// and every dispatched span holds one until its batch finishes. The holder
/// that drops the count to zero fulfils the promise — so a request split
/// across micro-batches resolves exactly once, after all of its rows.
struct Request {
  Tensor input;   ///< (rows, C, H, W), moved from submit()
  Tensor output;  ///< (rows, num_classes), scattered into by batch tasks
  std::promise<Tensor> promise;
  std::int64_t rows = 0;
  std::chrono::steady_clock::time_point enqueued;
  std::atomic<std::int64_t> tokens{1};  ///< packing token + one per span
  std::mutex error_mutex;
  std::exception_ptr error;  ///< first failure; read by the last token holder
};

/// One dispatched micro-batch: packed input rows, their logits, and the
/// scatter map back to the owning requests. Heap-allocated by the coalescer,
/// spawned on the scheduler's serving lane, self-deleting.
struct BatchTask {
  struct Span {
    Request* request;
    std::int64_t request_row0;  ///< first row inside the request
    std::int64_t batch_row0;    ///< first row inside the packed batch
    std::int64_t rows;
  };

  Server* server = nullptr;
  Session* shard = nullptr;
  Tensor input;   ///< (b, C, H, W) cross-request packed rows
  Tensor logits;  ///< (b, num_classes)
  std::vector<Span> spans;

  static void fail(Request* request) {
    std::lock_guard<std::mutex> lock(request->error_mutex);
    RT_AUDIT_LOCK(audit::LockRank::kServingError);
    if (request->error == nullptr) {
      request->error = std::current_exception();
    }
  }

  RT_HOT void operator()() {
    std::unique_ptr<BatchTask> self(this);  // freed on every exit path
    bool ok = true;
    try {
      // The same chunk unit a synchronous Session::predict() dispatches, so
      // coalescing cannot perturb any sample's float accumulation.
      shard->run_rows(input.data(), input.dim(0), logits.data());
    } catch (...) {
      ok = false;
      for (const Span& s : spans) fail(s.request);
    }
    // Admission capacity is held until here — through queueing, packing,
    // and execution — so a producer that never drains its futures hits
    // ServerOverloaded instead of growing an unbounded backlog of
    // dispatched batches. Released before any future resolves, so a client
    // reading stats after get() sees the rows gone.
    server->queued_rows_.fetch_sub(input.dim(0), std::memory_order_relaxed);
    const std::int64_t classes = logits.dim(1);
    for (const Span& s : spans) {
      if (ok) {
        // Disjoint row ranges: spans of one request living in different
        // batches scatter without synchronization.
        std::copy(logits.data() + s.batch_row0 * classes,
                  logits.data() + (s.batch_row0 + s.rows) * classes,
                  s.request->output.data() + s.request_row0 * classes);
      }
      Server::finish_span(s.request, *server);
    }
  }
};

}  // namespace detail

namespace {

void validate_options(const ServerOptions& options) {
  if (options.max_batch < 1) {
    throw std::invalid_argument("ServerOptions: max_batch must be > 0, got " +
                                std::to_string(options.max_batch));
  }
  if (!(options.max_delay_ms >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "ServerOptions: max_delay_ms must be >= 0, got " +
        std::to_string(options.max_delay_ms));
  }
  if (options.queue_capacity_rows < 1) {
    throw std::invalid_argument(
        "ServerOptions: queue_capacity_rows must be >= 1, got " +
        std::to_string(options.queue_capacity_rows));
  }
}

std::vector<std::shared_ptr<const CompiledTicket>> replicate(
    std::shared_ptr<const CompiledTicket> plan, int shards) {
  if (shards < 1) {
    throw std::invalid_argument("ServerOptions: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  return std::vector<std::shared_ptr<const CompiledTicket>>(
      static_cast<std::size_t>(shards), std::move(plan));
}

}  // namespace

Server::Server(CompiledTicket plan, const ServerOptions& options)
    : Server(std::make_shared<const CompiledTicket>(std::move(plan)),
             options) {}

Server::Server(std::shared_ptr<const CompiledTicket> plan,
               const ServerOptions& options)
    : Server(replicate(std::move(plan), options.shards), options) {}

Server::Server(std::vector<std::shared_ptr<const CompiledTicket>> shard_plans,
               const ServerOptions& options)
    : options_(options),
      plans_(std::move(shard_plans)),
      sched_(Scheduler::current()),
      inflight_(sched_, TaskPriority::kServing) {
  validate_options(options_);
  if (plans_.empty()) {
    throw std::invalid_argument("serving::Server: no shard plans");
  }
  for (const auto& plan : plans_) {
    if (plan == nullptr) {
      throw std::invalid_argument("serving::Server: null shard plan");
    }
    // Heterogeneous encodings (dense / CSR / int8) are welcome, but every
    // shard must accept the same rows and emit the same logit shape.
    const CompiledTicket& ref = *plans_.front();
    if (plan->in_channels() != ref.in_channels() ||
        plan->height() != ref.height() || plan->width() != ref.width() ||
        plan->num_classes() != ref.num_classes()) {
      throw std::invalid_argument(
          "serving::Server: shard plans disagree on input geometry or "
          "class count");
    }
  }
  options_.shards = static_cast<int>(plans_.size());
  sessions_.reserve(plans_.size());
  for (const auto& plan : plans_) {
    sessions_.push_back(std::make_unique<Session>(
        plan, SessionOptions{.max_batch = options_.max_batch}));
  }
  coalescer_ = std::thread([this] { coalescer_main(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (coalescer_.joinable()) coalescer_.join();
  // Drain barrier: every dispatched micro-batch has fulfilled its futures
  // before the sessions and plans go away.
  inflight_.wait();
}

const CompiledTicket& Server::shard_plan(int shard) const {
  if (shard < 0 || shard >= shards()) {
    throw std::invalid_argument("serving::Server: shard index out of range");
  }
  return *plans_[static_cast<std::size_t>(shard)];
}

std::future<Tensor> Server::submit(Tensor rows) {
  submitted_requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    plans_.front()->check_input(rows);
    // check_input validates geometry, not row count. A zero-row request
    // would never trip either dispatch condition and hang its future (and
    // the drain), so it must bounce here. Unreachable through Tensor's
    // own positive-extent invariant, but cheap insurance.
    if (rows.ndim() < 1 || rows.dim(0) <= 0) {
      throw std::invalid_argument("serving::Server: empty request");
    }
  } catch (...) {
    failed_requests_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Tensor> failed;
    failed.set_exception(std::current_exception());
    return failed.get_future();
  }
  const std::int64_t n = rows.dim(0);
  submitted_rows_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);

  // Strict admission bound: claim the rows first, undo on overflow.
  const std::int64_t admitted =
      queued_rows_.fetch_add(n, std::memory_order_acq_rel) + n;
  if (admitted > options_.queue_capacity_rows) {
    queued_rows_.fetch_sub(n, std::memory_order_relaxed);
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Tensor> rejected;
    rejected.set_exception(std::make_exception_ptr(ServerOverloaded(
        "serving::Server: queue at capacity (" +
        std::to_string(options_.queue_capacity_rows) + " rows)")));
    return rejected.get_future();
  }

  auto* request = new detail::Request;
  request->input = std::move(rows);
  request->rows = n;
  request->output = Tensor({n, plans_.front()->num_classes()});
  request->enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> result = request->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
    if (stopping_) {
      queued_rows_.fetch_sub(n, std::memory_order_relaxed);
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      request->promise.set_exception(std::make_exception_ptr(
          ServerOverloaded("serving::Server: shutting down")));
      delete request;
      return result;
    }
    queue_.push_back(request);
  }
  queue_cv_.notify_one();
  return result;
}

Tensor Server::predict(Tensor rows) { return submit(std::move(rows)).get(); }

void Server::finish_span(detail::Request* request, Server& server) {
  // acq_rel: a failing span's error write happens-before the last token
  // holder reads it, and every scatter copy happens-before set_value.
  if (request->tokens.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (request->error != nullptr) {
    server.failed_requests_.fetch_add(1, std::memory_order_relaxed);
    request->promise.set_exception(request->error);
  } else {
    server.completed_requests_.fetch_add(1, std::memory_order_relaxed);
    request->promise.set_value(std::move(request->output));
  }
  delete request;
}

void Server::spawn_batch(std::deque<detail::Request*>& pending,
                         std::int64_t& front_cursor,
                         std::int64_t& pending_rows, std::int64_t take) {
  const CompiledTicket& plan = *plans_.front();
  const std::int64_t plane = plan.in_channels() * plan.height() * plan.width();
  const std::int64_t classes = plan.num_classes();

  auto task = std::make_unique<detail::BatchTask>();
  task->server = this;
  const std::uint64_t seq = batches_.fetch_add(1, std::memory_order_relaxed);
  task->shard =
      sessions_[static_cast<std::size_t>(
                    seq % static_cast<std::uint64_t>(sessions_.size()))]
          .get();
  task->input = Tensor({take, plan.in_channels(), plan.height(), plan.width()});
  task->logits = Tensor({take, classes});
  task->spans.reserve(4);

  std::int64_t filled = 0;
  while (filled < take) {
    detail::Request* request = pending.front();
    const std::int64_t n =
        std::min(take - filled, request->rows - front_cursor);
    std::copy(request->input.data() + front_cursor * plane,
              request->input.data() + (front_cursor + n) * plane,
              task->input.data() + filled * plane);
    task->spans.push_back({request, front_cursor, filled, n});
    request->tokens.fetch_add(1, std::memory_order_relaxed);
    front_cursor += n;
    filled += n;
    if (front_cursor == request->rows) {
      // Fully packed: drop the coalescer's token. The span counts added
      // above keep the request alive until its batches finish.
      pending.pop_front();
      front_cursor = 0;
      finish_span(request, *this);
    }
  }
  pending_rows -= take;
  batched_rows_.fetch_add(static_cast<std::uint64_t>(take),
                          std::memory_order_relaxed);
  inflight_.spawn(*task.release());  // self-deletes after execution
}

void Server::coalescer_main() {
  std::deque<detail::Request*> pending;
  std::int64_t front_cursor = 0;  ///< rows of pending.front() already packed
  std::int64_t pending_rows = 0;
  const auto delay =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  const auto max_batch = static_cast<std::int64_t>(options_.max_batch);

  for (;;) {
    bool stop_now = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
      if (pending.empty()) {
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      } else if (queue_.empty() && !stopping_ && delay.count() > 0) {
        // Partial batch waiting: sleep until its deadline or new arrivals.
        queue_cv_.wait_until(lock, pending.front()->enqueued + delay,
                             [&] { return stopping_ || !queue_.empty(); });
      }
      while (!queue_.empty()) {
        pending.push_back(queue_.front());
        queue_.pop_front();
        pending_rows += pending.back()->rows;
      }
      stop_now = stopping_;
    }

    // Full micro-batches dispatch immediately; a partial one only when its
    // deadline expired (max_delay 0 means "whatever has arrived"), or to
    // flush on shutdown.
    while (pending_rows >= max_batch) {
      spawn_batch(pending, front_cursor, pending_rows, max_batch);
    }
    if (pending_rows > 0) {
      const bool expired =
          delay.count() == 0 ||
          std::chrono::steady_clock::now() >= pending.front()->enqueued + delay;
      if (stop_now || expired) {
        spawn_batch(pending, front_cursor, pending_rows, pending_rows);
      }
    }

    // Help phase: the coalescer is the guaranteed executor — a single-lane
    // scheduler, or a fleet whose workers all sit blocked in future.get(),
    // still serves — but packing outranks helping. It executes serving
    // tasks (urgent lane only, so it can never adopt a long bulk leaf) just
    // while there is nothing to pack and no coalescing deadline due; the
    // moment requests arrive it returns to packing and leaves the remaining
    // batches to the workers, so a streaming multicore fleet pipelines
    // instead of serializing its batches on this thread.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
        if (stopping_ || !queue_.empty()) break;
      }
      if (!pending.empty() &&
          std::chrono::steady_clock::now() >=
              pending.front()->enqueued + delay) {
        break;  // a partial batch is due: flush it before helping more
      }
      if (!sched_.help_urgent()) break;
    }

    if (stop_now && pending.empty()) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
      if (queue_.empty()) return;  // nothing raced in before stopping_ rose
    }
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted_requests = submitted_requests_.load(std::memory_order_relaxed);
  s.submitted_rows = submitted_rows_.load(std::memory_order_relaxed);
  s.completed_requests = completed_requests_.load(std::memory_order_relaxed);
  s.failed_requests = failed_requests_.load(std::memory_order_relaxed);
  s.rejected_requests = rejected_requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  s.queued_rows = queued_rows_.load(std::memory_order_relaxed);
  s.capacity_rows = options_.queue_capacity_rows;
  return s;
}

}  // namespace serving
}  // namespace rt
