#include "serving/serving.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "common/audit.hpp"
#include "common/rng.hpp"
#include "core/checkpoint_store.hpp"

namespace rt {
namespace serving {

namespace detail {

/// Lifetime-long stats cell for one version label. Requests bump it from
/// many threads, so every counter is an independent relaxed atomic;
/// snapshots read whatever is there (exact once the server quiesces).
struct VersionCell {
  explicit VersionCell(std::string v) : version(std::move(v)) {}

  const std::string version;
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> rows{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_rows{0};
  std::atomic<std::uint64_t> latency_count{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency{};

  void record_latency(std::uint64_t ns) {
    latency[static_cast<std::size_t>(latency_bucket(ns))].fetch_add(
        1, std::memory_order_relaxed);
    latency_count.fetch_add(1, std::memory_order_relaxed);
  }

  void merge_latency_into(LatencySnapshot& out) const {
    out.count += latency_count.load(std::memory_order_relaxed);
    for (int b = 0; b < kLatencyBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          latency[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    }
  }
};

/// One installed fleet. Refcounted via shared_ptr: the route table holds one
/// reference while the epoch is live, and every bound request, coalescer
/// lane, and dispatched batch task holds one while it is in flight — so a
/// swapped-out epoch (its Sessions, and its CompiledTicket if nothing else
/// shares it) is destroyed exactly when its last in-flight work retires.
struct Epoch {
  std::string version;
  std::vector<std::unique_ptr<Session>> sessions;
  std::shared_ptr<VersionCell> cell;
  std::atomic<std::uint64_t> rr{0};  ///< round-robin shard cursor
  /// Unique per epoch *instance* (not per version label): cache keys mix it
  /// in, so a hot swap — even back to a previously-served version — can
  /// never serve logits a different fleet generation computed.
  std::uint64_t cache_tag = 0;
};

/// One admitted request, heap-owned until its last completion token drops.
/// Completion tokens: the coalescer holds one "still packing" token from
/// admission until the request's last row has been placed in a micro-batch,
/// and every dispatched span holds one until its batch finishes. The holder
/// that drops the count to zero fulfils the promise — so a request split
/// across micro-batches resolves exactly once, after all of its rows.
struct Request {
  Tensor input;   ///< (rows, C, H, W), moved from submit()
  Tensor output;  ///< (rows, num_classes), scattered into by batch tasks
  std::promise<Tensor> promise;
  std::shared_ptr<Epoch> epoch;  ///< the fleet this request is bound to
  std::int64_t rows = 0;
  std::chrono::steady_clock::time_point enqueued;
  std::atomic<std::int64_t> tokens{1};  ///< packing token + one per span
  std::mutex error_mutex;
  std::exception_ptr error;  ///< first failure; read by the last token holder

  // Cache bookkeeping; both empty when the cache is off. With the cache on,
  // `input` holds only the rows that missed: fill_keys[i] is the key miss
  // row i's logits are stored under on completion, and row_map[i] is the
  // output row it scatters to (empty row_map = identity, every row missed).
  std::vector<std::uint64_t> fill_keys;
  std::vector<std::int64_t> row_map;
};

/// The coalescer's per-epoch pending list. A micro-batch executes on one
/// Session, so rows are packed per epoch: each live epoch with pending
/// requests gets a lane, and full/expired batches dispatch per lane.
struct Lane {
  std::shared_ptr<Epoch> epoch;
  std::deque<Request*> q;
  std::int64_t cursor = 0;  ///< rows of q.front() already packed
  std::int64_t rows = 0;
};

/// One dispatched micro-batch: packed input rows, their logits, and the
/// scatter map back to the owning requests. Heap-allocated by the coalescer,
/// spawned on the scheduler's serving lane, self-deleting.
struct BatchTask {
  struct Span {
    Request* request;
    std::int64_t request_row0;  ///< first row inside the request
    std::int64_t batch_row0;    ///< first row inside the packed batch
    std::int64_t rows;
  };

  Server* server = nullptr;
  Session* shard = nullptr;
  std::shared_ptr<Epoch> epoch;  ///< keeps `shard` alive across a hot swap
  Tensor input;                  ///< (b, C, H, W) cross-request packed rows
  Tensor logits;                 ///< (b, num_classes)
  std::vector<Span> spans;

  static void fail(Request* request) {
    std::lock_guard<std::mutex> lock(request->error_mutex);
    RT_AUDIT_LOCK(audit::LockRank::kServingError);
    if (request->error == nullptr) {
      request->error = std::current_exception();
    }
  }

  RT_HOT void operator()() {
    std::unique_ptr<BatchTask> self(this);  // freed on every exit path
    bool ok = true;
    try {
      // The same chunk unit a synchronous Session::predict() dispatches, so
      // coalescing cannot perturb any sample's float accumulation.
      shard->run_rows(input.data(), input.dim(0), logits.data());
    } catch (...) {
      ok = false;
      for (const Span& s : spans) fail(s.request);
    }
    // Admission capacity is held until here — through queueing, packing,
    // and execution — so a producer that never drains its futures hits
    // ServerOverloaded instead of growing an unbounded backlog of
    // dispatched batches. Released before any future resolves, so a client
    // reading stats after get() sees the rows gone.
    server->queued_rows_.fetch_sub(input.dim(0), std::memory_order_relaxed);
    const std::int64_t classes = logits.dim(1);
    for (const Span& s : spans) {
      if (ok) {
        Request* request = s.request;
        if (request->fill_keys.empty()) {
          // Disjoint row ranges: spans of one request living in different
          // batches scatter without synchronization.
          std::copy(logits.data() + s.batch_row0 * classes,
                    logits.data() + (s.batch_row0 + s.rows) * classes,
                    request->output.data() + s.request_row0 * classes);
        } else {
          // Cached path: place each miss row through the scatter map and
          // feed its logits to the cache under the key captured at submit
          // (the epoch tag of the fleet that just computed them — a row
          // served mid-swap fills its own generation's entry, never the
          // successor's).
          for (std::int64_t i = 0; i < s.rows; ++i) {
            const auto miss = static_cast<std::size_t>(s.request_row0 + i);
            const float* src = logits.data() + (s.batch_row0 + i) * classes;
            const std::int64_t out_row = request->row_map.empty()
                                             ? s.request_row0 + i
                                             : request->row_map[miss];
            std::copy(src, src + classes,
                      request->output.data() + out_row * classes);
            server->cache_->insert(request->fill_keys[miss], src);
          }
        }
      }
      Server::finish_span(s.request, *server);
    }
    // `epoch` drops with `self` here — after the queued_rows_ release and
    // every finish_span — so Server::drain() returning means swapped-out
    // epochs have lost all batch-task references.
  }
};

}  // namespace detail

int latency_bucket(std::uint64_t ns) noexcept {
  if (ns < 4) return static_cast<int>(ns);
  const int e = 63 - std::countl_zero(ns);       // floor(log2), >= 2
  const int sub = static_cast<int>((ns >> (e - 2)) & 3u);
  return ((e - 1) << 2) | sub;  // e=2 starts at bucket 4; max 251
}

double latency_bucket_upper_us(int bucket) noexcept {
  if (bucket < 0) return 0.0;
  if (bucket < 4) return static_cast<double>(bucket) * 1e-3;
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  const int e = (bucket >> 2) + 1;
  const int sub = bucket & 3;
  // Top of sub-bucket `sub` of octave [2^e, 2^(e+1)): 2^e + (sub+1)*2^(e-2),
  // exclusive, so the inclusive bound is one nanosecond below.
  const double ns =
      std::ldexp(1.0, e) + (sub + 1) * std::ldexp(1.0, e - 2) - 1.0;
  return ns * 1e-3;
}

double LatencySnapshot::quantile_us(double p) const {
  if (count == 0) return 0.0;
  if (!(p >= 0.0)) p = 0.0;  // also catches NaN
  if (p > 1.0) p = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count)));
  if (target < 1) target = 1;
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    cumulative += buckets[static_cast<std::size_t>(b)];
    if (cumulative >= target) return latency_bucket_upper_us(b);
  }
  return latency_bucket_upper_us(kLatencyBuckets - 1);
}

void LatencySnapshot::merge(const LatencySnapshot& other) {
  count += other.count;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
}

bool routes_to_candidate(std::uint64_t seq, std::uint64_t seed,
                         double fraction) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  // One PCG32 stream per request: the decision depends only on (seed, seq),
  // never on thread interleaving, so the candidate-owned subset is exactly
  // reproducible client-side.
  Rng rng(seed, seq);
  return static_cast<double>(rng.uniform()) < fraction;
}

namespace {

void validate_options(const ServerOptions& options) {
  if (options.max_batch < 1) {
    throw std::invalid_argument("ServerOptions: max_batch must be > 0, got " +
                                std::to_string(options.max_batch));
  }
  if (!(options.max_delay_ms >= 0.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "ServerOptions: max_delay_ms must be >= 0, got " +
        std::to_string(options.max_delay_ms));
  }
  if (options.queue_capacity_rows < 1) {
    throw std::invalid_argument(
        "ServerOptions: queue_capacity_rows must be >= 1, got " +
        std::to_string(options.queue_capacity_rows));
  }
  if (options.version.empty()) {
    throw std::invalid_argument(
        "ServerOptions: version label must be non-empty");
  }
  if (options.cache.capacity_rows < 0) {
    throw std::invalid_argument(
        "ServerOptions: cache.capacity_rows must be >= 0, got " +
        std::to_string(options.cache.capacity_rows));
  }
  // With the cache enabled, PredictionCache's constructor validates the
  // remaining cache fields (shards, lru_k).
}

std::vector<std::shared_ptr<const CompiledTicket>> replicate(
    std::shared_ptr<const CompiledTicket> plan, int shards) {
  if (shards < 1) {
    throw std::invalid_argument("ServerOptions: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  return std::vector<std::shared_ptr<const CompiledTicket>>(
      static_cast<std::size_t>(shards), std::move(plan));
}

}  // namespace

Server::Server(CompiledTicket plan, const ServerOptions& options)
    : Server(std::make_shared<const CompiledTicket>(std::move(plan)),
             options) {}

Server::Server(std::shared_ptr<const CompiledTicket> plan,
               const ServerOptions& options)
    : Server(replicate(std::move(plan), options.shards), options) {}

Server::Server(std::vector<std::shared_ptr<const CompiledTicket>> shard_plans,
               const ServerOptions& options)
    : options_(options),
      sched_(Scheduler::current()),
      inflight_(sched_, TaskPriority::kServing) {
  validate_options(options_);
  if (shard_plans.empty()) {
    throw std::invalid_argument("serving::Server: no shard plans");
  }
  if (shard_plans.front() == nullptr) {
    throw std::invalid_argument("serving::Server: null shard plan");
  }
  // The birth fleet freezes the request geometry every later fleet must
  // match; build_epoch validates the remaining plans against it.
  const CompiledTicket& ref = *shard_plans.front();
  in_channels_ = ref.in_channels();
  height_ = ref.height();
  width_ = ref.width();
  num_classes_ = ref.num_classes();
  options_.shards = static_cast<int>(shard_plans.size());
  if (options_.cache.capacity_rows > 0) {
    cache_ = std::make_unique<PredictionCache>(options_.cache, num_classes_);
  }

  auto epoch = build_epoch({options_.version, std::move(shard_plans)});
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    epoch->cell = cell_for_locked(epoch->version);
    primary_ = std::move(epoch);
  }
  coalescer_ = std::thread([this] { coalescer_main(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (coalescer_.joinable()) coalescer_.join();
  // Drain barrier: every dispatched micro-batch has fulfilled its futures
  // before the epochs (sessions and plans) go away.
  inflight_.wait();
}

std::shared_ptr<detail::Epoch> Server::build_epoch(FleetSpec fleet) const {
  if (fleet.version.empty()) {
    throw std::invalid_argument(
        "serving::Server: fleet version label must be non-empty");
  }
  if (fleet.shard_plans.empty()) {
    throw std::invalid_argument("serving::Server: no shard plans");
  }
  for (const auto& plan : fleet.shard_plans) {
    if (plan == nullptr) {
      throw std::invalid_argument("serving::Server: null shard plan");
    }
    // Heterogeneous encodings (dense / CSR / int8) are welcome, but every
    // fleet ever installed must accept the rows the server was born
    // validating and emit the same logit shape.
    if (plan->in_channels() != in_channels_ || plan->height() != height_ ||
        plan->width() != width_ || plan->num_classes() != num_classes_) {
      throw std::invalid_argument(
          "serving::Server: fleet '" + fleet.version +
          "' disagrees with the server's input geometry or class count");
    }
  }
  auto epoch = std::make_shared<detail::Epoch>();
  epoch->version = std::move(fleet.version);
  epoch->cache_tag =
      epoch_tag_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch->sessions.reserve(fleet.shard_plans.size());
  for (auto& plan : fleet.shard_plans) {
    epoch->sessions.push_back(std::make_unique<Session>(
        std::move(plan), SessionOptions{.max_batch = options_.max_batch}));
  }
  return epoch;
}

std::shared_ptr<detail::VersionCell> Server::cell_for_locked(
    const std::string& version) {
  for (const auto& cell : cells_) {
    if (cell->version == version) return cell;
  }
  cells_.push_back(std::make_shared<detail::VersionCell>(version));
  return cells_.back();
}

void Server::swap_fleet(FleetSpec fleet) {
  // Sessions are built (workspaces allocated) before the route lock is
  // taken, so the swap itself is a pointer exchange.
  auto epoch = build_epoch(std::move(fleet));
  std::shared_ptr<detail::Epoch> retired;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    epoch->cell = cell_for_locked(epoch->version);
    retired = std::move(primary_);
    primary_ = std::move(epoch);
  }
  // `retired` drops its route-table reference here; requests, lanes, and
  // batch tasks still bound to it keep it alive until they drain.
}

void Server::set_candidate(FleetSpec fleet, double fraction,
                           std::uint64_t seed) {
  if (!(fraction >= 0.0 && fraction <= 1.0)) {  // also rejects NaN
    throw std::invalid_argument(
        "serving::Server: A/B fraction must be in [0, 1], got " +
        std::to_string(fraction));
  }
  auto epoch = build_epoch(std::move(fleet));
  std::shared_ptr<detail::Epoch> replaced;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    epoch->cell = cell_for_locked(epoch->version);
    replaced = std::move(candidate_);
    candidate_ = std::move(epoch);
    ab_fraction_ = fraction;
    ab_seed_ = seed;
  }
}

void Server::clear_candidate() {
  std::shared_ptr<detail::Epoch> replaced;
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  replaced = std::move(candidate_);
  candidate_.reset();
  ab_fraction_ = 0.0;
}

std::string Server::promote_candidate() {
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  if (candidate_ == nullptr) {
    throw std::logic_error("serving::Server: no candidate to promote");
  }
  // The candidate keeps its warm Sessions and stats cell; the old primary
  // drains like any swapped-out epoch.
  primary_ = std::move(candidate_);
  candidate_.reset();
  ab_fraction_ = 0.0;
  return primary_->version;
}

std::string Server::primary_version() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  return primary_->version;
}

std::string Server::candidate_version() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  return candidate_ == nullptr ? std::string() : candidate_->version;
}

int Server::shards() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  return static_cast<int>(primary_->sessions.size());
}

const CompiledTicket& Server::shard_plan(int shard) const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
  if (shard < 0 ||
      shard >= static_cast<int>(primary_->sessions.size())) {
    throw std::invalid_argument("serving::Server: shard index out of range");
  }
  return *primary_->sessions[static_cast<std::size_t>(shard)]->plan_handle();
}

void Server::drain() {
  // queued_rows_ covers admitted rows through queueing, packing, and
  // execution; it reaching zero means every batch has run. The TaskGroup
  // wait then barriers the tail of each batch task (scatter + epoch-ref
  // drop), after which swapped-out epochs hold no in-flight references.
  while (queued_rows_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  inflight_.wait();
}

std::future<Tensor> Server::submit(Tensor rows) {
  submitted_requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    // Validation runs against the frozen geometry, not any particular
    // plan, so it needs no route-table access and cannot race a swap.
    if (rows.ndim() != 4 || rows.dim(1) != in_channels_ ||
        rows.dim(2) != height_ || rows.dim(3) != width_) {
      throw std::invalid_argument(
          "serving::Server: request geometry does not match the served "
          "fleet");
    }
    // A zero-row request would never trip either dispatch condition and
    // would hang its future (and the drain), so it must bounce here.
    // Unreachable through Tensor's own positive-extent invariant, but
    // cheap insurance.
    if (rows.dim(0) <= 0) {
      throw std::invalid_argument("serving::Server: empty request");
    }
  } catch (...) {
    failed_requests_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Tensor> failed;
    failed.set_exception(std::current_exception());
    return failed.get_future();
  }
  const std::int64_t n = rows.dim(0);
  submitted_rows_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);

  // Route: bind the request to an epoch. Sequence numbers are assigned
  // under the route lock in submit order; the A/B decision is a pure
  // function of (seq, seed, fraction), so the candidate-owned subset is
  // deterministic given the seed.
  std::shared_ptr<detail::Epoch> epoch;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    const std::uint64_t seq = route_seq_++;
    const bool to_candidate =
        candidate_ != nullptr &&
        routes_to_candidate(seq, ab_seed_, ab_fraction_);
    epoch = to_candidate ? candidate_ : primary_;
  }
  detail::VersionCell& cell = *epoch->cell;

  // Cache probe: hit rows are answered straight from the epoch-tagged cache
  // — bitwise what this epoch's Session would compute — and only miss rows
  // (compacted into a fresh tensor) continue into admission and coalescing.
  const auto t0 = std::chrono::steady_clock::now();
  Tensor output;
  std::vector<std::uint64_t> fill_keys;
  std::vector<std::int64_t> row_map;
  std::int64_t miss_rows = n;
  if (cache_ != nullptr) {
    const std::int64_t plane = in_channels_ * height_ * width_;
    output = Tensor({n, num_classes_});
    fill_keys.reserve(static_cast<std::size_t>(n));
    row_map.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t key =
          cache_key(row_fingerprint(rows.data() + i * plane,
                                    static_cast<std::size_t>(plane)),
                    epoch->cache_tag);
      if (cache_->lookup(key, output.data() + i * num_classes_)) continue;
      row_map.push_back(i);
      fill_keys.push_back(key);
    }
    miss_rows = static_cast<std::int64_t>(row_map.size());
    if (miss_rows == 0) {
      // Every row hit: resolve immediately. The request still counts as
      // admitted + completed for this version, and its (microsecond-scale)
      // latency lands in the histogram like any other.
      cell.requests.fetch_add(1, std::memory_order_relaxed);
      cell.rows.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count();
      cell.record_latency(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
      completed_requests_.fetch_add(1, std::memory_order_relaxed);
      cell.completed.fetch_add(1, std::memory_order_relaxed);
      std::promise<Tensor> ready;
      ready.set_value(std::move(output));
      return ready.get_future();
    }
    if (miss_rows < n) {
      // Compact the misses so micro-batches carry no already-answered rows.
      Tensor compact({miss_rows, in_channels_, height_, width_});
      for (std::int64_t j = 0; j < miss_rows; ++j) {
        const std::int64_t src = row_map[static_cast<std::size_t>(j)];
        std::copy(rows.data() + src * plane, rows.data() + (src + 1) * plane,
                  compact.data() + j * plane);
      }
      rows = std::move(compact);
    } else {
      row_map.clear();  // every row missed: the scatter map is the identity
    }
  }

  // Strict admission bound: claim the (miss) rows first, undo on overflow.
  const std::int64_t admitted =
      queued_rows_.fetch_add(miss_rows, std::memory_order_acq_rel) +
      miss_rows;
  if (admitted > options_.queue_capacity_rows) {
    queued_rows_.fetch_sub(miss_rows, std::memory_order_relaxed);
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    cell.rejected.fetch_add(1, std::memory_order_relaxed);
    std::promise<Tensor> rejected;
    rejected.set_exception(std::make_exception_ptr(ServerOverloaded(
        "serving::Server: queue at capacity (" +
        std::to_string(options_.queue_capacity_rows) + " rows)")));
    return rejected.get_future();
  }

  auto* request = new detail::Request;
  request->input = std::move(rows);
  request->rows = miss_rows;
  request->output =
      cache_ != nullptr ? std::move(output) : Tensor({n, num_classes_});
  request->fill_keys = std::move(fill_keys);
  request->row_map = std::move(row_map);
  request->epoch = std::move(epoch);
  request->enqueued = t0;
  std::future<Tensor> result = request->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
    if (stopping_) {
      queued_rows_.fetch_sub(miss_rows, std::memory_order_relaxed);
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      cell.rejected.fetch_add(1, std::memory_order_relaxed);
      request->promise.set_exception(std::make_exception_ptr(
          ServerOverloaded("serving::Server: shutting down")));
      delete request;
      return result;
    }
    queue_.push_back(request);
    // Counted inside the lock so per-version completed/failed can never
    // transiently exceed requests: completion requires the coalescer to
    // pop, which orders after this critical section.
    cell.requests.fetch_add(1, std::memory_order_relaxed);
    cell.rows.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return result;
}

Tensor Server::predict(Tensor rows) { return submit(std::move(rows)).get(); }

void Server::finish_span(detail::Request* request, Server& server) {
  // acq_rel: a failing span's error write happens-before the last token
  // holder reads it, and every scatter copy happens-before set_value.
  if (request->tokens.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  detail::VersionCell& cell = *request->epoch->cell;
  if (request->error != nullptr) {
    server.failed_requests_.fetch_add(1, std::memory_order_relaxed);
    cell.failed.fetch_add(1, std::memory_order_relaxed);
    request->promise.set_exception(request->error);
  } else {
    // Stats land before set_value, so a client reading stats after get()
    // sees its own request counted and timed.
    const auto elapsed = std::chrono::steady_clock::now() - request->enqueued;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    cell.record_latency(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
    server.completed_requests_.fetch_add(1, std::memory_order_relaxed);
    cell.completed.fetch_add(1, std::memory_order_relaxed);
    request->promise.set_value(std::move(request->output));
  }
  delete request;  // drops the request's epoch reference
}

void Server::spawn_batch(detail::Lane& lane, std::int64_t take) {
  const std::int64_t plane = in_channels_ * height_ * width_;
  detail::Epoch& epoch = *lane.epoch;

  auto task = std::make_unique<detail::BatchTask>();
  task->server = this;
  task->epoch = lane.epoch;
  const std::uint64_t rr = epoch.rr.fetch_add(1, std::memory_order_relaxed);
  task->shard =
      epoch.sessions[static_cast<std::size_t>(
                         rr % static_cast<std::uint64_t>(
                                  epoch.sessions.size()))]
          .get();
  task->input = Tensor({take, in_channels_, height_, width_});
  task->logits = Tensor({take, num_classes_});
  task->spans.reserve(4);

  std::int64_t filled = 0;
  while (filled < take) {
    detail::Request* request = lane.q.front();
    const std::int64_t n = std::min(take - filled, request->rows - lane.cursor);
    std::copy(request->input.data() + lane.cursor * plane,
              request->input.data() + (lane.cursor + n) * plane,
              task->input.data() + filled * plane);
    task->spans.push_back({request, lane.cursor, filled, n});
    request->tokens.fetch_add(1, std::memory_order_relaxed);
    lane.cursor += n;
    filled += n;
    if (lane.cursor == request->rows) {
      // Fully packed: drop the coalescer's token. The span counts added
      // above keep the request alive until its batches finish.
      lane.q.pop_front();
      lane.cursor = 0;
      finish_span(request, *this);
    }
  }
  lane.rows -= take;
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_rows_.fetch_add(static_cast<std::uint64_t>(take),
                          std::memory_order_relaxed);
  epoch.cell->batches.fetch_add(1, std::memory_order_relaxed);
  epoch.cell->batched_rows.fetch_add(static_cast<std::uint64_t>(take),
                                     std::memory_order_relaxed);
  inflight_.spawn(*task.release());  // self-deletes after execution
}

void Server::coalescer_main() {
  // Pending requests, grouped into per-epoch lanes. std::map (ordered, by
  // epoch address) rather than unordered: iteration order only affects
  // dispatch interleaving across epochs, never any request's result, and
  // the live-epoch count is tiny (primary + candidate + whatever drains).
  std::map<detail::Epoch*, detail::Lane> lanes;
  std::int64_t total_rows = 0;
  const auto delay =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.max_delay_ms));
  const auto max_batch = static_cast<std::int64_t>(options_.max_batch);

  // The earliest coalescing deadline across lanes (fronts are each lane's
  // oldest request). Only meaningful while total_rows > 0.
  const auto oldest_deadline = [&lanes, delay] {
    auto best = std::chrono::steady_clock::time_point::max();
    for (const auto& entry : lanes) {
      const detail::Lane& lane = entry.second;
      if (!lane.q.empty()) {
        best = std::min(best, lane.q.front()->enqueued + delay);
      }
    }
    return best;
  };

  for (;;) {
    bool stop_now = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
      if (total_rows == 0) {
        queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      } else if (queue_.empty() && !stopping_ && delay.count() > 0) {
        // Partial batches waiting: sleep until the earliest deadline or new
        // arrivals.
        queue_cv_.wait_until(lock, oldest_deadline(),
                             [&] { return stopping_ || !queue_.empty(); });
      }
      while (!queue_.empty()) {
        detail::Request* request = queue_.front();
        queue_.pop_front();
        detail::Lane& lane = lanes[request->epoch.get()];
        if (lane.epoch == nullptr) lane.epoch = request->epoch;
        lane.q.push_back(request);
        lane.rows += request->rows;
        total_rows += request->rows;
      }
      stop_now = stopping_;
    }

    // Full micro-batches dispatch immediately; a partial lane only when its
    // own oldest request's deadline expired (max_delay 0 means "whatever
    // has arrived"), or to flush on shutdown. Lanes are independent: an
    // epoch mid-drain cannot delay the epoch taking new traffic.
    const auto now = std::chrono::steady_clock::now();
    for (auto it = lanes.begin(); it != lanes.end();) {
      detail::Lane& lane = it->second;
      while (lane.rows >= max_batch) {
        spawn_batch(lane, max_batch);
        total_rows -= max_batch;
      }
      if (lane.rows > 0) {
        const bool expired =
            delay.count() == 0 || now >= lane.q.front()->enqueued + delay;
        if (stop_now || expired) {
          total_rows -= lane.rows;
          spawn_batch(lane, lane.rows);
        }
      }
      // An empty lane drops its epoch reference immediately — a swapped-out
      // epoch must not stay alive pinned by the coalescer.
      it = lane.q.empty() ? lanes.erase(it) : ++it;
    }

    // Help phase: the coalescer is the guaranteed executor — a single-lane
    // scheduler, or a fleet whose workers all sit blocked in future.get(),
    // still serves — but packing outranks helping. It executes serving
    // tasks (urgent lane only, so it can never adopt a long bulk leaf) just
    // while there is nothing to pack and no coalescing deadline due; the
    // moment requests arrive it returns to packing and leaves the remaining
    // batches to the workers, so a streaming multicore fleet pipelines
    // instead of serializing its batches on this thread.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
        if (stopping_ || !queue_.empty()) break;
      }
      if (total_rows > 0 &&
          std::chrono::steady_clock::now() >= oldest_deadline()) {
        break;  // a partial batch is due: flush it before helping more
      }
      if (!sched_.help_urgent()) break;
    }

    if (stop_now && total_rows == 0) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kServingQueue);
      if (queue_.empty()) return;  // nothing raced in before stopping_ rose
    }
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted_requests = submitted_requests_.load(std::memory_order_relaxed);
  s.submitted_rows = submitted_rows_.load(std::memory_order_relaxed);
  s.completed_requests = completed_requests_.load(std::memory_order_relaxed);
  s.failed_requests = failed_requests_.load(std::memory_order_relaxed);
  s.rejected_requests = rejected_requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_rows = batched_rows_.load(std::memory_order_relaxed);
  s.queued_rows = queued_rows_.load(std::memory_order_relaxed);
  s.capacity_rows = options_.queue_capacity_rows;
  if (cache_ != nullptr) {
    const CacheStats c = cache_->stats();
    s.cache_hit_rows = c.hit_rows;
    s.cache_miss_rows = c.miss_rows;
  }
  std::vector<std::shared_ptr<detail::VersionCell>> cells;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    cells = cells_;
  }
  for (const auto& cell : cells) {
    cell->merge_latency_into(s.latency);
  }
  return s;
}

CacheStats Server::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

std::vector<VersionStats> Server::version_stats() const {
  std::vector<std::shared_ptr<detail::VersionCell>> cells;
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kServingRoute);
    cells = cells_;
  }
  std::vector<VersionStats> out;
  out.reserve(cells.size());
  for (const auto& cell : cells) {
    VersionStats v;
    v.version = cell->version;
    v.requests = cell->requests.load(std::memory_order_relaxed);
    v.rows = cell->rows.load(std::memory_order_relaxed);
    v.completed_requests = cell->completed.load(std::memory_order_relaxed);
    v.failed_requests = cell->failed.load(std::memory_order_relaxed);
    v.rejected_requests = cell->rejected.load(std::memory_order_relaxed);
    v.batches = cell->batches.load(std::memory_order_relaxed);
    v.batched_rows = cell->batched_rows.load(std::memory_order_relaxed);
    cell->merge_latency_into(v.latency);
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace serving
}  // namespace rt
