#include "serving/cache.hpp"

#include <algorithm>
#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "common/audit.hpp"

namespace rt {
namespace serving {

const char* cache_policy_name(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLruK:
      return "lru-k";
    case CachePolicy::kClock:
      return "clock";
    case CachePolicy::kArc:
      return "arc";
  }
  return "unknown";
}

std::uint64_t cache_key(std::uint64_t row_fingerprint,
                        std::uint64_t epoch_tag) noexcept {
  // splitmix64 finalizer over fingerprint ⊕ golden-ratio-spread tag: a
  // bijection for fixed tag (no fingerprint entropy lost), and one bit of
  // tag difference avalanches through the whole key.
  std::uint64_t x = row_fingerprint ^ (epoch_tag * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

namespace {

// ---- LRU --------------------------------------------------------------------
// One recency list, MRU at the front. Hit: splice to front (no allocation).
// Insert: push front; past capacity the back (least recent) is the victim.
class LruPolicy final : public EvictionPolicy {
 public:
  explicit LruPolicy(std::int64_t capacity) : capacity_(capacity) {}

  void on_hit(std::uint64_t key) override {
    order_.splice(order_.begin(), order_, where_.at(key));
  }

  void on_insert(std::uint64_t key,
                 std::vector<std::uint64_t>& evicted) override {
    order_.push_front(key);
    where_[key] = order_.begin();
    if (static_cast<std::int64_t>(order_.size()) > capacity_) {
      evicted.push_back(order_.back());
      where_.erase(order_.back());
      order_.pop_back();
    }
  }

  std::int64_t tracked() const override {
    return static_cast<std::int64_t>(order_.size());
  }
  const char* name() const override { return "lru"; }

 private:
  std::int64_t capacity_;
  std::list<std::uint64_t> order_;
  std::map<std::uint64_t, std::list<std::uint64_t>::iterator> where_;
};

// ---- LRU-K ------------------------------------------------------------------
// O'Neil et al.: rank every key by its Kth-most-recent access time on a
// per-policy logical clock (each access ticks it once) and evict the
// minimum. Keys with fewer than K accesses rank as 0 — below every key with
// K — and order among themselves by oldest last access. This is the scan
// barrier: a key must be referenced K times before it can displace any key
// that already has K references, so one sweep of cold keys only ever
// churns the cold cohort.
//
// The rank set holds (kth_last, last, key) tuples. Access times are unique
// (one clock tick per access) so (kth_last, last) never collides across
// keys and ordering is total and deterministic.
class LruKPolicy final : public EvictionPolicy {
 public:
  LruKPolicy(std::int64_t capacity, int k) : capacity_(capacity), k_(k) {}

  void on_hit(std::uint64_t key) override {
    Node& node = nodes_.at(key);
    rank_.erase(rank_key(node, key));
    touch(node);
    rank_.insert(rank_key(node, key));
  }

  void on_insert(std::uint64_t key,
                 std::vector<std::uint64_t>& evicted) override {
    Node& node = nodes_[key];
    touch(node);
    rank_.insert(rank_key(node, key));
    if (static_cast<std::int64_t>(nodes_.size()) > capacity_) {
      const auto victim = *rank_.begin();
      rank_.erase(rank_.begin());
      nodes_.erase(std::get<2>(victim));
      evicted.push_back(std::get<2>(victim));
    }
  }

  std::int64_t tracked() const override {
    return static_cast<std::int64_t>(nodes_.size());
  }
  const char* name() const override { return "lru-k"; }

 private:
  struct Node {
    std::vector<std::uint64_t> hist;  ///< last <= K access times, oldest first
  };

  void touch(Node& node) {
    node.hist.push_back(++clock_);
    if (static_cast<int>(node.hist.size()) > k_) {
      node.hist.erase(node.hist.begin());
    }
  }

  std::tuple<std::uint64_t, std::uint64_t, std::uint64_t> rank_key(
      const Node& node, std::uint64_t key) const {
    const std::uint64_t kth =
        static_cast<int>(node.hist.size()) >= k_ ? node.hist.front() : 0;
    return {kth, node.hist.back(), key};
  }

  std::int64_t capacity_;
  int k_;
  std::uint64_t clock_ = 0;
  std::map<std::uint64_t, Node> nodes_;
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> rank_;
};

// ---- CLOCK ------------------------------------------------------------------
// Second-chance: `capacity` slots on a ring, one reference bit each, a hand
// that sweeps on eviction. Hit: set the bit (O(1), no list surgery). Insert
// into a full ring: the hand clears set bits as it passes and evicts the
// first clear slot, placing the new key there cold (ref = 0) and moving on
// — so a new key must be re-referenced before the hand's next lap to
// survive it.
class ClockPolicy final : public EvictionPolicy {
 public:
  explicit ClockPolicy(std::int64_t capacity) : capacity_(capacity) {
    slots_.reserve(static_cast<std::size_t>(capacity));
  }

  void on_hit(std::uint64_t key) override { slots_[where_.at(key)].ref = true; }

  void on_insert(std::uint64_t key,
                 std::vector<std::uint64_t>& evicted) override {
    if (static_cast<std::int64_t>(slots_.size()) < capacity_) {
      where_[key] = slots_.size();
      slots_.push_back({key, false});
      return;
    }
    while (slots_[hand_].ref) {
      slots_[hand_].ref = false;
      hand_ = (hand_ + 1) % slots_.size();
    }
    evicted.push_back(slots_[hand_].key);
    where_.erase(slots_[hand_].key);
    slots_[hand_] = {key, false};
    where_[key] = hand_;
    hand_ = (hand_ + 1) % slots_.size();
  }

  std::int64_t tracked() const override {
    return static_cast<std::int64_t>(slots_.size());
  }
  const char* name() const override { return "clock"; }

 private:
  struct Slot {
    std::uint64_t key;
    bool ref;
  };

  std::int64_t capacity_;
  std::size_t hand_ = 0;
  std::vector<Slot> slots_;
  std::map<std::uint64_t, std::size_t> where_;
};

// ---- ARC --------------------------------------------------------------------
// Megiddo & Modha's adaptive replacement cache. Live values split between T1
// (seen exactly once since entering) and T2 (seen at least twice); evicted
// keys leave a ghost (key-only) trail in B1/B2. A hit in a ghost list is
// evidence the adaptation target p leans the wrong way: B1 hits grow p
// (favor recency/T1), B2 hits shrink it (favor frequency/T2). Scans flood
// T1/B1 without ever promoting into T2, so the frequent working set
// survives sweeps that would flush plain LRU.
class ArcPolicy final : public EvictionPolicy {
 public:
  explicit ArcPolicy(std::int64_t capacity) : c_(capacity) {}

  void on_hit(std::uint64_t key) override {
    // T1 or T2 hit → MRU of T2 (it has now been seen at least twice).
    Entry& entry = where_.at(key);
    list_of(entry.where).erase(entry.it);
    entry.where = Where::kT2;
    t2_.push_front(key);
    entry.it = t2_.begin();
  }

  void on_insert(std::uint64_t key,
                 std::vector<std::uint64_t>& evicted) override {
    auto ghost = where_.find(key);
    if (ghost != where_.end() && ghost->second.where == Where::kB1) {
      // Ghost hit in B1: recency was evicted too eagerly — grow p.
      p_ = std::min(c_, p_ + std::max<std::int64_t>(
                             1, static_cast<std::int64_t>(b2_.size()) /
                                    static_cast<std::int64_t>(b1_.size())));
      replace(/*from_b2=*/false, evicted);
      promote_ghost_to_t2(ghost->second, key);
      return;
    }
    if (ghost != where_.end() && ghost->second.where == Where::kB2) {
      // Ghost hit in B2: frequency was evicted too eagerly — shrink p.
      p_ = std::max<std::int64_t>(
          0, p_ - std::max<std::int64_t>(
                      1, static_cast<std::int64_t>(b1_.size()) /
                             static_cast<std::int64_t>(b2_.size())));
      replace(/*from_b2=*/true, evicted);
      promote_ghost_to_t2(ghost->second, key);
      return;
    }
    // Brand-new key (cases IV of the paper).
    const auto l1 = static_cast<std::int64_t>(t1_.size() + b1_.size());
    const auto total = l1 + static_cast<std::int64_t>(t2_.size() + b2_.size());
    if (l1 == c_) {
      if (static_cast<std::int64_t>(t1_.size()) < c_) {
        drop_lru(b1_, Where::kB1);
        replace(/*from_b2=*/false, evicted);
      } else {
        // B1 empty and T1 full: the T1 LRU leaves the cache entirely
        // (no ghost — its one reference carries no reuse signal).
        evicted.push_back(t1_.back());
        where_.erase(t1_.back());
        t1_.pop_back();
      }
    } else if (total >= c_) {
      if (total == 2 * c_) drop_lru(b2_, Where::kB2);
      replace(/*from_b2=*/false, evicted);
    }
    t1_.push_front(key);
    where_[key] = Entry{Where::kT1, t1_.begin()};
  }

  std::int64_t tracked() const override {
    return static_cast<std::int64_t>(t1_.size() + t2_.size());
  }
  const char* name() const override { return "arc"; }

  /// The adaptation target (tests observe it to pin ghost-hit adjustment).
  std::int64_t adaptation() const { return p_; }

 private:
  enum class Where { kT1, kT2, kB1, kB2 };
  struct Entry {
    Where where;
    std::list<std::uint64_t>::iterator it;
  };

  std::list<std::uint64_t>& list_of(Where where) {
    switch (where) {
      case Where::kT1:
        return t1_;
      case Where::kT2:
        return t2_;
      case Where::kB1:
        return b1_;
      case Where::kB2:
        return b2_;
    }
    return t1_;
  }

  void drop_lru(std::list<std::uint64_t>& list, Where where) {
    (void)where;
    where_.erase(list.back());
    list.pop_back();
  }

  void promote_ghost_to_t2(Entry& entry, std::uint64_t key) {
    list_of(entry.where).erase(entry.it);
    entry.where = Where::kT2;
    t2_.push_front(key);
    entry.it = t2_.begin();
  }

  /// Demotes one live value to its ghost list to make room. `from_b2` is
  /// the "x was found in B2" disambiguator of the paper's REPLACE.
  void replace(bool from_b2, std::vector<std::uint64_t>& evicted) {
    const auto t1 = static_cast<std::int64_t>(t1_.size());
    const bool take_t1 =
        t1 >= 1 && (t1 > p_ || (from_b2 && t1 == p_) || t2_.empty());
    std::list<std::uint64_t>& from = take_t1 ? t1_ : t2_;
    std::list<std::uint64_t>& ghost = take_t1 ? b1_ : b2_;
    if (from.empty()) return;  // nothing live to demote (c_ tiny, all ghosts)
    const std::uint64_t victim = from.back();
    from.pop_back();
    ghost.push_front(victim);
    where_[victim] = Entry{take_t1 ? Where::kB1 : Where::kB2, ghost.begin()};
    evicted.push_back(victim);
  }

  std::int64_t c_;
  std::int64_t p_ = 0;  ///< target size of T1, adapted by ghost hits
  std::list<std::uint64_t> t1_, t2_, b1_, b2_;
  std::map<std::uint64_t, Entry> where_;
};

}  // namespace

std::unique_ptr<EvictionPolicy> make_eviction_policy(CachePolicy policy,
                                                     std::int64_t capacity,
                                                     int lru_k) {
  if (capacity < 1) {
    throw std::invalid_argument(
        "make_eviction_policy: capacity must be >= 1, got " +
        std::to_string(capacity));
  }
  if (lru_k < 2) {
    throw std::invalid_argument("make_eviction_policy: lru_k must be >= 2, "
                                "got " +
                                std::to_string(lru_k));
  }
  switch (policy) {
    case CachePolicy::kLru:
      return std::make_unique<LruPolicy>(capacity);
    case CachePolicy::kLruK:
      return std::make_unique<LruKPolicy>(capacity, lru_k);
    case CachePolicy::kClock:
      return std::make_unique<ClockPolicy>(capacity);
    case CachePolicy::kArc:
      return std::make_unique<ArcPolicy>(capacity);
  }
  throw std::invalid_argument("make_eviction_policy: unknown policy");
}

// ---- PredictionCache --------------------------------------------------------

/// One lock shard: its slice of the key space, its slice of the capacity,
/// its own policy instance and counters. Everything below the mutex; plain
/// integer counters are cheaper than atomics and already serialized.
struct PredictionCache::Shard {
  mutable std::mutex mutex;  ///< audit::LockRank::kServingCache (leaf)
  std::map<std::uint64_t, std::vector<float>> entries;
  std::unique_ptr<EvictionPolicy> policy;
  std::vector<std::uint64_t> evicted_scratch;
  // Counters are atomics (written under the shard mutex, read lock-free) so
  // stats() — which the net layer serves per STATS request — never contends
  // with the lookup/insert hot path for any shard lock. `size` mirrors
  // entries.size() for the same reason.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> inserted{0};
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::int64_t> size{0};
};

PredictionCache::PredictionCache(const CacheOptions& options,
                                 std::int64_t value_floats)
    : value_floats_(value_floats), capacity_rows_(options.capacity_rows) {
  if (options.capacity_rows < 1) {
    throw std::invalid_argument(
        "PredictionCache: capacity_rows must be >= 1, got " +
        std::to_string(options.capacity_rows));
  }
  if (options.shards < 1) {
    throw std::invalid_argument("PredictionCache: shards must be >= 1, got " +
                                std::to_string(options.shards));
  }
  if (value_floats < 1) {
    throw std::invalid_argument(
        "PredictionCache: value_floats must be >= 1, got " +
        std::to_string(value_floats));
  }
  // Never more shards than capacity rows, so every shard owns >= 1 row;
  // the remainder spreads over the first shards to keep the total exact.
  const auto count = static_cast<std::int64_t>(
      std::min<std::int64_t>(options.shards, options.capacity_rows));
  const std::int64_t base = options.capacity_rows / count;
  const std::int64_t rem = options.capacity_rows % count;
  shards_.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = make_eviction_policy(options.policy, base + (i < rem),
                                         options.lru_k);
    shards_.push_back(std::move(shard));
  }
}

PredictionCache::~PredictionCache() = default;

PredictionCache::Shard& PredictionCache::shard_for(std::uint64_t key) {
  // cache_key() already avalanche-mixed the fingerprint and epoch tag, so
  // a plain modulus spreads keys evenly across any shard count.
  return *shards_[static_cast<std::size_t>(
      key % static_cast<std::uint64_t>(shards_.size()))];
}

RT_HOT bool PredictionCache::lookup(std::uint64_t key, float* out) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  RT_AUDIT_LOCK(audit::LockRank::kServingCache);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.policy->on_hit(key);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  std::copy(it->second.begin(), it->second.end(), out);
  return true;
}

void PredictionCache::insert(std::uint64_t key, const float* value) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  RT_AUDIT_LOCK(audit::LockRank::kServingCache);
  const auto [it, fresh] = shard.entries.try_emplace(key);
  if (!fresh) return;  // racing fills computed identical bits; first wins
  it->second.assign(value, value + value_floats_);
  shard.evicted_scratch.clear();
  shard.policy->on_insert(key, shard.evicted_scratch);
  shard.inserted.fetch_add(1, std::memory_order_relaxed);
  std::int64_t delta = 1;
  for (const std::uint64_t victim : shard.evicted_scratch) {
    shard.entries.erase(victim);
    shard.evicted.fetch_add(1, std::memory_order_relaxed);
    --delta;
  }
  shard.size.fetch_add(delta, std::memory_order_relaxed);
}

CacheStats PredictionCache::stats() const {
  // Lock-free snapshot: counters are relaxed atomics, so a monitoring loop
  // (or the net layer's STATS verb under concurrent load) never stalls the
  // lookup/insert hot path by sweeping every shard mutex.
  CacheStats out;
  out.capacity_rows = capacity_rows_;
  for (const auto& shard : shards_) {
    out.hit_rows += shard->hits.load(std::memory_order_relaxed);
    out.miss_rows += shard->misses.load(std::memory_order_relaxed);
    out.inserted_rows += shard->inserted.load(std::memory_order_relaxed);
    out.evicted_rows += shard->evicted.load(std::memory_order_relaxed);
    out.size_rows += shard->size.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace serving
}  // namespace rt
