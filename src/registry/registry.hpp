#pragma once
// rt::registry — a multi-tenant catalog of named, versioned model snapshots
// with lazy ticket compilation and zero-downtime rollout control.
//
// The serving layer answers "run these rows on this fleet"; the registry
// answers the operational questions above it: which model is this, which
// version owns live traffic, where do its bytes live, and when was it last
// compiled for these kernels?
//
//   registry::Registry reg;
//   const int v1 = reg.publish("cifar", model);          // snapshot + store
//   serving::Server& srv = reg.serve("cifar@latest", sopt, copt);
//   ...
//   const int v2 = reg.publish("cifar", retrained);      // new version
//   reg.start_ab("cifar", "cifar@2", /*fraction=*/0.25, /*seed=*/42);
//   ...judge per-version stats (srv.version_stats())...
//   reg.promote("cifar");          // candidate -> primary, @stable moves
//   reg.deploy("cifar@1");         // or: hot-swap back, zero downtime
//
// Model references are "name", "name@<version>", "name@latest", or
// "name@stable". Publishing snapshots the model's StateDict, fingerprints
// its content, and persists it through the content-addressed CheckpointStore
// (best-effort; the in-memory copy is authoritative). The alias layer is
// movable: @latest follows publish(), @stable follows promote()/set_stable().
//
// Compilation is lazy and cached: compiled() returns a shared CompiledTicket
// memoized under (checkpoint key × CompileOptions fingerprint × kernel-
// numerics version), so two servers deploying "cifar@2" with equal options
// share one plan, and a kernel-source change (kKernelSourceHash) silently
// invalidates everything. The memoization is a two-layer PlanCache: a weak
// sharing layer (concurrent demands for a live plan converge on one copy)
// plus a bounded strong retention layer driven by the same EvictionPolicy
// implementations the serving prediction cache uses — up to
// plan_cache_capacity recently-used tickets survive every external
// reference dropping, so rolling back to a recent version skips
// recompilation entirely. plan_cache_capacity = 0 restores the pure weak
// behavior: a swapped-out fleet's plan is truly freed at drain.
//
// Thread-safety: all methods may be called concurrently. The catalog mutex
// orders control-plane mutations (publish / deploy / promote); the compile
// mutex single-flights plan construction; neither is ever held across the
// other in the outer->inner direction that would invert the documented
// LockRank order (catalog < compile < serving's route).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "engine/plan.hpp"
#include "models/resnet.hpp"
#include "serving/serving.hpp"

namespace rt {
namespace registry {

/// A parsed model reference. selector is "", "latest", "stable", or a
/// decimal version number.
struct ModelRef {
  std::string model;
  std::string selector;
};

/// Parses "name", "name@7", "name@latest", "name@stable". Throws
/// std::invalid_argument on an empty name or a malformed selector.
ModelRef parse_model_ref(const std::string& ref);

/// Canonical string over every compile-affecting CompileOptions field —
/// one third of the compiled-ticket cache key (with the checkpoint key and
/// the kernel-numerics version).
std::string compile_options_fingerprint(const CompileOptions& options);

/// Wire-resolution result for the socket front-end (src/net/): the model's
/// serving endpoint plus the versions a "model@version" reference must be
/// reconciled against before rows are submitted.
struct WireRoute {
  serving::Server* server = nullptr;
  int version = 0;            ///< resolved from the reference
  int live_version = 0;       ///< owner of primary traffic
  int candidate_version = 0;  ///< A/B candidate (0 = none)
};

/// Catalog row describing one published version.
struct VersionInfo {
  int version = 0;
  std::string checkpoint_key;     ///< canonical CheckpointKey string
  std::uint64_t fingerprint = 0;  ///< state_dict content fingerprint
};

struct RegistryOptions {
  /// CheckpointStore root backing published snapshots. "" disables disk;
  /// the registry then works purely from its in-memory copies.
  std::string cache_root = CheckpointStore::default_root();
  /// Compiled tickets the PlanCache retains after every external reference
  /// drops (so re-deploying a recently-served version skips compilation).
  /// 0 = pure weak memoization: plans are freed the moment the last fleet
  /// or caller lets go.
  std::int64_t plan_cache_capacity = 8;
  /// Eviction policy ranking the retained tickets. Plan reuse is dominated
  /// by recency (rollback to the previous version), so plain LRU is the
  /// default.
  serving::CachePolicy plan_cache_policy = serving::CachePolicy::kLru;
};

/// Two-layer compiled-ticket cache: a weak map that makes concurrent
/// demands for a live plan share one copy (and costs nothing once the plan
/// dies), plus a bounded strong layer — driven by a serving::EvictionPolicy
/// — that pins the `capacity` most valuable tickets so they survive
/// swap-out drains. NOT internally synchronized: the Registry serializes
/// all access under its compile mutex.
class PlanCache {
 public:
  /// capacity 0 disables retention (the weak layer still shares);
  /// otherwise the policy ranks which tickets stay pinned.
  PlanCache(std::int64_t capacity, serving::CachePolicy policy);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan for `key`, or nullptr. A retention hit refreshes the
  /// policy; a weak-layer hit (someone still holds the plan) counts too.
  std::shared_ptr<const CompiledTicket> find(const std::string& key);
  /// Records a freshly built plan under `key`: always into the weak layer,
  /// and into the retention layer when enabled (possibly evicting the
  /// policy's victims).
  void insert(const std::string& key,
              const std::shared_ptr<const CompiledTicket>& plan);

  struct Stats {
    std::uint64_t hits = 0;       ///< find() calls that avoided a rebuild
    std::uint64_t misses = 0;     ///< find() calls that fell through
    std::uint64_t evictions = 0;  ///< tickets un-pinned by policy pressure
    std::int64_t retained = 0;    ///< tickets currently pinned
    std::int64_t capacity = 0;    ///< the retention bound (0 = off)
  };
  Stats stats() const;

 private:
  struct Retained {
    std::string key;  ///< full key, so a 64-bit hash alias cannot mix plans
    std::shared_ptr<const CompiledTicket> plan;
  };

  std::int64_t capacity_ = 0;
  std::unique_ptr<serving::EvictionPolicy> policy_;  ///< null when off
  std::map<std::uint64_t, Retained> retained_;
  std::map<std::string, std::weak_ptr<const CompiledTicket>> weak_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Thread-safe catalog of named, versioned model entries that lazily
/// compiles and caches CompiledTickets and drives each model's serving
/// fleet (hot swap, A/B routing, promotion).
class Registry {
 public:
  explicit Registry(RegistryOptions options = {});
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Snapshots `model` as the next version of `name` (1-based, monotonic),
  /// fingerprints its content, persists it through the CheckpointStore
  /// (best-effort), and moves @latest. The model itself is untouched — it
  /// can keep training afterwards. The name must be non-empty and '@'-free.
  /// Non-const because Module::state_dict() walks mutable parameter
  /// references; the model is only read.
  int publish(const std::string& name, ResNet& model);

  /// Catalog inspection.
  std::vector<std::string> models() const;
  std::vector<VersionInfo> versions(const std::string& name) const;
  int latest(const std::string& name) const;
  /// 0 when no stable alias has been set.
  int stable(const std::string& name) const;
  /// Moves the @stable alias to an existing version.
  void set_stable(const std::string& name, int version);

  /// Resolves a reference to a concrete version number. A bare "name"
  /// means @stable when set, @latest otherwise. Throws std::out_of_range
  /// for unknown models/versions, std::invalid_argument for bad syntax,
  /// std::logic_error for "@stable" with no stable set.
  int resolve(const std::string& ref) const;

  /// The compiled plan for a reference — built on first use, then shared
  /// through the PlanCache: keyed by (checkpoint key × options fingerprint
  /// × kernel-numerics version), alive while anyone holds it, and with
  /// plan_cache_capacity > 0 retained beyond that by eviction-policy rank.
  std::shared_ptr<const CompiledTicket> compiled(
      const std::string& ref, const CompileOptions& options = {});

  /// Point-in-time PlanCache counters (hits are avoided recompilations).
  PlanCache::Stats plan_cache_stats();

  /// The model's serving endpoint, created on first call with the resolved
  /// version as its fleet (server_options.shards replicas of one compiled
  /// plan; server_options.version is overwritten with "name@version").
  /// Later calls return the existing server unchanged — use deploy() /
  /// start_ab() to move its traffic.
  serving::Server& serve(const std::string& ref,
                         const serving::ServerOptions& server_options = {},
                         const CompileOptions& compile_options = {});
  /// nullptr when serve() has not been called for this model.
  serving::Server* find_server(const std::string& name);

  /// Resolve-for-wire: the serving endpoint for `ref` — created on first
  /// use, serving the resolved version with the given options — plus the
  /// resolved, live, and candidate version numbers in one consistent
  /// snapshot. The socket front-end uses the version triple to answer
  /// published-but-not-live references with a typed status instead of
  /// silently routing them to whatever fleet happens to own traffic.
  /// Throws what resolve()/serve() throw (unknown model/version, malformed
  /// reference, "@stable" with no stable set).
  WireRoute route_for_wire(const std::string& ref,
                           const serving::ServerOptions& server_options = {},
                           const CompileOptions& compile_options = {});

  /// Compiles the referenced version (cache hit when warm) and atomically
  /// hot-swaps the model's fleet to it: new traffic routes to the new
  /// epoch, in-flight requests drain on the old one, zero failed futures.
  /// Throws std::logic_error if serve() has not created the server yet.
  void deploy(const std::string& ref, const CompileOptions& options = {});

  /// Starts A/B routing `fraction` of the model's traffic to
  /// `candidate_ref`, decided per request by the deterministic
  /// serving::routes_to_candidate(seq, seed, fraction).
  void start_ab(const std::string& name, const std::string& candidate_ref,
                double fraction, std::uint64_t seed,
                const CompileOptions& options = {});
  /// Stops the A/B test; the candidate fleet drains.
  void stop_ab(const std::string& name);
  /// Promotes the running candidate to primary, moves @stable to it, and
  /// ends the A/B test. Returns the promoted version. Throws
  /// std::logic_error when no A/B test is running.
  int promote(const std::string& name);

  /// The version whose fleet owns primary traffic (0 before serve()).
  int live_version(const std::string& name) const;
  /// The version under A/B test (0 when none).
  int candidate_version(const std::string& name) const;

  const CheckpointStore& store() const { return store_; }

 private:
  /// One immutable published snapshot. Slots are never mutated or deleted
  /// after publish, and std::map nodes are address-stable, so a slot
  /// pointer taken under the catalog lock stays valid after it drops.
  struct VersionSlot {
    ResNetConfig config;
    StateDict state;
    CheckpointKey key;
    std::uint64_t fingerprint = 0;
  };
  struct Entry {
    std::map<int, VersionSlot> versions;
    int latest = 0;
    int stable = 0;  ///< 0 = unset
    std::unique_ptr<serving::Server> server;
    int live_version = 0;
    int candidate_version = 0;
  };

  Entry& find_entry_locked(const std::string& name);
  const Entry& find_entry_locked(const std::string& name) const;
  int resolve_locked(const Entry& entry, const ModelRef& ref) const;
  std::shared_ptr<const CompiledTicket> compile_slot(
      const VersionSlot& slot, const CompileOptions& options);

  RegistryOptions options_;
  CheckpointStore store_;

  mutable std::mutex catalog_mutex_;  ///< LockRank::kRegistryCatalog
  std::map<std::string, Entry> catalog_;

  std::mutex compile_mutex_;  ///< LockRank::kRegistryCompile
  /// Weak sharing + bounded strong retention (see PlanCache). Guarded by
  /// compile_mutex_.
  PlanCache plans_;
};

}  // namespace registry
}  // namespace rt
