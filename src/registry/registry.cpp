#include "registry/registry.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/audit.hpp"
#include "common/rng.hpp"
#include "core/kernel_version.hpp"
#include "engine/engine.hpp"

namespace rt {
namespace registry {

namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// The per-version stats label a model's fleets report under.
std::string version_label(const std::string& name, int version) {
  return name + "@" + std::to_string(version);
}

/// FNV-1a over a plan cache key string — the 64-bit handle the eviction
/// policy tracks (the full string stays stored next to the plan, so an
/// astronomically-unlikely hash alias degrades to a miss, never a mix-up).
std::uint64_t plan_key_hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PlanCache::PlanCache(std::int64_t capacity, serving::CachePolicy policy)
    : capacity_(capacity) {
  if (capacity < 0) {
    throw std::invalid_argument(
        "registry::PlanCache: capacity must be >= 0, got " +
        std::to_string(capacity));
  }
  if (capacity > 0) {
    policy_ = serving::make_eviction_policy(policy, capacity);
  }
}

PlanCache::~PlanCache() = default;

std::shared_ptr<const CompiledTicket> PlanCache::find(const std::string& key) {
  if (policy_ != nullptr) {
    const std::uint64_t hash = plan_key_hash(key);
    const auto it = retained_.find(hash);
    if (it != retained_.end() && it->second.key == key) {
      policy_->on_hit(hash);
      ++hits_;
      return it->second.plan;
    }
  }
  const auto weak = weak_.find(key);
  if (weak != weak_.end()) {
    if (std::shared_ptr<const CompiledTicket> live = weak->second.lock()) {
      ++hits_;
      return live;
    }
  }
  ++misses_;
  return nullptr;
}

void PlanCache::insert(const std::string& key,
                       const std::shared_ptr<const CompiledTicket>& plan) {
  // Weak layer: prune expired entries while inserting, so it stays
  // proportional to the set of live plans.
  for (auto dead = weak_.begin(); dead != weak_.end();) {
    dead = dead->second.expired() ? weak_.erase(dead) : std::next(dead);
  }
  weak_[key] = plan;
  if (policy_ == nullptr) return;
  const std::uint64_t hash = plan_key_hash(key);
  const auto it = retained_.find(hash);
  if (it != retained_.end()) {
    if (it->second.key != key) return;  // hash alias: keep the incumbent
    it->second.plan = plan;  // re-built same key (was evicted then re-found)
    policy_->on_hit(hash);
    return;
  }
  retained_[hash] = Retained{key, plan};
  std::vector<std::uint64_t> evicted;
  policy_->on_insert(hash, evicted);
  for (const std::uint64_t victim : evicted) {
    retained_.erase(victim);
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.retained = static_cast<std::int64_t>(retained_.size());
  out.capacity = capacity_;
  return out;
}

ModelRef parse_model_ref(const std::string& ref) {
  ModelRef out;
  const std::size_t at = ref.find('@');
  out.model = ref.substr(0, at);
  if (at != std::string::npos) out.selector = ref.substr(at + 1);
  if (out.model.empty()) {
    throw std::invalid_argument("registry: empty model name in '" + ref +
                                "'");
  }
  if (at != std::string::npos) {
    if (out.selector.empty()) {
      throw std::invalid_argument("registry: empty selector in '" + ref +
                                  "'");
    }
    if (out.selector != "latest" && out.selector != "stable") {
      for (const char c : out.selector) {
        if (c < '0' || c > '9') {
          throw std::invalid_argument(
              "registry: selector must be a version number, 'latest', or "
              "'stable' in '" +
              ref + "'");
        }
      }
    }
  }
  return out;
}

std::string compile_options_fingerprint(const CompileOptions& options) {
  // CheckpointKey gives the same canonical field=value; encoding (and %.6g
  // float folding) the checkpoint identities themselves use.
  CheckpointKey key;
  key.add("h", options.height)
      .add("w", options.width)
      .add("fmt", options.force_format.has_value()
                      ? static_cast<int>(*options.force_format)
                      : -1)
      .add("csr", static_cast<double>(options.csr_max_density))
      .add("compact", static_cast<double>(options.compact_max_row_fraction))
      .add("int8", options.int8_weights)
      .add("bits", options.int8_bits)
      // Native int8 execution and the simulated-PTQ reference produce
      // different logits bits; the compile cache must never alias them.
      .add("native", options.int8_native);
  return key.str();
}

Registry::Registry(RegistryOptions options)
    : options_(std::move(options)),
      store_(options_.cache_root),
      plans_(options_.plan_cache_capacity, options_.plan_cache_policy) {}

Registry::~Registry() = default;

Registry::Entry& Registry::find_entry_locked(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    throw std::out_of_range("registry: unknown model '" + name + "'");
  }
  return it->second;
}

const Registry::Entry& Registry::find_entry_locked(
    const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    throw std::out_of_range("registry: unknown model '" + name + "'");
  }
  return it->second;
}

int Registry::resolve_locked(const Entry& entry, const ModelRef& ref) const {
  if (entry.latest == 0) {
    throw std::out_of_range("registry: model '" + ref.model +
                            "' has no published versions");
  }
  if (ref.selector.empty()) {
    return entry.stable != 0 ? entry.stable : entry.latest;
  }
  if (ref.selector == "latest") return entry.latest;
  if (ref.selector == "stable") {
    if (entry.stable == 0) {
      throw std::logic_error("registry: model '" + ref.model +
                             "' has no stable version set");
    }
    return entry.stable;
  }
  const int version = std::stoi(ref.selector);
  if (entry.versions.find(version) == entry.versions.end()) {
    throw std::out_of_range("registry: model '" + ref.model +
                            "' has no version " + ref.selector);
  }
  return version;
}

int Registry::publish(const std::string& name, ResNet& model) {
  if (name.empty() || name.find('@') != std::string::npos) {
    throw std::invalid_argument(
        "registry: model name must be non-empty and '@'-free, got '" + name +
        "'");
  }
  VersionSlot slot;
  slot.config = model.config();
  slot.state = model.state_dict();
  slot.fingerprint = state_dict_fingerprint(slot.state);
  slot.key.add("kind", "registry-model")
      .add("model", name)
      .add("arch", slot.config.name)
      .add("classes", slot.config.num_classes)
      .add("fp", hex16(slot.fingerprint));
  // Disk publication (best-effort, atomic rename) happens before the
  // catalog lock: it is IO, and the in-memory copy is authoritative anyway.
  // rtlint: allow-next-line(R3) — CheckpointStore::store, not an atomic.
  store_.store(slot.key, slot.state);

  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = catalog_[name];
  const int version = ++entry.latest;
  entry.versions.emplace(version, std::move(slot));
  return version;
}

std::vector<std::string> Registry::models() const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  std::vector<std::string> out;
  out.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) out.push_back(name);
  return out;
}

std::vector<VersionInfo> Registry::versions(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  const Entry& entry = find_entry_locked(name);
  std::vector<VersionInfo> out;
  out.reserve(entry.versions.size());
  for (const auto& [version, slot] : entry.versions) {
    out.push_back({version, slot.key.str(), slot.fingerprint});
  }
  return out;
}

int Registry::latest(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  return find_entry_locked(name).latest;
}

int Registry::stable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  return find_entry_locked(name).stable;
}

void Registry::set_stable(const std::string& name, int version) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(name);
  if (entry.versions.find(version) == entry.versions.end()) {
    throw std::out_of_range("registry: model '" + name + "' has no version " +
                            std::to_string(version));
  }
  entry.stable = version;
}

int Registry::resolve(const std::string& ref) const {
  const ModelRef parsed = parse_model_ref(ref);
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  return resolve_locked(find_entry_locked(parsed.model), parsed);
}

std::shared_ptr<const CompiledTicket> Registry::compiled(
    const std::string& ref, const CompileOptions& options) {
  const ModelRef parsed = parse_model_ref(ref);
  const VersionSlot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
    const Entry& entry = find_entry_locked(parsed.model);
    const int version = resolve_locked(entry, parsed);
    slot = &entry.versions.at(version);
  }
  // Slots are immutable and address-stable (see VersionSlot), so the
  // pointer survives the catalog lock dropping; compilation must not hold
  // the catalog hostage.
  return compile_slot(*slot, options);
}

std::shared_ptr<const CompiledTicket> Registry::compile_slot(
    const VersionSlot& slot, const CompileOptions& options) {
  const std::string cache_key = slot.key.str() + "|" +
                                compile_options_fingerprint(options) +
                                "|kv=" + kKernelSourceHash;
  // One mutex single-flights all compilation: concurrent demands for the
  // same plan wait for one build instead of racing N, and the winner's
  // shared plan is what everyone receives.
  std::lock_guard<std::mutex> lock(compile_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCompile);
  if (std::shared_ptr<const CompiledTicket> hit = plans_.find(cache_key)) {
    return hit;
  }
  // Rebuild an inference model from the snapshot. The Rng seed is
  // irrelevant: load_state overwrites every parameter it initialized, and
  // Engine::compile reads the ticket's sparsity from the weights' zeros.
  Rng rng(0x7e915c);
  ResNet model(slot.config, rng);
  model.load_state(slot.state);
  model.set_training(false);
  auto plan =
      std::make_shared<const CompiledTicket>(Engine::compile(model, options));
  plans_.insert(cache_key, plan);
  return plan;
}

PlanCache::Stats Registry::plan_cache_stats() {
  std::lock_guard<std::mutex> lock(compile_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCompile);
  return plans_.stats();
}

serving::Server& Registry::serve(const std::string& ref,
                                 const serving::ServerOptions& server_options,
                                 const CompileOptions& compile_options) {
  const ModelRef parsed = parse_model_ref(ref);
  const VersionSlot* slot = nullptr;
  int version = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
    Entry& entry = find_entry_locked(parsed.model);
    if (entry.server != nullptr) return *entry.server;
    version = resolve_locked(entry, parsed);
    slot = &entry.versions.at(version);
  }
  std::shared_ptr<const CompiledTicket> plan =
      compile_slot(*slot, compile_options);

  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(parsed.model);
  if (entry.server != nullptr) return *entry.server;  // lost a creation race
  serving::ServerOptions opt = server_options;
  opt.version = version_label(parsed.model, version);
  entry.server = std::make_unique<serving::Server>(std::move(plan), opt);
  entry.live_version = version;
  return *entry.server;
}

serving::Server* Registry::find_server(const std::string& name) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : it->second.server.get();
}

WireRoute Registry::route_for_wire(const std::string& ref,
                                   const serving::ServerOptions& server_options,
                                   const CompileOptions& compile_options) {
  // First use creates the endpoint serving the resolved version (so
  // version == live_version for the creating request by construction);
  // existing servers are returned unchanged, exactly like serve().
  serving::Server& server = serve(ref, server_options, compile_options);
  const ModelRef parsed = parse_model_ref(ref);
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  const Entry& entry = find_entry_locked(parsed.model);
  WireRoute route;
  route.server = &server;
  route.version = resolve_locked(entry, parsed);
  route.live_version = entry.live_version;
  route.candidate_version = entry.candidate_version;
  return route;
}

void Registry::deploy(const std::string& ref, const CompileOptions& options) {
  const ModelRef parsed = parse_model_ref(ref);
  const VersionSlot* slot = nullptr;
  int version = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
    Entry& entry = find_entry_locked(parsed.model);
    if (entry.server == nullptr) {
      throw std::logic_error("registry: deploy('" + ref +
                             "') before serve() created the server");
    }
    version = resolve_locked(entry, parsed);
    slot = &entry.versions.at(version);
  }
  // Compile (possibly seconds) runs outside the catalog lock; only the
  // pointer-swap rollout happens back under it.
  std::shared_ptr<const CompiledTicket> plan = compile_slot(*slot, options);

  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(parsed.model);
  serving::FleetSpec spec;
  spec.version = version_label(parsed.model, version);
  spec.shard_plans.assign(static_cast<std::size_t>(entry.server->shards()),
                          plan);
  entry.server->swap_fleet(std::move(spec));  // catalog -> route nesting
  entry.live_version = version;
}

void Registry::start_ab(const std::string& name,
                        const std::string& candidate_ref, double fraction,
                        std::uint64_t seed, const CompileOptions& options) {
  const ModelRef parsed = parse_model_ref(candidate_ref);
  if (parsed.model != name) {
    throw std::invalid_argument("registry: A/B candidate '" + candidate_ref +
                                "' does not belong to model '" + name + "'");
  }
  const VersionSlot* slot = nullptr;
  int version = 0;
  {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
    Entry& entry = find_entry_locked(name);
    if (entry.server == nullptr) {
      throw std::logic_error("registry: start_ab('" + name +
                             "') before serve() created the server");
    }
    version = resolve_locked(entry, parsed);
    slot = &entry.versions.at(version);
  }
  std::shared_ptr<const CompiledTicket> plan = compile_slot(*slot, options);

  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(name);
  serving::FleetSpec spec;
  spec.version = version_label(name, version);
  spec.shard_plans.assign(static_cast<std::size_t>(entry.server->shards()),
                          plan);
  entry.server->set_candidate(std::move(spec), fraction, seed);
  entry.candidate_version = version;
}

void Registry::stop_ab(const std::string& name) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(name);
  if (entry.server != nullptr) entry.server->clear_candidate();
  entry.candidate_version = 0;
}

int Registry::promote(const std::string& name) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  Entry& entry = find_entry_locked(name);
  if (entry.server == nullptr || entry.candidate_version == 0) {
    throw std::logic_error("registry: no A/B test running for '" + name +
                           "'");
  }
  entry.server->promote_candidate();
  entry.live_version = entry.candidate_version;
  entry.stable = entry.candidate_version;
  entry.candidate_version = 0;
  return entry.live_version;
}

int Registry::live_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  return find_entry_locked(name).live_version;
}

int Registry::candidate_version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kRegistryCatalog);
  return find_entry_locked(name).candidate_version;
}

}  // namespace registry
}  // namespace rt
