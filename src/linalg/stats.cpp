#include "linalg/stats.hpp"

#include <stdexcept>

#include "linalg/sym_eig.hpp"

namespace rt {

FeatureStats feature_stats(const Tensor& features) {
  if (features.ndim() != 2) {
    throw std::invalid_argument("feature_stats: (n, d) tensor required");
  }
  const std::int64_t n = features.dim(0);
  const std::int64_t d = features.dim(1);
  if (n < 1) throw std::invalid_argument("feature_stats: need >= 1 row");

  FeatureStats out;
  out.mean = Tensor({d});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) out.mean[j] += features.at(i, j);
  }
  out.mean.mul_(1.0f / static_cast<float>(n));

  Tensor centered({n, d});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      centered.at(i, j) = features.at(i, j) - out.mean[j];
    }
  }
  out.covariance = matmul(centered, centered, /*trans_a=*/true);
  const float denom = static_cast<float>(n > 1 ? n - 1 : 1);
  out.covariance.mul_(1.0f / denom);
  return out;
}

double frechet_distance(const FeatureStats& a, const FeatureStats& b) {
  if (!a.mean.same_shape(b.mean)) {
    throw std::invalid_argument("frechet_distance: dim mismatch");
  }
  double mean_term = 0.0;
  for (std::int64_t j = 0; j < a.mean.numel(); ++j) {
    const double diff = static_cast<double>(a.mean[j]) - b.mean[j];
    mean_term += diff * diff;
  }
  // Tr((S1^{1/2} S2 S1^{1/2})^{1/2}) — symmetric form avoids complex roots.
  const Tensor root_a = sym_sqrt(a.covariance);
  const Tensor inner = matmul(matmul(root_a, b.covariance), root_a);
  const Tensor cross = sym_sqrt(inner);
  const double tr =
      static_cast<double>(trace(a.covariance)) + trace(b.covariance) -
      2.0 * trace(cross);
  // Numerical noise can push the trace term slightly negative for identical
  // inputs; clamp the total at zero.
  const double fid = mean_term + tr;
  return fid > 0.0 ? fid : 0.0;
}

}  // namespace rt
