#include "linalg/sym_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "linalg/gemm.hpp"

namespace rt {

Tensor eye(std::int64_t n) {
  Tensor m({n, n});
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

float trace(const Tensor& a) {
  if (a.ndim() != 2 || a.dim(0) != a.dim(1)) {
    throw std::invalid_argument("trace: square matrix required");
  }
  float t = 0.0f;
  for (std::int64_t i = 0; i < a.dim(0); ++i) t += a.at(i, i);
  return t;
}

SymEig sym_eig(const Tensor& input, int max_sweeps, float tol) {
  if (input.ndim() != 2 || input.dim(0) != input.dim(1)) {
    throw std::invalid_argument("sym_eig: square matrix required");
  }
  const std::int64_t n = input.dim(0);

  // Work in double: Jacobi rotations accumulate rounding error in float.
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] =
          0.5 * (static_cast<double>(input.at(i, j)) + input.at(j, i));
    }
  }
  std::vector<double> v(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i * n + i)] = 1.0;

  auto off_diag_norm = [&] {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double x = a[static_cast<std::size_t>(i * n + j)];
        s += x * x;
      }
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= static_cast<double>(tol)) break;
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const double apq = a[static_cast<std::size_t>(p * n + q)];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[static_cast<std::size_t>(p * n + p)];
        const double aqq = a[static_cast<std::size_t>(q * n + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::int64_t k = 0; k < n; ++k) {
          const double akp = a[static_cast<std::size_t>(k * n + p)];
          const double akq = a[static_cast<std::size_t>(k * n + q)];
          a[static_cast<std::size_t>(k * n + p)] = c * akp - s * akq;
          a[static_cast<std::size_t>(k * n + q)] = s * akp + c * akq;
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const double apk = a[static_cast<std::size_t>(p * n + k)];
          const double aqk = a[static_cast<std::size_t>(q * n + k)];
          a[static_cast<std::size_t>(p * n + k)] = c * apk - s * aqk;
          a[static_cast<std::size_t>(q * n + k)] = s * apk + c * aqk;
        }
        for (std::int64_t k = 0; k < n; ++k) {
          const double vkp = v[static_cast<std::size_t>(k * n + p)];
          const double vkq = v[static_cast<std::size_t>(k * n + q)];
          v[static_cast<std::size_t>(k * n + p)] = c * vkp - s * vkq;
          v[static_cast<std::size_t>(k * n + q)] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
    return a[static_cast<std::size_t>(x * n + x)] <
           a[static_cast<std::size_t>(y * n + y)];
  });

  SymEig out;
  out.eigenvalues = Tensor({n});
  out.eigenvectors = Tensor({n, n});
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t src = order[static_cast<std::size_t>(j)];
    out.eigenvalues[j] =
        static_cast<float>(a[static_cast<std::size_t>(src * n + src)]);
    for (std::int64_t i = 0; i < n; ++i) {
      out.eigenvectors.at(i, j) =
          static_cast<float>(v[static_cast<std::size_t>(i * n + src)]);
    }
  }
  return out;
}

Tensor sym_sqrt(const Tensor& a) {
  const SymEig eig = sym_eig(a);
  const std::int64_t n = a.dim(0);
  // B = V diag(sqrt(max(w,0))) V^T
  Tensor scaled({n, n});
  for (std::int64_t j = 0; j < n; ++j) {
    const float w = std::max(0.0f, eig.eigenvalues[j]);
    const float r = std::sqrt(w);
    for (std::int64_t i = 0; i < n; ++i) {
      scaled.at(i, j) = eig.eigenvectors.at(i, j) * r;
    }
  }
  Tensor out({n, n});
  gemm_nt(n, n, n, scaled.data(), eig.eigenvectors.data(), out.data());
  return out;
}

}  // namespace rt
