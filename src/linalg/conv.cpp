#include "linalg/conv.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/audit.hpp"
#include "common/threadpool.hpp"
#include "linalg/gemm.hpp"
#include "linalg/microkernel.hpp"
#include "linalg/microkernel_s8.hpp"

namespace rt {

namespace {

// dcol tile height for the fused dgrad scatter: one (kMcScatter x kNc) tile
// (64 KiB) is computed to completion, scattered into dX while cache-hot,
// then reused — the full dcol buffer never exists.
constexpr std::int64_t kMcScatter = 64;

// The tap-path crossover is kConvSparseWeightFraction (conv.hpp): past ~80%
// zeros, skipping weights wholesale beats the packed path's ~5x dense
// throughput advantage — the same reasoning as the GEMM dispatch in
// gemm.cpp, and it matches the serving engine's CSR cutoff (density <= 0.2)
// so training and serving flip to sparse execution at the same sparsity.

enum class Path { kPacked, kTaps, kRef };

/// Decode table for flattened weight columns: column index r of the
/// (out_ch, C*k*k) weight matrix touches input channel c[r] at kernel
/// offset (ki[r], kj[r]). Rebuilt only when the geometry changes.
struct DecodeTable {
  std::int64_t c_in = -1, kernel = -1;
  std::vector<std::int32_t> c, ki, kj;
};

const DecodeTable& decode_table(std::int64_t c_in, std::int64_t kernel) {
  thread_local DecodeTable t;
  if (t.c_in != c_in || t.kernel != kernel) {
    const std::int64_t ckk = c_in * kernel * kernel;
    t.c.resize(static_cast<std::size_t>(ckk));
    t.ki.resize(static_cast<std::size_t>(ckk));
    t.kj.resize(static_cast<std::size_t>(ckk));
    for (std::int64_t r = 0; r < ckk; ++r) {
      const std::int64_t k2 = kernel * kernel;
      t.c[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r / k2);
      t.ki[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>((r % k2) / kernel);
      t.kj[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r % kernel);
    }
    t.c_in = c_in;
    t.kernel = kernel;
  }
  return t;
}

/// Gathers `count` consecutive virtual-im2col values of one column row
/// (fixed channel plane + kernel offset) starting at flat output pixel
/// `pixel0`. Decomposes the pixel range into output-image rows; interior
/// runs collapse to a memcpy (stride 1) or a strided copy, border runs fall
/// back to per-element guards.
void gather_col_row(const float* xplane, std::int64_t h, std::int64_t w,
                    std::int64_t stride, std::int64_t pad, std::int64_t ki,
                    std::int64_t kj, std::int64_t ow, std::int64_t pixel0,
                    std::int64_t count, float* dst) {
  std::int64_t t = 0;
  while (t < count) {
    const std::int64_t pixel = pixel0 + t;
    const std::int64_t oi = pixel / ow;
    const std::int64_t oj = pixel % ow;
    const std::int64_t run = std::min(count - t, ow - oj);
    const std::int64_t ii = oi * stride - pad + ki;
    if (ii < 0 || ii >= h) {
      for (std::int64_t r = 0; r < run; ++r) dst[t + r] = 0.0f;
      t += run;
      continue;
    }
    const float* xrow = xplane + ii * w;
    const std::int64_t jj = oj * stride - pad + kj;
    if (jj >= 0 && jj + (run - 1) * stride < w) {
      if (stride == 1) {
        std::memcpy(dst + t, xrow + jj,
                    static_cast<std::size_t>(run) * sizeof(float));
      } else {
        for (std::int64_t r = 0; r < run; ++r) {
          dst[t + r] = xrow[jj + r * stride];
        }
      }
    } else {
      for (std::int64_t r = 0; r < run; ++r) {
        const std::int64_t j2 = jj + r * stride;
        dst[t + r] = (j2 >= 0 && j2 < w) ? xrow[j2] : 0.0f;
      }
    }
    t += run;
  }
}

/// Packs rows [kc, kc+kb) x pixels [jc, jc+nb) of the virtual im2col matrix
/// into kNr-column slivers at `bp` — the forward path's B operand, gathered
/// straight from the input plane in packed layout.
void pack_col_panel(const float* x, std::int64_t h, std::int64_t w,
                    const ConvGeometry& g, const DecodeTable& dec,
                    std::int64_t kc, std::int64_t kb, std::int64_t jc,
                    std::int64_t nb, std::int64_t ow, float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = std::min(kNr, nb - jr);
    float* sliver = bp + jr * kb;
    const std::int64_t pixel0 = jc + jr;
    for (std::int64_t p = 0; p < kb; ++p) {
      const auto row = static_cast<std::size_t>(kc + p);
      const float* xplane = x + static_cast<std::int64_t>(dec.c[row]) * h * w;
      float* dst = sliver + p * kNr;
      gather_col_row(xplane, h, w, g.stride, g.padding, dec.ki[row],
                     dec.kj[row], ow, pixel0, n_eff, dst);
      for (std::int64_t j = n_eff; j < kNr; ++j) dst[j] = 0.0f;
    }
  }
}

/// Packs pixels [pc, pc+kb) x columns [jc, jc+nb) of the TRANSPOSED virtual
/// im2col matrix (the wgrad path's B operand). The kNr column decodes are
/// hoisted per sliver; the pixel walk is incremental, so the inner body is
/// kNr guarded loads.
void pack_colt_panel(const float* x, std::int64_t h, std::int64_t w,
                     const ConvGeometry& g, const DecodeTable& dec,
                     std::int64_t pc, std::int64_t kb, std::int64_t jc,
                     std::int64_t nb, std::int64_t ow, float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = std::min(kNr, nb - jr);
    float* sliver = bp + jr * kb;
    std::int64_t ki[kNr], kj[kNr];
    const float* xpl[kNr];
    for (std::int64_t j = 0; j < n_eff; ++j) {
      const auto row = static_cast<std::size_t>(jc + jr + j);
      ki[j] = dec.ki[row];
      kj[j] = dec.kj[row];
      xpl[j] = x + static_cast<std::int64_t>(dec.c[row]) * h * w;
    }
    std::int64_t oi = pc / ow;
    std::int64_t oj = pc % ow;
    for (std::int64_t p = 0; p < kb; ++p) {
      const std::int64_t ib = oi * g.stride - g.padding;
      const std::int64_t jb = oj * g.stride - g.padding;
      float* dst = sliver + p * kNr;
      for (std::int64_t j = 0; j < n_eff; ++j) {
        const std::int64_t ii = ib + ki[j];
        const std::int64_t jj = jb + kj[j];
        dst[j] = (ii >= 0 && ii < h && jj >= 0 && jj < w)
                     ? xpl[j][ii * w + jj]
                     : 0.0f;
      }
      for (std::int64_t j = n_eff; j < kNr; ++j) dst[j] = 0.0f;
      if (++oj == ow) {
        oj = 0;
        ++oi;
      }
    }
  }
}

/// Scatter-adds a computed dcol tile (rows [row0, row0+rows) x pixels
/// [pixel0, pixel0+count), leading dimension count) into the dX plane —
/// col2im restricted to one cache-hot tile.
void scatter_col_tile(const float* tile, std::int64_t row0, std::int64_t rows,
                      std::int64_t pixel0, std::int64_t count,
                      const DecodeTable& dec, const ConvGeometry& g,
                      std::int64_t h, std::int64_t w, std::int64_t ow,
                      float* dx) {
  for (std::int64_t p = 0; p < rows; ++p) {
    const auto row = static_cast<std::size_t>(row0 + p);
    float* xplane = dx + static_cast<std::int64_t>(dec.c[row]) * h * w;
    const std::int64_t ki = dec.ki[row];
    const std::int64_t kj = dec.kj[row];
    const float* src = tile + p * count;
    std::int64_t t = 0;
    while (t < count) {
      const std::int64_t pixel = pixel0 + t;
      const std::int64_t oi = pixel / ow;
      const std::int64_t oj = pixel % ow;
      const std::int64_t run = std::min(count - t, ow - oj);
      const std::int64_t ii = oi * g.stride - g.padding + ki;
      if (ii < 0 || ii >= h) {
        t += run;
        continue;
      }
      float* xrow = xplane + ii * w;
      const std::int64_t jj = oj * g.stride - g.padding + kj;
      if (jj >= 0 && jj + (run - 1) * g.stride < w) {
        if (g.stride == 1) {
          for (std::int64_t r = 0; r < run; ++r) xrow[jj + r] += src[t + r];
        } else {
          for (std::int64_t r = 0; r < run; ++r) {
            xrow[jj + r * g.stride] += src[t + r];
          }
        }
      } else {
        for (std::int64_t r = 0; r < run; ++r) {
          const std::int64_t j2 = jj + r * g.stride;
          if (j2 >= 0 && j2 < w) xrow[j2] += src[t + r];
        }
      }
      t += run;
    }
  }
}

void bias_relu_epilogue(float* y, const float* bias, std::int64_t out_ch,
                        std::int64_t plane, bool relu) {
  if (bias == nullptr && !relu) return;
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    float* row = y + oc * plane;
    if (relu) {
      for (std::int64_t j = 0; j < plane; ++j) {
        row[j] = std::max(row[j] + b, 0.0f);
      }
    } else if (b != 0.0f) {
      for (std::int64_t j = 0; j < plane; ++j) row[j] += b;
    }
  }
}

Path resolve_path(const ConvKernelOpts& opts, const float* weight,
                  std::int64_t count, bool taps_available) {
  if (opts.algo == ConvAlgo::kIm2colReference) return Path::kRef;
  if (opts.algo == ConvAlgo::kImplicit || !taps_available) {
    return Path::kPacked;
  }
  float zf = opts.weight_zero_fraction;
  if (zf < 0.0f) zf = weight_zero_fraction(weight, count);
  return zf >= kConvSparseWeightFraction ? Path::kTaps : Path::kPacked;
}

/// Runs `tiles(t0, t1)` over the `count` output-column tiles of a packed
/// kernel: as stealable subtasks when the caller asked for tile parallelism
/// (grain 1 — a tile is already kNc columns of work), serial otherwise.
template <typename Tiles>
void for_each_tile(std::int64_t count, bool parallel, const Tiles& tiles) {
  if (parallel && count > 1) {
    parallel_for(count, tiles, /*grain=*/1);
  } else {
    tiles(0, count);
  }
}

// ---- forward ----------------------------------------------------------------

RT_HOT void forward_packed(const float* x, std::int64_t c_in, std::int64_t h,
                           std::int64_t w, const ConvGeometry& g,
                           const float* weight, std::int64_t out_ch, float* y,
                           const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;

  // Weight panels: the batch-shared pre-pack when the caller supplied one
  // (panel ir starts at ir*ckk, its k-slice kc at + kc*kMr), else a local
  // pack (cost 1/ohw of the MACs). The local pack must be STACK-owned when
  // tiles go parallel: a worker blocked in the region's wait helps execute
  // other queued tasks, which can re-enter this function on the same thread
  // — a thread_local buffer would be republished to still-running tiles of
  // the first call. The serial path keeps the allocation-free thread_local.
  const float* wp;
  thread_local std::vector<float> wpack_tl;
  std::vector<float> wpack_frame;
  if (opts.packed_weights != nullptr && opts.packed_weights->has_forward() &&
      opts.packed_weights->matches(out_ch, ckk)) {
    wp = opts.packed_weights->forward_panels();
  } else {
    std::vector<float>& wpack = opts.parallel_tiles ? wpack_frame : wpack_tl;
    // Dynamic: panel size follows the layer shape. Serving never takes this
    // branch (tickets carry pre-packed panels); training pays it per call on
    // the parallel path only.
    wpack.resize(  // rtlint: allow(R2) shape-dependent weight panel
        static_cast<std::size_t>(round_up(out_ch, kMr) * ckk));
    pack_a_rows(weight, ckk, 0, out_ch, 0, ckk, wpack.data());
    wp = wpack.data();
  }

  // Output-column tiles are independent (each writes its own y columns and
  // accumulates its kc panels in the fixed serial order), so they can run
  // as stealable subtasks when the batch alone cannot fill the machine.
  const std::int64_t tiles = (ohw + kNc - 1) / kNc;
  for_each_tile(tiles, opts.parallel_tiles,
                [&](std::int64_t t0, std::int64_t t1) {
    // Per-leaf lookups: the executing thread's own decode table and pack
    // buffer, never the spawning thread's (whose thread_locals may be
    // rebuilt under it while it helps with unrelated tasks).
    const DecodeTable& dec = decode_table(c_in, g.kernel);
    thread_local float bbuf[kKc * kNc];
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t jc = t * kNc;
      const std::int64_t nb = std::min(kNc, ohw - jc);
      for (std::int64_t kc = 0; kc < ckk; kc += kKc) {
        const std::int64_t kb = std::min(kKc, ckk - kc);
        pack_col_panel(x, h, w, g, dec, kc, kb, jc, nb, ow, bbuf);
        for (std::int64_t ir = 0; ir < out_ch; ir += kMr) {
          const std::int64_t mr = std::min(kMr, out_ch - ir);
          const float* ap = wp + ir * ckk + kc * kMr;
          float* crow = y + ir * ohw + jc;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, ohw);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, ohw, mr, nr);
            }
          }
        }
      }
    }
  });
}

RT_HOT void forward_taps(const float* x, std::int64_t c_in, std::int64_t h,
                         std::int64_t w, const ConvGeometry& g,
                         const float* weight, std::int64_t out_ch, float* y) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t s = g.stride;
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float* wrow = weight + oc * ckk;
    float* yplane = y + oc * ohw;
    for (std::int64_t p = 0; p < ckk; ++p) {
      const float v = wrow[p];
      if (v == 0.0f) continue;
      const auto pr = static_cast<std::size_t>(p);
      const std::int64_t ki = dec.ki[pr], kj = dec.kj[pr];
      const TapWindow wi = tap_window(oh, h, ki, s, g.padding);
      const TapWindow wj = tap_window(ow, w, kj, s, g.padding);
      const std::int64_t count = wj.o1 - wj.o0;
      if (wi.o1 <= wi.o0 || count <= 0) continue;
      const float* xplane =
          x + static_cast<std::int64_t>(dec.c[pr]) * h * w;
      const std::int64_t jj0 = wj.o0 * s - g.padding + kj;
      for (std::int64_t oi = wi.o0; oi < wi.o1; ++oi) {
        const std::int64_t ii = oi * s - g.padding + ki;
        const float* __restrict xr = xplane + ii * w + jj0;
        float* __restrict yr = yplane + oi * ow + wj.o0;
        if (s == 1) {
          for (std::int64_t j = 0; j < count; ++j) yr[j] += v * xr[j];
        } else {
          for (std::int64_t j = 0; j < count; ++j) yr[j] += v * xr[j * s];
        }
      }
    }
  }
}

void forward_ref(const float* x, std::int64_t c_in, std::int64_t h,
                 std::int64_t w, const ConvGeometry& g, const float* weight,
                 std::int64_t out_ch, float* y) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> colbuf;
  colbuf.resize(static_cast<std::size_t>(ckk * ohw));
  im2col_plane(x, c_in, h, w, g, colbuf.data());
  gemm_nn(out_ch, ohw, ckk, weight, colbuf.data(), y,
          {.accumulate = true, .parallel = false, .packed = false});
}

// ---- input gradient ---------------------------------------------------------

RT_HOT void dgrad_packed(const float* weight, std::int64_t out_ch,
                         const float* gout, std::int64_t c_in, std::int64_t h,
                         std::int64_t w, const ConvGeometry& g, float* dx,
                         const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const DecodeTable& dec = decode_table(c_in, g.kernel);

  // A = W^T: the transpose is paid once, in packing — by the batch-shared
  // pre-pack when available, else locally.
  const float* wtp;
  thread_local std::vector<float> wtpack;
  if (opts.packed_weights != nullptr && opts.packed_weights->has_dgrad() &&
      opts.packed_weights->matches(out_ch, ckk)) {
    wtp = opts.packed_weights->dgrad_panels();
  } else {
    // Dynamic: W^T panel size follows the layer shape (see forward_packed).
    wtpack.resize(  // rtlint: allow(R2) shape-dependent weight panel
        static_cast<std::size_t>(round_up(ckk, kMr) * out_ch));
    pack_a_rows_trans(weight, ckk, 0, ckk, 0, out_ch, wtpack.data());
    wtp = wtpack.data();
  }

  thread_local float bbuf[kKc * kNc];
  thread_local float ctile[kMcScatter * kNc];

  for (std::int64_t jc = 0; jc < ohw; jc += kNc) {
    const std::int64_t nb = std::min(kNc, ohw - jc);
    for (std::int64_t ic = 0; ic < ckk; ic += kMcScatter) {
      const std::int64_t mb = std::min(kMcScatter, ckk - ic);
      std::memset(ctile, 0, static_cast<std::size_t>(mb * nb) * sizeof(float));
      for (std::int64_t kc = 0; kc < out_ch; kc += kKc) {
        const std::int64_t kb = std::min(kKc, out_ch - kc);
        pack_b_cols(gout, ohw, kc, kb, jc, nb, bbuf);
        for (std::int64_t ir = 0; ir < mb; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mb - ir);
          const float* ap = wtp + (ic + ir) * out_ch + kc * kMr;
          float* crow = ctile + ir * nb;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, nb);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, nb, mr, nr);
            }
          }
        }
      }
      scatter_col_tile(ctile, ic, mb, jc, nb, dec, g, h, w, ow, dx);
    }
  }
}

void dgrad_taps(const float* weight, std::int64_t out_ch, const float* gout,
                std::int64_t c_in, std::int64_t h, std::int64_t w,
                const ConvGeometry& g, float* dx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t s = g.stride;
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float* wrow = weight + oc * ckk;
    const float* gplane = gout + oc * ohw;
    for (std::int64_t p = 0; p < ckk; ++p) {
      const float v = wrow[p];
      if (v == 0.0f) continue;
      const auto pr = static_cast<std::size_t>(p);
      const std::int64_t ki = dec.ki[pr], kj = dec.kj[pr];
      const TapWindow wi = tap_window(oh, h, ki, s, g.padding);
      const TapWindow wj = tap_window(ow, w, kj, s, g.padding);
      const std::int64_t count = wj.o1 - wj.o0;
      if (wi.o1 <= wi.o0 || count <= 0) continue;
      float* xplane = dx + static_cast<std::int64_t>(dec.c[pr]) * h * w;
      const std::int64_t jj0 = wj.o0 * s - g.padding + kj;
      for (std::int64_t oi = wi.o0; oi < wi.o1; ++oi) {
        const std::int64_t ii = oi * s - g.padding + ki;
        float* __restrict xr = xplane + ii * w + jj0;
        const float* __restrict gr = gplane + oi * ow + wj.o0;
        if (s == 1) {
          for (std::int64_t j = 0; j < count; ++j) xr[j] += v * gr[j];
        } else {
          for (std::int64_t j = 0; j < count; ++j) xr[j * s] += v * gr[j];
        }
      }
    }
  }
}

void dgrad_ref(const float* weight, std::int64_t out_ch, const float* gout,
               std::int64_t c_in, std::int64_t h, std::int64_t w,
               const ConvGeometry& g, float* dx) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> dcol;
  dcol.resize(static_cast<std::size_t>(ckk * ohw));
  gemm_tn(ckk, ohw, out_ch, weight, gout, dcol.data(),
          {.accumulate = false, .parallel = false, .packed = false});
  col2im_plane_add(dcol.data(), c_in, h, w, g, dx);
}

// ---- weight gradient --------------------------------------------------------

RT_HOT void wgrad_packed(const float* gout, const float* x, std::int64_t c_in,
                         std::int64_t h, std::int64_t w, const ConvGeometry& g,
                         std::int64_t out_ch, float* dw,
                         const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;

  // dW-column tiles are independent: each accumulates its own dw columns
  // over the pixel panels in the same ascending pc order as the serial
  // loop, so per-element summation order — and hence the bits — do not
  // change. The gout panel re-pack per (tile, pc) pair costs 1/kNc of the
  // tile's MACs, which the extra parallelism amortizes.
  const std::int64_t tiles = (ckk + kNc - 1) / kNc;
  for_each_tile(tiles, opts.parallel_tiles,
                [&](std::int64_t t0, std::int64_t t1) {
    // Executing thread's own caches (see forward_packed on why the
    // spawning thread's thread_locals must not be shared with leaves).
    const DecodeTable& dec = decode_table(c_in, g.kernel);
    thread_local std::vector<float> apack;
    thread_local float bbuf[kKc * kNc];
    // Dynamic: gout panel height follows out_ch. Steady-state free per
    // thread once grown to the model's widest layer.
    apack.resize(  // rtlint: allow(R2) shape-dependent gout panel
        static_cast<std::size_t>(round_up(out_ch, kMr) * kKc));
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t jc = t * kNc;
      const std::int64_t nb = std::min(kNc, ckk - jc);
      for (std::int64_t pc = 0; pc < ohw; pc += kKc) {
        const std::int64_t kb = std::min(kKc, ohw - pc);
        pack_a_rows(gout, ohw, 0, out_ch, pc, kb, apack.data());
        pack_colt_panel(x, h, w, g, dec, pc, kb, jc, nb, ow, bbuf);
        for (std::int64_t ir = 0; ir < out_ch; ir += kMr) {
          const std::int64_t mr = std::min(kMr, out_ch - ir);
          const float* ap = apack.data() + ir * kb;
          float* crow = dw + ir * ckk + jc;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, ckk);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, ckk, mr, nr);
            }
          }
        }
      }
    }
  });
}

void wgrad_ref(const float* gout, const float* x, std::int64_t c_in,
               std::int64_t h, std::int64_t w, const ConvGeometry& g,
               std::int64_t out_ch, float* dw) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> colbuf;
  colbuf.resize(static_cast<std::size_t>(ckk * ohw));
  im2col_plane(x, c_in, h, w, g, colbuf.data());
  gemm_nt(out_ch, ckk, ohw, gout, colbuf.data(), dw,
          {.accumulate = true, .parallel = false, .skip_zero_b_rows = false,
           .packed = false});
}

// ---- int8 forward -----------------------------------------------------------

// GCC's AVX512 widening/shift intrinsics expand through an undef
// pass-through operand that trips -Wmaybe-uninitialized false positives at
// -O3 (GCC PR105593). Scoped to the int8 section; popped after the s8
// forward entry point below.
#if defined(RT_MICROKERNEL_S8_VNNI) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#define RT_S8_DIAG_PUSHED 1
#endif

/// gather_col_row at int8 width: gathers `count` consecutive virtual-im2col
/// values of one offset-u8 column row (fixed channel plane + kernel offset)
/// into a CONTIGUOUS byte buffer. Interior stride-1 runs collapse to a
/// memcpy (the input plane is already u8), pad rows to a memset of 128 —
/// the offset-u8 encoding of zero.
void gather_col_row_u8(const std::uint8_t* xplane, std::int64_t h,
                       std::int64_t w, std::int64_t stride, std::int64_t pad,
                       std::int64_t ki, std::int64_t kj, std::int64_t ow,
                       std::int64_t pixel0, std::int64_t count,
                       std::uint8_t* dst) {
  // Output-row decomposition with the div/mod done ONCE per call: within an
  // image row every source offset is affine in the output column, so each
  // row reduces to (pad memset | memcpy | pad memset) for stride 1 and a
  // strided copy otherwise. This gather runs per plane per layer on the
  // serving path — the per-row constant work is what it is measured by.
  std::int64_t oi = pixel0 / ow;
  std::int64_t oj = pixel0 - oi * ow;
  const std::int64_t jj_base = kj - pad;
  std::int64_t t = 0;
  while (t < count) {
    const std::int64_t run = std::min(count - t, ow - oj);
    const std::int64_t ii = oi * stride - pad + ki;
    std::uint8_t* d = dst + t;
    if (ii < 0 || ii >= h) {
      std::memset(d, 128, static_cast<std::size_t>(run));
    } else {
      const std::uint8_t* xrow = xplane + ii * w;
      if (stride == 1) {
        const std::int64_t j0 = oj + jj_base;  // first source column
        // Clip [j0, j0 + run) to the image width; lead/tail take the pad.
        const std::int64_t lead =
            std::min(run, std::max<std::int64_t>(0, -j0));
        const std::int64_t mid =
            std::max<std::int64_t>(0, std::min(run, w - j0) - lead);
        if (lead > 0) std::memset(d, 128, static_cast<std::size_t>(lead));
        if (mid > 0) {
          std::memcpy(d + lead, xrow + j0 + lead,
                      static_cast<std::size_t>(mid));
        }
        if (lead + mid < run) {
          std::memset(d + lead + mid, 128,
                      static_cast<std::size_t>(run - lead - mid));
        }
      } else {
        const std::int64_t jj = oj * stride + jj_base;
        for (std::int64_t r = 0; r < run; ++r) {
          const std::int64_t j2 = jj + r * stride;
          d[r] = (j2 >= 0 && j2 < w) ? xrow[j2] : std::uint8_t{128};
        }
      }
    }
    t += run;
    oj = 0;
    ++oi;
  }
}

/// Cap of the thread_local padded-plane staging buffer: a stride-1 conv
/// first copies its input into a (c_in, h+2p, w+2p) plane whose border holds
/// the zero encoding 128, after which EVERY row gather is one branch-free
/// memcpy per image row — the lead/mid/tail clipping of gather_col_row_u8
/// disappears from the per-(tap, row) inner loop and is paid once per plane
/// instead (1x the input volume against k*k gathered copies of it). 128 KiB
/// covers small-image serving layers up to e.g. 64ch x 34x34; larger planes
/// fall back to the clipped gather.
inline constexpr std::int64_t kPadPlaneCapS8 = 128 * 1024;

/// Batch variant of the cap for conv2d_forward_batch_s8, which pads every
/// sample's plane up front (n x the per-sample footprint). 256 KiB covers
/// batch 16 of the small-image layers the engine serves.
inline constexpr std::int64_t kPadPlaneBatchCapS8 = 256 * 1024;

/// Interleaves 4 contiguous k-row buffers into the quad position `dst`
/// (64 bytes: 16 lanes x 4 quad bytes): dst dword j = r0[j] | r1[j] << 8 |
/// r2[j] << 16 | r3[j] << 24. This is the transform between the linear
/// gather above and the sliver layout the micro-kernel consumes; writes are
/// a single contiguous 64-byte store per quad on the wide path.
inline void interleave_quad16(const std::uint8_t* r0, const std::uint8_t* r1,
                              const std::uint8_t* r2, const std::uint8_t* r3,
                              std::uint8_t* dst) {
#ifdef RT_MICROKERNEL_S8_VNNI
  const __m512i v0 = _mm512_cvtepu8_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0)));
  const __m512i v1 = _mm512_slli_epi32(
      _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1))), 8);
  const __m512i v2 = _mm512_slli_epi32(
      _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2))), 16);
  const __m512i v3 = _mm512_slli_epi32(
      _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3))), 24);
  _mm512_storeu_si512(dst, _mm512_or_si512(_mm512_or_si512(v0, v1),
                                           _mm512_or_si512(v2, v3)));
#else
  for (std::int64_t j = 0; j < kNrS8; ++j) {
    dst[j * 4 + 0] = r0[j];
    dst[j * 4 + 1] = r1[j];
    dst[j * 4 + 2] = r2[j];
    dst[j * 4 + 3] = r3[j];
  }
#endif
}

/// Packs rows [kc, kc+kb) x pixels [jc, jc+nb) of the offset-u8 virtual
/// im2col matrix into kNrS8-lane QUAD slivers at `bp` (sliver depth
/// round_up4(kb)) — the int8 forward's B operand. Each k row is gathered
/// once across the whole pixel tile into a linear staging row (memcpy runs),
/// then quad-interleaved into every sliver with wide stores; edge lanes and
/// the k tail pad with 128.
void pack_col_panel_u8q(const std::uint8_t* xq, std::int64_t h, std::int64_t w,
                        const ConvGeometry& g, const DecodeTable& dec,
                        std::int64_t kc, std::int64_t kb, std::int64_t jc,
                        std::int64_t nb, std::int64_t ow, std::uint8_t* bp,
                        const std::int32_t* gather_idx, std::int64_t ohw,
                        const std::uint8_t* padded, std::int64_t pw) {
  const std::int64_t kb4 = round_up4(kb);
  // 4 linear k-rows, padded to whole lane groups so the interleave reads
  // defined bytes past nb. 1 KiB, fixed — never allocates on the hot path.
  alignas(64) thread_local std::uint8_t rowbuf[4][kNcS8];
  const std::int64_t nb16 = (nb + kNrS8 - 1) / kNrS8 * kNrS8;
  for (std::int64_t q = 0; q < kb4 / 4; ++q) {
    for (std::int64_t t = 0; t < 4; ++t) {
      const std::int64_t p = 4 * q + t;
      if (p >= kb) {
        std::memset(rowbuf[t], 128, static_cast<std::size_t>(nb16));
        continue;
      }
      if (gather_idx != nullptr) {
        // Table path: one guarded byte load per element, no per-row setup —
        // the win on narrow planes whose image rows are a few bytes wide.
        const std::int32_t* ri = gather_idx + (kc + p) * ohw + jc;
        std::uint8_t* d = rowbuf[t];
        for (std::int64_t j = 0; j < nb; ++j) {
          const std::int32_t s = ri[j];
          d[j] = s >= 0 ? xq[s] : std::uint8_t{128};
        }
      } else if (padded != nullptr) {
        // Padded-plane path (stride 1): the border already holds 128, so
        // each image row is one unconditional memcpy — padding cancels in
        // the source coordinates ((oi - p + ki) + p rows, likewise columns).
        const auto row = static_cast<std::size_t>(kc + p);
        const std::uint8_t* plane =
            padded + static_cast<std::int64_t>(dec.c[row]) *
                         (h + 2 * g.padding) * pw;
        std::int64_t oi = jc / ow;
        std::int64_t oj = jc - oi * ow;
        const std::uint8_t* src =
            plane + (oi + dec.ki[row]) * pw + dec.kj[row];
        std::uint8_t* d = rowbuf[t];
        std::int64_t done = 0;
        while (done < nb) {
          const std::int64_t run = std::min(nb - done, ow - oj);
          std::memcpy(d + done, src + oj, static_cast<std::size_t>(run));
          done += run;
          oj = 0;
          src += pw;
        }
      } else {
        const auto row = static_cast<std::size_t>(kc + p);
        const std::uint8_t* xplane =
            xq + static_cast<std::int64_t>(dec.c[row]) * h * w;
        gather_col_row_u8(xplane, h, w, g.stride, g.padding, dec.ki[row],
                          dec.kj[row], ow, jc, nb, rowbuf[t]);
      }
      if (nb < nb16) {
        std::memset(rowbuf[t] + nb, 128, static_cast<std::size_t>(nb16 - nb));
      }
    }
    for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
      interleave_quad16(rowbuf[0] + jr, rowbuf[1] + jr, rowbuf[2] + jr,
                        rowbuf[3] + jr, bp + jr * kb4 + q * kNrS8 * 4);
    }
  }
}

/// Batch-column packer: as pack_col_panel_u8q, but the column space is the
/// whole batch — global column j = sample * OH*OW + pixel, sample i's plane
/// at xq + i * x_stride (or its padded copy at padded + i * pstride). Each
/// k row decomposes into per-sample pixel runs, gathered with the same
/// three strategies as the per-sample packer.
void pack_col_batch_u8q(const std::uint8_t* xq, std::int64_t x_stride,
                        std::int64_t h, std::int64_t w, const ConvGeometry& g,
                        const DecodeTable& dec, std::int64_t kb,
                        std::int64_t jc, std::int64_t nb, std::int64_t ow,
                        std::int64_t ohw, std::uint8_t* bp,
                        const std::int32_t* gather_idx,
                        const std::uint8_t* padded, std::int64_t pstride,
                        std::int64_t pw) {
  const std::int64_t kb4 = round_up4(kb);
  alignas(64) thread_local std::uint8_t rowbuf[4][kNcS8];
  const std::int64_t nb16 = (nb + kNrS8 - 1) / kNrS8 * kNrS8;
  const std::int64_t ph = h + 2 * g.padding;
  for (std::int64_t q = 0; q < kb4 / 4; ++q) {
    for (std::int64_t t = 0; t < 4; ++t) {
      const std::int64_t p = 4 * q + t;
      if (p >= kb) {
        std::memset(rowbuf[t], 128, static_cast<std::size_t>(nb16));
        continue;
      }
      const auto row = static_cast<std::size_t>(p);
      std::uint8_t* d = rowbuf[t];
      std::int64_t done = 0;
      std::int64_t i = jc / ohw;
      std::int64_t pix = jc - i * ohw;
      while (done < nb) {
        const std::int64_t run = std::min(nb - done, ohw - pix);
        if (gather_idx != nullptr) {
          const std::int32_t* ri = gather_idx + p * ohw + pix;
          const std::uint8_t* base = xq + i * x_stride;
          for (std::int64_t j = 0; j < run; ++j) {
            const std::int32_t s = ri[j];
            d[done + j] = s >= 0 ? base[s] : std::uint8_t{128};
          }
        } else if (padded != nullptr) {
          const std::uint8_t* plane =
              padded + i * pstride +
              static_cast<std::int64_t>(dec.c[row]) * ph * pw;
          std::int64_t oi = pix / ow;
          std::int64_t oj = pix - oi * ow;
          const std::uint8_t* src =
              plane + (oi + dec.ki[row]) * pw + dec.kj[row];
          std::int64_t off = done, left = run;
          while (left > 0) {
            const std::int64_t r2 = std::min(left, ow - oj);
            std::memcpy(d + off, src + oj, static_cast<std::size_t>(r2));
            off += r2;
            left -= r2;
            oj = 0;
            src += pw;
          }
        } else {
          const std::uint8_t* xplane =
              xq + i * x_stride +
              static_cast<std::int64_t>(dec.c[row]) * h * w;
          gather_col_row_u8(xplane, h, w, g.stride, g.padding, dec.ki[row],
                            dec.kj[row], ow, pix, run, d + done);
        }
        done += run;
        pix = 0;
        ++i;
      }
      if (nb < nb16) {
        std::memset(rowbuf[t] + nb, 128, static_cast<std::size_t>(nb16 - nb));
      }
    }
    for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
      interleave_quad16(rowbuf[0] + jr, rowbuf[1] + jr, rowbuf[2] + jr,
                        rowbuf[3] + jr, bp + jr * kb4 + q * kNrS8 * 4);
    }
  }
}

}  // namespace

// ---- public entry points ----------------------------------------------------

RT_HOT void conv2d_forward_plane_s8(const std::uint8_t* xq, std::int64_t c_in,
                                    std::int64_t h, std::int64_t w,
                                    const ConvGeometry& g,
                                    const std::int8_t* w_panels,
                                    std::int64_t out_ch, std::int32_t* acc,
                                    float* y, const S8Epilogue& ep,
                                    const std::int32_t* gather_idx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  if (out_ch <= 0 || ohw <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t ckk4 = round_up4(ckk);
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  std::int32_t tile[kMrS8 * kNrS8];

  // Stage the padded input plane for stride-1 convs with real padding (see
  // kPadPlaneCapS8); strided layers come in with the index table instead.
  const std::uint8_t* padded = nullptr;
  std::int64_t pw = 0;
  if (gather_idx == nullptr && g.stride == 1 && g.padding > 0) {
    const std::int64_t pad = g.padding;
    const std::int64_t ph2 = h + 2 * pad, pw2 = w + 2 * pad;
    if (c_in * ph2 * pw2 <= kPadPlaneCapS8) {
      alignas(64) thread_local std::uint8_t padbuf[kPadPlaneCapS8];
      for (std::int64_t c = 0; c < c_in; ++c) {
        std::uint8_t* dstp = padbuf + c * ph2 * pw2;
        std::memset(dstp, 128, static_cast<std::size_t>(pad * pw2));
        for (std::int64_t ii = 0; ii < h; ++ii) {
          std::uint8_t* row = dstp + (pad + ii) * pw2;
          std::memset(row, 128, static_cast<std::size_t>(pad));
          std::memcpy(row + pad, xq + (c * h + ii) * w,
                      static_cast<std::size_t>(w));
          std::memset(row + pad + w, 128, static_cast<std::size_t>(pad));
        }
        std::memset(dstp + (pad + h) * pw2, 128,
                    static_cast<std::size_t>(pad * pw2));
      }
      padded = padbuf;
      pw = pw2;
    }
  }

  if (ckk4 <= kKcFullS8) {
    // Full-depth fast path: the whole k extent fits one staged B tile, so
    // each 8x16 output block accumulates entirely in registers and requants
    // straight from the register tile — the int32 accumulator plane, its
    // memset, and the add/re-read passes all disappear. Covers every layer
    // of the small-image models the engine serves (ckk <= kKcFullS8);
    // int32 sums are exact, so results are bitwise identical to the
    // blocked path below.
    alignas(64) thread_local std::uint8_t bqfull[kKcFullS8 * kNcS8];
    for (std::int64_t jc = 0; jc < ohw; jc += kNcS8) {
      const std::int64_t nb = std::min(kNcS8, ohw - jc);
      pack_col_panel_u8q(xq, h, w, g, dec, 0, ckk, jc, nb, ow, bqfull,
                         gather_idx, ohw, padded, pw);
      for (std::int64_t ir = 0; ir < out_ch; ir += kMrS8) {
        const std::int64_t mr = std::min(kMrS8, out_ch - ir);
        const std::int8_t* ap = w_panels + ir * ckk4;
        // Slice the per-row epilogue fields to this channel block; the
        // running amax pointer is shared across all tiles of the plane.
        S8Epilogue es = ep;
        es.scales = ep.scales + ir;
        if (ep.corr) es.corr = ep.corr + ir;
        if (ep.bias) es.bias = ep.bias + ir;
        for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
          const std::int64_t nr = std::min(kNrS8, nb - jr);
          detail::micro_s8_block(ckk4 / 4, ap, bqfull + jr * ckk4, tile);
          requant_rows(tile, kNrS8, mr, nr, es, y + ir * ohw + jc + jr, ohw);
        }
      }
    }
    return;
  }

  // Deep-k path: block over k through the caller's int32 accumulator plane.
  // Fixed per-thread sliver staging, same 64 KiB footprint as the fp32
  // path's bbuf — sized once, so the serving path stays allocation-free.
  thread_local std::uint8_t bqbuf[kKcS8 * kNcS8];
  std::memset(acc, 0, static_cast<std::size_t>(out_ch * ohw) *
                          sizeof(std::int32_t));
  for (std::int64_t jc = 0; jc < ohw; jc += kNcS8) {
    const std::int64_t nb = std::min(kNcS8, ohw - jc);
    for (std::int64_t kc = 0; kc < ckk; kc += kKcS8) {
      const std::int64_t kb = std::min(kKcS8, ckk - kc);
      const std::int64_t kb4 = round_up4(kb);
      pack_col_panel_u8q(xq, h, w, g, dec, kc, kb, jc, nb, ow, bqbuf,
                         gather_idx, ohw, padded, pw);
      for (std::int64_t ir = 0; ir < out_ch; ir += kMrS8) {
        const std::int64_t mr = std::min(kMrS8, out_ch - ir);
        // Panel slice: quad-major full-depth panels, so the k block at kc
        // (kKcS8 is a multiple of 4) starts kc * kMrS8 bytes into panel ir.
        const std::int8_t* ap = w_panels + ir * ckk4 + kc * kMrS8;
        for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
          const std::int64_t nr = std::min(kNrS8, nb - jr);
          detail::micro_s8_block(kb4 / 4, ap, bqbuf + jr * kb4, tile);
          acc_block_add(tile, acc + ir * ohw + jc + jr, ohw, mr, nr);
        }
      }
    }
    // Requantize this pixel tile while its accumulator columns are still
    // cache-hot; epilogue rows are output channels (leading dimension ohw).
    requant_rows(acc + jc, ohw, out_ch, nb, ep, y + jc, ohw);
  }
}

RT_HOT void conv2d_forward_batch_s8(const std::uint8_t* xq, std::int64_t n,
                                    std::int64_t x_stride, std::int64_t c_in,
                                    std::int64_t h, std::int64_t w,
                                    const ConvGeometry& g,
                                    const std::int8_t* w_panels,
                                    std::int64_t out_ch, std::int32_t* acc,
                                    float* y, std::int64_t y_stride,
                                    const S8Epilogue& ep,
                                    const std::int32_t* gather_idx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  if (out_ch <= 0 || ohw <= 0 || n <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t ckk4 = round_up4(ckk);
  if (ckk4 > kKcFullS8) {
    // Deep-k planes go through the blocked per-sample path (they are large
    // enough that per-sample fixed costs no longer matter).
    for (std::int64_t i = 0; i < n; ++i) {
      conv2d_forward_plane_s8(xq + i * x_stride, c_in, h, w, g, w_panels,
                              out_ch, acc, y + i * y_stride, ep, gather_idx);
    }
    return;
  }
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  std::int32_t tile[kMrS8 * kNrS8];

  // Stage padded copies of every sample's plane up front (one borders-hold-
  // 128 copy each, see kPadPlaneCapS8); the whole batch shares the buffer.
  const std::uint8_t* padded = nullptr;
  std::int64_t pw = 0, pstride = 0;
  if (gather_idx == nullptr && g.stride == 1 && g.padding > 0) {
    const std::int64_t pad = g.padding;
    const std::int64_t ph2 = h + 2 * pad, pw2 = w + 2 * pad;
    const std::int64_t per_sample = c_in * ph2 * pw2;
    if (n * per_sample <= kPadPlaneBatchCapS8) {
      alignas(64) thread_local std::uint8_t padbuf[kPadPlaneBatchCapS8];
      for (std::int64_t i = 0; i < n; ++i) {
        const std::uint8_t* src0 = xq + i * x_stride;
        for (std::int64_t c = 0; c < c_in; ++c) {
          std::uint8_t* dstp = padbuf + i * per_sample + c * ph2 * pw2;
          std::memset(dstp, 128, static_cast<std::size_t>(pad * pw2));
          for (std::int64_t ii = 0; ii < h; ++ii) {
            std::uint8_t* row = dstp + (pad + ii) * pw2;
            std::memset(row, 128, static_cast<std::size_t>(pad));
            std::memcpy(row + pad, src0 + (c * h + ii) * w,
                        static_cast<std::size_t>(w));
            std::memset(row + pad + w, 128, static_cast<std::size_t>(pad));
          }
          std::memset(dstp + (pad + h) * pw2, 128,
                      static_cast<std::size_t>(pad * pw2));
        }
      }
      padded = padbuf;
      pw = pw2;
      pstride = per_sample;
    }
  }

  alignas(64) thread_local std::uint8_t bqfull[kKcFullS8 * kNcS8];
  const std::int64_t nj = n * ohw;
  // When kNrS8 divides OH*OW every 16-column tile lies inside one sample
  // and requants straight into its activation rows; otherwise the tile is
  // requantized into a register-sized scratch and scattered per sample run.
  const bool col_aligned = (ohw % kNrS8) == 0;
  for (std::int64_t jc = 0; jc < nj; jc += kNcS8) {
    const std::int64_t nb = std::min(kNcS8, nj - jc);
    pack_col_batch_u8q(xq, x_stride, h, w, g, dec, ckk, jc, nb, ow, ohw,
                       bqfull, gather_idx, padded, pstride, pw);
    for (std::int64_t ir = 0; ir < out_ch; ir += kMrS8) {
      const std::int64_t mr = std::min(kMrS8, out_ch - ir);
      const std::int8_t* ap = w_panels + ir * ckk4;
      S8Epilogue es = ep;
      es.scales = ep.scales + ir;
      if (ep.corr) es.corr = ep.corr + ir;
      if (ep.bias) es.bias = ep.bias + ir;
      for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
        const std::int64_t nr = std::min(kNrS8, nb - jr);
        detail::micro_s8_block(ckk4 / 4, ap, bqfull + jr * ckk4, tile);
        if (col_aligned) {
          const std::int64_t col = jc + jr;
          const std::int64_t i = col / ohw;
          const std::int64_t pix = col - i * ohw;
          requant_rows(tile, kNrS8, mr, nr, es,
                       y + i * y_stride + ir * ohw + pix, ohw);
        } else {
          float ytile[kMrS8 * kNrS8];
          requant_rows(tile, kNrS8, mr, nr, es, ytile, kNrS8);
          std::int64_t col = jc + jr, left = nr, toff = 0;
          while (left > 0) {
            const std::int64_t i = col / ohw;
            const std::int64_t pix = col - i * ohw;
            const std::int64_t seg = std::min(left, ohw - pix);
            float* yb = y + i * y_stride + ir * ohw + pix;
            for (std::int64_t r = 0; r < mr; ++r) {
              std::memcpy(yb + r * ohw, ytile + r * kNrS8 + toff,
                          static_cast<std::size_t>(seg) * sizeof(float));
            }
            col += seg;
            toff += seg;
            left -= seg;
          }
        }
      }
    }
  }
}

#ifdef RT_S8_DIAG_PUSHED
#pragma GCC diagnostic pop
#undef RT_S8_DIAG_PUSHED
#endif

std::vector<std::int32_t> build_s8_gather_index(std::int64_t c_in,
                                                std::int64_t h, std::int64_t w,
                                                const ConvGeometry& g) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  std::vector<std::int32_t> idx(static_cast<std::size_t>(ckk * ohw), -1);
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  for (std::int64_t p = 0; p < ckk; ++p) {
    const auto row = static_cast<std::size_t>(p);
    const std::int64_t base =
        static_cast<std::int64_t>(dec.c[row]) * h * w;
    const std::int64_t ki = dec.ki[row], kj = dec.kj[row];
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      const std::int64_t ii = oi * g.stride - g.padding + ki;
      if (ii < 0 || ii >= h) continue;
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        const std::int64_t jj = oj * g.stride - g.padding + kj;
        if (jj < 0 || jj >= w) continue;
        idx[static_cast<std::size_t>(p * ohw + oi * ow + oj)] =
            static_cast<std::int32_t>(base + ii * w + jj);
      }
    }
  }
  return idx;
}

void conv2d_forward_plane(const float* x, std::int64_t c_in, std::int64_t h,
                          std::int64_t w, const ConvGeometry& g,
                          const float* weight, std::int64_t out_ch, float* y,
                          const float* bias, bool relu,
                          const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  std::memset(y, 0, static_cast<std::size_t>(out_ch * oh * ow) *
                        sizeof(float));
  switch (resolve_path(opts, weight, out_ch * ckk, /*taps_available=*/true)) {
    case Path::kPacked:
      forward_packed(x, c_in, h, w, g, weight, out_ch, y, opts);
      break;
    case Path::kTaps: forward_taps(x, c_in, h, w, g, weight, out_ch, y);
      break;
    case Path::kRef: forward_ref(x, c_in, h, w, g, weight, out_ch, y); break;
  }
  bias_relu_epilogue(y, bias, out_ch, oh * ow, relu);
}

void conv2d_dgrad_plane(const float* weight, std::int64_t out_ch,
                        const float* gout, std::int64_t c_in, std::int64_t h,
                        std::int64_t w, const ConvGeometry& g, float* dx,
                        const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  switch (resolve_path(opts, weight, out_ch * ckk, /*taps_available=*/true)) {
    case Path::kPacked:
      dgrad_packed(weight, out_ch, gout, c_in, h, w, g, dx, opts);
      break;
    case Path::kTaps: dgrad_taps(weight, out_ch, gout, c_in, h, w, g, dx);
      break;
    case Path::kRef: dgrad_ref(weight, out_ch, gout, c_in, h, w, g, dx);
      break;
  }
}

void conv2d_wgrad_plane(const float* gout, const float* x, std::int64_t c_in,
                        std::int64_t h, std::int64_t w, const ConvGeometry& g,
                        std::int64_t out_ch, float* dw,
                        const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  if (opts.algo == ConvAlgo::kIm2colReference) {
    wgrad_ref(gout, x, c_in, h, w, g, out_ch, dw);
  } else {
    wgrad_packed(gout, x, c_in, h, w, g, out_ch, dw, opts);
  }
}

void PackedWeights::pack(const float* weight, std::int64_t out_ch,
                         std::int64_t ckk, bool forward, bool dgrad) {
  out_ch_ = out_ch;
  ckk_ = ckk;
  if (forward) {
    fwd_.resize(static_cast<std::size_t>(round_up(out_ch, kMr) * ckk));
    pack_a_rows(weight, ckk, 0, out_ch, 0, ckk, fwd_.data());
  } else {
    fwd_.clear();
  }
  if (dgrad) {
    dgrad_.resize(static_cast<std::size_t>(round_up(ckk, kMr) * out_ch));
    pack_a_rows_trans(weight, ckk, 0, ckk, 0, out_ch, dgrad_.data());
  } else {
    dgrad_.clear();
  }
}

void PackedWeights::clear() {
  fwd_.clear();
  dgrad_.clear();
  out_ch_ = 0;
  ckk_ = 0;
}

void im2col_plane(const float* xd, std::int64_t c_in, std::int64_t h,
                  std::int64_t w, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    const float* xc = xd + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        float* out = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          const bool row_in = ii >= 0 && ii < h;
          const float* xrow = row_in ? xc + ii * w : xc;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            out[oi * ow + oj] =
                (row_in && jj >= 0 && jj < w) ? xrow[jj] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_plane_add(const float* col, std::int64_t c_in, std::int64_t h,
                      std::int64_t w, const ConvGeometry& g, float* dx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    float* xc = dx + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        const float* in = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          if (ii < 0 || ii >= h) continue;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            if (jj >= 0 && jj < w) xc[ii * w + jj] += in[oi * ow + oj];
          }
        }
      }
    }
  }
}

TapWindow tap_window(std::int64_t out_extent, std::int64_t in_extent,
                     std::int64_t kpos, std::int64_t stride,
                     std::int64_t pad) {
  const std::int64_t lo = pad - kpos;
  // hi < 0 means no output position reads in bounds; guard it before the
  // division, which truncates toward zero and would yield o1 == 1.
  const std::int64_t hi = in_extent - 1 + pad - kpos;
  TapWindow win;
  win.o0 = lo > 0 ? (lo + stride - 1) / stride : 0;
  win.o1 = hi < 0 ? 0 : std::min(out_extent, hi / stride + 1);
  if (win.o1 < win.o0) win.o1 = win.o0;
  return win;
}

float weight_zero_fraction(const float* weight, std::int64_t count) {
  if (count <= 0) return 0.0f;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    if (weight[i] == 0.0f) ++zeros;
  }
  return static_cast<float>(zeros) / static_cast<float>(count);
}

}  // namespace rt
