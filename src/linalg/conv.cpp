#include "linalg/conv.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/audit.hpp"
#include "common/threadpool.hpp"
#include "linalg/gemm.hpp"
#include "linalg/microkernel.hpp"

namespace rt {

namespace {

// dcol tile height for the fused dgrad scatter: one (kMcScatter x kNc) tile
// (64 KiB) is computed to completion, scattered into dX while cache-hot,
// then reused — the full dcol buffer never exists.
constexpr std::int64_t kMcScatter = 64;

// The tap-path crossover is kConvSparseWeightFraction (conv.hpp): past ~80%
// zeros, skipping weights wholesale beats the packed path's ~5x dense
// throughput advantage — the same reasoning as the GEMM dispatch in
// gemm.cpp, and it matches the serving engine's CSR cutoff (density <= 0.2)
// so training and serving flip to sparse execution at the same sparsity.

enum class Path { kPacked, kTaps, kRef };

/// Decode table for flattened weight columns: column index r of the
/// (out_ch, C*k*k) weight matrix touches input channel c[r] at kernel
/// offset (ki[r], kj[r]). Rebuilt only when the geometry changes.
struct DecodeTable {
  std::int64_t c_in = -1, kernel = -1;
  std::vector<std::int32_t> c, ki, kj;
};

const DecodeTable& decode_table(std::int64_t c_in, std::int64_t kernel) {
  thread_local DecodeTable t;
  if (t.c_in != c_in || t.kernel != kernel) {
    const std::int64_t ckk = c_in * kernel * kernel;
    t.c.resize(static_cast<std::size_t>(ckk));
    t.ki.resize(static_cast<std::size_t>(ckk));
    t.kj.resize(static_cast<std::size_t>(ckk));
    for (std::int64_t r = 0; r < ckk; ++r) {
      const std::int64_t k2 = kernel * kernel;
      t.c[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r / k2);
      t.ki[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>((r % k2) / kernel);
      t.kj[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r % kernel);
    }
    t.c_in = c_in;
    t.kernel = kernel;
  }
  return t;
}

/// Gathers `count` consecutive virtual-im2col values of one column row
/// (fixed channel plane + kernel offset) starting at flat output pixel
/// `pixel0`. Decomposes the pixel range into output-image rows; interior
/// runs collapse to a memcpy (stride 1) or a strided copy, border runs fall
/// back to per-element guards.
void gather_col_row(const float* xplane, std::int64_t h, std::int64_t w,
                    std::int64_t stride, std::int64_t pad, std::int64_t ki,
                    std::int64_t kj, std::int64_t ow, std::int64_t pixel0,
                    std::int64_t count, float* dst) {
  std::int64_t t = 0;
  while (t < count) {
    const std::int64_t pixel = pixel0 + t;
    const std::int64_t oi = pixel / ow;
    const std::int64_t oj = pixel % ow;
    const std::int64_t run = std::min(count - t, ow - oj);
    const std::int64_t ii = oi * stride - pad + ki;
    if (ii < 0 || ii >= h) {
      for (std::int64_t r = 0; r < run; ++r) dst[t + r] = 0.0f;
      t += run;
      continue;
    }
    const float* xrow = xplane + ii * w;
    const std::int64_t jj = oj * stride - pad + kj;
    if (jj >= 0 && jj + (run - 1) * stride < w) {
      if (stride == 1) {
        std::memcpy(dst + t, xrow + jj,
                    static_cast<std::size_t>(run) * sizeof(float));
      } else {
        for (std::int64_t r = 0; r < run; ++r) {
          dst[t + r] = xrow[jj + r * stride];
        }
      }
    } else {
      for (std::int64_t r = 0; r < run; ++r) {
        const std::int64_t j2 = jj + r * stride;
        dst[t + r] = (j2 >= 0 && j2 < w) ? xrow[j2] : 0.0f;
      }
    }
    t += run;
  }
}

/// Packs rows [kc, kc+kb) x pixels [jc, jc+nb) of the virtual im2col matrix
/// into kNr-column slivers at `bp` — the forward path's B operand, gathered
/// straight from the input plane in packed layout.
void pack_col_panel(const float* x, std::int64_t h, std::int64_t w,
                    const ConvGeometry& g, const DecodeTable& dec,
                    std::int64_t kc, std::int64_t kb, std::int64_t jc,
                    std::int64_t nb, std::int64_t ow, float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = std::min(kNr, nb - jr);
    float* sliver = bp + jr * kb;
    const std::int64_t pixel0 = jc + jr;
    for (std::int64_t p = 0; p < kb; ++p) {
      const auto row = static_cast<std::size_t>(kc + p);
      const float* xplane = x + static_cast<std::int64_t>(dec.c[row]) * h * w;
      float* dst = sliver + p * kNr;
      gather_col_row(xplane, h, w, g.stride, g.padding, dec.ki[row],
                     dec.kj[row], ow, pixel0, n_eff, dst);
      for (std::int64_t j = n_eff; j < kNr; ++j) dst[j] = 0.0f;
    }
  }
}

/// Packs pixels [pc, pc+kb) x columns [jc, jc+nb) of the TRANSPOSED virtual
/// im2col matrix (the wgrad path's B operand). The kNr column decodes are
/// hoisted per sliver; the pixel walk is incremental, so the inner body is
/// kNr guarded loads.
void pack_colt_panel(const float* x, std::int64_t h, std::int64_t w,
                     const ConvGeometry& g, const DecodeTable& dec,
                     std::int64_t pc, std::int64_t kb, std::int64_t jc,
                     std::int64_t nb, std::int64_t ow, float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = std::min(kNr, nb - jr);
    float* sliver = bp + jr * kb;
    std::int64_t ki[kNr], kj[kNr];
    const float* xpl[kNr];
    for (std::int64_t j = 0; j < n_eff; ++j) {
      const auto row = static_cast<std::size_t>(jc + jr + j);
      ki[j] = dec.ki[row];
      kj[j] = dec.kj[row];
      xpl[j] = x + static_cast<std::int64_t>(dec.c[row]) * h * w;
    }
    std::int64_t oi = pc / ow;
    std::int64_t oj = pc % ow;
    for (std::int64_t p = 0; p < kb; ++p) {
      const std::int64_t ib = oi * g.stride - g.padding;
      const std::int64_t jb = oj * g.stride - g.padding;
      float* dst = sliver + p * kNr;
      for (std::int64_t j = 0; j < n_eff; ++j) {
        const std::int64_t ii = ib + ki[j];
        const std::int64_t jj = jb + kj[j];
        dst[j] = (ii >= 0 && ii < h && jj >= 0 && jj < w)
                     ? xpl[j][ii * w + jj]
                     : 0.0f;
      }
      for (std::int64_t j = n_eff; j < kNr; ++j) dst[j] = 0.0f;
      if (++oj == ow) {
        oj = 0;
        ++oi;
      }
    }
  }
}

/// Scatter-adds a computed dcol tile (rows [row0, row0+rows) x pixels
/// [pixel0, pixel0+count), leading dimension count) into the dX plane —
/// col2im restricted to one cache-hot tile.
void scatter_col_tile(const float* tile, std::int64_t row0, std::int64_t rows,
                      std::int64_t pixel0, std::int64_t count,
                      const DecodeTable& dec, const ConvGeometry& g,
                      std::int64_t h, std::int64_t w, std::int64_t ow,
                      float* dx) {
  for (std::int64_t p = 0; p < rows; ++p) {
    const auto row = static_cast<std::size_t>(row0 + p);
    float* xplane = dx + static_cast<std::int64_t>(dec.c[row]) * h * w;
    const std::int64_t ki = dec.ki[row];
    const std::int64_t kj = dec.kj[row];
    const float* src = tile + p * count;
    std::int64_t t = 0;
    while (t < count) {
      const std::int64_t pixel = pixel0 + t;
      const std::int64_t oi = pixel / ow;
      const std::int64_t oj = pixel % ow;
      const std::int64_t run = std::min(count - t, ow - oj);
      const std::int64_t ii = oi * g.stride - g.padding + ki;
      if (ii < 0 || ii >= h) {
        t += run;
        continue;
      }
      float* xrow = xplane + ii * w;
      const std::int64_t jj = oj * g.stride - g.padding + kj;
      if (jj >= 0 && jj + (run - 1) * g.stride < w) {
        if (g.stride == 1) {
          for (std::int64_t r = 0; r < run; ++r) xrow[jj + r] += src[t + r];
        } else {
          for (std::int64_t r = 0; r < run; ++r) {
            xrow[jj + r * g.stride] += src[t + r];
          }
        }
      } else {
        for (std::int64_t r = 0; r < run; ++r) {
          const std::int64_t j2 = jj + r * g.stride;
          if (j2 >= 0 && j2 < w) xrow[j2] += src[t + r];
        }
      }
      t += run;
    }
  }
}

void bias_relu_epilogue(float* y, const float* bias, std::int64_t out_ch,
                        std::int64_t plane, bool relu) {
  if (bias == nullptr && !relu) return;
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    float* row = y + oc * plane;
    if (relu) {
      for (std::int64_t j = 0; j < plane; ++j) {
        row[j] = std::max(row[j] + b, 0.0f);
      }
    } else if (b != 0.0f) {
      for (std::int64_t j = 0; j < plane; ++j) row[j] += b;
    }
  }
}

Path resolve_path(const ConvKernelOpts& opts, const float* weight,
                  std::int64_t count, bool taps_available) {
  if (opts.algo == ConvAlgo::kIm2colReference) return Path::kRef;
  if (opts.algo == ConvAlgo::kImplicit || !taps_available) {
    return Path::kPacked;
  }
  float zf = opts.weight_zero_fraction;
  if (zf < 0.0f) zf = weight_zero_fraction(weight, count);
  return zf >= kConvSparseWeightFraction ? Path::kTaps : Path::kPacked;
}

/// Runs `tiles(t0, t1)` over the `count` output-column tiles of a packed
/// kernel: as stealable subtasks when the caller asked for tile parallelism
/// (grain 1 — a tile is already kNc columns of work), serial otherwise.
template <typename Tiles>
void for_each_tile(std::int64_t count, bool parallel, const Tiles& tiles) {
  if (parallel && count > 1) {
    parallel_for(count, tiles, /*grain=*/1);
  } else {
    tiles(0, count);
  }
}

// ---- forward ----------------------------------------------------------------

RT_HOT void forward_packed(const float* x, std::int64_t c_in, std::int64_t h,
                           std::int64_t w, const ConvGeometry& g,
                           const float* weight, std::int64_t out_ch, float* y,
                           const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;

  // Weight panels: the batch-shared pre-pack when the caller supplied one
  // (panel ir starts at ir*ckk, its k-slice kc at + kc*kMr), else a local
  // pack (cost 1/ohw of the MACs). The local pack must be STACK-owned when
  // tiles go parallel: a worker blocked in the region's wait helps execute
  // other queued tasks, which can re-enter this function on the same thread
  // — a thread_local buffer would be republished to still-running tiles of
  // the first call. The serial path keeps the allocation-free thread_local.
  const float* wp;
  thread_local std::vector<float> wpack_tl;
  std::vector<float> wpack_frame;
  if (opts.packed_weights != nullptr && opts.packed_weights->has_forward() &&
      opts.packed_weights->matches(out_ch, ckk)) {
    wp = opts.packed_weights->forward_panels();
  } else {
    std::vector<float>& wpack = opts.parallel_tiles ? wpack_frame : wpack_tl;
    // Dynamic: panel size follows the layer shape. Serving never takes this
    // branch (tickets carry pre-packed panels); training pays it per call on
    // the parallel path only.
    wpack.resize(  // rtlint: allow(R2) shape-dependent weight panel
        static_cast<std::size_t>(round_up(out_ch, kMr) * ckk));
    pack_a_rows(weight, ckk, 0, out_ch, 0, ckk, wpack.data());
    wp = wpack.data();
  }

  // Output-column tiles are independent (each writes its own y columns and
  // accumulates its kc panels in the fixed serial order), so they can run
  // as stealable subtasks when the batch alone cannot fill the machine.
  const std::int64_t tiles = (ohw + kNc - 1) / kNc;
  for_each_tile(tiles, opts.parallel_tiles,
                [&](std::int64_t t0, std::int64_t t1) {
    // Per-leaf lookups: the executing thread's own decode table and pack
    // buffer, never the spawning thread's (whose thread_locals may be
    // rebuilt under it while it helps with unrelated tasks).
    const DecodeTable& dec = decode_table(c_in, g.kernel);
    thread_local float bbuf[kKc * kNc];
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t jc = t * kNc;
      const std::int64_t nb = std::min(kNc, ohw - jc);
      for (std::int64_t kc = 0; kc < ckk; kc += kKc) {
        const std::int64_t kb = std::min(kKc, ckk - kc);
        pack_col_panel(x, h, w, g, dec, kc, kb, jc, nb, ow, bbuf);
        for (std::int64_t ir = 0; ir < out_ch; ir += kMr) {
          const std::int64_t mr = std::min(kMr, out_ch - ir);
          const float* ap = wp + ir * ckk + kc * kMr;
          float* crow = y + ir * ohw + jc;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, ohw);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, ohw, mr, nr);
            }
          }
        }
      }
    }
  });
}

RT_HOT void forward_taps(const float* x, std::int64_t c_in, std::int64_t h,
                         std::int64_t w, const ConvGeometry& g,
                         const float* weight, std::int64_t out_ch, float* y) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t s = g.stride;
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float* wrow = weight + oc * ckk;
    float* yplane = y + oc * ohw;
    for (std::int64_t p = 0; p < ckk; ++p) {
      const float v = wrow[p];
      if (v == 0.0f) continue;
      const auto pr = static_cast<std::size_t>(p);
      const std::int64_t ki = dec.ki[pr], kj = dec.kj[pr];
      const TapWindow wi = tap_window(oh, h, ki, s, g.padding);
      const TapWindow wj = tap_window(ow, w, kj, s, g.padding);
      const std::int64_t count = wj.o1 - wj.o0;
      if (wi.o1 <= wi.o0 || count <= 0) continue;
      const float* xplane =
          x + static_cast<std::int64_t>(dec.c[pr]) * h * w;
      const std::int64_t jj0 = wj.o0 * s - g.padding + kj;
      for (std::int64_t oi = wi.o0; oi < wi.o1; ++oi) {
        const std::int64_t ii = oi * s - g.padding + ki;
        const float* __restrict xr = xplane + ii * w + jj0;
        float* __restrict yr = yplane + oi * ow + wj.o0;
        if (s == 1) {
          for (std::int64_t j = 0; j < count; ++j) yr[j] += v * xr[j];
        } else {
          for (std::int64_t j = 0; j < count; ++j) yr[j] += v * xr[j * s];
        }
      }
    }
  }
}

void forward_ref(const float* x, std::int64_t c_in, std::int64_t h,
                 std::int64_t w, const ConvGeometry& g, const float* weight,
                 std::int64_t out_ch, float* y) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> colbuf;
  colbuf.resize(static_cast<std::size_t>(ckk * ohw));
  im2col_plane(x, c_in, h, w, g, colbuf.data());
  gemm_nn(out_ch, ohw, ckk, weight, colbuf.data(), y,
          {.accumulate = true, .parallel = false, .packed = false});
}

// ---- input gradient ---------------------------------------------------------

RT_HOT void dgrad_packed(const float* weight, std::int64_t out_ch,
                         const float* gout, std::int64_t c_in, std::int64_t h,
                         std::int64_t w, const ConvGeometry& g, float* dx,
                         const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const DecodeTable& dec = decode_table(c_in, g.kernel);

  // A = W^T: the transpose is paid once, in packing — by the batch-shared
  // pre-pack when available, else locally.
  const float* wtp;
  thread_local std::vector<float> wtpack;
  if (opts.packed_weights != nullptr && opts.packed_weights->has_dgrad() &&
      opts.packed_weights->matches(out_ch, ckk)) {
    wtp = opts.packed_weights->dgrad_panels();
  } else {
    // Dynamic: W^T panel size follows the layer shape (see forward_packed).
    wtpack.resize(  // rtlint: allow(R2) shape-dependent weight panel
        static_cast<std::size_t>(round_up(ckk, kMr) * out_ch));
    pack_a_rows_trans(weight, ckk, 0, ckk, 0, out_ch, wtpack.data());
    wtp = wtpack.data();
  }

  thread_local float bbuf[kKc * kNc];
  thread_local float ctile[kMcScatter * kNc];

  for (std::int64_t jc = 0; jc < ohw; jc += kNc) {
    const std::int64_t nb = std::min(kNc, ohw - jc);
    for (std::int64_t ic = 0; ic < ckk; ic += kMcScatter) {
      const std::int64_t mb = std::min(kMcScatter, ckk - ic);
      std::memset(ctile, 0, static_cast<std::size_t>(mb * nb) * sizeof(float));
      for (std::int64_t kc = 0; kc < out_ch; kc += kKc) {
        const std::int64_t kb = std::min(kKc, out_ch - kc);
        pack_b_cols(gout, ohw, kc, kb, jc, nb, bbuf);
        for (std::int64_t ir = 0; ir < mb; ir += kMr) {
          const std::int64_t mr = std::min(kMr, mb - ir);
          const float* ap = wtp + (ic + ir) * out_ch + kc * kMr;
          float* crow = ctile + ir * nb;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, nb);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, nb, mr, nr);
            }
          }
        }
      }
      scatter_col_tile(ctile, ic, mb, jc, nb, dec, g, h, w, ow, dx);
    }
  }
}

void dgrad_taps(const float* weight, std::int64_t out_ch, const float* gout,
                std::int64_t c_in, std::int64_t h, std::int64_t w,
                const ConvGeometry& g, float* dx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  const std::int64_t s = g.stride;
  const DecodeTable& dec = decode_table(c_in, g.kernel);
  for (std::int64_t oc = 0; oc < out_ch; ++oc) {
    const float* wrow = weight + oc * ckk;
    const float* gplane = gout + oc * ohw;
    for (std::int64_t p = 0; p < ckk; ++p) {
      const float v = wrow[p];
      if (v == 0.0f) continue;
      const auto pr = static_cast<std::size_t>(p);
      const std::int64_t ki = dec.ki[pr], kj = dec.kj[pr];
      const TapWindow wi = tap_window(oh, h, ki, s, g.padding);
      const TapWindow wj = tap_window(ow, w, kj, s, g.padding);
      const std::int64_t count = wj.o1 - wj.o0;
      if (wi.o1 <= wi.o0 || count <= 0) continue;
      float* xplane = dx + static_cast<std::int64_t>(dec.c[pr]) * h * w;
      const std::int64_t jj0 = wj.o0 * s - g.padding + kj;
      for (std::int64_t oi = wi.o0; oi < wi.o1; ++oi) {
        const std::int64_t ii = oi * s - g.padding + ki;
        float* __restrict xr = xplane + ii * w + jj0;
        const float* __restrict gr = gplane + oi * ow + wj.o0;
        if (s == 1) {
          for (std::int64_t j = 0; j < count; ++j) xr[j] += v * gr[j];
        } else {
          for (std::int64_t j = 0; j < count; ++j) xr[j * s] += v * gr[j];
        }
      }
    }
  }
}

void dgrad_ref(const float* weight, std::int64_t out_ch, const float* gout,
               std::int64_t c_in, std::int64_t h, std::int64_t w,
               const ConvGeometry& g, float* dx) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> dcol;
  dcol.resize(static_cast<std::size_t>(ckk * ohw));
  gemm_tn(ckk, ohw, out_ch, weight, gout, dcol.data(),
          {.accumulate = false, .parallel = false, .packed = false});
  col2im_plane_add(dcol.data(), c_in, h, w, g, dx);
}

// ---- weight gradient --------------------------------------------------------

RT_HOT void wgrad_packed(const float* gout, const float* x, std::int64_t c_in,
                         std::int64_t h, std::int64_t w, const ConvGeometry& g,
                         std::int64_t out_ch, float* dw,
                         const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;

  // dW-column tiles are independent: each accumulates its own dw columns
  // over the pixel panels in the same ascending pc order as the serial
  // loop, so per-element summation order — and hence the bits — do not
  // change. The gout panel re-pack per (tile, pc) pair costs 1/kNc of the
  // tile's MACs, which the extra parallelism amortizes.
  const std::int64_t tiles = (ckk + kNc - 1) / kNc;
  for_each_tile(tiles, opts.parallel_tiles,
                [&](std::int64_t t0, std::int64_t t1) {
    // Executing thread's own caches (see forward_packed on why the
    // spawning thread's thread_locals must not be shared with leaves).
    const DecodeTable& dec = decode_table(c_in, g.kernel);
    thread_local std::vector<float> apack;
    thread_local float bbuf[kKc * kNc];
    // Dynamic: gout panel height follows out_ch. Steady-state free per
    // thread once grown to the model's widest layer.
    apack.resize(  // rtlint: allow(R2) shape-dependent gout panel
        static_cast<std::size_t>(round_up(out_ch, kMr) * kKc));
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t jc = t * kNc;
      const std::int64_t nb = std::min(kNc, ckk - jc);
      for (std::int64_t pc = 0; pc < ohw; pc += kKc) {
        const std::int64_t kb = std::min(kKc, ohw - pc);
        pack_a_rows(gout, ohw, 0, out_ch, pc, kb, apack.data());
        pack_colt_panel(x, h, w, g, dec, pc, kb, jc, nb, ow, bbuf);
        for (std::int64_t ir = 0; ir < out_ch; ir += kMr) {
          const std::int64_t mr = std::min(kMr, out_ch - ir);
          const float* ap = apack.data() + ir * kb;
          float* crow = dw + ir * ckk + jc;
          for (std::int64_t jr = 0; jr < nb; jr += kNr) {
            const std::int64_t nr = std::min(kNr, nb - jr);
            const float* bp = bbuf + jr * kb;
            if (mr == kMr && nr == kNr) {
              micro_kernel_full(kb, ap, bp, crow + jr, ckk);
            } else {
              micro_kernel_edge(kb, ap, bp, crow + jr, ckk, mr, nr);
            }
          }
        }
      }
    }
  });
}

void wgrad_ref(const float* gout, const float* x, std::int64_t c_in,
               std::int64_t h, std::int64_t w, const ConvGeometry& g,
               std::int64_t out_ch, float* dw) {
  const std::int64_t ohw = g.out_extent(h) * g.out_extent(w);
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  thread_local std::vector<float> colbuf;
  colbuf.resize(static_cast<std::size_t>(ckk * ohw));
  im2col_plane(x, c_in, h, w, g, colbuf.data());
  gemm_nt(out_ch, ckk, ohw, gout, colbuf.data(), dw,
          {.accumulate = true, .parallel = false, .skip_zero_b_rows = false,
           .packed = false});
}

}  // namespace

// ---- public entry points ----------------------------------------------------

void conv2d_forward_plane(const float* x, std::int64_t c_in, std::int64_t h,
                          std::int64_t w, const ConvGeometry& g,
                          const float* weight, std::int64_t out_ch, float* y,
                          const float* bias, bool relu,
                          const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  std::memset(y, 0, static_cast<std::size_t>(out_ch * oh * ow) *
                        sizeof(float));
  switch (resolve_path(opts, weight, out_ch * ckk, /*taps_available=*/true)) {
    case Path::kPacked:
      forward_packed(x, c_in, h, w, g, weight, out_ch, y, opts);
      break;
    case Path::kTaps: forward_taps(x, c_in, h, w, g, weight, out_ch, y);
      break;
    case Path::kRef: forward_ref(x, c_in, h, w, g, weight, out_ch, y); break;
  }
  bias_relu_epilogue(y, bias, out_ch, oh * ow, relu);
}

void conv2d_dgrad_plane(const float* weight, std::int64_t out_ch,
                        const float* gout, std::int64_t c_in, std::int64_t h,
                        std::int64_t w, const ConvGeometry& g, float* dx,
                        const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  const std::int64_t ckk = c_in * g.kernel * g.kernel;
  switch (resolve_path(opts, weight, out_ch * ckk, /*taps_available=*/true)) {
    case Path::kPacked:
      dgrad_packed(weight, out_ch, gout, c_in, h, w, g, dx, opts);
      break;
    case Path::kTaps: dgrad_taps(weight, out_ch, gout, c_in, h, w, g, dx);
      break;
    case Path::kRef: dgrad_ref(weight, out_ch, gout, c_in, h, w, g, dx);
      break;
  }
}

void conv2d_wgrad_plane(const float* gout, const float* x, std::int64_t c_in,
                        std::int64_t h, std::int64_t w, const ConvGeometry& g,
                        std::int64_t out_ch, float* dw,
                        const ConvKernelOpts& opts) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  if (out_ch <= 0 || oh <= 0 || ow <= 0) return;
  if (opts.algo == ConvAlgo::kIm2colReference) {
    wgrad_ref(gout, x, c_in, h, w, g, out_ch, dw);
  } else {
    wgrad_packed(gout, x, c_in, h, w, g, out_ch, dw, opts);
  }
}

void PackedWeights::pack(const float* weight, std::int64_t out_ch,
                         std::int64_t ckk, bool forward, bool dgrad) {
  out_ch_ = out_ch;
  ckk_ = ckk;
  if (forward) {
    fwd_.resize(static_cast<std::size_t>(round_up(out_ch, kMr) * ckk));
    pack_a_rows(weight, ckk, 0, out_ch, 0, ckk, fwd_.data());
  } else {
    fwd_.clear();
  }
  if (dgrad) {
    dgrad_.resize(static_cast<std::size_t>(round_up(ckk, kMr) * out_ch));
    pack_a_rows_trans(weight, ckk, 0, ckk, 0, out_ch, dgrad_.data());
  } else {
    dgrad_.clear();
  }
}

void PackedWeights::clear() {
  fwd_.clear();
  dgrad_.clear();
  out_ch_ = 0;
  ckk_ = 0;
}

void im2col_plane(const float* xd, std::int64_t c_in, std::int64_t h,
                  std::int64_t w, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    const float* xc = xd + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        float* out = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          const bool row_in = ii >= 0 && ii < h;
          const float* xrow = row_in ? xc + ii * w : xc;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            out[oi * ow + oj] =
                (row_in && jj >= 0 && jj < w) ? xrow[jj] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_plane_add(const float* col, std::int64_t c_in, std::int64_t h,
                      std::int64_t w, const ConvGeometry& g, float* dx) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    float* xc = dx + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        const float* in = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          if (ii < 0 || ii >= h) continue;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            if (jj >= 0 && jj < w) xc[ii * w + jj] += in[oi * ow + oj];
          }
        }
      }
    }
  }
}

TapWindow tap_window(std::int64_t out_extent, std::int64_t in_extent,
                     std::int64_t kpos, std::int64_t stride,
                     std::int64_t pad) {
  const std::int64_t lo = pad - kpos;
  // hi < 0 means no output position reads in bounds; guard it before the
  // division, which truncates toward zero and would yield o1 == 1.
  const std::int64_t hi = in_extent - 1 + pad - kpos;
  TapWindow win;
  win.o0 = lo > 0 ? (lo + stride - 1) / stride : 0;
  win.o1 = hi < 0 ? 0 : std::min(out_extent, hi / stride + 1);
  if (win.o1 < win.o0) win.o1 = win.o0;
  return win;
}

float weight_zero_fraction(const float* weight, std::int64_t count) {
  if (count <= 0) return 0.0f;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    if (weight[i] == 0.0f) ++zeros;
  }
  return static_cast<float>(zeros) / static_cast<float>(count);
}

}  // namespace rt
