#pragma once
// Compressed sparse row (CSR) matrices and the SpMM kernels behind the
// engine's masked-ticket inference path.
//
// The dense GEMM kernels in linalg/gemm.hpp skip zero multipliers
// element-wise, but still pay a load + branch per masked weight. For
// unstructured tickets at 90%+ sparsity the scan itself dominates; packing
// the weight operand into CSR once (at Engine::compile time) makes every
// subsequent multiply proportional to the nonzero count. Column indices are
// 32-bit — weight matrices here are at most a few thousand columns wide.

#include <cstdint>
#include <vector>

namespace rt {

struct CsrMatrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int32_t> row_ptr;  ///< size rows + 1
  std::vector<std::int32_t> col_idx;  ///< size nnz
  std::vector<float> values;          ///< size nnz

  std::int64_t nnz() const { return static_cast<std::int64_t>(values.size()); }
  bool empty() const { return rows == 0; }
};

/// Packs a row-major dense (rows, cols) matrix, keeping exact nonzeros.
CsrMatrix csr_from_dense(std::int64_t rows, std::int64_t cols,
                         const float* dense);

/// C(rows, n) = A * B with A in CSR and B dense (cols, n) row-major.
/// Rows of A without nonzeros produce zero rows (C is cleared first unless
/// accumulate). Cost is O(nnz * n). Standalone primitive for weight-times-
/// column-buffer shapes; note the engine's CSR convs do NOT call it — they
/// run an implicit sparse conv over precompiled taps (engine/plan.cpp).
void spmm_csr(const CsrMatrix& a, std::int64_t n, const float* b, float* c,
              bool accumulate = false);

/// Y(m, rows) = X * A^T with X dense (m, cols) row-major: the linear-layer
/// shape y = x W^T. Cost is O(m * nnz).
void spmm_csr_rhs_t(const CsrMatrix& a, std::int64_t m, const float* x,
                    float* y, bool accumulate = false);

}  // namespace rt
