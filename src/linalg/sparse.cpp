#include "linalg/sparse.hpp"

#include <cstring>
#include <stdexcept>

namespace rt {

CsrMatrix csr_from_dense(std::int64_t rows, std::int64_t cols,
                         const float* dense) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("csr_from_dense: negative extent");
  }
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
  m.row_ptr.push_back(0);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = dense + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      if (row[c] != 0.0f) {
        m.col_idx.push_back(static_cast<std::int32_t>(c));
        m.values.push_back(row[c]);
      }
    }
    m.row_ptr.push_back(static_cast<std::int32_t>(m.values.size()));
  }
  return m;
}

void spmm_csr(const CsrMatrix& a, std::int64_t n, const float* b, float* c,
              bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<std::size_t>(a.rows * n) * sizeof(float));
  }
  for (std::int64_t r = 0; r < a.rows; ++r) {
    float* crow = c + r * n;
    const std::int32_t begin = a.row_ptr[static_cast<std::size_t>(r)];
    const std::int32_t end = a.row_ptr[static_cast<std::size_t>(r) + 1];
    for (std::int32_t t = begin; t < end; ++t) {
      const float v = a.values[static_cast<std::size_t>(t)];
      const float* brow = b + static_cast<std::int64_t>(
                                  a.col_idx[static_cast<std::size_t>(t)]) *
                                  n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

void spmm_csr_rhs_t(const CsrMatrix& a, std::int64_t m, const float* x,
                    float* y, bool accumulate) {
  if (!accumulate) {
    std::memset(y, 0, static_cast<std::size_t>(m * a.rows) * sizeof(float));
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const float* xrow = x + i * a.cols;
    float* yrow = y + i * a.rows;
    for (std::int64_t r = 0; r < a.rows; ++r) {
      const std::int32_t begin = a.row_ptr[static_cast<std::size_t>(r)];
      const std::int32_t end = a.row_ptr[static_cast<std::size_t>(r) + 1];
      float acc = 0.0f;
      for (std::int32_t t = begin; t < end; ++t) {
        acc += a.values[static_cast<std::size_t>(t)] *
               xrow[a.col_idx[static_cast<std::size_t>(t)]];
      }
      yrow[r] += acc;
    }
  }
}

}  // namespace rt
