#pragma once
// Convolution kernel layer: fused implicit-GEMM forward / input-gradient /
// weight-gradient over one (C, H, W) plane, plus the im2col/col2im reference
// kernels they are verified against.
//
// The implicit kernels view the convolution as the GEMMs
//
//   forward:  Y (out_ch, OH*OW)  = W (out_ch, C*k*k) * col(X)
//   dgrad:    dcol (C*k*k, OH*OW) = W^T * dY,  scattered back into dX
//   wgrad:    dW (out_ch, C*k*k) += dY * col(X)^T
//
// but never materialize col(X): panels of the virtual im2col matrix are
// gathered on the fly — in cache-sized tiles, zero-padded at image borders —
// straight into the packed layout the shared register-tiled micro-kernel
// (linalg/microkernel.hpp) consumes, and for dgrad each computed tile is
// scattered into dX while still cache-hot. The full per-sample column buffer
// (C*k*k * OH*OW floats, the dominant memory traffic of small-image
// training) is gone from the hot path.
//
// Masked tickets keep their fast path: when the weight matrix is zeroed past
// the sparsity crossover, forward and dgrad switch to a tap loop that slides
// each nonzero weight's valid output window directly over the input — the
// training-path analogue of the engine's compiled implicit sparse conv —
// skipping zero weights wholesale.
//
// The kernels are serial by default: batch-level parallelism (one sample per
// scheduler task, one Session workspace per predict) composes better than
// intra-plane threading at these extents. When the batch is too small to
// fill the machine, ConvKernelOpts::parallel_tiles splits the forward and
// weight-gradient kernels' output-column tile loops into stealable subtasks
// on the work-stealing scheduler instead — tiles write disjoint outputs and
// keep each element's accumulation order unchanged, so results stay bitwise
// identical to the serial path. The input-gradient kernel stays serial per
// plane: its tiles scatter-add into overlapping dx positions.

#include <cstdint>
#include <vector>

#include "linalg/gemm_s8.hpp"

namespace rt {

/// Geometry of a convolution: output size given input size.
struct ConvGeometry {
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;
  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent + 2 * padding - kernel) / stride + 1;
  }
};

/// Algorithm selection for the plane-level conv kernels.
enum class ConvAlgo {
  /// Packed implicit GEMM for dense-ish weights, the zero-skipping tap path
  /// once the weight's zero fraction crosses the sparsity threshold.
  kAuto,
  /// Always the packed implicit-GEMM path.
  kImplicit,
  /// Materialize the full im2col buffer and run the legacy streaming GEMM
  /// cores — the pre-fusion baseline, kept for parity tests and as the
  /// speedup reference in bench_kernels.
  kIm2colReference,
};

/// Weight zero fraction past which the zero-skipping tap path overtakes the
/// packed implicit-GEMM path's higher dense throughput (~5x dense advantage,
/// same reasoning as the GEMM dispatch crossover). Exported so batch loops
/// and Engine::compile can predict the dispatch — e.g. to pre-pack weight
/// panels only when the packed path will actually run.
inline constexpr float kConvSparseWeightFraction = 0.80f;

/// Weight panels in the packed micro-kernel layout, gathered once and reused
/// across every plane call that shares the weight — per batch in Conv2d, per
/// CompiledTicket in the engine (packed at Engine::compile time). Removes
/// the per-sample panel re-pack (cost 1/OHW of the MACs, noticeable at tiny
/// planes). The panels are exactly what the kernels would have packed
/// locally, so results are bitwise unchanged.
class PackedWeights {
 public:
  /// Packs W (out_ch x ckk): `forward` gathers the kMr row panels the
  /// forward kernel consumes, `dgrad` the W^T panels of the input-gradient
  /// kernel. Either may be skipped to save the memory.
  void pack(const float* weight, std::int64_t out_ch, std::int64_t ckk,
            bool forward, bool dgrad);
  void clear();

  bool matches(std::int64_t out_ch, std::int64_t ckk) const {
    return out_ch == out_ch_ && ckk == ckk_;
  }
  bool has_forward() const { return !fwd_.empty(); }
  bool has_dgrad() const { return !dgrad_.empty(); }
  /// Resident bytes of the packed panels — the memory a plan that retains
  /// this handle pays on top of the raw weights.
  std::int64_t bytes() const {
    return static_cast<std::int64_t>((fwd_.size() + dgrad_.size()) *
                                     sizeof(float));
  }
  /// round_up(out_ch, kMr) row panels of width ckk.
  const float* forward_panels() const { return fwd_.data(); }
  /// round_up(ckk, kMr) row panels of width out_ch (the packed transpose).
  const float* dgrad_panels() const { return dgrad_.data(); }

 private:
  std::vector<float> fwd_;
  std::vector<float> dgrad_;
  std::int64_t out_ch_ = 0;
  std::int64_t ckk_ = 0;
};

struct ConvKernelOpts {
  ConvAlgo algo = ConvAlgo::kAuto;
  /// Fraction of zero entries in the weight matrix; negative = unknown, in
  /// which case kAuto counts it per call. Batch loops should count once
  /// (weights are shared across samples) and pass the value down.
  float weight_zero_fraction = -1.0f;
  /// Pre-packed panels for this weight (see PackedWeights). Consulted only
  /// when the packed implicit-GEMM path runs and the extents match; the
  /// kernels fall back to local packing otherwise.
  const PackedWeights* packed_weights = nullptr;
  /// Split the forward/wgrad output-column tile loop into stealable
  /// subtasks on the current scheduler. Off by default — batch-level
  /// parallelism should stay the outer loop when the batch fills the
  /// machine; flip it on when it does not (see Conv2d::forward).
  bool parallel_tiles = false;
};

/// Forward: y (out_ch, OH, OW) = weight (out_ch, C*k*k) applied to x
/// (c_in, h, w). y is fully overwritten. When `bias` is non-null a
/// per-channel bias is fused into the epilogue, and `relu` additionally
/// clamps at zero — the serving engine's folded conv+BN(+ReLU) epilogue.
void conv2d_forward_plane(const float* x, std::int64_t c_in, std::int64_t h,
                          std::int64_t w, const ConvGeometry& g,
                          const float* weight, std::int64_t out_ch, float* y,
                          const float* bias = nullptr, bool relu = false,
                          const ConvKernelOpts& opts = {});

/// True int8 forward (serving only): y (out_ch, OH, OW) float =
/// requant(W_q (out_ch, C*k*k) * col(X_q)) over one offset-u8 input plane
/// `xq`. Reuses the virtual-im2col gather path — panels of col(X_q) are
/// gathered straight into the int8 kernel's quad-sliver layout, with
/// out-of-image taps reading as the zero encoding 128. `w_panels` are the
/// weight's quad panels (PackedS8 / pack_a_quads_s8, packed at compile
/// time); `acc` is caller scratch of at least out_ch * OH*OW int32 (used
/// only when round_up4(C*k*k) exceeds kKcFullS8 — smaller extents
/// accumulate in registers). `gather_idx`, when non-null, is a precomputed
/// C*k*k x OH*OW source-index table (build_s8_gather_index) that replaces
/// the run-decomposed gather — worth it for narrow planes where image rows
/// are too short to amortize per-row setup. The epilogue's per-row fields
/// index output channels. Serial per plane, bitwise deterministic (integer
/// accumulation in a fixed order, identical with and without the table).
void conv2d_forward_plane_s8(const std::uint8_t* xq, std::int64_t c_in,
                             std::int64_t h, std::int64_t w,
                             const ConvGeometry& g, const std::int8_t* w_panels,
                             std::int64_t out_ch, std::int32_t* acc, float* y,
                             const S8Epilogue& ep,
                             const std::int32_t* gather_idx = nullptr);

/// Batched variant of conv2d_forward_plane_s8 for the serving engine: runs
/// the whole batch as one implicit GEMM whose column space is
/// (sample, output pixel) — sample i's plane starts at xq + i * x_stride and
/// its output at y + i * y_stride. Tiny planes (OH*OW of 4-16) are where
/// this pays: B-staging, micro-tile, and epilogue fixed costs amortize over
/// n * OH*OW columns instead of one sample's, and the kNrS8-lane tile pad
/// vanishes. Bitwise identical to the per-sample loop (integer accumulation
/// in the same per-column order; one float expression per output). Falls
/// back to per-sample calls when round_up4(C*k*k) exceeds kKcFullS8 (then
/// `acc` is used, sized as for the plane call).
void conv2d_forward_batch_s8(const std::uint8_t* xq, std::int64_t n,
                             std::int64_t x_stride, std::int64_t c_in,
                             std::int64_t h, std::int64_t w,
                             const ConvGeometry& g, const std::int8_t* w_panels,
                             std::int64_t out_ch, std::int32_t* acc, float* y,
                             std::int64_t y_stride, const S8Epilogue& ep,
                             const std::int32_t* gather_idx = nullptr);

/// Precomputes the virtual-im2col source-index table for
/// conv2d_forward_plane_s8: entry [p * OH*OW + j] is the flat input-plane
/// offset feeding column row p at output pixel j, or -1 for out-of-image
/// taps (the gather substitutes the zero encoding 128). Compile-time only —
/// the engine builds one per narrow-plane int8 conv layer.
std::vector<std::int32_t> build_s8_gather_index(std::int64_t c_in,
                                                std::int64_t h, std::int64_t w,
                                                const ConvGeometry& g);

/// Input gradient: dx (c_in, h, w) += weight^T applied to gout
/// (out_ch, OH, OW). Accumulates (callers zero-initialize dx once per batch).
void conv2d_dgrad_plane(const float* weight, std::int64_t out_ch,
                        const float* gout, std::int64_t c_in, std::int64_t h,
                        std::int64_t w, const ConvGeometry& g, float* dx,
                        const ConvKernelOpts& opts = {});

/// Weight gradient: dw (out_ch, C*k*k) += gout (out_ch, OH, OW) *
/// col(x)^T. Accumulates into dw (per-sample calls sum over the batch).
/// Gradients are dense regardless of weight masks (masked entries are
/// re-zeroed by the optimizer), so there is no tap path here.
void conv2d_wgrad_plane(const float* gout, const float* x, std::int64_t c_in,
                        std::int64_t h, std::int64_t w, const ConvGeometry& g,
                        std::int64_t out_ch, float* dw,
                        const ConvKernelOpts& opts = {});

/// Reference/fallback: expands one (C, H, W) plane at `x` into a full
/// (C*k*k, OH*OW) column buffer. Out-of-image taps read as zero. Retained as
/// the parity oracle for the implicit kernels and for the engine's CSR
/// workspace sizing; the training and serving hot paths no longer call it.
void im2col_plane(const float* x, std::int64_t c_in, std::int64_t h,
                  std::int64_t w, const ConvGeometry& g, float* col);

/// Reference/fallback inverse (adjoint) of im2col_plane: scatter-adds a full
/// (C*k*k, OH*OW) column gradient into the (c_in, h, w) plane at `dx`.
void col2im_plane_add(const float* col, std::int64_t c_in, std::int64_t h,
                      std::int64_t w, const ConvGeometry& g, float* dx);

/// Exact zero fraction of a weight matrix — the value batch loops pass as
/// ConvKernelOpts::weight_zero_fraction.
float weight_zero_fraction(const float* weight, std::int64_t count);

/// Output positions whose input tap at kernel offset `kpos` stays in
/// bounds: the half-open range [o0, o1) (empty => o0 == o1). One definition
/// shared by the training tap path and the engine's compile-time CSR tap
/// resolution, so the two sparse-conv executors can never drift.
struct TapWindow {
  std::int64_t o0 = 0, o1 = 0;
};
TapWindow tap_window(std::int64_t out_extent, std::int64_t in_extent,
                     std::int64_t kpos, std::int64_t stride, std::int64_t pad);

}  // namespace rt
