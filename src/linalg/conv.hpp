#pragma once
// Convolution kernel layer: fused implicit-GEMM forward / input-gradient /
// weight-gradient over one (C, H, W) plane, plus the im2col/col2im reference
// kernels they are verified against.
//
// The implicit kernels view the convolution as the GEMMs
//
//   forward:  Y (out_ch, OH*OW)  = W (out_ch, C*k*k) * col(X)
//   dgrad:    dcol (C*k*k, OH*OW) = W^T * dY,  scattered back into dX
//   wgrad:    dW (out_ch, C*k*k) += dY * col(X)^T
//
// but never materialize col(X): panels of the virtual im2col matrix are
// gathered on the fly — in cache-sized tiles, zero-padded at image borders —
// straight into the packed layout the shared register-tiled micro-kernel
// (linalg/microkernel.hpp) consumes, and for dgrad each computed tile is
// scattered into dX while still cache-hot. The full per-sample column buffer
// (C*k*k * OH*OW floats, the dominant memory traffic of small-image
// training) is gone from the hot path.
//
// Masked tickets keep their fast path: when the weight matrix is zeroed past
// the sparsity crossover, forward and dgrad switch to a tap loop that slides
// each nonzero weight's valid output window directly over the input — the
// training-path analogue of the engine's compiled implicit sparse conv —
// skipping zero weights wholesale.
//
// All kernels are serial on purpose: batch-level parallelism (one sample per
// ThreadPool chunk, one Session workspace per predict) composes better than
// intra-plane threading at these extents.

#include <cstdint>

namespace rt {

/// Geometry of a convolution: output size given input size.
struct ConvGeometry {
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;
  std::int64_t out_extent(std::int64_t in_extent) const {
    return (in_extent + 2 * padding - kernel) / stride + 1;
  }
};

/// Algorithm selection for the plane-level conv kernels.
enum class ConvAlgo {
  /// Packed implicit GEMM for dense-ish weights, the zero-skipping tap path
  /// once the weight's zero fraction crosses the sparsity threshold.
  kAuto,
  /// Always the packed implicit-GEMM path.
  kImplicit,
  /// Materialize the full im2col buffer and run the legacy streaming GEMM
  /// cores — the pre-fusion baseline, kept for parity tests and as the
  /// speedup reference in bench_kernels.
  kIm2colReference,
};

struct ConvKernelOpts {
  ConvAlgo algo = ConvAlgo::kAuto;
  /// Fraction of zero entries in the weight matrix; negative = unknown, in
  /// which case kAuto counts it per call. Batch loops should count once
  /// (weights are shared across samples) and pass the value down.
  float weight_zero_fraction = -1.0f;
};

/// Forward: y (out_ch, OH, OW) = weight (out_ch, C*k*k) applied to x
/// (c_in, h, w). y is fully overwritten. When `bias` is non-null a
/// per-channel bias is fused into the epilogue, and `relu` additionally
/// clamps at zero — the serving engine's folded conv+BN(+ReLU) epilogue.
void conv2d_forward_plane(const float* x, std::int64_t c_in, std::int64_t h,
                          std::int64_t w, const ConvGeometry& g,
                          const float* weight, std::int64_t out_ch, float* y,
                          const float* bias = nullptr, bool relu = false,
                          const ConvKernelOpts& opts = {});

/// Input gradient: dx (c_in, h, w) += weight^T applied to gout
/// (out_ch, OH, OW). Accumulates (callers zero-initialize dx once per batch).
void conv2d_dgrad_plane(const float* weight, std::int64_t out_ch,
                        const float* gout, std::int64_t c_in, std::int64_t h,
                        std::int64_t w, const ConvGeometry& g, float* dx,
                        const ConvKernelOpts& opts = {});

/// Weight gradient: dw (out_ch, C*k*k) += gout (out_ch, OH, OW) *
/// col(x)^T. Accumulates into dw (per-sample calls sum over the batch).
/// Gradients are dense regardless of weight masks (masked entries are
/// re-zeroed by the optimizer), so there is no tap path here.
void conv2d_wgrad_plane(const float* gout, const float* x, std::int64_t c_in,
                        std::int64_t h, std::int64_t w, const ConvGeometry& g,
                        std::int64_t out_ch, float* dw,
                        const ConvKernelOpts& opts = {});

/// Reference/fallback: expands one (C, H, W) plane at `x` into a full
/// (C*k*k, OH*OW) column buffer. Out-of-image taps read as zero. Retained as
/// the parity oracle for the implicit kernels and for the engine's CSR
/// workspace sizing; the training and serving hot paths no longer call it.
void im2col_plane(const float* x, std::int64_t c_in, std::int64_t h,
                  std::int64_t w, const ConvGeometry& g, float* col);

/// Reference/fallback inverse (adjoint) of im2col_plane: scatter-adds a full
/// (C*k*k, OH*OW) column gradient into the (c_in, h, w) plane at `dx`.
void col2im_plane_add(const float* col, std::int64_t c_in, std::int64_t h,
                      std::int64_t w, const ConvGeometry& g, float* dx);

/// Exact zero fraction of a weight matrix — the value batch loops pass as
/// ConvKernelOpts::weight_zero_fraction.
float weight_zero_fraction(const float* weight, std::int64_t count);

/// Output positions whose input tap at kernel offset `kpos` stays in
/// bounds: the half-open range [o0, o1) (empty => o0 == o1). One definition
/// shared by the training tap path and the engine's compile-time CSR tap
/// resolution, so the two sparse-conv executors can never drift.
struct TapWindow {
  std::int64_t o0 = 0, o1 = 0;
};
TapWindow tap_window(std::int64_t out_extent, std::int64_t in_extent,
                     std::int64_t kpos, std::int64_t stride, std::int64_t pad);

}  // namespace rt
