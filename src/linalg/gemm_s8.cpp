// True int8 GEMM implementation: see gemm_s8.hpp for the quantization scheme
// and determinism contract, microkernel_s8.hpp for the packed layouts.

#include "linalg/gemm_s8.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/audit.hpp"
#include "linalg/microkernel_s8.hpp"

#if defined(__AVX512F__)
#define RT_S8_AVX512 1
#include <immintrin.h>
// GCC's masked-load intrinsics expand through an undef pass-through operand
// that trips -Wmaybe-uninitialized false positives at -O3 (GCC PR105593).
// The maskz_* forms used here zero the masked lanes by definition.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#endif

namespace rt {

namespace {

/// round + clamp a float to [-127, 127]. The clamp precedes the float→int
/// cast: an out-of-range float→int conversion is UB, which is exactly what
/// the UBSan gate would flag.
inline std::int32_t quantize_clamp(float x, float inv_scale) {
  const float r = std::nearbyintf(x * inv_scale);
  const float c = r < -127.0f ? -127.0f : (r > 127.0f ? 127.0f : r);
  return static_cast<std::int32_t>(c);
}

}  // namespace

float amax_abs(const float* x, std::int64_t n) {
#ifdef RT_S8_AVX512
  const __m512 sign_mask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fffffff));
  __m512 vm = _mm512_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vm = _mm512_max_ps(vm, _mm512_and_ps(sign_mask, _mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 k = static_cast<__mmask16>((1u << (n - i)) - 1u);
    vm = _mm512_max_ps(
        vm, _mm512_and_ps(sign_mask, _mm512_maskz_loadu_ps(k, x + i)));
  }
  return _mm512_reduce_max_ps(vm);
#else
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(x[i]));
  }
  return m;
#endif
}

float act_scale_for(float amax) {
  return amax > 0.0f ? amax / 127.0f : 0.0f;
}

RT_HOT void quantize_u8(const float* x, std::int64_t n, float scale,
                        std::uint8_t* q) {
  if (scale <= 0.0f) {
    std::memset(q, 128, static_cast<std::size_t>(n));
    return;
  }
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    q[i] = static_cast<std::uint8_t>(quantize_clamp(x[i], inv) + 128);
  }
}

RT_HOT void quantize_s8(const float* x, std::int64_t n, float scale,
                        std::int8_t* q) {
  if (scale <= 0.0f) {
    std::memset(q, 0, static_cast<std::size_t>(n));
    return;
  }
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    q[i] = static_cast<std::int8_t>(quantize_clamp(x[i], inv));
  }
}

RT_HOT void requant_rows(const std::int32_t* acc, std::int64_t lda,
                         std::int64_t rows, std::int64_t cols,
                         const S8Epilogue& ep, float* y, std::int64_t ldy) {
  float amax = ep.amax ? *ep.amax : 0.0f;
#ifdef RT_S8_AVX512
  const __m512 sign_mask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fffffff));
  const __m512 vzero = _mm512_setzero_ps();
  __m512 vamax = vzero;
  for (std::int64_t r = 0; r < rows; ++r) {
    const __m512i vcorr = _mm512_set1_epi32(ep.corr ? ep.corr[r] : 0);
    const __m512 vs = _mm512_set1_ps(ep.act_scale * ep.scales[r]);
    const __m512 vb = _mm512_set1_ps(ep.bias ? ep.bias[r] : 0.0f);
    const std::int32_t* arow = acc + r * lda;
    float* yrow = y + r * ldy;
    std::int64_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      const __m512i a = _mm512_sub_epi32(
          _mm512_loadu_si512(arow + j), vcorr);
      __m512 v = _mm512_fmadd_ps(_mm512_cvtepi32_ps(a), vs, vb);
      if (ep.relu) v = _mm512_max_ps(v, vzero);
      _mm512_storeu_ps(yrow + j, v);
      vamax = _mm512_max_ps(vamax, _mm512_and_ps(sign_mask, v));
    }
    if (j < cols) {
      const __mmask16 k = static_cast<__mmask16>((1u << (cols - j)) - 1u);
      const __m512i a = _mm512_sub_epi32(
          _mm512_maskz_loadu_epi32(k, arow + j), vcorr);
      __m512 v = _mm512_fmadd_ps(_mm512_cvtepi32_ps(a), vs, vb);
      if (ep.relu) v = _mm512_max_ps(v, vzero);
      _mm512_mask_storeu_ps(yrow + j, k, v);
      // Zero the masked-out lanes before they enter the amax fold: their
      // accumulators were loaded as zero, so v holds bias-only garbage.
      vamax = _mm512_max_ps(
          vamax, _mm512_and_ps(sign_mask, _mm512_maskz_mov_ps(k, v)));
    }
  }
  amax = std::max(amax, _mm512_reduce_max_ps(vamax));
#else
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t corr = ep.corr ? ep.corr[r] : 0;
    const float s = ep.act_scale * ep.scales[r];
    const float b = ep.bias ? ep.bias[r] : 0.0f;
    const std::int32_t* arow = acc + r * lda;
    float* yrow = y + r * ldy;
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = static_cast<float>(arow[j] - corr) * s + b;
      if (ep.relu && v < 0.0f) v = 0.0f;
      yrow[j] = v;
      amax = std::max(amax, std::fabs(v));
    }
  }
#endif
  if (ep.amax) *ep.amax = amax;
}

RT_HOT void requant_rows_u8(const std::int32_t* acc, std::int64_t lda,
                            std::int64_t rows, std::int64_t cols,
                            const S8Epilogue& ep, float out_scale,
                            std::uint8_t* yq, std::int64_t ldy) {
  const float inv = out_scale > 0.0f ? 1.0f / out_scale : 0.0f;
  float amax = ep.amax ? *ep.amax : 0.0f;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int32_t corr = ep.corr ? ep.corr[r] : 0;
    const float s = ep.act_scale * ep.scales[r];
    const float b = ep.bias ? ep.bias[r] : 0.0f;
    const std::int32_t* arow = acc + r * lda;
    std::uint8_t* yrow = yq + r * ldy;
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = static_cast<float>(arow[j] - corr) * s + b;
      if (ep.relu && v < 0.0f) v = 0.0f;
      yrow[j] = static_cast<std::uint8_t>(quantize_clamp(v, inv) + 128);
      const float a = std::fabs(v);
      if (a > amax) amax = a;
    }
  }
  if (ep.amax) *ep.amax = amax;
}

RT_HOT void axpy_s8_s32(const std::int8_t* x, std::int32_t v, std::int32_t* y,
                        std::int64_t n) {
#ifdef RT_S8_AVX512
  const __m512i vv = _mm512_set1_epi32(v);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i xi = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    const __m512i yi = _mm512_loadu_si512(y + i);
    _mm512_storeu_si512(y + i, _mm512_add_epi32(yi, _mm512_mullo_epi32(xi, vv)));
  }
  if (i < n) {
    const __mmask16 k = static_cast<__mmask16>((1u << (n - i)) - 1u);
    std::int8_t tail[16] = {0};
    std::memcpy(tail, x + i, static_cast<std::size_t>(n - i));
    const __m512i xi = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tail)));
    const __m512i yi = _mm512_maskz_loadu_epi32(k, y + i);
    _mm512_mask_storeu_epi32(
        y + i, k, _mm512_add_epi32(yi, _mm512_mullo_epi32(xi, vv)));
  }
#else
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += v * static_cast<std::int32_t>(x[i]);
  }
#endif
}

void PackedS8::pack(const std::int8_t* q, std::int64_t rows,
                    std::int64_t cols) {
  rows_ = rows;
  cols_ = cols;
  const std::int64_t rows8 = (rows + kMrS8 - 1) / kMrS8 * kMrS8;
  panels_.assign(static_cast<std::size_t>(rows8 * round_up4(cols)), 0);
  pack_a_quads_s8(q, rows, cols, panels_.data());
  corr_.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    corr_[static_cast<std::size_t>(r)] = quad_row_offset_sum(q + r * cols, cols);
  }
}

namespace {

// Fixed per-thread B sliver staging for the nn path: one kKcS8 x kNcS8 u8
// tile (64 KiB), sized once — never grows on the serving path, so RT_HOT
// bodies stay allocation-free after first use per thread.
thread_local std::uint8_t bq_tile[kKcS8 * kNcS8];

/// The shared nn driver: accumulates A_q * B_q into acc (m x n int32,
/// overwritten), then hands each finished n-tile to `emit` for the fused
/// epilogue while the accumulator slice is still cache-hot.
template <typename EmitTile>
RT_HOT void gemm_s8_nn_core(std::int64_t m, std::int64_t n, std::int64_t k,
                            const PackedS8& a, const std::uint8_t* b,
                            std::int32_t* acc, EmitTile&& emit) {
  const std::int64_t k4 = round_up4(k);
  std::memset(acc, 0, static_cast<std::size_t>(m * n) * sizeof(std::int32_t));
  std::int32_t tile[kMrS8 * kNrS8];
  for (std::int64_t jc = 0; jc < n; jc += kNcS8) {
    const std::int64_t nb = std::min(kNcS8, n - jc);
    for (std::int64_t kc = 0; kc < k; kc += kKcS8) {
      const std::int64_t kb = std::min(kKcS8, k - kc);
      const std::int64_t kq = round_up4(kb) / 4;
      pack_b_quads_u8(b, n, kc, kb, jc, nb, bq_tile);
      for (std::int64_t ir = 0; ir < m; ir += kMrS8) {
        const std::int64_t mr = std::min(kMrS8, m - ir);
        // Panel slice for this k block: panels store full depth k4
        // quad-major, so the block at kc starts kc * kMrS8 bytes in.
        const std::int8_t* ap = a.panels() + ir * k4 + kc * kMrS8;
        for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
          const std::int64_t nr = std::min(kNrS8, nb - jr);
          detail::micro_s8_block(kq, ap, bq_tile + jr * round_up4(kb), tile);
          acc_block_add(tile, acc + ir * n + jc + jr, n, mr, nr);
        }
      }
    }
    emit(jc, nb);
  }
}

}  // namespace

RT_HOT void gemm_s8_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                       const PackedS8& a, const std::uint8_t* b,
                       std::int32_t* acc, float* c, const S8Epilogue& ep) {
  S8Epilogue e = ep;
  if (!e.corr) e.corr = a.corr();
  gemm_s8_nn_core(m, n, k, a, b, acc, [&](std::int64_t jc, std::int64_t nb) {
    // corr/scales/bias index rows; the column slice shifts only the data
    // pointers. requant_rows itself carries the running amax across tiles.
    requant_rows(acc + jc, n, m, nb, e, c + jc, n);
  });
}

RT_HOT void gemm_s8_nn_u8(std::int64_t m, std::int64_t n, std::int64_t k,
                          const PackedS8& a, const std::uint8_t* b,
                          std::int32_t* acc, float out_scale,
                          std::uint8_t* cq, const S8Epilogue& ep) {
  S8Epilogue e = ep;
  if (!e.corr) e.corr = a.corr();
  gemm_s8_nn_core(m, n, k, a, b, acc, [&](std::int64_t jc, std::int64_t nb) {
    requant_rows_u8(acc + jc, n, m, nb, e, out_scale, cq + jc, n);
  });
}

RT_HOT void gemm_s8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                       const std::uint8_t* x, std::int64_t ldx,
                       const std::int8_t* w_slivers, std::int32_t* acc,
                       float* c, const S8Epilogue& ep) {
  const std::int64_t k4 = round_up4(k);
  const std::int64_t kq = k4 / 4;
  std::int32_t tile[kMrS8 * kNrS8];
  for (std::int64_t ir = 0; ir < m; ir += kMrS8) {
    const std::int64_t mr = std::min(kMrS8, m - ir);
    for (std::int64_t jr = 0; jr < n; jr += kNrS8) {
      const std::int64_t nr = std::min(kNrS8, n - jr);
      detail::micro_u8x_block(kq, x + ir * ldx, ldx, mr, w_slivers + jr * k4,
                              tile);
      // Overwrite semantics: copy the clipped block instead of accumulating.
      for (std::int64_t i = 0; i < mr; ++i) {
        std::memcpy(acc + (ir + i) * n + jr, tile + i * kNrS8,
                    static_cast<std::size_t>(nr) * sizeof(std::int32_t));
      }
    }
  }
  // Epilogue indexes output FEATURES, which are C's columns here: requant
  // row-by-row with per-column parameters.
  float amax = ep.amax ? *ep.amax : 0.0f;
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* arow = acc + i * n;
    float* yrow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int32_t corr = ep.corr ? ep.corr[j] : 0;
      float v = static_cast<float>(arow[j] - corr) * ep.act_scale *
                    ep.scales[j] +
                (ep.bias ? ep.bias[j] : 0.0f);
      if (ep.relu && v < 0.0f) v = 0.0f;
      yrow[j] = v;
      const float a = std::fabs(v);
      if (a > amax) amax = a;
    }
  }
  if (ep.amax) *ep.amax = amax;
}

}  // namespace rt
