#pragma once
// The int8 register-tiled micro-kernel and quad-panel packing primitives
// behind the quantized GEMM/conv layer (linalg/gemm_s8.hpp, linalg/conv.cpp).
// Mirrors the fp32 kernel's BLIS-style structure (linalg/microkernel.hpp) at
// int8 operand width: one 8 x 16 int32 accumulator block stays in registers
// while packed A panels and B slivers stream through it.
//
// Layout contract (the "quad" is the unit: 4 consecutive k bytes):
//   - A is packed into row panels of kMrS8 rows, quad-major: within one
//     panel, quad q holds rows' bytes a(row0 + i, 4q + t) at
//     ap[q * kMrS8 * 4 + i * 4 + t]. Rows past the matrix edge and k bytes
//     past the matrix depth pack as zeros, so the kernel needs no m/k tail.
//   - B is packed into column slivers of kNrS8 lanes, quad-major: sliver
//     quad q holds bp[q * kNrS8 * 4 + j * 4 + t] = b(k0 + 4q + t, col0 + j).
//     Out-of-range bytes take the caller's pad value (128 for offset-u8
//     activations = real zero; the paired A bytes are zero, so any pad is
//     arithmetically inert).
//   - The kernel computes acc(i, j) = sum_q sum_t a_quad(i, q, t) *
//     b_quad(j, q, t) with exact int32 arithmetic: results are bitwise
//     identical across the VNNI and generic paths, which is what lets
//     sanitizer builds (no -march=native) verify the serving path's bits.
//
// Operand signedness: the AVX512-VNNI vpdpbusd instruction multiplies
// UNSIGNED bytes by SIGNED bytes. Weights stay signed s8; activations are
// quantized to u8 with a +128 offset (stored = q + 128, q in [-127, 127]).
// The offset contributes 128 * sum_k(w_q) per output channel — a constant
// per row, precomputed at pack time and subtracted in the requant epilogue —
// so the corrected accumulator equals the exact signed product.
//
// Two call shapes share the arithmetic:
//   - micro_s8_block: conv/gemm shape — broadcast side is the SIGNED weight
//     panel, vector side the unsigned activation sliver.
//   - micro_u8x_block: the head's nt shape — broadcast side is the UNSIGNED
//     activation rows (read row-major, no packing needed: quads are
//     contiguous), vector side the signed weight sliver.

#include <cstdint>
#include <cstring>

#include "linalg/microkernel.hpp"

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
#define RT_MICROKERNEL_S8_VNNI 1
#include <immintrin.h>
#endif

namespace rt {

// Micro-tile extents for the int8 kernel: 8 rows x 16 int32 lanes (one
// 512-bit accumulator per row), k consumed 4 bytes (one quad) per step.
inline constexpr std::int64_t kMrS8 = 8;
inline constexpr std::int64_t kNrS8 = 16;
// Cache blocking: a kKcS8 x kNcS8 u8 B panel is 64 KiB — L2-resident like
// the fp32 kernel's panel, at 4x the k depth per byte.
inline constexpr std::int64_t kKcS8 = 256;
inline constexpr std::int64_t kNcS8 = 256;
// Full-depth staging cap for the conv forward fast path: when
// round_up4(c_in * k * k) fits, the whole k extent stages as one B tile
// (<= 256 KiB, still L2-resident) and each 8 x 16 output block accumulates
// entirely in registers — no int32 accumulator plane traffic.
inline constexpr std::int64_t kKcFullS8 = 1024;

/// Rounds a k extent up to whole quads.
inline constexpr std::int64_t round_up4(std::int64_t v) {
  return (v + 3) & ~std::int64_t{3};
}

namespace detail {

#ifdef RT_MICROKERNEL_S8_VNNI

/// Conv/gemm shape: acc(i, j) = sum over kq quads of
/// s8 A quad (row i) dot u8 B quad (lane j). `acc` (kMrS8 x kNrS8,
/// row-major) is overwritten. vpdpbusd takes the unsigned operand first:
/// the B sliver is the vector, each A quad broadcasts as one 32-bit lane.
inline void micro_s8_block(std::int64_t kq, const std::int8_t* __restrict ap,
                           const std::uint8_t* __restrict bp,
                           std::int32_t* __restrict acc) {
  __m512i c0 = _mm512_setzero_si512(), c1 = c0, c2 = c0, c3 = c0, c4 = c0,
          c5 = c0, c6 = c0, c7 = c0;
  for (std::int64_t q = 0; q < kq; ++q) {
    const __m512i bv = _mm512_loadu_si512(bp + q * kNrS8 * 4);
    const std::int8_t* a = ap + q * kMrS8 * 4;
    std::int32_t aq[kMrS8];
    std::memcpy(aq, a, sizeof(aq));
    c0 = _mm512_dpbusd_epi32(c0, bv, _mm512_set1_epi32(aq[0]));
    c1 = _mm512_dpbusd_epi32(c1, bv, _mm512_set1_epi32(aq[1]));
    c2 = _mm512_dpbusd_epi32(c2, bv, _mm512_set1_epi32(aq[2]));
    c3 = _mm512_dpbusd_epi32(c3, bv, _mm512_set1_epi32(aq[3]));
    c4 = _mm512_dpbusd_epi32(c4, bv, _mm512_set1_epi32(aq[4]));
    c5 = _mm512_dpbusd_epi32(c5, bv, _mm512_set1_epi32(aq[5]));
    c6 = _mm512_dpbusd_epi32(c6, bv, _mm512_set1_epi32(aq[6]));
    c7 = _mm512_dpbusd_epi32(c7, bv, _mm512_set1_epi32(aq[7]));
  }
  const __m512i rows[kMrS8] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (int i = 0; i < kMrS8; ++i) {
    _mm512_storeu_si512(acc + i * kNrS8, rows[i]);
  }
}

/// Head (nt) shape: the broadcast side is unsigned activation rows read
/// row-major (stride ldx; a quad is 4 contiguous bytes, so no A packing),
/// the vector side a signed weight sliver. Rows past mr clamp to the last
/// valid row — their lanes compute garbage the caller discards, without
/// reading out of bounds.
inline void micro_u8x_block(std::int64_t kq, const std::uint8_t* __restrict x,
                            std::int64_t ldx, std::int64_t mr,
                            const std::int8_t* __restrict bp,
                            std::int32_t* __restrict acc) {
  const std::uint8_t* rows[kMrS8];
  for (std::int64_t i = 0; i < kMrS8; ++i) {
    rows[i] = x + (i < mr ? i : mr - 1) * ldx;
  }
  __m512i c0 = _mm512_setzero_si512(), c1 = c0, c2 = c0, c3 = c0, c4 = c0,
          c5 = c0, c6 = c0, c7 = c0;
  for (std::int64_t q = 0; q < kq; ++q) {
    const __m512i wv = _mm512_loadu_si512(bp + q * kNrS8 * 4);
    std::int32_t xq[kMrS8];
    for (int i = 0; i < kMrS8; ++i) {
      std::memcpy(&xq[i], rows[i] + q * 4, 4);
    }
    c0 = _mm512_dpbusd_epi32(c0, _mm512_set1_epi32(xq[0]), wv);
    c1 = _mm512_dpbusd_epi32(c1, _mm512_set1_epi32(xq[1]), wv);
    c2 = _mm512_dpbusd_epi32(c2, _mm512_set1_epi32(xq[2]), wv);
    c3 = _mm512_dpbusd_epi32(c3, _mm512_set1_epi32(xq[3]), wv);
    c4 = _mm512_dpbusd_epi32(c4, _mm512_set1_epi32(xq[4]), wv);
    c5 = _mm512_dpbusd_epi32(c5, _mm512_set1_epi32(xq[5]), wv);
    c6 = _mm512_dpbusd_epi32(c6, _mm512_set1_epi32(xq[6]), wv);
    c7 = _mm512_dpbusd_epi32(c7, _mm512_set1_epi32(xq[7]), wv);
  }
  const __m512i out[kMrS8] = {c0, c1, c2, c3, c4, c5, c6, c7};
  for (int i = 0; i < kMrS8; ++i) {
    _mm512_storeu_si512(acc + i * kNrS8, out[i]);
  }
}

#else  // generic fallback: identical integer semantics, portable ISA

inline void micro_s8_block(std::int64_t kq, const std::int8_t* __restrict ap,
                           const std::uint8_t* __restrict bp,
                           std::int32_t* __restrict acc) {
  std::memset(acc, 0, static_cast<std::size_t>(kMrS8 * kNrS8) *
                          sizeof(std::int32_t));
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* a = ap + q * kMrS8 * 4;
    const std::uint8_t* b = bp + q * kNrS8 * 4;
    for (int i = 0; i < kMrS8; ++i) {
      std::int32_t* arow = acc + i * kNrS8;
      for (int t = 0; t < 4; ++t) {
        const std::int32_t av = a[i * 4 + t];
        for (int j = 0; j < kNrS8; ++j) {
          arow[j] += av * static_cast<std::int32_t>(b[j * 4 + t]);
        }
      }
    }
  }
}

inline void micro_u8x_block(std::int64_t kq, const std::uint8_t* __restrict x,
                            std::int64_t ldx, std::int64_t mr,
                            const std::int8_t* __restrict bp,
                            std::int32_t* __restrict acc) {
  std::memset(acc, 0, static_cast<std::size_t>(kMrS8 * kNrS8) *
                          sizeof(std::int32_t));
  for (std::int64_t q = 0; q < kq; ++q) {
    const std::int8_t* b = bp + q * kNrS8 * 4;
    for (std::int64_t i = 0; i < kMrS8; ++i) {
      const std::uint8_t* xrow = x + (i < mr ? i : mr - 1) * ldx + q * 4;
      std::int32_t* arow = acc + i * kNrS8;
      for (int t = 0; t < 4; ++t) {
        const std::int32_t xv = xrow[t];
        for (int j = 0; j < kNrS8; ++j) {
          arow[j] += xv * static_cast<std::int32_t>(b[j * 4 + t]);
        }
      }
    }
  }
}

#endif  // RT_MICROKERNEL_S8_VNNI

}  // namespace detail

/// Adds the leading mr x nr sub-block of a computed kMrS8 x kNrS8
/// accumulator tile into C (int32, leading dimension ldc). The packed
/// operands are zero-padded to full extents, so only the writeback clips.
inline void acc_block_add(const std::int32_t* __restrict acc,
                          std::int32_t* __restrict c, std::int64_t ldc,
                          std::int64_t mr, std::int64_t nr) {
  if (mr == kMrS8 && nr == kNrS8) {
    for (std::int64_t i = 0; i < kMrS8; ++i) {
      std::int32_t* crow = c + i * ldc;
      const std::int32_t* arow = acc + i * kNrS8;
      for (std::int64_t j = 0; j < kNrS8; ++j) crow[j] += arow[j];
    }
    return;
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    std::int32_t* crow = c + i * ldc;
    const std::int32_t* arow = acc + i * kNrS8;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
  }
}

/// Packs a row-major s8 matrix (rows x cols) into consecutive kMrS8 row
/// panels at `ap` (size round_up(rows, kMrS8) * round_up4(cols) bytes).
/// Edge rows and the k tail pack as zeros.
inline void pack_a_quads_s8(const std::int8_t* a, std::int64_t rows,
                            std::int64_t cols, std::int8_t* ap) {
  const std::int64_t cols4 = round_up4(cols);
  for (std::int64_t ir = 0; ir < rows; ir += kMrS8) {
    const std::int64_t m_eff = std::min(kMrS8, rows - ir);
    std::int8_t* panel = ap + ir * cols4;
    for (std::int64_t q = 0; q < cols4 / 4; ++q) {
      std::int8_t* dst = panel + q * kMrS8 * 4;
      for (std::int64_t i = 0; i < kMrS8; ++i) {
        for (std::int64_t t = 0; t < 4; ++t) {
          const std::int64_t k = 4 * q + t;
          dst[i * 4 + t] = (i < m_eff && k < cols)
                               ? a[(ir + i) * cols + k]
                               : std::int8_t{0};
        }
      }
    }
  }
}

/// Packs columns [j0, j0+nb) x k rows [k0, k0+kb) of a row-major s8 matrix
/// B^T-style source (nrows x cols, one source ROW per output lane — the nt
/// weight layout) into kNrS8 quad slivers at `bp` (full depth cols4 per
/// sliver). Edge lanes and the k tail pack as zeros.
inline void pack_b_quads_s8_nt(const std::int8_t* b, std::int64_t nrows,
                               std::int64_t cols, std::int8_t* bp) {
  const std::int64_t cols4 = round_up4(cols);
  for (std::int64_t jr = 0; jr < nrows; jr += kNrS8) {
    const std::int64_t n_eff = std::min(kNrS8, nrows - jr);
    std::int8_t* sliver = bp + jr * cols4;
    for (std::int64_t q = 0; q < cols4 / 4; ++q) {
      std::int8_t* dst = sliver + q * kNrS8 * 4;
      for (std::int64_t j = 0; j < kNrS8; ++j) {
        for (std::int64_t t = 0; t < 4; ++t) {
          const std::int64_t k = 4 * q + t;
          dst[j * 4 + t] = (j < n_eff && k < cols)
                               ? b[(jr + j) * cols + k]
                               : std::int8_t{0};
        }
      }
    }
  }
}

/// Packs rows [k0, k0+kb) x cols [j0, j0+nb) of a row-major u8 matrix
/// (ldb == stored column count) into kNrS8 quad slivers at `bp`. One sliver
/// occupies round_up4(kb) * kNrS8 bytes; out-of-range bytes take `pad`
/// (128 == the offset-u8 encoding of zero).
inline void pack_b_quads_u8(const std::uint8_t* b, std::int64_t ldb,
                            std::int64_t k0, std::int64_t kb, std::int64_t j0,
                            std::int64_t nb, std::uint8_t* bp,
                            std::uint8_t pad = 128) {
  const std::int64_t kb4 = round_up4(kb);
  for (std::int64_t jr = 0; jr < nb; jr += kNrS8) {
    const std::int64_t n_eff = std::min(kNrS8, nb - jr);
    std::uint8_t* sliver = bp + jr * kb4;
    for (std::int64_t q = 0; q < kb4 / 4; ++q) {
      std::uint8_t* dst = sliver + q * kNrS8 * 4;
      for (std::int64_t t = 0; t < 4; ++t) {
        const std::int64_t p = 4 * q + t;
        if (p >= kb) {
          for (std::int64_t j = 0; j < kNrS8; ++j) dst[j * 4 + t] = pad;
          continue;
        }
        const std::uint8_t* brow = b + (k0 + p) * ldb + j0 + jr;
        std::int64_t j = 0;
        for (; j < n_eff; ++j) dst[j * 4 + t] = brow[j];
        for (; j < kNrS8; ++j) dst[j * 4 + t] = pad;
      }
    }
  }
}

/// The per-row offset correction the requant epilogue subtracts: activations
/// are stored as q + 128, so the raw accumulator carries an extra
/// 128 * sum_k(w_q) per output row. Computed over the SAME padded extent the
/// panels cover (pad weights are zero, so padding never shifts the sum).
inline std::int32_t quad_row_offset_sum(const std::int8_t* row,
                                        std::int64_t cols) {
  std::int32_t s = 0;
  for (std::int64_t k = 0; k < cols; ++k) s += row[k];
  return 128 * s;
}

}  // namespace rt
