#pragma once
// Feature statistics for distribution-distance metrics (FID).

#include "tensor/tensor.hpp"

namespace rt {

/// First and second moments of a set of feature vectors.
struct FeatureStats {
  Tensor mean;        ///< (d)
  Tensor covariance;  ///< (d, d), unbiased (n-1 denominator; n if n == 1)
};

/// Computes mean and covariance of row-major features (n, d). Requires n >= 1.
FeatureStats feature_stats(const Tensor& features);

/// Frechet distance between two Gaussians:
///   |mu1 - mu2|^2 + Tr(S1 + S2 - 2 (S1^{1/2} S2 S1^{1/2})^{1/2}).
/// Symmetric and zero for identical statistics (up to numerical noise).
double frechet_distance(const FeatureStats& a, const FeatureStats& b);

}  // namespace rt
