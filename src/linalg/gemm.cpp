#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/audit.hpp"
#include "common/scheduler.hpp"
#include "common/threadpool.hpp"
#include "linalg/microkernel.hpp"

namespace rt {

namespace {

// A-block height for the packed path: one packed A block (kMc x kKc floats =
// 32 KiB) stays L1-resident while the B panel streams through it.
constexpr std::int64_t kMc = 64;

// Minimum multiply count before fork/join pays for itself.
constexpr std::int64_t kParallelWork = 1 << 18;

// When the whole B operand sits in cache (<= 1 MiB of floats), the panel
// loops only add overhead; stream it unblocked like the old kernels did.
constexpr std::int64_t kCacheResidentFloats = 1 << 18;

// Dispatch thresholds between the packed register-tiled path (dense) and the
// zero-skipping legacy cores (masked tickets). The packed kernel runs dense
// FLOPs ~5x faster than the streaming axpy/dot cores (62 vs ~12 GFLOP/s
// single-thread on the reference host), so skipping only wins once the
// skipped fraction outweighs that ratio — around 80% zeros.
constexpr float kSparseAFraction = 0.80f;
constexpr float kSparseBRowFraction = 0.80f;

void zero_rows(float* c, std::int64_t n, std::int64_t i0, std::int64_t i1) {
  std::memset(c + i0 * n, 0, static_cast<std::size_t>((i1 - i0) * n) *
                                 sizeof(float));
}

// Deterministic strided sample of the A operand's zero fraction (both nn and
// tn store A contiguously as m*k floats). At most 1024 loads, so the probe
// costs a vanishing fraction of any GEMM large enough for the answer to
// matter; masked-ticket weights are zeroed uniformly, which strided sampling
// estimates well. The stride is forced odd so it cannot alias with a
// power-of-two column count (the common channel sizes) and sample a single
// column of a column-structured mask.
float sample_zero_fraction(const float* a, std::int64_t count) {
  const std::int64_t samples = std::min<std::int64_t>(count, 1024);
  if (samples <= 0) return 0.0f;
  // Ceiling division so the probes span the whole operand even when count
  // is just past the sample budget (floor would give stride 1 and measure
  // only a prefix).
  const std::int64_t stride = ((count + samples - 1) / samples) | 1;
  std::int64_t taken = 0, zeros = 0;
  for (std::int64_t idx = 0; taken < samples && idx < count;
       idx += stride, ++taken) {
    if (a[idx] == 0.0f) ++zeros;
  }
  return taken > 0 ? static_cast<float>(zeros) / static_cast<float>(taken)
                   : 0.0f;
}

// axpy cores: crow += av * brow; A supplies the multiplier either
// untransposed (a[i*k + kk]) or transposed (a[kk*m + i]). Zero multipliers —
// masked ticket weights — skip the whole row update. The unblocked and
// blocked bodies are separate small functions on purpose: folding them into
// one routine raises register pressure enough that GCC spills the inner-loop
// bound and the streaming axpy loses ~25% throughput.
template <bool kTransA>
void axpy_unblocked(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = kTransA ? a[kk * m + i] : a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

template <bool kTransA>
void axpy_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, const float* b, float* c, std::int64_t i0,
                  std::int64_t i1) {
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t jb = std::min(kNc, n - jc);
    for (std::int64_t kc = 0; kc < k; kc += kKc) {
      const std::int64_t ke = std::min(kc + kKc, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * n + jc;
        for (std::int64_t kk = kc; kk < ke; ++kk) {
          const float av = kTransA ? a[kk * m + i] : a[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n + jc;
          for (std::int64_t j = 0; j < jb; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <bool kTransA>
void axpy_core(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c, bool accumulate, std::int64_t i0,
               std::int64_t i1) {
  if (!accumulate) zero_rows(c, n, i0, i1);
  if (k * n <= kCacheResidentFloats) {
    axpy_unblocked<kTransA>(m, n, k, a, b, c, i0, i1);
  } else {
    axpy_blocked<kTransA>(m, n, k, a, b, c, i0, i1);
  }
}

// dot core: crow[j] += <arow, B-row j> over k-panels; B is (n x k) and rows
// that are entirely zero (channel-pruned weights) are skipped wholesale via
// the precomputed skip mask (null when the caller disabled the scan).
void dot_core(std::int64_t n, std::int64_t k, const float* a, const float* b,
              float* c, bool accumulate, const std::uint8_t* b_row_zero,
              std::int64_t i0, std::int64_t i1) {
  if (!accumulate) zero_rows(c, n, i0, i1);
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t je = std::min(jc + kNc, n);
    for (std::int64_t kc = 0; kc < k; kc += kKc) {
      const std::int64_t kb = std::min(kKc, k - kc);
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k + kc;
        float* crow = c + i * n;
        for (std::int64_t j = jc; j < je; ++j) {
          if (b_row_zero && b_row_zero[static_cast<std::size_t>(j)]) continue;
          const float* brow = b + j * k + kc;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < kb; ++kk) acc += arow[kk] * brow[kk];
          crow[j] += acc;
        }
      }
    }
  }
}

// Pack-buffer scratch for the packed cores. The tile shapes are compile-time
// constants, so plain arrays (not vectors) make every packed_core
// instantiation allocation-free — one 160 KiB TLS block shared by all four
// transpose variants instead of four template-local growable buffers.
struct PackBuffers {
  float a[kMc * kKc];
  float b[kKc * kNc];
};

// Packed register-tiled core: all four transpose variants flow through the
// same kMr x kNr micro-kernel (linalg/microkernel.hpp); the variants differ
// only in which packing routine gathers the panels. B panels are packed per
// (jc, kc) tile and A blocks per (jc, kc, ic) — the repack traffic is
// 1/kNc resp. 1/kMc of the FLOP count, paid once so the inner loop streams
// contiguous zero-padded panels with no edge branches.
template <bool kTransA, bool kTransB>
RT_HOT void packed_core(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c,
                        bool accumulate, std::int64_t i0, std::int64_t i1) {
  if (!accumulate) zero_rows(c, n, i0, i1);
  thread_local PackBuffers bufs;
  float* const abuf = bufs.a;
  float* const bbuf = bufs.b;
  const std::int64_t lda = kTransA ? m : k;
  const std::int64_t ldb = kTransB ? k : n;
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nb = std::min(kNc, n - jc);
    for (std::int64_t kc = 0; kc < k; kc += kKc) {
      const std::int64_t kb = std::min(kKc, k - kc);
      if (kTransB) {
        pack_b_cols_trans(b, ldb, kc, kb, jc, nb, bbuf);
      } else {
        pack_b_cols(b, ldb, kc, kb, jc, nb, bbuf);
      }
      for (std::int64_t ic = i0; ic < i1; ic += kMc) {
        const std::int64_t mb = std::min(kMc, i1 - ic);
        if (kTransA) {
          pack_a_rows_trans(a, lda, ic, mb, kc, kb, abuf);
        } else {
          pack_a_rows(a, lda, ic, mb, kc, kb, abuf);
        }
        packed_block_multiply(mb, nb, kb, abuf, bbuf, c + ic * n + jc, n);
      }
    }
  }
}

// One early-exiting pass over B's rows; dense rows cost one load each.
std::vector<std::uint8_t> scan_zero_rows(std::int64_t n, std::int64_t k,
                                         const float* b) {
  std::vector<std::uint8_t> zero(static_cast<std::size_t>(n), 1);
  for (std::int64_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (brow[kk] != 0.0f) {
        zero[static_cast<std::size_t>(j)] = 0;
        break;
      }
    }
  }
  return zero;
}

template <typename Core>
void dispatch(std::int64_t m, std::int64_t n, std::int64_t k, float* c,
              const GemmOpts& opts, const Core& core) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!opts.accumulate) zero_rows(c, n, 0, m);
    return;
  }
  if (opts.parallel && m > 1 && m * n * k >= kParallelWork) {
    // Row-block tasks on the work-stealing scheduler: leaves are stealable,
    // so a gemm nested under an outer batch loop lends its row blocks to
    // idle workers instead of flattening to serial. The kMr floor keeps a
    // leaf at no less than one micro-panel of rows — below that the packed
    // path would re-pack B once per sliver of C and the repack traffic
    // would swamp the extra parallelism.
    const auto threads =
        static_cast<std::int64_t>(Scheduler::current().num_threads());
    const std::int64_t grain = std::max(kMr, m / (4 * threads));
    parallel_for(m, core, grain);
  } else {
    core(0, m);
  }
}

// Shared body of gemm_nn / gemm_tn: packed tiling for dense A, the
// element-skipping axpy core once A is masked past the crossover.
template <bool kTransA>
void gemm_axpy_family(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const GemmOpts& opts) {
  const bool sparse =
      !opts.packed ||
      (m > 0 && n > 0 && k > 0 &&
       sample_zero_fraction(a, m * k) >= kSparseAFraction);
  dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
    if (sparse) {
      axpy_core<kTransA>(m, n, k, a, b, c, opts.accumulate, i0, i1);
    } else {
      packed_core<kTransA, false>(m, n, k, a, b, c, opts.accumulate, i0, i1);
    }
  });
}

}  // namespace

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  gemm_axpy_family<false>(m, n, k, a, b, c, opts);
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  gemm_axpy_family<true>(m, n, k, a, b, c, opts);
}

namespace {

/// Shared nt-shape body: `b_row_zero` is the all-zero-row scan of B (empty
/// when the caller disabled it). Past the crossover the dot core skips
/// those rows wholesale; below it the packed path is faster even counting
/// the wasted zero FLOPs.
void gemm_nt_dispatch(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, const float* b, float* c,
                      const GemmOpts& opts,
                      const std::vector<std::uint8_t>& b_row_zero) {
  std::int64_t zero_count = 0;
  for (const std::uint8_t z : b_row_zero) zero_count += z;
  const bool sparse =
      !opts.packed ||
      static_cast<float>(zero_count) >=
          kSparseBRowFraction * static_cast<float>(n);
  if (sparse) {
    const std::uint8_t* mask =
        b_row_zero.empty() ? nullptr : b_row_zero.data();
    dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
      dot_core(n, k, a, b, c, opts.accumulate, mask, i0, i1);
    });
  } else {
    dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
      packed_core<false, true>(m, n, k, a, b, c, opts.accumulate, i0, i1);
    });
  }
}

}  // namespace

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  if (m <= 0 || n <= 0 || k <= 0) {
    dispatch(m, n, k, c, opts, [](std::int64_t, std::int64_t) {});
    return;
  }
  std::vector<std::uint8_t> b_row_zero;
  if (opts.skip_zero_b_rows) b_row_zero = scan_zero_rows(n, k, b);
  gemm_nt_dispatch(m, n, k, a, b, c, opts, b_row_zero);
}

void gemm_tt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  if (m <= 0 || n <= 0 || k <= 0) {
    dispatch(m, n, k, c, opts, [](std::int64_t, std::int64_t) {});
    return;
  }
  // Same B-row crossover contract as gemm_nt; the scan runs once here and
  // feeds the shared dispatcher on the sparse path.
  std::vector<std::uint8_t> b_row_zero;
  std::int64_t zero_count = 0;
  if (opts.skip_zero_b_rows) {
    b_row_zero = scan_zero_rows(n, k, b);
    for (const std::uint8_t z : b_row_zero) zero_count += z;
  }
  const bool sparse =
      !opts.packed ||
      static_cast<float>(zero_count) >=
          kSparseBRowFraction * static_cast<float>(n);
  if (!sparse) {
    // Both transposes are absorbed by the packing routines; no A^T copy.
    dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
      packed_core<true, true>(m, n, k, a, b, c, opts.accumulate, i0, i1);
    });
    return;
  }
  // Skip/reference path (no hot caller transposes both sides): materialize
  // A^T once, then reuse the nt machinery with the scan already in hand.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    for (std::int64_t i = 0; i < m; ++i) at[static_cast<std::size_t>(i * k + kk)] = arow[i];
  }
  gemm_nt_dispatch(m, n, k, at.data(), b, c, opts, b_row_zero);
}

}  // namespace rt
