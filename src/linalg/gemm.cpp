#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/threadpool.hpp"

namespace rt {

namespace {

// Panel sizes: a k-panel of B (kKc x kNc floats = 128 KiB) stays resident in
// L2 while every row of the C block streams over it.
constexpr std::int64_t kKc = 128;
constexpr std::int64_t kNc = 256;

// Minimum multiply count before fork/join pays for itself.
constexpr std::int64_t kParallelWork = 1 << 18;

// When the whole B operand sits in cache (<= 1 MiB of floats), the panel
// loops only add overhead; stream it unblocked like the old kernels did.
constexpr std::int64_t kCacheResidentFloats = 1 << 18;

void zero_rows(float* c, std::int64_t n, std::int64_t i0, std::int64_t i1) {
  std::memset(c + i0 * n, 0, static_cast<std::size_t>((i1 - i0) * n) *
                                 sizeof(float));
}

// axpy cores: crow += av * brow; A supplies the multiplier either
// untransposed (a[i*k + kk]) or transposed (a[kk*m + i]). Zero multipliers —
// masked ticket weights — skip the whole row update. The unblocked and
// blocked bodies are separate small functions on purpose: folding them into
// one routine raises register pressure enough that GCC spills the inner-loop
// bound and the streaming axpy loses ~25% throughput.
template <bool kTransA>
void axpy_unblocked(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c, std::int64_t i0,
                    std::int64_t i1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = kTransA ? a[kk * m + i] : a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

template <bool kTransA>
void axpy_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, const float* b, float* c, std::int64_t i0,
                  std::int64_t i1) {
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t jb = std::min(kNc, n - jc);
    for (std::int64_t kc = 0; kc < k; kc += kKc) {
      const std::int64_t ke = std::min(kc + kKc, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * n + jc;
        for (std::int64_t kk = kc; kk < ke; ++kk) {
          const float av = kTransA ? a[kk * m + i] : a[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n + jc;
          for (std::int64_t j = 0; j < jb; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <bool kTransA>
void axpy_core(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
               const float* b, float* c, bool accumulate, std::int64_t i0,
               std::int64_t i1) {
  if (!accumulate) zero_rows(c, n, i0, i1);
  if (k * n <= kCacheResidentFloats) {
    axpy_unblocked<kTransA>(m, n, k, a, b, c, i0, i1);
  } else {
    axpy_blocked<kTransA>(m, n, k, a, b, c, i0, i1);
  }
}

// dot core: crow[j] += <arow, B-row j> over k-panels; B is (n x k) and rows
// that are entirely zero (channel-pruned weights) are skipped wholesale via
// the precomputed skip mask (null when the caller disabled the scan).
void dot_core(std::int64_t n, std::int64_t k, const float* a, const float* b,
              float* c, bool accumulate, const std::uint8_t* b_row_zero,
              std::int64_t i0, std::int64_t i1) {
  if (!accumulate) zero_rows(c, n, i0, i1);
  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t je = std::min(jc + kNc, n);
    for (std::int64_t kc = 0; kc < k; kc += kKc) {
      const std::int64_t kb = std::min(kKc, k - kc);
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k + kc;
        float* crow = c + i * n;
        for (std::int64_t j = jc; j < je; ++j) {
          if (b_row_zero && b_row_zero[static_cast<std::size_t>(j)]) continue;
          const float* brow = b + j * k + kc;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < kb; ++kk) acc += arow[kk] * brow[kk];
          crow[j] += acc;
        }
      }
    }
  }
}

// One early-exiting pass over B's rows; dense rows cost one load each.
std::vector<std::uint8_t> scan_zero_rows(std::int64_t n, std::int64_t k,
                                         const float* b) {
  std::vector<std::uint8_t> zero(static_cast<std::size_t>(n), 1);
  for (std::int64_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      if (brow[kk] != 0.0f) {
        zero[static_cast<std::size_t>(j)] = 0;
        break;
      }
    }
  }
  return zero;
}

template <typename Core>
void dispatch(std::int64_t m, std::int64_t n, std::int64_t k, float* c,
              const GemmOpts& opts, const Core& core) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!opts.accumulate) zero_rows(c, n, 0, m);
    return;
  }
  if (opts.parallel && m > 1 && m * n * k >= kParallelWork) {
    parallel_for(m, core);
  } else {
    core(0, m);
  }
}

}  // namespace

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
    axpy_core<false>(m, n, k, a, b, c, opts.accumulate, i0, i1);
  });
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
    axpy_core<true>(m, n, k, a, b, c, opts.accumulate, i0, i1);
  });
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  if (m <= 0 || n <= 0 || k <= 0) {
    dispatch(m, n, k, c, opts, [](std::int64_t, std::int64_t) {});
    return;
  }
  std::vector<std::uint8_t> b_row_zero;
  if (opts.skip_zero_b_rows) b_row_zero = scan_zero_rows(n, k, b);
  const std::uint8_t* mask = b_row_zero.empty() ? nullptr : b_row_zero.data();
  dispatch(m, n, k, c, opts, [&](std::int64_t i0, std::int64_t i1) {
    dot_core(n, k, a, b, c, opts.accumulate, mask, i0, i1);
  });
}

void gemm_tt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts) {
  if (m <= 0 || n <= 0 || k <= 0) {
    dispatch(m, n, k, c, opts, [](std::int64_t, std::int64_t) {});
    return;
  }
  // Cold path (no hot caller transposes both sides): materialize A^T once,
  // then reuse the nt machinery.
  std::vector<float> at(static_cast<std::size_t>(m * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    for (std::int64_t i = 0; i < m; ++i) at[static_cast<std::size_t>(i * k + kk)] = arow[i];
  }
  gemm_nt(m, n, k, at.data(), b, c, opts);
}

}  // namespace rt
