#pragma once
// The register-tiled micro-kernel and panel-packing primitives shared by the
// dense GEMM variants (linalg/gemm.cpp) and the fused implicit-GEMM
// convolution kernels (linalg/conv.cpp).
//
// Layout contract (BLIS-style):
//   - A is packed into row panels of kMr rows: within one panel the layout is
//     k-major, ap[p * kMr + i] = op(A)(row0 + i, k0 + p). Rows past the
//     matrix edge are packed as zeros, so the micro-kernel never needs an
//     m-tail; writes for those rows are simply discarded by the caller.
//   - B is packed into column slivers of kNr columns: bp[p * kNr + j] =
//     op(B)(k0 + p, col0 + j), edge columns zero-padded likewise.
//   - The micro-kernel keeps a full kMr x kNr accumulator block in registers,
//     streams one packed A column + one packed B row per k step, and adds the
//     block into C at the end — C traffic is O(mr*nr) per kc panel instead of
//     O(mr*nr*kc) as in the axpy cores.
//
// On GCC/Clang the accumulator block is held in eight named vector-extension
// registers (one kNr-float vector per row), so the k loop is eight
// broadcast-FMAs plus one B load per step with zero C traffic — writing the
// same loop over a float[8][8] array makes GCC spill the block to the stack
// and shuffle it every iteration, which is ~4x slower. Other compilers get a
// scalar fallback with identical semantics.

#include <cstdint>
#include <cstring>

namespace rt {

// Micro-tile extents (accumulator block is kMr x kNr) and the cache-blocking
// panel sizes shared by every packed kernel: a kKc x kNc B panel (128 KiB)
// stays L2-resident while all A row-panels stream over it.
inline constexpr std::int64_t kMr = 8;
inline constexpr std::int64_t kNr = 8;
inline constexpr std::int64_t kKc = 128;
inline constexpr std::int64_t kNc = 256;

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define RT_MICROKERNEL_VECTOR_EXT 1
using VecNr __attribute__((vector_size(kNr * sizeof(float)))) = float;

inline VecNr load_vec(const float* p) {
  VecNr v;
  std::memcpy(&v, p, sizeof(VecNr));  // unaligned-safe; compiles to one load
  return v;
}

/// Computes the full kMr x kNr accumulator block into `acc` (row i at
/// acc[i]). The eight accumulators are separate named values so the
/// register allocator keeps the whole block resident across the k loop.
inline void micro_accumulate(std::int64_t kc, const float* __restrict ap,
                             const float* __restrict bp, VecNr acc[kMr]) {
  VecNr c0{}, c1{}, c2{}, c3{}, c4{}, c5{}, c6{}, c7{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a = ap + p * kMr;
    const VecNr bv = load_vec(bp + p * kNr);
    c0 += a[0] * bv;
    c1 += a[1] * bv;
    c2 += a[2] * bv;
    c3 += a[3] * bv;
    c4 += a[4] * bv;
    c5 += a[5] * bv;
    c6 += a[6] * bv;
    c7 += a[7] * bv;
  }
  acc[0] = c0;
  acc[1] = c1;
  acc[2] = c2;
  acc[3] = c3;
  acc[4] = c4;
  acc[5] = c5;
  acc[6] = c6;
  acc[7] = c7;
}
#endif

}  // namespace detail

/// ap: one packed A row panel (kc x kMr), bp: one packed B sliver (kc x kNr).
/// Adds the kMr x kNr product block into C (leading dimension ldc). The
/// full-tile body carries no bounds checks; partial edges go through
/// micro_kernel_edge below.
inline void micro_kernel_full(std::int64_t kc, const float* __restrict ap,
                              const float* __restrict bp, float* __restrict c,
                              std::int64_t ldc) {
#ifdef RT_MICROKERNEL_VECTOR_EXT
  detail::VecNr acc[kMr];
  detail::micro_accumulate(kc, ap, bp, acc);
  for (int i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
    const detail::VecNr cv = detail::load_vec(crow) + acc[i];
    std::memcpy(crow, &cv, sizeof(cv));
  }
#else
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a = ap + p * kMr;
    const float* __restrict b = bp + p * kNr;
    for (int i = 0; i < kMr; ++i) {
      const float av = a[i];
      for (int j = 0; j < kNr; ++j) acc[i][j] += av * b[j];
    }
  }
  for (int i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
    for (int j = 0; j < kNr; ++j) crow[j] += acc[i][j];
  }
#endif
}

/// Edge variant: same accumulator block, but only the leading mr x nr
/// sub-block is written back. The packed panels are zero-padded to full
/// width, so the arithmetic is identical — only the writeback is clipped.
inline void micro_kernel_edge(std::int64_t kc, const float* __restrict ap,
                              const float* __restrict bp, float* __restrict c,
                              std::int64_t ldc, std::int64_t mr,
                              std::int64_t nr) {
#ifdef RT_MICROKERNEL_VECTOR_EXT
  detail::VecNr acc[kMr];
  detail::micro_accumulate(kc, ap, bp, acc);
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = reinterpret_cast<const float*>(&acc[i]);
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
  }
#else
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a = ap + p * kMr;
    const float* __restrict b = bp + p * kNr;
    for (int i = 0; i < kMr; ++i) {
      const float av = a[i];
      for (int j = 0; j < kNr; ++j) acc[i][j] += av * b[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
#endif
}

/// Rounds a count up to whole micro-tiles.
inline constexpr std::int64_t round_up(std::int64_t v, std::int64_t unit) {
  return (v + unit - 1) / unit * unit;
}

/// Packs rows [i0, i0+mb) x cols [k0, k0+kb) of a row-major A (lda == stored
/// column count) into consecutive kMr row panels at `ap` (mb rounded up, zero
/// padded). One panel occupies kb * kMr floats.
inline void pack_a_rows(const float* a, std::int64_t lda, std::int64_t i0,
                        std::int64_t mb, std::int64_t k0, std::int64_t kb,
                        float* ap) {
  for (std::int64_t ir = 0; ir < mb; ir += kMr) {
    const std::int64_t m_eff = (mb - ir) < kMr ? (mb - ir) : kMr;
    float* panel = ap + ir * kb;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float* acol = a + (i0 + ir) * lda + k0 + p;
      float* dst = panel + p * kMr;
      std::int64_t i = 0;
      for (; i < m_eff; ++i) dst[i] = acol[i * lda];
      for (; i < kMr; ++i) dst[i] = 0.0f;
    }
  }
}

/// Same, but op(A) = stored^T: the source is (k, m) row-major and panel rows
/// walk its columns. Packing is where the transpose cost is paid once, after
/// which the micro-kernel is storage-agnostic.
inline void pack_a_rows_trans(const float* a, std::int64_t lda, std::int64_t i0,
                              std::int64_t mb, std::int64_t k0, std::int64_t kb,
                              float* ap) {
  for (std::int64_t ir = 0; ir < mb; ir += kMr) {
    const std::int64_t m_eff = (mb - ir) < kMr ? (mb - ir) : kMr;
    float* panel = ap + ir * kb;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float* arow = a + (k0 + p) * lda + i0 + ir;
      float* dst = panel + p * kMr;
      std::int64_t i = 0;
      for (; i < m_eff; ++i) dst[i] = arow[i];
      for (; i < kMr; ++i) dst[i] = 0.0f;
    }
  }
}

/// Packs rows [k0, k0+kb) x cols [j0, j0+nb) of a row-major B (ldb == stored
/// column count) into consecutive kNr column slivers at `bp` (nb rounded up,
/// zero padded). One sliver occupies kb * kNr floats.
inline void pack_b_cols(const float* b, std::int64_t ldb, std::int64_t k0,
                        std::int64_t kb, std::int64_t j0, std::int64_t nb,
                        float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = (nb - jr) < kNr ? (nb - jr) : kNr;
    float* sliver = bp + jr * kb;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float* brow = b + (k0 + p) * ldb + j0 + jr;
      float* dst = sliver + p * kNr;
      if (n_eff == kNr) {
        std::memcpy(dst, brow, kNr * sizeof(float));
      } else {
        std::int64_t j = 0;
        for (; j < n_eff; ++j) dst[j] = brow[j];
        for (; j < kNr; ++j) dst[j] = 0.0f;
      }
    }
  }
}

/// Same, but op(B) = stored^T: the source is (n, k) row-major — the nt/tt
/// weight layout — and slivers gather strided columns. This is the packing
/// that closes the nt-vs-nn throughput gap: the dot cores used to re-stride
/// B on every access, the packed sliver pays the gather exactly once.
inline void pack_b_cols_trans(const float* b, std::int64_t ldb, std::int64_t k0,
                              std::int64_t kb, std::int64_t j0, std::int64_t nb,
                              float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += kNr) {
    const std::int64_t n_eff = (nb - jr) < kNr ? (nb - jr) : kNr;
    float* sliver = bp + jr * kb;
    for (std::int64_t j = 0; j < n_eff; ++j) {
      const float* bcol = b + (j0 + jr + j) * ldb + k0;
      float* dst = sliver + j;
      for (std::int64_t p = 0; p < kb; ++p) dst[p * kNr] = bcol[p];
    }
    if (n_eff < kNr) {
      for (std::int64_t j = n_eff; j < kNr; ++j) {
        float* dst = sliver + j;
        for (std::int64_t p = 0; p < kb; ++p) dst[p * kNr] = 0.0f;
      }
    }
  }
}

/// Runs the packed micro-kernels over one (mb x nb) C block given fully
/// packed operands: `ap` holds ceil(mb/kMr) row panels of width kb, `bp`
/// holds ceil(nb/kNr) slivers of depth kb. C points at the block's top-left
/// element (leading dimension ldc).
inline void packed_block_multiply(std::int64_t mb, std::int64_t nb,
                                  std::int64_t kb, const float* ap,
                                  const float* bp, float* c,
                                  std::int64_t ldc) {
  for (std::int64_t ir = 0; ir < mb; ir += kMr) {
    const std::int64_t mr = (mb - ir) < kMr ? (mb - ir) : kMr;
    const float* apanel = ap + ir * kb;
    for (std::int64_t jr = 0; jr < nb; jr += kNr) {
      const std::int64_t nr = (nb - jr) < kNr ? (nb - jr) : kNr;
      const float* bsliver = bp + jr * kb;
      float* cblk = c + ir * ldc + jr;
      if (mr == kMr && nr == kNr) {
        micro_kernel_full(kb, apanel, bsliver, cblk, ldc);
      } else {
        micro_kernel_edge(kb, apanel, bsliver, cblk, ldc, mr, nr);
      }
    }
  }
}

}  // namespace rt
