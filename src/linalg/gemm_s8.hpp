#pragma once
// True int8 GEMM: s8 weights x offset-u8 activations with int32 accumulation
// and fused requantization epilogues. This is the execution layer behind the
// engine's int8-native plans (engine/plan.cpp) — the hw/quant values+scales
// sidecar defines the wire format, these kernels execute it without
// dequantizing to float first.
//
// Quantization scheme (matches hw/quant's symmetric fake-quant exactly):
//   weights      q_w = clamp(round(w / s_w), -127, 127)   stored s8
//   activations  q_x = clamp(round(x / s_x), -127, 127)   stored u8 = q_x+128
// The +128 offset exists because the fast path (AVX512-VNNI vpdpbusd)
// multiplies unsigned by signed bytes. The raw accumulator then carries a
// per-output-row constant 128 * sum_k(q_w) — precomputed at pack time and
// subtracted in the epilogue — so the corrected int32 equals the exact
// signed dot product and the whole pipeline is bitwise deterministic: same
// inputs, same plan, same bits, on the VNNI and portable fallback paths
// alike.
//
// Requant epilogue (float multiply, no shift rounding — exact and
// UBSan-clean): y = (acc - corr) * (s_x * s_w[row]) + bias[row], optional
// ReLU, optional running amax tracking (feeds the NEXT layer's dynamic
// activation scale), optional re-quantize to s8 for chained int8 layers.

#include <cstdint>
#include <vector>

namespace rt {

/// Per-output-row requantization parameters for the fused epilogue. For the
/// nt (head) shape the "row" index runs over C's COLUMNS (output features);
/// the field meanings are otherwise identical.
struct S8Epilogue {
  const float* scales = nullptr;      ///< per-row weight scales s_w
  float act_scale = 0.0f;             ///< activation scale s_x
  const std::int32_t* corr = nullptr; ///< per-row 128 * sum_k(q_w) offset
  const float* bias = nullptr;        ///< optional per-row bias
  bool relu = false;
  /// Optional running max|y| across calls sharing the epilogue (the caller
  /// zero-initializes once per batch); feeds dynamic activation quantization
  /// of the next layer.
  float* amax = nullptr;
};

/// max |x| over n floats (0 for n == 0). The producer side of dynamic
/// per-batch activation quantization.
float amax_abs(const float* x, std::int64_t n);

/// The activation scale for a given batch amax: amax / 127, or 0 when the
/// batch is entirely zero (quantize_* then emit exact zeros and the requant
/// product vanishes, so math stays exact).
float act_scale_for(float amax);

/// Quantizes n floats to offset-u8: clamp(round(x / scale), -127, 127) + 128.
/// scale <= 0 stores the zero encoding (128) everywhere.
void quantize_u8(const float* x, std::int64_t n, float scale,
                 std::uint8_t* q);

/// Quantizes n floats to signed s8 (no offset): the CSR/tap path uses this
/// flavor because border pixels see per-pixel tap subsets, which would make
/// a u8 offset correction non-uniform.
void quantize_s8(const float* x, std::int64_t n, float scale, std::int8_t* q);

/// Applies the requant epilogue to an int32 accumulator block: for each of
/// `rows` rows (leading dimension `lda`) and `cols` columns,
/// y = (acc - corr[row]) * act_scale * scales[row] + bias[row], ReLU, amax.
/// Output rows have leading dimension `ldy`.
void requant_rows(const std::int32_t* acc, std::int64_t lda,
                  std::int64_t rows, std::int64_t cols, const S8Epilogue& ep,
                  float* y, std::int64_t ldy);

/// y[i] += v * x[i] over n signed s8 activations — the quantized CSR tap
/// loop's inner axpy (vectorized where the build allows; exact int32 either
/// way, so results are bitwise identical across paths).
void axpy_s8_s32(const std::int8_t* x, std::int32_t v, std::int32_t* y,
                 std::int64_t n);

/// As requant_rows, but re-quantizes the float result straight to offset-u8
/// with `out_scale` for a chained int8 consumer (no float round trip through
/// memory). The float value is still tracked in ep.amax if set.
void requant_rows_u8(const std::int32_t* acc, std::int64_t lda,
                     std::int64_t rows, std::int64_t cols,
                     const S8Epilogue& ep, float out_scale, std::uint8_t* yq,
                     std::int64_t ldy);

/// Prepacked s8 left-hand operand: quad panels (see linalg/microkernel_s8)
/// plus the per-row offset correction. Rows are weight output channels.
class PackedS8 {
 public:
  PackedS8() = default;

  /// Packs a row-major s8 matrix (rows x cols). Allocates; pack at compile
  /// time, never on the serving path.
  void pack(const std::int8_t* q, std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }
  const std::int8_t* panels() const { return panels_.data(); }
  const std::int32_t* corr() const { return corr_.data(); }
  /// Resident bytes (panels + corrections) for memory accounting.
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(panels_.size()) +
           static_cast<std::int64_t>(corr_.size()) * 4;
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int8_t> panels_;
  std::vector<std::int32_t> corr_;
};

/// C(m,n) float = requant(A_q(m,k) * B_q(k,n)): prepacked s8 A panels times
/// a row-major offset-u8 B. `acc` is caller-provided scratch of at least
/// m * n int32 (overwritten) — the engine passes its arena workspace, so the
/// serving path allocates nothing. ep.corr defaults to a.corr() when null.
void gemm_s8_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                const PackedS8& a, const std::uint8_t* b, std::int32_t* acc,
                float* c, const S8Epilogue& ep);

/// As gemm_s8_nn with the chained-int8 epilogue: C emerges as offset-u8 at
/// out_scale instead of float.
void gemm_s8_nn_u8(std::int64_t m, std::int64_t n, std::int64_t k,
                   const PackedS8& a, const std::uint8_t* b,
                   std::int32_t* acc, float out_scale, std::uint8_t* cq,
                   const S8Epilogue& ep);

/// The head shape: C(m,n) float = requant(X_q(m,k) * W_q(n,k)^T). X is
/// offset-u8 row-major with leading dimension ldx >= round_up4(k) (rows
/// quad-padded with the zero encoding 128); W is prepacked full-depth quad
/// slivers (pack_b_quads_s8_nt). Epilogue fields index C's columns (output
/// features). `acc` is caller scratch of at least m * n int32.
void gemm_s8_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::uint8_t* x, std::int64_t ldx,
                const std::int8_t* w_slivers, std::int32_t* acc, float* c,
                const S8Epilogue& ep);

}  // namespace rt
