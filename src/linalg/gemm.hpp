#pragma once
// Single-precision GEMM kernels: the one hot path shared by Linear, Conv2d
// (implicit-GEMM convolution), Tensor::matmul, and the analysis stack.
//
// All matrices are packed row-major (leading dimension == stored column
// count). The four variants name the storage of A and B before the implied
// transposition:
//
//   gemm_nn: C(m,n) = A(m,k)   * B(k,n)
//   gemm_nt: C(m,n) = A(m,k)   * B(n,k)^T
//   gemm_tn: C(m,n) = A(k,m)^T * B(k,n)
//   gemm_tt: C(m,n) = A(k,m)^T * B(n,k)^T
//
// Dense operands run through one packed, register-tiled micro-kernel
// (linalg/microkernel.hpp): operands are gathered into zero-padded panels —
// the packing step is where any transposition is paid, so all four variants
// sustain the same dense throughput — and an 8x8 accumulator block lives in
// registers across the whole k panel. The kernels split disjoint row blocks
// of C into stealable tasks on the current work-stealing scheduler when the
// FLOP count amortizes the fork/join cost; nested under an outer batch
// loop, those blocks backfill idle workers instead of running inline.
//
// Masked-ticket workloads dominate this codebase, so each call samples its
// weight operand and switches to a zero-skipping core past the crossover
// where skipping beats the packed kernel's higher dense throughput: zero
// multipliers are skipped element-wise in the axpy cores (nn/tn), and rows
// of B that are entirely zero — e.g. channel-pruned weights — are skipped
// wholesale in the dot cores (nt/tt).

#include <cstdint>

namespace rt {

struct GemmOpts {
  bool accumulate = false;  ///< C += product instead of C = product.
  bool parallel = true;     ///< Allow splitting C rows across the ThreadPool.
  /// nt/tt only: scan B for all-zero rows (channel-pruned weights) and skip
  /// them wholesale. Disable when B is an activation buffer that is never
  /// structurally zero — the scan costs one extra pass over B per call.
  bool skip_zero_b_rows = true;
  /// Allow the packed register-tiled path for dense operands. Disable to
  /// force the legacy streaming cores — the pre-packing baseline, kept as a
  /// reference for tests and speedup benchmarks.
  bool packed = true;
};

void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts = {});
void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts = {});
void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts = {});
void gemm_tt(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
             const float* b, float* c, const GemmOpts& opts = {});

// Accumulating serial variants, drop-in for per-sample kernels invoked from
// inside an outer batch-level parallel_for (the conv layers). Running these
// serial keeps the parallelism at the batch level where chunks are larger.
inline void gemm_nn_acc(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c) {
  gemm_nn(m, n, k, a, b, c, {.accumulate = true, .parallel = false});
}
inline void gemm_nt_acc(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c) {
  // Per-sample conv backward multiplies by im2col activations, so the
  // pruned-weight row scan can never fire; skip it.
  gemm_nt(m, n, k, a, b, c,
          {.accumulate = true, .parallel = false, .skip_zero_b_rows = false});
}
inline void gemm_tn_acc(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* a, const float* b, float* c) {
  gemm_tn(m, n, k, a, b, c, {.accumulate = true, .parallel = false});
}

}  // namespace rt
