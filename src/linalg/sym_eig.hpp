#pragma once
// Symmetric eigendecomposition (cyclic Jacobi) and PSD matrix functions.
//
// Used by the FID metric: the Frechet distance needs Tr((S1^{1/2} S2
// S1^{1/2})^{1/2}), i.e. two symmetric square roots. Feature dimensions in
// this library are small (<= 128), where Jacobi is accurate and fast.

#include "tensor/tensor.hpp"

namespace rt {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymEig {
  Tensor eigenvalues;   ///< (n) ascending
  Tensor eigenvectors;  ///< (n, n), column j is the eigenvector of w[j]
};

/// Cyclic Jacobi eigensolver for a symmetric matrix (n, n).
/// The input is symmetrized as (A + A^T)/2 before iteration.
SymEig sym_eig(const Tensor& a, int max_sweeps = 64, float tol = 1e-10f);

/// Symmetric PSD square root via eigendecomposition; negative eigenvalues
/// (numerical noise) are clamped to zero.
Tensor sym_sqrt(const Tensor& a);

/// Trace of a square matrix.
float trace(const Tensor& a);

/// Identity matrix of size n.
Tensor eye(std::int64_t n);

}  // namespace rt
