#pragma once
// RobustTicketLab: the high-level entry point of the library.
//
// Owns the source task and a cache of pretrained dense models (one per
// architecture x pretraining scheme), and manufactures tickets on demand:
//
//   RobustTicketLab lab(RobustTicketLab::Options{});
//   auto ticket = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.9f);
//   TaskData cifar = lab.downstream("cifar10", 400, 400);
//   float acc = finetune_whole_model(*ticket, cifar, {}, rng);
//
// Pretrained and retrained (IMP/LMP) checkpoints are cached in the
// content-addressed CheckpointStore (core/checkpoint_store.hpp) rooted at
// RT_CACHE_DIR (default /tmp/rticket_cache): every generation-relevant
// option joins the key, so one shared store serves all benchmark binaries
// and test suites without any risk of configuration collisions.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint_store.hpp"
#include "data/tasks.hpp"
#include "prune/imp.hpp"
#include "prune/lmp.hpp"
#include "prune/omp.hpp"
#include "transfer/evaluate.hpp"
#include "transfer/finetune.hpp"
#include "transfer/pretrain.hpp"

namespace rt {

class RobustTicketLab {
 public:
  struct Options {
    int source_train_size = 800;
    int source_test_size = 400;
    int pretrain_epochs = 14;
    int pretrain_batch = 32;
    float adv_epsilon = 0.08f;   ///< PGD budget for robust pretraining
    int adv_steps = 5;
    float rs_sigma = 0.12f;
    float trades_beta = 6.0f;    ///< KL weight for kTrades pretraining
    int free_replays = 4;        ///< batch replays for kFreeAdversarial
    std::uint64_t seed = 1;
    bool verbose = false;
    /// Root of the content-addressed checkpoint store; empty disables disk
    /// caching. Defaults to $RT_CACHE_DIR or /tmp/rticket_cache — safe to
    /// share across differently-configured processes because every option
    /// joins the checkpoint key.
    std::optional<std::string> cache_dir;
  };

  explicit RobustTicketLab(Options options);

  /// The pretraining (source) task data.
  const TaskData& source();

  /// Generated train/test data for a named suite task (see vtab_suite()).
  TaskData downstream(const std::string& name, int train_size,
                      int test_size) const;

  /// Dense pretrained weights for arch in {"r18", "r50"}; trains on first
  /// use, then serves from memory (and disk across processes).
  const StateDict& pretrained(const std::string& arch, PretrainScheme scheme);

  /// A fresh model initialized with the pretrained weights (dense).
  std::unique_ptr<ResNet> dense_model(const std::string& arch,
                                      PretrainScheme scheme);

  /// OMP ticket: dense pretrained model + one-shot global magnitude mask.
  std::unique_ptr<ResNet> omp_ticket(
      const std::string& arch, PretrainScheme scheme, float sparsity,
      Granularity granularity = Granularity::kElement);

  /// IMP / A-IMP ticket. `imp_data` is the dataset driving the iterative
  /// pruning (source => "US" tickets, downstream train split => "DS").
  /// The returned model holds m ⊙ θ_pre. The retrained result is cached in
  /// the checkpoint store (key: pretrain identity + IMP config + data
  /// fingerprint), so repeated runs skip the inner training loops.
  std::unique_ptr<ResNet> imp_ticket(const std::string& arch,
                                     PretrainScheme scheme,
                                     const Dataset& imp_data,
                                     const ImpConfig& config);

  /// LMP ticket: learned mask over frozen pretrained weights, with the
  /// trained task head left in place. Cached like imp_ticket.
  std::unique_ptr<ResNet> lmp_ticket(const std::string& arch,
                                     PretrainScheme scheme,
                                     const Dataset& task_data,
                                     const LmpConfig& config);

  /// Attack config matched to the pretraining budget (for Adv-Acc eval).
  AttackConfig pretrain_attack() const { return pretrain_attack_; }

  const Options& options() const { return options_; }

  /// Builds an uninitialized (randomly initialized) model of the given arch.
  std::unique_ptr<ResNet> fresh_model(const std::string& arch,
                                      int num_classes = 10) const;

 private:
  /// Shared identity prefix of every checkpoint this lab can produce: arch,
  /// scheme, and all pretraining options. Ticket keys extend it.
  CheckpointKey base_key(const std::string& arch, PretrainScheme scheme) const;
  CheckpointStore store() const;
  PretrainConfig pretrain_config(PretrainScheme scheme) const;
  /// Rebuilds a cached ticket: fresh architecture skeleton (head resized to
  /// the ticket's class count), cached values loaded, masks re-installed
  /// from the zero structure.
  std::unique_ptr<ResNet> ticket_from_state(const std::string& arch,
                                            int num_classes, StateDict state);

  Options options_;
  AttackConfig pretrain_attack_;
  std::optional<TaskData> source_;
  std::map<std::string, StateDict> pretrained_cache_;
};

/// Classifies the Tab. II winner at a tolerance (accuracy points in [0,1]).
std::string winner_label(double robust_acc, double natural_acc,
                         double match_tolerance = 0.015);

}  // namespace rt
