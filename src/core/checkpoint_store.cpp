#include "core/checkpoint_store.hpp"

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>

namespace rt {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

CheckpointKey& CheckpointKey::add(const std::string& field,
                                  const std::string& value) {
  key_ += field;
  key_ += '=';
  key_ += value;
  key_ += ';';
  return *this;
}

CheckpointKey& CheckpointKey::add(const std::string& field,
                                  std::int64_t value) {
  return add(field, std::to_string(value));
}

CheckpointKey& CheckpointKey::add(const std::string& field, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return add(field, std::string(buf));
}

std::uint64_t CheckpointKey::hash() const {
  return fnv1a(key_.data(), key_.size(), kFnvOffset);
}

std::string CheckpointKey::filename() const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash()));
  // Readable slug: the leading key fields with filesystem-hostile characters
  // folded to '-'. Identity lives in the hash; the slug is for humans.
  std::string slug;
  for (const char c : key_) {
    if (slug.size() >= 48) break;
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    slug += keep ? c : '-';
  }
  return std::string(hex) + "_" + slug + ".rtk";
}

std::uint64_t state_dict_fingerprint(const StateDict& state) {
  std::uint64_t h = kFnvOffset;
  for (const auto& [name, tensor] : state) {
    h = fnv1a(name.data(), name.size(), h);
    const std::size_t ndim = tensor.ndim();
    h = fnv1a(&ndim, sizeof(ndim), h);
    for (std::size_t d = 0; d < ndim; ++d) {
      const std::int64_t extent = tensor.dim(d);
      h = fnv1a(&extent, sizeof(extent), h);
    }
    h = fnv1a(tensor.data(),
              static_cast<std::size_t>(tensor.numel()) * sizeof(float), h);
  }
  return h;
}

std::uint64_t dataset_fingerprint(const Dataset& data) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(data.images.data(),
            static_cast<std::size_t>(data.images.numel()) * sizeof(float), h);
  h = fnv1a(data.labels.data(), data.labels.size() * sizeof(int), h);
  h = fnv1a(&data.num_classes, sizeof(data.num_classes), h);
  return h;
}

std::uint64_t row_fingerprint(const float* row, std::size_t floats) {
  return fnv1a(row, floats * sizeof(float), kFnvOffset);
}

CheckpointStore::CheckpointStore(std::string root) : root_(std::move(root)) {}

std::string CheckpointStore::default_root() {
  if (const char* env = std::getenv("RT_CACHE_DIR")) return env;
  return "/tmp/rticket_cache";
}

std::string CheckpointStore::path_for(const CheckpointKey& key) const {
  return root_ + "/" + key.filename();
}

std::optional<StateDict> CheckpointStore::load(
    const CheckpointKey& key) const {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  try {
    return load_state_dict(path);
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt entry: treat as a miss and retrain
  }
}

void CheckpointStore::store(const CheckpointKey& key,
                            const StateDict& state) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  // The store is shared across concurrently running processes (ctest -j
  // runs several suites against one root), so publication must be atomic:
  // write to a pid-unique temp file and rename it into place — a reader
  // either misses or sees a complete checkpoint, never a torn one.
  const std::string path = path_for(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid());
  try {
    save_state_dict(tmp, state);
    std::filesystem::rename(tmp, path);
  } catch (const std::exception&) {
    // Cache write failure is non-fatal; the next run retrains.
    std::filesystem::remove(tmp, ec);
  }
}

namespace {

// Process-wide single-flight table for load_or_store: the set of checkpoint
// paths some thread is currently producing. Static (not per-store) because
// two CheckpointStore instances with the same root address the same files.
std::mutex& flight_mutex() {
  static std::mutex m;
  return m;
}
std::condition_variable& flight_cv() {
  static std::condition_variable cv;
  return cv;
}
std::set<std::string>& flights() {
  static std::set<std::string> s;
  return s;
}

}  // namespace

StateDict CheckpointStore::load_or_store(
    const CheckpointKey& key, FunctionRef<StateDict()> produce) const {
  if (!enabled()) return produce();
  const std::string path = path_for(key);
  for (;;) {
    if (std::optional<StateDict> hit = load(key)) return std::move(*hit);
    {
      std::unique_lock<std::mutex> lock(flight_mutex());
      if (flights().count(path) != 0) {
        // Another thread is producing this key: wait it out, then retry the
        // load (which sees its published bytes, or re-enters on the rare
        // store failure).
        flight_cv().wait(lock, [&] { return flights().count(path) == 0; });
        continue;
      }
      flights().insert(path);
    }
    break;  // this thread owns the flight
  }
  struct FlightGuard {
    const std::string& path;
    ~FlightGuard() {
      {
        std::lock_guard<std::mutex> lock(flight_mutex());
        flights().erase(path);
      }
      flight_cv().notify_all();
    }
  } guard{path};
  // Double-check under flight ownership: a waiter whose producer published
  // between our miss and our insert must not recompute.
  if (std::optional<StateDict> hit = load(key)) return std::move(*hit);
  StateDict produced = produce();
  store(key, produced);  // best-effort; waiters recompute on write failure
  return produced;
}

}  // namespace rt
