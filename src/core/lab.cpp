#include "core/lab.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "data/synth.hpp"

namespace rt {

namespace {

/// Kernel-numerics variant of this build: FP contraction and summation
/// width follow the target ISA, so builds vectorized differently (e.g.
/// RT_MARCH_NATIVE on vs off) must never share checkpoints through the
/// content-addressed store.
constexpr const char* kKernelIsa =
#if defined(__AVX512F__)
    "avx512";
#elif defined(__FMA__)
    "fma";
#elif defined(__AVX__)
    "avx";
#else
    "base";
#endif

/// Re-installs ticket masks on a model loaded from a cached StateDict: a
/// state dict stores values only, and a ticket's mask is exactly its zero
/// structure (masked entries execute as stored zeros, set_mask re-zeroes
/// them idempotently). Trained weights are never exactly 0.0f, so the
/// reconstruction is faithful. Dense layers (no zeros) get no mask.
void install_masks_from_zero_structure(ResNet& model) {
  std::vector<Parameter*> params = model.parameters();
  for (Parameter* p : params) {
    if (!p->prunable()) continue;
    Tensor mask(p->value.shape());
    bool any_zero = false;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const bool zero = p->value[i] == 0.0f;
      mask[i] = zero ? 0.0f : 1.0f;
      any_zero = any_zero || zero;
    }
    if (any_zero) p->set_mask(std::move(mask));
  }
}

}  // namespace

RobustTicketLab::RobustTicketLab(Options options)
    : options_(std::move(options)) {
  if (!options_.cache_dir) options_.cache_dir = CheckpointStore::default_root();
  pretrain_attack_.epsilon = options_.adv_epsilon;
  pretrain_attack_.step_size = options_.adv_epsilon / 3.0f;
  pretrain_attack_.steps = options_.adv_steps;
}

const TaskData& RobustTicketLab::source() {
  if (!source_) {
    source_ = load_source_task(options_.source_train_size,
                               options_.source_test_size);
  }
  return *source_;
}

TaskData RobustTicketLab::downstream(const std::string& name, int train_size,
                                     int test_size) const {
  return load_task(name, train_size, test_size);
}

std::unique_ptr<ResNet> RobustTicketLab::fresh_model(const std::string& arch,
                                                     int num_classes) const {
  Rng rng(options_.seed ^ 0xF00DULL);
  if (arch == "r18") return make_micro_resnet18(num_classes, rng);
  if (arch == "r50") return make_micro_resnet50(num_classes, rng);
  throw std::invalid_argument("unknown arch: " + arch);
}

PretrainConfig RobustTicketLab::pretrain_config(PretrainScheme scheme) const {
  PretrainConfig cfg;
  cfg.scheme = scheme;
  cfg.epochs = options_.pretrain_epochs;
  cfg.batch_size = options_.pretrain_batch;
  cfg.attack = pretrain_attack_;
  cfg.smoothing_sigma = options_.rs_sigma;
  cfg.trades_beta = options_.trades_beta;
  cfg.free_replays = options_.free_replays;
  cfg.verbose = options_.verbose;
  return cfg;
}

CheckpointStore RobustTicketLab::store() const {
  return CheckpointStore(options_.cache_dir.value_or(std::string()));
}

CheckpointKey RobustTicketLab::base_key(const std::string& arch,
                                        PretrainScheme scheme) const {
  CheckpointKey key;
  // kv bumps when the kernel layer's numerics change (summation order, FMA
  // contraction): checkpoints are bit-products of the kernels that trained
  // them, so a numerics change must miss rather than resurrect stale runs.
  key.add("kv", 3)
      .add("isa", kKernelIsa)
      .add("v", kDataVersion)
      .add("arch", arch)
      .add("scheme", scheme_name(scheme))
      .add("epochs", options_.pretrain_epochs)
      .add("batch", options_.pretrain_batch)
      .add("n", options_.source_train_size)
      .add("eps", static_cast<double>(options_.adv_epsilon))
      .add("steps", options_.adv_steps)
      .add("sigma", static_cast<double>(options_.rs_sigma))
      .add("seed", static_cast<std::int64_t>(options_.seed));
  // Scheme-specific hyper-parameters join the key so that changing them can
  // never serve a stale checkpoint.
  if (scheme == PretrainScheme::kTrades) {
    key.add("beta", static_cast<double>(options_.trades_beta));
  } else if (scheme == PretrainScheme::kFreeAdversarial) {
    key.add("replays", options_.free_replays);
  }
  return key;
}

const StateDict& RobustTicketLab::pretrained(const std::string& arch,
                                             PretrainScheme scheme) {
  CheckpointKey key = base_key(arch, scheme);
  key.add("kind", "pretrain");
  const std::string mem_key = key.str();
  if (auto it = pretrained_cache_.find(mem_key);
      it != pretrained_cache_.end()) {
    return it->second;
  }

  const CheckpointStore disk = store();
  if (std::optional<StateDict> hit = disk.load(key)) {
    return pretrained_cache_[mem_key] = std::move(*hit);
  }

  if (options_.verbose) {
    std::printf("[lab] pretraining %s (%s)...\n", arch.c_str(),
                scheme_name(scheme));
  }
  auto model = fresh_model(arch, source().train.num_classes);
  Rng rng(options_.seed * 7919 + static_cast<std::uint64_t>(scheme));
  pretrain(*model, source().train, pretrain_config(scheme), rng);
  StateDict state = model->state_dict();
  disk.store(key, state);
  return pretrained_cache_[mem_key] = std::move(state);
}

std::unique_ptr<ResNet> RobustTicketLab::dense_model(const std::string& arch,
                                                     PretrainScheme scheme) {
  auto model = fresh_model(arch, source().train.num_classes);
  model->load_state(pretrained(arch, scheme));
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::omp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    float sparsity,
                                                    Granularity granularity) {
  auto model = dense_model(arch, scheme);
  OmpConfig cfg;
  cfg.sparsity = sparsity;
  cfg.granularity = granularity;
  omp_prune(*model, cfg);
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::ticket_from_state(
    const std::string& arch, int num_classes, StateDict state) {
  // Only the architecture skeleton is needed — every value and buffer is
  // overwritten by load_state — so build it from scratch rather than via
  // dense_model(), which could trigger a full pretraining run just to be
  // discarded when the pretrain checkpoint is absent from the store.
  auto model = fresh_model(arch, source().train.num_classes);
  if (model->head().out_features() != num_classes) {
    // Mirror imp_prune/lmp_learn's head replacement so shapes match the
    // cached state; the values are overwritten by load_state below.
    Rng rng(options_.seed ^ 0xCAFEULL);
    model->reset_head(num_classes, rng);
  }
  model->load_state(state);
  install_masks_from_zero_structure(*model);
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::imp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    const Dataset& imp_data,
                                                    const ImpConfig& config) {
  CheckpointKey key = base_key(arch, scheme);
  key.add("kind", "imp")
      .add("sparsity", static_cast<double>(config.target_sparsity))
      .add("rate", static_cast<double>(config.rate_per_round))
      .add("iepochs", config.epochs_per_round)
      .add("gran", static_cast<std::int64_t>(config.granularity))
      .add("adv", config.adversarial)
      .add("aeps", static_cast<double>(config.attack.epsilon))
      .add("astep", static_cast<double>(config.attack.step_size))
      .add("asteps", config.attack.steps)
      .add("arand", config.attack.random_start)
      .add("lr", static_cast<double>(config.sgd.lr))
      .add("mom", static_cast<double>(config.sgd.momentum))
      .add("wd", static_cast<double>(config.sgd.weight_decay))
      .add("ibatch", config.batch_size)
      .add("rewind", config.rewind_to_pretrained)
      .add("data", static_cast<std::int64_t>(dataset_fingerprint(imp_data)));
  const CheckpointStore disk = store();
  const int num_classes = imp_data.num_classes;
  if (std::optional<StateDict> hit = disk.load(key)) {
    return ticket_from_state(arch, num_classes, std::move(*hit));
  }
  auto model = dense_model(arch, scheme);
  Rng rng(options_.seed * 104729 + 13);
  imp_prune(*model, imp_data, config, rng);
  disk.store(key, model->state_dict());
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::lmp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    const Dataset& task_data,
                                                    const LmpConfig& config) {
  CheckpointKey key = base_key(arch, scheme);
  key.add("kind", "lmp")
      .add("sparsity", static_cast<double>(config.sparsity))
      .add("gran", static_cast<std::int64_t>(config.granularity))
      .add("lepochs", config.epochs)
      .add("lbatch", config.batch_size)
      .add("slr", static_cast<double>(config.score_lr))
      .add("smom", static_cast<double>(config.score_momentum))
      .add("hlr", static_cast<double>(config.head_sgd.lr))
      .add("hmom", static_cast<double>(config.head_sgd.momentum))
      .add("hwd", static_cast<double>(config.head_sgd.weight_decay))
      .add("data", static_cast<std::int64_t>(dataset_fingerprint(task_data)));
  const CheckpointStore disk = store();
  const int num_classes = task_data.num_classes;
  if (std::optional<StateDict> hit = disk.load(key)) {
    return ticket_from_state(arch, num_classes, std::move(*hit));
  }
  auto model = dense_model(arch, scheme);
  Rng rng(options_.seed * 15485863 + 29);
  lmp_learn(*model, task_data, config, rng);
  disk.store(key, model->state_dict());
  return model;
}

std::string winner_label(double robust_acc, double natural_acc,
                         double match_tolerance) {
  const double diff = robust_acc - natural_acc;
  if (diff > match_tolerance) return "Robust";
  if (diff < -match_tolerance) return "Natural";
  return "Match";
}

}  // namespace rt
