#include "core/lab.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace rt {

namespace {

std::string default_cache_dir() {
  if (const char* env = std::getenv("RT_CACHE_DIR")) return env;
  return "/tmp/rticket_cache";
}

}  // namespace

RobustTicketLab::RobustTicketLab(Options options)
    : options_(std::move(options)) {
  if (!options_.cache_dir) options_.cache_dir = default_cache_dir();
  pretrain_attack_.epsilon = options_.adv_epsilon;
  pretrain_attack_.step_size = options_.adv_epsilon / 3.0f;
  pretrain_attack_.steps = options_.adv_steps;
}

const TaskData& RobustTicketLab::source() {
  if (!source_) {
    source_ = load_source_task(options_.source_train_size,
                               options_.source_test_size);
  }
  return *source_;
}

TaskData RobustTicketLab::downstream(const std::string& name, int train_size,
                                     int test_size) const {
  return load_task(name, train_size, test_size);
}

std::unique_ptr<ResNet> RobustTicketLab::fresh_model(const std::string& arch,
                                                     int num_classes) const {
  Rng rng(options_.seed ^ 0xF00DULL);
  if (arch == "r18") return make_micro_resnet18(num_classes, rng);
  if (arch == "r50") return make_micro_resnet50(num_classes, rng);
  throw std::invalid_argument("unknown arch: " + arch);
}

PretrainConfig RobustTicketLab::pretrain_config(PretrainScheme scheme) const {
  PretrainConfig cfg;
  cfg.scheme = scheme;
  cfg.epochs = options_.pretrain_epochs;
  cfg.batch_size = options_.pretrain_batch;
  cfg.attack = pretrain_attack_;
  cfg.smoothing_sigma = options_.rs_sigma;
  cfg.trades_beta = options_.trades_beta;
  cfg.free_replays = options_.free_replays;
  cfg.verbose = options_.verbose;
  return cfg;
}

std::string RobustTicketLab::cache_key(const std::string& arch,
                                       PretrainScheme scheme) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s_%s_e%d_n%d_eps%.3f_sig%.3f_s%llu_v%d",
                arch.c_str(), scheme_name(scheme), options_.pretrain_epochs,
                options_.source_train_size,
                static_cast<double>(options_.adv_epsilon),
                static_cast<double>(options_.rs_sigma),
                static_cast<unsigned long long>(options_.seed), kDataVersion);
  std::string key = buf;
  // Scheme-specific hyper-parameters join the key so that changing them can
  // never serve a stale checkpoint.
  if (scheme == PretrainScheme::kTrades) {
    std::snprintf(buf, sizeof(buf), "_b%.1f",
                  static_cast<double>(options_.trades_beta));
    key += buf;
  } else if (scheme == PretrainScheme::kFreeAdversarial) {
    std::snprintf(buf, sizeof(buf), "_m%d", options_.free_replays);
    key += buf;
  }
  return key;
}

const StateDict& RobustTicketLab::pretrained(const std::string& arch,
                                             PretrainScheme scheme) {
  const std::string key = cache_key(arch, scheme);
  if (auto it = pretrained_cache_.find(key); it != pretrained_cache_.end()) {
    return it->second;
  }

  // Disk cache lookup.
  std::string path;
  if (options_.cache_dir && !options_.cache_dir->empty()) {
    std::error_code ec;
    std::filesystem::create_directories(*options_.cache_dir, ec);
    path = *options_.cache_dir + "/" + key + ".rtk";
    if (std::filesystem::exists(path)) {
      try {
        return pretrained_cache_[key] = load_state_dict(path);
      } catch (const std::exception&) {
        // Corrupt cache entry: fall through and retrain.
      }
    }
  }

  if (options_.verbose) {
    std::printf("[lab] pretraining %s (%s)...\n", arch.c_str(),
                scheme_name(scheme));
  }
  auto model = fresh_model(arch, source().train.num_classes);
  Rng rng(options_.seed * 7919 + static_cast<std::uint64_t>(scheme));
  pretrain(*model, source().train, pretrain_config(scheme), rng);
  StateDict state = model->state_dict();
  if (!path.empty()) {
    try {
      save_state_dict(path, state);
    } catch (const std::exception&) {
      // Cache write failure is non-fatal.
    }
  }
  return pretrained_cache_[key] = std::move(state);
}

std::unique_ptr<ResNet> RobustTicketLab::dense_model(const std::string& arch,
                                                     PretrainScheme scheme) {
  auto model = fresh_model(arch, source().train.num_classes);
  model->load_state(pretrained(arch, scheme));
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::omp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    float sparsity,
                                                    Granularity granularity) {
  auto model = dense_model(arch, scheme);
  OmpConfig cfg;
  cfg.sparsity = sparsity;
  cfg.granularity = granularity;
  omp_prune(*model, cfg);
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::imp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    const Dataset& imp_data,
                                                    const ImpConfig& config) {
  auto model = dense_model(arch, scheme);
  Rng rng(options_.seed * 104729 + 13);
  imp_prune(*model, imp_data, config, rng);
  return model;
}

std::unique_ptr<ResNet> RobustTicketLab::lmp_ticket(const std::string& arch,
                                                    PretrainScheme scheme,
                                                    const Dataset& task_data,
                                                    const LmpConfig& config) {
  auto model = dense_model(arch, scheme);
  Rng rng(options_.seed * 15485863 + 29);
  lmp_learn(*model, task_data, config, rng);
  return model;
}

std::string winner_label(double robust_acc, double natural_acc,
                         double match_tolerance) {
  const double diff = robust_acc - natural_acc;
  if (diff > match_tolerance) return "Robust";
  if (diff < -match_tolerance) return "Natural";
  return "Match";
}

}  // namespace rt
