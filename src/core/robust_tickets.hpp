#pragma once
// Umbrella header: the complete public API of the rticket library.
//
// Reproduces "Robust Tickets Can Transfer Better: Drawing More Transferable
// Subnetworks in Transfer Learning" (DAC 2023). See README.md for the
// quickstart and DESIGN.md for the architecture and experiment map.

#include "analysis/cka.hpp"           // representation similarity (CKA)
#include "analysis/correlation.hpp"   // Pearson / Spearman
#include "analysis/features.hpp"      // Fisher ratio, effective rank, kNN
#include "analysis/landscape.hpp"     // loss-sharpness probe
#include "analysis/mask_stats.hpp"    // mask overlap / keep profiles
#include "attack/attack.hpp"          // FGSM / PGD / Gaussian augmentation
#include "attack/blackbox.hpp"        // square attack, MI-FGSM, targeted PGD
#include "attack/smoothing.hpp"       // randomized-smoothing certification
#include "attack/trades.hpp"          // TRADES objective, Free-AT
#include "common/rng.hpp"             // deterministic randomness
#include "common/table.hpp"           // result tables (stdout + CSV)
#include "common/timer.hpp"
#include "core/lab.hpp"               // RobustTicketLab orchestration
#include "data/augment.hpp"           // flip/shift training augmentation
#include "data/corruptions.hpp"       // typed corruption suite (mCA)
#include "data/dataset.hpp"           // datasets, batching, corruption
#include "data/detection_data.hpp"    // detection task (Fig. 7a)
#include "data/segmentation_data.hpp" // dense-prediction task
#include "data/synth.hpp"             // SynthVision generators
#include "data/tasks.hpp"             // the VTAB-analogue suite
#include "engine/engine.hpp"          // compiled serving API (Engine/Session)
#include "hw/cost_model.hpp"          // edge latency/energy roofline
#include "hw/quant.hpp"               // int8 post-training quantization
#include "hw/shrink.hpp"              // channel-shrink compiler
#include "hw/storage.hpp"             // sparse storage formats
#include "linalg/stats.hpp"           // feature statistics / Frechet distance
#include "metrics/metrics.hpp"        // ECE, NLL, ROC-AUC, FID
#include "models/detection.hpp"       // anchor-free detection head + mAP
#include "models/probe.hpp"           // FID probe network
#include "models/resnet.hpp"          // MicroResNet18/50
#include "models/segmentation.hpp"    // FCN head
#include "nn/loss.hpp"                // softmax cross-entropy losses
#include "nn/optim.hpp"               // SGD, Adam/AdamW, LR schedules
#include "prune/baselines.hpp"        // random/layerwise/SNIP/GraSP baselines
#include "prune/gmp.hpp"              // gradual magnitude pruning
#include "prune/imp.hpp"              // IMP / A-IMP
#include "prune/lmp.hpp"              // learnable mask pruning
#include "prune/mask.hpp"             // masks & granularities
#include "prune/nm_sparsity.hpp"      // N:M (2:4) structured sparsity
#include "prune/omp.hpp"              // one-shot magnitude pruning
#include "serving/serving.hpp"        // async micro-batching serving front-end
#include "train/loop.hpp"             // training / evaluation loops
#include "transfer/det_transfer.hpp"  // detection transfer (Fig. 7a)
#include "transfer/evaluate.hpp"      // Fig. 8 metric battery
#include "transfer/fewshot.hpp"       // data-budget sweeps, ticket cloning
#include "transfer/finetune.hpp"      // finetune / linear eval / LP-FT
#include "transfer/pretrain.hpp"      // pretraining schemes
#include "transfer/seg_transfer.hpp"  // segmentation transfer
