#pragma once
// Content-addressed checkpoint store shared by every binary that trains.
//
// A checkpoint's identity is the canonical key string assembled by
// CheckpointKey — every field that influenced its generation (architecture,
// pretraining scheme, sparsity, seed, data sizes, hyper-parameters, data
// fingerprint) appended in a fixed order. The on-disk filename is the FNV-1a
// hash of that string plus a readable slug, so differently-configured runs
// can never serve each other's checkpoints and a single store root
// ($RT_CACHE_DIR, default /tmp/rticket_cache) is safe to share across the
// bench_fig* binaries, the integration test suites, and repeated local runs
// — the ~2-minute suites stop re-pretraining the moment one process has paid
// for a configuration.

#include <cstdint>
#include <optional>
#include <string>

#include "common/function_ref.hpp"
#include "data/dataset.hpp"
#include "tensor/serialize.hpp"

namespace rt {

/// Builder for canonical checkpoint identities. Append every
/// generation-relevant field; the key is order-sensitive, so call sites
/// should append in one fixed order. Floats are canonicalized to %.6g.
class CheckpointKey {
 public:
  CheckpointKey& add(const std::string& field, const std::string& value);
  /// Keeps string literals off the bool overload (const char* converts to
  /// bool by standard conversion, which would otherwise win overload
  /// resolution over std::string's user-defined one).
  CheckpointKey& add(const std::string& field, const char* value) {
    return add(field, std::string(value));
  }
  CheckpointKey& add(const std::string& field, std::int64_t value);
  CheckpointKey& add(const std::string& field, int value) {
    return add(field, static_cast<std::int64_t>(value));
  }
  CheckpointKey& add(const std::string& field, double value);
  CheckpointKey& add(const std::string& field, bool value) {
    return add(field, static_cast<std::int64_t>(value));
  }

  /// The full canonical identity, e.g. "arch=r18;scheme=adv;sparsity=0.9;".
  const std::string& str() const { return key_; }
  /// FNV-1a over the canonical string.
  std::uint64_t hash() const;
  /// "<16-hex-digit hash>_<sanitized key prefix>.rtk" — unique by content,
  /// still eyeballable in a directory listing.
  std::string filename() const;

 private:
  std::string key_;
};

/// FNV-1a fingerprint of a dataset's images and labels, for keys of
/// checkpoints whose training touched that data (IMP/LMP retraining).
std::uint64_t dataset_fingerprint(const Dataset& data);

/// FNV-1a fingerprint of one flat input row (`floats` float values) — the
/// same byte-level hash dataset_fingerprint uses, exposed per row so the
/// serving-side prediction cache can content-address individual inputs.
/// Bitwise: two rows collide only if their float payloads hash-collide
/// (64-bit FNV-1a), never because of rounding.
std::uint64_t row_fingerprint(const float* row, std::size_t floats);

/// FNV-1a fingerprint of a StateDict's entry names, shapes, and float
/// payloads — the content address the model registry keys snapshots by.
/// Deterministic: StateDict is an ordered map, so iteration order is fixed.
std::uint64_t state_dict_fingerprint(const StateDict& state);

/// The store itself: load/store StateDicts by key. All operations are
/// best-effort — a cache miss or unwritable root degrades to retraining,
/// never to an error.
class CheckpointStore {
 public:
  /// An empty root disables the store (loads miss, stores are dropped).
  explicit CheckpointStore(std::string root);

  /// $RT_CACHE_DIR or /tmp/rticket_cache.
  static std::string default_root();

  bool enabled() const { return !root_.empty(); }
  const std::string& root() const { return root_; }
  std::string path_for(const CheckpointKey& key) const;

  /// nullopt on miss or unreadable/corrupt entry.
  std::optional<StateDict> load(const CheckpointKey& key) const;
  /// Creates the root directory on demand; write failures are swallowed.
  void store(const CheckpointKey& key, const StateDict& state) const;

  /// Single-flight load-or-compute: returns the cached StateDict for `key`,
  /// or invokes `produce` exactly once per process to fill the miss (and
  /// publishes the result, best-effort). Concurrent callers on the same key
  /// block until the in-flight producer finishes, then load its published
  /// bytes — the producer runs once even when N threads race a cold key.
  /// Cross-process races stay safe through store()'s atomic tmp+rename
  /// publication (either writer's complete bytes win). With the store
  /// disabled every caller just runs `produce` itself.
  StateDict load_or_store(const CheckpointKey& key,
                          FunctionRef<StateDict()> produce) const;

 private:
  std::string root_;
};

}  // namespace rt
