#pragma once
// Scalar evaluation metrics: calibration (ECE/NLL), OoD detection (ROC-AUC),
// and the FID domain-gap measure.

#include <vector>

#include "models/probe.hpp"
#include "tensor/tensor.hpp"

namespace rt {

/// Expected calibration error with equal-width confidence bins.
/// `probs` is (N, C) softmax output; labels in [0, C).
double expected_calibration_error(const Tensor& probs,
                                  const std::vector<int>& labels,
                                  int num_bins = 15);

/// Mean negative log-likelihood of the true class.
double negative_log_likelihood(const Tensor& probs,
                               const std::vector<int>& labels);

/// Area under the ROC curve for separating positives (higher scores) from
/// negatives, computed via the rank statistic; ties share credit.
double roc_auc(const std::vector<float>& positive_scores,
               const std::vector<float>& negative_scores);

/// Maximum softmax probability per row — the standard OoD score.
std::vector<float> max_softmax_scores(const Tensor& probs);

/// Frechet distance between probe-feature distributions of two image sets
/// (N_a,3,H,W) vs (N_b,3,H,W). The probe is deterministic, so values are
/// comparable across calls.
double fid_between(const Tensor& images_a, const Tensor& images_b,
                   FidProbe& probe);

}  // namespace rt
