#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/stats.hpp"

namespace rt {

double expected_calibration_error(const Tensor& probs,
                                  const std::vector<int>& labels,
                                  int num_bins) {
  const std::int64_t n = probs.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != n || num_bins <= 0) {
    throw std::invalid_argument("ece: bad inputs");
  }
  std::vector<double> bin_conf(static_cast<std::size_t>(num_bins), 0.0);
  std::vector<double> bin_correct(static_cast<std::size_t>(num_bins), 0.0);
  std::vector<std::int64_t> bin_count(static_cast<std::size_t>(num_bins), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t pred = 0;
    for (std::int64_t j = 1; j < probs.dim(1); ++j) {
      if (probs.at(i, j) > probs.at(i, pred)) pred = j;
    }
    const float conf = probs.at(i, pred);
    int bin = static_cast<int>(conf * static_cast<float>(num_bins));
    bin = std::clamp(bin, 0, num_bins - 1);
    bin_conf[static_cast<std::size_t>(bin)] += conf;
    bin_correct[static_cast<std::size_t>(bin)] +=
        (pred == labels[static_cast<std::size_t>(i)]) ? 1.0 : 0.0;
    ++bin_count[static_cast<std::size_t>(bin)];
  }
  double ece = 0.0;
  for (int b = 0; b < num_bins; ++b) {
    const auto cnt = bin_count[static_cast<std::size_t>(b)];
    if (cnt == 0) continue;
    const double avg_conf = bin_conf[static_cast<std::size_t>(b)] / cnt;
    const double avg_acc = bin_correct[static_cast<std::size_t>(b)] / cnt;
    ece += (static_cast<double>(cnt) / static_cast<double>(n)) *
           std::fabs(avg_conf - avg_acc);
  }
  return ece;
}

double negative_log_likelihood(const Tensor& probs,
                               const std::vector<int>& labels) {
  const std::int64_t n = probs.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != n || n == 0) {
    throw std::invalid_argument("nll: bad inputs");
  }
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    acc -= std::log(std::max(probs.at(i, y), 1e-12f));
  }
  return acc / static_cast<double>(n);
}

double roc_auc(const std::vector<float>& positive_scores,
               const std::vector<float>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) {
    throw std::invalid_argument("roc_auc: empty inputs");
  }
  // O((m+n) log(m+n)) rank computation with tie handling.
  struct Entry {
    float score;
    bool positive;
  };
  std::vector<Entry> all;
  all.reserve(positive_scores.size() + negative_scores.size());
  for (float s : positive_scores) all.push_back({s, true});
  for (float s : negative_scores) all.push_back({s, false});
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });

  double rank_sum = 0.0;  // sum of positive ranks (1-based, ties averaged)
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].score == all[i].score) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (all[k].positive) rank_sum += avg_rank;
    }
    i = j;
  }
  const double np = static_cast<double>(positive_scores.size());
  const double nn = static_cast<double>(negative_scores.size());
  return (rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

std::vector<float> max_softmax_scores(const Tensor& probs) {
  const std::int64_t n = probs.dim(0), c = probs.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    float m = probs.at(i, 0);
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, probs.at(i, j));
    out[static_cast<std::size_t>(i)] = m;
  }
  return out;
}

double fid_between(const Tensor& images_a, const Tensor& images_b,
                   FidProbe& probe) {
  const Tensor fa = probe.features(images_a);
  const Tensor fb = probe.features(images_b);
  return frechet_distance(feature_stats(fa), feature_stats(fb));
}

}  // namespace rt
