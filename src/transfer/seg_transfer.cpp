#include "transfer/seg_transfer.hpp"

#include <cstdio>

#include "nn/loss.hpp"

namespace rt {

namespace {

/// Gathers flat per-pixel labels for the given sample indices.
std::vector<int> gather_pixel_labels(const std::vector<int>& labels,
                                     const std::vector<int>& idx,
                                     std::int64_t pixels_per_image) {
  std::vector<int> out;
  out.reserve(idx.size() * static_cast<std::size_t>(pixels_per_image));
  for (int i : idx) {
    const auto begin = labels.begin() +
                       static_cast<std::ptrdiff_t>(i * pixels_per_image);
    out.insert(out.end(), begin, begin + pixels_per_image);
  }
  return out;
}

std::vector<int> predict_pixels(SegmentationNet& net, const Tensor& x) {
  const Tensor logits = net.forward(x);
  const std::int64_t n = logits.dim(0), c = logits.dim(1),
                     hw = logits.dim(2) * logits.dim(3);
  std::vector<int> pred(static_cast<std::size_t>(n * hw));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t px = 0; px < hw; ++px) {
      std::int64_t best = 0;
      for (std::int64_t ch = 1; ch < c; ++ch) {
        if (logits.data()[(i * c + ch) * hw + px] >
            logits.data()[(i * c + best) * hw + px]) {
          best = ch;
        }
      }
      pred[static_cast<std::size_t>(i * hw + px)] = static_cast<int>(best);
    }
  }
  return pred;
}

}  // namespace

double evaluate_miou(SegmentationNet& net, const SegDataset& data,
                     int batch_size) {
  const bool was_training = net.training();
  net.set_training(false);
  const std::int64_t hw = data.images.dim(2) * data.images.dim(3);
  std::vector<int> pred, truth;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(data.size()), batch_size)) {
    const Tensor x = gather_images(data.images, idx);
    const auto batch_pred = predict_pixels(net, x);
    pred.insert(pred.end(), batch_pred.begin(), batch_pred.end());
    const auto batch_truth = gather_pixel_labels(data.labels, idx, hw);
    truth.insert(truth.end(), batch_truth.begin(), batch_truth.end());
  }
  net.set_training(was_training);
  return mean_iou(pred, truth, data.num_classes);
}

double segmentation_transfer(std::unique_ptr<ResNet> backbone,
                             const SegDataset& train, const SegDataset& test,
                             const SegTransferConfig& config, Rng& rng) {
  SegmentationNet net(std::move(backbone), train.num_classes,
                      config.feature_stage, rng);
  Sgd sgd(net.parameters(), config.sgd);
  const MultiStepLr schedule(config.sgd.lr,
                             {config.epochs / 2, (3 * config.epochs) / 4});
  const std::int64_t hw = train.images.dim(2) * train.images.dim(3);
  const int n = static_cast<int>(train.size());

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    double loss_acc = 0.0;
    for (const auto& idx : make_batches(n, config.batch_size, rng)) {
      const Tensor x = gather_images(train.images, idx);
      const auto y = gather_pixel_labels(train.labels, idx, hw);
      net.set_training(true);
      net.zero_grad();
      const Tensor logits = net.forward(x);
      const LossResult loss = softmax_cross_entropy_2d(logits, y);
      net.backward(loss.grad_logits);
      sgd.step();
      loss_acc += static_cast<double>(loss.loss) * static_cast<double>(idx.size());
    }
    if (config.verbose) {
      std::printf("  seg epoch %2d loss %.4f\n", epoch, loss_acc / n);
    }
  }
  return evaluate_miou(net, test);
}

}  // namespace rt
