#pragma once
// Segmentation transfer (Fig. 7): reuse a (possibly pruned) pretrained
// backbone inside an FCN head and finetune on the dense-prediction task.

#include <memory>

#include "data/segmentation_data.hpp"
#include "models/segmentation.hpp"
#include "nn/optim.hpp"

namespace rt {

struct SegTransferConfig {
  int epochs = 8;
  int batch_size = 16;
  SgdConfig sgd{0.05f, 0.9f, 1e-4f};
  int feature_stage = 2;  ///< backbone stage feeding the classifier
  bool verbose = false;
};

/// Builds a SegmentationNet around the backbone, finetunes the whole network
/// (masks preserved) on `train`, and returns the test mIoU.
double segmentation_transfer(std::unique_ptr<ResNet> backbone,
                             const SegDataset& train, const SegDataset& test,
                             const SegTransferConfig& config, Rng& rng);

/// mIoU of a trained segmentation net on a dataset.
double evaluate_miou(SegmentationNet& net, const SegDataset& data,
                     int batch_size = 32);

}  // namespace rt
