#pragma once
// The full per-ticket metric battery of Fig. 8 / Tab. I:
// clean accuracy, adversarial accuracy, corruption accuracy, ECE, NLL, and
// OoD-detection ROC-AUC (max-softmax-probability score).

#include "data/dataset.hpp"
#include "metrics/metrics.hpp"
#include "models/resnet.hpp"
#include "train/loop.hpp"

namespace rt {

struct EvalReport {
  double accuracy = 0.0;
  double adv_accuracy = 0.0;
  double corrupt_accuracy = 0.0;
  double ece = 0.0;
  double nll = 0.0;
  double ood_auc = 0.0;
};

struct EvalConfig {
  AttackConfig attack{0.06f, 0.015f, 10, true};  ///< eval PGD
  float corrupt_sigma = 0.08f;
  bool corrupt_blur = true;
  int ece_bins = 15;
  int batch_size = 64;
  std::uint64_t seed = 99;
};

/// Runs the whole battery on a finetuned model. `ood` supplies the
/// out-of-distribution negatives (in-distribution test samples are the
/// positives for the MSP detector).
EvalReport evaluate_full(ResNet& model, const Dataset& test,
                         const Dataset& ood, const EvalConfig& config);

}  // namespace rt
