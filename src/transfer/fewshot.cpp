#include "transfer/fewshot.hpp"

#include "data/tasks.hpp"
#include "prune/mask.hpp"

namespace rt {

std::unique_ptr<ResNet> clone_ticket(ResNet& model) {
  Rng init_rng(0);  // initialization is immediately overwritten
  auto clone = std::make_unique<ResNet>(model.config(), init_rng);
  if (clone->head().out_features() != model.head().out_features()) {
    clone->reset_head(static_cast<int>(model.head().out_features()),
                      init_rng);
  }
  clone->load_state(model.state_dict());
  MaskSet::capture(model).apply(*clone);
  clone->set_training(model.training());
  return clone;
}

std::vector<FewShotPoint> fewshot_sweep(ResNet& ticket,
                                        const std::string& task_name,
                                        const FewShotConfig& config,
                                        Rng& rng) {
  std::vector<FewShotPoint> out;
  out.reserve(config.train_sizes.size());
  for (int n : config.train_sizes) {
    const TaskData task = load_task(task_name, n, config.test_size);
    auto model = clone_ticket(ticket);
    Rng point_rng = rng.split();
    FewShotPoint point;
    point.train_size = n;
    point.accuracy =
        config.linear
            ? linear_eval(*model, task, config.linear_eval, point_rng)
            : finetune_whole_model(*model, task, config.finetune, point_rng);
    out.push_back(point);
  }
  return out;
}

}  // namespace rt
