#include "transfer/pretrain.hpp"

namespace rt {

const char* scheme_name(PretrainScheme scheme) {
  switch (scheme) {
    case PretrainScheme::kNatural: return "natural";
    case PretrainScheme::kAdversarial: return "adversarial";
    case PretrainScheme::kRandomizedSmoothing: return "rand-smooth";
    case PretrainScheme::kTrades: return "trades";
    case PretrainScheme::kFreeAdversarial: return "free-adv";
  }
  return "?";
}

const std::vector<PretrainScheme>& all_pretrain_schemes() {
  static const std::vector<PretrainScheme> schemes{
      PretrainScheme::kNatural,
      PretrainScheme::kAdversarial,
      PretrainScheme::kRandomizedSmoothing,
      PretrainScheme::kTrades,
      PretrainScheme::kFreeAdversarial,
  };
  return schemes;
}

TrainStats pretrain(ResNet& model, const Dataset& source_train,
                    const PretrainConfig& config, Rng& rng) {
  TrainLoopConfig loop;
  loop.epochs = config.epochs;
  loop.batch_size = config.batch_size;
  loop.sgd = config.sgd;
  loop.lr_milestones = {config.epochs / 2, (3 * config.epochs) / 4};
  loop.adversarial = config.scheme == PretrainScheme::kAdversarial;
  loop.attack = config.attack;
  loop.gaussian_sigma = config.scheme == PretrainScheme::kRandomizedSmoothing
                            ? config.smoothing_sigma
                            : 0.0f;
  if (config.scheme == PretrainScheme::kTrades) {
    loop.trades_beta = config.trades_beta;
  }
  if (config.scheme == PretrainScheme::kFreeAdversarial) {
    loop.free_replays = config.free_replays;
    // Free-AT effectively trains free_replays times per batch; shrink the
    // epoch budget so its cost matches natural training (the scheme's point).
    loop.epochs = std::max(1, config.epochs / config.free_replays);
    loop.lr_milestones = {loop.epochs / 2, (3 * loop.epochs) / 4};
  }
  loop.verbose = config.verbose;
  return train_classifier(model, source_train, loop, rng);
}

}  // namespace rt
