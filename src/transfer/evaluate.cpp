#include "transfer/evaluate.hpp"

namespace rt {

EvalReport evaluate_full(ResNet& model, const Dataset& test,
                         const Dataset& ood, const EvalConfig& config) {
  EvalReport report;
  // The battery is read-only except for the PGD attack, so the ticket is
  // compiled once and every gradient-free metric is served by the async
  // front-end: the battery's datasets stream through one coalescer and its
  // micro-batches ride the scheduler's serving lane, overtaking any bulk
  // retraining running alongside. Chunk boundaries match the old Session
  // path, so every metric is bitwise unchanged.
  serving::Server server = make_eval_server(model, test, config.batch_size);
  report.accuracy = evaluate_accuracy(server, test);

  Rng rng(config.seed);
  report.adv_accuracy = evaluate_adversarial_accuracy(
      model, test, config.attack, rng, config.batch_size);

  const Dataset corrupted = corrupt_dataset(test, config.corrupt_sigma,
                                            config.corrupt_blur,
                                            config.seed ^ 0xC0FFEEULL);
  report.corrupt_accuracy = evaluate_accuracy(server, corrupted);

  const Tensor probs = predict_probabilities(server, test);
  report.ece = expected_calibration_error(probs, test.labels, config.ece_bins);
  report.nll = negative_log_likelihood(probs, test.labels);

  const Tensor ood_probs = predict_probabilities(server, ood);
  report.ood_auc = roc_auc(max_softmax_scores(probs),
                           max_softmax_scores(ood_probs));
  return report;
}

}  // namespace rt
