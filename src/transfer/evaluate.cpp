#include "transfer/evaluate.hpp"

namespace rt {

EvalReport evaluate_full(ResNet& model, const Dataset& test,
                         const Dataset& ood, const EvalConfig& config) {
  EvalReport report;
  // The battery is read-only except for the PGD attack, so the ticket is
  // compiled once and every gradient-free metric runs on the engine.
  Session session = make_eval_session(model, test, config.batch_size);
  report.accuracy = evaluate_accuracy(session, test);

  Rng rng(config.seed);
  report.adv_accuracy = evaluate_adversarial_accuracy(
      model, test, config.attack, rng, config.batch_size);

  const Dataset corrupted = corrupt_dataset(test, config.corrupt_sigma,
                                            config.corrupt_blur,
                                            config.seed ^ 0xC0FFEEULL);
  report.corrupt_accuracy = evaluate_accuracy(session, corrupted);

  const Tensor probs = predict_probabilities(session, test);
  report.ece = expected_calibration_error(probs, test.labels, config.ece_bins);
  report.nll = negative_log_likelihood(probs, test.labels);

  const Tensor ood_probs = predict_probabilities(session, ood);
  report.ood_auc = roc_auc(max_softmax_scores(probs),
                           max_softmax_scores(ood_probs));
  return report;
}

}  // namespace rt
