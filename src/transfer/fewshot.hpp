#pragma once
// Few-shot transfer: accuracy as a function of the downstream data budget.
//
// The paper's whole motivation for transfer learning is downstream tasks
// where "collecting high-quality annotated data at scale is difficult"; the
// robust-prior question is sharpest exactly when data is scarce. This
// harness sweeps the downstream training-set size for a fixed ticket,
// cloning the ticket per point so budgets are independent.

#include <memory>
#include <string>
#include <vector>

#include "transfer/finetune.hpp"

namespace rt {

/// Deep copy of a (possibly pruned) model: same config, weights, buffers,
/// masks, head shape, and train/eval mode. The clone is fully independent.
std::unique_ptr<ResNet> clone_ticket(ResNet& model);

struct FewShotConfig {
  std::vector<int> train_sizes{25, 50, 100, 200, 400};
  int test_size = 320;
  FinetuneConfig finetune;
  /// Linear evaluation instead of whole-model finetuning.
  bool linear = false;
  LinearEvalConfig linear_eval;
};

struct FewShotPoint {
  int train_size = 0;
  float accuracy = 0.0f;
};

/// Runs the sweep for one ticket on one named suite task. Each point clones
/// the ticket, draws `train_size` downstream samples, adapts, and reports
/// test accuracy on a fixed `test_size` split.
std::vector<FewShotPoint> fewshot_sweep(ResNet& ticket,
                                        const std::string& task_name,
                                        const FewShotConfig& config, Rng& rng);

}  // namespace rt
