#include "transfer/det_transfer.hpp"

#include <cstdio>

namespace rt {

namespace {

std::vector<std::vector<DetObject>> gather_objects(
    const std::vector<std::vector<DetObject>>& objects,
    const std::vector<int>& idx) {
  std::vector<std::vector<DetObject>> out;
  out.reserve(idx.size());
  for (int i : idx) out.push_back(objects[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

double evaluate_map(DetectionNet& net, const DetDataset& data,
                    float score_threshold, int batch_size) {
  const bool was_training = net.training();
  net.set_training(false);
  std::vector<std::vector<Detection>> all_pred;
  std::vector<std::vector<DetObject>> all_truth;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(data.size()), batch_size)) {
    const Tensor x = gather_images(data.images, idx);
    const Tensor head_map = net.forward(x);
    auto pred = decode_detections(head_map, net.num_classes(), net.stride(),
                                  score_threshold);
    for (auto& p : pred) all_pred.push_back(std::move(p));
    auto truth = gather_objects(data.objects, idx);
    for (auto& t : truth) all_truth.push_back(std::move(t));
  }
  net.set_training(was_training);
  return detection_map(all_pred, all_truth, data.num_classes);
}

double detection_transfer(std::unique_ptr<ResNet> backbone,
                          const DetDataset& train, const DetDataset& test,
                          const DetTransferConfig& config, Rng& rng) {
  DetectionNet net(std::move(backbone), train.num_classes,
                   config.feature_stage, rng);
  Sgd sgd(net.parameters(), config.sgd);
  const MultiStepLr schedule(config.sgd.lr,
                             {config.epochs / 2, (3 * config.epochs) / 4});
  const int n = static_cast<int>(train.size());

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    double loss_acc = 0.0;
    for (const auto& idx : make_batches(n, config.batch_size, rng)) {
      const Tensor x = gather_images(train.images, idx);
      const auto truth = gather_objects(train.objects, idx);
      net.set_training(true);
      net.zero_grad();
      const Tensor head_map = net.forward(x);
      const DetLossResult loss =
          detection_loss(head_map, truth, train.num_classes, net.stride(),
                         config.box_weight);
      net.backward(loss.grad);
      sgd.step();
      loss_acc +=
          static_cast<double>(loss.loss) * static_cast<double>(idx.size());
    }
    if (config.verbose) {
      std::printf("  det epoch %2d loss %.4f\n", epoch, loss_acc / n);
    }
  }
  return evaluate_map(net, test, config.score_threshold);
}

}  // namespace rt
