#pragma once
// Downstream adaptation: whole-model finetuning and linear evaluation.

#include "data/tasks.hpp"
#include "models/resnet.hpp"
#include "train/loop.hpp"

namespace rt {

struct FinetuneConfig {
  int epochs = 9;
  int batch_size = 32;
  SgdConfig sgd{0.02f, 0.9f, 1e-4f};
  bool verbose = false;
};

/// Whole-model finetuning: replaces the head for the task's class count and
/// trains everything. Masked (pruned) weights remain exactly zero. Returns
/// downstream test accuracy.
float finetune_whole_model(ResNet& model, const TaskData& task,
                           const FinetuneConfig& config, Rng& rng);

struct LinearEvalConfig {
  int epochs = 40;
  int batch_size = 64;
  SgdConfig sgd{0.1f, 0.9f, 1e-4f};
  bool verbose = false;
};

/// Linear evaluation: the backbone is frozen as a feature extractor (features
/// precomputed once, which is exact because nothing upstream changes) and a
/// fresh linear classifier is trained on top. Returns test accuracy. The
/// model's head is replaced by the trained classifier.
float linear_eval(ResNet& model, const TaskData& task,
                  const LinearEvalConfig& config, Rng& rng);

/// Frozen-backbone features of a batch of images, shape (N, feature_dim).
Tensor extract_features(ResNet& model, const Tensor& images,
                        int batch_size = 64);

/// LP-FT (linear probe, then finetune): first trains a fresh head on frozen
/// features (exactly linear_eval), then finetunes the whole model from that
/// head. Avoids the feature distortion of finetuning from a random head
/// (Kumar et al. 2022) and is the stronger protocol at small data budgets.
/// Returns downstream test accuracy after the finetuning phase.
float finetune_lp_ft(ResNet& model, const TaskData& task,
                     const LinearEvalConfig& probe,
                     const FinetuneConfig& finetune, Rng& rng);

/// Partial finetuning: the first `freeze_stages` trunk stages stay frozen
/// (their weights receive no updates; batch-norm statistics still track the
/// finetuning data, as is standard) and the rest plus a fresh head train.
/// freeze_stages == 0 is whole-model finetuning; == num_stages() leaves only
/// the head trainable (but on live, not precomputed, features).
float finetune_partial(ResNet& model, const TaskData& task, int freeze_stages,
                       const FinetuneConfig& config, Rng& rng);

}  // namespace rt
