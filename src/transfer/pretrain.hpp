#pragma once
// Source-task pretraining under the three schemes of the paper:
// natural, PGD adversarial training (default robustifier), and
// randomized-smoothing-style Gaussian augmentation (Fig. 6 alternative).

#include "data/tasks.hpp"
#include "models/resnet.hpp"
#include "train/loop.hpp"

namespace rt {

enum class PretrainScheme {
  kNatural,
  kAdversarial,          ///< PGD adversarial training (Madry et al. [16])
  kRandomizedSmoothing,  ///< Gaussian-noise augmentation (Cohen et al. [3])
  kTrades,               ///< CE + beta * KL robust objective (Zhang et al.)
  kFreeAdversarial,      ///< batch-replay free AT (Shafahi et al. [20])
};

const char* scheme_name(PretrainScheme scheme);

/// All pretraining schemes, natural first (bench iteration order).
const std::vector<PretrainScheme>& all_pretrain_schemes();

struct PretrainConfig {
  PretrainScheme scheme = PretrainScheme::kNatural;
  int epochs = 14;
  int batch_size = 32;
  SgdConfig sgd{0.05f, 0.9f, 5e-4f};
  AttackConfig attack;          ///< used by kAdversarial / kTrades / kFree*
  float smoothing_sigma = 0.12f;///< used when scheme == kRandomizedSmoothing
  float trades_beta = 4.0f;     ///< used when scheme == kTrades
  int free_replays = 4;         ///< used when scheme == kFreeAdversarial
  bool verbose = false;
};

/// Trains `model` in place on the source training set. LR decays by 0.1 at
/// 1/2 and 3/4 of the epoch budget (the scaled-down paper recipe).
TrainStats pretrain(ResNet& model, const Dataset& source_train,
                    const PretrainConfig& config, Rng& rng);

}  // namespace rt
