#include "transfer/finetune.hpp"

#include <stdexcept>
#include <utility>

namespace rt {

float finetune_whole_model(ResNet& model, const TaskData& task,
                           const FinetuneConfig& config, Rng& rng) {
  model.reset_head(task.train.num_classes, rng);
  TrainLoopConfig loop;
  loop.epochs = config.epochs;
  loop.batch_size = config.batch_size;
  loop.sgd = config.sgd;
  loop.lr_milestones = {config.epochs / 3, (2 * config.epochs) / 3};
  loop.verbose = config.verbose;
  train_classifier(model, task.train, loop, rng);
  return evaluate_accuracy(model, task.test);
}

Tensor extract_features(ResNet& model, const Tensor& images, int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  Tensor features;
  std::int64_t row = 0;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(images.dim(0)), batch_size)) {
    const Tensor x = gather_images(images, idx);
    const Tensor f = model.forward_features(x);
    if (features.empty()) features = Tensor({images.dim(0), f.dim(1)});
    for (std::int64_t i = 0; i < f.dim(0); ++i, ++row) {
      for (std::int64_t j = 0; j < f.dim(1); ++j) {
        features.at(row, j) = f.at(i, j);
      }
    }
  }
  model.set_training(was_training);
  return features;
}

float finetune_lp_ft(ResNet& model, const TaskData& task,
                     const LinearEvalConfig& probe,
                     const FinetuneConfig& finetune, Rng& rng) {
  linear_eval(model, task, probe, rng);  // leaves the trained head in place
  TrainLoopConfig loop;
  loop.epochs = finetune.epochs;
  loop.batch_size = finetune.batch_size;
  loop.sgd = finetune.sgd;
  loop.lr_milestones = {finetune.epochs / 3, (2 * finetune.epochs) / 3};
  loop.verbose = finetune.verbose;
  train_classifier(model, task.train, loop, rng);
  return evaluate_accuracy(model, task.test);
}

float finetune_partial(ResNet& model, const TaskData& task, int freeze_stages,
                       const FinetuneConfig& config, Rng& rng) {
  if (freeze_stages < 0 || freeze_stages > model.num_stages()) {
    throw std::invalid_argument("finetune_partial: bad freeze_stages");
  }
  model.reset_head(task.train.num_classes, rng);
  const std::size_t first_trainable =
      freeze_stages == 0
          ? 0
          : static_cast<std::size_t>(model.stage_end_index(freeze_stages - 1));
  std::vector<Parameter*> params;
  for (std::size_t i = first_trainable; i < model.trunk_size(); ++i) {
    model.trunk_module(i).collect_parameters(params);
  }
  model.head().collect_parameters(params);

  TrainLoopConfig loop;
  loop.epochs = config.epochs;
  loop.batch_size = config.batch_size;
  loop.sgd = config.sgd;
  loop.lr_milestones = {config.epochs / 3, (2 * config.epochs) / 3};
  loop.verbose = config.verbose;
  train_classifier(model, std::move(params), task.train, loop, rng);
  return evaluate_accuracy(model, task.test);
}

float linear_eval(ResNet& model, const TaskData& task,
                  const LinearEvalConfig& config, Rng& rng) {
  // Precompute frozen features once; the linear head then trains at a cost
  // independent of backbone depth.
  Dataset train_feat;
  train_feat.images = extract_features(model, task.train.images);
  train_feat.labels = task.train.labels;
  train_feat.num_classes = task.train.num_classes;
  Dataset test_feat;
  test_feat.images = extract_features(model, task.test.images);
  test_feat.labels = task.test.labels;
  test_feat.num_classes = task.test.num_classes;

  model.reset_head(task.train.num_classes, rng);
  Linear& head = model.head();
  TrainLoopConfig loop;
  loop.epochs = config.epochs;
  loop.batch_size = config.batch_size;
  loop.sgd = config.sgd;
  loop.lr_milestones = {config.epochs / 2, (3 * config.epochs) / 4};
  loop.verbose = config.verbose;
  std::vector<Parameter*> head_params;
  head.collect_parameters(head_params);
  train_classifier(head, head_params, train_feat, loop, rng);
  return evaluate_accuracy(head, test_feat);
}

}  // namespace rt
