#pragma once
// Object-detection transfer (Fig. 7(a)): reuse a (possibly pruned)
// pretrained backbone inside the anchor-free detection head and finetune on
// the synthetic detection task.

#include <memory>

#include "data/detection_data.hpp"
#include "models/detection.hpp"
#include "nn/optim.hpp"

namespace rt {

struct DetTransferConfig {
  int epochs = 10;
  int batch_size = 16;
  /// Default rate suits from-scratch micro backbones; PRETRAINED backbones
  /// need ~0.002 (the detection loss diverges at classification-finetune
  /// rates on deep bottleneck nets — see bench_fig7a_detection).
  SgdConfig sgd{0.05f, 0.9f, 1e-4f};
  int feature_stage = 1;    ///< stride-2 feature map: one cell per object
  float box_weight = 2.0f;  ///< box-loss weight against the class CE
  float score_threshold = 0.35f;
  bool verbose = false;
};

/// Builds a DetectionNet around the backbone, finetunes the whole network
/// (masks preserved) on `train`, and returns the test mAP@0.5.
double detection_transfer(std::unique_ptr<ResNet> backbone,
                          const DetDataset& train, const DetDataset& test,
                          const DetTransferConfig& config, Rng& rng);

/// mAP@0.5 of a trained detector on a dataset.
double evaluate_map(DetectionNet& net, const DetDataset& data,
                    float score_threshold = 0.5f, int batch_size = 32);

}  // namespace rt
