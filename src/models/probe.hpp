#pragma once
// Fixed random-feature probe network for FID computation.
//
// The paper measures domain gaps with InceptionV3 FID; at micro scale we use
// features from a frozen, seeded random convnet — a standard cheap FID proxy.
// Only the *ordering* of distances matters for the Tab. II analysis, and a
// fixed random projection preserves distributional differences.

#include <memory>

#include "nn/conv.hpp"
#include "nn/pooling.hpp"

namespace rt {

class FidProbe {
 public:
  /// Deterministic: the same (conv_dim, seed) always yields the same feature
  /// function.
  explicit FidProbe(int conv_dim = 32, std::uint64_t seed = 20230423);

  /// Maps images (N,3,H,W) to features (N, feature_dim()). H and W must be
  /// divisible by 4 (two stride-2 convolutions). Features concatenate
  /// pooled deep-conv magnitudes with per-channel spatial standard
  /// deviations of the first conv — the latter keeps high-frequency
  /// statistics (noise, texture, pattern corruption) visible after pooling.
  Tensor features(const Tensor& images);

  int feature_dim() const { return conv_dim_ + kStemChannels; }

 private:
  static constexpr int kStemChannels = 24;
  int conv_dim_;
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<GlobalAvgPool> gap_;
};

}  // namespace rt
