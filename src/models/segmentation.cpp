#include "models/segmentation.hpp"

#include <stdexcept>

namespace rt {

SegmentationNet::SegmentationNet(std::unique_ptr<ResNet> backbone,
                                 int num_classes, int feature_stage, Rng& rng)
    : backbone_(std::move(backbone)), feature_stage_(feature_stage) {
  if (feature_stage_ < 0 || feature_stage_ >= backbone_->num_stages()) {
    throw std::invalid_argument("SegmentationNet: bad feature stage");
  }
  const int in_ch = backbone_->stage_channels(feature_stage_);
  classifier_ = std::make_unique<Conv2d>(in_ch, num_classes, 1, 1, 0,
                                         /*with_bias=*/true, rng, "seg.head");
  std::int64_t factor = 1;
  for (int s = 1; s <= feature_stage_; ++s) factor *= 2;
  upsample_ = std::make_unique<NearestUpsample>(factor);
}

Tensor SegmentationNet::forward(const Tensor& x) {
  const Tensor f = backbone_->forward_trunk(x, feature_stage_);
  return upsample_->forward(classifier_->forward(f));
}

Tensor SegmentationNet::backward(const Tensor& grad_out) {
  Tensor g = upsample_->backward(grad_out);
  g = classifier_->backward(g);
  return backbone_->backward_trunk(g, feature_stage_);
}

void SegmentationNet::collect_parameters(std::vector<Parameter*>& out) {
  backbone_->collect_parameters(out);
  classifier_->collect_parameters(out);
}

void SegmentationNet::collect_buffers(std::vector<NamedTensor>& out) {
  backbone_->collect_buffers(out);
}

void SegmentationNet::set_training(bool training) {
  Module::set_training(training);
  backbone_->set_training(training);
}

std::vector<Parameter*> SegmentationNet::head_parameters() {
  std::vector<Parameter*> out;
  classifier_->collect_parameters(out);
  return out;
}

}  // namespace rt
