#pragma once
// Micro-ResNet classifier family used throughout the experiments.
//
// The paper uses ResNet18/ResNet50 on 224x224 ImageNet; this library scales
// the same topology (residual stages, batch norm, global average pooling,
// linear head) down to 3x16x16 synthetic images so that full
// pretrain/prune/transfer pipelines run on a CPU in seconds. MicroResNet18
// uses basic blocks, MicroResNet50 bottleneck blocks with more layers and a
// wider feature head, preserving the relative over-parameterization gap.

#include <memory>
#include <string>
#include <vector>

#include "models/blocks.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace rt {

struct ResNetConfig {
  enum class BlockType { kBasic, kBottleneck };
  BlockType block = BlockType::kBasic;
  std::vector<int> stage_blocks{2, 2, 2, 2};
  std::vector<int> stage_channels{8, 16, 32, 64};
  int bottleneck_expansion = 2;
  int in_channels = 3;
  int num_classes = 10;
  std::string name = "resnet";
};

/// Parameter / FLOP statistics; sparse counts honour installed masks.
struct ModelStats {
  std::int64_t total_params = 0;
  std::int64_t prunable_params = 0;
  std::int64_t unmasked_prunable_params = 0;
  std::int64_t dense_flops = 0;   ///< MACs*2 for convs + head, per sample
  std::int64_t sparse_flops = 0;  ///< same but weighted by mask occupancy
};

class ResNet : public Module {
 public:
  ResNet(const ResNetConfig& config, Rng& rng);

  // ---- Classification path -------------------------------------------------
  /// logits = head(GAP(trunk(x)))
  Tensor forward(const Tensor& x) override;
  /// Backward from dL/dlogits all the way to the input (returned).
  Tensor backward(const Tensor& grad_out) override;

  // ---- Feature paths (linear evaluation / segmentation) ---------------------
  /// Post-GAP features (N, feature_dim); cached for backward_features.
  Tensor forward_features(const Tensor& x);
  Tensor backward_features(const Tensor& grad_features);
  /// Feature map after the given stage (0..num_stages-1), pre-GAP.
  Tensor forward_trunk(const Tensor& x, int upto_stage);
  Tensor backward_trunk(const Tensor& grad, int upto_stage);

  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  int feature_dim() const { return feature_dim_; }
  int num_stages() const { return static_cast<int>(stage_end_.size()); }
  /// Channel count of the feature map after the given stage.
  int stage_channels(int stage) const;
  Linear& head() { return *head_; }
  const Linear& head() const { return *head_; }
  /// Replaces the classifier head with a fresh one for a downstream task.
  void reset_head(int num_classes, Rng& rng);

  /// Conv + linear weights eligible for pruning. The classifier head is
  /// excluded by default (it is replaced per downstream task).
  std::vector<Parameter*> prunable_parameters(bool include_head = false);

  /// Trunk module access (stem layers + residual blocks, in forward order);
  /// used by the hw shrink compiler and representation analysis.
  std::size_t trunk_size() const { return trunk_.size(); }
  Module& trunk_module(std::size_t i) { return *trunk_.at(i); }
  const Module& trunk_module(std::size_t i) const { return *trunk_.at(i); }
  /// Index one past the last trunk module of the given stage (stage 0
  /// includes the stem layers).
  int stage_end_index(int stage) const {
    return stage_end_.at(static_cast<std::size_t>(stage));
  }

  /// Analytic parameter/FLOP statistics at the given input resolution.
  ModelStats stats(std::int64_t height, std::int64_t width);

  const ResNetConfig& config() const { return config_; }

 private:
  ResNetConfig config_;
  int feature_dim_ = 0;
  // Trunk: stem conv/bn/relu followed by residual blocks, run in order.
  std::vector<std::unique_ptr<Module>> trunk_;
  std::vector<int> stage_end_;  ///< index one past the last trunk module of each stage
  std::unique_ptr<GlobalAvgPool> gap_;
  std::unique_ptr<Linear> head_;
  int cached_trunk_depth_ = -1;  ///< trunk modules run by the last forward
};

/// ResNet18 analogue: basic blocks, 2-2-2-2.
ResNetConfig micro_resnet18_config(int num_classes);
/// ResNet50 analogue: bottleneck blocks, 2-3-3-2, expansion 2.
ResNetConfig micro_resnet50_config(int num_classes);

std::unique_ptr<ResNet> make_micro_resnet18(int num_classes, Rng& rng);
std::unique_ptr<ResNet> make_micro_resnet50(int num_classes, Rng& rng);

}  // namespace rt
