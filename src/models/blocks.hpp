#pragma once
// Residual blocks (basic and bottleneck) with manual backward through the
// skip connection.

#include <memory>
#include <string>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"

namespace rt {

/// Two 3x3 convs + identity/projection shortcut (ResNet-18/34 style).
class BasicBlock : public Module {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng, const std::string& name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  std::int64_t out_channels() const { return out_channels_; }
  bool has_projection() const { return down_conv_ != nullptr; }

  // Layer access for analysis, the hw shrink compiler, and Engine::compile.
  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn1() { return *bn1_; }
  BatchNorm2d& bn2() { return *bn2_; }
  const Conv2d& conv1() const { return *conv1_; }
  const Conv2d& conv2() const { return *conv2_; }
  const BatchNorm2d& bn1() const { return *bn1_; }
  const BatchNorm2d& bn2() const { return *bn2_; }
  const Conv2d* down_conv() const { return down_conv_.get(); }
  const BatchNorm2d* down_bn() const { return down_bn_.get(); }

  /// Physically removes the internal channels (conv1 outputs == conv2
  /// inputs) with keep[c] == 0, rebuilding conv1/bn1/conv2 at the reduced
  /// width. The result computes the same function iff every removed channel
  /// was dead: conv1 row all-zero AND bn1 gamma == beta == 0. Returns the
  /// number of channels kept. keep must leave at least one channel.
  std::int64_t shrink_internal(const std::vector<char>& keep, Rng& rng);

 private:
  std::int64_t out_channels_;
  std::unique_ptr<Conv2d> conv1_, conv2_;
  std::unique_ptr<BatchNorm2d> bn1_, bn2_;
  std::unique_ptr<Conv2d> down_conv_;   ///< 1x1 projection (nullptr = identity)
  std::unique_ptr<BatchNorm2d> down_bn_;
  Tensor gate1_, gate2_;
};

/// 1x1 reduce -> 3x3 -> 1x1 expand + shortcut (ResNet-50 style).
/// Output channels = mid_channels * expansion.
class BottleneckBlock : public Module {
 public:
  BottleneckBlock(std::int64_t in_channels, std::int64_t mid_channels,
                  std::int64_t expansion, std::int64_t stride, Rng& rng,
                  const std::string& name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  std::int64_t out_channels() const { return out_channels_; }
  bool has_projection() const { return down_conv_ != nullptr; }

  // Layer access for analysis, the hw shrink compiler, and Engine::compile.
  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  Conv2d& conv3() { return *conv3_; }
  BatchNorm2d& bn1() { return *bn1_; }
  BatchNorm2d& bn2() { return *bn2_; }
  BatchNorm2d& bn3() { return *bn3_; }
  const Conv2d& conv1() const { return *conv1_; }
  const Conv2d& conv2() const { return *conv2_; }
  const Conv2d& conv3() const { return *conv3_; }
  const BatchNorm2d& bn1() const { return *bn1_; }
  const BatchNorm2d& bn2() const { return *bn2_; }
  const BatchNorm2d& bn3() const { return *bn3_; }
  const Conv2d* down_conv() const { return down_conv_.get(); }
  const BatchNorm2d* down_bn() const { return down_bn_.get(); }

  /// Removes dead channels on both internal interfaces: keep1 selects conv1
  /// outputs (== conv2 inputs), keep2 selects conv2 outputs (== conv3
  /// inputs). Same equivalence precondition as BasicBlock::shrink_internal.
  /// Returns total channels kept across both interfaces.
  std::int64_t shrink_internal(const std::vector<char>& keep1,
                               const std::vector<char>& keep2, Rng& rng);

 private:
  std::int64_t out_channels_;
  std::unique_ptr<Conv2d> conv1_, conv2_, conv3_;
  std::unique_ptr<BatchNorm2d> bn1_, bn2_, bn3_;
  std::unique_ptr<Conv2d> down_conv_;
  std::unique_ptr<BatchNorm2d> down_bn_;
  Tensor gate1_, gate2_, gate3_;
};

/// Shared helpers for channel surgery on conv/bn layers; used by the block
/// shrink methods and tested directly.

/// New Conv2d keeping only the selected OUTPUT channels (weight rows and
/// mask rows; bias entries when present).
std::unique_ptr<Conv2d> conv_keep_outputs(Conv2d& conv,
                                          const std::vector<char>& keep,
                                          Rng& rng);

/// New Conv2d keeping only the selected INPUT channels (column blocks of the
/// (out, in*k*k) weight layout).
std::unique_ptr<Conv2d> conv_keep_inputs(Conv2d& conv,
                                         const std::vector<char>& keep,
                                         Rng& rng);

/// New BatchNorm2d keeping the selected channels of gamma/beta/running
/// statistics.
std::unique_ptr<BatchNorm2d> bn_keep_channels(BatchNorm2d& bn,
                                              const std::vector<char>& keep);

}  // namespace rt
