#include "models/detection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/synth.hpp"

namespace rt {

DetectionNet::DetectionNet(std::unique_ptr<ResNet> backbone, int num_classes,
                           int feature_stage, Rng& rng)
    : backbone_(std::move(backbone)),
      num_classes_(num_classes),
      feature_stage_(feature_stage),
      stride_(1 << feature_stage) {
  if (feature_stage < 0 || feature_stage >= backbone_->num_stages()) {
    throw std::invalid_argument("DetectionNet: bad feature_stage");
  }
  const int in_ch = backbone_->stage_channels(feature_stage);
  head_ = std::make_unique<Conv2d>(in_ch, num_classes_ + 1 + 4, 1, 1, 0,
                                   /*with_bias=*/true, rng, "det.head");
  // Detection-head init (standard practice): small weights so the initial
  // box regression loss stays O(1) even on large pretrained activations,
  // and a background-prior bias so training starts from "no objects"
  // instead of random per-cell classes. Without this, whole-model
  // finetuning at normal learning rates diverges on pretrained backbones.
  head_->weight().value.mul_(0.1f);
  (*head_->bias()).value[0] = 2.0f;
}

Tensor DetectionNet::forward(const Tensor& x) {
  return head_->forward(backbone_->forward_trunk(x, feature_stage_));
}

Tensor DetectionNet::backward(const Tensor& grad_out) {
  return backbone_->backward_trunk(head_->backward(grad_out), feature_stage_);
}

void DetectionNet::collect_parameters(std::vector<Parameter*>& out) {
  backbone_->collect_parameters(out);
  head_->collect_parameters(out);
}

void DetectionNet::collect_buffers(std::vector<NamedTensor>& out) {
  backbone_->collect_buffers(out);
}

void DetectionNet::set_training(bool training) {
  Module::set_training(training);
  backbone_->set_training(training);
  head_->set_training(training);
}

DetTargets assign_detection_targets(
    const std::vector<std::vector<DetObject>>& truth, int stride,
    std::int64_t hf, std::int64_t wf) {
  const auto n = static_cast<std::int64_t>(truth.size());
  const std::int64_t hw = hf * wf;
  DetTargets targets;
  targets.cls.assign(static_cast<std::size_t>(n * hw), 0);
  targets.box.assign(static_cast<std::size_t>(n * hw * 4), 0.0f);
  const float radius = 1.5f * static_cast<float>(stride);
  for (std::int64_t i = 0; i < n; ++i) {
    for (const DetObject& obj : truth[static_cast<std::size_t>(i)]) {
      for (std::int64_t cy = 0; cy < hf; ++cy) {
        for (std::int64_t cx = 0; cx < wf; ++cx) {
          const float px = (static_cast<float>(cx) + 0.5f) * stride;
          const float py = (static_cast<float>(cy) + 0.5f) * stride;
          const float dx = px - obj.box.cx(), dy = py - obj.box.cy();
          if (dx * dx + dy * dy > radius * radius) continue;
          const std::int64_t cell = cy * wf + cx;
          targets.cls[static_cast<std::size_t>(i * hw + cell)] = obj.cls + 1;
          float* t = targets.box.data() +
                     static_cast<std::size_t>((i * hw + cell) * 4);
          t[0] = obj.box.cx() / static_cast<float>(stride) -
                 static_cast<float>(cx);
          t[1] = obj.box.cy() / static_cast<float>(stride) -
                 static_cast<float>(cy);
          t[2] = (obj.box.x1 - obj.box.x0) / static_cast<float>(kImageSize);
          t[3] = (obj.box.y1 - obj.box.y0) / static_cast<float>(kImageSize);
        }
      }
    }
  }
  return targets;
}

DetLossResult detection_loss(const Tensor& head_map,
                             const std::vector<std::vector<DetObject>>& truth,
                             int num_classes, int stride, float box_weight) {
  const std::int64_t n = head_map.dim(0);
  const std::int64_t channels = head_map.dim(1);
  const std::int64_t hf = head_map.dim(2), wf = head_map.dim(3);
  const std::int64_t class_ch = num_classes + 1;
  if (channels != class_ch + 4 ||
      static_cast<std::int64_t>(truth.size()) != n) {
    throw std::invalid_argument("detection_loss: shape mismatch");
  }
  const std::int64_t hw = hf * wf;

  const DetTargets targets = assign_detection_targets(truth, stride, hf, wf);
  const std::vector<int>& cls_target = targets.cls;

  DetLossResult out;
  out.grad = Tensor(head_map.shape());

  // Class loss: weighted per-cell softmax CE over the first class_ch
  // channels. Positive cells are rare (1-3 per 64-cell map), so they are
  // up-weighted to keep the objective from collapsing to all-background.
  constexpr float kPositiveWeight = 4.0f;
  double weight_sum = 0.0;
  double ce_acc = 0.0;
  std::vector<float> probs(static_cast<std::size_t>(class_ch));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t px = 0; px < hw; ++px) {
      const int target = cls_target[static_cast<std::size_t>(i * hw + px)];
      const float w = target > 0 ? kPositiveWeight : 1.0f;
      float m = -1e30f;
      for (std::int64_t c = 0; c < class_ch; ++c) {
        m = std::max(m, head_map.data()[(i * channels + c) * hw + px]);
      }
      float z = 0.0f;
      for (std::int64_t c = 0; c < class_ch; ++c) {
        probs[static_cast<std::size_t>(c)] =
            std::exp(head_map.data()[(i * channels + c) * hw + px] - m);
        z += probs[static_cast<std::size_t>(c)];
      }
      const float inv_z = 1.0f / z;
      ce_acc -= static_cast<double>(w) *
                std::log(std::max(
                    probs[static_cast<std::size_t>(target)] * inv_z, 1e-12f));
      for (std::int64_t c = 0; c < class_ch; ++c) {
        const float p = probs[static_cast<std::size_t>(c)] * inv_z;
        out.grad.data()[(i * channels + c) * hw + px] =
            w * (p - (c == target ? 1.0f : 0.0f));
      }
      weight_sum += w;
    }
  }
  const float inv_weight = 1.0f / static_cast<float>(weight_sum);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < class_ch; ++c) {
      for (std::int64_t px = 0; px < hw; ++px) {
        out.grad.data()[(i * channels + c) * hw + px] *= inv_weight;
      }
    }
  }
  out.class_loss = static_cast<float>(ce_acc / weight_sum);

  // Box loss: 0.5 * mean_{positive cells} sum_k (pred_k - t_k)^2.
  std::int64_t num_pos = 0;
  for (int t : cls_target) num_pos += t > 0 ? 1 : 0;
  if (num_pos > 0) {
    const float inv_pos = 1.0f / static_cast<float>(num_pos);
    double box_acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t cell = 0; cell < hw; ++cell) {
        if (cls_target[static_cast<std::size_t>(i * hw + cell)] == 0) {
          continue;
        }
        const float* t = targets.box.data() +
                         static_cast<std::size_t>((i * hw + cell) * 4);
        for (int k = 0; k < 4; ++k) {
          const std::int64_t idx =
              (i * channels + class_ch + k) * hw + cell;
          const float diff = head_map.data()[idx] - t[k];
          box_acc += 0.5 * static_cast<double>(diff) * diff;
          out.grad.data()[idx] += box_weight * diff * inv_pos;
        }
      }
    }
    out.box_loss = static_cast<float>(box_acc) * inv_pos;
  }
  out.loss = out.class_loss + box_weight * out.box_loss;
  return out;
}

std::vector<std::vector<Detection>> decode_detections(const Tensor& head_map,
                                                      int num_classes,
                                                      int stride,
                                                      float score_threshold,
                                                      float nms_iou) {
  const std::int64_t n = head_map.dim(0);
  const std::int64_t channels = head_map.dim(1);
  const std::int64_t class_ch = num_classes + 1;
  const std::int64_t hf = head_map.dim(2), wf = head_map.dim(3);
  const std::int64_t hw = hf * wf;

  std::vector<std::vector<Detection>> out(static_cast<std::size_t>(n));
  std::vector<float> probs(static_cast<std::size_t>(class_ch));
  for (std::int64_t i = 0; i < n; ++i) {
    std::vector<Detection> raw;
    for (std::int64_t cell = 0; cell < hw; ++cell) {
      // Softmax over the class channels of this cell.
      float m = -1e30f;
      for (std::int64_t c = 0; c < class_ch; ++c) {
        m = std::max(m, head_map.data()[(i * channels + c) * hw + cell]);
      }
      float z = 0.0f;
      for (std::int64_t c = 0; c < class_ch; ++c) {
        probs[static_cast<std::size_t>(c)] = std::exp(
            head_map.data()[(i * channels + c) * hw + cell] - m);
        z += probs[static_cast<std::size_t>(c)];
      }
      std::int64_t best = 0;
      for (std::int64_t c = 1; c < class_ch; ++c) {
        if (probs[static_cast<std::size_t>(c)] >
            probs[static_cast<std::size_t>(best)]) {
          best = c;
        }
      }
      if (best == 0) continue;  // background
      const float score = probs[static_cast<std::size_t>(best)] / z;
      if (score < score_threshold) continue;

      // Centre offsets may reach ~1.5 cells beyond the cell origin under
      // centre sampling; clamp generously rather than to [0, 1].
      const float dx = std::clamp(
          head_map.data()[(i * channels + class_ch + 0) * hw + cell], -2.0f,
          3.0f);
      const float dy = std::clamp(
          head_map.data()[(i * channels + class_ch + 1) * hw + cell], -2.0f,
          3.0f);
      const float w = std::clamp(
          head_map.data()[(i * channels + class_ch + 2) * hw + cell],
          1.0f / kImageSize, 1.0f) * kImageSize;
      const float h = std::clamp(
          head_map.data()[(i * channels + class_ch + 3) * hw + cell],
          1.0f / kImageSize, 1.0f) * kImageSize;
      const float cx = (static_cast<float>(cell % wf) + dx) *
                       static_cast<float>(stride);
      const float cy = (static_cast<float>(cell / wf) + dy) *
                       static_cast<float>(stride);
      Detection det;
      det.box = BoxF{cx - 0.5f * w, cy - 0.5f * h, cx + 0.5f * w,
                     cy + 0.5f * h};
      det.cls = static_cast<int>(best) - 1;
      det.score = score;
      raw.push_back(det);
    }

    // Greedy class-wise NMS (the mAP-standard choice): centre sampling makes
    // neighbouring cells emit near-identical boxes, and per-class
    // suppression merges them without letting a mis-classified duplicate
    // shadow the correctly-classified one.
    std::sort(raw.begin(), raw.end(), [](const Detection& a,
                                         const Detection& b) {
      return a.score > b.score;
    });
    std::vector<Detection>& kept = out[static_cast<std::size_t>(i)];
    for (const Detection& det : raw) {
      bool suppressed = false;
      for (const Detection& k : kept) {
        if (k.cls == det.cls &&
            box_iou(k.box, det.box) > static_cast<double>(nms_iou)) {
          suppressed = true;
          break;
        }
      }
      if (!suppressed) kept.push_back(det);
    }
  }
  return out;
}

double detection_map(const std::vector<std::vector<Detection>>& predictions,
                     const std::vector<std::vector<DetObject>>& truth,
                     int num_classes, double iou_threshold) {
  if (predictions.size() != truth.size()) {
    throw std::invalid_argument("detection_map: size mismatch");
  }
  double ap_sum = 0.0;
  int classes_present = 0;
  for (int cls = 0; cls < num_classes; ++cls) {
    // Gather class predictions (image, score) and count ground truths.
    struct Pred {
      std::size_t image;
      float score;
      BoxF box;
    };
    std::vector<Pred> preds;
    std::int64_t total_gt = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      for (const DetObject& obj : truth[i]) {
        if (obj.cls == cls) ++total_gt;
      }
      for (const Detection& det : predictions[i]) {
        if (det.cls == cls) preds.push_back({i, det.score, det.box});
      }
    }
    if (total_gt == 0) continue;
    ++classes_present;
    std::sort(preds.begin(), preds.end(),
              [](const Pred& a, const Pred& b) { return a.score > b.score; });

    std::vector<std::vector<char>> matched(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      matched[i].assign(truth[i].size(), 0);
    }
    std::vector<char> is_tp(preds.size(), 0);
    for (std::size_t p = 0; p < preds.size(); ++p) {
      const auto& gt = truth[preds[p].image];
      double best_iou = 0.0;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < gt.size(); ++j) {
        if (gt[j].cls != cls || matched[preds[p].image][j]) continue;
        const double iou = box_iou(preds[p].box, gt[j].box);
        if (iou > best_iou) {
          best_iou = iou;
          best_j = j;
        }
      }
      if (best_iou >= iou_threshold) {
        is_tp[p] = 1;
        matched[preds[p].image][best_j] = 1;
      }
    }

    // All-point interpolated AP from the precision-recall curve.
    double ap = 0.0;
    std::int64_t tp = 0;
    std::vector<double> recall(preds.size()), precision(preds.size());
    for (std::size_t p = 0; p < preds.size(); ++p) {
      tp += is_tp[p];
      recall[p] = static_cast<double>(tp) / static_cast<double>(total_gt);
      precision[p] = static_cast<double>(tp) / static_cast<double>(p + 1);
    }
    // Precision envelope (monotone non-increasing from the right).
    for (std::size_t p = preds.size(); p-- > 1;) {
      precision[p - 1] = std::max(precision[p - 1], precision[p]);
    }
    double prev_recall = 0.0;
    for (std::size_t p = 0; p < preds.size(); ++p) {
      ap += (recall[p] - prev_recall) * precision[p];
      prev_recall = recall[p];
    }
    ap_sum += ap;
  }
  return classes_present > 0 ? ap_sum / classes_present : 0.0;
}

}  // namespace rt
