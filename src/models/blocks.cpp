#include "models/blocks.hpp"

#include <stdexcept>

namespace rt {

namespace {

/// Strips the ".weight" / ".gamma" suffix off a parameter name to recover
/// the layer name it was constructed with.
std::string layer_base_name(const std::string& param_name,
                            const std::string& suffix) {
  if (param_name.size() > suffix.size() &&
      param_name.compare(param_name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return param_name.substr(0, param_name.size() - suffix.size());
  }
  return param_name;
}

std::vector<std::int64_t> kept_indices(const std::vector<char>& keep) {
  std::vector<std::int64_t> idx;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] != 0) idx.push_back(static_cast<std::int64_t>(i));
  }
  if (idx.empty()) {
    throw std::invalid_argument("channel shrink: must keep >= 1 channel");
  }
  return idx;
}

}  // namespace

std::unique_ptr<Conv2d> conv_keep_outputs(Conv2d& conv,
                                          const std::vector<char>& keep,
                                          Rng& rng) {
  if (static_cast<std::int64_t>(keep.size()) != conv.out_channels()) {
    throw std::invalid_argument("conv_keep_outputs: keep size mismatch");
  }
  const auto idx = kept_indices(keep);
  const ConvGeometry& g = conv.geometry();
  auto out = std::make_unique<Conv2d>(
      conv.in_channels(), static_cast<std::int64_t>(idx.size()), g.kernel,
      g.stride, g.padding, conv.bias() != nullptr, rng,
      layer_base_name(conv.weight().name, ".weight"));
  const std::int64_t cols = conv.weight().value.dim(1);
  const bool masked = conv.weight().has_mask();
  Tensor mask;
  if (masked) mask = Tensor({static_cast<std::int64_t>(idx.size()), cols});
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out->weight().value.at(static_cast<std::int64_t>(r), c) =
          conv.weight().value.at(idx[r], c);
      if (masked) {
        mask.at(static_cast<std::int64_t>(r), c) =
            conv.weight().mask.at(idx[r], c);
      }
    }
    if (conv.bias() != nullptr) {
      (*out->bias()).value[static_cast<std::int64_t>(r)] =
          (*conv.bias()).value[idx[r]];
    }
  }
  if (masked) out->weight().set_mask(std::move(mask));
  return out;
}

std::unique_ptr<Conv2d> conv_keep_inputs(Conv2d& conv,
                                         const std::vector<char>& keep,
                                         Rng& rng) {
  if (static_cast<std::int64_t>(keep.size()) != conv.in_channels()) {
    throw std::invalid_argument("conv_keep_inputs: keep size mismatch");
  }
  const auto idx = kept_indices(keep);
  const ConvGeometry& g = conv.geometry();
  auto out = std::make_unique<Conv2d>(
      static_cast<std::int64_t>(idx.size()), conv.out_channels(), g.kernel,
      g.stride, g.padding, conv.bias() != nullptr, rng,
      layer_base_name(conv.weight().name, ".weight"));
  const std::int64_t k2 = g.kernel * g.kernel;
  const std::int64_t rows = conv.out_channels();
  const bool masked = conv.weight().has_mask();
  Tensor mask;
  if (masked) {
    mask = Tensor({rows, static_cast<std::int64_t>(idx.size()) * k2});
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < idx.size(); ++j) {
      for (std::int64_t t = 0; t < k2; ++t) {
        const std::int64_t src = idx[j] * k2 + t;
        const std::int64_t dst = static_cast<std::int64_t>(j) * k2 + t;
        out->weight().value.at(r, dst) = conv.weight().value.at(r, src);
        if (masked) mask.at(r, dst) = conv.weight().mask.at(r, src);
      }
    }
    if (conv.bias() != nullptr) {
      (*out->bias()).value[r] = (*conv.bias()).value[r];
    }
  }
  if (masked) out->weight().set_mask(std::move(mask));
  return out;
}

std::unique_ptr<BatchNorm2d> bn_keep_channels(BatchNorm2d& bn,
                                              const std::vector<char>& keep) {
  if (static_cast<std::int64_t>(keep.size()) != bn.channels()) {
    throw std::invalid_argument("bn_keep_channels: keep size mismatch");
  }
  const auto idx = kept_indices(keep);
  auto out = std::make_unique<BatchNorm2d>(
      static_cast<std::int64_t>(idx.size()),
      layer_base_name(bn.gamma().name, ".gamma"));
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const auto d = static_cast<std::int64_t>(i);
    out->gamma().value[d] = bn.gamma().value[idx[i]];
    out->beta().value[d] = bn.beta().value[idx[i]];
    out->running_mean()[d] = bn.running_mean()[idx[i]];
    out->running_var()[d] = bn.running_var()[idx[i]];
  }
  return out;
}

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng, const std::string& name)
    : out_channels_(out_channels) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1,
                                    /*with_bias=*/false, rng, name + ".conv1");
  bn1_ = std::make_unique<BatchNorm2d>(out_channels, name + ".bn1");
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1,
                                    /*with_bias=*/false, rng, name + ".conv2");
  bn2_ = std::make_unique<BatchNorm2d>(out_channels, name + ".bn2");
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0,
                                 /*with_bias=*/false, rng, name + ".down");
    down_bn_ = std::make_unique<BatchNorm2d>(out_channels, name + ".down_bn");
  }
}

Tensor BasicBlock::forward(const Tensor& x) {
  Tensor h = relu_forward(bn1_->forward(conv1_->forward(x)), gate1_);
  h = bn2_->forward(conv2_->forward(h));
  const Tensor shortcut =
      down_conv_ ? down_bn_->forward(down_conv_->forward(x)) : x;
  h.add_(shortcut);
  return relu_forward(h, gate2_);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  const Tensor g_sum = relu_backward(grad_out, gate2_);
  // Main branch.
  Tensor g = bn2_->backward(g_sum);
  g = conv2_->backward(g);
  g = relu_backward(g, gate1_);
  g = bn1_->backward(g);
  Tensor gx = conv1_->backward(g);
  // Shortcut branch.
  if (down_conv_) {
    gx.add_(down_conv_->backward(down_bn_->backward(g_sum)));
  } else {
    gx.add_(g_sum);
  }
  return gx;
}

void BasicBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_->collect_parameters(out);
  bn1_->collect_parameters(out);
  conv2_->collect_parameters(out);
  bn2_->collect_parameters(out);
  if (down_conv_) {
    down_conv_->collect_parameters(out);
    down_bn_->collect_parameters(out);
  }
}

void BasicBlock::collect_buffers(std::vector<NamedTensor>& out) {
  bn1_->collect_buffers(out);
  bn2_->collect_buffers(out);
  if (down_bn_) down_bn_->collect_buffers(out);
}

void BasicBlock::set_training(bool training) {
  Module::set_training(training);
  bn1_->set_training(training);
  bn2_->set_training(training);
  if (down_bn_) down_bn_->set_training(training);
}

std::int64_t BasicBlock::shrink_internal(const std::vector<char>& keep,
                                         Rng& rng) {
  conv1_ = conv_keep_outputs(*conv1_, keep, rng);
  bn1_ = bn_keep_channels(*bn1_, keep);
  conv2_ = conv_keep_inputs(*conv2_, keep, rng);
  bn1_->set_training(training());
  return conv1_->out_channels();
}

BottleneckBlock::BottleneckBlock(std::int64_t in_channels,
                                 std::int64_t mid_channels,
                                 std::int64_t expansion, std::int64_t stride,
                                 Rng& rng, const std::string& name)
    : out_channels_(mid_channels * expansion) {
  conv1_ = std::make_unique<Conv2d>(in_channels, mid_channels, 1, 1, 0,
                                    /*with_bias=*/false, rng, name + ".conv1");
  bn1_ = std::make_unique<BatchNorm2d>(mid_channels, name + ".bn1");
  conv2_ = std::make_unique<Conv2d>(mid_channels, mid_channels, 3, stride, 1,
                                    /*with_bias=*/false, rng, name + ".conv2");
  bn2_ = std::make_unique<BatchNorm2d>(mid_channels, name + ".bn2");
  conv3_ = std::make_unique<Conv2d>(mid_channels, out_channels_, 1, 1, 0,
                                    /*with_bias=*/false, rng, name + ".conv3");
  bn3_ = std::make_unique<BatchNorm2d>(out_channels_, name + ".bn3");
  if (stride != 1 || in_channels != out_channels_) {
    down_conv_ =
        std::make_unique<Conv2d>(in_channels, out_channels_, 1, stride, 0,
                                 /*with_bias=*/false, rng, name + ".down");
    down_bn_ = std::make_unique<BatchNorm2d>(out_channels_, name + ".down_bn");
  }
}

Tensor BottleneckBlock::forward(const Tensor& x) {
  Tensor h = relu_forward(bn1_->forward(conv1_->forward(x)), gate1_);
  h = relu_forward(bn2_->forward(conv2_->forward(h)), gate2_);
  h = bn3_->forward(conv3_->forward(h));
  const Tensor shortcut =
      down_conv_ ? down_bn_->forward(down_conv_->forward(x)) : x;
  h.add_(shortcut);
  return relu_forward(h, gate3_);
}

Tensor BottleneckBlock::backward(const Tensor& grad_out) {
  const Tensor g_sum = relu_backward(grad_out, gate3_);
  Tensor g = bn3_->backward(g_sum);
  g = conv3_->backward(g);
  g = relu_backward(g, gate2_);
  g = bn2_->backward(g);
  g = conv2_->backward(g);
  g = relu_backward(g, gate1_);
  g = bn1_->backward(g);
  Tensor gx = conv1_->backward(g);
  if (down_conv_) {
    gx.add_(down_conv_->backward(down_bn_->backward(g_sum)));
  } else {
    gx.add_(g_sum);
  }
  return gx;
}

void BottleneckBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_->collect_parameters(out);
  bn1_->collect_parameters(out);
  conv2_->collect_parameters(out);
  bn2_->collect_parameters(out);
  conv3_->collect_parameters(out);
  bn3_->collect_parameters(out);
  if (down_conv_) {
    down_conv_->collect_parameters(out);
    down_bn_->collect_parameters(out);
  }
}

void BottleneckBlock::collect_buffers(std::vector<NamedTensor>& out) {
  bn1_->collect_buffers(out);
  bn2_->collect_buffers(out);
  bn3_->collect_buffers(out);
  if (down_bn_) down_bn_->collect_buffers(out);
}

void BottleneckBlock::set_training(bool training) {
  Module::set_training(training);
  bn1_->set_training(training);
  bn2_->set_training(training);
  bn3_->set_training(training);
  if (down_bn_) down_bn_->set_training(training);
}

std::int64_t BottleneckBlock::shrink_internal(const std::vector<char>& keep1,
                                              const std::vector<char>& keep2,
                                              Rng& rng) {
  conv1_ = conv_keep_outputs(*conv1_, keep1, rng);
  bn1_ = bn_keep_channels(*bn1_, keep1);
  conv2_ = conv_keep_inputs(*conv2_, keep1, rng);
  conv2_ = conv_keep_outputs(*conv2_, keep2, rng);
  bn2_ = bn_keep_channels(*bn2_, keep2);
  conv3_ = conv_keep_inputs(*conv3_, keep2, rng);
  bn1_->set_training(training());
  bn2_->set_training(training());
  return conv1_->out_channels() + conv2_->out_channels();
}

}  // namespace rt
