#pragma once
// Anchor-free single-scale detection head on a ResNet backbone
// (the Fig. 7(a) object-detection transfer target).
//
// A 1x1 conv over one backbone feature map predicts, per cell,
//   * num_classes + 1 class logits (channel 0 = background), and
//   * 4 box parameters (dx, dy: centre offset in cell units from the cell
//     origin, possibly beyond [0,1]; w, h as fractions of the image side).
// Assignment uses FCOS-style centre sampling: every cell whose centre lies
// within 1.5 * stride of an object centre is positive for that object and
// regresses the same box (centre-cell-only assignment is unlearnable here:
// objects span many cells and interior cells are locally identical).
// Training minimizes weighted per-cell softmax CE (positives up-weighted)
// plus an L2 box loss on positive cells; inference takes the per-cell
// argmax, thresholds the foreground score, and lets greedy NMS merge the
// duplicate centre-region detections.

#include <memory>
#include <vector>

#include "data/detection_data.hpp"
#include "models/resnet.hpp"

namespace rt {

/// One decoded detection.
struct Detection {
  BoxF box;
  int cls = 0;
  float score = 0.0f;  ///< foreground-class softmax probability
};

class DetectionNet : public Module {
 public:
  /// Takes ownership of the backbone. `feature_stage` selects the trunk
  /// stage whose feature map feeds the head (stride 2^feature_stage).
  DetectionNet(std::unique_ptr<ResNet> backbone, int num_classes,
               int feature_stage, Rng& rng);

  /// x (N,3,S,S) -> raw head map (N, num_classes+1+4, S/stride, S/stride).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  ResNet& backbone() { return *backbone_; }
  int num_classes() const { return num_classes_; }
  int stride() const { return stride_; }

 private:
  std::unique_ptr<ResNet> backbone_;
  std::unique_ptr<Conv2d> head_;
  int num_classes_;
  int feature_stage_;
  int stride_;
};

/// Per-cell training targets produced by centre-sampling assignment.
/// cls[i*hf*wf + cell] is 0 for background, otherwise object class + 1; box
/// targets (dx, dy, w, h) are valid where cls > 0.
struct DetTargets {
  std::vector<int> cls;
  std::vector<float> box;  ///< 4 per cell, row-major (cell, k)
};

DetTargets assign_detection_targets(
    const std::vector<std::vector<DetObject>>& truth, int stride,
    std::int64_t hf, std::int64_t wf);

/// Loss of a raw head map against ground truth: mean per-cell CE over the
/// class channels + box_weight * mean L2 over positive cells' box channels.
/// Returns the loss and the gradient w.r.t. the head map.
struct DetLossResult {
  float loss = 0.0f;
  float class_loss = 0.0f;
  float box_loss = 0.0f;
  Tensor grad;  ///< same shape as the head map
};

DetLossResult detection_loss(const Tensor& head_map,
                             const std::vector<std::vector<DetObject>>& truth,
                             int num_classes, int stride,
                             float box_weight = 2.0f);

/// Decodes per-image detections from a raw head map (argmax class, score
/// threshold, greedy class-wise NMS at the given IoU).
std::vector<std::vector<Detection>> decode_detections(
    const Tensor& head_map, int num_classes, int stride,
    float score_threshold = 0.5f, float nms_iou = 0.45f);

/// Mean average precision at the given IoU threshold (all-point
/// interpolation, mean over classes that appear in the ground truth).
double detection_map(const std::vector<std::vector<Detection>>& predictions,
                     const std::vector<std::vector<DetObject>>& truth,
                     int num_classes, double iou_threshold = 0.5);

}  // namespace rt
