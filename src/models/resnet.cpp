#include "models/resnet.hpp"

#include <stdexcept>

namespace rt {

ResNet::ResNet(const ResNetConfig& config, Rng& rng) : config_(config) {
  if (config.stage_blocks.size() != config.stage_channels.size() ||
      config.stage_blocks.empty()) {
    throw std::invalid_argument("ResNet: stage config mismatch");
  }
  const std::string& nm = config_.name;
  const int c0 = config_.stage_channels[0];

  trunk_.push_back(std::make_unique<Conv2d>(config_.in_channels, c0, 3, 1, 1,
                                            /*with_bias=*/false, rng,
                                            nm + ".stem"));
  trunk_.push_back(std::make_unique<BatchNorm2d>(c0, nm + ".stem_bn"));
  trunk_.push_back(std::make_unique<ReLU>());

  std::int64_t in_ch = c0;
  const bool bottleneck = config_.block == ResNetConfig::BlockType::kBottleneck;
  for (std::size_t s = 0; s < config_.stage_blocks.size(); ++s) {
    const std::int64_t ch = config_.stage_channels[s];
    for (int b = 0; b < config_.stage_blocks[s]; ++b) {
      const std::int64_t stride = (s > 0 && b == 0) ? 2 : 1;
      const std::string bname =
          nm + ".stage" + std::to_string(s) + ".block" + std::to_string(b);
      if (bottleneck) {
        auto block = std::make_unique<BottleneckBlock>(
            in_ch, ch, config_.bottleneck_expansion, stride, rng, bname);
        in_ch = block->out_channels();
        trunk_.push_back(std::move(block));
      } else {
        auto block = std::make_unique<BasicBlock>(in_ch, ch, stride, rng, bname);
        in_ch = block->out_channels();
        trunk_.push_back(std::move(block));
      }
    }
    stage_end_.push_back(static_cast<int>(trunk_.size()));
  }
  feature_dim_ = static_cast<int>(in_ch);
  gap_ = std::make_unique<GlobalAvgPool>();
  head_ = std::make_unique<Linear>(feature_dim_, config_.num_classes,
                                   /*with_bias=*/true, rng, nm + ".head");
}

int ResNet::stage_channels(int stage) const {
  if (stage < 0 || stage >= num_stages()) {
    throw std::out_of_range("ResNet::stage_channels");
  }
  const int ch = config_.stage_channels[static_cast<std::size_t>(stage)];
  return config_.block == ResNetConfig::BlockType::kBottleneck
             ? ch * config_.bottleneck_expansion
             : ch;
}

Tensor ResNet::forward_trunk(const Tensor& x, int upto_stage) {
  if (upto_stage < 0 || upto_stage >= num_stages()) {
    throw std::out_of_range("ResNet::forward_trunk stage");
  }
  const int depth = stage_end_[static_cast<std::size_t>(upto_stage)];
  Tensor h = x;
  for (int i = 0; i < depth; ++i) h = trunk_[static_cast<std::size_t>(i)]->forward(h);
  cached_trunk_depth_ = depth;
  return h;
}

Tensor ResNet::backward_trunk(const Tensor& grad, int upto_stage) {
  const int depth = stage_end_[static_cast<std::size_t>(upto_stage)];
  if (depth != cached_trunk_depth_) {
    throw std::logic_error("ResNet::backward_trunk without matching forward");
  }
  Tensor g = grad;
  for (int i = depth - 1; i >= 0; --i) {
    g = trunk_[static_cast<std::size_t>(i)]->backward(g);
  }
  return g;
}

Tensor ResNet::forward_features(const Tensor& x) {
  return gap_->forward(forward_trunk(x, num_stages() - 1));
}

Tensor ResNet::backward_features(const Tensor& grad_features) {
  return backward_trunk(gap_->backward(grad_features), num_stages() - 1);
}

Tensor ResNet::forward(const Tensor& x) {
  return head_->forward(forward_features(x));
}

Tensor ResNet::backward(const Tensor& grad_out) {
  return backward_features(head_->backward(grad_out));
}

void ResNet::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& m : trunk_) m->collect_parameters(out);
  head_->collect_parameters(out);
}

void ResNet::collect_buffers(std::vector<NamedTensor>& out) {
  for (auto& m : trunk_) m->collect_buffers(out);
}

void ResNet::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : trunk_) m->set_training(training);
  head_->set_training(training);
}

void ResNet::reset_head(int num_classes, Rng& rng) {
  head_ = std::make_unique<Linear>(feature_dim_, num_classes,
                                   /*with_bias=*/true, rng,
                                   config_.name + ".head");
}

std::vector<Parameter*> ResNet::prunable_parameters(bool include_head) {
  std::vector<Parameter*> out;
  for (Parameter* p : parameters()) {
    if (!p->prunable()) continue;
    if (!include_head && p == &head_->weight()) continue;
    out.push_back(p);
  }
  return out;
}

ModelStats ResNet::stats(std::int64_t height, std::int64_t width) {
  ModelStats s;
  for (Parameter* p : parameters()) {
    s.total_params += p->value.numel();
    if (p->prunable()) {
      s.prunable_params += p->value.numel();
      s.unmasked_prunable_params +=
          p->has_mask() ? static_cast<std::int64_t>(p->mask.sum())
                        : p->value.numel();
    }
  }
  // FLOPs: walk the trunk replaying spatial geometry. Strides only occur in
  // the first block of stages > 0, halving the extent there. Per-block cost
  // uses the block's output resolution, exact for 1x1/3x3 with our padding.
  std::int64_t h = height, w = width;
  std::size_t stage = 0;
  std::size_t block_in_stage = 0;
  auto add_conv_weight = [&](const Parameter& p) {
    const std::int64_t macs = p.value.numel() * h * w;
    s.dense_flops += 2 * macs;
    const double occ =
        p.has_mask() ? static_cast<double>(p.mask.sum()) /
                           static_cast<double>(p.value.numel())
                     : 1.0;
    s.sparse_flops +=
        static_cast<std::int64_t>(2.0 * occ * static_cast<double>(macs));
  };
  for (std::size_t idx = 0; idx < trunk_.size(); ++idx) {
    Module* m = trunk_[idx].get();
    if (auto* conv = dynamic_cast<Conv2d*>(m)) {
      add_conv_weight(conv->weight());
    } else if (dynamic_cast<BasicBlock*>(m) != nullptr ||
               dynamic_cast<BottleneckBlock*>(m) != nullptr) {
      if (stage > 0 && block_in_stage == 0) {
        h /= 2;
        w /= 2;
      }
      std::vector<Parameter*> params;
      m->collect_parameters(params);
      for (const Parameter* p : params) {
        if (p->kind == ParamKind::kConvWeight) add_conv_weight(*p);
      }
      ++block_in_stage;
    }
    if (stage < stage_end_.size() &&
        static_cast<int>(idx) + 1 == stage_end_[stage]) {
      ++stage;
      block_in_stage = 0;
    }
  }
  // Head.
  const std::int64_t head_macs = head_->weight().value.numel();
  s.dense_flops += 2 * head_macs;
  s.sparse_flops += 2 * head_macs;
  return s;
}

ResNetConfig micro_resnet18_config(int num_classes) {
  ResNetConfig c;
  c.block = ResNetConfig::BlockType::kBasic;
  c.stage_blocks = {2, 2, 2, 2};
  c.stage_channels = {8, 16, 32, 64};
  c.num_classes = num_classes;
  c.name = "r18";
  return c;
}

ResNetConfig micro_resnet50_config(int num_classes) {
  ResNetConfig c;
  c.block = ResNetConfig::BlockType::kBottleneck;
  c.stage_blocks = {2, 3, 3, 2};
  // Wider than the r18 analogue so the over-parameterization relationship of
  // the paper's ResNet18 vs ResNet50 carries over at micro scale.
  c.stage_channels = {10, 20, 40, 80};
  c.bottleneck_expansion = 2;
  c.num_classes = num_classes;
  c.name = "r50";
  return c;
}

std::unique_ptr<ResNet> make_micro_resnet18(int num_classes, Rng& rng) {
  return std::make_unique<ResNet>(micro_resnet18_config(num_classes), rng);
}

std::unique_ptr<ResNet> make_micro_resnet50(int num_classes, Rng& rng) {
  return std::make_unique<ResNet>(micro_resnet50_config(num_classes), rng);
}

}  // namespace rt
