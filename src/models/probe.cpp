#include "models/probe.hpp"

#include <cmath>

#include "nn/activations.hpp"

namespace rt {

FidProbe::FidProbe(int conv_dim, std::uint64_t seed) : conv_dim_(conv_dim) {
  Rng rng(seed);
  conv1_ = std::make_unique<Conv2d>(3, kStemChannels, 3, 2, 1,
                                    /*with_bias=*/true, rng, "probe.conv1");
  conv2_ = std::make_unique<Conv2d>(kStemChannels, conv_dim, 3, 2, 1,
                                    /*with_bias=*/true, rng, "probe.conv2");
  gap_ = std::make_unique<GlobalAvgPool>();
}

Tensor FidProbe::features(const Tensor& images) {
  const Tensor a1 = conv1_->forward(images);
  Tensor gate;
  const Tensor h1 = relu_forward(a1, gate);
  // Deep path: abs() keeps both signs of the random projections informative.
  Tensor h2 = conv2_->forward(h1);
  h2.abs_();
  const Tensor deep = gap_->forward(h2);  // (N, conv_dim)

  // High-frequency path: per-channel spatial standard deviation of the stem
  // response — sensitive to noise/texture/pattern statistics that average
  // out under global pooling.
  const std::int64_t n = a1.dim(0), c = a1.dim(1), hw = a1.dim(2) * a1.dim(3);
  Tensor out({n, static_cast<std::int64_t>(feature_dim())});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < conv_dim_; ++j) {
      out.at(i, j) = deep.at(i, j);
    }
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = a1.data() + (i * c + ch) * hw;
      double sum = 0.0, sq = 0.0;
      for (std::int64_t k = 0; k < hw; ++k) {
        sum += p[k];
        sq += static_cast<double>(p[k]) * p[k];
      }
      const double mean = sum / static_cast<double>(hw);
      const double var = std::max(0.0, sq / static_cast<double>(hw) - mean * mean);
      out.at(i, conv_dim_ + ch) = static_cast<float>(std::sqrt(var));
    }
  }
  return out;
}

}  // namespace rt
