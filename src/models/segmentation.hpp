#pragma once
// FCN-style dense prediction on top of a ResNet backbone.
//
// Plays the role of the paper's PASCAL-VOC segmentation transfer (Fig. 7):
// the pretrained (and possibly pruned) backbone is reused, a 1x1 classifier
// is trained on an intermediate feature map, and logits are upsampled to the
// input resolution.

#include <memory>

#include "models/resnet.hpp"
#include "nn/pooling.hpp"

namespace rt {

class SegmentationNet : public Module {
 public:
  /// Takes ownership of the backbone. `feature_stage` selects which trunk
  /// stage feeds the classifier (stride 2^feature_stage); logits are
  /// upsampled by the same factor back to input resolution.
  SegmentationNet(std::unique_ptr<ResNet> backbone, int num_classes,
                  int feature_stage, Rng& rng);

  /// x (N,3,H,W) -> per-pixel logits (N, num_classes, H, W).
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  ResNet& backbone() { return *backbone_; }
  /// Parameters of the decode head only (for head-only finetuning).
  std::vector<Parameter*> head_parameters();

 private:
  std::unique_ptr<ResNet> backbone_;
  std::unique_ptr<Conv2d> classifier_;
  std::unique_ptr<NearestUpsample> upsample_;
  int feature_stage_;
};

}  // namespace rt
