#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/audit.hpp"
#include "common/scheduler.hpp"
#include "hw/quant.hpp"
#include "linalg/microkernel_s8.hpp"
#include "models/blocks.hpp"
#include "nn/activations.hpp"
#include "nn/loss.hpp"

namespace rt {

namespace {

std::int64_t div_round_up(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::string base_name(const std::string& param_name) {
  const std::string suffix = ".weight";
  if (param_name.size() > suffix.size() &&
      param_name.compare(param_name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return param_name.substr(0, param_name.size() - suffix.size());
  }
  return param_name;
}

/// Packs a folded (rows, cols) weight matrix + bias into the chosen format,
/// fills the int8 sidecar, and appends the layer's plan record. The weight
/// buffer is consumed.
template <typename Packed>
void pack_weights(Packed& p, std::vector<float> w, std::int64_t rows,
                  std::int64_t cols, std::int64_t macs_per_weight,
                  const CompileOptions& options,
                  std::vector<LayerPlan>& plans, bool allow_compact) {
  std::vector<float> scales;
  if (options.int8_weights) {
    scales = fake_quantize_matrix(w.data(), rows, cols,
                                  QuantScheme::kPerChannel, options.int8_bits);
  }

  std::int64_t nnz = 0;
  std::vector<std::int32_t> kept;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t row_nnz = 0;
    for (std::int64_t c = 0; c < cols; ++c) {
      if (w[static_cast<std::size_t>(r * cols + c)] != 0.0f) ++row_nnz;
    }
    if (row_nnz > 0) kept.push_back(static_cast<std::int32_t>(r));
    nnz += row_nnz;
  }

  PackedFormat format = choose_packed_format(
      rows, cols, nnz, static_cast<std::int64_t>(kept.size()), options);
  // The head has no spatial scatter path; CSR covers its pruned-row case.
  if (!allow_compact && format == PackedFormat::kChannelCompact) {
    format = PackedFormat::kCsr;
  }
  p.format = format;

  LayerPlan plan;
  plan.name = p.name;
  plan.format = format;
  plan.quantized = options.int8_weights;
  plan.rows = rows;
  plan.cols = cols;
  plan.nnz = nnz;
  plan.kept_rows = static_cast<std::int64_t>(kept.size());
  plan.dense_macs = rows * cols * macs_per_weight;

  const std::int64_t value_bytes = options.int8_weights ? 1 : 4;
  switch (format) {
    case PackedFormat::kDense: {
      p.weight = std::move(w);
      plan.effective_macs = plan.dense_macs;
      plan.packed_bytes = rows * cols * value_bytes;
      break;
    }
    case PackedFormat::kChannelCompact: {
      if constexpr (requires { p.kept; }) {
        p.kept = kept;
        p.weight.resize(static_cast<std::size_t>(
            static_cast<std::int64_t>(kept.size()) * cols));
        for (std::size_t k = 0; k < kept.size(); ++k) {
          const float* src =
              w.data() + static_cast<std::int64_t>(kept[k]) * cols;
          std::copy(src, src + cols,
                    p.weight.data() + static_cast<std::int64_t>(k) * cols);
        }
      } else {
        throw std::logic_error("channel-compact packing needs a scatter path");
      }
      plan.effective_macs =
          static_cast<std::int64_t>(kept.size()) * cols * macs_per_weight;
      plan.packed_bytes = static_cast<std::int64_t>(kept.size()) * cols *
                              value_bytes +
                          div_round_up(rows, 8);  // kept-row bitmap
      break;
    }
    case PackedFormat::kCsr: {
      p.csr = csr_from_dense(rows, cols, w.data());
      plan.effective_macs = nnz * macs_per_weight;
      // values + 32-bit column indices + row pointers.
      plan.packed_bytes = nnz * value_bytes + nnz * 4 + (rows + 1) * 4;
      break;
    }
  }

  if (options.int8_weights) {
    // fake_quantize_matrix left every stored float equal to q * scale, so
    // the shippable integer is recovered exactly. The scale row of a stored
    // value follows from its position: t/cols for the dense-style layouts
    // (through `kept` when rows were compacted), the row_ptr walk for CSR.
    const std::vector<float>& stored =
        format == PackedFormat::kCsr ? p.csr.values : p.weight;
    const auto quantized = [&scales](float v, std::int64_t row) {
      const float s = scales[static_cast<std::size_t>(row)];
      return static_cast<std::int8_t>(s > 0.0f ? std::lround(v / s) : 0);
    };
    p.qvalues.reserve(stored.size());
    if (format == PackedFormat::kCsr) {
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int32_t t = p.csr.row_ptr[static_cast<std::size_t>(r)];
             t < p.csr.row_ptr[static_cast<std::size_t>(r) + 1]; ++t) {
          p.qvalues.push_back(quantized(stored[static_cast<std::size_t>(t)], r));
        }
      }
    } else {
      for (std::size_t t = 0; t < stored.size(); ++t) {
        const std::int64_t row = static_cast<std::int64_t>(t) / cols;
        p.qvalues.push_back(quantized(
            stored[t], format == PackedFormat::kChannelCompact
                           ? kept[static_cast<std::size_t>(row)]
                           : row));
      }
    }
    p.qscales = std::move(scales);
    plan.packed_bytes +=
        static_cast<std::int64_t>(p.qscales.size()) * 4;  // fp32 scales

    // True int8 execution: pack the sidecar into the quantized kernel
    // layer's executable operands. Native execution needs the full 8-bit
    // encoding (the kernels' offset arithmetic assumes q in [-127, 127]);
    // narrower bit-width sweeps keep the simulated float path.
    if (options.int8_native && options.int8_bits == 8) {
      if constexpr (requires { p.taps; }) {
        // Convs execute natively in every format: dense and channel-compact
        // through the quantized implicit-GEMM (quad panels + offset
        // corrections + per-packed-row scales), CSR through the integer tap
        // path, which consumes qvalues/qscales directly.
        p.int8_exec = true;
        if (format != PackedFormat::kCsr) {
          const std::int64_t exec_rows =
              cols > 0 ? static_cast<std::int64_t>(p.qvalues.size()) / cols
                       : 0;
          p.qpacked.pack(p.qvalues.data(), exec_rows, cols);
          p.qexec_scales.resize(static_cast<std::size_t>(exec_rows));
          for (std::int64_t r = 0; r < exec_rows; ++r) {
            const std::int64_t src = format == PackedFormat::kChannelCompact
                                         ? kept[static_cast<std::size_t>(r)]
                                         : r;
            p.qexec_scales[static_cast<std::size_t>(r)] =
                p.qscales[static_cast<std::size_t>(src)];
          }
          // Panels are host-side acceleration like the fp32 prepack (which
          // native layers skip), reported on the same line.
          plan.prepacked_bytes = p.qpacked.bytes();
          if (p.in_w <= 4 || p.geom.stride > 1) {
            // Very narrow planes gather faster through a precomputed
            // source-index table: their image rows are too short to amortize
            // even the padded-plane gather's per-row memcpy. Strided planes
            // take it too — their gather has no contiguous runs to memcpy.
            // Everything else uses the padded-plane staging inside the
            // kernel (see kPadPlaneCapS8 in linalg/conv.cpp).
            p.qgather = build_s8_gather_index(p.in_ch, p.in_h, p.in_w, p.geom);
            plan.prepacked_bytes +=
                static_cast<std::int64_t>(p.qgather.size()) * 4;
          }
        }
      } else if (format == PackedFormat::kDense) {
        // The head executes natively only when dense; a CSR head keeps the
        // simulated float path (tiny layer, spmm already skips zeros).
        p.int8_exec = true;
        const std::int64_t rows8 = round_up4(cols) *
                                   ((rows + kNrS8 - 1) / kNrS8 * kNrS8);
        p.qslivers.assign(static_cast<std::size_t>(rows8), 0);
        pack_b_quads_s8_nt(p.qvalues.data(), rows, cols, p.qslivers.data());
        p.qcorr.resize(static_cast<std::size_t>(rows));
        for (std::int64_t r = 0; r < rows; ++r) {
          p.qcorr[static_cast<std::size_t>(r)] =
              quad_row_offset_sum(p.qvalues.data() + r * cols, cols);
        }
        plan.prepacked_bytes =
            static_cast<std::int64_t>(p.qslivers.size()) + rows * 4;
      }
    }
  }
  plan.packed_bytes += rows * 4;  // folded fp32 bias
  plans.push_back(std::move(plan));
}

/// Folds conv (+ optional BN) into a PackedConv at the given input extent.
PackedConv pack_conv(const Conv2d& conv, const BatchNorm2d* bn, bool relu,
                     std::int64_t in_h, std::int64_t in_w,
                     const CompileOptions& options,
                     std::vector<LayerPlan>& plans) {
  PackedConv p;
  p.name = base_name(conv.weight().name);
  p.geom = conv.geometry();
  p.in_ch = conv.in_channels();
  p.out_ch = conv.out_channels();
  p.in_h = in_h;
  p.in_w = in_w;
  p.out_h = p.geom.out_extent(in_h);
  p.out_w = p.geom.out_extent(in_w);
  p.relu = relu;

  const std::int64_t ckk = p.in_ch * p.geom.kernel * p.geom.kernel;
  const Tensor& wv = conv.weight().value;
  std::vector<float> w(wv.data(), wv.data() + wv.numel());
  p.bias.assign(static_cast<std::size_t>(p.out_ch), 0.0f);
  if (conv.bias() != nullptr) {
    for (std::int64_t oc = 0; oc < p.out_ch; ++oc) {
      p.bias[static_cast<std::size_t>(oc)] = conv.bias()->value[oc];
    }
  }
  if (bn != nullptr) {
    if (bn->channels() != p.out_ch) {
      throw std::invalid_argument("Engine::compile: conv/bn channel mismatch");
    }
    for (std::int64_t oc = 0; oc < p.out_ch; ++oc) {
      const float s = bn->gamma().value[oc] /
                      std::sqrt(bn->running_var()[oc] + bn->eps());
      float* row = w.data() + oc * ckk;
      for (std::int64_t c = 0; c < ckk; ++c) row[c] *= s;
      p.bias[static_cast<std::size_t>(oc)] =
          bn->beta().value[oc] +
          s * (p.bias[static_cast<std::size_t>(oc)] - bn->running_mean()[oc]);
    }
  }
  pack_weights(p, std::move(w), p.out_ch, ckk, p.out_h * p.out_w, options,
               plans, /*allow_compact=*/true);
  // Dense-style formats dispatch between the packed implicit-GEMM kernel and
  // its zero-skipping tap path at run time; freeze the deciding statistic,
  // and when the packed path will run, pay the weight-panel pack here — once
  // per compile instead of once per serve-time plane call.
  p.weight_zero_fraction = weight_zero_fraction(
      p.weight.data(), static_cast<std::int64_t>(p.weight.size()));
  if (p.format != PackedFormat::kCsr && !p.int8_exec && !p.weight.empty() &&
      p.weight_zero_fraction < kConvSparseWeightFraction) {
    const auto rows = static_cast<std::int64_t>(p.weight.size()) / ckk;
    p.prepacked.pack(p.weight.data(), rows, ckk, /*forward=*/true,
                     /*dgrad=*/false);
    // The panels stay resident next to the raw weights for the plan's
    // lifetime. They are host-side acceleration, not part of the shippable
    // encoding, so they are reported separately from packed_bytes.
    plans.back().prepacked_bytes = p.prepacked.bytes();
  }
  if (p.format == PackedFormat::kCsr) {
    // Decode each nonzero's CSR column (= in_ch * k^2 + ki * k + kj, the
    // Conv2d weight layout) into a fully resolved implicit-conv tap: base
    // input offset plus the output range whose input taps stay in bounds.
    const std::int64_t k2 = p.geom.kernel * p.geom.kernel;
    const std::int64_t stride = p.geom.stride, pad = p.geom.padding;
    p.taps.reserve(p.csr.values.size());
    for (std::size_t t = 0; t < p.csr.values.size(); ++t) {
      const std::int64_t col = p.csr.col_idx[t];
      const std::int64_t cin = col / k2;
      const std::int64_t ki = (col % k2) / p.geom.kernel;
      const std::int64_t kj = col % p.geom.kernel;
      // tap_window (linalg/conv) is the same boundary math the training tap
      // path runs — one definition for both sparse-conv executors.
      const TapWindow wi = tap_window(p.out_h, in_h, ki, stride, pad);
      const TapWindow wj = tap_window(p.out_w, in_w, kj, stride, pad);
      const std::int64_t oi0 = wi.o0, oj0 = wj.o0;
      PackedConv::SparseTap tap;
      tap.x_start = static_cast<std::int32_t>(
          cin * in_h * in_w + (oi0 * stride - pad + ki) * in_w +
          oj0 * stride - pad + kj);
      tap.y_start = static_cast<std::int32_t>(oi0 * p.out_w + oj0);
      tap.rows = static_cast<std::int32_t>(wi.o1 - wi.o0);
      tap.cols = static_cast<std::int32_t>(wj.o1 - wj.o0);
      if (stride == 1 && tap.cols == p.out_w && in_w == p.out_w) {
        // Full-width window over equal-width planes: the rows are contiguous
        // in both input and output, so fold them into one long axpy.
        tap.cols = tap.rows * tap.cols;
        tap.rows = tap.rows > 0 ? 1 : 0;
      }
      p.taps.push_back(tap);
    }
  }
  if (p.int8_exec) {
    // Native layers execute the integer encoding; the dequantized floats
    // are dead weight once the zero fraction and taps are resolved — drop
    // them, so int8 plans are genuinely smaller resident, not just on wire.
    if (p.format == PackedFormat::kCsr) {
      std::vector<float>().swap(p.csr.values);
    } else {
      std::vector<float>().swap(p.weight);
    }
  }
  return p;
}

PackedLinear pack_linear(const Linear& lin, const CompileOptions& options,
                         std::vector<LayerPlan>& plans) {
  PackedLinear p;
  p.name = base_name(lin.weight().name);
  p.in_features = lin.in_features();
  p.out_features = lin.out_features();
  const Tensor& wv = lin.weight().value;
  std::vector<float> w(wv.data(), wv.data() + wv.numel());
  p.bias.assign(static_cast<std::size_t>(p.out_features), 0.0f);
  if (lin.bias() != nullptr) {
    for (std::int64_t j = 0; j < p.out_features; ++j) {
      p.bias[static_cast<std::size_t>(j)] = lin.bias()->value[j];
    }
  }
  pack_weights(p, std::move(w), p.out_features, p.in_features, 1, options,
               plans, /*allow_compact=*/false);
  if (p.int8_exec) {
    std::vector<float>().swap(p.weight);  // the slivers are the executable
  }
  return p;
}

/// Tracks the sizing maxima a Workspace needs. The implicit-GEMM conv path
/// gathers its panels into fixed-size kernel-layer scratch, so no im2col
/// extent is planned anymore — only activation planes and the
/// channel-compact epilogue buffer.
struct ScratchExtents {
  std::int64_t plane = 0, tmp = 0, ohw = 0;

  void cover(const PackedConv& c) {
    plane = std::max({plane, c.in_floats(), c.out_floats()});
    tmp = std::max(tmp, c.out_floats());
    ohw = std::max(ohw, c.out_h * c.out_w);
  }
};

}  // namespace

CompiledTicket Engine::compile(const ResNet& model,
                               const CompileOptions& options) {
  CompiledTicket t;
  t.height_ = options.height;
  t.width_ = options.width;
  t.in_channels_ = model.config().in_channels;
  t.num_classes_ = model.config().num_classes;
  t.feature_dim_ = model.feature_dim();

  ScratchExtents extents;
  std::int64_t h = options.height, w = options.width, ch = t.in_channels_;
  const Conv2d* pending_conv = nullptr;
  bool stem_done = false;

  for (std::size_t i = 0; i < model.trunk_size(); ++i) {
    const Module& m = model.trunk_module(i);
    if (const auto* conv = dynamic_cast<const Conv2d*>(&m)) {
      if (pending_conv != nullptr) {
        throw std::invalid_argument(
            "Engine::compile: bare conv without batch norm");
      }
      pending_conv = conv;
    } else if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&m)) {
      if (pending_conv == nullptr || stem_done) {
        throw std::invalid_argument("Engine::compile: unexpected batch norm");
      }
      if (pending_conv->in_channels() != ch) {
        throw std::invalid_argument("Engine::compile: stem channel mismatch");
      }
      t.stem_ = pack_conv(*pending_conv, bn, /*relu=*/false, h, w, options,
                          t.layers_);
      extents.cover(t.stem_);
      h = t.stem_.out_h;
      w = t.stem_.out_w;
      ch = t.stem_.out_ch;
      pending_conv = nullptr;
      stem_done = true;
    } else if (dynamic_cast<const ReLU*>(&m) != nullptr) {
      if (!stem_done || !t.blocks_.empty()) {
        throw std::invalid_argument("Engine::compile: unexpected ReLU");
      }
      t.stem_.relu = true;
    } else if (const auto* basic = dynamic_cast<const BasicBlock*>(&m)) {
      CompiledBlock b;
      b.c1 = pack_conv(basic->conv1(), &basic->bn1(), /*relu=*/true, h, w,
                       options, t.layers_);
      b.c2 = pack_conv(basic->conv2(), &basic->bn2(), /*relu=*/false,
                       b.c1.out_h, b.c1.out_w, options, t.layers_);
      if (basic->has_projection()) {
        b.down = pack_conv(*basic->down_conv(), basic->down_bn(),
                           /*relu=*/false, h, w, options, t.layers_);
      }
      extents.cover(b.c1);
      extents.cover(b.c2);
      if (b.down) extents.cover(*b.down);
      h = b.c2.out_h;
      w = b.c2.out_w;
      ch = b.c2.out_ch;
      t.blocks_.push_back(std::move(b));
    } else if (const auto* bneck = dynamic_cast<const BottleneckBlock*>(&m)) {
      CompiledBlock b;
      b.c1 = pack_conv(bneck->conv1(), &bneck->bn1(), /*relu=*/true, h, w,
                       options, t.layers_);
      b.c2 = pack_conv(bneck->conv2(), &bneck->bn2(), /*relu=*/true,
                       b.c1.out_h, b.c1.out_w, options, t.layers_);
      b.c3 = pack_conv(bneck->conv3(), &bneck->bn3(), /*relu=*/false,
                       b.c2.out_h, b.c2.out_w, options, t.layers_);
      if (bneck->has_projection()) {
        b.down = pack_conv(*bneck->down_conv(), bneck->down_bn(),
                           /*relu=*/false, h, w, options, t.layers_);
      }
      extents.cover(b.c1);
      extents.cover(b.c2);
      extents.cover(*b.c3);
      if (b.down) extents.cover(*b.down);
      h = b.c3->out_h;
      w = b.c3->out_w;
      ch = b.c3->out_ch;
      t.blocks_.push_back(std::move(b));
    } else {
      throw std::invalid_argument(
          "Engine::compile: unsupported trunk module");
    }
  }
  if (!stem_done || pending_conv != nullptr) {
    throw std::invalid_argument("Engine::compile: malformed trunk");
  }
  if (ch != t.feature_dim_) {
    throw std::invalid_argument("Engine::compile: feature width mismatch");
  }
  t.feat_h_ = h;
  t.feat_w_ = w;

  t.head_ = pack_linear(model.head(), options, t.layers_);
  extents.plane = std::max(extents.plane,
                           static_cast<std::int64_t>(t.feature_dim_));
  t.max_plane_floats_ = extents.plane;
  t.tmp_floats_ = extents.tmp;
  t.max_ohw_ = extents.ohw;
  t.int8_native_ = options.int8_weights && options.int8_native &&
                   options.int8_bits == 8;
  return t;
}

// ---- Session ----------------------------------------------------------------

Session::Session(CompiledTicket plan, int max_batch)
    : Session(std::make_shared<const CompiledTicket>(std::move(plan)),
              SessionOptions{.max_batch = max_batch}) {}

Session::Session(std::shared_ptr<const CompiledTicket> plan, int max_batch)
    : Session(std::move(plan), SessionOptions{.max_batch = max_batch}) {}

Session::Session(CompiledTicket plan, const SessionOptions& options)
    : Session(std::make_shared<const CompiledTicket>(std::move(plan)),
              options) {}

Session::Session(std::shared_ptr<const CompiledTicket> plan,
                 const SessionOptions& options)
    : plan_(std::move(plan)), options_(options) {
  if (options_.max_batch <= 0) {
    throw std::invalid_argument(
        "SessionOptions: max_batch must be > 0, got " +
        std::to_string(options_.max_batch));
  }
  if (plan_ == nullptr) {
    throw std::invalid_argument("Session: null plan");
  }
  // One workspace up front: a single-threaded caller never allocates again.
  idle_.push_back(std::make_unique<Workspace>(*plan_, options_.max_batch));
}

std::unique_ptr<Workspace> Session::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(idle_.back());
      idle_.pop_back();
      return ws;
    }
  }
  // Pool exhausted: a new concurrency high-water mark. Allocate outside the
  // lock; the workspace joins the pool on release.
  return std::make_unique<Workspace>(*plan_, options_.max_batch);
}

void Session::release(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(ws));
}

class Session::WorkspaceLease {
 public:
  explicit WorkspaceLease(Session& session)
      : session_(session), ws_(session.acquire()) {}
  ~WorkspaceLease() { session_.release(std::move(ws_)); }

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  Workspace& get() { return *ws_; }

 private:
  Session& session_;
  std::unique_ptr<Workspace> ws_;
};

RT_HOT void Session::run_rows(const float* x, std::int64_t n, float* logits) {
  // Steady-state allocation-free: the lease recycles pooled workspaces and
  // only Session::acquire allocates, on a concurrency high-water mark.
  WorkspaceLease lease(*this);
  plan_->run(x, n, logits, lease.get());
}

void Session::run_chunk(const Tensor& x, std::int64_t begin, std::int64_t end,
                        Tensor& logits) {
  const std::int64_t plane =
      plan_->in_channels() * plan_->height() * plan_->width();
  run_rows(x.data() + begin * plane, end - begin,
           logits.data() + begin * plan_->num_classes());
}

Tensor Session::predict(const Tensor& x) {
  if (!options_.shared_scheduler) {
    WorkspaceLease lease(*this);
    return plan_->predict(x, lease.get());
  }
  // Shared-scheduler serving: every max_batch chunk becomes one stealable
  // task. Concurrent predict() calls from any number of threads feed the
  // same scheduler, which interleaves their chunks across one set of
  // workers — cooperative machine filling instead of per-call serialization.
  // Chunk boundaries are fixed by max_batch and each chunk runs the serial
  // executor on its own workspace, so the logits are bitwise identical to
  // serial mode.
  plan_->check_input(x);
  const std::int64_t n = x.dim(0);
  Tensor logits({n, plan_->num_classes()});
  const std::int64_t chunk = options_.max_batch;
  const std::int64_t chunks = (n + chunk - 1) / chunk;
  Scheduler::current().parallel_for(
      chunks,
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          const std::int64_t begin = c * chunk;
          run_chunk(x, begin, std::min<std::int64_t>(n, begin + chunk),
                    logits);
        }
      },
      /*grain=*/1);
  return logits;
}

Tensor Session::predict_probabilities(const Tensor& x) {
  return softmax(predict(x));
}

std::vector<int> Session::classify(const Tensor& x) {
  return argmax_rows(predict(x));
}

}  // namespace rt
