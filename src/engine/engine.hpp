#pragma once
// rt::Engine — the compiled, thread-safe serving API for masked tickets.
//
// The Module stack (nn/) is the training path: eager, mutable, caching every
// activation for backward. Deployment wants the opposite — an immutable
// execution plan that spends bytes and cycles proportional to the ticket's
// nonzeros. Engine::compile splits definition from execution:
//
//   auto ticket = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.9f);
//   finetune_whole_model(*ticket, task, {}, rng);
//   Session session(Engine::compile(*ticket), /*max_batch=*/64);
//   Tensor logits = session.predict(batch);        // safe from any thread
//
// compile() folds conv+BN(+ReLU), packs each layer into the cheapest
// executable encoding (dense / channel-compact / CSR, optional int8 — see
// engine/plan.hpp), and freezes the geometry so Sessions can pre-allocate
// every buffer. A Session serves concurrent predict() calls over the shared
// read-only plan with a checkout pool of per-call Workspaces: steady-state
// inference performs no heap allocation beyond the returned tensor and takes
// no lock longer than a pointer swap.

#include <memory>
#include <mutex>
#include <vector>

#include "engine/plan.hpp"
#include "models/resnet.hpp"

namespace rt {

class Engine {
 public:
  /// Freezes a finished (possibly masked) ticket into an immutable plan.
  /// Reads weights, masks (via their zeros), and BN running statistics; the
  /// model itself is untouched and can keep training afterwards. Matches
  /// eval-mode Module::forward within float rounding. Throws on trunk
  /// modules the engine cannot execute.
  static CompiledTicket compile(const ResNet& model,
                                const CompileOptions& options = {});
};

struct SessionOptions {
  /// Largest batch one Workspace is sized for; bigger inputs run in chunks.
  /// Must be positive — Session's constructor throws std::invalid_argument
  /// otherwise.
  int max_batch = 64;
  /// Shared-scheduler serving: predict() splits its max_batch chunks into
  /// tasks on the calling thread's scheduler (Scheduler::current()), each
  /// task checking out its own Workspace. N concurrent predict() calls then
  /// cooperatively fill the machine — the work-stealing scheduler
  /// interleaves their chunk tasks across one set of workers — instead of
  /// each call running its chunks serially on its own thread. Chunk
  /// boundaries depend only on max_batch, and each chunk executes exactly
  /// the serial code, so results stay bitwise identical to serial mode.
  bool shared_scheduler = false;
};

/// Thread-safe inference front-end over a shared CompiledTicket. Any number
/// of threads may call predict() concurrently; each call checks out a
/// pre-allocated Workspace (growing the pool only the first time a new
/// concurrency level is reached). Results are bitwise deterministic:
/// execution within a chunk is serial and chunk boundaries are fixed by
/// max_batch, so neither thread scheduling nor work stealing can reorder
/// float accumulation.
class Session {
 public:
  explicit Session(CompiledTicket plan, int max_batch = 64);
  explicit Session(std::shared_ptr<const CompiledTicket> plan,
                   int max_batch = 64);
  Session(CompiledTicket plan, const SessionOptions& options);
  Session(std::shared_ptr<const CompiledTicket> plan,
          const SessionOptions& options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// (n, num_classes) logits for an (n, C, H, W) batch matching the compiled
  /// geometry. Batches larger than max_batch are processed in chunks.
  Tensor predict(const Tensor& x);
  /// Chunk-submission entry point: runs n (<= max_batch()) rows of flat
  /// (in_ch * height * width) sample planes from `x` through a pooled
  /// workspace, writing n * num_classes floats to `logits`. This is exactly
  /// the unit predict() dispatches internally — external batchers
  /// (serving::Server's coalescer) submit these instead of re-implementing
  /// the chunk loop. No geometry validation happens at this level — callers
  /// pack rows they already validated with plan().check_input() — but an
  /// oversized n still fails loudly: CompiledTicket::run rejects any chunk
  /// larger than the workspace it is handed.
  void run_rows(const float* x, std::int64_t n, float* logits);
  /// Row-softmax probabilities, same contract as predict().
  Tensor predict_probabilities(const Tensor& x);
  /// Argmax class per sample.
  std::vector<int> classify(const Tensor& x);

  const CompiledTicket& plan() const { return *plan_; }
  /// The shared plan handle. Fleets (serving epochs, the registry's compile
  /// cache) share one CompiledTicket across many Sessions through this
  /// pointer, so a plan's packed weights live exactly as long as the last
  /// Session or cache handle referencing them — the refcount the hot-swap
  /// drain protocol retires old plans by.
  const std::shared_ptr<const CompiledTicket>& plan_handle() const {
    return plan_;
  }
  int max_batch() const { return options_.max_batch; }
  bool shared_scheduler() const { return options_.shared_scheduler; }

 private:
  /// RAII workspace checkout: returns the workspace to the pool on every
  /// exit path. Defined in engine.cpp.
  class WorkspaceLease;

  std::unique_ptr<Workspace> acquire();
  void release(std::unique_ptr<Workspace> ws);
  void run_chunk(const Tensor& x, std::int64_t begin, std::int64_t end,
                 Tensor& logits);

  std::shared_ptr<const CompiledTicket> plan_;
  SessionOptions options_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_;
};

}  // namespace rt
