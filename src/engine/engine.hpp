#pragma once
// rt::Engine — the compiled, thread-safe serving API for masked tickets.
//
// The Module stack (nn/) is the training path: eager, mutable, caching every
// activation for backward. Deployment wants the opposite — an immutable
// execution plan that spends bytes and cycles proportional to the ticket's
// nonzeros. Engine::compile splits definition from execution:
//
//   auto ticket = lab.omp_ticket("r18", PretrainScheme::kAdversarial, 0.9f);
//   finetune_whole_model(*ticket, task, {}, rng);
//   Session session(Engine::compile(*ticket), /*max_batch=*/64);
//   Tensor logits = session.predict(batch);        // safe from any thread
//
// compile() folds conv+BN(+ReLU), packs each layer into the cheapest
// executable encoding (dense / channel-compact / CSR, optional int8 — see
// engine/plan.hpp), and freezes the geometry so Sessions can pre-allocate
// every buffer. A Session serves concurrent predict() calls over the shared
// read-only plan with a checkout pool of per-call Workspaces: steady-state
// inference performs no heap allocation beyond the returned tensor and takes
// no lock longer than a pointer swap.

#include <memory>
#include <mutex>
#include <vector>

#include "engine/plan.hpp"
#include "models/resnet.hpp"

namespace rt {

class Engine {
 public:
  /// Freezes a finished (possibly masked) ticket into an immutable plan.
  /// Reads weights, masks (via their zeros), and BN running statistics; the
  /// model itself is untouched and can keep training afterwards. Matches
  /// eval-mode Module::forward within float rounding. Throws on trunk
  /// modules the engine cannot execute.
  static CompiledTicket compile(const ResNet& model,
                                const CompileOptions& options = {});
};

/// Thread-safe inference front-end over a shared CompiledTicket. Any number
/// of threads may call predict() concurrently; each call checks out a
/// pre-allocated Workspace (growing the pool only the first time a new
/// concurrency level is reached). Results are bitwise deterministic:
/// execution within a call is serial, so thread scheduling cannot reorder
/// float accumulation.
class Session {
 public:
  explicit Session(CompiledTicket plan, int max_batch = 64);
  explicit Session(std::shared_ptr<const CompiledTicket> plan,
                   int max_batch = 64);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// (n, num_classes) logits for an (n, C, H, W) batch matching the compiled
  /// geometry. Batches larger than max_batch are processed in chunks.
  Tensor predict(const Tensor& x);
  /// Row-softmax probabilities, same contract as predict().
  Tensor predict_probabilities(const Tensor& x);
  /// Argmax class per sample.
  std::vector<int> classify(const Tensor& x);

  const CompiledTicket& plan() const { return *plan_; }
  int max_batch() const { return max_batch_; }

 private:
  std::unique_ptr<Workspace> acquire();
  void release(std::unique_ptr<Workspace> ws);

  std::shared_ptr<const CompiledTicket> plan_;
  int max_batch_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> idle_;
};

}  // namespace rt
